// Package cachesim is a trace-driven set-associative cache simulator for
// the paper's CPU-platform experiments: Figure 9(b) compares the memory
// traffic (64-byte cache lines) of the original row-major layout against
// the new data layout on the Nehalem platform. Address streams for both
// layouts are generated from the same loop nests the engines execute;
// traffic does not depend on data values, so the traces carry addresses
// only.
package cachesim

import "fmt"

// Stats counts one cache level's activity.
type Stats struct {
	Reads      int64
	Writes     int64
	Misses     int64
	WriteBacks int64 // dirty evictions
}

// Accesses returns reads + writes.
func (s Stats) Accesses() int64 { return s.Reads + s.Writes }

// MissRate returns misses / accesses.
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

// Cache is one set-associative write-back, write-allocate cache level
// with LRU replacement.
type Cache struct {
	Name      string
	LineBytes int
	Sets      int
	Ways      int
	Stats     Stats

	tags  []uint64 // Sets × Ways entries; 0 = invalid (tag values are shifted +1)
	dirty []bool
	age   []int64 // LRU timestamps
	tick  int64
}

// NewCache builds a cache of the given total size. sizeBytes must be
// lineBytes × sets × ways with power-of-two sets.
func NewCache(name string, sizeBytes, lineBytes, ways int) (*Cache, error) {
	if lineBytes <= 0 || ways <= 0 || sizeBytes <= 0 {
		return nil, fmt.Errorf("cachesim: non-positive geometry for %s", name)
	}
	if sizeBytes%(lineBytes*ways) != 0 {
		return nil, fmt.Errorf("cachesim: %s size %d not divisible by line %d × ways %d", name, sizeBytes, lineBytes, ways)
	}
	sets := sizeBytes / (lineBytes * ways)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cachesim: %s set count %d not a power of two", name, sets)
	}
	return &Cache{
		Name:      name,
		LineBytes: lineBytes,
		Sets:      sets,
		Ways:      ways,
		tags:      make([]uint64, sets*ways),
		dirty:     make([]bool, sets*ways),
		age:       make([]int64, sets*ways),
	}, nil
}

// SizeBytes returns the cache capacity.
func (c *Cache) SizeBytes() int { return c.LineBytes * c.Sets * c.Ways }

// access looks up the line containing addr. On a miss it allocates the
// line, evicting LRU; writeBack reports whether a dirty line was evicted
// and victimAddr is that line's address (for propagation to the next
// level). write marks the line dirty.
func (c *Cache) access(addr uint64, write bool) (miss, writeBack bool, victimAddr uint64) {
	c.tick++
	line := addr / uint64(c.LineBytes)
	set := int(line) & (c.Sets - 1)
	tag := line + 1 // +1 so 0 means invalid
	base := set * c.Ways
	victim := base
	for w := 0; w < c.Ways; w++ {
		i := base + w
		if c.tags[i] == tag {
			c.age[i] = c.tick
			if write {
				c.dirty[i] = true
				c.Stats.Writes++
			} else {
				c.Stats.Reads++
			}
			return false, false, 0
		}
		if c.age[i] < c.age[victim] {
			victim = i
		}
	}
	// Miss: evict LRU, allocate.
	writeBack = c.tags[victim] != 0 && c.dirty[victim]
	if writeBack {
		c.Stats.WriteBacks++
		victimAddr = (c.tags[victim] - 1) * uint64(c.LineBytes)
	}
	c.tags[victim] = tag
	c.dirty[victim] = write
	c.age[victim] = c.tick
	c.Stats.Misses++
	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
	}
	return true, writeBack, victimAddr
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.dirty[i] = false
		c.age[i] = 0
	}
	c.tick = 0
	c.Stats = Stats{}
}
