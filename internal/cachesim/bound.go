package cachesim

import "math"

// IOLowerBound returns the red-blue pebbling lower bound, in bytes, on
// the traffic between a fast memory of fastBytes and an unbounded slow
// memory for the n-cell NPDP/CYK recurrence family. De Stefani and
// Gupta (arXiv:2410.20337) prove the n³-work family needs
// Q = Ω(n³/√M) words of I/O for a fast memory of M words; the constant
// used here is the Hong–Kung-style n³/(8√M), the same one matrix
// multiplication is normally quoted with, so the figure is comparable
// across the literature. Two compulsory floors apply regardless of
// schedule: the n(n+1)/2-cell table must be written out once when it
// does not fit (its bytes beyond fast memory), and a computation that
// fits entirely in fast memory moves nothing — the bound is then 0.
//
// The pager reports Stats.DiskBytes() against this figure: achieved
// spill traffic over the bound is the blocking schedule's distance
// from I/O-optimal.
func IOLowerBound(n, elemBytes int, fastBytes int64) int64 {
	if n <= 0 || elemBytes <= 0 || fastBytes <= 0 {
		return 0
	}
	tableBytes := int64(n) * int64(n+1) / 2 * int64(elemBytes)
	if tableBytes <= fastBytes {
		return 0 // fits in fast memory: no traffic is forced
	}
	m := float64(fastBytes) / float64(elemBytes) // fast capacity in words
	nf := float64(n)
	words := nf * nf * nf / (8 * math.Sqrt(m))
	q := int64(words) * int64(elemBytes)
	if compulsory := tableBytes - fastBytes; q < compulsory {
		q = compulsory
	}
	return q
}
