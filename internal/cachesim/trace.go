package cachesim

import (
	"cellnpdp/internal/kernel"
	"cellnpdp/internal/tri"
)

// The trace generators replay the exact loop nests of the engines as
// address streams: TraceOriginal mirrors npdp.SolveSerial on the
// row-major layout, TraceTiled mirrors npdp.SolveTiled (stage 1 + stage 2
// with 4×4 computing blocks) on the new data layout, and
// TraceTiledRowMajor replays the tiled computation on the row-major
// layout (the prior work's tiling, Figure 4). Values never affect the
// access pattern — every relaxation reads and writes the same cells
// regardless of which side wins the min — so the streams carry addresses
// only.

// TraceOriginal replays the Figure 1 algorithm's accesses: per cell
// (i,j), one read and one final write of d[i][j] (it lives in a register
// across the k loop) plus reads of d[i][k] and d[k][j] per step.
func TraceOriginal(h *Hierarchy, n, elemBytes int) {
	m := tri.NewRowMajor[float32](n)
	addr := func(i, j int) uint64 { return uint64(m.Index(i, j) * elemBytes) }
	for j := 0; j < n; j++ {
		for i := j - 1; i >= 0; i-- {
			h.Read(addr(i, j))
			for k := i; k < j; k++ {
				h.Read(addr(i, k))
				h.Read(addr(k, j))
			}
			h.Write(addr(i, j))
		}
	}
}

// blockAddr maps (block row, block col, in-block row, in-block col) to a
// byte address under some layout.
type blockAddr func(bi, bj, a, b int) uint64

// tiledReplay replays the tiled engine's loop nest against an arbitrary
// layout's address function.
type tiledReplay struct {
	h    *Hierarchy
	addr blockAddr
	tile int
}

// cbStep replays one 4×4 computing-block step C = min(C, A ⊗ B): the
// kernel loads the A, B and C rows, updates C in registers, stores C.
// Each operand is (block, CB row index, CB col index) in its own block.
func (r *tiledReplay) cbStep(cBlk [2]int, cp, cq int, aBlk [2]int, ap, aq int, bBlk [2]int, bp, bq int) {
	for row := 0; row < kernel.CB; row++ {
		for col := 0; col < kernel.CB; col++ {
			r.h.Read(r.addr(aBlk[0], aBlk[1], ap*kernel.CB+row, aq*kernel.CB+col))
			r.h.Read(r.addr(bBlk[0], bBlk[1], bp*kernel.CB+row, bq*kernel.CB+col))
			r.h.Read(r.addr(cBlk[0], cBlk[1], cp*kernel.CB+row, cq*kernel.CB+col))
		}
	}
	for row := 0; row < kernel.CB; row++ {
		for col := 0; col < kernel.CB; col++ {
			r.h.Write(r.addr(cBlk[0], cBlk[1], cp*kernel.CB+row, cq*kernel.CB+col))
		}
	}
}

// inner replays kernel.innerScalar for CB (p,q) of block (bi,bj) with
// diagonal blocks L = (li,lj) and R = (ri,rj).
func (r *tiledReplay) inner(bi, bj, li, lj, ri, rj, p, q int) {
	for a := p*kernel.CB + kernel.CB - 1; a >= p*kernel.CB; a-- {
		for b := q * kernel.CB; b < q*kernel.CB+kernel.CB; b++ {
			r.h.Read(r.addr(bi, bj, a, b))
			for k := a; k < (p+1)*kernel.CB; k++ {
				r.h.Read(r.addr(li, lj, a, k))
				r.h.Read(r.addr(bi, bj, k, b))
			}
			for k := q * kernel.CB; k < b; k++ {
				r.h.Read(r.addr(bi, bj, a, k))
				r.h.Read(r.addr(ri, rj, k, b))
			}
			r.h.Write(r.addr(bi, bj, a, b))
		}
	}
}

// diagCB replays kernel.diagScalarCB for CB (q,q) of diagonal block bj.
func (r *tiledReplay) diagCB(bj, q int) {
	lo := q * kernel.CB
	for b := lo; b < lo+kernel.CB; b++ {
		for a := b - 1; a >= lo; a-- {
			r.h.Read(r.addr(bj, bj, a, b))
			for k := a; k < b; k++ {
				r.h.Read(r.addr(bj, bj, a, k))
				r.h.Read(r.addr(bj, bj, k, b))
			}
			r.h.Write(r.addr(bj, bj, a, b))
		}
	}
}

// run replays the whole tiled engine over an m×m block grid.
func (r *tiledReplay) run(m int) {
	cbm := r.tile / kernel.CB
	for bj := 0; bj < m; bj++ {
		for bi := bj; bi >= 0; bi-- {
			if bi == bj {
				// Stage2Diag: CB columns ascending, rows descending.
				for q := 0; q < cbm; q++ {
					for p := q; p >= 0; p-- {
						if p == q {
							r.diagCB(bj, q)
							continue
						}
						for kp := p + 1; kp < q; kp++ {
							r.cbStep([2]int{bj, bj}, p, q, [2]int{bj, bj}, p, kp, [2]int{bj, bj}, kp, q)
						}
						r.inner(bj, bj, bj, bj, bj, bj, p, q)
					}
				}
				continue
			}
			// Stage 1: middle-tile block products.
			for k := bi + 1; k < bj; k++ {
				for p := 0; p < cbm; p++ {
					for kp := 0; kp < cbm; kp++ {
						for q := 0; q < cbm; q++ {
							r.cbStep([2]int{bi, bj}, p, q, [2]int{bi, k}, p, kp, [2]int{k, bj}, kp, q)
						}
					}
				}
			}
			// Stage 2: bottom-up, left-to-right computing blocks.
			for p := cbm - 1; p >= 0; p-- {
				for q := 0; q < cbm; q++ {
					for kp := p + 1; kp < cbm; kp++ {
						r.cbStep([2]int{bi, bj}, p, q, [2]int{bi, bi}, p, kp, [2]int{bi, bj}, kp, q)
					}
					for kq := 0; kq < q; kq++ {
						r.cbStep([2]int{bi, bj}, p, q, [2]int{bi, bj}, p, kq, [2]int{bj, bj}, kq, q)
					}
					r.inner(bi, bj, bi, bi, bj, bj, p, q)
				}
			}
		}
	}
}

// TraceTiled replays the tiled engine on the new data layout: every
// block's cells are consecutive in memory.
func TraceTiled(h *Hierarchy, n, tile, elemBytes int) {
	layout := tri.NewTiled[float32](n, tile)
	r := &tiledReplay{
		h:    h,
		tile: tile,
		addr: func(bi, bj, a, b int) uint64 {
			return uint64((layout.BlockBytesOffset(bi, bj) + a*tile + b) * elemBytes)
		},
	}
	r.run(layout.Blocks())
}

// TraceTiledRowMajor replays the same tiled computation with blocks
// addressed through the row-major triangular layout — the prior work's
// tiling (Figure 4), where a block's rows are scattered across the
// triangle. Padding cells (below the diagonal inside diagonal blocks, or
// past n) map to a disjoint scratch region so the stream stays
// well-defined.
func TraceTiledRowMajor(h *Hierarchy, n, tile, elemBytes int) {
	m := (n + tile - 1) / tile
	np := m * tile
	layout := tri.NewRowMajor[float32](np)
	scratch := uint64(tri.CellCount(np) * elemBytes)
	r := &tiledReplay{
		h:    h,
		tile: tile,
		addr: func(bi, bj, a, b int) uint64 {
			i, j := bi*tile+a, bj*tile+b
			if i > j {
				return scratch + uint64((i*np+j)*elemBytes)
			}
			return uint64(layout.Index(i, j) * elemBytes)
		},
	}
	r.run(m)
}

// TraceOriginal4 adapts TraceOriginal to the four-argument trace
// signature the harness sweeps over (the tile argument is unused by the
// untiled original).
func TraceOriginal4(h *Hierarchy, n, _, elemBytes int) {
	TraceOriginal(h, n, elemBytes)
}
