package cachesim

import (
	"testing"

	"cellnpdp/internal/kernel"
	"cellnpdp/internal/tri"
)

func TestNewCacheGeometry(t *testing.T) {
	c, err := NewCache("L1", 32*1024, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sets != 64 || c.SizeBytes() != 32*1024 {
		t.Errorf("sets=%d size=%d", c.Sets, c.SizeBytes())
	}
	bad := [][3]int{{0, 64, 8}, {32768, 0, 8}, {32768, 64, 0}, {1000, 64, 8}, {64 * 48, 64, 16}}
	for _, b := range bad {
		if _, err := NewCache("x", b[0], b[1], b[2]); err == nil {
			t.Errorf("geometry %v accepted", b)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c, _ := NewCache("c", 1024, 64, 2) // 8 sets
	if miss, _, _ := c.access(0, false); !miss {
		t.Error("cold access hit")
	}
	if miss, _, _ := c.access(4, false); miss {
		t.Error("same-line access missed")
	}
	if miss, _, _ := c.access(64, false); !miss {
		t.Error("next-line access hit")
	}
	if c.Stats.Misses != 2 || c.Stats.Reads != 3 {
		t.Errorf("stats: %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := NewCache("c", 128, 64, 2) // 1 set, 2 ways
	c.access(0, false)
	c.access(64, false)
	c.access(0, false) // touch line 0: line 64 is now LRU
	if m, _, _ := c.access(128, false); !m {
		t.Fatal("third line hit")
	}
	if m, _, _ := c.access(0, false); m {
		t.Error("MRU line was evicted")
	}
	if m, _, _ := c.access(64, false); !m {
		t.Error("LRU line survived")
	}
}

func TestDirtyWriteBack(t *testing.T) {
	c, _ := NewCache("c", 128, 64, 2)
	c.access(0, true) // dirty
	c.access(64, false)
	_, wb, victim := c.access(128, false) // evicts dirty line 0
	if !wb || victim != 0 {
		t.Errorf("writeback=%v victim=%d, want true, 0", wb, victim)
	}
	if c.Stats.WriteBacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.WriteBacks)
	}
}

func TestHierarchyTrafficReadWrite(t *testing.T) {
	l1, _ := NewCache("L1", 128, 64, 2)
	l2, _ := NewCache("L2", 256, 64, 2)
	h, err := NewHierarchy(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	h.Write(0)
	if h.MemReadBytes != 64 {
		t.Errorf("write-allocate read traffic = %d, want 64", h.MemReadBytes)
	}
	// Evict line 0 out of both levels by filling the sets.
	for a := uint64(128); a <= 512; a += 128 {
		h.Read(a)
	}
	if h.MemWriteBytes != 64 {
		t.Errorf("dirty line never reached memory: write bytes = %d", h.MemWriteBytes)
	}
}

func TestHierarchyDirtyPropagation(t *testing.T) {
	// A line written in L1 and evicted must land dirty in L2, and only
	// reach memory when evicted from the last level.
	l1, _ := NewCache("L1", 128, 64, 2)
	l2, _ := NewCache("L2", 512, 64, 2)
	h, _ := NewHierarchy(l1, l2)
	h.Write(0)
	h.Read(128)
	h.Read(256) // evicts line 0 from L1 (dirty) into L2
	if h.MemWriteBytes != 0 {
		t.Errorf("dirty L1 eviction went straight to memory")
	}
	// Now force it out of L2: its set holds lines {0,256,512,...} mapping
	// to set 0 of 4 sets... fill set 0 of L2.
	h.Read(512)
	h.Read(1024)
	h.Read(1536)
	if h.MemWriteBytes == 0 {
		t.Error("dirty line lost during L2 eviction")
	}
}

func TestNehalemShape(t *testing.T) {
	h, err := Nehalem()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) != 3 {
		t.Fatalf("levels = %d", len(h.Levels))
	}
	if h.Levels[0].SizeBytes() != 32*1024 || h.LLC().SizeBytes() != 8*1024*1024 {
		t.Error("Nehalem cache sizes wrong")
	}
	for _, l := range h.Levels {
		if l.LineBytes != 64 {
			t.Errorf("%s line = %d, want 64", l.Name, l.LineBytes)
		}
	}
}

func TestNewHierarchyRejects(t *testing.T) {
	if _, err := NewHierarchy(); err == nil {
		t.Error("empty hierarchy accepted")
	}
	if _, err := NewHierarchy(nil); err == nil {
		t.Error("nil level accepted")
	}
}

func TestTraceOriginalAccessCount(t *testing.T) {
	h, _ := Nehalem()
	const n = 40
	TraceOriginal(h, n, 4)
	relax := int64(n) * (int64(n)*int64(n) - 1) / 6
	cells := int64(tri.CellCount(n) - n) // off-diagonal cells
	wantReads := 2*relax + cells
	gotReads := h.Levels[0].Stats.Reads
	if gotReads != wantReads {
		t.Errorf("L1 reads = %d, want %d", gotReads, wantReads)
	}
	if h.Levels[0].Stats.Writes != cells {
		t.Errorf("L1 writes = %d, want %d", h.Levels[0].Stats.Writes, cells)
	}
}

func TestTraceTiledAccessCountMatchesKernelStats(t *testing.T) {
	// The replayed stream must perform exactly the engine's work: per CB
	// step 48 reads + 16 writes, per scalar relaxation 2 reads, plus one
	// read+write per cell per inner pass.
	h, _ := Nehalem()
	const n, tile = 64, 16
	TraceTiled(h, n, tile, 4)
	m := n / tile
	var want kernel.Stats
	for bj := 0; bj < m; bj++ {
		for bi := bj; bi >= 0; bi-- {
			want.Add(kernel.StatsMemoryBlock(tile, bi, bj))
		}
	}
	cbm := int64(tile / kernel.CB)
	// Cells visited by inner passes: 16 per off-diag CB, plus 6 per
	// diagonal CB (the strictly-upper cells of a 4×4 triangle), plus 16
	// per CB of Stage2Diag's p<q blocks.
	offDiagBlocks := int64(m * (m - 1) / 2)
	diagBlocks := int64(m)
	innerCells := offDiagBlocks*cbm*cbm*16 + diagBlocks*(cbm*(cbm-1)/2*16+cbm*6)
	wantReads := want.CBSteps*48 + want.ScalarRelax*2 + innerCells
	wantWrites := want.CBSteps*16 + innerCells
	if got := h.Levels[0].Stats.Reads; got != wantReads {
		t.Errorf("L1 reads = %d, want %d", got, wantReads)
	}
	if got := h.Levels[0].Stats.Writes; got != wantWrites {
		t.Errorf("L1 writes = %d, want %d", got, wantWrites)
	}
}

func TestNDLReducesMemoryTraffic(t *testing.T) {
	// Figure 9(b)'s point at equal tiling: the block-sequential layout
	// must move at most as many bytes as the scattered row-major tiling,
	// and far fewer than the untiled original, once the table exceeds
	// the LLC. Use a small LLC so a modest n is "large".
	l1, _ := NewCache("L1", 8*1024, 64, 8)
	l2, _ := NewCache("L2", 64*1024, 64, 8)
	mk := func() *Hierarchy { h, _ := NewHierarchy(l1, l2); h.Reset(); return h }
	const n, tile = 320, 16

	h := mk()
	TraceOriginal(h, n, 4)
	orig := h.MemBytes()

	h = mk()
	TraceTiledRowMajor(h, n, tile, 4)
	rowTiled := h.MemBytes()

	h = mk()
	TraceTiled(h, n, tile, 4)
	ndl := h.MemBytes()

	if ndl >= orig/2 {
		t.Errorf("NDL traffic %d not well below original %d", ndl, orig)
	}
	if ndl > rowTiled {
		t.Errorf("NDL traffic %d above row-major tiled %d", ndl, rowTiled)
	}
}

func TestReset(t *testing.T) {
	h, _ := Nehalem()
	TraceOriginal(h, 32, 4)
	h.Reset()
	if h.MemBytes() != 0 || h.Levels[0].Stats != (Stats{}) {
		t.Error("Reset incomplete")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Reads: 30, Writes: 10, Misses: 4}
	if s.Accesses() != 40 {
		t.Errorf("Accesses = %d", s.Accesses())
	}
	if s.MissRate() != 0.1 {
		t.Errorf("MissRate = %g", s.MissRate())
	}
	var z Stats
	if z.MissRate() != 0 {
		t.Error("empty MissRate not 0")
	}
}

func TestIOLowerBound(t *testing.T) {
	// Fits in fast memory: nothing is forced.
	if got := IOLowerBound(64, 4, 1<<20); got != 0 {
		t.Errorf("in-memory bound = %d, want 0", got)
	}
	// Degenerate inputs.
	for _, got := range []int64{IOLowerBound(0, 4, 1024), IOLowerBound(64, 0, 1024), IOLowerBound(64, 4, 0)} {
		if got != 0 {
			t.Errorf("degenerate bound = %d, want 0", got)
		}
	}
	// Out of core: the bound is positive and at least the compulsory
	// write-out of the table's overflow past fast memory.
	n, elem, fast := 4096, 4, int64(1<<20)
	got := IOLowerBound(n, elem, fast)
	table := int64(n) * int64(n+1) / 2 * int64(elem)
	if got < table-fast {
		t.Errorf("bound %d below compulsory floor %d", got, table-fast)
	}
	// Shrinking fast memory can only raise the bound (n³/√M is
	// monotone decreasing in M).
	if smaller := IOLowerBound(n, elem, fast/4); smaller < got {
		t.Errorf("bound fell from %d to %d as fast memory shrank", got, smaller)
	}
}
