package cachesim

import "fmt"

// Hierarchy is an inclusive multi-level cache: an access missing level i
// proceeds to level i+1; a miss in the last level costs one memory line
// fetch, and dirty last-level evictions cost one line of write traffic.
type Hierarchy struct {
	Levels []*Cache
	// MemReadBytes and MemWriteBytes tally main-memory traffic — the
	// quantity Figure 9(b) plots.
	MemReadBytes  int64
	MemWriteBytes int64
}

// Nehalem returns the cache hierarchy of the paper's CPU platform (one
// core's view of a quad-core Nehalem): 32 KB 8-way L1D, 256 KB 8-way L2,
// 8 MB 16-way shared L3, all 64-byte lines.
func Nehalem() (*Hierarchy, error) {
	l1, err := NewCache("L1D", 32*1024, 64, 8)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache("L2", 256*1024, 64, 8)
	if err != nil {
		return nil, err
	}
	l3, err := NewCache("L3", 8*1024*1024, 64, 16)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{Levels: []*Cache{l1, l2, l3}}, nil
}

// NewHierarchy builds a hierarchy from explicit levels.
func NewHierarchy(levels ...*Cache) (*Hierarchy, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("cachesim: hierarchy needs at least one level")
	}
	for _, l := range levels {
		if l == nil {
			return nil, fmt.Errorf("cachesim: nil cache level")
		}
	}
	return &Hierarchy{Levels: levels}, nil
}

// Read simulates a load of the line containing addr.
func (h *Hierarchy) Read(addr uint64) { h.access(addr, false) }

// Write simulates a store to the line containing addr.
func (h *Hierarchy) Write(addr uint64) { h.access(addr, true) }

func (h *Hierarchy) access(addr uint64, write bool) {
	for i, c := range h.Levels {
		miss, wb, victim := c.access(addr, write)
		if wb {
			h.writeBack(i+1, victim)
		}
		if !miss {
			return
		}
		if i == len(h.Levels)-1 {
			h.MemReadBytes += int64(c.LineBytes)
		}
	}
}

// writeBack propagates a dirty eviction from level-1 into the given level
// (or main memory past the last level), cascading further evictions.
func (h *Hierarchy) writeBack(level int, addr uint64) {
	if level >= len(h.Levels) {
		h.MemWriteBytes += int64(h.LLC().LineBytes)
		return
	}
	c := h.Levels[level]
	_, wb, victim := c.access(addr, true)
	if wb {
		h.writeBack(level+1, victim)
	}
}

// LLC returns the last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.Levels[len(h.Levels)-1] }

// MemBytes returns total main-memory traffic in both directions.
func (h *Hierarchy) MemBytes() int64 { return h.MemReadBytes + h.MemWriteBytes }

// Reset clears all levels and traffic counters.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels {
		c.Reset()
	}
	h.MemReadBytes = 0
	h.MemWriteBytes = 0
}

// ScaledNehalem returns the Nehalem geometry scaled down 128×
// (8 KB / 32 KB / 64 KB, 64-byte lines): trace-driven simulation is
// O(n³), so the harness runs scaled problem sizes against scaled caches
// to reproduce the capacity relationships of Figure 9(b) — a 512-point
// table (513 KB) stands in for the paper's 4096-point table (32 MB)
// against the 8 MB LLC.
func ScaledNehalem() (*Hierarchy, error) {
	l1, err := NewCache("L1D/128", 8*1024, 64, 8)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache("L2/128", 32*1024, 64, 8)
	if err != nil {
		return nil, err
	}
	l3, err := NewCache("L3/128", 64*1024, 64, 16)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{Levels: []*Cache{l1, l2, l3}}, nil
}
