// Package fourrussians implements the two-vector Four-Russians speedup
// of Frid and Gusfield for Nussinov-style RNA folding (PAPERS.md:
// Venkatachalam, Gusfield, Frid, "Faster algorithms for RNA-folding
// using the Four-Russians method"). It is the asymptotic counterpart to
// the vector kernels in internal/kernel: where they widen the min-plus
// stage-1 relaxation, this replaces it with O(n³/log n) table lookups.
//
// The speedup needs a lattice-valued table: along every row and column
// the DP values change by 0 or 1 per step. That holds for the Nussinov
// max-base-pairs recurrence
//
//	D(i,j) = max( D(i+1,j), D(i,j-1), D(i+1,j-1)+pair(i,j),
//	              max_{i<=k<j} D(i,k) + D(k+1,j) )
//
// but NOT for real-valued energy minimization, so the engines only
// select this kernel on lattice workloads (perfmodel.Shape.Lattice).
//
// Two-vector method: split points k are grouped into fixed column
// groups of size q ≈ log₂(n)/2. Within a complete group starting at k0,
// the row values D(i, k0+p) and column values D(k0+p+1, j) are both
// determined by their base value plus a (q−1)-bit 0/1 difference
// vector, so
//
//	max_p D(i,k0+p) + D(k0+p+1,j)
//	  = D(i,k0) + D(k0+1,j) + R[hbits][vbits]
//
// where R[a][b] = max_p (Ha(p) − Gb(p)) is precomputed once for all
// 2^(q−1) × 2^(q−1) difference-vector pairs. Each group contributes one
// table lookup instead of q relaxations.
package fourrussians

import (
	"fmt"
	"math/bits"
)

// PairFunc reports whether positions i and j of the input may pair.
// Implementations must be symmetric in the biological sense the caller
// wants; the solver never calls it with j-i <= MinSpan.
type PairFunc func(i, j int) bool

// Options configures Solve.
type Options struct {
	// Q is the group size; 0 picks max(2, ⌊log₂ n⌋/2), capped at 8 so
	// the R table stays ≤ 2^7 × 2^7 entries.
	Q int
	// MinSpan is the minimum j-i for a pair (the hairpin constraint);
	// MinSpan m means i can pair with j only when j-i > m. Nussinov's
	// classic formulation uses 1 (no adjacent pairs).
	MinSpan int
}

// Result holds a completed solve.
type Result struct {
	// N is the sequence length.
	N int
	// Pairs is D(0, n-1): the maximum number of nested pairs.
	Pairs int
	// Q is the group size actually used.
	Q int
	// GroupLookups counts complete-group table lookups taken.
	GroupLookups int64
	// ScalarSplits counts split points relaxed scalarly (partial groups
	// at the interval edges plus short intervals).
	ScalarSplits int64
	table        []int32
	n            int
}

// At returns D(i, j), the max pairs within [i, j]. At(i, j) with j < i
// is 0 (the empty interval).
func (r *Result) At(i, j int) int {
	if j < i {
		return 0
	}
	return int(r.table[i*r.n+j])
}

// RNAPair is the canonical Watson-Crick + wobble predicate over a raw
// uppercase RNA byte sequence — the usual PairFunc for Nussinov runs.
func RNAPair(seq []byte) PairFunc {
	ok := func(a, b byte) bool {
		switch {
		case a == 'A' && b == 'U', a == 'U' && b == 'A':
			return true
		case a == 'G' && b == 'C', a == 'C' && b == 'G':
			return true
		case a == 'G' && b == 'U', a == 'U' && b == 'G':
			return true
		}
		return false
	}
	return func(i, j int) bool { return ok(seq[i], seq[j]) }
}

// groupSize picks q for length n: ⌊log₂ n⌋/2, clamped to [2, 8].
func groupSize(n int) int {
	if n < 4 {
		return 2
	}
	q := bits.Len(uint(n)) / 2
	if q < 2 {
		q = 2
	}
	if q > 8 {
		q = 8
	}
	return q
}

// buildR precomputes R[a][b] = max_{p=0..q-1} (Ha(p) − Gb(p)) over all
// (q−1)-bit difference vectors a (row deltas) and b (column deltas),
// where Ha(p) = popcount of a's low p bits accumulated in order and
// likewise Gb. R[a][b] ≥ 0 because p = 0 contributes 0.
func buildR(q int) []int8 {
	w := 1 << (q - 1)
	r := make([]int8, w*w)
	for a := 0; a < w; a++ {
		// Ha(p) for p = 0..q-1.
		var ha [8]int8
		for p := 1; p < q; p++ {
			ha[p] = ha[p-1] + int8((a>>(p-1))&1)
		}
		for b := 0; b < w; b++ {
			var gb, best int8
			for p := 1; p < q; p++ {
				gb += int8((b >> (p - 1)) & 1)
				if d := ha[p] - gb; d > best {
					best = d
				}
			}
			r[a*w+b] = best
		}
	}
	return r
}

// Solve runs the two-vector Nussinov DP over n positions.
func Solve(n int, pair PairFunc, opts Options) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fourrussians: non-positive length %d", n)
	}
	if pair == nil {
		return nil, fmt.Errorf("fourrussians: nil pair function")
	}
	q := opts.Q
	if q == 0 {
		q = groupSize(n)
	}
	if q < 2 || q > 8 {
		return nil, fmt.Errorf("fourrussians: group size %d out of [2, 8]", q)
	}
	minSpan := opts.MinSpan
	if minSpan < 0 {
		return nil, fmt.Errorf("fourrussians: negative MinSpan")
	}

	res := &Result{N: n, Q: q, n: n, table: make([]int32, n*n)}
	d := res.table
	rtab := buildR(q)
	width := 1 << (q - 1)

	numGroups := (n + q - 1) / q
	// henc[i*numGroups+g] caches the row difference bits of group g on
	// row i; venc likewise for column j. −1 = not yet computed. An
	// encoding is computed lazily on first use — by then every cell it
	// reads is final (all have shorter span than the querying cell).
	henc := make([]int16, n*numGroups)
	venc := make([]int16, n*numGroups)
	for i := range henc {
		henc[i] = -1
		venc[i] = -1
	}

	at := func(i, j int) int32 {
		if j < i {
			return 0
		}
		return d[i*n+j]
	}

	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			best := d[i*n+j-1] // j unpaired
			if v := d[(i+1)*n+j]; v > best {
				best = v // i unpaired
			}
			if span > minSpan && pair(i, j) {
				if v := at(i+1, j-1) + 1; v > best {
					best = v
				}
			}
			// Bifurcation max_{i<=k<j} D(i,k) + D(k+1,j). Complete
			// column groups [k0, k0+q) with i <= k0 and k0+q <= j go
			// through the R table; the unaligned head and tail relax
			// scalarly.
			gFirst := (i + q - 1) / q // first group with base >= i
			gLast := j / q            // groups with base+q <= j are < gLast
			if gFirst >= gLast {
				for k := i; k < j; k++ {
					if v := d[i*n+k] + d[(k+1)*n+j]; v > best {
						best = v
					}
					res.ScalarSplits++
				}
			} else {
				for k := i; k < gFirst*q; k++ {
					if v := d[i*n+k] + d[(k+1)*n+j]; v > best {
						best = v
					}
					res.ScalarSplits++
				}
				for g := gFirst; g < gLast; g++ {
					k0 := g * q
					hi := &henc[i*numGroups+g]
					if *hi < 0 {
						var e int16
						for p := 1; p < q; p++ {
							e |= int16(d[i*n+k0+p]-d[i*n+k0+p-1]) << (p - 1)
						}
						*hi = e
					}
					vj := &venc[j*numGroups+g]
					if *vj < 0 {
						var e int16
						for p := 1; p < q; p++ {
							e |= int16(d[(k0+p)*n+j]-d[(k0+p+1)*n+j]) << (p - 1)
						}
						*vj = e
					}
					v := d[i*n+k0] + d[(k0+1)*n+j] + int32(rtab[int(*hi)*width+int(*vj)])
					if v > best {
						best = v
					}
					res.GroupLookups++
				}
				for k := gLast * q; k < j; k++ {
					if v := d[i*n+k] + d[(k+1)*n+j]; v > best {
						best = v
					}
					res.ScalarSplits++
				}
			}
			d[i*n+j] = best
		}
	}
	res.Pairs = int(d[n-1])
	return res, nil
}

// SolveSerial is the plain O(n³) Nussinov reference the fast path must
// match exactly (integer DP — equality is bit-identity).
func SolveSerial(n int, pair PairFunc, minSpan int) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fourrussians: non-positive length %d", n)
	}
	if pair == nil {
		return nil, fmt.Errorf("fourrussians: nil pair function")
	}
	res := &Result{N: n, Q: 1, n: n, table: make([]int32, n*n)}
	d := res.table
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			best := d[i*n+j-1]
			if v := d[(i+1)*n+j]; v > best {
				best = v
			}
			if span > minSpan && pair(i, j) {
				var inner int32
				if i+1 <= j-1 {
					inner = d[(i+1)*n+j-1]
				}
				if v := inner + 1; v > best {
					best = v
				}
			}
			for k := i; k < j; k++ {
				if v := d[i*n+k] + d[(k+1)*n+j]; v > best {
					best = v
				}
			}
			d[i*n+j] = best
		}
	}
	res.Pairs = int(d[n-1])
	return res, nil
}
