package fourrussians

import "testing"

func BenchmarkSolveScale(b *testing.B) {
	for _, n := range []int{1024, 2048} {
		pair := randPair(n, 1)
		b.Run("fr", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Solve(n, pair, Options{MinSpan: 1})
			}
		})
		b.Run("serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SolveSerial(n, pair, 1)
			}
		})
	}
}
