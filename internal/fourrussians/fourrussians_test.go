package fourrussians

import (
	"math/rand"
	"testing"
)

// randPair builds a deterministic random symmetric pair predicate over
// a synthetic 4-letter alphabet with canonical RNA pairing.
func randPair(n int, seed int64) PairFunc {
	rng := rand.New(rand.NewSource(seed))
	seq := make([]byte, n)
	for i := range seq {
		seq[i] = "ACGU"[rng.Intn(4)]
	}
	return RNAPair(seq)
}

func TestSolveMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 33, 64, 100, 257} {
		for _, minSpan := range []int{0, 1, 3} {
			pair := randPair(n, int64(n*10+minSpan))
			fast, err := Solve(n, pair, Options{MinSpan: minSpan})
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			ref, err := SolveSerial(n, pair, minSpan)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			for i := 0; i < n; i++ {
				for j := i; j < n; j++ {
					if fast.At(i, j) != ref.At(i, j) {
						t.Fatalf("n=%d minSpan=%d q=%d: D(%d,%d) = %d, reference %d",
							n, minSpan, fast.Q, i, j, fast.At(i, j), ref.At(i, j))
					}
				}
			}
			if fast.Pairs != ref.Pairs {
				t.Fatalf("n=%d: Pairs %d != %d", n, fast.Pairs, ref.Pairs)
			}
		}
	}
}

func TestSolveAllGroupSizes(t *testing.T) {
	const n = 97
	pair := randPair(n, 42)
	ref, err := SolveSerial(n, pair, 1)
	if err != nil {
		t.Fatal(err)
	}
	for q := 2; q <= 8; q++ {
		fast, err := Solve(n, pair, Options{Q: q, MinSpan: 1})
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if fast.At(i, j) != ref.At(i, j) {
					t.Fatalf("q=%d: D(%d,%d) = %d, reference %d", q, i, j, fast.At(i, j), ref.At(i, j))
				}
			}
		}
	}
}

func TestSolveUsesGroupLookups(t *testing.T) {
	const n = 256
	fast, err := Solve(n, randPair(n, 7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fast.GroupLookups == 0 {
		t.Fatal("no group lookups taken at n=256 — fast path is vacuous")
	}
	// The table path must dominate: scalar splits are O(n²·q), lookups
	// cover the remaining O(n³/q) split points.
	if fast.ScalarSplits > fast.GroupLookups*int64(fast.Q) {
		t.Fatalf("scalar splits (%d) dominate lookups (%d × q=%d)",
			fast.ScalarSplits, fast.GroupLookups, fast.Q)
	}
}

func TestDegenerateInputs(t *testing.T) {
	if _, err := Solve(0, func(i, j int) bool { return false }, Options{}); err == nil {
		t.Fatal("Solve(0) should fail")
	}
	if _, err := Solve(4, nil, Options{}); err == nil {
		t.Fatal("nil pair func should fail")
	}
	if _, err := Solve(4, func(i, j int) bool { return false }, Options{Q: 99}); err == nil {
		t.Fatal("oversized Q should fail")
	}
	res, err := Solve(1, func(i, j int) bool { return true }, Options{})
	if err != nil || res.Pairs != 0 {
		t.Fatalf("n=1: %v pairs=%d", err, res.Pairs)
	}
	// All-pairable with MinSpan 1: nesting from the outside in pairs
	// (0,9)..(3,6); the innermost (4,5) is blocked by the span rule.
	all, err := Solve(10, func(i, j int) bool { return true }, Options{MinSpan: 1})
	if err != nil || all.Pairs != 4 {
		t.Fatalf("all-pairable n=10: %v pairs=%d, want 4", err, all.Pairs)
	}
	// With MinSpan 0 the innermost pair is legal too.
	all0, err := Solve(10, func(i, j int) bool { return true }, Options{MinSpan: 0})
	if err != nil || all0.Pairs != 5 {
		t.Fatalf("all-pairable n=10 minSpan=0: %v pairs=%d, want 5", err, all0.Pairs)
	}
}

func TestBuildR(t *testing.T) {
	// q=3: vectors are 2 bits. R[a][b] = max_p (Ha(p) − Gb(p)), p=0..2.
	r := buildR(3)
	// a=0b11 (h = 1,1 → H = 0,1,2), b=0b00 (G = 0,0,0) → max = 2.
	if got := r[3*4+0]; got != 2 {
		t.Fatalf("R[11][00] = %d, want 2", got)
	}
	// a=0b00, b=0b11 → H−G = 0,−1,−2 → max 0.
	if got := r[0*4+3]; got != 0 {
		t.Fatalf("R[00][11] = %d, want 0", got)
	}
	// a=0b10 (h=0,1 → H=0,0,1), b=0b01 (g=1,0 → G=0,1,1) → diffs 0,−1,0 → 0.
	if got := r[2*4+1]; got != 0 {
		t.Fatalf("R[10][01] = %d, want 0", got)
	}
}

func BenchmarkSolveFourRussians(b *testing.B) {
	benchSolve(b, false)
}

func BenchmarkSolveSerialReference(b *testing.B) {
	benchSolve(b, true)
}

func benchSolve(b *testing.B, serial bool) {
	const n = 512
	pair := randPair(n, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if serial {
			_, err = SolveSerial(n, pair, 1)
		} else {
			_, err = Solve(n, pair, Options{MinSpan: 1})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
