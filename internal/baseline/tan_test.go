package baseline

import (
	"testing"

	"cellnpdp/internal/npdp"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

func TestTanMatchesSerial(t *testing.T) {
	for _, n := range []int{4, 16, 33, 64, 100, 200} {
		for _, workers := range []int{1, 2, 4} {
			for _, tile := range []int{8, 16, 24} {
				src := workload.Chain[float32](n, int64(n*13+workers+tile))
				ref := src.Clone()
				npdp.SolveSerial(ref)
				got := src.Clone()
				if _, err := Solve(got, Options{Workers: workers, Tile: tile}); err != nil {
					t.Fatalf("Solve(n=%d w=%d t=%d): %v", n, workers, tile, err)
				}
				if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
					t.Fatalf("n=%d w=%d t=%d: first diff at (%d,%d): serial=%v tan=%v", n, workers, tile, i, j, av, bv)
				}
			}
		}
	}
}

func TestTanMatchesSerialF64(t *testing.T) {
	src := workload.Dense[float64](130, 3)
	ref := src.Clone()
	npdp.SolveSerial(ref)
	got := src.Clone()
	if _, err := Solve(got, Options{Workers: 4, Tile: 20}); err != nil {
		t.Fatal(err)
	}
	if !tri.Equal[float64](ref, got) {
		t.Fatal("TanNPDP f64 differs from serial")
	}
}

func TestTanRelaxCount(t *testing.T) {
	const n = 60
	src := workload.Chain[float32](n, 1)
	relax, err := Solve(src, Options{Workers: 3, Tile: 16})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (int64(n)*int64(n) - 1) / 6
	if relax != want {
		t.Errorf("relaxations = %d, want %d", relax, want)
	}
}

func TestTanRejectsBadOptions(t *testing.T) {
	src := workload.Chain[float32](16, 1)
	if _, err := Solve(src, Options{Workers: 0, Tile: 8}); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := Solve(src, Options{Workers: 2, Tile: 0}); err == nil {
		t.Error("0 tile accepted")
	}
}

func TestDefaultTile(t *testing.T) {
	if got := DefaultTile(32*1024, 4); got != 88 {
		t.Errorf("DefaultTile(32K,4) = %d, want 88", got)
	}
	if got := DefaultTile(32*1024, 8); got != 64 {
		t.Errorf("DefaultTile(32K,8) = %d, want 64", got)
	}
}
