// Package baseline implements a TanNPDP-style comparator: the
// state-of-the-art fully optimized CPU algorithm of Tan et al. [24–26]
// that Section VI-C compares against. Its published ingredients are
// tiling for cache reuse, helper-thread prefetching, and block-level
// parallelization — but no SIMD and no register blocking, which is why
// the paper measures its processor utilization below 4%.
//
// The authors' source is not available, so this reconstruction follows
// the published description: blocks of the row-major triangular layout
// are computed in the tiled wavefront order by a pool of workers, each
// block with the plain Figure 1 scalar recurrence (the k loop split
// across finished blocks and the block's own cells). Helper-thread
// prefetching is not reproduced: on the host CPU the hardware prefetcher
// already covers the streaming reads it was introduced for, and Go offers
// no software-prefetch primitive; DESIGN.md records the substitution.
package baseline

import (
	"fmt"

	"cellnpdp/internal/kernel"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// Options configures a TanNPDP run.
type Options struct {
	Workers int // concurrent workers; required > 0
	Tile    int // block side in cells; required > 0
}

// Solve runs the TanNPDP-style algorithm in place on the row-major
// triangular table and returns the number of scalar relaxations.
// Results are bit-identical to npdp.SolveSerial.
func Solve[E semiring.Elem](m *tri.RowMajor[E], opts Options) (int64, error) {
	if opts.Workers <= 0 {
		return 0, fmt.Errorf("baseline: Workers must be positive, got %d", opts.Workers)
	}
	if opts.Tile <= 0 {
		return 0, fmt.Errorf("baseline: Tile must be positive, got %d", opts.Tile)
	}
	n := m.Len()
	blocks := (n + opts.Tile - 1) / opts.Tile
	graph, err := sched.NewGraph(blocks, 1)
	if err != nil {
		return 0, err
	}
	perWorker := make([]int64, opts.Workers)
	err = sched.RunPool(graph, opts.Workers, func(worker int, task sched.Task) error {
		perWorker[worker] += solveBlock(m, task.RowLo*opts.Tile, task.ColLo*opts.Tile, opts.Tile)
		return nil
	})
	var relax int64
	for _, r := range perWorker {
		relax += r
	}
	return relax, err
}

// solveBlock computes the cells of the tile-side block whose top-left
// corner is (rowLo, colLo), in the dependence-respecting order (columns
// ascending, rows descending), each cell with the full Figure 1 k loop.
// Every value read is either in an already-finished block or an
// already-finished cell of this block.
func solveBlock[E semiring.Elem](m *tri.RowMajor[E], rowLo, colLo, tile int) int64 {
	n := m.Len()
	rowHi := rowLo + tile
	if rowHi > n {
		rowHi = n
	}
	colHi := colLo + tile
	if colHi > n {
		colHi = n
	}
	var relax int64
	for j := colLo; j < colHi; j++ {
		iTop := j - 1
		if iTop >= rowHi {
			iTop = rowHi - 1
		}
		for i := iTop; i >= rowLo; i-- {
			v := m.At(i, j)
			for k := i; k < j; k++ {
				if w := m.At(i, k) + m.At(k, j); w < v {
					v = w
				}
			}
			m.Set(i, j, v)
			relax += int64(j - i)
		}
	}
	return relax
}

// DefaultTile returns a block side sized to the paper's 32 KB working-set
// target for the given element width, matching npdp.DefaultTile's budget
// so comparisons tile equally.
func DefaultTile(blockBytes, elemBytes int) int {
	side := kernel.CB
	for (side+kernel.CB)*(side+kernel.CB)*elemBytes <= blockBytes {
		side += kernel.CB
	}
	return side
}
