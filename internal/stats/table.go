// Package stats provides the small formatting layer the experiment
// harness prints tables and figure series through.
package stats

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row, rendered as aligned ASCII.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(width)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Seconds formats a duration in seconds with sensible precision.
func Seconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f s", s)
	case s >= 1:
		return fmt.Sprintf("%.2f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2f ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.2f µs", s*1e6)
	default:
		return fmt.Sprintf("%.0f ns", s*1e9)
	}
}

// Bytes formats a byte count in binary units.
func Bytes(b int64) string {
	const unit = 1024
	switch {
	case b >= unit*unit*unit:
		return fmt.Sprintf("%.2f GiB", float64(b)/(unit*unit*unit))
	case b >= unit*unit:
		return fmt.Sprintf("%.2f MiB", float64(b)/(unit*unit))
	case b >= unit:
		return fmt.Sprintf("%.2f KiB", float64(b)/unit)
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// Ratio formats a speedup/ratio as e.g. "31.6x".
func Ratio(r float64) string {
	if r >= 100 {
		return fmt.Sprintf("%.0fx", r)
	}
	return fmt.Sprintf("%.1fx", r)
}

// Percent formats a fraction as a percentage.
func Percent(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// CSV renders the table as RFC-4180-style CSV (title and notes omitted),
// for piping harness output into plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
