package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	tb.AddNote("a footnote")
	out := tb.String()
	for _, want := range []string{"== Demo ==", "name", "value", "alpha", "22222", "note: a footnote"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and data rows align: "value" column starts at the same offset.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	if len(tb.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tb.Rows[0])
	}
}

func TestSeconds(t *testing.T) {
	cases := map[float64]string{
		123.4:  "123 s",
		1.5:    "1.50 s",
		0.012:  "12.00 ms",
		2e-6:   "2.00 µs",
		3.5e-9: "4 ns",
	}
	for in, want := range cases {
		if got := Seconds(in); got != want {
			t.Errorf("Seconds(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		512:             "512 B",
		2048:            "2.00 KiB",
		3 * 1024 * 1024: "3.00 MiB",
		5 << 30:         "5.00 GiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRatioAndPercent(t *testing.T) {
	if Ratio(31.62) != "31.6x" {
		t.Errorf("Ratio = %q", Ratio(31.62))
	}
	if Ratio(123.4) != "123x" {
		t.Errorf("Ratio = %q", Ratio(123.4))
	}
	if Percent(0.625) != "62.5%" {
		t.Errorf("Percent = %q", Percent(0.625))
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", `quote"inside`)
	got := tb.CSV()
	want := "a,b\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
