package tri

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cellnpdp/internal/semiring"
)

func TestCellCount(t *testing.T) {
	cases := map[int]int{1: 1, 2: 3, 3: 6, 4: 10, 12: 78}
	for n, want := range cases {
		if got := CellCount(n); got != want {
			t.Errorf("CellCount(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestForEachOrderAndCoverage(t *testing.T) {
	const n = 9
	var visits [][2]int
	ForEach(n, func(i, j int) { visits = append(visits, [2]int{i, j}) })
	if len(visits) != CellCount(n) {
		t.Fatalf("visited %d cells, want %d", len(visits), CellCount(n))
	}
	seen := map[[2]int]bool{}
	lastJ, lastI := -1, -1
	for _, v := range visits {
		i, j := v[0], v[1]
		if i < 0 || i > j || j >= n {
			t.Fatalf("visited out-of-triangle cell (%d,%d)", i, j)
		}
		if seen[v] {
			t.Fatalf("cell (%d,%d) visited twice", i, j)
		}
		seen[v] = true
		if j != lastJ {
			if j != lastJ+1 {
				t.Fatalf("column order broken: %d after %d", j, lastJ)
			}
			lastJ, lastI = j, j+1
		}
		if i != lastI-1 {
			t.Fatalf("row order broken in column %d: %d after %d", j, i, lastI)
		}
		lastI = i
	}
}

func TestRowMajorRoundTrip(t *testing.T) {
	const n = 37
	m := NewRowMajor[float32](n)
	ForEach(n, func(i, j int) { m.Set(i, j, float32(i*1000+j)) })
	ForEach(n, func(i, j int) {
		if got := m.At(i, j); got != float32(i*1000+j) {
			t.Fatalf("At(%d,%d) = %v", i, j, got)
		}
	})
}

func TestRowMajorIndexDense(t *testing.T) {
	// Indices must cover [0, CellCount) exactly once.
	const n = 25
	m := NewRowMajor[float64](n)
	seen := make([]bool, CellCount(n))
	ForEach(n, func(i, j int) {
		idx := m.Index(i, j)
		if idx < 0 || idx >= len(seen) || seen[idx] {
			t.Fatalf("Index(%d,%d) = %d invalid or duplicate", i, j, idx)
		}
		seen[idx] = true
	})
}

func TestRowMajorRow(t *testing.T) {
	const n = 16
	m := NewRowMajor[float32](n)
	ForEach(n, func(i, j int) { m.Set(i, j, float32(100*i+j)) })
	row := m.Row(3, 5, 9)
	if len(row) != 5 {
		t.Fatalf("Row length = %d, want 5", len(row))
	}
	for k, v := range row {
		if v != float32(300+5+k) {
			t.Errorf("Row(3,5,9)[%d] = %v, want %v", k, v, 300+5+k)
		}
	}
	row[0] = -1
	if m.At(3, 5) != -1 {
		t.Error("Row does not alias the backing store")
	}
}

func TestTiledRoundTrip(t *testing.T) {
	for _, n := range []int{1, 5, 16, 17, 40} {
		for _, tile := range []int{4, 8, 16} {
			tt := NewTiled[float32](n, tile)
			ForEach(n, func(i, j int) { tt.Set(i, j, float32(i*997+j)) })
			ForEach(n, func(i, j int) {
				if got := tt.At(i, j); got != float32(i*997+j) {
					t.Fatalf("n=%d tile=%d: At(%d,%d) = %v", n, tile, i, j, got)
				}
			})
		}
	}
}

func TestTiledBlockContiguity(t *testing.T) {
	// The whole point of the NDL: a block's cells are consecutive in the
	// backing store, and distinct blocks do not overlap.
	tt := NewTiled[float32](40, 8)
	m := tt.Blocks()
	offsets := map[int][2]int{}
	for bi := 0; bi < m; bi++ {
		for bj := bi; bj < m; bj++ {
			off := tt.BlockBytesOffset(bi, bj)
			if off%(8*8) != 0 {
				t.Errorf("block (%d,%d) offset %d not block-aligned", bi, bj, off)
			}
			if prev, dup := offsets[off]; dup {
				t.Errorf("blocks (%d,%d) and %v share offset %d", bi, bj, prev, off)
			}
			offsets[off] = [2]int{bi, bj}
			b := tt.Block(bi, bj)
			if len(b) != 64 {
				t.Errorf("block (%d,%d) length %d", bi, bj, len(b))
			}
		}
	}
	if want := m * (m + 1) / 2; len(offsets) != want {
		t.Errorf("%d distinct blocks, want %d", len(offsets), want)
	}
}

func TestTiledBlockAliasesAt(t *testing.T) {
	tt := NewTiled[float64](20, 8)
	b := tt.Block(1, 2)
	b[3*8+5] = 42 // cell (8+3, 16+5)
	if tt.At(11, 21) != 42 {
		t.Error("Block slice does not alias At addressing")
	}
}

func TestTiledPaddingIsInf(t *testing.T) {
	tt := NewTiled[float32](10, 8) // padded to 16
	inf := semiring.Inf[float32]()
	ForEach(10, func(i, j int) { tt.Set(i, j, 1) })
	// Padding cells beyond n and below the diagonal must stay infinite.
	for bi := 0; bi < tt.Blocks(); bi++ {
		for bj := bi; bj < tt.Blocks(); bj++ {
			b := tt.Block(bi, bj)
			for a := 0; a < 8; a++ {
				for c := 0; c < 8; c++ {
					gi, gj := bi*8+a, bj*8+c
					if gi > gj || gi >= 10 || gj >= 10 {
						if b[a*8+c] != inf {
							t.Fatalf("padding cell (%d,%d) = %v, want Inf", gi, gj, b[a*8+c])
						}
					}
				}
			}
		}
	}
}

func TestResetPadding(t *testing.T) {
	tt := NewTiled[float32](10, 8)
	// Corrupt padding, then restore.
	tt.Block(0, 0)[1*8+0] = 7 // below-diagonal
	tt.Block(1, 1)[3*8+3] = 7 // beyond n on the diagonal block
	tt.ResetPadding()
	inf := semiring.Inf[float32]()
	if tt.Block(0, 0)[1*8+0] != inf || tt.Block(1, 1)[3*8+3] != inf {
		t.Error("ResetPadding did not restore infinity")
	}
}

func TestConvertRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		tile := 4 * (1 + rng.Intn(4))
		src := NewRowMajor[float32](n)
		ForEach(n, func(i, j int) { src.Set(i, j, rng.Float32()*100) })
		back := ToRowMajor(ToTiled(src, tile))
		return Equal[float32](src, back)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualAndFirstDiff(t *testing.T) {
	a := NewRowMajor[float32](6)
	b := NewRowMajor[float32](6)
	if !Equal[float32](a, b) {
		t.Error("identical tables not Equal")
	}
	b.Set(2, 4, 1)
	if Equal[float32](a, b) {
		t.Error("differing tables Equal")
	}
	i, j, _, bv, diff := FirstDiff[float32](a, b)
	if !diff || i != 2 || j != 4 || bv != 1 {
		t.Errorf("FirstDiff = (%d,%d,%v,%v)", i, j, bv, diff)
	}
	c := NewRowMajor[float32](5)
	if Equal[float32](a, c) {
		t.Error("different sizes Equal")
	}
}

func TestCheckersReject(t *testing.T) {
	if CheckSize(0) == nil || CheckSize(-3) == nil {
		t.Error("CheckSize accepted non-positive size")
	}
	for _, c := range [][3]int{{5, -1, 2}, {5, 3, 2}, {5, 0, 5}, {5, 2, 7}} {
		if CheckCell(c[0], c[1], c[2]) == nil {
			t.Errorf("CheckCell(%v) accepted invalid cell", c)
		}
	}
	if CheckCell(5, 0, 4) != nil || CheckCell(5, 2, 2) != nil {
		t.Error("CheckCell rejected valid cell")
	}
}

func TestPanicsOnInvalid(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewRowMajor(0)", func() { NewRowMajor[float32](0) })
	mustPanic("NewTiled(-1,4)", func() { NewTiled[float32](-1, 4) })
	mustPanic("NewTiled(8,0)", func() { NewTiled[float32](8, 0) })
	tt := NewTiled[float32](8, 4)
	mustPanic("Block(1,0)", func() { tt.Block(1, 0) })
	mustPanic("Block(0,5)", func() { tt.Block(0, 5) })
}

func TestClone(t *testing.T) {
	src := NewRowMajor[float32](10)
	src.Set(1, 5, 3)
	c := src.Clone()
	c.Set(1, 5, 9)
	if src.At(1, 5) != 3 {
		t.Error("RowMajor Clone shares storage")
	}
	ts := NewTiled[float32](10, 4)
	ts.Set(1, 5, 3)
	tc := ts.Clone()
	tc.Set(1, 5, 9)
	if ts.At(1, 5) != 3 {
		t.Error("Tiled Clone shares storage")
	}
}

func TestFill(t *testing.T) {
	m := NewRowMajor[float64](7)
	Fill[float64](m, func(i, j int) float64 { return float64(i + j) })
	if m.At(2, 5) != 7 {
		t.Errorf("Fill wrote %v at (2,5)", m.At(2, 5))
	}
}
