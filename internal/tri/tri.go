// Package tri implements the triangular DP-table layouts the paper
// compares: the conventional row-major triangular matrix (Section III,
// Figure 2) and the new block-sequential data layout, NDL (Figure 5),
// where each square memory block is stored contiguously so that one DMA
// command moves a whole block.
//
// Throughout, the table holds cells (i, j) with 0 ≤ i ≤ j < n: the upper
// triangle including the diagonal. The canonical NPDP evaluation order is
// the one in the paper's Figure 1: columns j ascending, rows i descending.
package tri

import (
	"fmt"

	"cellnpdp/internal/semiring"
)

// CellCount returns the number of stored cells of an n-point table:
// n(n+1)/2 (upper triangle including the diagonal).
func CellCount(n int) int { return n * (n + 1) / 2 }

// CheckSize validates a problem size.
func CheckSize(n int) error {
	if n <= 0 {
		return fmt.Errorf("tri: problem size must be positive, got %d", n)
	}
	return nil
}

// CheckCell validates that (i, j) addresses a stored (upper-triangle)
// cell of an n-point table.
func CheckCell(n, i, j int) error {
	if i < 0 || j < i || j >= n {
		return fmt.Errorf("tri: cell (%d,%d) outside upper triangle of size %d", i, j, n)
	}
	return nil
}

// ForEach visits every stored cell in the canonical Figure 1 order:
// j = 0..n-1 ascending, i = j..0 descending. The diagonal cell (j, j) is
// visited first within its column.
func ForEach(n int, visit func(i, j int)) {
	for j := 0; j < n; j++ {
		for i := j; i >= 0; i-- {
			visit(i, j)
		}
	}
}

// Table is the read/write interface shared by both layouts. Engines use
// the concrete types on hot paths; Table exists for tests, conversion and
// the generic reference implementations.
type Table[E semiring.Elem] interface {
	// Len returns the problem size n.
	Len() int
	// At returns the value of cell (i, j). i ≤ j required.
	At(i, j int) E
	// Set stores v into cell (i, j). i ≤ j required.
	Set(i, j int, v E)
}

// Fill sets every stored cell of t to the value produced by f.
func Fill[E semiring.Elem](t Table[E], f func(i, j int) E) {
	n := t.Len()
	ForEach(n, func(i, j int) { t.Set(i, j, f(i, j)) })
}

// Equal reports whether two tables have the same size and identical cell
// values. Min-plus engines re-associate the same min-set, so correct
// engines agree bit-for-bit and Equal uses exact comparison.
func Equal[E semiring.Elem](a, b Table[E]) bool {
	if a.Len() != b.Len() {
		return false
	}
	n := a.Len()
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}

// FirstDiff returns the first (in canonical order) cell where a and b
// disagree, for test diagnostics. ok is false when the tables are equal.
func FirstDiff[E semiring.Elem](a, b Table[E]) (i, j int, av, bv E, ok bool) {
	n := a.Len()
	if b.Len() != n {
		return 0, 0, 0, 0, true
	}
	for jj := 0; jj < n; jj++ {
		for ii := jj; ii >= 0; ii-- {
			if x, y := a.At(ii, jj), b.At(ii, jj); x != y {
				return ii, jj, x, y, true
			}
		}
	}
	return 0, 0, 0, 0, false
}
