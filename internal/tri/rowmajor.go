package tri

import "cellnpdp/internal/semiring"

// RowMajor is the conventional triangular layout used by the prior work
// the paper improves on (Section III): row i stores its n-i upper-triangle
// cells (i,i)..(i,n-1) consecutively, and the rows are concatenated.
//
// Its two problems, which the paper's Section III identifies, fall out of
// the index math below: a column walk d[k][j] (the innermost-loop stream)
// touches addresses with non-uniform strides because row lengths differ,
// and a block of the triangle is scattered over as many address ranges as
// it has rows.
type RowMajor[E semiring.Elem] struct {
	n      int
	cells  []E
	rowOff []int // rowOff[i] is the flat index of cell (i, i)
}

// NewRowMajor allocates an n-point row-major triangular table with all
// cells set to the min-plus identity (infinity).
func NewRowMajor[E semiring.Elem](n int) *RowMajor[E] {
	if err := CheckSize(n); err != nil {
		panic(err)
	}
	m := &RowMajor[E]{
		n:      n,
		cells:  make([]E, CellCount(n)),
		rowOff: make([]int, n),
	}
	off := 0
	for i := 0; i < n; i++ {
		m.rowOff[i] = off
		off += n - i
	}
	inf := semiring.Inf[E]()
	for k := range m.cells {
		m.cells[k] = inf
	}
	return m
}

// Len returns the problem size n.
func (m *RowMajor[E]) Len() int { return m.n }

// Index returns the flat index of cell (i, j) in the backing slice.
func (m *RowMajor[E]) Index(i, j int) int { return m.rowOff[i] + (j - i) }

// At returns the value of cell (i, j).
func (m *RowMajor[E]) At(i, j int) E { return m.cells[m.rowOff[i]+(j-i)] }

// Set stores v into cell (i, j).
func (m *RowMajor[E]) Set(i, j int, v E) { m.cells[m.rowOff[i]+(j-i)] = v }

// Row returns the slice backing cells (i, lo)..(i, hi) inclusive; the
// caller may read and write through it. lo ≥ i required.
func (m *RowMajor[E]) Row(i, lo, hi int) []E {
	return m.cells[m.rowOff[i]+(lo-i) : m.rowOff[i]+(hi-i)+1]
}

// Cells exposes the whole backing store (for trace generation and I/O).
func (m *RowMajor[E]) Cells() []E { return m.cells }

// RowOffsets exposes the per-row flat offsets (for trace generation).
func (m *RowMajor[E]) RowOffsets() []int { return m.rowOff }

// Clone returns a deep copy.
func (m *RowMajor[E]) Clone() *RowMajor[E] {
	c := &RowMajor[E]{n: m.n, cells: make([]E, len(m.cells)), rowOff: m.rowOff}
	copy(c.cells, m.cells)
	return c
}
