package tri

import (
	"fmt"

	"cellnpdp/internal/semiring"
)

// Tiled is the paper's new data layout (NDL, Figure 5): the triangle is
// cut into square memory blocks of tile×tile cells and every block is
// stored contiguously in row-major order, so a whole block moves with a
// single large DMA transfer. Triangular (diagonal) blocks are padded into
// squares; the padding cells hold the min-plus identity so they can never
// win a min and therefore never affect results (Section IV-A notes the
// padding overhead is trivial).
//
// Blocks are identified by their tile coordinates (bi, bj), 0 ≤ bi ≤ bj <
// Blocks(), and ordered in memory row-major over the upper triangle of
// blocks, mirroring Figure 5.
type Tiled[E semiring.Elem] struct {
	n        int // logical problem size
	np       int // padded size: Blocks() * tile
	tile     int
	m        int // number of tiles per side
	cells    []E
	blockOff []int // blockOff[bi] is the block id of block (bi, bi)
}

// NewTiled allocates an n-point tiled table with the given tile side.
// All cells, including padding, start at the min-plus identity.
func NewTiled[E semiring.Elem](n, tile int) *Tiled[E] {
	if err := CheckSize(n); err != nil {
		panic(err)
	}
	if tile <= 0 {
		panic(fmt.Sprintf("tri: tile side must be positive, got %d", tile))
	}
	m := (n + tile - 1) / tile
	t := &Tiled[E]{
		n:        n,
		np:       m * tile,
		tile:     tile,
		m:        m,
		cells:    make([]E, m*(m+1)/2*tile*tile),
		blockOff: make([]int, m),
	}
	id := 0
	for bi := 0; bi < m; bi++ {
		t.blockOff[bi] = id
		id += m - bi
	}
	inf := semiring.Inf[E]()
	for k := range t.cells {
		t.cells[k] = inf
	}
	return t
}

// Len returns the logical problem size n.
func (t *Tiled[E]) Len() int { return t.n }

// PaddedLen returns the padded problem size Blocks()*Tile().
func (t *Tiled[E]) PaddedLen() int { return t.np }

// Tile returns the memory-block side length in cells.
func (t *Tiled[E]) Tile() int { return t.tile }

// Blocks returns the number of tiles per side.
func (t *Tiled[E]) Blocks() int { return t.m }

// BlockID returns the dense index of block (bi, bj) among the stored
// upper-triangle blocks.
func (t *Tiled[E]) BlockID(bi, bj int) int { return t.blockOff[bi] + (bj - bi) }

// BlockBytesOffset returns the flat cell offset of block (bi, bj) in the
// backing store; the block occupies Tile()² consecutive cells from there.
// DMA modeling uses it as the block's main-memory address.
func (t *Tiled[E]) BlockBytesOffset(bi, bj int) int {
	return t.BlockID(bi, bj) * t.tile * t.tile
}

// Block returns the contiguous Tile()×Tile() row-major slice backing
// block (bi, bj). bi ≤ bj required.
func (t *Tiled[E]) Block(bi, bj int) []E {
	if bi < 0 || bj < bi || bj >= t.m {
		panic(fmt.Sprintf("tri: block (%d,%d) outside upper triangle of %d tiles", bi, bj, t.m))
	}
	off := t.BlockBytesOffset(bi, bj)
	return t.cells[off : off+t.tile*t.tile]
}

// At returns the value of cell (i, j).
func (t *Tiled[E]) At(i, j int) E {
	bi, bj := i/t.tile, j/t.tile
	b := t.Block(bi, bj)
	return b[(i%t.tile)*t.tile+(j%t.tile)]
}

// Set stores v into cell (i, j).
func (t *Tiled[E]) Set(i, j int, v E) {
	bi, bj := i/t.tile, j/t.tile
	b := t.Block(bi, bj)
	b[(i%t.tile)*t.tile+(j%t.tile)] = v
}

// Cells exposes the whole backing store.
func (t *Tiled[E]) Cells() []E { return t.cells }

// Clone returns a deep copy.
func (t *Tiled[E]) Clone() *Tiled[E] {
	c := *t
	c.cells = make([]E, len(t.cells))
	copy(c.cells, t.cells)
	return &c
}

// ResetPadding rewrites every padding cell (out-of-triangle positions in
// diagonal blocks and positions past n) to the min-plus identity. Engines
// call it after bulk-loading user data to restore the invariant padding
// depends on.
func (t *Tiled[E]) ResetPadding() {
	inf := semiring.Inf[E]()
	for bi := 0; bi < t.m; bi++ {
		for bj := bi; bj < t.m; bj++ {
			b := t.Block(bi, bj)
			for a := 0; a < t.tile; a++ {
				gi := bi*t.tile + a
				for c := 0; c < t.tile; c++ {
					gj := bj*t.tile + c
					if gi > gj || gi >= t.n || gj >= t.n {
						b[a*t.tile+c] = inf
					}
				}
			}
		}
	}
}
