package tri

import "cellnpdp/internal/semiring"

// ToTiled copies a row-major table into a freshly allocated tiled table
// with the given tile side. Padding cells keep the min-plus identity.
func ToTiled[E semiring.Elem](src *RowMajor[E], tile int) *Tiled[E] {
	dst := NewTiled[E](src.Len(), tile)
	n := src.Len()
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			dst.Set(i, j, src.At(i, j))
		}
	}
	return dst
}

// ToRowMajor copies a tiled table into a freshly allocated row-major
// table, dropping the padding.
func ToRowMajor[E semiring.Elem](src *Tiled[E]) *RowMajor[E] {
	dst := NewRowMajor[E](src.Len())
	n := src.Len()
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			dst.Set(i, j, src.At(i, j))
		}
	}
	return dst
}

// Copy copies all stored cells from src to dst. The tables must have the
// same problem size.
func Copy[E semiring.Elem](dst, src Table[E]) {
	n := src.Len()
	if dst.Len() != n {
		panic("tri: Copy size mismatch")
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			dst.Set(i, j, src.At(i, j))
		}
	}
}
