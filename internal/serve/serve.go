// Package serve is the long-running NPDP solve service: an HTTP/JSON
// front end over the cellnpdp engines with the robustness a fleet of
// concurrent requests needs and a single CLI solve does not.
//
//   - Admission control. A token bucket bounds the request rate, and a
//     memory-budget gate bounds residency: each request's table +
//     staging + checkpoint footprint is computed up front from the
//     paper's block geometry (cellnpdp.EstimateSolve) and admitted only
//     while the configured byte budget holds — the serving analogue of
//     the Cell's fixed 256 KB local store forcing explicit block
//     budgeting. Requests that do not fit wait in a bounded FIFO queue;
//     overflow is rejected with 429 + Retry-After, and requests whose
//     remaining deadline falls below the Section V model's predicted
//     solve time are shed with 503 instead of burning budget on work
//     that cannot finish in time.
//   - Isolation and degradation. Every solve runs under a context
//     derived from its deadline and inherits the resilience layer's
//     retry and panic isolation. A circuit breaker watches parallel-
//     engine outcomes service-wide: repeated failures trip it open and
//     route requests straight to the serial Tiled engine, with
//     half-open probes restoring the parallel path once it recovers.
//   - Lifecycle. Drain stops admission (503 for new work) while
//     in-flight solves finish; the `cellnpdp serve` command wires this
//     to SIGTERM and exits 0 after reporting per-outcome counts.
//   - Integrity. Each solved table is digested into per-band CRC32C
//     checksums at solve time and re-verified before the response
//     serializes, and a residual spot check re-evaluates the recurrence
//     at sampled cells — corrupted results become 500s, never silently
//     wrong answers.
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the server. The zero value serves with sane defaults;
// every knob is also a `cellnpdp serve` flag.
type Config struct {
	// Workers, BlockBytes and MaxRetries configure each solve, as in
	// cellnpdp.Options (0 = GOMAXPROCS / 32 KiB / 3 retries; negative
	// MaxRetries disables retry).
	Workers    int
	BlockBytes int
	MaxRetries int
	// BudgetBytes is the admission memory budget: total estimated
	// footprint of concurrently admitted solves. 0 = 4 GiB.
	BudgetBytes int64
	// QueueDepth bounds the FIFO admission queue; overflow is rejected
	// with 429. 0 = 8; negative = no queue (reject when full).
	QueueDepth int
	// RatePerSec and Burst shape the token bucket; RatePerSec 0 means
	// unlimited, Burst 0 means max(1, ceil(RatePerSec)).
	RatePerSec float64
	Burst      int
	// DefaultDeadline applies when a request names none. 0 = 30 s.
	DefaultDeadline time.Duration
	// MaxN bounds accepted problem sizes. 0 = 16384 (the paper's max).
	MaxN int
	// BreakerThreshold consecutive parallel failures trip the circuit
	// open for BreakerCooldown before a half-open probe. 0 = 3 / 5 s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// PredictFactor calibrates the Section V model's seconds into this
	// host's wall seconds for deadline shedding. 0 = 1.
	PredictFactor float64
	// ResidualSamples and CRCBandRows tune the integrity checks.
	// 0 = 64 each.
	ResidualSamples int
	CRCBandRows     int
	// Logf receives operational messages; nil is silent.
	Logf func(format string, args ...any)
	// Clock is the time source, injectable for tests; nil = time.Now.
	Clock func() time.Time
	// ClusterHealth, when non-nil, is polled by GET /healthz and its
	// snapshot reported under "cluster" — the seam a co-located
	// cluster coordinator publishes its live counters through,
	// including the HA triple an operator watches during failover:
	// "epoch" (the leadership term serving writes), "fenced_writes"
	// (results rejected from deposed leaders or stale workers), and
	// "failovers" (1 when this coordinator resumed from a replica).
	ClusterHealth func() map[string]any
	// PagerHealth, when non-nil, is polled by GET /healthz and its
	// snapshot reported under "pager" — the seam an out-of-core solve
	// (a paged engine run or a paged cluster coordinator) publishes its
	// spill counters through. The keys an operator watches during a
	// disk incident: "spilled_blocks" (final blocks written out),
	// "faulted_pages" (page-ins that failed CRC or I/O),
	// "page_heals" (faults recovered by retry or pristine demote), and
	// "enospc_degradations" (spills abandoned for lack of disk space —
	// the pager is running in-memory past its budget). pager.Stats
	// .Health() renders the expected map.
	PagerHealth func() map[string]any
}

func (c Config) workers() int { return c.Workers } // 0 delegates to cellnpdp
func (c Config) maxN() int    { return defInt(c.MaxN, 16384) }
func (c Config) budgetBytes() int64 {
	if c.BudgetBytes > 0 {
		return c.BudgetBytes
	}
	return 4 << 30
}
func (c Config) queueDepth() int {
	if c.QueueDepth < 0 {
		return 0
	}
	return defInt(c.QueueDepth, 8)
}
func (c Config) deadline() time.Duration {
	if c.DefaultDeadline > 0 {
		return c.DefaultDeadline
	}
	return 30 * time.Second
}
func (c Config) predictFactor() float64 {
	if c.PredictFactor > 0 {
		return c.PredictFactor
	}
	return 1
}
func (c Config) maxRetries() int {
	if c.MaxRetries < 0 {
		return 0
	}
	return defInt(c.MaxRetries, 3)
}
func (c Config) burst() int {
	if c.Burst > 0 {
		return c.Burst
	}
	return int(math.Max(1, math.Ceil(c.RatePerSec)))
}
func (c Config) clock() func() time.Time {
	if c.Clock != nil {
		return c.Clock
	}
	return time.Now
}
func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func defInt(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// Server is one serving instance. Create with New, expose Handler on an
// http.Server, call Drain then Wait to shut down gracefully.
type Server struct {
	cfg    Config
	bucket *tokenBucket
	gate   *memGate
	brk    *breaker

	draining atomic.Bool
	inflight sync.WaitGroup
	active   atomic.Int64

	mu       sync.Mutex
	outcomes map[int]int64
	degraded int64
	healed   int64 // solves recovered by the in-process heal-and-retry

	// corruptAfterDigest, when non-nil, mutates the solved table (passed
	// as *cellnpdp.Table[E]) between digesting and the pre-serialize
	// re-verify — the test hook proving torn results become 500s.
	corruptAfterDigest func(table any)
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	now := cfg.clock()
	return &Server{
		cfg:      cfg,
		bucket:   newTokenBucket(cfg.RatePerSec, cfg.burst(), now),
		gate:     newMemGate(cfg.budgetBytes(), cfg.queueDepth()),
		brk:      newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, now),
		outcomes: make(map[int]int64),
	}
}

// Handler returns the HTTP surface: POST /solve, GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// Drain stops admission: every subsequent request is rejected with 503
// while already-admitted solves run to completion. Idempotent.
func (s *Server) Drain() {
	if !s.draining.Swap(true) {
		s.cfg.logf("serve: draining — admission stopped, waiting for in-flight solves")
	}
}

// Draining reports whether admission is stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// Wait blocks until every in-flight request has finished. Callers drain
// first; the http.Server's own Shutdown covers the transport side.
func (s *Server) Wait() { s.inflight.Wait() }

// Outcomes returns a copy of the per-HTTP-status response counts.
func (s *Server) Outcomes() map[int]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]int64, len(s.outcomes))
	for k, v := range s.outcomes {
		out[k] = v
	}
	return out
}

// OutcomeSummary renders the outcome counts as "200=5 429=3 503=1".
func (s *Server) OutcomeSummary() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]int, 0, len(s.outcomes))
	for k := range s.outcomes {
		keys = append(keys, k)
	}
	// Small fixed set; insertion sort keeps it dependency-free.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := ""
	for _, k := range keys {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%d=%d", k, s.outcomes[k])
	}
	if out == "" {
		out = "none"
	}
	return out
}

func (s *Server) recordOutcome(status int) {
	s.mu.Lock()
	s.outcomes[status]++
	s.mu.Unlock()
}

// ErrorResponse is the JSON body of every non-200 outcome.
type ErrorResponse struct {
	Error             string  `json:"error"`
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// writeJSON serializes v with the status and records the outcome.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.cfg.logf("serve: writing response: %v", err)
	}
	s.recordOutcome(status)
}

// reject emits an error outcome, attaching Retry-After when positive.
func (s *Server) reject(w http.ResponseWriter, status int, retryAfter time.Duration, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	resp := ErrorResponse{Error: msg}
	if retryAfter > 0 {
		secs := int(math.Ceil(retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		resp.RetryAfterSeconds = retryAfter.Seconds()
	}
	s.writeJSON(w, status, resp)
}

// Health is the GET /healthz body.
type Health struct {
	Status      string `json:"status"` // "ok" or "draining"
	Inflight    int64  `json:"inflight"`
	BudgetBytes int64  `json:"budget_bytes"`
	UsedBytes   int64  `json:"used_bytes"`
	Admitted    int    `json:"admitted"`
	Queued      int    `json:"queued"`
	// Breaker state detail: current state, consecutive parallel failures
	// counted toward the trip threshold, lifetime trips, and — while
	// open — milliseconds until a half-open probe is admitted.
	Breaker                    string           `json:"breaker"`
	BreakerFailures            int              `json:"breaker_failures"`
	BreakerTrips               int              `json:"breaker_trips"`
	BreakerCooldownRemainingMS int64            `json:"breaker_cooldown_remaining_ms"`
	Degraded                   int64            `json:"degraded_solves"`
	Healed                     int64            `json:"healed_solves"`
	Outcomes                   map[string]int64 `json:"outcomes"`
	// Cluster carries the co-located coordinator's snapshot when
	// Config.ClusterHealth is wired; absent otherwise.
	Cluster map[string]any `json:"cluster,omitempty"`
	// Pager carries the out-of-core spill pager's snapshot when
	// Config.PagerHealth is wired; absent otherwise.
	Pager map[string]any `json:"pager,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.reject(w, http.StatusMethodNotAllowed, 0, "healthz is GET-only")
		return
	}
	used, budget, active, queued := s.gate.snapshot()
	state, failures, trips := s.brk.snapshot()
	h := Health{
		Status:                     "ok",
		Inflight:                   s.active.Load(),
		BudgetBytes:                budget,
		UsedBytes:                  used,
		Admitted:                   active,
		Queued:                     queued,
		Breaker:                    state.String(),
		BreakerFailures:            failures,
		BreakerTrips:               trips,
		BreakerCooldownRemainingMS: s.brk.cooldownRemaining().Milliseconds(),
		Outcomes:                   map[string]int64{},
	}
	if s.draining.Load() {
		h.Status = "draining"
	}
	if s.cfg.ClusterHealth != nil {
		h.Cluster = s.cfg.ClusterHealth()
	}
	if s.cfg.PagerHealth != nil {
		h.Pager = s.cfg.PagerHealth()
	}
	s.mu.Lock()
	h.Degraded = s.degraded
	h.Healed = s.healed
	for k, v := range s.outcomes {
		h.Outcomes[strconv.Itoa(k)] = v
	}
	s.mu.Unlock()
	// Health probes are not admission outcomes; write directly.
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(h); err != nil {
		s.cfg.logf("serve: writing healthz: %v", err)
	}
}
