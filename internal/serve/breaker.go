package serve

import (
	"sync"
	"time"
)

// BreakerState names the circuit breaker's three states.
type BreakerState int

// The classic three-state circuit.
const (
	// BreakerClosed: healthy — requests may use the parallel engine.
	BreakerClosed BreakerState = iota
	// BreakerOpen: tripped — every request takes the Tiled degradation
	// path until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed — exactly one probe request is
	// allowed onto the parallel engine; its outcome closes or re-opens
	// the circuit.
	BreakerHalfOpen
)

// String names the state for /healthz and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker trips the Parallel→Tiled degradation path service-wide: the
// per-request fallback in cellnpdp.Solve recovers one solve, but when
// the parallel engine keeps failing (a poisoned worker pool, a host
// under memory pressure panicking kernels) every request pays a failed
// parallel attempt before degrading. After `threshold` consecutive
// failures the breaker opens and requests go straight to Tiled; after
// `cooldown` a single half-open probe retries the parallel engine and
// its outcome decides whether the circuit closes again.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    BreakerState
	failures int // consecutive parallel failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	trips    int  // lifetime open transitions, for observability
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allowParallel reports whether this request may use the parallel
// engine. In the open state it flips to half-open once the cooldown has
// elapsed and grants the probe to exactly one caller; everyone else
// degrades to Tiled until the probe reports back.
func (b *breaker) allowParallel() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		return false
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			return true
		}
		return false
	}
	return false
}

// record reports a parallel attempt's outcome. Degraded solves count as
// failures: the answer was saved by the Tiled fallback, but the parallel
// engine itself failed.
func (b *breaker) record(parallelOK bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if parallelOK {
		b.state = BreakerClosed
		b.failures = 0
		b.probing = false
		return
	}
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		if b.state != BreakerOpen {
			b.trips++
		}
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
	}
}

// snapshot reports the breaker for /healthz.
func (b *breaker) snapshot() (state BreakerState, failures, trips int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.failures, b.trips
}

// cooldownRemaining reports how long until an open breaker will admit a
// half-open probe; 0 unless open.
func (b *breaker) cooldownRemaining() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	if rem := b.cooldown - b.now().Sub(b.openedAt); rem > 0 {
		return rem
	}
	return 0
}
