package serve

import (
	"math/rand"
	"strings"
	"testing"

	"cellnpdp"
	"cellnpdp/internal/workload"
)

// solvedTable returns a solved chain instance for integrity tests.
func solvedTable(t *testing.T, n int) *cellnpdp.Table[float32] {
	t.Helper()
	src := workload.Chain[float32](n, 7)
	tbl, err := cellnpdp.NewTable[float32](n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < n; i++ {
		if err := tbl.Set(i, i+1, src.At(i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cellnpdp.Solve(tbl, cellnpdp.Options{Engine: cellnpdp.Serial}); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestDigestRoundTrip(t *testing.T) {
	tbl := solvedTable(t, 100)
	d, err := DigestTable(tbl, 16)
	if err != nil {
		t.Fatal(err)
	}
	if wantBands := (100 + 15) / 16; len(d.Bands) != wantBands {
		t.Fatalf("digest has %d bands, want %d", len(d.Bands), wantBands)
	}
	if err := VerifyDigest(tbl, d); err != nil {
		t.Fatalf("pristine table failed verification: %v", err)
	}
}

func TestDigestDetectsCorruptionAndLocalizesBand(t *testing.T) {
	tbl := solvedTable(t, 100)
	d, err := DigestTable(tbl, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a cell in the band covering rows 48..63.
	v, _ := tbl.At(50, 70)
	if err := tbl.Set(50, 70, v+1); err != nil {
		t.Fatal(err)
	}
	verr := VerifyDigest(tbl, d)
	if verr == nil {
		t.Fatal("corrupted table passed verification")
	}
	if !strings.Contains(verr.Error(), "rows 48..63") {
		t.Fatalf("mismatch not localized to rows 48..63: %v", verr)
	}
}

func TestVerifyDigestRejectsWrongSize(t *testing.T) {
	tbl := solvedTable(t, 64)
	d, err := DigestTable(tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	other := solvedTable(t, 100)
	if err := VerifyDigest(other, d); err == nil {
		t.Fatal("digest for n=64 verified against n=100 table")
	}
}

func TestResidualSpotCheckPasses(t *testing.T) {
	tbl := solvedTable(t, 128)
	checked, err := ResidualSpotCheck(tbl, 200, 1)
	if err != nil {
		t.Fatalf("solved table failed residual check: %v", err)
	}
	if checked != 200 {
		t.Fatalf("checked %d cells, want 200", checked)
	}
}

// sampledCell replays the spot-checker's seeded sampler and returns the
// index (0-based) and coordinates of the first sample satisfying keep,
// so tests can corrupt a cell that is guaranteed to be visited.
func sampledCell(n int, seed int64, keep func(i, j int) bool) (idx, i, j int, ok bool) {
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < 10000; s++ {
		i := rng.Intn(n)
		j := i + rng.Intn(n-i)
		if keep(i, j) {
			return s, i, j, true
		}
	}
	return 0, 0, 0, false
}

func TestResidualSpotCheckCatchesTornCell(t *testing.T) {
	const n, seed = 128, 1
	// A cell with at least one interior split point (j ≥ i+2).
	idx, i, j, ok := sampledCell(n, seed, func(i, j int) bool { return j >= i+2 })
	if !ok {
		t.Fatal("sampler never produced a cell with interior splits")
	}
	tbl := solvedTable(t, n)
	// A solved cell is the min over its split sums; pushing it above any
	// one of them breaks the fixed point.
	v, _ := tbl.At(i, j)
	if err := tbl.Set(i, j, v*4+1000); err != nil {
		t.Fatal(err)
	}
	_, err := ResidualSpotCheck(tbl, idx+1, seed)
	if err == nil {
		t.Fatalf("torn cell (%d, %d) not caught by sample %d", i, j, idx)
	}
	if !strings.Contains(err.Error(), "fixed point") {
		t.Fatalf("unexpected residual error: %v", err)
	}
}

func TestResidualSpotCheckCatchesNaNAndDiagonal(t *testing.T) {
	const n, seed = 32, 1
	idx, i, j, ok := sampledCell(n, seed, func(i, j int) bool { return i < j })
	if !ok {
		t.Fatal("sampler never produced an off-diagonal cell")
	}
	tbl := solvedTable(t, n)
	nan := float32(0)
	nan = nan / nan
	if err := tbl.Set(i, j, nan); err != nil {
		t.Fatal(err)
	}
	if _, err := ResidualSpotCheck(tbl, idx+1, seed); err == nil || !strings.Contains(err.Error(), "NaN") {
		t.Fatalf("NaN at sampled cell (%d, %d): err = %v, want NaN report", i, j, err)
	}

	idx, i, _, ok = sampledCell(n, seed, func(i, j int) bool { return i == j })
	if !ok {
		t.Fatal("sampler never produced a diagonal cell")
	}
	tbl2 := solvedTable(t, n)
	if err := tbl2.Set(i, i, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ResidualSpotCheck(tbl2, idx+1, seed); err == nil || !strings.Contains(err.Error(), "diagonal") {
		t.Fatalf("nonzero diagonal at sampled cell %d: err = %v, want diagonal report", i, err)
	}
}
