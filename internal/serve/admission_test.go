package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTokenBucketUnlimited(t *testing.T) {
	clk := newFakeClock()
	tb := newTokenBucket(0, 0, clk.now)
	for i := 0; i < 1000; i++ {
		if ok, _ := tb.take(); !ok {
			t.Fatalf("unlimited bucket denied take %d", i)
		}
	}
}

func TestTokenBucketBurstAndRefill(t *testing.T) {
	clk := newFakeClock()
	tb := newTokenBucket(2, 3, clk.now) // 2/s, burst 3
	for i := 0; i < 3; i++ {
		if ok, _ := tb.take(); !ok {
			t.Fatalf("burst take %d denied", i)
		}
	}
	ok, retry := tb.take()
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	// One token accrues in 1/rate = 500ms.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("Retry-After = %v, want in (0, 500ms]", retry)
	}
	clk.advance(retry)
	if ok, _ := tb.take(); !ok {
		t.Fatal("bucket still empty after advancing by its own Retry-After")
	}
	// Refill never exceeds burst.
	clk.advance(time.Hour)
	granted := 0
	for {
		ok, _ := tb.take()
		if !ok {
			break
		}
		granted++
	}
	if granted != 3 {
		t.Fatalf("after long idle, granted %d tokens, want burst=3", granted)
	}
}

func TestMemGateFastPath(t *testing.T) {
	g := newMemGate(100, 4)
	res, release := g.acquire(context.Background(), 60)
	if res != admitOK {
		t.Fatalf("first acquire: %v, want admitOK", res)
	}
	res2, release2 := g.acquire(context.Background(), 40)
	if res2 != admitOK {
		t.Fatalf("second acquire (fits exactly): %v, want admitOK", res2)
	}
	used, budget, active, queued := g.snapshot()
	if used != 100 || budget != 100 || active != 2 || queued != 0 {
		t.Fatalf("snapshot = (%d, %d, %d, %d), want (100, 100, 2, 0)", used, budget, active, queued)
	}
	release()
	release()  // idempotent: second call must not double-release
	release2() // and order doesn't matter
	used, _, active, _ = g.snapshot()
	if used != 0 || active != 0 {
		t.Fatalf("after release: used=%d active=%d, want 0, 0", used, active)
	}
}

func TestMemGateQueueFIFO(t *testing.T) {
	// Budget 100 with 60 held: a large head waiter (80) does not fit,
	// and a small second waiter (30) WOULD fit — strict FIFO means it
	// must still wait behind the head, or big requests starve. The two
	// waiters also exceed the budget together, so their admissions are
	// strictly ordered after the holder releases.
	g := newMemGate(100, 4)
	_, releaseHolder := g.acquire(context.Background(), 60)

	admitted := make(chan int, 2)
	launch := func(id int, bytes int64, queuedAfter int) {
		go func() {
			res, rel := g.acquire(context.Background(), bytes)
			if res != admitOK {
				t.Errorf("waiter %d: %v, want admitOK", id, res)
			}
			admitted <- id
			if rel != nil {
				rel()
			}
		}()
		waitForQueued(t, g, queuedAfter)
	}
	launch(0, 80, 1) // head: does not fit alongside the holder
	launch(1, 30, 2) // would fit right now, but must not jump the queue

	// Nothing may be admitted while the head is blocked.
	time.Sleep(20 * time.Millisecond)
	select {
	case id := <-admitted:
		t.Fatalf("waiter %d admitted past the blocked head", id)
	default:
	}
	if used, _, active, queued := g.snapshot(); used != 60 || active != 1 || queued != 2 {
		t.Fatalf("gate = (used %d, active %d, queued %d), want (60, 1, 2)", used, active, queued)
	}

	releaseHolder()
	// Head (80) is admitted first; waiter 1 follows only after the
	// head's goroutine released its lease.
	if first := <-admitted; first != 0 {
		t.Fatalf("first admitted = %d, want head waiter 0", first)
	}
	if second := <-admitted; second != 1 {
		t.Fatalf("second admitted = %d, want waiter 1", second)
	}
}

func TestMemGateQueueFull(t *testing.T) {
	g := newMemGate(10, 1)
	_, release := g.acquire(context.Background(), 10)
	defer release()

	// One waiter fits in the queue.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan admitResult, 1)
	go func() {
		res, rel := g.acquire(ctx, 5)
		if rel != nil {
			rel()
		}
		queued <- res
	}()
	waitForQueued(t, g, 1)

	// The next overflows.
	res, rel := g.acquire(context.Background(), 5)
	if res != admitQueueFull || rel != nil {
		t.Fatalf("overflow acquire = %v (rel=%v), want admitQueueFull, nil", res, rel != nil)
	}
	cancel()
	if got := <-queued; got != admitExpired {
		t.Fatalf("cancelled waiter = %v, want admitExpired", got)
	}
	// The cancelled waiter must have unlinked itself.
	if _, _, _, q := g.snapshot(); q != 0 {
		t.Fatalf("queue length after cancel = %d, want 0", q)
	}
}

func TestMemGateExpiredWaiterDoesNotLeakLease(t *testing.T) {
	g := newMemGate(10, 2)
	_, release := g.acquire(context.Background(), 10)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan admitResult, 1)
	go func() {
		res, rel := g.acquire(ctx, 10)
		if rel != nil {
			rel()
		}
		done <- res
	}()
	waitForQueued(t, g, 1)
	// Race the grant against the cancel; whichever way it lands, the
	// budget must return to zero.
	cancel()
	release()
	<-done
	deadline := time.Now().Add(5 * time.Second)
	for {
		used, _, active, queued := g.snapshot()
		if used == 0 && active == 0 && queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate did not settle: used=%d active=%d queued=%d", used, active, queued)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitForQueued(t *testing.T, g *memGate, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, _, q := g.snapshot(); q >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters", want)
		}
		time.Sleep(time.Millisecond)
	}
}
