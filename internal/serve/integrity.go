package serve

import (
	"fmt"
	"hash/crc32"
	"math/rand"

	"cellnpdp"
	"cellnpdp/internal/tableio"
)

// End-to-end result integrity: a solved table is digested into per-band
// CRC32C checksums immediately after the solve, and the digest is
// re-verified just before the response serializes — so memory corruption
// (a torn concurrent write, a scribbling bug, bad RAM) between compute
// and reply surfaces as a 500 instead of a silently wrong answer. The
// complementary residual spot check re-evaluates the NPDP recurrence at
// sampled cells, catching corruption that happened *during* the solve,
// which a post-hoc checksum by construction cannot see.

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64, the reason serving checksums prefer it over IEEE).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Digest holds per-band CRC32C checksums of a solved table: the rows are
// cut into bands of BandRows rows, each digested separately so a
// mismatch localizes to a band instead of "somewhere in n²/2 cells".
type Digest struct {
	N        int
	BandRows int
	Bands    []uint32
	Whole    uint32 // CRC32C over the full cell stream
}

// DigestTable computes the per-band CRC32C digest of t. bandRows <= 0
// defaults to 64.
func DigestTable[E cellnpdp.Elem](t *cellnpdp.Table[E], bandRows int) (Digest, error) {
	if bandRows <= 0 {
		bandRows = 64
	}
	n := t.Len()
	d := Digest{N: n, BandRows: bandRows}
	whole := crc32.New(castagnoli)
	buf := make([]byte, 8)
	var e E
	width := tableio.ElemWidth(e)
	for lo := 0; lo < n; lo += bandRows {
		hi := lo + bandRows
		if hi > n {
			hi = n
		}
		band := crc32.New(castagnoli)
		for i := lo; i < hi; i++ {
			for j := i; j < n; j++ {
				v, err := t.At(i, j)
				if err != nil {
					return Digest{}, err
				}
				tableio.PutElem(buf, v)
				band.Write(buf[:width])
				whole.Write(buf[:width])
			}
		}
		d.Bands = append(d.Bands, band.Sum32())
	}
	d.Whole = whole.Sum32()
	return d, nil
}

// VerifyDigest recomputes t's digest and compares band by band. The
// first mismatching band is reported with its row range.
func VerifyDigest[E cellnpdp.Elem](t *cellnpdp.Table[E], d Digest) error {
	if t.Len() != d.N {
		return fmt.Errorf("serve: digest is for n=%d, table has n=%d", d.N, t.Len())
	}
	got, err := DigestTable(t, d.BandRows)
	if err != nil {
		return err
	}
	if len(got.Bands) != len(d.Bands) {
		return fmt.Errorf("serve: digest has %d bands, recomputed %d", len(d.Bands), len(got.Bands))
	}
	for b := range d.Bands {
		if got.Bands[b] != d.Bands[b] {
			return fmt.Errorf("serve: CRC32C mismatch in rows %d..%d: solved %08x, pre-serialize %08x",
				b*d.BandRows, min((b+1)*d.BandRows, d.N)-1, d.Bands[b], got.Bands[b])
		}
	}
	if got.Whole != d.Whole {
		return fmt.Errorf("serve: whole-table CRC32C mismatch: solved %08x, pre-serialize %08x", d.Whole, got.Whole)
	}
	return nil
}

// ResidualSpotCheck re-evaluates the NPDP recurrence at `samples`
// seeded-random cells: a solved table is a min-plus fixed point, so
// every cell must satisfy d[i][j] ≤ d[i][k] + d[k][j] for all interior
// k (the exact float comparison holds because each cell was minimized
// over exactly these sums), and the diagonal must be the ⊗ identity.
// Torn or corrupted-upward cells violate the inequality; the check is
// O(samples·n), trivially cheap next to the O(n³) solve. It returns the
// number of cells checked.
func ResidualSpotCheck[E cellnpdp.Elem](t *cellnpdp.Table[E], samples int, seed int64) (int, error) {
	if samples <= 0 {
		samples = 64
	}
	n := t.Len()
	rng := rand.New(rand.NewSource(seed))
	checked := 0
	for s := 0; s < samples; s++ {
		i := rng.Intn(n)
		j := i + rng.Intn(n-i)
		v, err := t.At(i, j)
		if err != nil {
			return checked, err
		}
		if v != v { // NaN never leaves a healthy engine
			return checked, fmt.Errorf("serve: residual check: d[%d][%d] is NaN", i, j)
		}
		if i == j {
			if v != 0 {
				return checked, fmt.Errorf("serve: residual check: diagonal d[%d][%d] = %v, want 0", i, j, v)
			}
			checked++
			continue
		}
		for k := i + 1; k < j; k++ {
			a, err := t.At(i, k)
			if err != nil {
				return checked, err
			}
			b, err := t.At(k, j)
			if err != nil {
				return checked, err
			}
			if w := a + b; w < v {
				return checked, fmt.Errorf("serve: residual check: d[%d][%d] = %v exceeds d[%d][%d]+d[%d][%d] = %v — not a min-plus fixed point",
					i, j, v, i, k, k, j, w)
			}
		}
		checked++
	}
	return checked, nil
}
