package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"cellnpdp"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/workload"
)

// SolveRequest is the POST /solve body. The instance itself is a seeded
// chain workload (the harness' standard NPDP shape): the service solves
// problems, it does not ingest gigabyte tables over JSON.
type SolveRequest struct {
	// N is the problem size (2..MaxN).
	N int `json:"n"`
	// Precision is "single" (default) or "double".
	Precision string `json:"precision,omitempty"`
	// Engine is "auto" (default: parallel unless the breaker is open),
	// "parallel", or "tiled".
	Engine string `json:"engine,omitempty"`
	// Seed selects the chain instance.
	Seed int64 `json:"seed,omitempty"`
	// DeadlineMS bounds the request end to end; 0 uses the server
	// default. Requests whose deadline is below the model-predicted
	// solve time are shed with 503 before consuming budget.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// FaultRate/FaultSeed drive the deterministic fault injector in the
	// parallel engine — load tests use them to exercise degradation.
	FaultRate float64 `json:"fault_rate,omitempty"`
	FaultSeed int64   `json:"fault_seed,omitempty"`
	// FaultKinds selects the injected fault kinds (comma-separated:
	// error, panic, delay, corrupt; empty = error) and Heal enables
	// block sealing + poisoned-cone self-healing in the engine — load
	// tests use them to exercise silent-corruption recovery end to end.
	FaultKinds string `json:"fault_kinds,omitempty"`
	Heal       bool   `json:"heal,omitempty"`
}

// IntegrityReport is the integrity section of a 200 response: proof the
// bytes serialized are the bytes solved.
type IntegrityReport struct {
	CRCOK        bool   `json:"crc_ok"`
	Bands        int    `json:"bands"`
	CRC32C       string `json:"crc32c"` // whole-table digest, hex
	ResidualOK   bool   `json:"residual_ok"`
	CellsSampled int    `json:"cells_sampled"`
}

// SolveResponse is the 200 body.
type SolveResponse struct {
	N              int    `json:"n"`
	Precision      string `json:"precision"`
	Engine         string `json:"engine"`
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Healed reports that the first solve's result failed integrity
	// verification and the serving layer recovered with one in-process
	// re-solve; CorruptBlocks/HealRounds are the engine-level sealing
	// layer's own counters for the solve that produced this response.
	Healed           bool            `json:"healed,omitempty"`
	CorruptBlocks    int             `json:"corrupt_blocks,omitempty"`
	HealRounds       int             `json:"heal_rounds,omitempty"`
	Relaxations      int64           `json:"relaxations"`
	WallSeconds      float64         `json:"wall_seconds"`
	QueueSeconds     float64         `json:"queue_seconds"`
	PredictedSeconds float64         `json:"predicted_seconds"`
	FootprintBytes   int64           `json:"footprint_bytes"`
	Cost             float64         `json:"d0_n1"` // the solved objective d[0][n-1]
	Integrity        IntegrityReport `json:"integrity"`
}

// handleSolve runs the admission pipeline: drain gate, validation,
// footprint/rate/deadline admission, memory-gate queue, then the solve
// itself with integrity verification. Status mapping: 400 invalid
// request, 413 footprint can never fit the budget, 429 rate-limited or
// queue overflow (with Retry-After), 503 draining / deadline shed /
// expired in queue / timed out mid-solve, 500 engine or integrity
// failure.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	// Count the request in-flight before the drain check, so Drain
	// followed by Wait never misses a request that had already passed
	// the gate.
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.active.Add(1)
	defer s.active.Add(-1)

	if r.Method != http.MethodPost {
		s.reject(w, http.StatusMethodNotAllowed, 0, "solve is POST-only")
		return
	}
	if s.draining.Load() {
		s.reject(w, http.StatusServiceUnavailable, 0, "server is draining")
		return
	}
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.reject(w, http.StatusBadRequest, 0, "decoding request: %v", err)
		return
	}
	if req.N < 2 || req.N > s.cfg.maxN() {
		s.reject(w, http.StatusBadRequest, 0, "n must be in [2, %d], got %d", s.cfg.maxN(), req.N)
		return
	}
	switch req.Precision {
	case "", "single", "double":
	default:
		s.reject(w, http.StatusBadRequest, 0, "precision must be single or double, got %q", req.Precision)
		return
	}
	switch req.Engine {
	case "", "auto", "parallel", "tiled":
	default:
		s.reject(w, http.StatusBadRequest, 0, "engine must be auto, parallel or tiled, got %q", req.Engine)
		return
	}
	if req.FaultRate < 0 || req.FaultRate >= 1 {
		s.reject(w, http.StatusBadRequest, 0, "fault_rate must be in [0, 1), got %g", req.FaultRate)
		return
	}
	if _, err := resilience.ParseFaultKinds(req.FaultKinds); err != nil {
		s.reject(w, http.StatusBadRequest, 0, "fault_kinds: %v", err)
		return
	}
	if req.DeadlineMS < 0 {
		s.reject(w, http.StatusBadRequest, 0, "deadline_ms must be non-negative, got %d", req.DeadlineMS)
		return
	}

	opts := cellnpdp.Options{Workers: s.cfg.workers(), BlockBytes: s.cfg.BlockBytes}
	var est cellnpdp.SolveEstimate
	var err error
	if req.Precision == "double" {
		est, err = cellnpdp.EstimateSolve[float64](req.N, opts)
	} else {
		est, err = cellnpdp.EstimateSolve[float32](req.N, opts)
	}
	if err != nil {
		s.reject(w, http.StatusBadRequest, 0, "estimating solve: %v", err)
		return
	}
	if est.FootprintBytes > s.gate.budget {
		// Not even an empty server could admit this one; 413, not 429 —
		// retrying will never help.
		s.reject(w, http.StatusRequestEntityTooLarge, 0,
			"n=%d needs %d bytes, beyond the %d-byte budget", req.N, est.FootprintBytes, s.gate.budget)
		return
	}
	if ok, retryAfter := s.bucket.take(); !ok {
		s.reject(w, http.StatusTooManyRequests, retryAfter, "rate limit exceeded")
		return
	}

	deadline := s.cfg.deadline()
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	predicted := est.PredictedSeconds * s.cfg.predictFactor()
	// Deadline sheds advertise Retry-After like the 429s do: one
	// predicted solve time is when retrying (with a fresh deadline, or
	// once load clears) has a chance of landing differently.
	shedRetryAfter := time.Duration(predicted * float64(time.Second))
	if deadline.Seconds() < predicted {
		// Deadline-aware shedding: the Section V model says this solve
		// cannot finish in time, so don't burn budget discovering that.
		s.reject(w, http.StatusServiceUnavailable, shedRetryAfter,
			"deadline %v below predicted solve time %.3gs for n=%d", deadline, predicted, req.N)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	queueStart := time.Now()
	result, release := s.gate.acquire(ctx, est.FootprintBytes)
	switch result {
	case admitQueueFull:
		// Suggest retrying after roughly one predicted solve time — when
		// budget is likely to have freed up.
		s.reject(w, http.StatusTooManyRequests, time.Duration(predicted*float64(time.Second)),
			"admission queue full (%d waiting, budget %d bytes)", s.cfg.queueDepth(), s.gate.budget)
		return
	case admitExpired:
		s.reject(w, http.StatusServiceUnavailable, 0, "request expired while queued for memory budget")
		return
	}
	defer release()
	queueSecs := time.Since(queueStart).Seconds()
	if remaining := deadline.Seconds() - queueSecs; remaining < predicted {
		// The wait consumed the slack the prediction needed; shed now
		// rather than time out mid-solve holding budget.
		s.reject(w, http.StatusServiceUnavailable, shedRetryAfter,
			"remaining deadline %.3gs below predicted solve time %.3gs after queueing", remaining, predicted)
		return
	}

	if req.Precision == "double" {
		solveOne[float64](s, w, ctx, req, est, queueSecs, predicted)
	} else {
		solveOne[float32](s, w, ctx, req, est, queueSecs, predicted)
	}
}

// solveOne runs the admitted solve at one precision: engine selection
// through the circuit breaker, the solve under its deadline context, and
// the integrity pipeline (digest at solve time, residual spot check,
// re-verify before serialization).
func solveOne[E cellnpdp.Elem](s *Server, w http.ResponseWriter, ctx context.Context, req SolveRequest, est cellnpdp.SolveEstimate, queueSecs, predicted float64) {
	engine := cellnpdp.Parallel
	breakerBypass := false
	recordBreaker := false
	switch req.Engine {
	case "tiled":
		engine = cellnpdp.Tiled
	case "parallel", "auto", "":
		if s.brk.allowParallel() {
			recordBreaker = true
		} else {
			engine = cellnpdp.Tiled
			breakerBypass = true
		}
	}

	opts := cellnpdp.Options{
		Engine:     engine,
		Workers:    s.cfg.workers(),
		BlockBytes: s.cfg.BlockBytes,
		MaxRetries: s.cfg.maxRetries(),
		FaultRate:  req.FaultRate,
		FaultSeed:  req.FaultSeed,
		FaultKinds: req.FaultKinds,
		Heal:       req.Heal,
		Logf:       s.cfg.Logf,
	}

	// An integrity failure below the engine (a torn band CRC or a residual
	// that no longer satisfies the recurrence) gets exactly one in-process
	// heal-and-retry: discard the poisoned table, re-solve from scratch,
	// and only if the fresh result fails too does the request become a
	// 500. One retry, not more — a host that corrupts twice in a row is
	// not going to be talked out of it by a third solve.
	var (
		t           *cellnpdp.Table[E]
		res         *cellnpdp.Result
		digest      Digest
		sampled     int
		healedRetry bool
	)
	const integrityAttempts = 2
	for attempt := 0; ; attempt++ {
		// Build the seeded instance fresh each attempt: diagonal zero,
		// superdiagonal from the chain workload, everything else at
		// infinity. A retry must not reuse a possibly-corrupted table.
		src := workload.Chain[E](req.N, req.Seed)
		var err error
		t, err = cellnpdp.NewTable[E](req.N)
		if err != nil {
			s.reject(w, http.StatusInternalServerError, 0, "allocating table: %v", err)
			return
		}
		for i := 0; i+1 < req.N; i++ {
			if err := t.Set(i, i+1, src.At(i, i+1)); err != nil {
				s.reject(w, http.StatusInternalServerError, 0, "building instance: %v", err)
				return
			}
		}

		res, err = cellnpdp.SolveCtx(ctx, t, opts)
		if recordBreaker {
			s.brk.record(err == nil && !res.Degraded)
		}
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				s.reject(w, http.StatusServiceUnavailable, 0, "solve did not finish within the deadline: %v", err)
				return
			}
			s.reject(w, http.StatusInternalServerError, 0, "solve failed: %v", err)
			return
		}

		// Integrity: digest the solved table now, spot-check the
		// recurrence, then re-verify the digest immediately before
		// serializing — any mutation in between becomes a heal-and-retry
		// and then a 500, never a silently wrong answer.
		digest, err = DigestTable(t, s.cfg.CRCBandRows)
		if err != nil {
			s.reject(w, http.StatusInternalServerError, 0, "digesting result: %v", err)
			return
		}
		var integrityErr error
		integrityFmt := ""
		sampled, err = ResidualSpotCheck(t, s.cfg.ResidualSamples, req.Seed)
		if err != nil {
			integrityErr, integrityFmt = err, "result failed integrity check: %v"
		} else {
			if s.corruptAfterDigest != nil {
				s.corruptAfterDigest(t)
			}
			if verr := VerifyDigest(t, digest); verr != nil {
				integrityErr, integrityFmt = verr, "result corrupted before serialization: %v"
			}
		}
		if integrityErr == nil {
			break
		}
		if attempt+1 >= integrityAttempts {
			s.reject(w, http.StatusInternalServerError, 0, integrityFmt, integrityErr)
			return
		}
		s.cfg.logf("serve: integrity failure on n=%d (attempt %d), re-solving in-process: %v",
			req.N, attempt+1, integrityErr)
		healedRetry = true
	}
	if healedRetry {
		s.mu.Lock()
		s.healed++
		s.mu.Unlock()
	}

	cost, err := t.At(0, req.N-1)
	if err != nil {
		s.reject(w, http.StatusInternalServerError, 0, "reading result: %v", err)
		return
	}
	degraded := res.Degraded || breakerBypass
	reason := res.DegradedReason
	if breakerBypass {
		reason = "circuit breaker open: parallel engine bypassed"
	}
	if degraded {
		s.mu.Lock()
		s.degraded++
		s.mu.Unlock()
	}
	precision := req.Precision
	if precision == "" {
		precision = "single"
	}
	s.writeJSON(w, http.StatusOK, SolveResponse{
		N:                req.N,
		Precision:        precision,
		Engine:           res.Engine.String(),
		Degraded:         degraded,
		DegradedReason:   reason,
		Healed:           healedRetry,
		CorruptBlocks:    res.CorruptBlocks,
		HealRounds:       res.HealRounds,
		Relaxations:      res.Relaxations,
		WallSeconds:      res.WallSeconds,
		QueueSeconds:     queueSecs,
		PredictedSeconds: predicted,
		FootprintBytes:   est.FootprintBytes,
		Cost:             float64(cost),
		Integrity: IntegrityReport{
			CRCOK:        true,
			Bands:        len(digest.Bands),
			CRC32C:       fmt.Sprintf("%08x", digest.Whole),
			ResidualOK:   true,
			CellsSampled: sampled,
		},
	})
}
