package serve

import (
	"testing"
	"time"
)

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(3, 5*time.Second, clk.now)
	for i := 0; i < 2; i++ {
		if !b.allowParallel() {
			t.Fatalf("closed breaker denied parallel before threshold (failure %d)", i)
		}
		b.record(false)
	}
	if state, fails, _ := b.snapshot(); state != BreakerClosed || fails != 2 {
		t.Fatalf("breaker = %v with %d failures, want closed with 2", state, fails)
	}
	b.allowParallel()
	b.record(false) // third consecutive failure trips it
	if state, _, trips := b.snapshot(); state != BreakerOpen || trips != 1 {
		t.Fatalf("breaker = %v with %d trips, want open with 1", state, trips)
	}
	if b.allowParallel() {
		t.Fatal("open breaker granted parallel before cooldown")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 5*time.Second, clk.now)
	b.allowParallel()
	b.record(false)
	if state, _, _ := b.snapshot(); state != BreakerOpen {
		t.Fatalf("breaker = %v, want open", state)
	}
	clk.advance(5 * time.Second)
	// Exactly one probe.
	if !b.allowParallel() {
		t.Fatal("cooled-down breaker denied the probe")
	}
	if state, _, _ := b.snapshot(); state != BreakerHalfOpen {
		t.Fatalf("breaker = %v, want half-open", state)
	}
	if b.allowParallel() {
		t.Fatal("second caller got a probe while one was in flight")
	}
	// Failed probe re-opens with a fresh cooldown.
	b.record(false)
	if state, _, trips := b.snapshot(); state != BreakerOpen || trips != 2 {
		t.Fatalf("after failed probe: %v with %d trips, want open with 2", state, trips)
	}
	if b.allowParallel() {
		t.Fatal("re-opened breaker granted parallel immediately")
	}
	// Successful probe closes.
	clk.advance(5 * time.Second)
	if !b.allowParallel() {
		t.Fatal("second probe denied")
	}
	b.record(true)
	if state, fails, _ := b.snapshot(); state != BreakerClosed || fails != 0 {
		t.Fatalf("after successful probe: %v with %d failures, want closed with 0", state, fails)
	}
	if !b.allowParallel() {
		t.Fatal("closed breaker denied parallel")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(3, time.Second, clk.now)
	b.record(false)
	b.record(false)
	b.record(true) // streak broken
	b.record(false)
	b.record(false)
	if state, fails, _ := b.snapshot(); state != BreakerClosed || fails != 2 {
		t.Fatalf("breaker = %v with %d failures, want closed with 2 (streak reset)", state, fails)
	}
}
