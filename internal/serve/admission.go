package serve

import (
	"context"
	"sync"
	"time"
)

// tokenBucket is the request-rate half of admission control: capacity
// `burst` tokens, refilled continuously at `rate` per second. It exists
// to bound the *arrival* rate; the memory gate below bounds *residency*.
// The clock is injectable so tests drive it deterministically.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: now(), now: now}
}

// take consumes one token if available. When the bucket is empty it
// returns false and the duration after which one token will exist — the
// Retry-After a 429 response carries.
func (tb *tokenBucket) take() (bool, time.Duration) {
	if tb.rate <= 0 {
		return true, 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	return false, time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
}

// memGate is the memory-budget half of admission control. Each request
// declares its byte footprint up front (from cellnpdp.EstimateSolve's
// table + staging + checkpoint geometry — the serving analogue of the
// paper's fixed 256 KB local store forcing explicit block budgeting);
// the gate admits it only while total admitted bytes stay within the
// budget. Requests that do not fit immediately wait in a bounded FIFO
// queue: strict arrival order, so a large solve cannot be starved by a
// stream of small ones slipping past it.
type memGate struct {
	mu     sync.Mutex
	budget int64
	used   int64
	active int // admitted leases outstanding
	queue  []*memWaiter
	depth  int // queue bound; overflow is rejected, not blocked
}

type memWaiter struct {
	bytes   int64
	ready   chan struct{} // closed when admitted
	granted bool
}

func newMemGate(budget int64, depth int) *memGate {
	if depth < 0 {
		depth = 0
	}
	return &memGate{budget: budget, depth: depth}
}

// admitResult classifies an admission attempt.
type admitResult int

const (
	admitOK        admitResult = iota
	admitQueueFull             // bounded FIFO overflow → 429
	admitExpired               // request context died while queued → 503
)

// acquire reserves `bytes` of the budget, queuing FIFO if it does not
// fit now. It returns admitOK with a release function, admitQueueFull if
// the queue is at depth, or admitExpired if ctx fired first. The waiter
// is always unlinked on every path — an abandoned request never holds a
// queue slot or leaks a goroutine.
func (g *memGate) acquire(ctx context.Context, bytes int64) (admitResult, func()) {
	g.mu.Lock()
	if len(g.queue) == 0 && g.used+bytes <= g.budget {
		g.used += bytes
		g.active++
		g.mu.Unlock()
		return admitOK, g.releaseFunc(bytes)
	}
	if len(g.queue) >= g.depth {
		g.mu.Unlock()
		return admitQueueFull, nil
	}
	w := &memWaiter{bytes: bytes, ready: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.mu.Unlock()

	select {
	case <-w.ready:
		return admitOK, g.releaseFunc(bytes)
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// Lost the race: the grant landed while ctx fired. Hand the
			// lease back so the caller can still reject cleanly.
			g.mu.Unlock()
			g.releaseFunc(bytes)()
			return admitExpired, nil
		}
		for i, q := range g.queue {
			if q == w {
				g.queue = append(g.queue[:i], g.queue[i+1:]...)
				break
			}
		}
		g.mu.Unlock()
		return admitExpired, nil
	}
}

// releaseFunc returns the idempotent lease release for an admitted
// footprint: returns the bytes and admits queue heads that now fit.
func (g *memGate) releaseFunc(bytes int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.used -= bytes
			g.active--
			g.grantLocked()
			g.mu.Unlock()
		})
	}
}

// grantLocked admits queued waiters in FIFO order while they fit. Only
// the head is considered — granting a later, smaller waiter over the
// head would be livelock fuel for big requests.
func (g *memGate) grantLocked() {
	for len(g.queue) > 0 {
		w := g.queue[0]
		if g.used+w.bytes > g.budget {
			return
		}
		g.used += w.bytes
		g.active++
		w.granted = true
		g.queue = g.queue[1:]
		close(w.ready)
	}
}

// snapshot reports the gate's state for /healthz.
func (g *memGate) snapshot() (used, budget int64, active, queued int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used, g.budget, g.active, len(g.queue)
}
