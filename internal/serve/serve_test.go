package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cellnpdp"
	"cellnpdp/internal/cluster"
	"cellnpdp/internal/pager"
	"cellnpdp/internal/tri"
)

// post sends a SolveRequest to the test server and decodes the outcome.
func post(t *testing.T, ts *httptest.Server, req SolveRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeSolve(t *testing.T, body []byte) SolveResponse {
	t.Helper()
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decoding response %q: %v", body, err)
	}
	return sr
}

func TestSolveHappyPathWithIntegrity(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SolveRequest{N: 96, Engine: "tiled", Seed: 3}
	resp, body := post(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	sr := decodeSolve(t, body)
	if sr.N != 96 || sr.Engine != "tiled" || sr.Precision != "single" {
		t.Fatalf("response header fields wrong: %+v", sr)
	}
	if sr.Degraded {
		t.Fatalf("tiled solve reported degraded: %+v", sr)
	}
	if sr.Relaxations <= 0 || sr.Cost <= 0 || sr.FootprintBytes <= 0 {
		t.Fatalf("implausible solve stats: %+v", sr)
	}
	if !sr.Integrity.CRCOK || !sr.Integrity.ResidualOK || sr.Integrity.CellsSampled <= 0 || sr.Integrity.Bands <= 0 {
		t.Fatalf("integrity report incomplete: %+v", sr.Integrity)
	}

	// Determinism: same seed, same answer and same checksum; the parallel
	// engine agrees bit for bit.
	resp2, body2 := post(t, ts, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d", resp2.StatusCode)
	}
	sr2 := decodeSolve(t, body2)
	if sr2.Cost != sr.Cost || sr2.Integrity.CRC32C != sr.Integrity.CRC32C {
		t.Fatalf("repeat solve differs: %v/%s vs %v/%s", sr.Cost, sr.Integrity.CRC32C, sr2.Cost, sr2.Integrity.CRC32C)
	}
	resp3, body3 := post(t, ts, SolveRequest{N: 96, Engine: "parallel", Seed: 3})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("parallel status = %d, body %s", resp3.StatusCode, body3)
	}
	if sr3 := decodeSolve(t, body3); sr3.Integrity.CRC32C != sr.Integrity.CRC32C {
		t.Fatalf("parallel checksum %s != tiled %s", sr3.Integrity.CRC32C, sr.Integrity.CRC32C)
	}

	if got := s.Outcomes()[200]; got != 3 {
		t.Fatalf("outcome count for 200 = %d, want 3", got)
	}
}

func TestSolveDoublePrecision(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := post(t, ts, SolveRequest{N: 64, Precision: "double", Engine: "tiled"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if sr := decodeSolve(t, body); sr.Precision != "double" || sr.Cost <= 0 {
		t.Fatalf("double solve response: %+v", sr)
	}
}

func TestSolveBadRequests(t *testing.T) {
	s := New(Config{MaxN: 512})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cases := []SolveRequest{
		{N: 1},
		{N: 1024},                  // beyond MaxN
		{N: 64, Precision: "half"}, // bad precision
		{N: 64, Engine: "cell"},    // engine not served
		{N: 64, FaultRate: 1.5},    // bad fault rate
		{N: 64, DeadlineMS: -5},    // negative deadline
	}
	for _, req := range cases {
		resp, body := post(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("request %+v: status = %d (%s), want 400", req, resp.StatusCode, body)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve: status = %d, want 405", resp.StatusCode)
	}
}

func TestSolveTooLargeForBudget(t *testing.T) {
	s := New(Config{BudgetBytes: 4096})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := post(t, ts, SolveRequest{N: 256, Engine: "tiled"})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d (%s), want 413", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Fatal("413 must not carry Retry-After: retrying can never help")
	}
}

func TestSolveRateLimited(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{RatePerSec: 1, Burst: 1, Clock: clk.now})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := post(t, ts, SolveRequest{N: 32, Engine: "tiled"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d (%s)", resp.StatusCode, body)
	}
	resp, body = post(t, ts, SolveRequest{N: 32, Engine: "tiled"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.RetryAfterSeconds <= 0 {
		t.Fatalf("429 body %s lacks retry_after_seconds", body)
	}
	// Refill restores admission.
	clk.advance(time.Second)
	resp, body = post(t, ts, SolveRequest{N: 32, Engine: "tiled"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after refill: %d (%s)", resp.StatusCode, body)
	}
}

func TestSolveQueueFullRejects(t *testing.T) {
	s := New(Config{BudgetBytes: 1 << 20, QueueDepth: -1}) // no queue
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Hold the entire budget so the request cannot be admitted.
	_, release := s.gate.acquire(context.Background(), 1<<20)
	defer release()
	resp, body := post(t, ts, SolveRequest{N: 32, Engine: "tiled"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429 queue-full", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-full 429 missing Retry-After")
	}
}

func TestSolveDeadlineShed(t *testing.T) {
	// PredictFactor inflates the model prediction so every deadline is
	// hopeless — the request must shed before consuming budget.
	s := New(Config{PredictFactor: 1e9})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := post(t, ts, SolveRequest{N: 64, Engine: "tiled", DeadlineMS: 50})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503 shed", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "predicted") {
		t.Fatalf("shed body does not explain the prediction: %s", body)
	}
}

func TestSolveTimesOutMidSolve(t *testing.T) {
	// PredictFactor near zero lets the hopeless deadline through the
	// shedding gate; the context deadline then fires mid-solve.
	s := New(Config{PredictFactor: 1e-12})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := post(t, ts, SolveRequest{N: 2048, Engine: "tiled", DeadlineMS: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503 timeout", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("timeout body does not mention the deadline: %s", body)
	}
}

func TestSolveDrainRejects(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Drain()
	resp, body := post(t, ts, SolveRequest{N: 32, Engine: "tiled"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503 while draining", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "draining") {
		t.Fatalf("drain body: %s", body)
	}
	s.Wait() // must not hang with nothing in flight
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
}

func TestSolveCorruptionBetweenDigestAndSerializeIs500(t *testing.T) {
	s := New(Config{})
	s.corruptAfterDigest = func(table any) {
		if tb, ok := table.(*cellnpdp.Table[float32]); ok {
			v, _ := tb.At(0, 5)
			tb.Set(0, 5, v+1)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := post(t, ts, SolveRequest{N: 64, Engine: "tiled"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d (%s), want 500 for corrupted result", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "corrupted before serialization") {
		t.Fatalf("500 body does not name the corruption: %s", body)
	}
	if !strings.Contains(string(body), "CRC32C mismatch") {
		t.Fatalf("500 body does not localize the CRC mismatch: %s", body)
	}
}

// TestSolveHealAndRetryRecovers drives the serving layer's one-shot
// heal-and-retry: a result corrupted once between digest and serialize
// is discarded, re-solved in-process, and served as a 200 flagged
// Healed — the client never sees the torn bytes.
func TestSolveHealAndRetryRecovers(t *testing.T) {
	s := New(Config{})
	corruptions := 0
	s.corruptAfterDigest = func(table any) {
		if corruptions > 0 {
			return // only the first attempt is torn
		}
		corruptions++
		if tb, ok := table.(*cellnpdp.Table[float32]); ok {
			v, _ := tb.At(0, 5)
			tb.Set(0, 5, v+1)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := post(t, ts, SolveRequest{N: 64, Engine: "tiled"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200 after heal-and-retry", resp.StatusCode, body)
	}
	sr := decodeSolve(t, body)
	if !sr.Healed {
		t.Fatalf("recovered response not flagged healed: %+v", sr)
	}
	if !sr.Integrity.CRCOK || !sr.Integrity.ResidualOK {
		t.Fatalf("healed response failed integrity: %+v", sr.Integrity)
	}
	// A clean repeat must not be flagged.
	resp, body = post(t, ts, SolveRequest{N: 64, Engine: "tiled"})
	if resp.StatusCode != http.StatusOK || decodeSolve(t, body).Healed {
		t.Fatalf("clean solve flagged healed: %d (%s)", resp.StatusCode, body)
	}
	// And /healthz counts exactly the one recovery.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h Health
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Healed != 1 {
		t.Fatalf("healthz healed_solves = %d, want 1", h.Healed)
	}
}

// TestSolveEngineHealEndToEnd requests silent corruption plus healing
// through the HTTP surface: the engine's sealing layer repairs the solve
// and its counters reach the response.
func TestSolveEngineHealEndToEnd(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := post(t, ts, SolveRequest{
		N: 128, Engine: "parallel", Seed: 3,
		FaultRate: 0.5, FaultSeed: 4, FaultKinds: "corrupt", Heal: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200", resp.StatusCode, body)
	}
	sr := decodeSolve(t, body)
	if sr.Degraded {
		t.Fatalf("healed solve degraded: %+v", sr)
	}
	if sr.CorruptBlocks == 0 || sr.HealRounds == 0 {
		t.Fatalf("rate-0.5 corruption run reports no heal work: %+v", sr)
	}
	// The healed answer matches an uninjected solve of the same instance.
	resp2, body2 := post(t, ts, SolveRequest{N: 128, Engine: "tiled", Seed: 3})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("reference solve: %d (%s)", resp2.StatusCode, body2)
	}
	if ref := decodeSolve(t, body2); ref.Integrity.CRC32C != sr.Integrity.CRC32C {
		t.Fatalf("healed checksum %s != reference %s", sr.Integrity.CRC32C, ref.Integrity.CRC32C)
	}
}

// TestSolveBadFaultKindsIs400 asserts the fault_kinds validation runs at
// admission, before any budget is consumed.
func TestSolveBadFaultKindsIs400(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := post(t, ts, SolveRequest{N: 64, Engine: "tiled", FaultKinds: "corrupt,bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d (%s), want 400", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "bogus") {
		t.Fatalf("400 body does not name the bad kind: %s", body)
	}
}

// TestDeadlineShedCarriesRetryAfter asserts both deadline sheds advertise
// when retrying could land differently, like the 429s do.
func TestDeadlineShedCarriesRetryAfter(t *testing.T) {
	s := New(Config{PredictFactor: 1e9})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := post(t, ts, SolveRequest{N: 64, Engine: "tiled", DeadlineMS: 50})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503 shed", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("deadline shed missing Retry-After header (body %s)", body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.RetryAfterSeconds <= 0 {
		t.Fatalf("shed body %s lacks retry_after_seconds", body)
	}
}

// TestHealthzBreakerDetail asserts /healthz exposes the breaker's
// failure count and, while open, the remaining cooldown.
func TestHealthzBreakerDetail(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{MaxRetries: -1, BreakerThreshold: 1, BreakerCooldown: time.Minute, Clock: clk.now})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readHealth := func() Health {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	if h := readHealth(); h.Breaker != "closed" || h.BreakerFailures != 0 || h.BreakerCooldownRemainingMS != 0 {
		t.Fatalf("fresh breaker detail = %+v", h)
	}
	post(t, ts, SolveRequest{N: 64, Engine: "parallel", FaultRate: 0.999, FaultSeed: 1})
	h := readHealth()
	if h.Breaker != "open" || h.BreakerTrips != 1 || h.BreakerFailures == 0 {
		t.Fatalf("tripped breaker detail = %+v", h)
	}
	if h.BreakerCooldownRemainingMS <= 0 || h.BreakerCooldownRemainingMS > time.Minute.Milliseconds() {
		t.Fatalf("cooldown remaining = %dms, want (0, 60000]", h.BreakerCooldownRemainingMS)
	}
	clk.advance(30 * time.Second)
	if h2 := readHealth(); h2.BreakerCooldownRemainingMS >= h.BreakerCooldownRemainingMS {
		t.Fatalf("cooldown did not shrink: %d then %d", h.BreakerCooldownRemainingMS, h2.BreakerCooldownRemainingMS)
	}
}

func TestBreakerDegradesServiceWide(t *testing.T) {
	// FaultRate ~1 with no retries makes every parallel attempt fail;
	// threshold 1 trips the breaker on the first degraded solve.
	s := New(Config{MaxRetries: -1, BreakerThreshold: 1, BreakerCooldown: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := post(t, ts, SolveRequest{N: 64, Engine: "parallel", FaultRate: 0.999, FaultSeed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted solve: %d (%s)", resp.StatusCode, body)
	}
	sr := decodeSolve(t, body)
	if !sr.Degraded || sr.DegradedReason == "" {
		t.Fatalf("faulted parallel solve not reported degraded: %+v", sr)
	}
	if state, _, trips := s.brk.snapshot(); state != BreakerOpen || trips != 1 {
		t.Fatalf("breaker = %v with %d trips after degraded solve, want open with 1", state, trips)
	}

	// Service-wide: the NEXT auto request never touches the parallel
	// engine (no fault injection requested, yet it still runs tiled).
	resp, body = post(t, ts, SolveRequest{N: 64, Engine: "auto"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bypassed solve: %d (%s)", resp.StatusCode, body)
	}
	sr = decodeSolve(t, body)
	if !sr.Degraded || !strings.Contains(sr.DegradedReason, "circuit breaker") {
		t.Fatalf("open breaker did not reroute: %+v", sr)
	}
	if sr.Engine != "tiled" {
		t.Fatalf("bypassed solve ran %s, want tiled", sr.Engine)
	}

	// Explicit tiled requests are untouched by the breaker.
	resp, body = post(t, ts, SolveRequest{N: 64, Engine: "tiled"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tiled during open breaker: %d (%s)", resp.StatusCode, body)
	}
}

func TestBreakerProbeRestoresParallel(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{MaxRetries: -1, BreakerThreshold: 1, BreakerCooldown: time.Minute, Clock: clk.now})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, ts, SolveRequest{N: 64, Engine: "parallel", FaultRate: 0.999, FaultSeed: 1})
	if state, _, _ := s.brk.snapshot(); state != BreakerOpen {
		t.Fatalf("breaker = %v, want open", state)
	}
	clk.advance(time.Minute)
	// Healthy probe closes the circuit.
	resp, body := post(t, ts, SolveRequest{N: 64, Engine: "parallel"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe solve: %d (%s)", resp.StatusCode, body)
	}
	if sr := decodeSolve(t, body); sr.Degraded || sr.Engine != "parallel" {
		t.Fatalf("probe did not run parallel cleanly: %+v", sr)
	}
	if state, _, _ := s.brk.snapshot(); state != BreakerClosed {
		t.Fatalf("breaker = %v after healthy probe, want closed", state)
	}
}

func TestHealthz(t *testing.T) {
	s := New(Config{BudgetBytes: 123456})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	post(t, ts, SolveRequest{N: 32, Engine: "tiled"})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.BudgetBytes != 123456 || h.Breaker != "closed" {
		t.Fatalf("healthz = %+v", h)
	}
	if h.Outcomes["200"] != 1 {
		t.Fatalf("healthz outcomes = %v, want one 200", h.Outcomes)
	}
	s.Drain()
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("healthz status = %q while draining", h.Status)
	}
}

func TestOutcomeSummaryFormat(t *testing.T) {
	s := New(Config{})
	if got := s.OutcomeSummary(); got != "none" {
		t.Fatalf("empty summary = %q, want none", got)
	}
	s.recordOutcome(503)
	s.recordOutcome(200)
	s.recordOutcome(200)
	if got := s.OutcomeSummary(); got != "200=2 503=1" {
		t.Fatalf("summary = %q, want %q", got, "200=2 503=1")
	}
}

func TestEstimateMatchesServedFootprint(t *testing.T) {
	// The footprint the server gates on is the public EstimateSolve —
	// pin that the two stay in sync.
	est, err := cellnpdp.EstimateSolve[float32](96, cellnpdp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := post(t, ts, SolveRequest{N: 96, Engine: "tiled"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	if sr := decodeSolve(t, body); sr.FootprintBytes != est.FootprintBytes {
		t.Fatalf("served footprint %d != EstimateSolve %d", sr.FootprintBytes, est.FootprintBytes)
	}
}

// TestDrainWaitsForInflight drives the full lifecycle: a slow solve is
// admitted, Drain begins mid-flight, new work is rejected, and Wait
// returns only after the slow solve completed with a 200.
func TestDrainWaitsForInflight(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type outcome struct {
		code int
		body string
	}
	slow := make(chan outcome, 1)
	go func() {
		body, _ := json.Marshal(SolveRequest{N: 1024, Engine: "tiled"})
		resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			slow <- outcome{0, err.Error()}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		slow <- outcome{resp.StatusCode, buf.String()}
	}()
	// Wait until the slow request is actually in flight.
	deadline := time.Now().Add(10 * time.Second)
	for s.active.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	s.Drain()
	resp, _ := post(t, ts, SolveRequest{N: 32, Engine: "tiled"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: %d, want 503", resp.StatusCode)
	}
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case got := <-slow:
		if got.code != http.StatusOK {
			t.Fatalf("in-flight solve during drain: %d (%s)", got.code, got.body)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("in-flight solve never finished")
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait did not return after in-flight work finished")
	}
	if got := s.Outcomes(); got[200] != 1 || got[503] != 1 {
		t.Fatalf("outcomes = %v, want one 200 and one 503", got)
	}
}

func TestHealthzClusterSnapshot(t *testing.T) {
	s := New(Config{
		ClusterHealth: func() map[string]any {
			return map[string]any{"tasks": 36, "worker_deaths": 1}
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Cluster == nil || h.Cluster["tasks"] != float64(36) || h.Cluster["worker_deaths"] != float64(1) {
		t.Fatalf("healthz cluster snapshot = %v", h.Cluster)
	}

	// Without the seam the field stays absent from the wire entirely.
	s2 := New(Config{})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, present := raw["cluster"]; present {
		t.Fatal("healthz carries a cluster field with no provider wired")
	}
}

// pagerTable builds a small tiled table with distinct cell values for
// the out-of-core healthz tests.
func pagerTable() *tri.Tiled[float32] {
	src := tri.NewTiled[float32](40, 8) // 5 tiles per side, 15 blocks
	for i := 0; i < 40; i++ {
		for j := i; j < 40; j++ {
			src.Set(i, j, float32(i*100+j))
		}
	}
	return src
}

// pagerTouchAll pages every block through the pager twice —
// Acquire/Complete/Release then a refetch pass — so a four-frame budget
// forces spills on pass one and final-slot fetches on pass two. A
// corrupt final block (injected flip that survived the read retry) is
// healed the way the engines do: demote to pristine and refetch.
func pagerTouchAll(t *testing.T, p *pager.Pager[float32], m int) {
	t.Helper()
	for pass := 0; pass < 2; pass++ {
		for bi := 0; bi < m; bi++ {
			for bj := bi; bj < m; bj++ {
				_, err := p.Acquire(bi, bj)
				var pe *pager.ErrPageCorrupt
				if errors.As(err, &pe) && !pe.Pristine {
					p.Demote(bi, bj)
					_, err = p.Acquire(bi, bj)
				}
				if err != nil {
					t.Fatalf("Acquire(%d,%d): %v", bi, bj, err)
				}
				if err := p.Complete(bi, bj); err != nil {
					t.Fatalf("Complete(%d,%d): %v", bi, bj, err)
				}
				p.Release(bi, bj)
			}
		}
	}
}

// TestHealthzPagerCounters drives a REAL out-of-core pager — a
// 15-block table paged through four frames under deterministic
// read-side bit flips — through the PagerHealth seam and asserts the
// counters an operator watches during a disk incident land on the
// wire live (two polls straddling the workload see the change).
func TestHealthzPagerCounters(t *testing.T) {
	src := pagerTable()
	p, err := pager.Create(filepath.Join(t.TempDir(), "t.npsp"), src, pager.Options{
		Frames: 4,
		Faults: &pager.DiskFaults{Rate: 0.25, Seed: 11, Kinds: []pager.DiskFaultKind{pager.DiskFaultFlip}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	s := New(Config{PagerHealth: func() map[string]any { return p.Stats().Health() }})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	poll := func() map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		if h.Pager == nil {
			t.Fatal("healthz pager section missing with provider wired")
		}
		return h.Pager
	}

	before := poll()
	if got := before["spilled_blocks"]; got != float64(0) {
		t.Fatalf("spilled_blocks before any paging = %v, want 0", got)
	}

	pagerTouchAll(t, p, src.Blocks())

	after := poll()
	for _, key := range []string{"spilled_blocks", "fetched_blocks", "faulted_pages", "page_heals"} {
		v, ok := after[key].(float64)
		if !ok || v <= 0 {
			t.Errorf("healthz pager[%q] = %v, want > 0 (full: %v)", key, after[key], after)
		}
	}
	// No ENOSPC was injected; the counter must still be on the wire so
	// an operator can trust its zero.
	if v, ok := after["enospc_degradations"].(float64); !ok || v != 0 {
		t.Errorf("healthz pager[enospc_degradations] = %v, want present and 0", after["enospc_degradations"])
	}
}

// TestHealthzPagerENOSPCDegradation forces the other arm of the disk
// ladder: every spill write draws ENOSPC, so the pager degrades to a
// growing in-memory set and the degradation counter — not the spill
// counter — moves on /healthz.
func TestHealthzPagerENOSPCDegradation(t *testing.T) {
	src := pagerTable()
	p, err := pager.Create(filepath.Join(t.TempDir(), "t.npsp"), src, pager.Options{
		Frames: 4,
		Faults: &pager.DiskFaults{Rate: 1, Seed: 1, Kinds: []pager.DiskFaultKind{pager.DiskFaultENOSPC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	pagerTouchAll(t, p, src.Blocks())

	s := New(Config{PagerHealth: func() map[string]any { return p.Stats().Health() }})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if v, ok := h.Pager["enospc_degradations"].(float64); !ok || v < 1 {
		t.Fatalf("healthz pager[enospc_degradations] = %v, want >= 1 (full: %v)", h.Pager["enospc_degradations"], h.Pager)
	}
	if v, ok := h.Pager["spilled_blocks"].(float64); !ok || v != 0 {
		t.Fatalf("healthz pager[spilled_blocks] = %v, want 0 after sticky ENOSPC degradation", h.Pager["spilled_blocks"])
	}
}

// TestHealthzFailoverCounters wires a REAL cluster.Stats snapshot —
// mid-failover shape: epoch bumped, a fenced write from the deposed
// leader, a resume from replica — through the ClusterHealth seam and
// asserts the HA triple an operator watches lands on the wire.
func TestHealthzFailoverCounters(t *testing.T) {
	stats := &cluster.Stats{
		Tasks:        300,
		Accepted:     270,
		Epoch:        2,
		FencedWrites: 3,
		Failovers:    1,
		ReplRecords:  30,
		ReplResyncs:  1,
	}
	s := New(Config{ClusterHealth: stats.Health})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		"epoch":         2,
		"fenced_writes": 3,
		"failovers":     1,
		"repl_records":  30,
		"repl_resyncs":  1,
	} {
		if got := h.Cluster[key]; got != want {
			t.Fatalf("healthz cluster[%q] = %v, want %v (full: %v)", key, got, want, h.Cluster)
		}
	}
}
