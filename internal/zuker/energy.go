// Package zuker implements the application the paper draws its NPDP
// kernel from: RNA secondary-structure prediction by free-energy
// minimization [17]. The model here is deliberately simplified — hairpin
// and stacking energies only — so that, exactly as in the paper's
// treatment, the O(n³) bifurcation layer
//
//	W(i,j) = min(V(i,j), min_k W(i,k) + W(k+1,j))
//
// dominates and runs on the NPDP engines (serial, tiled, parallel or the
// simulated Cell). The pairing layer V is an O(n²) diagonal sweep, and a
// traceback recovers the dot-bracket structure.
package zuker

import "fmt"

// Base is an RNA nucleotide.
type Base byte

// The four RNA bases.
const (
	A Base = 'A'
	C Base = 'C'
	G Base = 'G'
	U Base = 'U'
)

// Seq is a validated RNA sequence.
type Seq []Base

// ParseSeq validates an RNA string (case-insensitive, T accepted as U).
func ParseSeq(s string) (Seq, error) {
	if len(s) == 0 {
		return nil, fmt.Errorf("zuker: empty sequence")
	}
	out := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		switch b := s[i] &^ 0x20; b { // upper-case
		case 'A', 'C', 'G', 'U':
			out[i] = Base(b)
		case 'T':
			out[i] = U
		default:
			return nil, fmt.Errorf("zuker: invalid base %q at position %d", s[i], i)
		}
	}
	return out, nil
}

// String returns the sequence text.
func (s Seq) String() string {
	b := make([]byte, len(s))
	for i, x := range s {
		b[i] = byte(x)
	}
	return string(b)
}

// pairKind indexes canonical pairs: AU, UA, GC, CG, GU, UG.
func pairKind(a, b Base) int {
	switch {
	case a == A && b == U:
		return 0
	case a == U && b == A:
		return 1
	case a == G && b == C:
		return 2
	case a == C && b == G:
		return 3
	case a == G && b == U:
		return 4
	case a == U && b == G:
		return 5
	}
	return -1
}

// CanPair reports whether two bases form a canonical (Watson-Crick or
// wobble) pair.
func CanPair(a, b Base) bool { return pairKind(a, b) >= 0 }

// EnergyModel holds the simplified thermodynamic parameters, in kcal/mol
// (negative stabilizes).
type EnergyModel struct {
	// Stack[outer][inner] is the stacking energy of pair `inner` directly
	// inside pair `outer`.
	Stack [6][6]float32
	// Hairpin[k] is the closing penalty of a hairpin loop with k unpaired
	// bases; loops shorter than MinHairpin are forbidden. Sizes past the
	// table use the last entry.
	Hairpin []float32
	// Bulge[k] is the penalty of a bulge loop with k unpaired bases on
	// one side (k ≥ 1); sizes past the table use the last entry.
	Bulge []float32
	// Internal[k] is the penalty of an internal loop with k unpaired
	// bases in total across both sides (k ≥ 2).
	Internal []float32
	// PairBonus[k] is the base formation energy of pair kind k.
	PairBonus [6]float32
	// MinHairpin is the minimum unpaired bases in a hairpin loop (3).
	MinHairpin int
	// MaxLoop bounds the total unpaired bases of a bulge or internal
	// loop, the standard Zuker implementation restriction [17] that keeps
	// the pairing layer O(n²·MaxLoop²). 0 disables bulge/internal loops
	// (pure hairpin+stack model).
	MaxLoop int
}

// Turner-flavored default parameters: GC stacks strongest, wobble pairs
// weakest, loop penalties growing with size. The absolute values are
// representative, not the full Turner 2004 set (see DESIGN.md).
func DefaultEnergy() *EnergyModel {
	m := &EnergyModel{
		Hairpin:    []float32{0, 0, 0, 5.4, 5.6, 5.7, 5.4, 6.0, 5.5, 6.4, 6.5},
		Bulge:      []float32{0, 3.8, 2.8, 3.2, 3.6, 4.0, 4.4, 4.6, 4.7, 4.8, 4.9},
		Internal:   []float32{0, 0, 4.1, 5.1, 4.9, 5.3, 5.7, 5.9, 6.0, 6.1, 6.3},
		MinHairpin: 3,
		MaxLoop:    10,
	}
	// Pair formation bonuses.
	m.PairBonus = [6]float32{-0.9, -0.9, -2.1, -2.1, -0.5, -0.5}
	// Stacking: strength scales with the two pairs' GC content.
	strength := [6]float32{1.1, 1.1, 2.0, 2.0, 0.6, 0.6}
	for outer := 0; outer < 6; outer++ {
		for inner := 0; inner < 6; inner++ {
			m.Stack[outer][inner] = -(strength[outer] + strength[inner]) / 2
		}
	}
	return m
}

// Validate checks the model.
func (m *EnergyModel) Validate() error {
	if m.MinHairpin < 0 {
		return fmt.Errorf("zuker: MinHairpin must be non-negative, got %d", m.MinHairpin)
	}
	if len(m.Hairpin) <= m.MinHairpin {
		return fmt.Errorf("zuker: hairpin table (%d entries) shorter than MinHairpin %d", len(m.Hairpin), m.MinHairpin)
	}
	if m.MaxLoop < 0 {
		return fmt.Errorf("zuker: MaxLoop must be non-negative, got %d", m.MaxLoop)
	}
	if m.MaxLoop > 0 {
		if len(m.Bulge) < 2 {
			return fmt.Errorf("zuker: bulge table needs at least 2 entries when loops are enabled")
		}
		if len(m.Internal) < 3 {
			return fmt.Errorf("zuker: internal table needs at least 3 entries when loops are enabled")
		}
	}
	return nil
}

// loopEnergy returns the penalty of the two-sided loop between an outer
// pair and the pair nested inside it, with a and b unpaired bases on the
// 5' and 3' sides: stacking when a=b=0, a bulge when exactly one side is
// unpaired, an internal loop otherwise.
func (m *EnergyModel) loopEnergy(outer, inner, a, b int) float32 {
	switch {
	case a == 0 && b == 0:
		return m.Stack[outer][inner]
	case a == 0 || b == 0:
		k := a + b
		if k >= len(m.Bulge) {
			return m.Bulge[len(m.Bulge)-1]
		}
		return m.Bulge[k]
	default:
		k := a + b
		if k >= len(m.Internal) {
			return m.Internal[len(m.Internal)-1]
		}
		return m.Internal[k]
	}
}

// hairpinEnergy returns the penalty of a hairpin loop with k unpaired bases.
func (m *EnergyModel) hairpinEnergy(k int) float32 {
	if k >= len(m.Hairpin) {
		return m.Hairpin[len(m.Hairpin)-1]
	}
	return m.Hairpin[k]
}
