package zuker

import (
	"fmt"

	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// Multibranch parameters (kcal/mol): closing a multibranch loop, each
// branch, each unpaired base inside the loop. Representative of the
// linear multiloop model Zuker implementations use [17].
type MultiParams struct {
	Close    float32 // a: closing a multiloop (paid by the enclosing pair)
	Branch   float32 // b: per branch
	Unpaired float32 // c: per unpaired base inside the loop
}

// DefaultMulti returns the standard linear multiloop parameters.
func DefaultMulti() MultiParams {
	return MultiParams{Close: 3.4, Branch: 0.4, Unpaired: 0.1}
}

// FullResult is a fold with the complete recurrence set: V (pairing), WM
// (multibranch accumulation) and the external layer. It exists as the
// serial reference for the paper's simplification — the engine-
// accelerated Fold covers the bifurcation layer only, because
// multibranch couples V back into the O(n³) layer and breaks the pure
// min-plus closure the Cell kernel needs (DESIGN.md, substitutions).
type FullResult struct {
	Seq   Seq
	MFE   float32
	Model *EnergyModel
	Multi MultiParams
	v     *tri.RowMajor[float32]
	wm    *tri.RowMajor[float32]
	ext   []float32
}

// FoldFull runs the complete Zuker recurrences serially: O(n³) for the
// multibranch and external layers plus O(n²·MaxLoop²) for two-sided
// loops.
func FoldFull(seq Seq, model *EnergyModel, multi MultiParams) (*FullResult, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("zuker: empty sequence")
	}
	if model == nil {
		model = DefaultEnergy()
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	n := len(seq)
	inf := semiring.Inf[float32]()
	v := tri.NewRowMajor[float32](n)
	wm := tri.NewRowMajor[float32](n)
	r := &FullResult{Seq: seq, Model: model, Multi: multi, v: v, wm: wm}

	for span := 0; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			// V(i,j): hairpin, two-sided loop, or multibranch closure.
			if outer := pairKind(seq[i], seq[j]); outer >= 0 && span > model.MinHairpin {
				best := model.hairpinEnergy(j - i - 1)
				for a := 0; a <= model.MaxLoop; a++ {
					p := i + 1 + a
					if p >= j {
						break
					}
					for b := 0; a+b <= model.MaxLoop; b++ {
						q := j - 1 - b
						if q-p <= model.MinHairpin {
							break
						}
						if inner := pairKind(seq[p], seq[q]); inner >= 0 {
							if iv := v.At(p, q); iv < inf {
								if s := iv + model.loopEnergy(outer, inner, a, b); s < best {
									best = s
								}
							}
						}
						if model.MaxLoop == 0 {
							break
						}
					}
					if model.MaxLoop == 0 {
						break
					}
				}
				// Multibranch: a + WM(i+1,k) + WM(k+1,j-1), each WM arm
				// carrying ≥1 branch makes ≥2 branches total.
				for k := i + 1; k+1 <= j-1; k++ {
					l, rgt := wm.At(i+1, k), wm.At(k+1, j-1)
					if l < inf && rgt < inf {
						if s := multi.Close + (l + rgt); s < best {
							best = s
						}
					}
				}
				v.Set(i, j, model.PairBonus[outer]+best)
			} else {
				v.Set(i, j, inf)
			}

			// WM(i,j): at least one branch somewhere in [i,j].
			best := inf
			if vv := v.At(i, j); vv < inf {
				best = vv + multi.Branch
			}
			if span > 0 {
				if x := wm.At(i+1, j); x < inf && x+multi.Unpaired < best {
					best = x + multi.Unpaired
				}
				if x := wm.At(i, j-1); x < inf && x+multi.Unpaired < best {
					best = x + multi.Unpaired
				}
				for k := i; k+1 <= j; k++ {
					l, rgt := wm.At(i, k), wm.At(k+1, j)
					if l < inf && rgt < inf {
						if s := l + rgt; s < best {
							best = s
						}
					}
				}
			}
			wm.Set(i, j, best)
		}
	}

	// External layer: ext[j] = best energy of bases [0, j], no penalty
	// for external unpaired bases or branches.
	r.ext = make([]float32, n+1)
	for j := 1; j <= n; j++ {
		best := r.ext[j-1] // base j-1 unpaired
		for i := 0; i < j; i++ {
			if vv := v.At(i, j-1); vv < inf {
				if s := r.ext[i] + vv; s < best {
					best = s
				}
			}
		}
		r.ext[j] = best
	}
	r.MFE = r.ext[n]
	return r, nil
}

// Traceback reconstructs an optimal structure, including multibranch
// loops.
func (r *FullResult) Traceback() (*Structure, error) {
	st := &Structure{Len: len(r.Seq)}
	if err := r.traceExt(len(r.Seq), st); err != nil {
		return nil, err
	}
	return st, nil
}

// traceExt decomposes the external segment [0, j).
func (r *FullResult) traceExt(j int, st *Structure) error {
	inf := semiring.Inf[float32]()
	for j > 0 {
		val := r.ext[j]
		if val == r.ext[j-1] {
			j--
			continue
		}
		found := false
		for i := 0; i < j; i++ {
			if vv := r.v.At(i, j-1); vv < inf && val == r.ext[i]+vv {
				if err := r.traceV(i, j-1, st); err != nil {
					return err
				}
				j = i
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("zuker: no external decomposition at %d", j)
		}
	}
	return nil
}

// traceV decomposes pair (i, j).
func (r *FullResult) traceV(i, j int, st *Structure) error {
	m := r.Model
	inf := semiring.Inf[float32]()
	st.Pairs = append(st.Pairs, [2]int{i, j})
	outer := pairKind(r.Seq[i], r.Seq[j])
	val := r.v.At(i, j)
	if val == m.PairBonus[outer]+m.hairpinEnergy(j-i-1) {
		return nil
	}
	for a := 0; a <= m.MaxLoop; a++ {
		p := i + 1 + a
		if p >= j {
			break
		}
		for b := 0; a+b <= m.MaxLoop; b++ {
			q := j - 1 - b
			if q-p <= m.MinHairpin {
				break
			}
			inner := pairKind(r.Seq[p], r.Seq[q])
			if inner < 0 {
				continue
			}
			if iv := r.v.At(p, q); iv < inf && val == m.PairBonus[outer]+(iv+m.loopEnergy(outer, inner, a, b)) {
				return r.traceV(p, q, st)
			}
			if m.MaxLoop == 0 {
				break
			}
		}
		if m.MaxLoop == 0 {
			break
		}
	}
	for k := i + 1; k+1 <= j-1; k++ {
		l, rgt := r.wm.At(i+1, k), r.wm.At(k+1, j-1)
		if l < inf && rgt < inf && val == m.PairBonus[outer]+(r.Multi.Close+(l+rgt)) {
			if err := r.traceWM(i+1, k, st); err != nil {
				return err
			}
			return r.traceWM(k+1, j-1, st)
		}
	}
	return fmt.Errorf("zuker: no V decomposition at (%d,%d)", i, j)
}

// traceWM decomposes a multibranch segment [i, j].
func (r *FullResult) traceWM(i, j int, st *Structure) error {
	inf := semiring.Inf[float32]()
	for {
		val := r.wm.At(i, j)
		if val >= inf {
			return fmt.Errorf("zuker: infinite WM at (%d,%d)", i, j)
		}
		if vv := r.v.At(i, j); vv < inf && val == vv+r.Multi.Branch {
			return r.traceV(i, j, st)
		}
		if i < j {
			if x := r.wm.At(i+1, j); x < inf && val == x+r.Multi.Unpaired {
				i++
				continue
			}
			if x := r.wm.At(i, j-1); x < inf && val == x+r.Multi.Unpaired {
				j--
				continue
			}
			split := -1
			for k := i; k+1 <= j; k++ {
				l, rgt := r.wm.At(i, k), r.wm.At(k+1, j)
				if l < inf && rgt < inf && val == l+rgt {
					split = k
					break
				}
			}
			if split >= 0 {
				if err := r.traceWM(i, split, st); err != nil {
					return err
				}
				i = split + 1
				continue
			}
		}
		return fmt.Errorf("zuker: no WM decomposition at (%d,%d)", i, j)
	}
}
