package zuker

import "fmt"

// Constraints restrict a fold: positions marked unpaired never enter a
// pair, and position pairs marked forbidden never pair with each other.
// Constrained folding is how structure-probing data (SHAPE, enzymatic)
// is folded against in practice; here it also serves as a stress test of
// the pairing layer, since constraints only ever remove options.
type Constraints struct {
	unpaired  map[int]bool
	forbidden map[[2]int]bool
	n         int // 0 = unbounded
}

// NewConstraints creates an empty constraint set.
func NewConstraints() *Constraints {
	return &Constraints{unpaired: map[int]bool{}, forbidden: map[[2]int]bool{}}
}

// ParseConstraints reads a constraint line aligned with the sequence:
// '.' free, 'x' forced unpaired. (Forced pairs are out of scope for this
// model: the closure cannot guarantee an arbitrary pair is optimal.)
func ParseConstraints(line string) (*Constraints, error) {
	c := NewConstraints()
	c.n = len(line)
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '.':
		case 'x', 'X':
			c.unpaired[i] = true
		default:
			return nil, fmt.Errorf("zuker: constraint char %q at %d (want '.' or 'x')", line[i], i)
		}
	}
	return c, nil
}

// ForceUnpaired marks position i as never pairing.
func (c *Constraints) ForceUnpaired(i int) *Constraints {
	c.unpaired[i] = true
	return c
}

// Forbid prevents the specific pair (i, j).
func (c *Constraints) Forbid(i, j int) *Constraints {
	if i > j {
		i, j = j, i
	}
	c.forbidden[[2]int{i, j}] = true
	return c
}

// Allows reports whether (i, j) may pair under the constraints. A nil
// receiver allows everything.
func (c *Constraints) Allows(i, j int) bool {
	if c == nil {
		return true
	}
	if c.unpaired[i] || c.unpaired[j] {
		return false
	}
	return !c.forbidden[[2]int{i, j}]
}

// Check validates the constraints against a sequence length.
func (c *Constraints) Check(n int) error {
	if c == nil {
		return nil
	}
	if c.n > 0 && c.n != n {
		return fmt.Errorf("zuker: constraint line length %d != sequence length %d", c.n, n)
	}
	for i := range c.unpaired {
		if i < 0 || i >= n {
			return fmt.Errorf("zuker: unpaired constraint at %d outside sequence of %d", i, n)
		}
	}
	for p := range c.forbidden {
		if p[0] < 0 || p[1] >= n {
			return fmt.Errorf("zuker: forbidden pair %v outside sequence of %d", p, n)
		}
	}
	return nil
}

// Satisfied reports whether a structure honors the constraints.
func (c *Constraints) Satisfied(s *Structure) error {
	if c == nil {
		return nil
	}
	for _, p := range s.Pairs {
		if c.unpaired[p[0]] || c.unpaired[p[1]] {
			return fmt.Errorf("zuker: pair (%d,%d) uses a forced-unpaired base", p[0], p[1])
		}
		if c.forbidden[[2]int{p[0], p[1]}] {
			return fmt.Errorf("zuker: forbidden pair (%d,%d) present", p[0], p[1])
		}
	}
	return nil
}
