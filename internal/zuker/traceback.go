package zuker

import (
	"fmt"

	"cellnpdp/internal/semiring"
)

// Structure is a predicted secondary structure: a set of base pairs
// (i, j), i < j, non-crossing by construction of the traceback.
type Structure struct {
	Len   int
	Pairs [][2]int
}

// DotBracket renders the structure in dot-bracket notation.
func (s *Structure) DotBracket() string {
	out := make([]byte, s.Len)
	for i := range out {
		out[i] = '.'
	}
	for _, p := range s.Pairs {
		out[p[0]] = '('
		out[p[1]] = ')'
	}
	return string(out)
}

// Validate checks structural sanity: pair indices in range, each base in
// at most one pair, no crossing pairs (pseudoknots), and every pair
// canonical for the given sequence.
func (s *Structure) Validate(seq Seq) error {
	if s.Len != len(seq) {
		return fmt.Errorf("zuker: structure length %d != sequence length %d", s.Len, len(seq))
	}
	used := make(map[int]bool)
	for _, p := range s.Pairs {
		i, j := p[0], p[1]
		if i < 0 || j >= s.Len || i >= j {
			return fmt.Errorf("zuker: invalid pair (%d,%d)", i, j)
		}
		if used[i] || used[j] {
			return fmt.Errorf("zuker: base in two pairs at (%d,%d)", i, j)
		}
		used[i], used[j] = true, true
		if !CanPair(seq[i], seq[j]) {
			return fmt.Errorf("zuker: non-canonical pair %c-%c at (%d,%d)", seq[i], seq[j], i, j)
		}
	}
	for _, p := range s.Pairs {
		for _, q := range s.Pairs {
			if p[0] < q[0] && q[0] < p[1] && p[1] < q[1] {
				return fmt.Errorf("zuker: crossing pairs (%d,%d) and (%d,%d)", p[0], p[1], q[0], q[1])
			}
		}
	}
	return nil
}

// Energy recomputes the structure's free energy under the model,
// independently of the DP tables: each pair contributes its formation
// bonus plus the loop it closes — a stack, bulge or internal loop when a
// pair is directly nested inside it, a hairpin otherwise. Structures from
// this model nest at most one pair directly inside another (multibranch
// loops are outside the simplified model; DESIGN.md documents this).
func (s *Structure) Energy(seq Seq, m *EnergyModel) float32 {
	// directChild[p] = the pair immediately nested inside p, if any:
	// the contained pair with the largest span.
	var e float32
	for _, p := range s.Pairs {
		i, j := p[0], p[1]
		kind := pairKind(seq[i], seq[j])
		e += m.PairBonus[kind]
		childSpan := -1
		var child [2]int
		for _, q := range s.Pairs {
			if q[0] > i && q[1] < j && q[1]-q[0] > childSpan {
				childSpan = q[1] - q[0]
				child = q
			}
		}
		if childSpan < 0 {
			e += m.hairpinEnergy(j - i - 1)
			continue
		}
		inner := pairKind(seq[child[0]], seq[child[1]])
		e += m.loopEnergy(kind, inner, child[0]-i-1, j-child[1]-1)
	}
	return e
}

// Traceback recovers an optimal structure from a fold result. The
// equality tests are exact: every table value was produced as a min over
// sums of final table values, so the winning decomposition is
// reconstructible bit-for-bit.
func (r *Result) Traceback() (*Structure, error) {
	n := len(r.Seq)
	st := &Structure{Len: n}
	if err := r.traceW(0, n, st); err != nil {
		return nil, err
	}
	return st, nil
}

// traceW decomposes the half-open interval [a, b).
func (r *Result) traceW(a, b int, st *Structure) error {
	for b-a > 1 {
		val := r.W.At(a, b)
		inf := semiring.Inf[float32]()
		if val >= inf {
			return fmt.Errorf("zuker: infinite W at [%d,%d)", a, b)
		}
		// Closed by a pair spanning the whole interval?
		if v := r.V.At(a, b-1); v == val {
			return r.traceV(a, b-1, st)
		}
		// Otherwise split at the k that realizes the min. Prefer a proper
		// split; a leading unpaired base is the k = a+1 case.
		split := -1
		for k := a + 1; k < b; k++ {
			if r.W.At(a, k)+r.W.At(k, b) == val {
				split = k
				break
			}
		}
		if split < 0 {
			return fmt.Errorf("zuker: no decomposition for W[%d,%d) = %g", a, b, val)
		}
		if err := r.traceW(a, split, st); err != nil {
			return err
		}
		a = split // tail-recurse into the right part
	}
	return nil
}

// traceV follows a stem: pair (i, j), then the nested pair across a
// stack, bulge or internal loop, until a hairpin ends the helix.
func (r *Result) traceV(i, j int, st *Structure) error {
	m := r.Model
	inf := semiring.Inf[float32]()
stem:
	for {
		st.Pairs = append(st.Pairs, [2]int{i, j})
		outer := pairKind(r.Seq[i], r.Seq[j])
		if outer < 0 {
			return fmt.Errorf("zuker: traceback paired unpairable bases (%d,%d)", i, j)
		}
		val := r.V.At(i, j)
		// Compare against the exact expressions computeV evaluated, in the
		// same association order, so float32 equality is reliable.
		if val == m.PairBonus[outer]+m.hairpinEnergy(j-i-1) {
			return nil // hairpin closes the stem
		}
		for a := 0; a <= m.MaxLoop; a++ {
			p := i + 1 + a
			if p >= j {
				break
			}
			for b := 0; a+b <= m.MaxLoop; b++ {
				q := j - 1 - b
				if q-p <= m.MinHairpin {
					break
				}
				inner := pairKind(r.Seq[p], r.Seq[q])
				if inner < 0 {
					continue
				}
				iv := r.V.At(p, q)
				if iv >= inf {
					continue
				}
				if val == m.PairBonus[outer]+(iv+m.loopEnergy(outer, inner, a, b)) {
					i, j = p, q
					continue stem
				}
				if m.MaxLoop == 0 {
					break
				}
			}
			if m.MaxLoop == 0 {
				break
			}
		}
		return fmt.Errorf("zuker: no decomposition for V(%d,%d) = %g", i, j, val)
	}
}

// EnergyFull recomputes a structure's free energy under the full model
// (hairpins, two-sided loops and multibranch loops), independently of the
// DP tables. External branches and unpaired bases are free.
func (s *Structure) EnergyFull(seq Seq, m *EnergyModel, multi MultiParams) float32 {
	// children[x] = pairs directly nested inside pair x.
	type node = [2]int
	children := map[node][]node{}
	parentOf := func(p node) (node, bool) {
		best := node{-1, len(seq)}
		found := false
		for _, q := range s.Pairs {
			if q[0] < p[0] && p[1] < q[1] && q[1]-q[0] < best[1]-best[0] {
				best = q
				found = true
			}
		}
		return best, found
	}
	var roots []node
	for _, p := range s.Pairs {
		if par, ok := parentOf(p); ok {
			children[par] = append(children[par], p)
		} else {
			roots = append(roots, p)
		}
	}
	_ = roots
	var e float32
	for _, p := range s.Pairs {
		i, j := p[0], p[1]
		kind := pairKind(seq[i], seq[j])
		e += m.PairBonus[kind]
		kids := children[p]
		switch len(kids) {
		case 0:
			e += m.hairpinEnergy(j - i - 1)
		case 1:
			c := kids[0]
			inner := pairKind(seq[c[0]], seq[c[1]])
			e += m.loopEnergy(kind, inner, c[0]-i-1, j-c[1]-1)
		default:
			// Multibranch: closing + per-branch + per-unpaired-inside.
			unpaired := j - i - 1
			for _, c := range kids {
				unpaired -= c[1] - c[0] + 1
			}
			e += multi.Close + multi.Branch*float32(len(kids)) + multi.Unpaired*float32(unpaired)
		}
	}
	return e
}
