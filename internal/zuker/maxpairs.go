package zuker

import (
	"fmt"

	"cellnpdp/internal/fourrussians"
)

// MaxPairsResult is a completed Nussinov max-base-pairs run.
type MaxPairsResult struct {
	Seq Seq
	// Pairs is the maximum number of nested canonical pairs.
	Pairs int
	// FourRussians reports whether the O(n³/log n) two-vector kernel
	// ran (false means the serial reference was selected).
	FourRussians bool
	// Q is the Four-Russians group size used (1 for the serial path).
	Q int
}

// MaxPairs computes the Nussinov maximum-base-pairs structure of seq —
// the lattice-valued counterpart of Fold's energy minimization. Because
// the DP values move by 0/1 along rows and columns, this is the one
// workload where the Four-Russians stage-1 kernel is sound; the
// useFourRussians switch is decided by the caller (normally via
// perfmodel.PickKernel on a Lattice shape).
//
// minSpan is the hairpin constraint: i pairs with j only when
// j-i > minSpan. Both paths produce identical tables (integer DP), so
// selection is purely a performance decision.
func MaxPairs(seq Seq, minSpan int, useFourRussians bool) (*MaxPairsResult, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("zuker: empty sequence")
	}
	pair := func(i, j int) bool { return CanPair(seq[i], seq[j]) }
	var (
		res *fourrussians.Result
		err error
	)
	if useFourRussians {
		res, err = fourrussians.Solve(len(seq), pair, fourrussians.Options{MinSpan: minSpan})
	} else {
		res, err = fourrussians.SolveSerial(len(seq), pair, minSpan)
	}
	if err != nil {
		return nil, err
	}
	return &MaxPairsResult{Seq: seq, Pairs: res.Pairs, FourRussians: useFourRussians, Q: res.Q}, nil
}
