package zuker

import (
	"math"
	"strings"
	"testing"

	"cellnpdp/internal/semiring"
	"cellnpdp/internal/workload"
)

// approx reports near-equality up to float32 re-association error: the
// DP accumulates sums in a different order than the independent checks.
func approx(a, b float32) bool {
	return math.Abs(float64(a-b)) <= 1e-4*math.Max(1, math.Abs(float64(a)))
}

func TestParseSeq(t *testing.T) {
	s, err := ParseSeq("acgUuT")
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "ACGUUU" {
		t.Errorf("parsed %q", s.String())
	}
	if _, err := ParseSeq(""); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := ParseSeq("ACGX"); err == nil {
		t.Error("invalid base accepted")
	}
}

func TestCanPair(t *testing.T) {
	yes := [][2]Base{{A, U}, {U, A}, {G, C}, {C, G}, {G, U}, {U, G}}
	for _, p := range yes {
		if !CanPair(p[0], p[1]) {
			t.Errorf("%c-%c should pair", p[0], p[1])
		}
	}
	no := [][2]Base{{A, A}, {A, G}, {G, A}, {C, U}, {U, C}, {C, C}}
	for _, p := range no {
		if CanPair(p[0], p[1]) {
			t.Errorf("%c-%c should not pair", p[0], p[1])
		}
	}
}

func TestEnergyModelValidate(t *testing.T) {
	if err := DefaultEnergy().Validate(); err != nil {
		t.Error(err)
	}
	bad := DefaultEnergy()
	bad.MinHairpin = -1
	if bad.Validate() == nil {
		t.Error("negative MinHairpin accepted")
	}
	bad = DefaultEnergy()
	bad.Hairpin = []float32{0}
	if bad.Validate() == nil {
		t.Error("short hairpin table accepted")
	}
}

func TestFoldUnfoldableSequence(t *testing.T) {
	// Poly-A cannot form any pair: MFE must be 0 (fully unpaired) and the
	// traceback must produce the empty structure.
	seq, _ := ParseSeq(strings.Repeat("A", 40))
	res, err := Fold(seq, Options{Engine: EngineSerial})
	if err != nil {
		t.Fatal(err)
	}
	if res.MFE != 0 {
		t.Errorf("poly-A MFE = %g, want 0", res.MFE)
	}
	st, err := res.Traceback()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Pairs) != 0 {
		t.Errorf("poly-A folded with %d pairs", len(st.Pairs))
	}
	if st.DotBracket() != strings.Repeat(".", 40) {
		t.Errorf("dot-bracket %q", st.DotBracket())
	}
}

func TestFoldSimpleHairpin(t *testing.T) {
	// GGG AAAA CCC folds into a 3-stack hairpin stem.
	seq, _ := ParseSeq("GGGAAAACCC")
	res, err := Fold(seq, Options{Engine: EngineSerial})
	if err != nil {
		t.Fatal(err)
	}
	if res.MFE >= 0 {
		t.Fatalf("hairpin MFE = %g, want negative", res.MFE)
	}
	st, err := res.Traceback()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(seq); err != nil {
		t.Fatal(err)
	}
	if got := st.DotBracket(); got != "(((....)))" {
		t.Errorf("structure %q, want (((....)))", got)
	}
	m := DefaultEnergy()
	// 3 GC pairs + 2 GC/GC stacks + hairpin(4): -2.1·3 + -2.0·2 + 5.6.
	want := 3*m.PairBonus[2] + 2*m.Stack[2][2] + m.Hairpin[4]
	if !approx(res.MFE, want) {
		t.Errorf("MFE = %g, want %g", res.MFE, want)
	}
}

func TestHairpinMinimumLoop(t *testing.T) {
	// GGGC: pairing G0-C3 would need a 2-base loop < MinHairpin=3.
	seq, _ := ParseSeq("GGGC")
	res, err := Fold(seq, Options{Engine: EngineSerial})
	if err != nil {
		t.Fatal(err)
	}
	if res.MFE != 0 {
		t.Errorf("too-short hairpin folded: MFE = %g", res.MFE)
	}
}

func TestVTableSymmetry(t *testing.T) {
	seq, _ := ParseSeq(workload.RNA(60, 3))
	res, err := Fold(seq, Options{Engine: EngineSerial})
	if err != nil {
		t.Fatal(err)
	}
	inf := semiring.Inf[float32]()
	n := len(seq)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			v := res.V.At(i, j)
			if !CanPair(seq[i], seq[j]) && v < inf {
				t.Fatalf("V(%d,%d) finite for unpairable %c-%c", i, j, seq[i], seq[j])
			}
			if j-i-1 < DefaultEnergy().MinHairpin && v < inf {
				t.Fatalf("V(%d,%d) finite for loop shorter than minimum", i, j)
			}
		}
	}
}

func TestAllEnginesAgree(t *testing.T) {
	for _, n := range []int{30, 64, 127, 200} {
		seq, _ := ParseSeq(workload.RNA(n, int64(n)))
		ref, err := Fold(seq, Options{Engine: EngineSerial})
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range []Engine{EngineTiled, EngineParallel, EngineCell} {
			got, err := Fold(seq, Options{Engine: eng, Workers: 4, Tile: 16})
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, eng, err)
			}
			if got.MFE != ref.MFE {
				t.Errorf("n=%d: %v MFE %g != serial %g", n, eng, got.MFE, ref.MFE)
			}
			for j := 0; j <= n; j++ {
				for i := 0; i <= j; i++ {
					if got.W.At(i, j) != ref.W.At(i, j) {
						t.Fatalf("n=%d %v: W(%d,%d) differs", n, eng, i, j)
					}
				}
			}
		}
	}
}

func TestCellEngineReportsTime(t *testing.T) {
	seq, _ := ParseSeq(workload.RNA(100, 9))
	res, err := Fold(seq, Options{Engine: EngineCell, Workers: 8, Tile: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.CellTime <= 0 {
		t.Error("cell engine did not report modeled time")
	}
}

func TestTracebackEnergyMatchesMFE(t *testing.T) {
	// Property: the traceback structure's independently recomputed energy
	// equals the DP's MFE, and the structure is valid (no crossing pairs,
	// canonical pairs only).
	for seed := int64(0); seed < 20; seed++ {
		n := 20 + int(seed)*13%180
		seq, _ := ParseSeq(workload.RNA(n, seed))
		res, err := Fold(seq, Options{Engine: EngineSerial})
		if err != nil {
			t.Fatal(err)
		}
		st, err := res.Traceback()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := st.Validate(seq); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if e := st.Energy(seq, res.Model); !approx(e, res.MFE) {
			t.Errorf("seed %d: structure energy %g != MFE %g", seed, e, res.MFE)
		}
	}
}

func TestMFENonPositiveAndMonotone(t *testing.T) {
	// Adding bases can only keep or lower the MFE of a prefix (the new
	// suffix can always stay unpaired).
	seq, _ := ParseSeq(workload.RNA(120, 11))
	prev := float32(0)
	for n := 10; n <= 120; n += 10 {
		res, err := Fold(seq[:n], Options{Engine: EngineSerial})
		if err != nil {
			t.Fatal(err)
		}
		if res.MFE > 0 {
			t.Errorf("n=%d: MFE %g positive (unpaired is always 0)", n, res.MFE)
		}
		if res.MFE > prev {
			t.Errorf("n=%d: MFE %g worse than prefix %g", n, res.MFE, prev)
		}
		prev = res.MFE
	}
}

func TestFoldRejectsBad(t *testing.T) {
	if _, err := Fold(nil, Options{}); err == nil {
		t.Error("nil sequence accepted")
	}
	seq, _ := ParseSeq("GGGAAAACCC")
	if _, err := Fold(seq, Options{Engine: Engine(99)}); err == nil {
		t.Error("unknown engine accepted")
	}
	bad := DefaultEnergy()
	bad.MinHairpin = -2
	if _, err := Fold(seq, Options{Model: bad}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestEngineString(t *testing.T) {
	names := map[Engine]string{EngineSerial: "serial", EngineTiled: "tiled", EngineParallel: "parallel", EngineCell: "cell", Engine(9): "engine(?)"}
	for e, want := range names {
		if e.String() != want {
			t.Errorf("%d.String() = %q", e, e.String())
		}
	}
}

func TestBulgeLoopsImproveFolds(t *testing.T) {
	// A stem interrupted by one extra base on the 5' side: without bulge
	// loops the fold must stop at the short helix; with them it can bridge
	// the bulge and close the longer one.
	seq, _ := ParseSeq("GGGAGGGAAAACCCCCC")
	strict := DefaultEnergy()
	strict.MaxLoop = 0
	rs, err := Fold(seq, Options{Engine: EngineSerial, Model: strict})
	if err != nil {
		t.Fatal(err)
	}
	loose := DefaultEnergy()
	rl, err := Fold(seq, Options{Engine: EngineSerial, Model: loose})
	if err != nil {
		t.Fatal(err)
	}
	if rl.MFE >= rs.MFE {
		t.Errorf("bulge loops did not help: MFE %g (loops) vs %g (stack-only)", rl.MFE, rs.MFE)
	}
	st, err := rl.Traceback()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(seq); err != nil {
		t.Fatal(err)
	}
	if !approx(st.Energy(seq, loose), rl.MFE) {
		t.Errorf("bulged structure energy %g != MFE %g", st.Energy(seq, loose), rl.MFE)
	}
}

func TestInternalLoopTraceback(t *testing.T) {
	// Symmetric 1x1 internal loop: GC-stem, A mismatch both sides, GC-stem.
	seq, _ := ParseSeq("GGGGAGGGAAAACCCACCCC")
	res, err := Fold(seq, Options{Engine: EngineSerial})
	if err != nil {
		t.Fatal(err)
	}
	st, err := res.Traceback()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(seq); err != nil {
		t.Fatal(err)
	}
	if !approx(st.Energy(seq, res.Model), res.MFE) {
		t.Errorf("energy %g != MFE %g", st.Energy(seq, res.Model), res.MFE)
	}
}

func TestLoopModelEnginesStillAgree(t *testing.T) {
	// The richer pairing layer only changes the W initialization; every
	// engine must still agree bit-for-bit.
	seq, _ := ParseSeq(workload.RNA(150, 42))
	ref, err := Fold(seq, Options{Engine: EngineSerial})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []Engine{EngineTiled, EngineParallel, EngineCell} {
		got, err := Fold(seq, Options{Engine: eng, Workers: 4, Tile: 16})
		if err != nil {
			t.Fatal(err)
		}
		if got.MFE != ref.MFE {
			t.Errorf("%v: MFE %g != %g", eng, got.MFE, ref.MFE)
		}
	}
}

func TestEnergyModelLoopValidation(t *testing.T) {
	m := DefaultEnergy()
	m.MaxLoop = -1
	if m.Validate() == nil {
		t.Error("negative MaxLoop accepted")
	}
	m = DefaultEnergy()
	m.Bulge = nil
	if m.Validate() == nil {
		t.Error("missing bulge table accepted with loops enabled")
	}
	m = DefaultEnergy()
	m.Internal = []float32{0}
	if m.Validate() == nil {
		t.Error("short internal table accepted")
	}
	m = DefaultEnergy()
	m.MaxLoop = 0
	m.Bulge, m.Internal = nil, nil
	if err := m.Validate(); err != nil {
		t.Errorf("stack-only model rejected: %v", err)
	}
}

func TestLoopEnergyClassification(t *testing.T) {
	m := DefaultEnergy()
	if got := m.loopEnergy(2, 3, 0, 0); got != m.Stack[2][3] {
		t.Errorf("0,0 should be stack: %g", got)
	}
	if got := m.loopEnergy(2, 3, 2, 0); got != m.Bulge[2] {
		t.Errorf("2,0 should be bulge: %g", got)
	}
	if got := m.loopEnergy(2, 3, 1, 2); got != m.Internal[3] {
		t.Errorf("1,2 should be internal: %g", got)
	}
	// Size clamping uses the last entry.
	if got := m.loopEnergy(2, 3, 0, 99); got != m.Bulge[len(m.Bulge)-1] {
		t.Errorf("oversized bulge not clamped: %g", got)
	}
}

func TestConstrainedFold(t *testing.T) {
	seq, _ := ParseSeq("GGGAAAACCC")
	free, err := Fold(seq, Options{Engine: EngineSerial})
	if err != nil {
		t.Fatal(err)
	}
	// Force the outermost pair's 5' base unpaired: the stem must shrink
	// and the MFE must not improve.
	cons := NewConstraints().ForceUnpaired(0)
	res, err := Fold(seq, Options{Engine: EngineSerial, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	if res.MFE < free.MFE {
		t.Errorf("constraint improved MFE: %g < %g", res.MFE, free.MFE)
	}
	st, err := res.Traceback()
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.Satisfied(st); err != nil {
		t.Fatal(err)
	}
	if st.DotBracket()[0] != '.' {
		t.Errorf("base 0 paired despite constraint: %s", st.DotBracket())
	}
}

func TestConstraintsParse(t *testing.T) {
	c, err := ParseConstraints("..x..x.")
	if err != nil {
		t.Fatal(err)
	}
	if c.Allows(2, 6) || c.Allows(0, 5) {
		t.Error("forced-unpaired positions still allowed")
	}
	if !c.Allows(0, 6) {
		t.Error("free positions blocked")
	}
	if _, err := ParseConstraints("..?"); err == nil {
		t.Error("invalid constraint char accepted")
	}
	if err := c.Check(7); err != nil {
		t.Error(err)
	}
	if err := c.Check(5); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestForbiddenPair(t *testing.T) {
	seq, _ := ParseSeq("GGGAAAACCC")
	free, _ := Fold(seq, Options{Engine: EngineSerial})
	fst, _ := free.Traceback()
	if len(fst.Pairs) == 0 {
		t.Fatal("free fold has no pairs")
	}
	// Forbid the first pair the free fold used.
	p := fst.Pairs[0]
	cons := NewConstraints().Forbid(p[0], p[1])
	res, err := Fold(seq, Options{Engine: EngineSerial, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	st, err := res.Traceback()
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.Satisfied(st); err != nil {
		t.Fatal(err)
	}
	if res.MFE < free.MFE {
		t.Errorf("forbidding a pair improved MFE")
	}
}

func TestNilConstraintsAllowEverything(t *testing.T) {
	var c *Constraints
	if !c.Allows(0, 5) {
		t.Error("nil constraints blocked a pair")
	}
	if err := c.Check(10); err != nil {
		t.Error(err)
	}
	if err := c.Satisfied(&Structure{Len: 3, Pairs: [][2]int{{0, 2}}}); err != nil {
		t.Error(err)
	}
}

// cloverleafSeq is built to fold as a multibranch: three GC-rich stems
// whose loops cannot pair, all enclosed by one outer stem.
const cloverleafSeq = "GGGGG" + "AA" + "GGGGAAAACCCC" + "AA" + "GGGGAAAACCCC" + "AA" + "CCCCC"

func TestFoldFullProducesMultibranch(t *testing.T) {
	seq, err := ParseSeq(cloverleafSeq)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FoldFull(seq, nil, DefaultMulti())
	if err != nil {
		t.Fatal(err)
	}
	st, err := res.Traceback()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(seq); err != nil {
		t.Fatal(err)
	}
	// Some pair must directly contain two or more pairs.
	multibranch := false
	for _, p := range st.Pairs {
		direct := 0
		for _, q := range st.Pairs {
			if q[0] > p[0] && q[1] < p[1] {
				// q nested in p; is it direct (no pair between)?
				isDirect := true
				for _, r := range st.Pairs {
					if r != p && r != q && r[0] < q[0] && q[1] < r[1] && p[0] < r[0] && r[1] < p[1] {
						isDirect = false
						break
					}
				}
				if isDirect {
					direct++
				}
			}
		}
		if direct >= 2 {
			multibranch = true
		}
	}
	if !multibranch {
		t.Errorf("no multibranch loop in %s", st.DotBracket())
	}
	if !approx(st.EnergyFull(seq, res.Model, res.Multi), res.MFE) {
		t.Errorf("EnergyFull %g != MFE %g", st.EnergyFull(seq, res.Model, res.Multi), res.MFE)
	}
}

func TestFoldFullAtLeastAsGoodAsSimplified(t *testing.T) {
	// The full recurrence can express everything the simplified one can
	// (multibranch only adds options, and the simplified model's W-level
	// composition is free externally in both), so MFE_full ≤ MFE_simple.
	for seed := int64(0); seed < 10; seed++ {
		seq, _ := ParseSeq(workload.RNA(80, seed))
		simple, err := Fold(seq, Options{Engine: EngineSerial})
		if err != nil {
			t.Fatal(err)
		}
		full, err := FoldFull(seq, nil, DefaultMulti())
		if err != nil {
			t.Fatal(err)
		}
		if full.MFE > simple.MFE+1e-4 {
			t.Errorf("seed %d: full MFE %g worse than simplified %g", seed, full.MFE, simple.MFE)
		}
	}
}

func TestFoldFullTracebackEnergyConsistency(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seq, _ := ParseSeq(workload.RNA(70, seed+100))
		res, err := FoldFull(seq, nil, DefaultMulti())
		if err != nil {
			t.Fatal(err)
		}
		st, err := res.Traceback()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := st.Validate(seq); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := st.EnergyFull(seq, res.Model, res.Multi); !approx(got, res.MFE) {
			t.Errorf("seed %d: EnergyFull %g != MFE %g (%s)", seed, got, res.MFE, st.DotBracket())
		}
	}
}

func TestFoldFullRejectsBad(t *testing.T) {
	if _, err := FoldFull(nil, nil, DefaultMulti()); err == nil {
		t.Error("empty sequence accepted")
	}
	bad := DefaultEnergy()
	bad.MinHairpin = -1
	seq, _ := ParseSeq("GGGAAAACCC")
	if _, err := FoldFull(seq, bad, DefaultMulti()); err == nil {
		t.Error("invalid model accepted")
	}
}
