package zuker

import (
	"fmt"
	"runtime"

	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/pipeline"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// Engine selects the NPDP backend for the bifurcation layer.
type Engine int

// The available backends.
const (
	EngineSerial   Engine = iota // original Figure 1 loop
	EngineTiled                  // serial tiled on the new data layout
	EngineParallel               // goroutine task-queue (Section IV-B)
	EngineCell                   // full CellNPDP on the simulated Cell
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineSerial:
		return "serial"
	case EngineTiled:
		return "tiled"
	case EngineParallel:
		return "parallel"
	case EngineCell:
		return "cell"
	}
	return "engine(?)"
}

// Options configures Fold.
type Options struct {
	Engine  Engine
	Workers int // parallel/cell engines; defaults to GOMAXPROCS (capped at 16 for cell)
	Tile    int // tiled/parallel/cell engines; defaults to 32
	Model   *EnergyModel
	// Constraints, when non-nil, restricts which bases may pair.
	Constraints *Constraints
}

// Result is a completed fold.
type Result struct {
	Seq Seq
	// MFE is the minimum free energy of the sequence (0 for a sequence
	// that cannot form a single pair).
	MFE float32
	// V is the pairing-layer table: V.At(i,j) is the best energy of
	// [i,j] with i and j paired (infinite when unpairable).
	V *tri.RowMajor[float32]
	// W is the bifurcation-layer table over half-open intervals:
	// W.At(a,b) is the best energy of bases [a, b), so the table has
	// len(Seq)+1 points and MFE = W.At(0, len(Seq)).
	W *tri.RowMajor[float32]
	// CellTime is the modeled QS20 seconds of the bifurcation layer when
	// Engine == EngineCell, 0 otherwise.
	CellTime float64
	// Model is the energy model the fold ran under.
	Model *EnergyModel
}

// computeV fills the pairing layer by diagonal sweep: a pair closes a
// hairpin, stacks directly on the pair inside it, or closes a bulge or
// internal loop of total unpaired size ≤ MaxLoop around a nested pair —
// the standard Zuker pairing cases with the implementation's usual loop
// bound [17]. O(n²·MaxLoop²).
func computeV(seq Seq, m *EnergyModel, cons *Constraints) *tri.RowMajor[float32] {
	n := len(seq)
	v := tri.NewRowMajor[float32](n)
	inf := semiring.Inf[float32]()
	for span := m.MinHairpin + 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			outer := pairKind(seq[i], seq[j])
			if outer < 0 || !cons.Allows(i, j) {
				continue // stays infinite
			}
			best := m.hairpinEnergy(j - i - 1)
			// Nested pair (p, q) with a = p-i-1 and b = j-q-1 unpaired
			// bases around it; a = b = 0 is the stacking case.
			maxA := m.MaxLoop
			for a := 0; a <= maxA; a++ {
				p := i + 1 + a
				if p >= j {
					break
				}
				for b := 0; a+b <= m.MaxLoop; b++ {
					q := j - 1 - b
					if q-p <= m.MinHairpin {
						break
					}
					inner := pairKind(seq[p], seq[q])
					if inner < 0 {
						continue
					}
					if iv := v.At(p, q); iv < inf {
						if s := iv + m.loopEnergy(outer, inner, a, b); s < best {
							best = s
						}
					}
					if m.MaxLoop == 0 {
						break
					}
				}
				if m.MaxLoop == 0 {
					break
				}
			}
			v.Set(i, j, m.PairBonus[outer]+best)
		}
	}
	return v
}

// buildW seeds the bifurcation table over half-open intervals: a single
// base costs 0, any pairable span may close with V, and the NPDP closure
// composes adjacent substructures.
func buildW(seq Seq, v *tri.RowMajor[float32]) *tri.RowMajor[float32] {
	n := len(seq)
	w := tri.NewRowMajor[float32](n + 1)
	for a := 0; a <= n; a++ {
		w.Set(a, a, 0)
		if a < n {
			w.Set(a, a+1, 0) // one unpaired base
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			w.Set(i, j+1, v.At(i, j))
		}
	}
	return w
}

// Fold predicts the minimum-free-energy secondary structure of seq,
// running the O(n³) bifurcation layer on the selected NPDP engine.
func Fold(seq Seq, opts Options) (*Result, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("zuker: empty sequence")
	}
	model := opts.Model
	if model == nil {
		model = DefaultEnergy()
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tile := opts.Tile
	if tile <= 0 {
		tile = 32
	}

	if err := opts.Constraints.Check(len(seq)); err != nil {
		return nil, err
	}
	v := computeV(seq, model, opts.Constraints)
	w := buildW(seq, v)
	res := &Result{Seq: seq, V: v, W: w, Model: model}

	switch opts.Engine {
	case EngineSerial:
		npdp.SolveSerial(w)
	case EngineTiled:
		tw := tri.ToTiled(w, tile)
		if _, err := npdp.SolveTiled(tw); err != nil {
			return nil, err
		}
		tri.Copy[float32](tri.Table[float32](w), tw)
	case EngineParallel:
		tw := tri.ToTiled(w, tile)
		if _, err := npdp.SolveParallel(tw, npdp.ParallelOptions{Workers: workers, SchedSide: 1}); err != nil {
			return nil, err
		}
		tri.Copy[float32](tri.Table[float32](w), tw)
	case EngineCell:
		mach, err := cellsim.NewMachine(cellsim.QS20())
		if err != nil {
			return nil, err
		}
		if workers > len(mach.SPEs) {
			workers = len(mach.SPEs)
		}
		tw := tri.ToTiled(w, tile)
		cres, err := npdp.SolveCell(tw, mach, npdp.CellOptions{
			Workers:           workers,
			SchedSide:         1,
			UseSIMD:           true,
			DoubleBuffer:      true,
			CBStepCycles:      pipeline.CBStepCyclesSP(),
			ScalarRelaxCycles: npdp.DefaultScalarRelaxCycles,
		})
		if err != nil {
			return nil, err
		}
		res.CellTime = cres.Seconds
		tri.Copy[float32](tri.Table[float32](w), tw)
	default:
		return nil, fmt.Errorf("zuker: unknown engine %d", opts.Engine)
	}
	res.MFE = w.At(0, len(seq))
	return res, nil
}
