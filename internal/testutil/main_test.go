package testutil

import (
	"os"
	"testing"
)

func TestMain(m *testing.M) { os.Exit(CheckMain(m)) }
