// Package testutil holds shared test harness helpers. The one export
// that matters is CheckMain: a goroutine-leak gate that the serve,
// cluster, and pager suites run under, so that the lifecycle discipline
// the gospawn analyzer enforces statically is also observed dynamically
// — a goroutine that outlives every test is exactly the leak the
// analyzer's "provably exits" wording promises cannot happen.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakGrace is how long CheckMain waits for straggler goroutines to
// drain after the suite finishes: long enough for deadline-armed
// readers (50ms pump slices, heartbeat windows) and connection
// teardowns to observe their close, short enough not to mask a real
// leak behind a slow exit.
const leakGrace = 5 * time.Second

// benignPrefixes are goroutine stack markers that do not indicate a
// test leak: the runtime's own helpers, the testing framework, and
// netpoll plumbing whose goroutines the runtime parks and reuses.
var benignPrefixes = []string{
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.runTests",
	"testing.tRunner",
	"runtime.goexit",
	"runtime.gc",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.runfinq",
	"runtime/trace",
	"os/signal.signal_recv",
	"os/signal.loop",
}

// CheckMain wraps testing.M.Run with a goroutine-leak gate:
//
//	func TestMain(m *testing.M) { os.Exit(testutil.CheckMain(m)) }
//
// It snapshots the goroutines alive before the suite, runs the suite,
// and then polls for up to leakGrace until every goroutine created by
// the tests has exited. If stragglers remain, it prints their stacks
// and fails the suite even when every individual test passed.
func CheckMain(m *testing.M) int {
	before := goroutineSet()
	code := m.Run()
	if code != 0 {
		return code // real failures first; leak output would bury them
	}
	deadline := time.Now().Add(leakGrace)
	var leaked []string
	for {
		leaked = leakedSince(before)
		if len(leaked) == 0 {
			return code
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "testutil: %d goroutine(s) leaked past the suite (grace %v):\n", len(leaked), leakGrace)
	for _, g := range leaked {
		fmt.Fprintf(os.Stderr, "goroutine %s\n", g)
	}
	return 1
}

// goroutineSet returns the identities of all live goroutines, keyed by
// their header line ("<id> [<state>...]" with the state dropped, since
// a parked goroutine may change state without being a new goroutine).
func goroutineSet() map[string]bool {
	set := make(map[string]bool)
	for _, g := range goroutineDump() {
		set[goroutineID(g)] = true
	}
	return set
}

// leakedSince returns the stacks of non-benign goroutines that are
// alive now but were not in the before set.
func leakedSince(before map[string]bool) []string {
	var leaked []string
	for _, g := range goroutineDump() {
		if before[goroutineID(g)] {
			continue
		}
		if benign(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// goroutineDump splits a full runtime stack dump into one entry per
// goroutine, without the "goroutine " prefix.
func goroutineDump() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	entries := strings.Split(string(buf), "\n\ngoroutine ")
	if len(entries) > 0 {
		entries[0] = strings.TrimPrefix(entries[0], "goroutine ")
	}
	return entries
}

// goroutineID extracts the numeric goroutine id from a dump entry.
func goroutineID(g string) string {
	if i := strings.IndexByte(g, ' '); i > 0 {
		return g[:i]
	}
	return g
}

// benign reports whether the goroutine's stack is runtime or testing
// plumbing rather than test-spawned work. The current goroutine (the
// one running CheckMain) is benign by definition.
func benign(g string) bool {
	if strings.Contains(g, "testutil.goroutineDump") {
		return true
	}
	for _, p := range benignPrefixes {
		if strings.Contains(g, p) {
			return true
		}
	}
	return false
}
