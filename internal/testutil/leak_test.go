package testutil

import (
	"testing"
	"time"
)

// TestLeakDetection pins both directions of the gate: a goroutine
// spawned after the snapshot is reported until it exits, and nothing is
// reported once it drains.
func TestLeakDetection(t *testing.T) {
	before := goroutineSet()

	stop := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		<-stop
	}()
	<-started

	if leaked := leakedSince(before); len(leaked) == 0 {
		t.Fatal("a parked test goroutine was not reported as leaked")
	}

	close(stop)
	<-done
	deadline := time.Now().Add(leakGrace)
	for {
		if leaked := leakedSince(before); len(leaked) == 0 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("drained goroutine still reported leaked: %q", leaked)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBenignFilter keeps the filter honest: runtime plumbing is benign,
// a user frame is not.
func TestBenignFilter(t *testing.T) {
	if !benign("7 [syscall]:\nos/signal.signal_recv()") {
		t.Error("signal plumbing should be benign")
	}
	if benign("9 [chan receive]:\ncellnpdp/internal/cluster.(*coordinator).writeLoop()") {
		t.Error("a parked writeLoop is exactly the leak the gate exists for")
	}
}
