//go:build amd64

package kernel

// AVX2 kernels (panel_amd64.s). Stubs are //go:noescape: they only read
// and write through the passed pointers for the caller-guarded t×t (or
// 4×stride) extent and never retain them, so the blocks stay
// stack/arena-allocatable. The npdplint hotpath analyzer accepts
// body-less //go:noescape stubs as leaves of the closed call universe.

// haveVecASM gates dispatch: this GOARCH ships the assembly kernels.
const haveVecASM = true

// panelVecF32 is the AVX2 4×t panel product: C = min(C, A ⊗ B) over
// t×t row-major float32 blocks, t a positive multiple of CB. Register
// layout: 4 rows × 8 columns of C accumulate in four YMM registers
// across the full k sweep (one load/store of C per 4×8 panel tile, t
// fused add+min updates per element in between); a 4-wide XMM tail
// covers t ≡ 4 (mod 8). Bit-identical to MulMinPlus (see
// PanelMinPlusF32's dispatch comment).
//
//go:noescape
func panelVecF32(c, a, b *float32, t int)

// step4VecF32 is the AVX2 4×4 computing-block step on XMM registers —
// the Table I program executed as real SIMD instead of the emulated
// instruction stream.
//
//go:noescape
func step4VecF32(c, a, b *float32, stride int)
