package kernel

import "cellnpdp/internal/semiring"

// Panel kernels for stage 1: the same min-plus block product as
// MulMinPlus, restructured from 4×4 computing-block steps into 4×t
// *panels*. One panel pins four C rows and streams every k of the middle
// tile through them, so each A value is splatted once per t-column sweep
// (instead of once per 4-column CB step) and each B row is sliced once
// per k (instead of once per CB step that touches it). The row slices are
// hoisted and length-matched so the innermost loop compiles without
// bounds checks (verified with -gcflags=-d=ssa/check_bce).
//
// The panel kernels are bit-identical to MulMinPlus/Step4x4: min-plus
// accumulation computes the minimum over the same (i,k,j) term set, and
// min over floats is order-independent, so re-associating the sweep order
// cannot change a single bit (the Section 5 exact-equality invariant).

// PanelMinPlus is the generic register-blocked panel product:
// C = min(C, A ⊗ B) over tile×tile row-major blocks with side t.
// Unlike MulMinPlus it accepts any positive t: full 4-row panels cover
// rows in multiples of CB and a scalar tail handles the remainder.
//
// Stats accounting matches MulMinPlus exactly when t is a multiple of CB
// ((t/4)³ CB steps); ragged sides — only reachable through direct kernel
// use, the engines enforce CheckTile — report the t³ relaxations as
// ScalarRelax instead, since they do not decompose into whole CB steps.
//
//npdp:hotpath
func PanelMinPlus[E semiring.Elem](c, a, b []E, t int) Stats {
	r := 0
	for ; r+CB <= t; r += CB {
		c0 := c[(r+0)*t : (r+0)*t+t]
		c1 := c[(r+1)*t : (r+1)*t+t]
		c2 := c[(r+2)*t : (r+2)*t+t]
		c3 := c[(r+3)*t : (r+3)*t+t]
		a0 := a[(r+0)*t : (r+0)*t+t]
		a1 := a[(r+1)*t : (r+1)*t+t]
		a2 := a[(r+2)*t : (r+2)*t+t]
		a3 := a[(r+3)*t : (r+3)*t+t]
		for k := 0; k < t; k++ {
			s0, s1, s2, s3 := a0[k], a1[k], a2[k], a3[k]
			bk := b[k*t : k*t+t]
			bk = bk[:len(c0)]
			x1 := c1[:len(bk)]
			x2 := c2[:len(bk)]
			x3 := c3[:len(bk)]
			for j, v := range bk {
				if w := s0 + v; w < c0[j] {
					c0[j] = w
				}
				if w := s1 + v; w < x1[j] {
					x1[j] = w
				}
				if w := s2 + v; w < x2[j] {
					x2[j] = w
				}
				if w := s3 + v; w < x3[j] {
					x3[j] = w
				}
			}
		}
	}
	for ; r < t; r++ {
		cr := c[r*t : r*t+t]
		ar := a[r*t : r*t+t]
		for k := 0; k < t; k++ {
			s := ar[k]
			bk := b[k*t : k*t+t]
			bk = bk[:len(cr)]
			for j, v := range bk {
				if w := s + v; w < cr[j] {
					cr[j] = w
				}
			}
		}
	}
	return panelStats(t)
}

// PanelMinPlusF32 is the non-generic single-precision fast path the
// parallel engine selects for float32 tables. On hardware with a
// supported vector ISA (AVX2 on amd64, NEON on arm64 — see
// internal/simd's feature detection) and a CB-aligned tile it dispatches
// to the hand-written assembly kernel (panel_amd64.s / panel_arm64.s);
// otherwise it runs the restructured pure-Go panel body. Both paths are
// bit-identical to MulMinPlus: the assembly performs the same
// (s + v, strictly-less, keep-old-on-ties/NaN) update chain in the same
// k order, using compare semantics (VMINPS's src1<src2?src1:src2 on
// amd64, FCMGT+BIT on arm64) that match the scalar `if w < c` exactly,
// including ±0 and NaN operands.
//
// The vecEnabled read and the length guards are per block-product, not
// per element; the guards also give the assembly its memory-safety
// contract (it performs no bounds checks of its own).
//
//npdp:hotpath
func PanelMinPlusF32(c, a, b []float32, t int) Stats {
	if vecEnabled && t >= CB && t%CB == 0 &&
		len(c) >= t*t && len(a) >= t*t && len(b) >= t*t {
		panelVecF32(&c[0], &a[0], &b[0], t)
		return panelStats(t)
	}
	return panelMinPlusF32Go(c, a, b, t)
}

// panelMinPlusF32Go is the pure-Go fallback body of PanelMinPlusF32: the
// 4×t panel sweep restructured so gc keeps the innermost loop free of
// bounds checks and loop-carried dependences — four independent
// min/add chains per iteration, row slices hoisted and length-matched
// (verified by the codegen gate). It is the kernel the engines run when
// the vector ISA is unavailable or the fallback is forced
// (CELLNPDP_FORCE_SCALAR / simd.SetForceFallback), and the oracle the
// ablation benches time the assembly against.
//
//npdp:hotpath
func panelMinPlusF32Go(c, a, b []float32, t int) Stats {
	r := 0
	for ; r+CB <= t; r += CB {
		c0 := c[(r+0)*t : (r+0)*t+t]
		c1 := c[(r+1)*t : (r+1)*t+t]
		c2 := c[(r+2)*t : (r+2)*t+t]
		c3 := c[(r+3)*t : (r+3)*t+t]
		a0 := a[(r+0)*t : (r+0)*t+t]
		a1 := a[(r+1)*t : (r+1)*t+t]
		a2 := a[(r+2)*t : (r+2)*t+t]
		a3 := a[(r+3)*t : (r+3)*t+t]
		for k := 0; k < t; k++ {
			s0, s1, s2, s3 := a0[k], a1[k], a2[k], a3[k]
			bk := b[k*t : k*t+t]
			bk = bk[:len(c0)]
			x1 := c1[:len(bk)]
			x2 := c2[:len(bk)]
			x3 := c3[:len(bk)]
			for j, v := range bk {
				if w := s0 + v; w < c0[j] {
					c0[j] = w
				}
				if w := s1 + v; w < x1[j] {
					x1[j] = w
				}
				if w := s2 + v; w < x2[j] {
					x2[j] = w
				}
				if w := s3 + v; w < x3[j] {
					x3[j] = w
				}
			}
		}
	}
	for ; r < t; r++ {
		cr := c[r*t : r*t+t]
		ar := a[r*t : r*t+t]
		for k := 0; k < t; k++ {
			s := ar[k]
			bk := b[k*t : k*t+t]
			bk = bk[:len(cr)]
			for j, v := range bk {
				if w := s + v; w < cr[j] {
					cr[j] = w
				}
			}
		}
	}
	return panelStats(t)
}

// panelStats returns the work record of one panel product on tile side t,
// consistent with StatsMulMinPlus for CB-aligned sides.
//
//npdp:hotpath
func panelStats(t int) Stats {
	if t%CB == 0 {
		return StatsMulMinPlus(t)
	}
	return Stats{ScalarRelax: int64(t) * int64(t) * int64(t)}
}
