package kernel

import "cellnpdp/internal/semiring"

// Stage2OffDiag resolves the inner dependences of an off-diagonal memory
// block D = MB(I,J) after stage 1 has accumulated every middle-tile
// contribution (Section IV-A, steps 10–12 of Figure 8). L = MB(I,I) and
// R = MB(J,J) are the two finished diagonal blocks the paper's tiled
// flowchart (Figure 4(b)) applies last. All three are tile×tile row-major
// slices with tile side t.
//
// In tile-local coordinates the remaining recurrence is
//
//	D[a][b] = min(D[a][b],
//	              min_{k=a..t-1} L[a][k] + D[k][b],   // k still in tile I
//	              min_{k=0..b-1} D[a][k] + R[k][b])   // k already in tile J
//
// so cell (a,b) depends on cells below it in its column and left of it in
// its row. Computing blocks are therefore processed bottom-up and
// left-to-right; per CB, contributions from finished CBs use the 4×4 SIMD
// step and the boundary k-ranges that touch the CB itself fall back to
// the original scalar code.
func Stage2OffDiag[E semiring.Elem](d, l, r []E, t int) Stats {
	cbm := t / CB
	var st Stats
	for p := cbm - 1; p >= 0; p-- {
		for q := 0; q < cbm; q++ {
			// Finished CBs below in this column, weighted by L's row-band p.
			for kp := p + 1; kp < cbm; kp++ {
				Step4x4(d[p*CB*t+q*CB:], l[p*CB*t+kp*CB:], d[kp*CB*t+q*CB:], t)
				st.CBSteps++
			}
			// Finished CBs left in this row, weighted by R's column-band q.
			for kq := 0; kq < q; kq++ {
				Step4x4(d[p*CB*t+q*CB:], d[p*CB*t+kq*CB:], r[kq*CB*t+q*CB:], t)
				st.CBSteps++
			}
			st.ScalarRelax += innerScalar(d, l, r, t, p, q)
		}
	}
	return st
}

// innerScalar processes the k-ranges of CB (p,q) that involve the CB's
// own cells — the original Figure 1 code of Figure 8's step 12. Rows run
// bottom-up and columns left-to-right so every D value read is final.
// It returns the number of scalar relaxations performed.
func innerScalar[E semiring.Elem](d, l, r []E, t, p, q int) int64 {
	var relax int64
	for a := p*CB + CB - 1; a >= p*CB; a-- {
		for b := q * CB; b < q*CB+CB; b++ {
			v := d[a*t+b]
			// k in this CB's row band: L[a][k] + D[k][b], k = a..(p+1)*CB-1.
			for k := a; k < (p+1)*CB; k++ {
				if w := l[a*t+k] + d[k*t+b]; w < v {
					v = w
				}
			}
			// k in this CB's column band: D[a][k] + R[k][b], k = q*CB..b-1.
			for k := q * CB; k < b; k++ {
				if w := d[a*t+k] + r[k*t+b]; w < v {
					v = w
				}
			}
			d[a*t+b] = v
			relax += int64((p+1)*CB-a) + int64(b-q*CB)
		}
	}
	return relax
}

// Stage2Diag computes a diagonal memory block D = MB(J,J) in place. A
// diagonal block depends only on itself: for cell (a,b), every k in
// [a, b) stays inside the tile. Computing blocks are processed in the
// Figure 1 column order lifted to CB granularity (q ascending, p
// descending), with middle CBs applied via the SIMD step and the two
// boundary bands via the scalar inner code. The diagonal CBs themselves
// are pure 4×4 triangles solved scalar.
func Stage2Diag[E semiring.Elem](d []E, t int) Stats {
	cbm := t / CB
	var st Stats
	for q := 0; q < cbm; q++ {
		for p := q; p >= 0; p-- {
			if p == q {
				st.ScalarRelax += diagScalarCB(d, t, q)
				continue
			}
			for kp := p + 1; kp < q; kp++ {
				Step4x4(d[p*CB*t+q*CB:], d[p*CB*t+kp*CB:], d[kp*CB*t+q*CB:], t)
				st.CBSteps++
			}
			st.ScalarRelax += innerScalar(d, d, d, t, p, q)
		}
	}
	return st
}

// diagScalarCB solves the triangular 4×4 computing block (q,q) of a
// diagonal tile with the original recurrence. For its cells, every k in
// [a, b) lies inside the same CB. Returns scalar relaxations performed.
func diagScalarCB[E semiring.Elem](d []E, t, q int) int64 {
	var relax int64
	lo := q * CB
	for b := lo; b < lo+CB; b++ {
		for a := b - 1; a >= lo; a-- {
			v := d[a*t+b]
			for k := a; k < b; k++ {
				if w := d[a*t+k] + d[k*t+b]; w < v {
					v = w
				}
			}
			d[a*t+b] = v
			relax += int64(b - a)
		}
	}
	return relax
}
