// Package kernel implements the computing-block kernels and the two-stage
// memory-block procedure of Section IV-A.
//
// A memory block is a tile×tile square stored row-major (internal/tri's
// NDL). It is processed as a grid of 4×4 computing blocks (CBs). One "CB
// step" applies C = min(C, splat(A[r][k]) + B[k]) over the 16 (row, k)
// pairs — the 80-SIMD-instruction program of Table I. Stage 1 of the
// memory-block procedure accumulates all off-diagonal contributions
// (a min-plus matrix product, no inner dependences); stage 2 resolves the
// inner dependences computing-block by computing-block, left-to-right and
// bottom-up, falling back to the original Figure 1 scalar code inside
// each CB.
package kernel

import (
	"fmt"

	"cellnpdp/internal/semiring"
)

// CB is the computing-block side length: four rows of one 128-bit
// register each for single precision (Section IV-A).
const CB = 4

// Stats counts the work a kernel invocation performed. The Cell timing
// model converts CBSteps into cycles via the pipeline model and
// ScalarRelax into cycles via the scalar-loop cost.
type Stats struct {
	CBSteps     int64 // 4×4 computing-block steps executed (80 SIMD instrs each, SP)
	ScalarRelax int64 // scalar d[i][j] = min(d[i][j], d[i][k]+d[k][j]) relaxations
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.CBSteps += other.CBSteps
	s.ScalarRelax += other.ScalarRelax
}

// CheckTile validates a tile side for the CB kernels.
func CheckTile(t int) error {
	if t <= 0 || t%CB != 0 {
		return fmt.Errorf("kernel: tile side must be a positive multiple of %d, got %d", CB, t)
	}
	return nil
}

// Step4x4 performs one computing-block step on tile-local row-major
// slices: c, a, b address the top-left cell of their 4×4 blocks inside a
// tile of row stride `stride`. Semantics are exactly the SIMD program of
// Section IV-A; this generic form runs as scalar Go (the counted
// single-precision variant in counted.go executes the emulated SIMD ops
// one by one).
//
//npdp:hotpath
func Step4x4[E semiring.Elem](c, a, b []E, stride int) {
	for r := 0; r < CB; r++ {
		cr := c[r*stride : r*stride+CB]
		ar := a[r*stride : r*stride+CB]
		c0, c1, c2, c3 := cr[0], cr[1], cr[2], cr[3]
		for k := 0; k < CB; k++ {
			s := ar[k]
			bk := b[k*stride : k*stride+CB]
			if v := s + bk[0]; v < c0 {
				c0 = v
			}
			if v := s + bk[1]; v < c1 {
				c1 = v
			}
			if v := s + bk[2]; v < c2 {
				c2 = v
			}
			if v := s + bk[3]; v < c3 {
				c3 = v
			}
		}
		cr[0], cr[1], cr[2], cr[3] = c0, c1, c2, c3
	}
}

// MulMinPlus is stage 1's unit of work: C = min(C, A ⊗ B) where A, B and
// C are whole tile×tile memory blocks (row-major, same tile side t) and ⊗
// is the min-plus matrix product. It visits every computing-block triple,
// so it performs (t/4)³ CB steps.
//
//npdp:hotpath
func MulMinPlus[E semiring.Elem](c, a, b []E, t int) Stats {
	cb := t / CB
	var st Stats
	for p := 0; p < cb; p++ {
		for kp := 0; kp < cb; kp++ {
			aOff := p*CB*t + kp*CB
			for q := 0; q < cb; q++ {
				Step4x4(c[p*CB*t+q*CB:], a[aOff:], b[kp*CB*t+q*CB:], t)
			}
		}
	}
	st.CBSteps += int64(cb) * int64(cb) * int64(cb)
	return st
}
