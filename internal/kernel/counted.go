package kernel

import "cellnpdp/internal/simd"

// CountedStepF32 executes one single-precision computing-block step
// through the emulated SPE SIMD operations, tallying every instruction
// into counts. It is functionally identical to Step4x4[float32] and is
// the program Table I characterizes: with A, B and C register-blocked,
// 12 loads + 16 shuffles + 16 adds + 16 compares + 16 selects + 4 stores.
func CountedStepF32(c, a, b []float32, stride int, counts *simd.Counts) {
	var av, bv, cv [CB]simd.F32x4
	for r := 0; r < CB; r++ {
		av[r] = simd.LoadF32(a[r*stride:])
		bv[r] = simd.LoadF32(b[r*stride:])
		cv[r] = simd.LoadF32(c[r*stride:])
	}
	counts.Add(simd.OpLoad, 3*CB)
	for r := 0; r < CB; r++ {
		for k := 0; k < CB; k++ {
			s := simd.SplatF32(av[r], k)
			u := simd.AddF32(s, bv[k])
			m := simd.CmpGtF32(cv[r], u)
			cv[r] = simd.SelF32(cv[r], u, m)
		}
	}
	counts.Add(simd.OpShuffle, CB*CB)
	counts.Add(simd.OpAdd, CB*CB)
	counts.Add(simd.OpCmp, CB*CB)
	counts.Add(simd.OpSel, CB*CB)
	for r := 0; r < CB; r++ {
		simd.StoreF32(c[r*stride:], cv[r])
	}
	counts.Add(simd.OpStore, CB)
}

// CountedStepF64 executes one double-precision computing-block step
// through the emulated SIMD operations. A 4×4 block of doubles spans two
// 128-bit registers per row, so the step costs 24 loads, 16 shuffles,
// 32 adds, 32 compares, 32 selects and 8 stores.
func CountedStepF64(c, a, b []float64, stride int, counts *simd.Counts) {
	var av, bv, cv [CB][2]simd.F64x2
	for r := 0; r < CB; r++ {
		for h := 0; h < 2; h++ {
			av[r][h] = simd.LoadF64(a[r*stride+2*h:])
			bv[r][h] = simd.LoadF64(b[r*stride+2*h:])
			cv[r][h] = simd.LoadF64(c[r*stride+2*h:])
		}
	}
	counts.Add(simd.OpLoad, 6*CB)
	for r := 0; r < CB; r++ {
		for k := 0; k < CB; k++ {
			s := simd.SplatF64(av[r][k/2], k%2)
			for h := 0; h < 2; h++ {
				u := simd.AddF64(s, bv[k][h])
				m := simd.CmpGtF64(cv[r][h], u)
				cv[r][h] = simd.SelF64(cv[r][h], u, m)
			}
		}
	}
	counts.Add(simd.OpShuffle, CB*CB)
	counts.Add(simd.OpAdd, 2*CB*CB)
	counts.Add(simd.OpCmp, 2*CB*CB)
	counts.Add(simd.OpSel, 2*CB*CB)
	for r := 0; r < CB; r++ {
		for h := 0; h < 2; h++ {
			simd.StoreF64(c[r*stride+2*h:], cv[r][h])
		}
	}
	counts.Add(simd.OpStore, 2*CB)
}
