package kernel

import "testing"

// The Section 5 invariant for the panel kernels: re-associating the
// stage-1 sweep from 4×4 CB steps into 4×t panels must not change a
// single bit of the output, on any tile side, for both element types and
// for the non-generic float32 fast path.

func TestPanelMinPlusMatchesMulMinPlus(t *testing.T) {
	for _, tile := range []int{4, 8, 16, 20, 88} {
		a := randBlock(tile, int64(tile))
		b := randBlock(tile, int64(tile+1))
		c1 := randBlock(tile, int64(tile+2))
		c2 := append([]float32(nil), c1...)
		st1 := MulMinPlus(c1, a, b, tile)
		st2 := PanelMinPlus(c2, a, b, tile)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("tile=%d: PanelMinPlus diverges from MulMinPlus at cell (%d,%d)", tile, i/tile, i%tile)
			}
		}
		if st1 != st2 {
			t.Errorf("tile=%d: panel stats %+v != CB-step stats %+v", tile, st2, st1)
		}
	}
}

func TestPanelMinPlusF32MatchesGeneric(t *testing.T) {
	for _, tile := range []int{4, 12, 24, 88} {
		a := randBlock(tile, int64(tile+10))
		b := randBlock(tile, int64(tile+11))
		c1 := randBlock(tile, int64(tile+12))
		c2 := append([]float32(nil), c1...)
		c3 := append([]float32(nil), c1...)
		stg := PanelMinPlus(c1, a, b, tile)
		stf := PanelMinPlusF32(c2, a, b, tile)
		MulMinPlus(c3, a, b, tile)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("tile=%d: float32 fast path diverges from generic panel at %d", tile, i)
			}
			if c2[i] != c3[i] {
				t.Fatalf("tile=%d: float32 fast path diverges from Step4x4 reference at %d", tile, i)
			}
		}
		if stg != stf {
			t.Errorf("tile=%d: fast-path stats %+v != generic %+v", tile, stf, stg)
		}
	}
}

// Ragged sides (not a multiple of the 4-row panel height) exercise the
// scalar tail; the oracle is the cell-wise reference product.
func TestPanelMinPlusRaggedSides(t *testing.T) {
	for _, tile := range []int{1, 2, 3, 5, 6, 7, 10, 17} {
		a := randBlock(tile, int64(tile+20))
		b := randBlock(tile, int64(tile+21))
		c1 := randBlock(tile, int64(tile+22))
		c2 := append([]float32(nil), c1...)
		c3 := append([]float32(nil), c1...)
		st := PanelMinPlus(c1, a, b, tile)
		stf := PanelMinPlusF32(c2, a, b, tile)
		refMinPlusProduct(c3, a, b, tile)
		for i := range c1 {
			if c1[i] != c3[i] {
				t.Fatalf("tile=%d: ragged PanelMinPlus diverges from reference at %d", tile, i)
			}
			if c2[i] != c3[i] {
				t.Fatalf("tile=%d: ragged PanelMinPlusF32 diverges from reference at %d", tile, i)
			}
		}
		want := Stats{ScalarRelax: int64(tile) * int64(tile) * int64(tile)}
		if st != want || stf != want {
			t.Errorf("tile=%d: ragged stats generic=%+v fast=%+v, want %+v", tile, st, stf, want)
		}
	}
}

func TestPanelMinPlusF64(t *testing.T) {
	for _, tile := range []int{4, 8, 24, 64} {
		a := randBlock64(tile, int64(tile+30))
		b := randBlock64(tile, int64(tile+31))
		c1 := randBlock64(tile, int64(tile+32))
		c2 := append([]float64(nil), c1...)
		st1 := MulMinPlus(c1, a, b, tile)
		st2 := PanelMinPlus(c2, a, b, tile)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("tile=%d: f64 panel diverges from MulMinPlus at %d", tile, i)
			}
		}
		if st1 != st2 {
			t.Errorf("tile=%d: f64 panel stats %+v != %+v", tile, st2, st1)
		}
	}
}
