package kernel

// Codegen-gate probes. The hot-path kernels are generic and this package
// never instantiates them itself — the engines do — so compiling the
// package alone with -gcflags='-m -d=ssa/check_bce/debug=1' would emit no
// escape-analysis or bounds-check diagnostics for their bodies, and the
// gate (scripts/codegen_gate.sh) would vacuously pass. These probes pin
// the two element widths the engines actually run (the paper's single-
// and double-precision split), forcing the compiler to materialize both
// instantiations in-package; their diagnostics are then attributed to
// kernel.go/panel.go lines and land inside the annotated ranges the gate
// diffs. The probes are never called at run time.

func codegenProbeF32(c, a, b []float32, t int) Stats {
	Step4x4(c, a, b, t)
	st := MulMinPlus(c, a, b, t)
	st.Add(PanelMinPlus(c, a, b, t))
	st.Add(PanelMinPlusF32(c, a, b, t))
	return st
}

func codegenProbeF64(c, a, b []float64, t int) Stats {
	Step4x4(c, a, b, t)
	st := MulMinPlus(c, a, b, t)
	st.Add(PanelMinPlus(c, a, b, t))
	return st
}

// Referencing the probes keeps unused-function linters quiet without
// giving them a runtime caller.
var (
	_ = codegenProbeF32
	_ = codegenProbeF64
)
