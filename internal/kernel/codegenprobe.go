package kernel

// Codegen-gate probes. The hot-path kernels are generic and this package
// never instantiates them itself — the engines do — so compiling the
// package alone with -gcflags='-m -d=ssa/check_bce/debug=1' would emit no
// escape-analysis or bounds-check diagnostics for their bodies, and the
// gate (scripts/codegen_gate.sh) would vacuously pass. These probes pin
// the two element widths the engines actually run (the paper's single-
// and double-precision split), forcing the compiler to materialize both
// instantiations in-package; their diagnostics are then attributed to
// kernel.go/panel.go lines and land inside the annotated ranges the gate
// diffs. The probes are never called at run time.

func codegenProbeF32(c, a, b []float32, t int) Stats {
	Step4x4(c, a, b, t)
	// The vector-dispatch layer: the exported dispatchers and the pure-Go
	// fallback body. Calling panelMinPlusF32Go directly matters — on
	// GOARCHes with an assembly panel the dispatchers jump to the asm stub
	// for conforming tiles, and without this call the fallback's
	// diagnostics could vanish from the gate while the function still
	// guards every ragged tile (the non-vacuous check in the gate backs
	// this up).
	Step4x4F32(c, a, b, t)
	st := MulMinPlus(c, a, b, t)
	st.Add(PanelMinPlus(c, a, b, t))
	st.Add(PanelMinPlusF32(c, a, b, t))
	st.Add(panelMinPlusF32Go(c, a, b, t))
	return st
}

func codegenProbeF64(c, a, b []float64, t int) Stats {
	Step4x4(c, a, b, t)
	st := MulMinPlus(c, a, b, t)
	st.Add(PanelMinPlus(c, a, b, t))
	return st
}

// Referencing the probes keeps unused-function linters quiet without
// giving them a runtime caller.
var (
	_ = codegenProbeF32
	_ = codegenProbeF64
)
