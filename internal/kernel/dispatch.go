package kernel

import "cellnpdp/internal/simd"

// Vector-kernel dispatch state. The hot-path kernels cannot call
// internal/simd's detection functions per invocation (the //npdp:hotpath
// closed call universe admits only annotated functions and assembly
// stubs), so the result of detection is cached here once, at package
// init, as a plain bool the dispatchers read. simd's init runs first
// (kernel imports simd), so the CELLNPDP_FORCE_SCALAR environment
// variable is already folded in.

// vecCapable records whether this process could ever run the assembly
// kernels: the GOARCH has them and the hardware + environment allow it.
// Immutable after init.
var vecCapable = haveVecASM && simd.VectorAvailable()

// vecEnabled is the live dispatch switch. It starts at vecCapable and is
// only changed by SetVectorEnabled, which tests use to force the pure-Go
// path; it must not be flipped while solves are running.
var vecEnabled = vecCapable

// VectorEnabled reports whether PanelMinPlusF32/Step4x4F32 currently
// dispatch to the GOARCH vector assembly.
func VectorEnabled() bool { return vecEnabled }

// VectorISA names the instruction set the vector kernels use when
// enabled: "avx2", "neon", or "none".
func VectorISA() string {
	if !vecEnabled {
		return "none"
	}
	return simd.VectorISA()
}

// SetVectorEnabled forces the dispatchers onto the pure-Go fallback
// (false) or restores vector dispatch (true, a no-op on hardware without
// the ISA or in CELLNPDP_FORCE_SCALAR processes). It returns a restore
// function and must not race with running solves:
//
//	defer kernel.SetVectorEnabled(false)()
func SetVectorEnabled(on bool) (restore func()) {
	prev := vecEnabled
	vecEnabled = on && vecCapable
	return func() { vecEnabled = prev }
}

// Step4x4F32 is the single-precision computing-block step with vector
// dispatch: one 4×4 CB update C = min(C, splat(A[r][k]) + B[k]) — the
// Table I program — executed by the GOARCH assembly when available and
// by the generic Step4x4 otherwise. The guards bound every row the
// assembly touches (rows r ∈ [0,4) at stride `stride`, 4 columns each).
//
//npdp:hotpath
func Step4x4F32(c, a, b []float32, stride int) {
	if vecEnabled && stride >= CB {
		n := 3*stride + CB
		if len(c) >= n && len(a) >= n && len(b) >= n {
			step4VecF32(&c[0], &a[0], &b[0], stride)
			return
		}
	}
	Step4x4(c, a, b, stride)
}
