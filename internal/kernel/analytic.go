package kernel

// Analytic work counts for the three memory-block operations. The
// paper-scale performance model (Table II at n = 16384 would need 7·10¹¹
// scalar relaxations to run functionally) walks the task graph with these
// closed forms instead of touching data. Tests pin each formula to the
// stats the real kernels return.

// StatsMulMinPlus returns the work of one stage-1 block product on tile
// side t: (t/4)³ computing-block steps.
//
//npdp:hotpath
func StatsMulMinPlus(t int) Stats {
	cb := int64(t / CB)
	return Stats{CBSteps: cb * cb * cb}
}

// StatsStage2OffDiag returns the work of stage 2 on an off-diagonal
// memory block: cbm²(cbm-1) CB steps plus 64 scalar relaxations per
// computing block, where cbm = t/4.
func StatsStage2OffDiag(t int) Stats {
	cbm := int64(t / CB)
	return Stats{
		CBSteps:     cbm * cbm * (cbm - 1),
		ScalarRelax: 64 * cbm * cbm,
	}
}

// StatsStage2Diag returns the work of computing a diagonal memory block:
// C(cbm,3) CB steps, 64 scalar relaxations per strictly-upper computing
// block and 10 per diagonal computing block.
func StatsStage2Diag(t int) Stats {
	cbm := int64(t / CB)
	return Stats{
		CBSteps:     cbm * (cbm - 1) * (cbm - 2) / 6,
		ScalarRelax: 32*cbm*(cbm-1) + 10*cbm,
	}
}

// StatsMemoryBlock returns the full work of computing memory block
// (bi, bj) of a tiled table: stage 1 over the bj-bi-1 middle tiles plus
// stage 2, or the diagonal-block procedure when bi == bj.
func StatsMemoryBlock(t, bi, bj int) Stats {
	if bi == bj {
		return StatsStage2Diag(t)
	}
	st := StatsStage2OffDiag(t)
	mid := int64(bj - bi - 1)
	mul := StatsMulMinPlus(t)
	st.CBSteps += mid * mul.CBSteps
	return st
}

// Relaxations returns the total scalar-equivalent relaxations of a stats
// record: each CB step covers the 64 relaxations of a 4×4×4 min-plus
// update.
func (s Stats) Relaxations() int64 { return s.CBSteps*64 + s.ScalarRelax }
