//go:build arm64

#include "textflag.h"

// NEON min-plus kernels. Semantics contract (the bit-identity invariant):
// every C element must follow the exact scalar update chain
//
//	for k ascending: w = a[r][k] + b[k][j]; if w < c { c = w }
//
// NEON FMIN does NOT implement that chain: it returns -0 over +0 and
// propagates NaN, both of which diverge bitwise from the scalar strict
// `<`. Instead each update is FCMGT (old > w, false on NaN and ties)
// followed by BIT (insert w where the mask is set), which keeps the old
// C value on ties and NaNs exactly like `if w < c { c = w }`.
//
// The Go assembler has no mnemonics for vector FADD/FCMGT, so those two
// are WORD-encoded with fixed register assignments; each WORD carries
// the decoded instruction in its comment. VLD1/VST1/VDUP/VBIT assemble
// natively. Register roles (both kernels):
//
//	R0 c base   R1 a base   R2 b base   R3 t    R4 row stride bytes
//	R8..R11  c row pointers at column j          R12 b[k][j] pointer
//	R13..R16 a row k-pointers                    R17 k countdown
//	V0..V3 4×4 C accumulator panel   V4 b[k][j..j+4)
//	V5 w = s + bv   V6 compare mask   V7 broadcast a[r+i][k]
//
// The callers (dispatch.go) guarantee: t is a positive multiple of 4 and
// all three blocks hold at least t*t elements — there are no bounds
// checks here, and no column tail since 4 divides t.

// func panelVecF32(c, a, b *float32, t int)
TEXT ·panelVecF32(SB), NOSPLIT, $0-32
	MOVD c+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD t+24(FP), R3
	LSL  $2, R3, R4        // stride bytes = 4t

	MOVD $0, R5            // r = 0
rowloop:
	CMP  R3, R5
	BGE  done
	MOVD $0, R6            // j = 0
colloop:
	CMP  R3, R6
	BGE  rownext

	ADD  R6<<2, R0, R8     // &c[(r+0)*t + j]
	ADD  R4, R8, R9        // row r+1
	ADD  R4, R9, R10       // row r+2
	ADD  R4, R10, R11      // row r+3
	VLD1 (R8), [V0.S4]
	VLD1 (R9), [V1.S4]
	VLD1 (R10), [V2.S4]
	VLD1 (R11), [V3.S4]
	ADD  R6<<2, R2, R12    // &b[0*t + j]
	MOVD R1, R13           // &a[(r+0)*t + 0]
	ADD  R4, R13, R14
	ADD  R4, R14, R15
	ADD  R4, R15, R16
	MOVD R3, R17           // k countdown = t
kloop:
	VLD1 (R12), [V4.S4]    // b[k][j..j+4)
	ADD  R4, R12           // next b row

	FMOVS (R13), F7        // a[r+0][k]
	ADD  $4, R13
	VDUP V7.S[0], V7.S4
	WORD $0x4E24D4E5       // FADD  V5.4S, V7.4S, V4.4S   (w = s + bv)
	WORD $0x6EA5E406       // FCMGT V6.4S, V0.4S, V5.4S   (mask = c0 > w)
	VBIT V6.B16, V5.B16, V0.B16

	FMOVS (R14), F7        // a[r+1][k]
	ADD  $4, R14
	VDUP V7.S[0], V7.S4
	WORD $0x4E24D4E5       // FADD  V5.4S, V7.4S, V4.4S
	WORD $0x6EA5E426       // FCMGT V6.4S, V1.4S, V5.4S
	VBIT V6.B16, V5.B16, V1.B16

	FMOVS (R15), F7        // a[r+2][k]
	ADD  $4, R15
	VDUP V7.S[0], V7.S4
	WORD $0x4E24D4E5       // FADD  V5.4S, V7.4S, V4.4S
	WORD $0x6EA5E446       // FCMGT V6.4S, V2.4S, V5.4S
	VBIT V6.B16, V5.B16, V2.B16

	FMOVS (R16), F7        // a[r+3][k]
	ADD  $4, R16
	VDUP V7.S[0], V7.S4
	WORD $0x4E24D4E5       // FADD  V5.4S, V7.4S, V4.4S
	WORD $0x6EA5E466       // FCMGT V6.4S, V3.4S, V5.4S
	VBIT V6.B16, V5.B16, V3.B16

	SUB  $1, R17
	CBNZ R17, kloop

	VST1 [V0.S4], (R8)
	VST1 [V1.S4], (R9)
	VST1 [V2.S4], (R10)
	VST1 [V3.S4], (R11)
	ADD  $4, R6
	B    colloop

rownext:
	ADD  R4<<2, R0         // c += 4 rows
	ADD  R4<<2, R1         // a += 4 rows
	ADD  $4, R5
	B    rowloop

done:
	RET

// func step4VecF32(c, a, b *float32, stride int)
//
// One 4×4 computing-block step: the Table I program (loads, splats,
// adds, compare-selects, stores) as real SIMD. Same update-chain
// semantics and register roles as panelVecF32, fixed k sweep of 4.
TEXT ·step4VecF32(SB), NOSPLIT, $0-32
	MOVD c+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD stride+24(FP), R3
	LSL  $2, R3, R4        // stride bytes

	MOVD R0, R8
	ADD  R4, R8, R9
	ADD  R4, R9, R10
	ADD  R4, R10, R11
	VLD1 (R8), [V0.S4]
	VLD1 (R9), [V1.S4]
	VLD1 (R10), [V2.S4]
	VLD1 (R11), [V3.S4]
	MOVD R2, R12
	MOVD R1, R13
	ADD  R4, R13, R14
	ADD  R4, R14, R15
	ADD  R4, R15, R16
	MOVD $4, R17
step_k:
	VLD1 (R12), [V4.S4]
	ADD  R4, R12

	FMOVS (R13), F7
	ADD  $4, R13
	VDUP V7.S[0], V7.S4
	WORD $0x4E24D4E5       // FADD  V5.4S, V7.4S, V4.4S
	WORD $0x6EA5E406       // FCMGT V6.4S, V0.4S, V5.4S
	VBIT V6.B16, V5.B16, V0.B16

	FMOVS (R14), F7
	ADD  $4, R14
	VDUP V7.S[0], V7.S4
	WORD $0x4E24D4E5       // FADD  V5.4S, V7.4S, V4.4S
	WORD $0x6EA5E426       // FCMGT V6.4S, V1.4S, V5.4S
	VBIT V6.B16, V5.B16, V1.B16

	FMOVS (R15), F7
	ADD  $4, R15
	VDUP V7.S[0], V7.S4
	WORD $0x4E24D4E5       // FADD  V5.4S, V7.4S, V4.4S
	WORD $0x6EA5E446       // FCMGT V6.4S, V2.4S, V5.4S
	VBIT V6.B16, V5.B16, V2.B16

	FMOVS (R16), F7
	ADD  $4, R16
	VDUP V7.S[0], V7.S4
	WORD $0x4E24D4E5       // FADD  V5.4S, V7.4S, V4.4S
	WORD $0x6EA5E466       // FCMGT V6.4S, V3.4S, V5.4S
	VBIT V6.B16, V5.B16, V3.B16

	SUB  $1, R17
	CBNZ R17, step_k

	VST1 [V0.S4], (R8)
	VST1 [V1.S4], (R9)
	VST1 [V2.S4], (R10)
	VST1 [V3.S4], (R11)
	RET
