//go:build !amd64 && !arm64

package kernel

// This GOARCH has no hand-written vector kernels: dispatch is disabled
// at init (vecCapable is false), so the stubs below are unreachable.
// They exist to keep the dispatchers compiling on every platform and
// panic loudly if a future edit ever breaks the gating.

// haveVecASM gates dispatch: no assembly kernels on this GOARCH.
const haveVecASM = false

//npdp:hotpath
func panelVecF32(c, a, b *float32, t int) {
	panic("kernel: panelVecF32 called on a GOARCH without vector kernels")
}

//npdp:hotpath
func step4VecF32(c, a, b *float32, stride int) {
	panic("kernel: step4VecF32 called on a GOARCH without vector kernels")
}
