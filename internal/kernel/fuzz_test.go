package kernel

import (
	"math"
	"math/rand"
	"testing"

	"cellnpdp/internal/simd"
)

// FuzzKernelEquivalence drives every selectable min-plus kernel against
// the scalar triple-loop reference on arbitrary tile sides — odd sides,
// remainder columns, CB-aligned sides — with ±Inf sentinels sprinkled
// in (the engines use +Inf as "no edge"; -Inf next to +Inf manufactures
// NaN sums, which the strict-< update chain must discard identically in
// Go and in assembly). Comparison is Float32bits/Float64bits-exact:
// bit-identity is the repo invariant, not approximate equality.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(uint32(1), uint8(8), uint8(0))
	f.Add(uint32(7), uint8(13), uint8(3)) // odd side + both sentinels
	f.Add(uint32(42), uint8(92), uint8(1))
	f.Add(uint32(9), uint8(1), uint8(2)) // 1×1 tile
	f.Fuzz(func(t *testing.T, seed uint32, side, flags uint8) {
		ts := int(side)%96 + 1
		rng := rand.New(rand.NewSource(int64(seed)))
		gen := func() []float32 {
			s := make([]float32, ts*ts)
			for i := range s {
				s[i] = float32(rng.NormFloat64() * 16)
			}
			return s
		}
		a, b, c := gen(), gen(), gen()
		if flags&1 != 0 {
			for i := 0; i < 1+ts/4; i++ {
				a[rng.Intn(len(a))] = float32(math.Inf(1))
				c[rng.Intn(len(c))] = float32(math.Inf(1))
			}
		}
		if flags&2 != 0 {
			for i := 0; i < 1+ts/8; i++ {
				b[rng.Intn(len(b))] = float32(math.Inf(-1))
			}
		}

		ref := append([]float32(nil), c...)
		ScalarMulMinPlus(ref, a, b, ts)

		check := func(name string, got []float32) {
			t.Helper()
			for i := range ref {
				if math.Float32bits(got[i]) != math.Float32bits(ref[i]) {
					t.Fatalf("%s (t=%d flags=%d): cell %d = %v (bits %#x), scalar reference %v (bits %#x)",
						name, ts, flags, i, got[i], math.Float32bits(got[i]), ref[i], math.Float32bits(ref[i]))
				}
			}
		}

		run := func(name string, k func(c, a, b []float32, t int) Stats) {
			cc := append([]float32(nil), c...)
			k(cc, a, b, ts)
			check(name, cc)
		}
		run("PanelMinPlus", PanelMinPlus[float32])
		run("panelMinPlusF32Go", panelMinPlusF32Go)
		run("PanelMinPlusF32", PanelMinPlusF32) // vector asm on conforming tiles
		func() {
			defer SetVectorEnabled(false)()
			run("PanelMinPlusF32/fallback", PanelMinPlusF32)
		}()
		if ts%CB == 0 {
			run("MulMinPlus", MulMinPlus[float32])
		}

		// float64 mirrors of the same instance: the generic kernels must
		// agree with the scalar reference at double width too.
		a64, b64, c64 := widen(a), widen(b), widen(c)
		ref64 := append([]float64(nil), c64...)
		ScalarMulMinPlus(ref64, a64, b64, ts)
		check64 := func(name string, got []float64) {
			t.Helper()
			for i := range ref64 {
				if math.Float64bits(got[i]) != math.Float64bits(ref64[i]) {
					t.Fatalf("%s (t=%d flags=%d): cell %d = %v, scalar reference %v", name, ts, flags, i, got[i], ref64[i])
				}
			}
		}
		cc := append([]float64(nil), c64...)
		PanelMinPlus(cc, a64, b64, ts)
		check64("PanelMinPlus[f64]", cc)
		if ts%CB == 0 {
			cc = append([]float64(nil), c64...)
			MulMinPlus(cc, a64, b64, ts)
			check64("MulMinPlus[f64]", cc)
		}
	})
}

func widen(s []float32) []float64 {
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = float64(v)
	}
	return out
}

// TestForcedFallbackDetection pins the two fallback switches the CI race
// suite depends on: simd.SetForceFallback flips detection to "none"
// process-wide (layering over CELLNPDP_FORCE_SCALAR), and
// kernel.SetVectorEnabled flips this package's cached dispatch bit. Both
// must leave the kernels bit-identical — forcing the fallback is a
// performance decision, never a semantic one.
func TestForcedFallbackDetection(t *testing.T) {
	defer simd.SetForceFallback(true)()
	if simd.VectorAvailable() {
		t.Fatal("VectorAvailable must be false under SetForceFallback")
	}
	if isa := simd.VectorISA(); isa != "none" {
		t.Fatalf("VectorISA under forced fallback = %q, want none", isa)
	}

	// The kernel package caches detection at init, so the simd-level
	// force does not retroactively change dispatch — that is what
	// SetVectorEnabled is for.
	defer SetVectorEnabled(false)()
	if VectorEnabled() {
		t.Fatal("VectorEnabled must be false after SetVectorEnabled(false)")
	}
	if isa := VectorISA(); isa != "none" {
		t.Fatalf("kernel.VectorISA with vector disabled = %q, want none", isa)
	}

	const ts = 16
	rng := rand.New(rand.NewSource(5))
	mk := func() []float32 {
		s := make([]float32, ts*ts)
		for i := range s {
			s[i] = rng.Float32() * 32
		}
		return s
	}
	a, b, c := mk(), mk(), mk()
	ref := append([]float32(nil), c...)
	ScalarMulMinPlus(ref, a, b, ts)
	got := append([]float32(nil), c...)
	PanelMinPlusF32(got, a, b, ts) // must run panelMinPlusF32Go here
	for i := range ref {
		if math.Float32bits(got[i]) != math.Float32bits(ref[i]) {
			t.Fatalf("forced-fallback panel diverges at cell %d: %v vs %v", i, got[i], ref[i])
		}
	}
}
