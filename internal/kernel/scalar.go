package kernel

import "cellnpdp/internal/semiring"

// Scalar counterparts of the computing-block kernels: the same two-stage
// memory-block decomposition and the same contiguous block slices, but
// plain element loops instead of 4×4 register blocking. They isolate the
// "new data layout" contribution from the "SPE procedure" contribution in
// the Figure 10/11 breakdowns, and serve as oracles for the blocked
// kernels.

// ScalarMulMinPlus is stage 1 without computing blocks:
// C = min(C, A ⊗ B) over whole tile×tile blocks, row-streamed.
func ScalarMulMinPlus[E semiring.Elem](c, a, b []E, t int) int64 {
	for i := 0; i < t; i++ {
		ci := c[i*t : i*t+t]
		ai := a[i*t : i*t+t]
		for k := 0; k < t; k++ {
			s := ai[k]
			bk := b[k*t : k*t+t]
			for j := 0; j < t; j++ {
				if w := s + bk[j]; w < ci[j] {
					ci[j] = w
				}
			}
		}
	}
	return int64(t) * int64(t) * int64(t)
}

// ScalarStage2OffDiag resolves an off-diagonal block's inner dependences
// with plain loops: cells bottom-up/left-to-right, the k ranges split
// between the diagonal blocks L and R and the block itself.
func ScalarStage2OffDiag[E semiring.Elem](d, l, r []E, t int) int64 {
	var relax int64
	for a := t - 1; a >= 0; a-- {
		da := d[a*t : a*t+t]
		la := l[a*t : a*t+t]
		for b := 0; b < t; b++ {
			v := da[b]
			for k := a; k < t; k++ {
				if w := la[k] + d[k*t+b]; w < v {
					v = w
				}
			}
			for k := 0; k < b; k++ {
				if w := da[k] + r[k*t+b]; w < v {
					v = w
				}
			}
			da[b] = v
			relax += int64(t-a) + int64(b)
		}
	}
	return relax
}

// ScalarStage2Diag computes a diagonal block in place with the original
// Figure 1 loop over the tile.
func ScalarStage2Diag[E semiring.Elem](d []E, t int) int64 {
	var relax int64
	for j := 0; j < t; j++ {
		for i := j - 1; i >= 0; i-- {
			di := d[i*t : i*t+t]
			v := di[j]
			for k := i; k < j; k++ {
				if w := di[k] + d[k*t+j]; w < v {
					v = w
				}
			}
			di[j] = v
			relax += int64(j - i)
		}
	}
	return relax
}
