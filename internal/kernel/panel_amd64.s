//go:build amd64

#include "textflag.h"

// AVX2 min-plus kernels. Semantics contract (the bit-identity invariant):
// every C element must follow the exact scalar update chain
//
//	for k ascending: w = a[r][k] + b[k][j]; if w < c { c = w }
//
// VMINPS implements `src1 < src2 ? src1 : src2` (ties and NaN keep
// src2), so with src1 = w and src2 = c the keep-old-on-ties/NaN behavior
// matches the scalar strict `<` exactly, including ±0. Go assembly lists
// AVX operands reversed from Intel: `VMINPS Y0, Y5, Y0` is Intel
// `vminps ymm0, ymm5, ymm0`, i.e. Y0 = (Y5 < Y0) ? Y5 : Y0.
//
// The callers (dispatch.go) guarantee: t is a positive multiple of 4 and
// all three blocks hold at least t*t elements — there are no bounds
// checks here.

// func panelVecF32(c, a, b *float32, t int)
//
// Register plan:
//	DI  c panel base (rows r..r+3)     SI  a panel base
//	DX  b base                         CX  t (elements)
//	R8  row stride in bytes (4t)       R9  r    R10 j    R11 k
//	R14 c column base (rows r,r+1)     R12 c column base (rows r+2,r+3)
//	AX  a row r   k-pointer            R13 a row r+2 k-pointer
//	BX  b[k][j] pointer
//	Y0..Y3 4×8 C accumulator panel     Y4 b[k][j..j+8)   Y5..Y8 scratch
TEXT ·panelVecF32(SB), NOSPLIT, $0-32
	MOVQ c+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ t+24(FP), CX
	MOVQ CX, R8
	SHLQ $2, R8           // stride bytes = 4t

	XORQ R9, R9           // r = 0
rowloop:
	CMPQ R9, CX
	JGE  done
	XORQ R10, R10         // j = 0

colloop8:                     // 8-wide columns while j+8 <= t
	LEAQ 8(R10), AX
	CMPQ AX, CX
	JG   coltail

	LEAQ (DI)(R10*4), R14 // &c[(r+0)*t + j]
	LEAQ (R14)(R8*2), R12 // &c[(r+2)*t + j]
	VMOVUPS (R14), Y0
	VMOVUPS (R14)(R8*1), Y1
	VMOVUPS (R12), Y2
	VMOVUPS (R12)(R8*1), Y3
	LEAQ (DX)(R10*4), BX  // &b[0*t + j]
	MOVQ SI, AX           // &a[(r+0)*t + 0]
	LEAQ (SI)(R8*2), R13  // &a[(r+2)*t + 0]
	XORQ R11, R11         // k = 0
kloop8:
	VMOVUPS (BX), Y4              // b[k][j..j+8)
	VBROADCASTSS (AX), Y5         // a[r+0][k]
	VADDPS Y4, Y5, Y5             // w0 = s0 + bv
	VMINPS Y0, Y5, Y0             // c0 = w0 < c0 ? w0 : c0
	VBROADCASTSS (AX)(R8*1), Y6   // a[r+1][k]
	VADDPS Y4, Y6, Y6
	VMINPS Y1, Y6, Y1
	VBROADCASTSS (R13), Y7        // a[r+2][k]
	VADDPS Y4, Y7, Y7
	VMINPS Y2, Y7, Y2
	VBROADCASTSS (R13)(R8*1), Y8  // a[r+3][k]
	VADDPS Y4, Y8, Y8
	VMINPS Y3, Y8, Y3
	ADDQ $4, AX
	ADDQ $4, R13
	ADDQ R8, BX                   // next b row
	INCQ R11
	CMPQ R11, CX
	JL   kloop8
	VMOVUPS Y0, (R14)
	VMOVUPS Y1, (R14)(R8*1)
	VMOVUPS Y2, (R12)
	VMOVUPS Y3, (R12)(R8*1)
	ADDQ $8, R10
	JMP  colloop8

coltail:                      // 4-wide tail: t ≡ 4 (mod 8) leaves one
	CMPQ R10, CX
	JGE  rownext
	LEAQ (DI)(R10*4), R14
	LEAQ (R14)(R8*2), R12
	VMOVUPS (R14), X0
	VMOVUPS (R14)(R8*1), X1
	VMOVUPS (R12), X2
	VMOVUPS (R12)(R8*1), X3
	LEAQ (DX)(R10*4), BX
	MOVQ SI, AX
	LEAQ (SI)(R8*2), R13
	XORQ R11, R11
kloop4:
	VMOVUPS (BX), X4
	VBROADCASTSS (AX), X5
	VADDPS X4, X5, X5
	VMINPS X0, X5, X0
	VBROADCASTSS (AX)(R8*1), X6
	VADDPS X4, X6, X6
	VMINPS X1, X6, X1
	VBROADCASTSS (R13), X7
	VADDPS X4, X7, X7
	VMINPS X2, X7, X2
	VBROADCASTSS (R13)(R8*1), X8
	VADDPS X4, X8, X8
	VMINPS X3, X8, X3
	ADDQ $4, AX
	ADDQ $4, R13
	ADDQ R8, BX
	INCQ R11
	CMPQ R11, CX
	JL   kloop4
	VMOVUPS X0, (R14)
	VMOVUPS X1, (R14)(R8*1)
	VMOVUPS X2, (R12)
	VMOVUPS X3, (R12)(R8*1)
	ADDQ $4, R10
	JMP  coltail

rownext:
	LEAQ (DI)(R8*4), DI   // c += 4 rows
	LEAQ (SI)(R8*4), SI   // a += 4 rows
	ADDQ $4, R9
	JMP  rowloop

done:
	VZEROUPPER
	RET

// func step4VecF32(c, a, b *float32, stride int)
//
// One 4×4 computing-block step on XMM registers: the 80-instruction
// Table I program (loads, splats, adds, compare-selects, stores) as real
// SIMD. Same update-chain semantics as panelVecF32.
TEXT ·step4VecF32(SB), NOSPLIT, $0-32
	MOVQ c+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ stride+24(FP), R8
	SHLQ $2, R8           // stride bytes

	LEAQ (DI)(R8*2), R12
	VMOVUPS (DI), X0
	VMOVUPS (DI)(R8*1), X1
	VMOVUPS (R12), X2
	VMOVUPS (R12)(R8*1), X3
	MOVQ DX, BX
	MOVQ SI, AX
	LEAQ (SI)(R8*2), R13
	MOVQ $4, R11
step_k:
	VMOVUPS (BX), X4
	VBROADCASTSS (AX), X5
	VADDPS X4, X5, X5
	VMINPS X0, X5, X0
	VBROADCASTSS (AX)(R8*1), X6
	VADDPS X4, X6, X6
	VMINPS X1, X6, X1
	VBROADCASTSS (R13), X7
	VADDPS X4, X7, X7
	VMINPS X2, X7, X2
	VBROADCASTSS (R13)(R8*1), X8
	VADDPS X4, X8, X8
	VMINPS X3, X8, X3
	ADDQ $4, AX
	ADDQ $4, R13
	ADDQ R8, BX
	DECQ R11
	JNZ  step_k
	VMOVUPS X0, (DI)
	VMOVUPS X1, (DI)(R8*1)
	VMOVUPS X2, (R12)
	VMOVUPS X3, (R12)(R8*1)
	VZEROUPPER
	RET
