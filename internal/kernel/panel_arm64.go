//go:build arm64

package kernel

// NEON kernels (panel_arm64.s). Stubs are //go:noescape: they only read
// and write through the passed pointers for the caller-guarded extent
// and never retain them. The npdplint hotpath analyzer accepts body-less
// //go:noescape stubs as leaves of the closed call universe.

// haveVecASM gates dispatch: this GOARCH ships the assembly kernels.
const haveVecASM = true

// panelVecF32 is the NEON 4×t panel product: C = min(C, A ⊗ B) over t×t
// row-major float32 blocks, t a positive multiple of CB. Four rows × 4
// columns of C accumulate in four 4S registers across the full k sweep.
// The min is FCMGT+BIT (compare, insert-if-true), not FMIN, so ties and
// NaNs keep the old C value exactly like the scalar `if w < c` — FMIN
// would return -0 over +0 and propagate NaN, diverging bitwise.
//
//go:noescape
func panelVecF32(c, a, b *float32, t int)

// step4VecF32 is the NEON 4×4 computing-block step — the Table I
// program as real SIMD.
//
//go:noescape
func step4VecF32(c, a, b *float32, stride int)
