package kernel

import (
	"math/rand"
	"testing"

	"cellnpdp/internal/semiring"
	"cellnpdp/internal/simd"
)

func randBlock(t int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float32, t*t)
	for i := range b {
		b[i] = float32(rng.Float64() * 100)
	}
	return b
}

func randBlock64(t int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, t*t)
	for i := range b {
		b[i] = rng.Float64() * 100
	}
	return b
}

// refStep is the scalar definition of one computing-block step.
func refStep(c, a, b []float32, stride int) {
	for r := 0; r < CB; r++ {
		for col := 0; col < CB; col++ {
			v := c[r*stride+col]
			for k := 0; k < CB; k++ {
				if w := a[r*stride+k] + b[k*stride+col]; w < v {
					v = w
				}
			}
			c[r*stride+col] = v
		}
	}
}

func TestStep4x4MatchesScalar(t *testing.T) {
	const stride = 8
	for trial := 0; trial < 50; trial++ {
		a := randBlock(stride, int64(trial))
		b := randBlock(stride, int64(trial+100))
		c1 := randBlock(stride, int64(trial+200))
		c2 := append([]float32(nil), c1...)
		Step4x4(c1, a, b, stride)
		refStep(c2, a, b, stride)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("trial %d: Step4x4 diverges from scalar at %d: %v vs %v", trial, i, c1[i], c2[i])
			}
		}
	}
}

func TestCountedStepF32MatchesPlain(t *testing.T) {
	const stride = 12
	var counts simd.Counts
	for trial := 0; trial < 20; trial++ {
		a := randBlock(stride, int64(trial))
		b := randBlock(stride, int64(trial+7))
		c1 := randBlock(stride, int64(trial+13))
		c2 := append([]float32(nil), c1...)
		Step4x4(c1, a, b, stride)
		CountedStepF32(c2, a, b, stride, &counts)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("trial %d: counted SIMD step diverges at %d", trial, i)
			}
		}
	}
}

func TestCountedStepF32TableI(t *testing.T) {
	// One computing-block step must execute exactly the Table I mix:
	// 12 loads, 16 shuffles, 16 adds, 16 compares, 16 selects, 4 stores.
	var counts simd.Counts
	a := randBlock(4, 1)
	b := randBlock(4, 2)
	c := randBlock(4, 3)
	CountedStepF32(c, a, b, 4, &counts)
	want := map[simd.Op]int64{
		simd.OpLoad: 12, simd.OpShuffle: 16, simd.OpAdd: 16,
		simd.OpCmp: 16, simd.OpSel: 16, simd.OpStore: 4,
	}
	for op, w := range want {
		if got := counts.Get(op); got != w {
			t.Errorf("%v count = %d, want %d", op, got, w)
		}
	}
	if counts.Total() != 80 {
		t.Errorf("total instructions = %d, want 80", counts.Total())
	}
}

func TestCountedStepF64MatchesPlain(t *testing.T) {
	const stride = 8
	var counts simd.Counts
	a := randBlock64(stride, 5)
	b := randBlock64(stride, 6)
	c1 := randBlock64(stride, 7)
	c2 := append([]float64(nil), c1...)
	Step4x4(c1, a, b, stride)
	CountedStepF64(c2, a, b, stride, &counts)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("counted f64 SIMD step diverges at %d", i)
		}
	}
	if counts.Total() != 144 {
		t.Errorf("DP step instructions = %d, want 144", counts.Total())
	}
}

// refMinPlusProduct applies C = min(C, A ⊗ B) cell-wise for whole tiles.
func refMinPlusProduct(c, a, b []float32, t int) {
	for i := 0; i < t; i++ {
		for j := 0; j < t; j++ {
			v := c[i*t+j]
			for k := 0; k < t; k++ {
				if w := a[i*t+k] + b[k*t+j]; w < v {
					v = w
				}
			}
			c[i*t+j] = v
		}
	}
}

func TestMulMinPlusMatchesRef(t *testing.T) {
	for _, tile := range []int{4, 8, 16, 20} {
		a := randBlock(tile, 1)
		b := randBlock(tile, 2)
		c1 := randBlock(tile, 3)
		c2 := append([]float32(nil), c1...)
		st := MulMinPlus(c1, a, b, tile)
		refMinPlusProduct(c2, a, b, tile)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("tile=%d: MulMinPlus diverges at %d", tile, i)
			}
		}
		cb := int64(tile / CB)
		if st.CBSteps != cb*cb*cb {
			t.Errorf("tile=%d: CBSteps = %d, want %d", tile, st.CBSteps, cb*cb*cb)
		}
	}
}

// refStage2OffDiag applies the off-diagonal inner recurrence directly.
func refStage2OffDiag(d, l, r []float32, t int) {
	for a := t - 1; a >= 0; a-- {
		for b := 0; b < t; b++ {
			v := d[a*t+b]
			for k := a; k < t; k++ {
				if w := l[a*t+k] + d[k*t+b]; w < v {
					v = w
				}
			}
			for k := 0; k < b; k++ {
				if w := d[a*t+k] + r[k*t+b]; w < v {
					v = w
				}
			}
			d[a*t+b] = v
		}
	}
}

func triangularize(b []float32, t int) {
	inf := semiring.Inf[float32]()
	for i := 0; i < t; i++ {
		for j := 0; j < i; j++ {
			b[i*t+j] = inf
		}
		b[i*t+i] = 0
	}
}

func TestStage2OffDiagMatchesRef(t *testing.T) {
	for _, tile := range []int{4, 8, 16, 24} {
		l := randBlock(tile, 10)
		r := randBlock(tile, 11)
		triangularize(l, tile)
		triangularize(r, tile)
		d1 := randBlock(tile, 12)
		d2 := append([]float32(nil), d1...)
		st := Stage2OffDiag(d1, l, r, tile)
		refStage2OffDiag(d2, l, r, tile)
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatalf("tile=%d: Stage2OffDiag diverges at cell (%d,%d)", tile, i/tile, i%tile)
			}
		}
		if want := StatsStage2OffDiag(tile); st != want {
			t.Errorf("tile=%d: stats = %+v, want analytic %+v", tile, st, want)
		}
	}
}

// refStage2Diag applies Figure 1 inside one tile.
func refStage2Diag(d []float32, t int) {
	for j := 0; j < t; j++ {
		for i := j - 1; i >= 0; i-- {
			v := d[i*t+j]
			for k := i; k < j; k++ {
				if w := d[i*t+k] + d[k*t+j]; w < v {
					v = w
				}
			}
			d[i*t+j] = v
		}
	}
}

func TestStage2DiagMatchesRef(t *testing.T) {
	for _, tile := range []int{4, 8, 16, 28} {
		d1 := randBlock(tile, 20)
		triangularize(d1, tile)
		d2 := append([]float32(nil), d1...)
		st := Stage2Diag(d1, tile)
		refStage2Diag(d2, tile)
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatalf("tile=%d: Stage2Diag diverges at cell (%d,%d)", tile, i/tile, i%tile)
			}
		}
		if want := StatsStage2Diag(tile); st != want {
			t.Errorf("tile=%d: stats = %+v, want analytic %+v", tile, st, want)
		}
	}
}

func TestStatsMemoryBlock(t *testing.T) {
	mul := StatsMulMinPlus(16)
	off := StatsStage2OffDiag(16)
	got := StatsMemoryBlock(16, 2, 7) // 4 middle tiles
	want := Stats{CBSteps: off.CBSteps + 4*mul.CBSteps, ScalarRelax: off.ScalarRelax}
	if got != want {
		t.Errorf("StatsMemoryBlock = %+v, want %+v", got, want)
	}
	if d := StatsMemoryBlock(16, 3, 3); d != StatsStage2Diag(16) {
		t.Errorf("diagonal StatsMemoryBlock = %+v, want %+v", d, StatsStage2Diag(16))
	}
}

func TestCheckTile(t *testing.T) {
	for _, bad := range []int{0, -4, 1, 2, 3, 5, 7, 9} {
		if CheckTile(bad) == nil {
			t.Errorf("CheckTile(%d) accepted invalid tile", bad)
		}
	}
	for _, ok := range []int{4, 8, 88, 128} {
		if err := CheckTile(ok); err != nil {
			t.Errorf("CheckTile(%d): %v", ok, err)
		}
	}
}

func TestScalarKernelsMatchBlocked(t *testing.T) {
	for _, tile := range []int{4, 8, 16, 24} {
		a := randBlock(tile, 31)
		b := randBlock(tile, 32)
		c1 := randBlock(tile, 33)
		c2 := append([]float32(nil), c1...)
		st := MulMinPlus(c1, a, b, tile)
		n := ScalarMulMinPlus(c2, a, b, tile)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("tile=%d: ScalarMulMinPlus diverges at %d", tile, i)
			}
		}
		if n != st.Relaxations() {
			t.Errorf("tile=%d: scalar relax %d vs blocked %d", tile, n, st.Relaxations())
		}

		l := randBlock(tile, 34)
		r := randBlock(tile, 35)
		triangularize(l, tile)
		triangularize(r, tile)
		d1 := randBlock(tile, 36)
		d2 := append([]float32(nil), d1...)
		st2 := Stage2OffDiag(d1, l, r, tile)
		n2 := ScalarStage2OffDiag(d2, l, r, tile)
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatalf("tile=%d: ScalarStage2OffDiag diverges at %d", tile, i)
			}
		}
		if n2 != st2.Relaxations() {
			t.Errorf("tile=%d: stage2 scalar relax %d vs blocked %d", tile, n2, st2.Relaxations())
		}

		g1 := randBlock(tile, 37)
		triangularize(g1, tile)
		g2 := append([]float32(nil), g1...)
		st3 := Stage2Diag(g1, tile)
		n3 := ScalarStage2Diag(g2, tile)
		for i := range g1 {
			if g1[i] != g2[i] {
				t.Fatalf("tile=%d: ScalarStage2Diag diverges at %d", tile, i)
			}
		}
		if n3 != st3.Relaxations() {
			t.Errorf("tile=%d: diag scalar relax %d vs blocked %d", tile, n3, st3.Relaxations())
		}
	}
}
