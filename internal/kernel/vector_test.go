package kernel

import (
	"math"
	"testing"

	"cellnpdp/internal/simd"
)

// Bit-identity of the vector dispatch path against the pure-Go fallback
// and the MulMinPlus reference, on every tile shape the dispatcher can
// route to assembly (CB-aligned, both j-loop widths) plus adversarial
// values: ±Inf sentinels, NaN, and ±0 — the cases where a careless
// vector min (FMIN, or swapped VMINPS operands) diverges bitwise.

// adversarialBlock builds a t×t block mixing regular values with ±Inf,
// NaN and ±0 at deterministic positions.
func adversarialBlock(t int, seed int64) []float32 {
	b := randBlock(t, seed)
	specials := []float32{
		float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.NaN()), 0, float32(math.Copysign(0, -1)),
	}
	for i := range b {
		if (int64(i)*2654435761+seed)%11 == 0 {
			b[i] = specials[(int(seed)+i)%len(specials)]
		}
	}
	return b
}

func bitsEqual(a, b []float32) (int, bool) {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

func TestPanelVectorBitIdenticalToFallback(t *testing.T) {
	if !VectorEnabled() {
		t.Skip("vector kernels unavailable on this host")
	}
	for _, tile := range []int{4, 8, 12, 16, 20, 24, 32, 64, 88, 92} {
		a := adversarialBlock(tile, int64(tile))
		b := adversarialBlock(tile, int64(tile)+100)
		cVec := adversarialBlock(tile, int64(tile)+200)
		cGo := append([]float32(nil), cVec...)
		cRef := append([]float32(nil), cVec...)

		stVec := PanelMinPlusF32(a2(cVec), a, b, tile)
		func() {
			defer SetVectorEnabled(false)()
			if VectorEnabled() {
				t.Fatal("SetVectorEnabled(false) did not force the fallback")
			}
			PanelMinPlusF32(cGo, a, b, tile)
		}()
		stRef := MulMinPlus(cRef, a, b, tile)

		if i, ok := bitsEqual(cVec, cGo); !ok {
			t.Fatalf("tile=%d: vector diverges from Go fallback at (%d,%d): %x vs %x",
				tile, i/tile, i%tile, math.Float32bits(cVec[i]), math.Float32bits(cGo[i]))
		}
		if i, ok := bitsEqual(cVec, cRef); !ok {
			t.Fatalf("tile=%d: vector diverges from MulMinPlus at (%d,%d)", tile, i/tile, i%tile)
		}
		if stVec != stRef {
			t.Errorf("tile=%d: vector stats %+v != reference %+v", tile, stVec, stRef)
		}
	}
}

// a2 is the identity; it exists so the vector call above reads as the
// dispatch-path call site in a diff.
func a2(c []float32) []float32 { return c }

func TestStep4x4F32MatchesGeneric(t *testing.T) {
	if !VectorEnabled() {
		t.Skip("vector kernels unavailable on this host")
	}
	for _, stride := range []int{4, 8, 12, 88} {
		a := adversarialBlock(stride, int64(stride)+1)
		b := adversarialBlock(stride, int64(stride)+2)
		c1 := adversarialBlock(stride, int64(stride)+3)
		c2 := append([]float32(nil), c1...)
		Step4x4F32(c1, a, b, stride)
		Step4x4(c2, a, b, stride)
		if i, ok := bitsEqual(c1, c2); !ok {
			t.Fatalf("stride=%d: Step4x4F32 diverges from Step4x4 at %d", stride, i)
		}
	}
}

// The dispatcher must route ragged and undersized inputs to the Go
// fallback (which panics on real out-of-range access like any Go code)
// rather than into unguarded assembly.
func TestPanelVectorRaggedFallsBack(t *testing.T) {
	for _, tile := range []int{1, 2, 3, 5, 7, 9, 15} {
		a := randBlock(tile, int64(tile))
		b := randBlock(tile, int64(tile)+1)
		c1 := randBlock(tile, int64(tile)+2)
		c2 := append([]float32(nil), c1...)
		PanelMinPlusF32(c1, a, b, tile)
		ScalarMulMinPlus(c2, a, b, tile)
		if i, ok := bitsEqual(c1, c2); !ok {
			t.Fatalf("tile=%d: ragged dispatch diverges from scalar reference at %d", tile, i)
		}
	}
}

func TestVectorISAConsistent(t *testing.T) {
	if VectorEnabled() && VectorISA() == "none" {
		t.Fatal("VectorEnabled true but VectorISA none")
	}
	restore := SetVectorEnabled(false)
	if VectorISA() != "none" {
		t.Fatal("forced fallback but VectorISA != none")
	}
	restore()
	if simd.VectorAvailable() && haveVecASM && !VectorEnabled() {
		t.Fatal("restore did not re-enable vector dispatch")
	}
}

func BenchmarkPanelF32Vector(b *testing.B) {
	benchPanel(b, true)
}

func BenchmarkPanelF32Go(b *testing.B) {
	benchPanel(b, false)
}

func benchPanel(b *testing.B, vec bool) {
	defer SetVectorEnabled(vec)()
	if vec && !VectorEnabled() {
		b.Skip("vector kernels unavailable")
	}
	const tile = 88
	a := randBlock(tile, 1)
	bb := randBlock(tile, 2)
	c := randBlock(tile, 3)
	b.SetBytes(int64(tile) * int64(tile) * int64(tile) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PanelMinPlusF32(c, a, bb, tile)
	}
}
