package cellsim

import "fmt"

// Mailbox models the SPU mailbox channels the PPE procedure of Figure 8
// communicates through: a 4-entry inbound queue (PPE → SPU, the hardware
// depth) and an outbound queue the PPE drains. Values are 32-bit, as on
// the hardware. Sends block when the queue is full and reads block when
// it is empty, exactly the stall behaviour mailbox code deals with.
type Mailbox struct {
	in  chan uint32
	out chan uint32
}

// HardwareInboundDepth is the SPU inbound mailbox depth.
const HardwareInboundDepth = 4

// NewMailbox creates a mailbox with the given queue depths (the hardware
// has a 4-entry inbound and 1-entry outbound; outCap may be raised when
// the PPE's consumer is modeled as an interrupt queue).
func NewMailbox(inCap, outCap int) (*Mailbox, error) {
	if inCap <= 0 || outCap <= 0 {
		return nil, fmt.Errorf("cellsim: mailbox depths must be positive, got %d/%d", inCap, outCap)
	}
	return &Mailbox{in: make(chan uint32, inCap), out: make(chan uint32, outCap)}, nil
}

// Send delivers a value to the SPU (PPE side); blocks while the inbound
// queue is full.
func (m *Mailbox) Send(v uint32) { m.in <- v }

// CloseInbound signals the SPU that no further work will arrive.
func (m *Mailbox) CloseInbound() { close(m.in) }

// ReadInbound blocks until a value arrives (SPU side); ok is false after
// CloseInbound drains.
func (m *Mailbox) ReadInbound() (uint32, bool) {
	v, ok := <-m.in
	return v, ok
}

// WriteOutbound posts a value toward the PPE (SPU side); blocks while
// the outbound queue is full.
func (m *Mailbox) WriteOutbound(v uint32) { m.out <- v }

// Outbound exposes the PPE-side receive end.
func (m *Mailbox) Outbound() <-chan uint32 { return m.out }
