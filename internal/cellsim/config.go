// Package cellsim is a timed functional simulator of the Cell Broadband
// Engine features CellNPDP depends on (Section II-C): SPEs with private
// 256 KB local stores holding both code and data, asynchronous DMA with
// tag groups between local stores and main memory, shared memory-channel
// bandwidth, and per-SPE virtual clocks.
//
// The simulator enforces the constraints structurally — local-store
// capacity, DMA granularity, bandwidth contention — while executing the
// real computation on ordinary Go slices, so a CellNPDP run both produces
// the correct DP table and yields a modeled QS20 execution time plus DMA
// statistics. Machines are not safe for concurrent use: the discrete-
// event executor (internal/sched) drives them single-threaded in virtual
// time, which also keeps modeled runs deterministic.
package cellsim

import "fmt"

// Config describes the simulated machine.
type Config struct {
	// NumSPEs is the number of synergistic processor elements. A single
	// Cell has 8; the IBM QS20 blade has 16 across two chips.
	NumSPEs int
	// LocalStoreBytes is the per-SPE local store capacity (256 KB).
	LocalStoreBytes int
	// CodeBytes is the local-store share reserved for instructions and
	// stack; Section VI-A sizes memory blocks "smaller than 1/6 of the
	// local store size, because the local stores also hold instructions".
	CodeBytes int
	// ClockHz is the SPE clock (3.2 GHz on the QS20).
	ClockHz float64
	// MemChannels is the number of independent main-memory channels; the
	// QS20 has one XDR channel per Cell chip. SPEs are striped across
	// channels in contiguous groups.
	MemChannels int
	// ChannelBandwidth is the peak bytes/second of one memory channel
	// (25.6 GB/s on the Cell).
	ChannelBandwidth float64
	// DMALatency is the unloaded seconds from issuing a DMA command to
	// first data, covering command setup and memory access latency. It
	// is what makes many small transfers slow (Sections III and VI-D).
	DMALatency float64
	// DMACommandOverhead is the memory-controller occupancy per DMA
	// command, in seconds of channel time, independent of size. Many
	// small commands therefore consume channel capacity beyond their
	// bytes — the transfer-size-dependent DMA efficiency of Section VI-D.
	DMACommandOverhead float64
	// DispatchOverhead is the PPE's per-task scheduling cost in seconds —
	// the overhead scheduling blocks exist to amortize (Section IV-B).
	DispatchOverhead float64
	// InterChipBandwidth is the effective bytes/second of the QS20's
	// inter-Cell interface for remote memory accesses. Data is homed on
	// one chip's XDR; an SPE on the other chip pulls it across this link,
	// which measured far below the XDR channels on real blades. 0
	// disables the NUMA model (single-chip configurations).
	InterChipBandwidth float64
}

// QS20 returns the IBM QS20 dual-Cell blade configuration the paper
// evaluates on (Section VI).
func QS20() Config {
	return Config{
		NumSPEs:            16,
		LocalStoreBytes:    256 * 1024,
		CodeBytes:          48 * 1024,
		ClockHz:            3.2e9,
		MemChannels:        2,
		ChannelBandwidth:   25.6e9,
		DMALatency:         250e-9,
		DMACommandOverhead: 100e-9,
		DispatchOverhead:   1e-6,
		InterChipBandwidth: 3e9,
	}
}

// SingleCell returns a one-chip, 8-SPE configuration.
func SingleCell() Config {
	c := QS20()
	c.NumSPEs = 8
	c.MemChannels = 1
	c.InterChipBandwidth = 0
	return c
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.NumSPEs <= 0:
		return fmt.Errorf("cellsim: NumSPEs must be positive, got %d", c.NumSPEs)
	case c.LocalStoreBytes <= 0:
		return fmt.Errorf("cellsim: LocalStoreBytes must be positive, got %d", c.LocalStoreBytes)
	case c.CodeBytes < 0 || c.CodeBytes >= c.LocalStoreBytes:
		return fmt.Errorf("cellsim: CodeBytes %d must be in [0, LocalStoreBytes %d)", c.CodeBytes, c.LocalStoreBytes)
	case c.ClockHz <= 0:
		return fmt.Errorf("cellsim: ClockHz must be positive, got %g", c.ClockHz)
	case c.MemChannels <= 0:
		return fmt.Errorf("cellsim: MemChannels must be positive, got %d", c.MemChannels)
	case c.ChannelBandwidth <= 0:
		return fmt.Errorf("cellsim: ChannelBandwidth must be positive, got %g", c.ChannelBandwidth)
	case c.DMALatency < 0:
		return fmt.Errorf("cellsim: DMALatency must be non-negative, got %g", c.DMALatency)
	case c.DMACommandOverhead < 0:
		return fmt.Errorf("cellsim: DMACommandOverhead must be non-negative, got %g", c.DMACommandOverhead)
	case c.DispatchOverhead < 0:
		return fmt.Errorf("cellsim: DispatchOverhead must be non-negative, got %g", c.DispatchOverhead)
	case c.InterChipBandwidth < 0:
		return fmt.Errorf("cellsim: InterChipBandwidth must be non-negative, got %g", c.InterChipBandwidth)
	}
	return nil
}

// DataBytes returns the local-store bytes available for data buffers.
func (c Config) DataBytes() int { return c.LocalStoreBytes - c.CodeBytes }

// Seconds converts SPE cycles to seconds.
func (c Config) Seconds(cycles float64) float64 { return cycles / c.ClockHz }
