package cellsim

import "fmt"

// LocalStore tracks allocation of an SPE's data region. It is an
// accounting allocator: buffers live as ordinary Go slices, but every
// allocation must fit the 256 KB (minus code) budget, so an algorithm
// that over-tiles fails here exactly as it would fail to link on the SPU.
type LocalStore struct {
	capacity int
	used     int
}

// Capacity returns the data capacity in bytes.
func (ls *LocalStore) Capacity() int { return ls.capacity }

// Used returns the currently allocated bytes.
func (ls *LocalStore) Used() int { return ls.used }

// reserve claims n bytes, 16-byte aligned (quadword) as the SPU requires.
func (ls *LocalStore) reserve(n int) error {
	aligned := (n + 15) &^ 15
	if ls.used+aligned > ls.capacity {
		return fmt.Errorf("cellsim: local store overflow: %d used + %d requested > %d capacity",
			ls.used, aligned, ls.capacity)
	}
	ls.used += aligned
	return nil
}

// release returns n bytes claimed by reserve.
func (ls *LocalStore) release(n int) {
	aligned := (n + 15) &^ 15
	ls.used -= aligned
	if ls.used < 0 {
		panic("cellsim: local store release underflow")
	}
}

// SPE is one synergistic processor element: a virtual clock, a local
// store, and outstanding DMA tag groups.
type SPE struct {
	ID      int
	Clock   float64 // virtual time in seconds
	machine *Machine
	ls      LocalStore
	tagDone map[int]float64 // per tag group: completion time of the last command
}

// LS exposes the local store for inspection.
func (s *SPE) LS() *LocalStore { return &s.ls }

// AdvanceCycles moves the SPE's clock forward by a computation of the
// given cycle count.
func (s *SPE) AdvanceCycles(cycles float64) {
	s.Clock += s.machine.Config.Seconds(cycles)
}

// WaitTag blocks (in virtual time) until every DMA command issued on the
// tag group has completed — the mfc_write_tag_mask/mfc_read_tag_status
// idiom double buffering is built on.
func (s *SPE) WaitTag(tag int) {
	if t, ok := s.tagDone[tag]; ok && t > s.Clock {
		s.Clock = t
	}
	delete(s.tagDone, tag)
}

// WaitAll blocks until every outstanding DMA command has completed.
func (s *SPE) WaitAll() {
	for tag, t := range s.tagDone {
		if t > s.Clock {
			s.Clock = t
		}
		delete(s.tagDone, tag)
	}
}

// bookDMA records a transfer on a tag group and in the machine stats.
func (s *SPE) bookDMA(bytes int, tag int, get bool) {
	s.bookDMAHomed(bytes, tag, get, -1)
}

// bookDMAHomed records a transfer whose main-memory data is homed on the
// given memory channel (-1 = the SPE's own chip).
func (s *SPE) bookDMAHomed(bytes int, tag int, get bool, home int) {
	s.bookDMABatch(bytes, 1, tag, get, home)
}

// bookDMABatch records `commands` back-to-back commands totalling `bytes`.
func (s *SPE) bookDMABatch(bytes, commands, tag int, get bool, home int) {
	done := s.machine.transferBatch(s.ID, bytes, commands, home, s.Clock)
	if t, ok := s.tagDone[tag]; !ok || done > t {
		s.tagDone[tag] = done
	}
	if get {
		s.machine.Stats.GetCommands += int64(commands)
		s.machine.Stats.GetBytes += int64(bytes)
	} else {
		s.machine.Stats.PutCommands += int64(commands)
		s.machine.Stats.PutBytes += int64(bytes)
	}
}

// GetTimedScattered books a get of `commands` commands moving `bytes`
// total (e.g. one command per scattered row of a tiled block).
func (s *SPE) GetTimedScattered(bytes, commands, tag, home int) {
	s.bookDMABatch(bytes, commands, tag, true, home)
}

// Buffer is a typed local-store buffer.
type Buffer[E any] struct {
	Data []E
	spe  *SPE
	elem int
}

// Alloc reserves a local-store buffer of n elements on the SPE. The
// element size is computed from the type via elemBytes.
func Alloc[E any](s *SPE, n int, elemBytes int) (*Buffer[E], error) {
	if n <= 0 || elemBytes <= 0 {
		return nil, fmt.Errorf("cellsim: invalid buffer request: %d elements × %d bytes", n, elemBytes)
	}
	if err := s.ls.reserve(n * elemBytes); err != nil {
		return nil, err
	}
	return &Buffer[E]{Data: make([]E, n), spe: s, elem: elemBytes}, nil
}

// Free returns the buffer's bytes to the local store.
func (b *Buffer[E]) Free() {
	if b.Data == nil {
		return
	}
	b.spe.ls.release(len(b.Data) * b.elem)
	b.Data = nil
}

// Get issues an asynchronous DMA from main memory (src) into the buffer
// on the given tag group: the data is copied immediately (virtual time
// makes that safe — the source cannot change until a dependent task runs)
// and the completion time is booked for WaitTag. The data is treated as
// homed on the SPE's own chip; use GetHomed for NUMA-aware accounting.
func (b *Buffer[E]) Get(src []E, tag int) error {
	return b.GetHomed(src, tag, -1)
}

// GetHomed is Get for data homed on the given memory channel.
func (b *Buffer[E]) GetHomed(src []E, tag int, home int) error {
	if len(src) > len(b.Data) {
		return fmt.Errorf("cellsim: DMA get of %d elements into %d-element buffer", len(src), len(b.Data))
	}
	copy(b.Data, src)
	b.spe.bookDMAHomed(len(src)*b.elem, tag, true, home)
	return nil
}

// Put issues an asynchronous DMA from the buffer to main memory (dst),
// homed on the SPE's own chip.
func (b *Buffer[E]) Put(dst []E, tag int) error {
	return b.PutHomed(dst, tag, -1)
}

// PutHomed is Put for data homed on the given memory channel.
func (b *Buffer[E]) PutHomed(dst []E, tag int, home int) error {
	if len(dst) > len(b.Data) {
		return fmt.Errorf("cellsim: DMA put of %d elements from %d-element buffer", len(dst), len(b.Data))
	}
	copy(dst, b.Data[:len(dst)])
	b.spe.bookDMAHomed(len(dst)*b.elem, tag, false, home)
	return nil
}

// GetTimed books a DMA get of the given byte count without copying any
// data; the timing-only engines (pure performance modeling at paper-scale
// problem sizes) use it so modeled runs cost O(blocks), not O(n³).
func (s *SPE) GetTimed(bytes int, tag int) { s.bookDMAHomed(bytes, tag, true, -1) }

// GetTimedHomed is GetTimed for data homed on the given channel.
func (s *SPE) GetTimedHomed(bytes int, tag int, home int) { s.bookDMAHomed(bytes, tag, true, home) }

// PutTimed books a DMA put of the given byte count without copying.
func (s *SPE) PutTimed(bytes int, tag int) { s.bookDMAHomed(bytes, tag, false, -1) }

// PutTimedHomed is PutTimed for data homed on the given channel.
func (s *SPE) PutTimedHomed(bytes int, tag int, home int) { s.bookDMAHomed(bytes, tag, false, home) }
