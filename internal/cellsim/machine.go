package cellsim

import "fmt"

// DMAStats tallies the traffic between local stores and main memory —
// the quantity Figure 9(a) plots.
type DMAStats struct {
	GetCommands int64 // main memory → local store commands
	GetBytes    int64
	PutCommands int64 // local store → main memory commands
	PutBytes    int64
}

// TotalBytes returns traffic in both directions.
func (s DMAStats) TotalBytes() int64 { return s.GetBytes + s.PutBytes }

// Add accumulates other into s.
func (s *DMAStats) Add(other DMAStats) {
	s.GetCommands += other.GetCommands
	s.GetBytes += other.GetBytes
	s.PutCommands += other.PutCommands
	s.PutBytes += other.PutBytes
}

// channel models one memory channel's bandwidth as fluid capacity over
// fixed-width time buckets. Transfers book bytes into buckets starting at
// their issue time and spill forward when a bucket is full. Because the
// discrete-event executor runs task bodies atomically (whole virtual
// spans at a time), bookings arrive out of virtual-time order; the bucket
// model lets a virtually-earlier transfer still use leftover capacity in
// its buckets instead of queuing behind virtually-later ones.
type channel struct {
	width    float64 // seconds per bucket
	capacity float64 // bytes per bucket (width × bandwidth)
	bw       float64 // bytes per second
	used     map[int64]float64
}

// serve books `bytes` starting no earlier than issue and returns the time
// the last byte moves. An uncontended transfer finishes at exactly
// issue + bytes/bw.
func (c *channel) serve(issue float64, bytes float64) float64 {
	left := bytes
	b := int64(issue / c.width)
	finish := issue
	for left > 0 {
		start := float64(b) * c.width
		before := c.used[b]
		avail := c.capacity - before
		// Serving within this bucket begins after both the issue time and
		// the span earlier bookings occupy.
		base := start + before/c.bw
		if issue > base {
			base = issue
			if room := (start + c.width - issue) * c.bw; avail > room {
				avail = room
			}
		}
		if avail > 0 {
			take := left
			if take > avail {
				take = avail
			}
			c.used[b] = before + take
			left -= take
			finish = base + take/c.bw
		}
		b++
	}
	return finish
}

// Machine is one simulated Cell blade: SPEs plus the memory channels they
// contend on and, when two chips are configured, the inter-chip link
// remote accesses cross.
type Machine struct {
	Config   Config
	SPEs     []*SPE
	Stats    DMAStats
	channels []*channel
	link     *channel
}

// bucketSeconds is the granularity of the fluid bandwidth model: fine
// enough that a 32 KB block transfer (≈1.2 µs at 25.6 GB/s) spans a few
// buckets at most, coarse enough that full runs stay cheap.
const bucketSeconds = 10e-6

// NewMachine builds a machine from a validated configuration.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Config: cfg}
	for i := 0; i < cfg.MemChannels; i++ {
		m.channels = append(m.channels, &channel{
			width:    bucketSeconds,
			capacity: bucketSeconds * cfg.ChannelBandwidth,
			bw:       cfg.ChannelBandwidth,
			used:     make(map[int64]float64),
		})
	}
	if cfg.MemChannels > 1 && cfg.InterChipBandwidth > 0 {
		m.link = &channel{
			width:    bucketSeconds,
			capacity: bucketSeconds * cfg.InterChipBandwidth,
			bw:       cfg.InterChipBandwidth,
			used:     make(map[int64]float64),
		}
	}
	for i := 0; i < cfg.NumSPEs; i++ {
		m.SPEs = append(m.SPEs, &SPE{
			ID:      i,
			machine: m,
			ls:      LocalStore{capacity: cfg.DataBytes()},
			tagDone: make(map[int]float64),
		})
	}
	return m, nil
}

// channelOf returns the memory channel SPE id contends on: SPEs are
// striped across channels in contiguous groups (QS20: 0–7 on chip 0,
// 8–15 on chip 1).
func (m *Machine) channelOf(spe int) int {
	group := (m.Config.NumSPEs + m.Config.MemChannels - 1) / m.Config.MemChannels
	ch := spe / group
	if ch >= m.Config.MemChannels {
		ch = m.Config.MemChannels - 1
	}
	return ch
}

// transfer books a DMA of `bytes` bytes issued by SPE `spe` at virtual
// time `issue` and returns its completion time: the channel serves the
// bus bytes through the fluid bandwidth model, then the command pays the
// unloaded DMA latency. Small transfers are dominated by the latency
// term, which is what makes the row-major layout's per-row (and the
// original algorithm's per-element) DMA slow (Sections III and VI-D).
// transferHomed books a DMA whose data is homed on memory channel `home`.
// Remote transfers (home differs from the SPE's chip) additionally cross
// the inter-chip link; both resources book capacity and the slower one
// determines completion.
func (m *Machine) transferHomed(spe int, bytes int, home int, issue float64) float64 {
	return m.transferBatch(spe, bytes, 1, home, issue)
}

// transferBatch books `commands` DMA commands moving `bytes` in total as
// one capacity reservation — timing-equivalent to issuing them back to
// back, in O(1). Scattered-row fetches (one command per row of a tiled
// block) use it so paper-scale models stay cheap.
func (m *Machine) transferBatch(spe int, bytes, commands, home int, issue float64) float64 {
	// Cell DMA moves quadword multiples; smaller requests still occupy a
	// full 16-byte granule on the bus. The controller additionally spends
	// DMACommandOverhead of channel time per command, charged as
	// equivalent bytes so it flows through the same capacity model.
	granules := (bytes + 15*commands) / 16
	overhead := float64(commands) * m.Config.DMACommandOverhead
	busBytes := float64(granules*16) + overhead*m.Config.ChannelBandwidth
	if home < 0 || home >= len(m.channels) {
		home = m.channelOf(spe)
	}
	done := m.channels[home].serve(issue, busBytes)
	if m.link != nil && home != m.channelOf(spe) {
		linkBytes := float64(granules*16) + overhead*m.Config.InterChipBandwidth
		if linkDone := m.link.serve(issue, linkBytes); linkDone > done {
			done = linkDone
		}
	}
	return done + m.Config.DMALatency
}

func (m *Machine) transfer(spe int, bytes int, issue float64) float64 {
	return m.transferHomed(spe, bytes, m.channelOf(spe), issue)
}

// Reset clears statistics and channel state, and resets every SPE clock
// and local store. Buffers handed out before Reset must not be reused.
func (m *Machine) Reset() {
	m.Stats = DMAStats{}
	for _, c := range m.channels {
		c.used = make(map[int64]float64)
	}
	if m.link != nil {
		m.link.used = make(map[int64]float64)
	}
	for _, s := range m.SPEs {
		s.Clock = 0
		s.ls.used = 0
		s.tagDone = make(map[int]float64)
	}
}

// CheckSPE validates an SPE index.
func (m *Machine) CheckSPE(id int) error {
	if id < 0 || id >= len(m.SPEs) {
		return fmt.Errorf("cellsim: SPE %d out of range [0,%d)", id, len(m.SPEs))
	}
	return nil
}
