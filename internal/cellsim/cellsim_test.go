package cellsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func newQS20(t *testing.T) *Machine {
	t.Helper()
	m, err := NewMachine(QS20())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := QS20().Validate(); err != nil {
		t.Errorf("QS20 invalid: %v", err)
	}
	if err := SingleCell().Validate(); err != nil {
		t.Errorf("SingleCell invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.NumSPEs = 0 },
		func(c *Config) { c.LocalStoreBytes = 0 },
		func(c *Config) { c.CodeBytes = -1 },
		func(c *Config) { c.CodeBytes = c.LocalStoreBytes },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.MemChannels = 0 },
		func(c *Config) { c.ChannelBandwidth = -1 },
		func(c *Config) { c.DMALatency = -1 },
		func(c *Config) { c.DispatchOverhead = -1 },
	}
	for i, mut := range mutations {
		c := QS20()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestQS20Shape(t *testing.T) {
	m := newQS20(t)
	if len(m.SPEs) != 16 {
		t.Errorf("QS20 has %d SPEs, want 16", len(m.SPEs))
	}
	if cap := m.SPEs[0].LS().Capacity(); cap != 256*1024-48*1024 {
		t.Errorf("data capacity = %d", cap)
	}
	// SPEs stripe across the two chips' channels.
	if m.channelOf(0) != 0 || m.channelOf(7) != 0 || m.channelOf(8) != 1 || m.channelOf(15) != 1 {
		t.Error("SPE→channel striping wrong")
	}
}

func TestLocalStoreAccounting(t *testing.T) {
	m := newQS20(t)
	spe := m.SPEs[0]
	b1, err := Alloc[float32](spe, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if used := spe.LS().Used(); used != 4000 {
		t.Errorf("used = %d, want 4000", used)
	}
	// Capacity enforcement.
	if _, err := Alloc[float32](spe, spe.LS().Capacity(), 4); err == nil {
		t.Error("overflow allocation accepted")
	}
	b1.Free()
	if spe.LS().Used() != 0 {
		t.Errorf("used after free = %d", spe.LS().Used())
	}
	b1.Free() // double free of a nil buffer is a no-op
	if _, err := Alloc[float32](spe, 0, 4); err == nil {
		t.Error("zero-size allocation accepted")
	}
	if _, err := Alloc[float32](spe, 10, 0); err == nil {
		t.Error("zero elem size accepted")
	}
}

func TestLocalStoreAlignment(t *testing.T) {
	m := newQS20(t)
	spe := m.SPEs[0]
	b, _ := Alloc[float32](spe, 1, 4) // 4 bytes → 16-byte quadword
	if spe.LS().Used() != 16 {
		t.Errorf("quadword alignment not applied: used = %d", spe.LS().Used())
	}
	b.Free()
}

func TestDMAFunctionalCopy(t *testing.T) {
	m := newQS20(t)
	spe := m.SPEs[0]
	main := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	buf, _ := Alloc[float32](spe, 8, 4)
	if err := buf.Get(main, 0); err != nil {
		t.Fatal(err)
	}
	spe.WaitTag(0)
	for i, v := range buf.Data {
		if v != main[i] {
			t.Fatalf("get copy wrong at %d", i)
		}
	}
	for i := range buf.Data {
		buf.Data[i] *= 10
	}
	out := make([]float32, 8)
	if err := buf.Put(out, 1); err != nil {
		t.Fatal(err)
	}
	spe.WaitAll()
	if out[7] != 80 {
		t.Errorf("put copy wrong: %v", out)
	}
	if m.Stats.GetCommands != 1 || m.Stats.PutCommands != 1 || m.Stats.GetBytes != 32 || m.Stats.PutBytes != 32 {
		t.Errorf("stats wrong: %+v", m.Stats)
	}
}

func TestDMASizeChecks(t *testing.T) {
	m := newQS20(t)
	buf, _ := Alloc[float32](m.SPEs[0], 4, 4)
	if err := buf.Get(make([]float32, 8), 0); err == nil {
		t.Error("oversized get accepted")
	}
	if err := buf.Put(make([]float32, 8), 0); err == nil {
		t.Error("oversized put accepted")
	}
}

func TestDMATimingUncontended(t *testing.T) {
	cfg := QS20()
	m, _ := NewMachine(cfg)
	spe := m.SPEs[0]
	bytes := 32 * 1024
	spe.GetTimed(bytes, 0)
	spe.WaitTag(0)
	want := float64(bytes)/cfg.ChannelBandwidth + cfg.DMACommandOverhead + cfg.DMALatency
	if math.Abs(spe.Clock-want) > 1e-12 {
		t.Errorf("uncontended 32KB get completed at %g, want %g", spe.Clock, want)
	}
}

func TestDMASmallTransferLatencyBound(t *testing.T) {
	// A 16-byte transfer costs essentially the DMA latency — the effect
	// that makes the original algorithm on one SPE so slow (Table II).
	cfg := QS20()
	m, _ := NewMachine(cfg)
	spe := m.SPEs[0]
	spe.GetTimed(4, 0) // sub-quadword: still a 16-byte granule
	spe.WaitTag(0)
	if spe.Clock < cfg.DMALatency {
		t.Errorf("small transfer faster than DMA latency: %g", spe.Clock)
	}
	if m.Stats.GetBytes != 4 {
		t.Errorf("stats count requested bytes: %d", m.Stats.GetBytes)
	}
}

func TestChannelContention(t *testing.T) {
	// Two SPEs on the same channel moving big blocks at the same virtual
	// time must share bandwidth: combined completion ≈ 2× solo.
	cfg := QS20()
	m, _ := NewMachine(cfg)
	bytes := 1 << 20
	m.SPEs[0].GetTimed(bytes, 0)
	m.SPEs[1].GetTimed(bytes, 0)
	m.SPEs[0].WaitTag(0)
	m.SPEs[1].WaitTag(0)
	solo := float64(bytes)/cfg.ChannelBandwidth + cfg.DMACommandOverhead + cfg.DMALatency
	if m.SPEs[1].Clock < 1.8*float64(bytes)/cfg.ChannelBandwidth {
		t.Errorf("second SPE finished at %g, expected ≈2× solo %g (contention)", m.SPEs[1].Clock, solo)
	}
	// But an SPE on the *other* chip's channel is unaffected.
	m.SPEs[8].GetTimed(bytes, 0)
	m.SPEs[8].WaitTag(0)
	if math.Abs(m.SPEs[8].Clock-solo) > 1e-9 {
		t.Errorf("other-channel SPE saw contention: %g vs solo %g", m.SPEs[8].Clock, solo)
	}
}

func TestChannelOutOfOrderBooking(t *testing.T) {
	// A transfer booked later in wall order but earlier in virtual time
	// must still find the early capacity (the DES executes task bodies
	// atomically, so this ordering is routine).
	cfg := QS20()
	m, _ := NewMachine(cfg)
	m.SPEs[0].Clock = 1.0
	m.SPEs[0].GetTimed(1<<20, 0)
	m.SPEs[0].WaitTag(0)
	late := m.SPEs[0].Clock
	m.SPEs[1].Clock = 0
	m.SPEs[1].GetTimed(1<<20, 0)
	m.SPEs[1].WaitTag(0)
	solo := float64(1<<20)/cfg.ChannelBandwidth + cfg.DMACommandOverhead + cfg.DMALatency
	if math.Abs(m.SPEs[1].Clock-solo) > 1e-9 {
		t.Errorf("early transfer queued behind late one: %g vs %g", m.SPEs[1].Clock, solo)
	}
	if late < 1.0+solo-1e-9 {
		t.Errorf("late transfer too fast: %g", late)
	}
}

func TestWaitTagOnlyWaitsItsGroup(t *testing.T) {
	cfg := QS20()
	m, _ := NewMachine(cfg)
	spe := m.SPEs[0]
	spe.GetTimed(16, 2)    // fast, books first
	spe.GetTimed(1<<24, 1) // slow, still outstanding after WaitTag(2)
	spe.WaitTag(2)
	fast := spe.Clock
	spe.WaitTag(1)
	if spe.Clock <= fast {
		t.Error("tag groups not independent")
	}
}

func TestAdvanceCycles(t *testing.T) {
	m := newQS20(t)
	spe := m.SPEs[0]
	spe.AdvanceCycles(3.2e9)
	if math.Abs(spe.Clock-1.0) > 1e-12 {
		t.Errorf("3.2e9 cycles at 3.2GHz = %g s, want 1", spe.Clock)
	}
}

func TestReset(t *testing.T) {
	m := newQS20(t)
	spe := m.SPEs[0]
	spe.GetTimed(1<<20, 0)
	spe.AdvanceCycles(1e6)
	if _, err := Alloc[float32](spe, 100, 4); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if spe.Clock != 0 || spe.LS().Used() != 0 || m.Stats != (DMAStats{}) {
		t.Error("Reset incomplete")
	}
	// Channel capacity restored: a fresh transfer is uncontended.
	spe.GetTimed(1<<20, 0)
	spe.WaitTag(0)
	want := float64(1<<20)/m.Config.ChannelBandwidth + m.Config.DMACommandOverhead + m.Config.DMALatency
	if math.Abs(spe.Clock-want) > 1e-9 {
		t.Errorf("channel state survived Reset: %g vs %g", spe.Clock, want)
	}
}

func TestFluidChannelConservesBandwidth(t *testing.T) {
	// Property: however transfers are interleaved, the completion of the
	// last byte can never beat total bytes / bandwidth.
	cfg := QS20()
	if err := quick.Check(func(sizes [8]uint16, order [8]uint8) bool {
		m, _ := NewMachine(cfg)
		var total float64
		var last float64
		for i := 0; i < 8; i++ {
			spe := m.SPEs[int(order[i])%8] // all on channel 0
			bytes := 16 * (1 + int(sizes[i])%4096)
			total += float64(bytes)
			spe.GetTimed(bytes, 0)
			spe.WaitTag(0)
			if spe.Clock > last {
				last = spe.Clock
			}
		}
		return last >= total/cfg.ChannelBandwidth
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCheckSPE(t *testing.T) {
	m := newQS20(t)
	if err := m.CheckSPE(15); err != nil {
		t.Error(err)
	}
	if m.CheckSPE(16) == nil || m.CheckSPE(-1) == nil {
		t.Error("invalid SPE index accepted")
	}
	if err := m.CheckSPE(99); err == nil || !strings.Contains(err.Error(), "99") {
		t.Error("error message should name the index")
	}
}

func TestDMAStatsAdd(t *testing.T) {
	a := DMAStats{GetCommands: 1, GetBytes: 2, PutCommands: 3, PutBytes: 4}
	b := DMAStats{GetCommands: 10, GetBytes: 20, PutCommands: 30, PutBytes: 40}
	a.Add(b)
	if a != (DMAStats{11, 22, 33, 44}) {
		t.Errorf("Add wrong: %+v", a)
	}
	if a.TotalBytes() != 66 {
		t.Errorf("TotalBytes = %d", a.TotalBytes())
	}
}

func TestNUMARemoteTransferSlower(t *testing.T) {
	// A transfer homed on the other chip crosses the inter-chip link and
	// must take at least as long as a local one; a big remote stream is
	// bound by the link bandwidth, not the XDR channel.
	cfg := QS20()
	m, _ := NewMachine(cfg)
	bytes := 16 << 20
	m.SPEs[0].GetTimedHomed(bytes, 0, 0) // local (SPE 0 is on chip 0)
	m.SPEs[0].WaitTag(0)
	local := m.SPEs[0].Clock

	m2, _ := NewMachine(cfg)
	m2.SPEs[0].GetTimedHomed(bytes, 0, 1) // remote
	m2.SPEs[0].WaitTag(0)
	remote := m2.SPEs[0].Clock

	if remote <= local {
		t.Errorf("remote transfer (%g s) not slower than local (%g s)", remote, local)
	}
	linkFloor := float64(bytes) / cfg.InterChipBandwidth
	if remote < linkFloor {
		t.Errorf("remote transfer %g s beat the link floor %g s", remote, linkFloor)
	}
}

func TestNUMADisabledOnSingleChip(t *testing.T) {
	cfg := SingleCell()
	m, _ := NewMachine(cfg)
	m.SPEs[0].GetTimedHomed(1<<20, 0, 0)
	m.SPEs[0].WaitTag(0)
	want := float64(1<<20)/cfg.ChannelBandwidth + cfg.DMACommandOverhead + cfg.DMALatency
	if math.Abs(m.SPEs[0].Clock-want) > 1e-9 {
		t.Errorf("single-chip homed transfer = %g, want %g", m.SPEs[0].Clock, want)
	}
}

func TestHomedTransferContendsOnHomeChannel(t *testing.T) {
	// Two SPEs on DIFFERENT chips reading data homed on chip 0 contend on
	// chip 0's channel (plus the link for the remote one).
	cfg := QS20()
	cfg.InterChipBandwidth = 100e9 // effectively unlimited link isolates channel contention
	m, _ := NewMachine(cfg)
	bytes := 4 << 20
	m.SPEs[0].GetTimedHomed(bytes, 0, 0)
	m.SPEs[8].GetTimedHomed(bytes, 0, 0)
	m.SPEs[0].WaitTag(0)
	m.SPEs[8].WaitTag(0)
	serialized := 2 * float64(bytes) / cfg.ChannelBandwidth
	last := math.Max(m.SPEs[0].Clock, m.SPEs[8].Clock)
	if last < serialized {
		t.Errorf("home-channel contention missing: last done %g < serialized floor %g", last, serialized)
	}
}

func TestInterChipValidation(t *testing.T) {
	cfg := QS20()
	cfg.InterChipBandwidth = -1
	if cfg.Validate() == nil {
		t.Error("negative InterChipBandwidth accepted")
	}
}

func TestMailboxBasics(t *testing.T) {
	mb, err := NewMailbox(HardwareInboundDepth, 1)
	if err != nil {
		t.Fatal(err)
	}
	mb.Send(7)
	mb.Send(9)
	if v, ok := mb.ReadInbound(); !ok || v != 7 {
		t.Errorf("read = %d,%v", v, ok)
	}
	mb.WriteOutbound(42)
	if v := <-mb.Outbound(); v != 42 {
		t.Errorf("outbound = %d", v)
	}
	mb.CloseInbound()
	if v, ok := mb.ReadInbound(); !ok || v != 9 {
		t.Errorf("drain after close = %d,%v", v, ok)
	}
	if _, ok := mb.ReadInbound(); ok {
		t.Error("read after drain should report closed")
	}
	if _, err := NewMailbox(0, 1); err == nil {
		t.Error("zero inbound depth accepted")
	}
}

func TestMailboxBlocksWhenFull(t *testing.T) {
	mb, _ := NewMailbox(1, 1)
	mb.Send(1)
	done := make(chan bool)
	go func() {
		mb.Send(2) // blocks until the SPU reads
		done <- true
	}()
	select {
	case <-done:
		t.Fatal("send did not block on a full inbound queue")
	default:
	}
	if v, _ := mb.ReadInbound(); v != 1 {
		t.Fatal("wrong first value")
	}
	<-done
}
