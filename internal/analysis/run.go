package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// RunAnalyzers applies the analyzers to one type-checked package and
// returns the surviving findings: suppressions (//nolint:npdplint with
// a justification) are honored, unjustified or mistargeted suppressions
// become findings themselves, and the result is position-sorted so
// output and JSON are deterministic.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	diags = applyNolint(diags, collectNolint(fset, files))
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
