package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllocBound guards every decode path against the PR 7 alloc-bomb
// class: a count or length lifted out of wire or disk bytes (a cluster
// frame, an NPKD delta, an NPSP spill index, an NPCK checkpoint) fed
// straight into make() hands a hostile or corrupt peer a gigabyte
// allocation for sixteen bytes of input. The PR 7 review caught exactly
// that — an unbounded `nblocks` from a task frame — by hand; this
// analyzer finds the class statically.
//
// The model is a per-function lexical taint pass:
//
//   - taint sources: results of encoding/binary ByteOrder decodes
//     (Uint16/32/64) and any variable whose address feeds binary.Read;
//   - propagation: assignments whose right-hand side mentions a tainted,
//     not-yet-bounded value taint their targets;
//   - bounds: a comparison (<, >, <=, >=, ==, !=) mentioning the tainted
//     value, or passing it (or its address, or a method call on it) to a
//     named validator (check*/valid*/verify*/audit*), clears the taint —
//     the decodeTaskMsg `nblocks > (len(p)-16)/16` guard and the spill
//     header's `g.check()` both qualify;
//   - sinks: a make() size/capacity or a full-slice-expression capacity
//     mentioning a still-unbounded tainted value is a finding.
//
// The pass is deliberately function-local: a decoded field that crosses
// a function boundary has, by this repo's codec discipline, already
// passed its decoder's plausibility checks.
var AllocBound = &Analyzer{
	Name: "allocbound",
	Doc:  "make/slice sizes decoded from wire or disk bytes must be bounded before allocating",
	Run:  runAllocBound,
}

func runAllocBound(pass *Pass) error {
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAllocBoundFunc(pass, fd)
		}
	}
	return nil
}

// allocEvent is one taint-relevant node, replayed in source order.
type allocEvent struct {
	pos  token.Pos
	node ast.Node
	kind int // evAssign, evGuard, evValidate, evRead, evSink
}

const (
	evAssign = iota
	evGuard
	evValidate
	evRead
	evSink
)

func checkAllocBoundFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Collect events, then replay them in lexical order so "the bound
	// check dominates the allocation" degrades to "the bound check is
	// written before the allocation" — true for every straight-line
	// decoder in the tree.
	var events []allocEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			events = append(events, allocEvent{n.Pos(), n, evAssign})
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				events = append(events, allocEvent{n.Pos(), n, evGuard})
			}
		case *ast.CallExpr:
			if obj := calleeObject(info, n); obj != nil {
				if obj.Name() == "make" && obj.Pkg() == nil {
					events = append(events, allocEvent{n.Pos(), n, evSink})
				} else if isBinaryReadCall(info, n) {
					events = append(events, allocEvent{n.Pos(), n, evRead})
				} else if isValidatorCall(obj) {
					events = append(events, allocEvent{n.Pos(), n, evValidate})
				}
			}
		case *ast.SliceExpr:
			if n.Max != nil {
				events = append(events, allocEvent{n.Pos(), n, evSink})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	tainted := make(map[types.Object]bool)
	for _, ev := range events {
		switch ev.kind {
		case evRead:
			// binary.Read(r, order, &x): x now holds raw wire bytes.
			call := ev.node.(*ast.CallExpr)
			if len(call.Args) == 3 {
				if un, ok := unparen(call.Args[2]).(*ast.UnaryExpr); ok && un.Op == token.AND {
					if obj := rootObject(info, un.X); obj != nil {
						tainted[obj] = true
					}
				}
			}
		case evAssign:
			as := ev.node.(*ast.AssignStmt)
			taintAssign(info, as, tainted)
		case evGuard:
			be := ev.node.(*ast.BinaryExpr)
			for _, obj := range referencedObjects(info, be) {
				delete(tainted, obj)
			}
		case evValidate:
			call := ev.node.(*ast.CallExpr)
			for _, obj := range validatedObjects(info, call) {
				delete(tainted, obj)
			}
		case evSink:
			reportAllocSink(pass, info, ev.node, tainted)
		}
	}
}

// isBinaryReadCall matches encoding/binary.Read.
func isBinaryReadCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	return obj != nil && obj.Name() == "Read" && isPkgPath(obj, "encoding/binary")
}

// isBinaryDecode matches the ByteOrder integer decodes
// (binary.LittleEndian.Uint32 and friends) whose results are raw wire
// values.
func isBinaryDecode(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	if obj == nil || !isPkgPath(obj, "encoding/binary") {
		return false
	}
	return strings.HasPrefix(obj.Name(), "Uint")
}

// isValidatorCall matches calls to named validators: a check/valid/
// verify/audit-prefixed function clears the taint of every value it
// receives (the NPCK `meta.checkMeta()` and NPSP `g.check()` idiom).
func isValidatorCall(obj types.Object) bool {
	name := strings.ToLower(obj.Name())
	for _, p := range []string{"check", "valid", "verify", "audit"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// validatedObjects returns the objects a validator call vouches for:
// its receiver and every argument (through & and conversions).
func validatedObjects(info *types.Info, call *ast.CallExpr) []types.Object {
	var objs []types.Object
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := rootObject(info, sel.X); obj != nil {
			objs = append(objs, obj)
		}
	}
	for _, a := range call.Args {
		e := unparen(a)
		if un, ok := e.(*ast.UnaryExpr); ok && un.Op == token.AND {
			e = un.X
		}
		if obj := rootObject(info, e); obj != nil {
			objs = append(objs, obj)
		}
	}
	return objs
}

// rootObject resolves an expression to the variable object at its root:
// x, x.f, x[i], int(x) all resolve to x.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr: // conversions like int(x)
			if len(x.Args) != 1 {
				return nil
			}
			e = x.Args[0]
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// referencedObjects collects every variable object mentioned anywhere in
// the expression subtree.
func referencedObjects(info *types.Info, e ast.Expr) []types.Object {
	var objs []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					objs = append(objs, obj)
				}
			}
		}
		return true
	})
	return objs
}

// exprTainted reports whether the expression subtree mentions a tainted
// object or a raw ByteOrder decode call, and names the source.
func exprTainted(info *types.Info, e ast.Expr, tainted map[types.Object]bool) (string, bool) {
	var name string
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && tainted[obj] {
				name, found = obj.Name(), true
				return false
			}
		case *ast.CallExpr:
			if isBinaryDecode(info, n) {
				name, found = "a raw binary decode", true
				return false
			}
		}
		return true
	})
	return name, found
}

// taintAssign propagates taint through an assignment: any LHS variable
// whose RHS mentions a still-unbounded wire value becomes tainted, and a
// rebind from clean values clears it.
func taintAssign(info *types.Info, as *ast.AssignStmt, tainted map[types.Object]bool) {
	// Positional match only when the counts line up (x, y := f() tuple
	// forms conservatively taint every target).
	for i, lhs := range as.Lhs {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		} else {
			continue
		}
		if _, dirty := exprTainted(info, rhs, tainted); dirty {
			tainted[obj] = true
		} else if len(as.Rhs) == len(as.Lhs) && as.Tok == token.ASSIGN {
			delete(tainted, obj) // clean rebind
		}
	}
}

// reportAllocSink flags make() sizes and full-slice capacities that
// mention a still-unbounded wire value.
func reportAllocSink(pass *Pass, info *types.Info, n ast.Node, tainted map[types.Object]bool) {
	switch n := n.(type) {
	case *ast.CallExpr: // make(T, len[, cap])
		for _, arg := range n.Args[1:] {
			if src, dirty := exprTainted(info, arg, tainted); dirty {
				pass.Reportf(arg.Pos(),
					"allocation sized by %s with no preceding bound check: a hostile frame buys an arbitrary allocation", src)
			}
		}
	case *ast.SliceExpr:
		if src, dirty := exprTainted(info, n.Max, tainted); dirty {
			pass.Reportf(n.Max.Pos(),
				"slice capacity from %s with no preceding bound check: a hostile frame buys an arbitrary allocation", src)
		}
	}
}
