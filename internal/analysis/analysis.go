// Package analysis is the repo's static-invariant suite: a minimal,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// driver model plus the eight npdplint analyzers that encode invariants
// the engines rely on but the compiler cannot check — atomic publication
// discipline in the lock-free scheduler and seal table, per-dispatch
// context checks in every cancellable engine, allocation-free hot-path
// kernels, never-dropped corruption/codec errors, bound-checked
// allocations from decoded wire fields, lifecycle-tied goroutine spawns,
// deadline-armed net.Conn I/O, and verify-before-trust ordering for
// sealed payloads and epoch fences.
//
// The container this repo builds in has no module proxy access, so the
// real x/tools module cannot be fetched; the Analyzer/Pass/Diagnostic
// types below mirror its API surface closely enough that the analyzers
// port to the upstream driver by changing one import when the dependency
// becomes available (see DESIGN.md §8).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -c selections, and
	// //nolint:npdplint(<name>) scopes. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description `npdplint -list` prints.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package to an Analyzer's Run, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report collects one diagnostic; installed by the driver.
	report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the npdplint analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicField, CtxDispatch, HotPath, ErrDrop,
		AllocBound, GoSpawn, NetDeadline, VerifyFirst,
	}
}

// ByName resolves a comma-selected analyzer name; nil if unknown.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
