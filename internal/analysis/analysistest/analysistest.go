// Package analysistest is a stdlib-only replica of
// golang.org/x/tools/go/analysis/analysistest, sized to what the
// npdplint suite needs: it loads a fixture package from a GOPATH-style
// testdata tree (testdata/src/<importPath>), runs one or more analyzers
// through the same RunAnalyzers path the real linter uses (including
// //nolint filtering), and checks the findings against `// want`
// expectations embedded in the fixture source:
//
//	x := makeThing() // want `escapes to heap`
//	y := other()     // want "first" "second"
//
// Each quoted string is a regexp that must match the message of exactly
// one finding reported on that line; findings with no matching want and
// wants with no matching finding both fail the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cellnpdp/internal/analysis"
	"cellnpdp/internal/analysis/driver"
)

// expectation is one `// want` pattern at a fixture line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRe splits a want comment into its quoted patterns; both Go-quoted
// and backquoted strings are accepted.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts expectations from every comment in the fixture.
func parseWants(pkg *driver.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					if idx = strings.Index(text, "/* want "); idx < 0 {
						continue
					}
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := text[idx+len("// want "):]
				for _, q := range wantRe.FindAllString(rest, -1) {
					pat, err := unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return out, nil
}

// unquote decodes one quoted want pattern.
func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}

// Run loads testdata/src/<importPath> rooted at srcRoot, applies the
// analyzers, and reports any mismatch between findings and `// want`
// expectations as test errors. It returns the findings for additional
// assertions.
func Run(t *testing.T, srcRoot string, analyzers []*analysis.Analyzer, importPath string) []analysis.Diagnostic {
	t.Helper()
	pkg, err := driver.LoadFixture(srcRoot, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := pkg.Run(analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", importPath, err)
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected finding [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
	return diags
}
