package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// VerifyFirst encodes "the digest IS the seal" as a dataflow rule: the
// payload of a decoded frame or record may not flow anywhere before its
// CRC32C check, and an epoch-carrying frame may not feed generation or
// install logic before its fence comparison. PR 7 put the discipline in
// by hand (executeDispatch re-digests every block before decodeCells;
// install() fences the epoch before it looks at the generation); PR 8's
// split-brain defense depends on the fence running first. This analyzer
// makes both orderings structural.
//
// A sealed record is any struct that pairs a uint32 CRC-named field
// with a []byte payload field (wireBlock, resilience.DeltaBlock). In
// every function (encoders exempted by name — serialization writes the
// seal, it does not trust it), a read of the payload field is rejected
// unless it is lexically preceded by a CRC check: an ==/!= comparison
// mentioning the record type's CRC field or a CRC-computing call
// (rawCRC, crc32.Checksum, hash/crc32 functions). len/cap of the
// payload and feeding it to the CRC computation itself are always
// allowed — sizing and digesting are how the check is built.
//
// An epoch-carrying frame is a struct with an Epoch field next to Gen
// or Blocks (taskMsg, resilience.Delta). Per variable: if the function
// fences it (compares its .Epoch), every read of its .Gen or .Blocks
// must come after the fence — install-before-fence is exactly the
// deposed-leader write PR 8 exists to reject. Functions that never
// fence a variable are exempt: they handle pre-fenced values their
// callers vetted (executeDispatch receives only fenced dispatches).
//
// Functions without bodies (assembly stubs) are skipped.
var VerifyFirst = &Analyzer{
	Name: "verifyfirst",
	Doc:  "decoded payloads may not flow before their CRC check; epoch frames may not feed gen/install logic before the fence",
	Run:  runVerifyFirst,
}

func runVerifyFirst(pass *Pass) error {
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue // assembly stubs and interface-less declarations
			}
			if isEncoderFunc(fd.Name.Name) {
				continue
			}
			checkSealedReads(pass, fd)
			checkEpochFence(pass, fd)
		}
	}
	return nil
}

// isEncoderFunc exempts serialization by name: encode/marshal/save
// functions construct records and write their seals.
func isEncoderFunc(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "encode") || strings.Contains(n, "marshal") || strings.HasPrefix(n, "save") || strings.HasPrefix(n, "write")
}

// sealedRecord describes a CRC-sealed payload struct.
type sealedRecord struct {
	crcField string
	rawField string
}

// sealedRecordType reports whether t (through pointers) is a sealed
// record: a struct pairing a uint32 *CRC* field with a []byte payload.
func sealedRecordType(t types.Type) (sealedRecord, bool) {
	n := namedType(t)
	if n == nil {
		return sealedRecord{}, false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return sealedRecord{}, false
	}
	var rec sealedRecord
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if b, ok := types.Unalias(fld.Type()).Underlying().(*types.Basic); ok && b.Kind() == types.Uint32 &&
			strings.Contains(strings.ToUpper(fld.Name()), "CRC") {
			rec.crcField = fld.Name()
		}
		if s, ok := types.Unalias(fld.Type()).Underlying().(*types.Slice); ok {
			if e, ok := s.Elem().Underlying().(*types.Basic); ok && e.Kind() == types.Byte {
				rec.rawField = fld.Name()
			}
		}
	}
	return rec, rec.crcField != "" && rec.rawField != ""
}

// isCRCCall matches CRC-computing callees: hash/crc32 functions and any
// function whose name names the digest (rawCRC, BlockCRC, Checksum).
func isCRCCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	if obj == nil {
		return false
	}
	if isPkgPath(obj, "hash/crc32") {
		return true
	}
	name := strings.ToLower(obj.Name())
	return strings.Contains(name, "crc") || strings.Contains(name, "checksum") || strings.Contains(name, "sum32")
}

// checkSealedReads flags payload reads that precede the function's
// first CRC check.
func checkSealedReads(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// First CRC-check position: an ==/!= comparison mentioning a sealed
	// type's CRC field or a CRC-computing call.
	checkPos := token.Pos(-1)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !comparisonIsCRCCheck(info, be) {
			return true
		}
		if checkPos == token.Pos(-1) || be.Pos() < checkPos {
			checkPos = be.Pos()
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		rec, ok := sealedRecordType(exprType(info, sel.X))
		if !ok || sel.Sel.Name != rec.rawField {
			return true
		}
		if sealedReadAllowed(pass, info, fd, sel) {
			return true
		}
		if checkPos != token.Pos(-1) && sel.Pos() > checkPos {
			return true // after the seal check
		}
		pass.Reportf(sel.Pos(),
			"%s read before its %s seal is verified: corrupt or hostile bytes flow into state; digest first (the digest IS the seal)",
			describeExpr(sel), rec.crcField)
		return true
	})
}

// comparisonIsCRCCheck reports whether either operand mentions a sealed
// record's CRC field or a CRC-computing call.
func comparisonIsCRCCheck(info *types.Info, be *ast.BinaryExpr) bool {
	found := false
	for _, op := range []ast.Expr{be.X, be.Y} {
		ast.Inspect(op, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if rec, ok := sealedRecordType(exprType(info, n.X)); ok && n.Sel.Name == rec.crcField {
					found = true
				}
			case *ast.CallExpr:
				if isCRCCall(info, n) {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// sealedReadAllowed permits the uses that build the check itself:
// len/cap sizing, feeding the CRC computation, and assignment targets
// (decoding writes the field; it does not read it).
func sealedReadAllowed(pass *Pass, info *types.Info, fd *ast.FuncDecl, sel *ast.SelectorExpr) bool {
	allowed := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if allowed {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if !containsNode(n, sel) {
				return true
			}
			if obj := calleeObject(info, n); obj != nil && obj.Pkg() == nil &&
				(obj.Name() == "len" || obj.Name() == "cap") {
				allowed = true
				return false
			}
			if isCRCCall(info, n) {
				allowed = true
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if unparen(lhs) == sel {
					allowed = true
					return false
				}
			}
		}
		return true
	})
	return allowed
}

// containsNode reports whether root's subtree contains target.
func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// epochFrameType reports whether t (through pointers) is an
// epoch-carrying frame with generation or block state: a struct with an
// Epoch field alongside Gen or Blocks.
func epochFrameType(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasEpoch, hasState := false, false
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "Epoch":
			hasEpoch = true
		case "Gen", "Blocks":
			hasState = true
		}
	}
	return hasEpoch && hasState
}

// checkEpochFence enforces fence-before-state per epoch-frame variable.
func checkEpochFence(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	type use struct {
		pos   token.Pos
		sel   *ast.SelectorExpr
		field string
	}
	fences := make(map[types.Object]token.Pos) // earliest v.Epoch comparison
	var stateUses []struct {
		obj types.Object
		use
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			default:
				return true
			}
			for _, op := range []ast.Expr{n.X, n.Y} {
				ast.Inspect(op, func(m ast.Node) bool {
					sel, ok := m.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Epoch" || !epochFrameType(exprType(info, sel.X)) {
						return true
					}
					obj := rootObject(info, sel.X)
					if obj == nil {
						return true
					}
					if p, ok := fences[obj]; !ok || n.Pos() < p {
						fences[obj] = n.Pos()
					}
					return true
				})
			}
		case *ast.SelectorExpr:
			if n.Sel.Name != "Gen" && n.Sel.Name != "Blocks" {
				return true
			}
			if !epochFrameType(exprType(info, n.X)) {
				return true
			}
			if obj := rootObject(info, n.X); obj != nil {
				stateUses = append(stateUses, struct {
					obj types.Object
					use
				}{obj, use{n.Pos(), n, n.Sel.Name}})
			}
		}
		return true
	})

	sort.Slice(stateUses, func(i, j int) bool { return stateUses[i].pos < stateUses[j].pos })
	for _, su := range stateUses {
		fencePos, fenced := fences[su.obj]
		if !fenced {
			continue // pre-fenced by the caller; this function never fences
		}
		if su.pos > fencePos {
			continue
		}
		pass.Reportf(su.pos,
			"%s read before the frame's epoch fence: a deposed leader's %s would reach generation/install logic; fence first",
			describeExpr(su.sel), su.field)
	}
}
