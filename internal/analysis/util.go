package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// parentMap records each AST node's parent so analyzers can classify an
// expression by the context it appears in (LHS of an assignment,
// operand of &, receiver of a method call, ...).
type parentMap map[ast.Node]ast.Node

// buildParents indexes parent links for every node in the files. The
// root *ast.File has no entry, so climbing terminates at a nil parent
// instead of cycling on the root.
func buildParents(files []*ast.File) parentMap {
	parents := make(parentMap)
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return parents
}

// parentSkipParens climbs to the nearest non-paren ancestor.
func (p parentMap) parentSkipParens(n ast.Node) ast.Node {
	for {
		par := p[n]
		if _, ok := par.(*ast.ParenExpr); !ok {
			return par
		}
		n = par
	}
}

// enclosingFunc returns the FuncDecl lexically containing n, if any.
func (p parentMap) enclosingFunc(n ast.Node) *ast.FuncDecl {
	for cur := p[n]; cur != nil; cur = p[cur] {
		if fd, ok := cur.(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// inTestFile reports whether pos lies in a _test.go file.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// unparen strips parentheses from an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeObject resolves a call expression's static callee: a function,
// method, builtin, or func-typed variable object; nil for conversions
// and unresolvable callees.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // package-qualified call
	case *ast.IndexExpr: // explicit generic instantiation F[T](...)
		return calleeObject(info, &ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr:
		return calleeObject(info, &ast.CallExpr{Fun: fun.X})
	}
	return nil
}

// isPkgPath reports whether obj is declared in a package whose import
// path is path or ends with "/"+path (so fixture packages named by a
// bare path match the same rules as the real module packages).
func isPkgPath(obj types.Object, path string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == path || strings.HasSuffix(p, "/"+path)
}

// namedType unwraps e's type to *types.Named (through pointers and
// aliases); nil otherwise.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isAtomicType reports whether t is one of sync/atomic's typed values
// (atomic.Bool, atomic.Int64, atomic.Pointer[T], atomic.Value, ...).
func isAtomicType(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicElem returns the atomic element type when t is a slice or array
// of atomic values, nil otherwise.
func atomicElem(t types.Type) types.Type {
	switch tt := types.Unalias(t).(type) {
	case *types.Slice:
		if isAtomicType(tt.Elem()) {
			return tt.Elem()
		}
	case *types.Array:
		if isAtomicType(tt.Elem()) {
			return tt.Elem()
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isDirective reports whether the raw comment text is the given
// //-directive: the marker must be the whole comment or followed by a
// space, so prose that merely mentions a directive never matches.
func isDirective(text, marker string) bool {
	if !strings.HasPrefix(text, "//"+marker) {
		return false
	}
	rest := text[len("//"+marker):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// docHasDirective reports whether any line of a doc comment group is
// the given directive.
func docHasDirective(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if isDirective(c.Text, marker) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isNetConnType reports whether t (through pointers) is net.Conn or one
// of the net package's concrete connection types — the values whose
// blocking Read/Write the netdeadline analyzer polices.
func isNetConnType(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net" {
		return false
	}
	switch obj.Name() {
	case "Conn", "TCPConn", "UDPConn", "UnixConn", "IPConn":
		return true
	}
	return false
}

// isDeadlineBlindReaderWriter reports whether t is an interface that
// exposes stream I/O (a Read or Write method) but no Set*Deadline —
// io.Reader/io.Writer shaped. Handing a raw net.Conn to such a
// parameter strips the callee of any way to bound the blocking call.
func isDeadlineBlindReaderWriter(t types.Type) bool {
	iface, ok := types.Unalias(t).Underlying().(*types.Interface)
	if !ok {
		return false
	}
	hasIO := false
	for i := 0; i < iface.NumMethods(); i++ {
		switch name := iface.Method(i).Name(); name {
		case "Read", "Write":
			hasIO = true
		case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
			return false
		}
	}
	return hasIO
}

// isWaitGroupType reports whether t (through pointers) is
// sync.WaitGroup.
func isWaitGroupType(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Chan)
	return ok
}

// isCancelFuncType reports whether t is context.CancelFunc (calling it
// is a lifecycle action in its own right).
func isCancelFuncType(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	return n.Obj().Name() == "CancelFunc" && isPkgPath(n.Obj(), "context")
}
