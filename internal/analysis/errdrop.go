package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDrop guards the fault-evidence error contract: a
// *resilience.CorruptionError is the only evidence a silent fault ever
// leaves behind, a *resilience.PanicError carries the one stack trace
// of a dead task, a *resilience.ErrSealMismatch identifies the one
// boundary block whose bytes failed their CRC32C seal in transit, a
// *cluster.ErrEpochFenced is the sole proof a deposed leader's write
// was rejected after failover, a *cluster.ErrProtocolVersion is the
// difference between refusing a wire-incompatible peer and silently
// mis-framing it, a *pager.ErrPageCorrupt names the one spilled block
// whose bytes came back wrong from disk, a *pager.ErrSpillSpace is the
// only record that an out-of-core solve hit its hard residency wall,
// and a checkpoint/seal codec error is the difference between refusing
// a corrupt snapshot and silently resuming bad state. None of them may
// be discarded.
//
// Watched calls are (a) any function or method declared in the
// resilience package whose results include an error, and (b) any
// function returning a //npdplint:watch-annotated type directly (the
// directive sits in the type declaration's doc comment, so a new typed
// error is watched the moment it is declared — see watch.go). For a
// watched call the analyzer rejects:
//
//   - calling it as a bare statement, or under go/defer, so the error
//     vanishes;
//   - assigning the error result to the blank identifier;
//   - the checked-but-dropped pattern: binding the error to a variable
//     that is only ever compared against nil and never returned,
//     wrapped, passed on, or otherwise consumed.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "resilience corruption/panic/codec errors must never be discarded or dropped after a nil check",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) error {
	fset := pass.Fset
	info := pass.TypesInfo
	parents := buildParents(pass.Files)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(n.X).(*ast.CallExpr); ok {
					if name, ok := watchedCall(fset, info, call); ok {
						pass.Reportf(n.Pos(), "%s's error discarded: the call's result is the only record of the fault", name)
					}
				}
			case *ast.GoStmt:
				if name, ok := watchedCall(fset, info, n.Call); ok {
					pass.Reportf(n.Pos(), "%s's error discarded by go statement", name)
				}
			case *ast.DeferStmt:
				if name, ok := watchedCall(fset, info, n.Call); ok {
					pass.Reportf(n.Pos(), "%s's error discarded by defer; capture it into a named return instead", name)
				}
			case *ast.AssignStmt:
				checkErrDropAssign(pass, fset, info, parents, n)
			}
			return true
		})
	}
	return nil
}

// watchedCall reports whether call targets a watched error source, and
// the callee's name for diagnostics. A call is watched when its callee
// is declared in the resilience package and returns an error, or when
// any of its results is *CorruptionError / *PanicError.
func watchedCall(fset *token.FileSet, info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if errResultIndex(fset, sig) < 0 {
		return "", false
	}
	if isPkgPath(fn, "resilience") {
		return fn.Name(), true
	}
	// Functions elsewhere that mint the watched error types directly
	// (e.g. the npdp healer's corruption constructor).
	for i := 0; i < sig.Results().Len(); i++ {
		if isWatchedErrType(fset, sig.Results().At(i).Type()) {
			return fn.Name(), true
		}
	}
	return "", false
}

// errResultIndex returns the index of the last error-like result, -1 if
// none.
func errResultIndex(fset *token.FileSet, sig *types.Signature) int {
	for i := sig.Results().Len() - 1; i >= 0; i-- {
		t := sig.Results().At(i).Type()
		if isErrorType(t) || isWatchedErrType(fset, t) {
			return i
		}
	}
	return -1
}

// isWatchedErrType reports whether t (through pointers and aliases) is
// a //npdplint:watch-annotated named type. The watch list lives on the
// type declarations themselves (watch.go), so new typed errors in the
// cluster/pager/resilience packages cannot silently escape the
// analyzer.
func isWatchedErrType(fset *token.FileSet, t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	return typeHasWatchDirective(fset, n.Obj())
}

// checkErrDropAssign flags blank-discarded and checked-but-dropped
// error bindings from watched calls.
func checkErrDropAssign(pass *Pass, fset *token.FileSet, info *types.Info, parents parentMap, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := watchedCall(fset, info, call)
	if !ok {
		return
	}
	// Locate the error position among the LHS: multi-value assignments
	// map results positionally; single-value assignments bind result 0.
	obj := calleeObject(info, call)
	sig := obj.(*types.Func).Type().(*types.Signature)
	idx := errResultIndex(fset, sig)
	if idx >= len(as.Lhs) {
		return // tuple mismatch; the compiler rejects it anyway
	}
	lhs := as.Lhs[idx]
	if sig.Results().Len() == 1 {
		lhs = as.Lhs[0]
	}
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		pass.Reportf(id.Pos(), "%s's error assigned to _: a corruption or codec failure would vanish", name)
		return
	}
	// Checked-but-dropped: the bound error is only ever compared to nil.
	errObj := info.Defs[id]
	if errObj == nil {
		errObj = info.Uses[id] // plain `=` rebind of an existing variable
	}
	if errObj == nil {
		return
	}
	fd := parents.enclosingFunc(as)
	if fd == nil || fd.Body == nil {
		return
	}
	consumed, compared := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || use == id || info.Uses[use] != errObj {
			return true
		}
		if isNilComparison(parents, use) {
			compared = true
			return true
		}
		consumed = true
		return false
	})
	if compared && !consumed {
		pass.Reportf(id.Pos(), "%s's error is nil-checked but never consumed: return it, wrap it, or record it", name)
	}
}

// isNilComparison reports whether the identifier use is an operand of
// an ==/!= comparison against nil.
func isNilComparison(parents parentMap, id *ast.Ident) bool {
	be, ok := parents.parentSkipParens(id).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return false
	}
	other := be.Y
	if unparen(be.Y) == id {
		other = be.X
	}
	o, ok := unparen(other).(*ast.Ident)
	return ok && o.Name == "nil"
}
