package codegen

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCategorize(t *testing.T) {
	cases := []struct{ msg, want string }{
		{"Found IsInBounds", "bounds-check"},
		{"Found IsSliceInBounds", "slice-bounds-check"},
		{"make([]float32, n) escapes to heap", "heap-escape"},
		{"moved to heap: leak", "heap-escape"},
		{"c does not escape", ""}, // must win over the "escapes to heap" substring test
		{"inlining call to panelStats", ""},
		{"can inline Step4x4", ""},
	}
	for _, c := range cases {
		if got := categorize(c.msg); got != c.want {
			t.Errorf("categorize(%q) = %q, want %q", c.msg, got, c.want)
		}
	}
}

const cannedBuild = `# cellnpdp/internal/kernel
panel.go:30:12: Found IsSliceInBounds
panel.go:31:12: Found IsSliceInBounds
panel.go:46:14: Found IsInBounds
panel.go:200:5: Found IsInBounds
kernel.go:55:9: Found IsSliceInBounds
kernel.go:60:3: make([]float32, n) escapes to heap
other.go:10:2: Found IsInBounds
kernel.go:54:7: c does not escape
not a diagnostic line
`

func cannedRanges() []FuncRange {
	return []FuncRange{
		{File: "panel.go", Name: "PanelMinPlus", Start: 28, End: 77},
		{File: "kernel.go", Name: "Step4x4", Start: 53, End: 76},
	}
}

func TestExtract(t *testing.T) {
	recs := Extract(cannedBuild, cannedRanges())
	want := []Record{
		{Func: "PanelMinPlus", Category: "bounds-check", Count: 1},
		{Func: "PanelMinPlus", Category: "slice-bounds-check", Count: 2},
		{Func: "Step4x4", Category: "heap-escape", Count: 1},
		{Func: "Step4x4", Category: "slice-bounds-check", Count: 1},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records %v, want %d", len(recs), recs, len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	recs := Extract(cannedBuild, cannedRanges())
	back, err := ParseBaseline(Format(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip lost records: %d → %d", len(recs), len(back))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Errorf("round trip record %d = %+v, want %+v", i, back[i], recs[i])
		}
	}
}

func TestBaselineFileSectionsRoundTrip(t *testing.T) {
	sections := map[string][]Record{
		"amd64": {
			{Func: "PanelMinPlusF32", Category: "slice-bounds-check", Count: 24},
			{Func: "MulMinPlus", Category: "slice-bounds-check", Count: 6},
		},
		"arm64": {
			{Func: "MulMinPlus", Category: "slice-bounds-check", Count: 5},
		},
	}
	body := FormatBaseline(sections)
	back, err := ParseBaselineFile(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || len(back["amd64"]) != 2 || len(back["arm64"]) != 1 {
		t.Fatalf("round trip sections %+v", back)
	}
	// FormatBaseline sorts rows; the parsed amd64 section must lead with
	// MulMinPlus.
	if back["amd64"][0].Func != "MulMinPlus" {
		t.Fatalf("amd64 rows not sorted: %+v", back["amd64"])
	}
	// Legacy flat bodies land under the "" key.
	legacy, err := ParseBaselineFile("MulMinPlus\tslice-bounds-check\t6\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy[""]) != 1 {
		t.Fatalf("legacy flat rows lost: %+v", legacy)
	}
	// Section garbage is rejected.
	if _, err := ParseBaselineFile("[]\nMulMinPlus\tslice-bounds-check\t6\n"); err == nil {
		t.Error("empty section header accepted")
	}
	if _, err := ParseBaselineFile("[amd64]\nshort\tline\n"); err == nil {
		t.Error("short row accepted")
	}
}

func TestParseBaselineRejectsGarbage(t *testing.T) {
	if _, err := ParseBaseline("Func\tbounds-check\tnot-a-number\n"); err == nil {
		t.Error("bad count should fail")
	}
	if _, err := ParseBaseline("only-two\tfields\n"); err == nil {
		t.Error("short line should fail")
	}
}

func TestCompare(t *testing.T) {
	base := []Record{
		{Func: "A", Category: "bounds-check", Count: 2},
		{Func: "B", Category: "heap-escape", Count: 1},
	}
	cur := []Record{
		{Func: "A", Category: "bounds-check", Count: 3},       // regression: count up
		{Func: "A", Category: "slice-bounds-check", Count: 1}, // regression: new key
	}
	reg, imp := Compare(cur, base)
	if len(reg) != 2 {
		t.Errorf("want 2 regressions, got %v", reg)
	}
	if len(imp) != 1 || !strings.Contains(imp[0], "B") {
		t.Errorf("want B's vanished record as the improvement, got %v", imp)
	}
	if reg2, _ := Compare(base, base); len(reg2) != 0 {
		t.Errorf("identical records must not regress: %v", reg2)
	}
}

// TestGateCatchesSeededAllocation runs the real gate end to end on a
// throwaway module: an annotated function that allocates must fail
// against an empty baseline, and -update followed by a re-run must pass.
func TestGateCatchesSeededAllocation(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a module with -a")
	}
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module probe\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "probe.go"), `package probe

// leaky allocates on purpose.
//
//npdp:hotpath
func leaky(n int) []int {
	return make([]int, n)
}

var _ = leaky
`)
	baseline := filepath.Join(dir, "baseline.txt")
	writeFile(t, baseline, "# empty baseline\n")
	t.Chdir(dir)

	err := Gate(".", baseline, "", false, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("gate must fail on the seeded allocation, got %v", err)
	}
	if err := Gate(".", baseline, "", true, io.Discard); err != nil {
		t.Fatalf("baseline update failed: %v", err)
	}
	if err := Gate(".", baseline, "", false, io.Discard); err != nil {
		t.Fatalf("gate must pass against the refreshed baseline, got %v", err)
	}
}

// TestGateRefusesZeroDiagnostics guards the second vacuous-pass hazard:
// annotated functions whose compiled bodies emit nothing to check (the
// shape an assembly replacement leaves behind).
func TestGateRefusesZeroDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a module with -a")
	}
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module hollow\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "hollow.go"), `package hollow

// hollow has nothing for the gate to count.
//
//npdp:hotpath
func hollow() {}

var _ = hollow
`)
	t.Chdir(dir)
	err := Gate(".", filepath.Join(dir, "baseline.txt"), "", false, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "0 diagnostics") {
		t.Fatalf("gate must refuse a package with zero extracted diagnostics, got %v", err)
	}
}

// TestGateRefusesUnannotatedPackage guards the vacuous-pass hazard.
func TestGateRefusesUnannotatedPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module bare\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "bare.go"), "package bare\n\nfunc ok() {}\n\nvar _ = ok\n")
	t.Chdir(dir)
	err := Gate(".", filepath.Join(dir, "baseline.txt"), "", false, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "vacuously") {
		t.Fatalf("gate must refuse a package with no annotations, got %v", err)
	}
}

// TestBaselineMatchesKernels is the satellite check that the committed
// baseline reflects the current kernels on every checked GOARCH: the
// same comparison CI runs, so a kernel edit that changes codegen cannot
// land without refreshing scripts/codegen_baseline.txt. The arm64 run
// cross-compiles — only the compiler and assembler are invoked.
func TestBaselineMatchesKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles internal/kernel with -a")
	}
	baseline := filepath.Join("..", "..", "..", "scripts", "codegen_baseline.txt")
	for _, goarch := range []string{"amd64", "arm64"} {
		if err := Gate("cellnpdp/internal/kernel", baseline, goarch, false, io.Discard); err != nil {
			t.Fatalf("committed baseline does not match current kernels on %s: %v", goarch, err)
		}
	}
}

func writeFile(t *testing.T, path, body string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}
