// Package codegen implements the hot-path codegen regression gate: the
// compiler-output half of the //npdp:hotpath invariant. The syntactic
// analyzer (internal/analysis.HotPath) can ban `make` and interface
// dispatch, but only the compiler knows whether a value escapes to the
// heap or a bounds check survived in the panel kernels' inner loops —
// the Go analogue of keeping the paper's Table I SPE kernel at 80
// instructions. The gate builds the kernel package with
//
//	go build -a -gcflags='-m -d=ssa/check_bce/debug=1'
//
// (-a defeats the build cache, which does not replay compiler
// diagnostics), buckets every escape/bounds-check diagnostic that lands
// inside an annotated function into normalized per-function category
// counts, and diffs them against a checked-in golden baseline. Any new
// category or increased count fails the gate; decreases are advisory
// (refresh the baseline with -update).
package codegen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// gcflags are the diagnostic flags the gate compiles with: escape
// analysis (-m) plus bounds-check elimination reporting.
const gcflags = "-m -d=ssa/check_bce/debug=1"

// hotpathMarker matches internal/analysis.hotpathMarker.
const hotpathMarker = "npdp:hotpath"

// docHasHotpath reports whether a doc comment group contains the
// //npdp:hotpath directive as a whole comment line (prose that merely
// mentions the marker does not count), matching the analyzer's rule.
func docHasHotpath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+hotpathMarker)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

// Record is one normalized gate entry: how many diagnostics of one
// category the compiler emitted inside one annotated function. Line
// numbers are deliberately normalized away so unrelated edits above a
// kernel do not churn the baseline.
type Record struct {
	Func     string // annotated function name
	Category string // heap-escape | bounds-check | slice-bounds-check
	Count    int
}

// Key identifies a record in baseline comparisons.
func (r Record) Key() string { return r.Func + "\t" + r.Category }

// FuncRange is the source extent of one annotated function.
type FuncRange struct {
	File       string // base name, e.g. "panel.go"
	Name       string
	Start, End int // 1-based line range, inclusive
}

// HotpathRanges parses the package sources and returns the extents of
// every //npdp:hotpath-annotated function.
func HotpathRanges(dir string, goFiles []string) ([]FuncRange, error) {
	fset := token.NewFileSet()
	var out []FuncRange
	for _, name := range goFiles {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !docHasHotpath(fd.Doc) {
				continue
			}
			out = append(out, FuncRange{
				File:  name,
				Name:  fd.Name.Name,
				Start: fset.Position(fd.Pos()).Line,
				End:   fset.Position(fd.End()).Line,
			})
		}
	}
	return out, nil
}

// diagRe matches one compiler diagnostic: path/file.go:line:col: message.
var diagRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*)$`)

// categorize maps a compiler diagnostic message to a gate category;
// empty for messages the gate ignores (inlining decisions, parameters
// that do not escape, ...).
func categorize(msg string) string {
	switch {
	case strings.Contains(msg, "Found IsSliceInBounds"):
		return "slice-bounds-check"
	case strings.Contains(msg, "Found IsInBounds"):
		return "bounds-check"
	case strings.Contains(msg, "does not escape"):
		return ""
	case strings.Contains(msg, "escapes to heap"), strings.Contains(msg, "moved to heap"):
		return "heap-escape"
	}
	return ""
}

// Extract buckets compiler diagnostics into per-function category
// counts, keeping only those inside an annotated range.
func Extract(buildOutput string, ranges []FuncRange) []Record {
	counts := make(map[string]*Record)
	sc := bufio.NewScanner(strings.NewReader(buildOutput))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := diagRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		cat := categorize(m[3])
		if cat == "" {
			continue
		}
		file := filepath.Base(m[1])
		line, _ := strconv.Atoi(m[2])
		for i := range ranges {
			r := &ranges[i]
			if r.File != file || line < r.Start || line > r.End {
				continue
			}
			key := r.Name + "\t" + cat
			if rec, ok := counts[key]; ok {
				rec.Count++
			} else {
				counts[key] = &Record{Func: r.Name, Category: cat, Count: 1}
			}
			break
		}
	}
	out := make([]Record, 0, len(counts))
	for _, r := range counts {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// BuildDiagnostics compiles pkg for goarch ("" = host) with the gate's
// gcflags and returns the compiler's diagnostic stream. -a forces real
// recompilation: the build cache does not replay compiler stderr, so a
// cached hit would otherwise read as "zero diagnostics" and defeat the
// gate. Cross-GOARCH runs only invoke the compiler and assembler, so
// the gate can check the arm64 kernels from an amd64 box and vice
// versa.
func BuildDiagnostics(pkg, goarch string) (string, error) {
	cmd := exec.Command("go", "build", "-a", "-gcflags="+gcflags, pkg)
	cmd.Env = archEnv(goarch)
	var out strings.Builder
	cmd.Stderr = &out
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build %s (GOARCH=%s): %v\n%s", pkg, goarch, err, out.String())
	}
	return out.String(), nil
}

// archEnv is the process environment with GOARCH pinned (host arch for
// ""). CGO is forced off so cross builds never depend on a foreign C
// toolchain.
func archEnv(goarch string) []string {
	env := os.Environ()
	if goarch != "" {
		env = append(env, "GOARCH="+goarch, "CGO_ENABLED=0")
	}
	return env
}

// Format renders one GOARCH's records as flat baseline rows (no section
// header) — the single-section helper FormatBaseline builds on.
func Format(records []Record) string {
	var b strings.Builder
	for _, r := range records {
		fmt.Fprintf(&b, "%s\t%s\t%d\n", r.Func, r.Category, r.Count)
	}
	return b.String()
}

// FormatBaseline renders the full per-GOARCH baseline file body. The
// kernel package compiles differently per architecture (panel_amd64.go
// vs panel_arm64.go vs panel_noasm.go, and the arm64 backend's own BCE
// decisions), so each checked GOARCH gets its own section.
func FormatBaseline(sections map[string][]Record) string {
	var b strings.Builder
	b.WriteString("# npdplint codegen gate baseline: per-hotpath-function compiler\n")
	b.WriteString("# diagnostic counts (escape analysis + bounds checks), normalized,\n")
	b.WriteString("# one [GOARCH] section per checked architecture. Regenerate with:\n")
	b.WriteString("#   go run ./cmd/npdplint -codegen -update [-goarch arch]\n")
	arches := make([]string, 0, len(sections))
	for a := range sections {
		arches = append(arches, a)
	}
	sort.Strings(arches)
	for _, a := range arches {
		recs := append([]Record(nil), sections[a]...)
		sort.Slice(recs, func(i, j int) bool { return recs[i].Key() < recs[j].Key() })
		fmt.Fprintf(&b, "[%s]\n", a)
		b.WriteString(Format(recs))
	}
	return b.String()
}

// ParseBaseline reads flat baseline rows back into records. Section
// headers are rejected here; ParseBaselineFile handles full files.
func ParseBaseline(s string) ([]Record, error) {
	var out []Record
	for i, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %d: want 'func\\tcategory\\tcount', got %q", i+1, line)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("baseline line %d: bad count %q", i+1, parts[2])
		}
		out = append(out, Record{Func: parts[0], Category: parts[1], Count: n})
	}
	return out, nil
}

// ParseBaselineFile reads a sectioned baseline body into per-GOARCH
// record lists. Rows before the first [GOARCH] header — the legacy flat
// format — land under the "" key.
func ParseBaselineFile(s string) (map[string][]Record, error) {
	sections := make(map[string][]Record)
	cur := ""
	for i, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]") {
			cur = strings.TrimSuffix(strings.TrimPrefix(line, "["), "]")
			if cur == "" {
				return nil, fmt.Errorf("baseline line %d: empty [GOARCH] section", i+1)
			}
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %d: want 'func\\tcategory\\tcount', got %q", i+1, line)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("baseline line %d: bad count %q", i+1, parts[2])
		}
		sections[cur] = append(sections[cur], Record{Func: parts[0], Category: parts[1], Count: n})
	}
	if len(sections[""]) == 0 {
		delete(sections, "")
	}
	return sections, nil
}

// Compare diffs current records against the baseline. Regressions (new
// key or increased count) fail the gate; improvements (decreased or
// vanished counts) are advisory.
func Compare(current, baseline []Record) (regressions, improvements []string) {
	base := make(map[string]int, len(baseline))
	for _, r := range baseline {
		base[r.Key()] = r.Count
	}
	cur := make(map[string]int, len(current))
	for _, r := range current {
		cur[r.Key()] = r.Count
		want, ok := base[r.Key()]
		switch {
		case !ok:
			regressions = append(regressions, fmt.Sprintf("%s: NEW %s ×%d", r.Func, r.Category, r.Count))
		case r.Count > want:
			regressions = append(regressions, fmt.Sprintf("%s: %s %d → %d", r.Func, r.Category, want, r.Count))
		case r.Count < want:
			improvements = append(improvements, fmt.Sprintf("%s: %s %d → %d", r.Func, r.Category, want, r.Count))
		}
	}
	for _, r := range baseline {
		if _, ok := cur[r.Key()]; !ok {
			improvements = append(improvements, fmt.Sprintf("%s: %s %d → 0", r.Func, r.Category, r.Count))
		}
	}
	sort.Strings(regressions)
	sort.Strings(improvements)
	return regressions, improvements
}

// resolvePackage asks the go tool for pkg's directory and file list
// under goarch's build constraints (panel_amd64.go vs panel_arm64.go vs
// panel_noasm.go select differently per arch).
func resolvePackage(pkg, goarch string) (dir string, goFiles []string, err error) {
	cmd := exec.Command("go", "list", "-json=Dir,GoFiles", pkg)
	cmd.Env = archEnv(goarch)
	out, err := cmd.Output()
	if err != nil {
		return "", nil, fmt.Errorf("go list %s: %v", pkg, err)
	}
	var p struct {
		Dir     string
		GoFiles []string
	}
	if err := json.Unmarshal(out, &p); err != nil {
		return "", nil, fmt.Errorf("go list %s: %v", pkg, err)
	}
	if p.Dir == "" || len(p.GoFiles) == 0 {
		return "", nil, fmt.Errorf("go list %s: no Go files", pkg)
	}
	return p.Dir, p.GoFiles, nil
}

// Gate runs the full regression gate for pkg on goarch ("" = host)
// against baselinePath, writing a human-readable report to w. With
// update true it rewrites goarch's section of the baseline (other
// sections are preserved) instead of comparing. A non-nil error means
// the gate failed (regression found, no annotations, zero extracted
// diagnostics, or tooling failure).
func Gate(pkg, baselinePath, goarch string, update bool, w io.Writer) error {
	if goarch == "" {
		goarch = runtime.GOARCH
	}
	dir, goFiles, err := resolvePackage(pkg, goarch)
	if err != nil {
		return err
	}
	ranges, err := HotpathRanges(dir, goFiles)
	if err != nil {
		return err
	}
	if len(ranges) == 0 {
		return fmt.Errorf("no //npdp:hotpath functions in %s (GOARCH=%s): the gate would vacuously pass", pkg, goarch)
	}
	buildOut, err := BuildDiagnostics(pkg, goarch)
	if err != nil {
		return err
	}
	current := Extract(buildOut, ranges)
	// The second vacuous-pass hazard: assembly stubs replacing the Go
	// kernel bodies. The hotpath annotations survive on the dispatchers,
	// but if no compiled Go body emits a single diagnostic, "clean" means
	// "nothing was checked" — require the codegen probes to keep the
	// fallback bodies materialized in-package.
	if len(current) == 0 {
		return fmt.Errorf("0 diagnostics extracted from %d hotpath functions in %s (GOARCH=%s): "+
			"the gate would vacuously pass — keep the pure-Go kernel bodies reachable from a codegen probe",
			len(ranges), pkg, goarch)
	}
	sections := make(map[string][]Record)
	if baseBody, rerr := os.ReadFile(baselinePath); rerr == nil {
		if sections, err = ParseBaselineFile(string(baseBody)); err != nil {
			return err
		}
	} else if !update {
		return fmt.Errorf("reading baseline (run with -update to create it): %w", rerr)
	}
	if update {
		sections[goarch] = current
		delete(sections, "") // migrate away the legacy flat section
		if err := os.WriteFile(baselinePath, []byte(FormatBaseline(sections)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "codegen gate: [%s] baseline updated (%d records across %d hotpath functions)\n", goarch, len(current), len(ranges))
		return nil
	}
	baseline, ok := sections[goarch]
	if !ok {
		// Legacy flat baselines apply to whatever arch they were made on;
		// an absent section otherwise compares against empty, so every
		// current record reads as a regression — fail-safe, never vacuous.
		baseline = sections[""]
	}
	regressions, improvements := Compare(current, baseline)
	for _, s := range improvements {
		fmt.Fprintf(w, "codegen gate: [%s] improved: %s (refresh baseline with -update)\n", goarch, s)
	}
	if len(regressions) > 0 {
		for _, s := range regressions {
			fmt.Fprintf(w, "codegen gate: [%s] REGRESSION: %s\n", goarch, s)
		}
		return fmt.Errorf("%d hot-path codegen regression(s) on %s: a new allocation or bounds check landed in an //npdp:hotpath kernel", len(regressions), goarch)
	}
	fmt.Fprintf(w, "codegen gate: [%s] clean (%d records across %d hotpath functions match baseline)\n", goarch, len(current), len(ranges))
	return nil
}
