// Package codegen implements the hot-path codegen regression gate: the
// compiler-output half of the //npdp:hotpath invariant. The syntactic
// analyzer (internal/analysis.HotPath) can ban `make` and interface
// dispatch, but only the compiler knows whether a value escapes to the
// heap or a bounds check survived in the panel kernels' inner loops —
// the Go analogue of keeping the paper's Table I SPE kernel at 80
// instructions. The gate builds the kernel package with
//
//	go build -a -gcflags='-m -d=ssa/check_bce/debug=1'
//
// (-a defeats the build cache, which does not replay compiler
// diagnostics), buckets every escape/bounds-check diagnostic that lands
// inside an annotated function into normalized per-function category
// counts, and diffs them against a checked-in golden baseline. Any new
// category or increased count fails the gate; decreases are advisory
// (refresh the baseline with -update).
package codegen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// gcflags are the diagnostic flags the gate compiles with: escape
// analysis (-m) plus bounds-check elimination reporting.
const gcflags = "-m -d=ssa/check_bce/debug=1"

// hotpathMarker matches internal/analysis.hotpathMarker.
const hotpathMarker = "npdp:hotpath"

// docHasHotpath reports whether a doc comment group contains the
// //npdp:hotpath directive as a whole comment line (prose that merely
// mentions the marker does not count), matching the analyzer's rule.
func docHasHotpath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+hotpathMarker)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

// Record is one normalized gate entry: how many diagnostics of one
// category the compiler emitted inside one annotated function. Line
// numbers are deliberately normalized away so unrelated edits above a
// kernel do not churn the baseline.
type Record struct {
	Func     string // annotated function name
	Category string // heap-escape | bounds-check | slice-bounds-check
	Count    int
}

// Key identifies a record in baseline comparisons.
func (r Record) Key() string { return r.Func + "\t" + r.Category }

// FuncRange is the source extent of one annotated function.
type FuncRange struct {
	File       string // base name, e.g. "panel.go"
	Name       string
	Start, End int // 1-based line range, inclusive
}

// HotpathRanges parses the package sources and returns the extents of
// every //npdp:hotpath-annotated function.
func HotpathRanges(dir string, goFiles []string) ([]FuncRange, error) {
	fset := token.NewFileSet()
	var out []FuncRange
	for _, name := range goFiles {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !docHasHotpath(fd.Doc) {
				continue
			}
			out = append(out, FuncRange{
				File:  name,
				Name:  fd.Name.Name,
				Start: fset.Position(fd.Pos()).Line,
				End:   fset.Position(fd.End()).Line,
			})
		}
	}
	return out, nil
}

// diagRe matches one compiler diagnostic: path/file.go:line:col: message.
var diagRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*)$`)

// categorize maps a compiler diagnostic message to a gate category;
// empty for messages the gate ignores (inlining decisions, parameters
// that do not escape, ...).
func categorize(msg string) string {
	switch {
	case strings.Contains(msg, "Found IsSliceInBounds"):
		return "slice-bounds-check"
	case strings.Contains(msg, "Found IsInBounds"):
		return "bounds-check"
	case strings.Contains(msg, "does not escape"):
		return ""
	case strings.Contains(msg, "escapes to heap"), strings.Contains(msg, "moved to heap"):
		return "heap-escape"
	}
	return ""
}

// Extract buckets compiler diagnostics into per-function category
// counts, keeping only those inside an annotated range.
func Extract(buildOutput string, ranges []FuncRange) []Record {
	counts := make(map[string]*Record)
	sc := bufio.NewScanner(strings.NewReader(buildOutput))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := diagRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		cat := categorize(m[3])
		if cat == "" {
			continue
		}
		file := filepath.Base(m[1])
		line, _ := strconv.Atoi(m[2])
		for i := range ranges {
			r := &ranges[i]
			if r.File != file || line < r.Start || line > r.End {
				continue
			}
			key := r.Name + "\t" + cat
			if rec, ok := counts[key]; ok {
				rec.Count++
			} else {
				counts[key] = &Record{Func: r.Name, Category: cat, Count: 1}
			}
			break
		}
	}
	out := make([]Record, 0, len(counts))
	for _, r := range counts {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// BuildDiagnostics compiles pkg with the gate's gcflags and returns the
// compiler's diagnostic stream. -a forces real recompilation: the build
// cache does not replay compiler stderr, so a cached hit would
// otherwise read as "zero diagnostics" and defeat the gate.
func BuildDiagnostics(pkg string) (string, error) {
	cmd := exec.Command("go", "build", "-a", "-gcflags="+gcflags, pkg)
	var out strings.Builder
	cmd.Stderr = &out
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build %s: %v\n%s", pkg, err, out.String())
	}
	return out.String(), nil
}

// Format renders records as the baseline file body.
func Format(records []Record) string {
	var b strings.Builder
	b.WriteString("# npdplint codegen gate baseline: per-hotpath-function compiler\n")
	b.WriteString("# diagnostic counts (escape analysis + bounds checks), normalized.\n")
	b.WriteString("# Regenerate with: go run ./cmd/npdplint -codegen -update\n")
	for _, r := range records {
		fmt.Fprintf(&b, "%s\t%s\t%d\n", r.Func, r.Category, r.Count)
	}
	return b.String()
}

// ParseBaseline reads a baseline file body back into records.
func ParseBaseline(s string) ([]Record, error) {
	var out []Record
	for i, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("baseline line %d: want 'func\\tcategory\\tcount', got %q", i+1, line)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("baseline line %d: bad count %q", i+1, parts[2])
		}
		out = append(out, Record{Func: parts[0], Category: parts[1], Count: n})
	}
	return out, nil
}

// Compare diffs current records against the baseline. Regressions (new
// key or increased count) fail the gate; improvements (decreased or
// vanished counts) are advisory.
func Compare(current, baseline []Record) (regressions, improvements []string) {
	base := make(map[string]int, len(baseline))
	for _, r := range baseline {
		base[r.Key()] = r.Count
	}
	cur := make(map[string]int, len(current))
	for _, r := range current {
		cur[r.Key()] = r.Count
		want, ok := base[r.Key()]
		switch {
		case !ok:
			regressions = append(regressions, fmt.Sprintf("%s: NEW %s ×%d", r.Func, r.Category, r.Count))
		case r.Count > want:
			regressions = append(regressions, fmt.Sprintf("%s: %s %d → %d", r.Func, r.Category, want, r.Count))
		case r.Count < want:
			improvements = append(improvements, fmt.Sprintf("%s: %s %d → %d", r.Func, r.Category, want, r.Count))
		}
	}
	for _, r := range baseline {
		if _, ok := cur[r.Key()]; !ok {
			improvements = append(improvements, fmt.Sprintf("%s: %s %d → 0", r.Func, r.Category, r.Count))
		}
	}
	sort.Strings(regressions)
	sort.Strings(improvements)
	return regressions, improvements
}

// resolvePackage asks the go tool for pkg's directory and file list.
func resolvePackage(pkg string) (dir string, goFiles []string, err error) {
	cmd := exec.Command("go", "list", "-json=Dir,GoFiles", pkg)
	out, err := cmd.Output()
	if err != nil {
		return "", nil, fmt.Errorf("go list %s: %v", pkg, err)
	}
	var p struct {
		Dir     string
		GoFiles []string
	}
	if err := json.Unmarshal(out, &p); err != nil {
		return "", nil, fmt.Errorf("go list %s: %v", pkg, err)
	}
	if p.Dir == "" || len(p.GoFiles) == 0 {
		return "", nil, fmt.Errorf("go list %s: no Go files", pkg)
	}
	return p.Dir, p.GoFiles, nil
}

// Gate runs the full regression gate for pkg against baselinePath,
// writing a human-readable report to w. With update true it rewrites
// the baseline instead of comparing. A non-nil error means the gate
// failed (regression found, no annotations, or tooling failure).
func Gate(pkg, baselinePath string, update bool, w io.Writer) error {
	dir, goFiles, err := resolvePackage(pkg)
	if err != nil {
		return err
	}
	ranges, err := HotpathRanges(dir, goFiles)
	if err != nil {
		return err
	}
	if len(ranges) == 0 {
		return fmt.Errorf("no //npdp:hotpath functions in %s: the gate would vacuously pass", pkg)
	}
	buildOut, err := BuildDiagnostics(pkg)
	if err != nil {
		return err
	}
	current := Extract(buildOut, ranges)
	if update {
		if err := os.WriteFile(baselinePath, []byte(Format(current)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "codegen gate: baseline updated (%d records across %d hotpath functions)\n", len(current), len(ranges))
		return nil
	}
	baseBody, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline (run with -update to create it): %w", err)
	}
	baseline, err := ParseBaseline(string(baseBody))
	if err != nil {
		return err
	}
	regressions, improvements := Compare(current, baseline)
	for _, s := range improvements {
		fmt.Fprintf(w, "codegen gate: improved: %s (refresh baseline with -update)\n", s)
	}
	if len(regressions) > 0 {
		for _, s := range regressions {
			fmt.Fprintf(w, "codegen gate: REGRESSION: %s\n", s)
		}
		return fmt.Errorf("%d hot-path codegen regression(s): a new allocation or bounds check landed in an //npdp:hotpath kernel", len(regressions))
	}
	fmt.Fprintf(w, "codegen gate: clean (%d records across %d hotpath functions match baseline)\n", len(current), len(ranges))
	return nil
}
