package analysis

import (
	"go/token"
	"go/types"
)

// IsWatchedErrTypeForTest exposes directive-based watch resolution to
// the external test package, so the export-data path can be pinned.
func IsWatchedErrTypeForTest(fset *token.FileSet, t types.Type) bool {
	return isWatchedErrType(fset, t)
}
