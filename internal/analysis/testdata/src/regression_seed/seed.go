// Package regression_seed re-introduces, shape-for-shape, the two bugs
// the wire-era analyzers were built to catch, so the suite's regression
// test can prove the lint gate fails when either comes back:
//
//   - the PR 7 alloc bomb: decodeTaskMsg's nblocks lifted off the wire
//     with its bound check deleted, feeding make() directly;
//   - the deleted deadline: a session read loop whose
//     SetReadDeadline arming has been removed, parking the goroutine
//     forever on a dead peer (and the bufio-over-raw-conn desync shape
//     that came with it).
//
// No //nolint directives and no `// want` comments here on purpose:
// this package is loaded by TestSeededRegression, which asserts that
// allocbound and netdeadline both report — the positive direction of
// the ci.sh gate. TestLiveTreeClean proves the negative direction.
package regression_seed

import (
	"bufio"
	"encoding/binary"
	"net"
)

type seedBlock struct {
	Bi, Bj int
	Raw    []byte
}

// decodeTaskMsg is the PR 7 bomb: nblocks is wire-controlled and the
// `nblocks > (len(p)-16)/16` guard has been deleted.
func decodeTaskMsg(p []byte) []seedBlock {
	nblocks := int(binary.LittleEndian.Uint32(p[12:]))
	blocks := make([]seedBlock, nblocks)
	return blocks
}

// runSession is the deleted-deadline seed: the rolling SetReadDeadline
// is gone, and the buffered reader sits on the raw conn.
func runSession(conn net.Conn) {
	br := bufio.NewReader(conn)
	var hdr [16]byte
	for {
		if _, err := br.Read(hdr[:]); err != nil {
			return
		}
		var buf [512]byte
		if _, err := conn.Read(buf[:]); err != nil {
			return
		}
	}
}
