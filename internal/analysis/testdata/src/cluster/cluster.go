// Package cluster is a fixture stand-in for the real cluster package:
// the same watched error types and result shapes, no behavior. The
// errdrop analyzer matches packages by import-path suffix, so this bare
// "cluster" path exercises the same rules as cellnpdp/internal/cluster.
package cluster

// ErrEpochFenced is the fixture twin of the stale-epoch fence error —
// the sole proof a deposed leader's write was rejected after failover.
//
//npdplint:watch
type ErrEpochFenced struct {
	Epoch, Current uint32
	Role           string
}

func (e *ErrEpochFenced) Error() string { return "epoch fenced" }

// ErrProtocolVersion is the fixture twin of the wire-version error.
//
//npdplint:watch
type ErrProtocolVersion struct{ Got, Want uint16 }

func (e *ErrProtocolVersion) Error() string { return "protocol version" }

// CheckEpoch returns fencing evidence directly.
func CheckEpoch() *ErrEpochFenced { return nil }

// Negotiate returns version-mismatch evidence directly.
func Negotiate() *ErrProtocolVersion { return nil }

// Workers reports a count; no error result, so it is not watched even
// though it is declared here (only resilience is watched wholesale).
func Workers() int { return 1 }

// ErrAdvisory is deliberately NOT annotated //npdplint:watch: an
// advisory condition whose loss is acceptable. errdrop must not flag
// callers that drop it — the directive, not the package or the shape,
// is what makes a type watched.
type ErrAdvisory struct{ Hint string }

func (e *ErrAdvisory) Error() string { return "advisory" }

// Advise returns an unwatched typed error.
func Advise() *ErrAdvisory { return nil }
