package ctxdispatch_a

import "context"

// Test files may fabricate contexts freely.
func testHelper() (int, error) {
	return SolveCtx(context.Background(), 4)
}

var _ = testHelper
