// Package ctxdispatch_a exercises the ctxdispatch analyzer: the
// Background/TODO ban with its Ctx-twin wrapper exception, the ...Ctx
// must-use rule, and //npdp:dispatch loop cancellation points.
package ctxdispatch_a

import "context"

// SolveCtx is a well-behaved engine: dispatch loop polls ctx.Err.
func SolveCtx(ctx context.Context, n int) (int, error) {
	total := 0
	//npdp:dispatch
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		total += i
	}
	return total, nil
}

// Solve delegates to its Ctx twin: the sanctioned wrapper idiom.
func Solve(n int) int {
	v, _ := SolveCtx(context.Background(), n)
	return v
}

// Fabricate mints a context mid-stack for a callee that is not its twin.
func Fabricate(n int) int {
	v, _ := SolveCtx(context.TODO(), n) // want `context\.TODO\(\) outside main/tests`
	return v
}

// IdleCtx ignores its context entirely.
func IdleCtx(ctx context.Context, n int) int { // want `IdleCtx never uses its context`
	return n * 2
}

// DropCtx blanks its context parameter.
func DropCtx(_ context.Context, n int) int { // want `DropCtx discards its context`
	return n
}

// AnonCtx cannot ever use its context.
func AnonCtx(context.Context, int) {} // want `AnonCtx takes an unnamed context\.Context`

// RunAllCtx dispatches without a per-iteration cancellation point.
func RunAllCtx(ctx context.Context, tasks []func()) {
	_ = ctx.Err()
	//npdp:dispatch
	for _, t := range tasks { // want `no per-iteration cancellation point`
		t()
	}
}

// ForwardCtx forwards its context into the body instead of polling Err.
func ForwardCtx(ctx context.Context, items []int) error {
	//npdp:dispatch
	for _, it := range items {
		if err := step(ctx, it); err != nil {
			return err
		}
	}
	return nil
}

func step(ctx context.Context, n int) error { return ctx.Err() }

//npdp:dispatch // want `not attached to a for/range statement`
var orphan int

var _ = orphan
