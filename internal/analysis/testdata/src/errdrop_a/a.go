// Package errdrop_a exercises the errdrop analyzer: discarded and
// dropped errors from the (fixture) resilience package.
package errdrop_a

import (
	"cluster"
	"pager"
	"resilience"
)

func bareStmt() {
	resilience.WriteSeals() // want `WriteSeals's error discarded`
}

func inGo() {
	go resilience.WriteSeals() // want `discarded by go statement`
}

func inDefer() {
	defer resilience.WriteSeals() // want `discarded by defer`
}

func blank() {
	_ = resilience.WriteSeals() // want `WriteSeals's error assigned to _`
}

func blankTuple(buf []byte) int {
	n, _ := resilience.Checkpoint(buf) // want `Checkpoint's error assigned to _`
	return n
}

func checkedDropped() bool {
	err := resilience.WriteSeals() // want `nil-checked but never consumed`
	return err == nil
}

func propagated() error {
	return resilience.WriteSeals() // ok: caller receives it
}

func wrapped() error {
	if err := resilience.WriteSeals(); err != nil {
		return err // ok: consumed by return
	}
	return nil
}

func record(err error) {}

func consumedByCall() {
	err := resilience.WriteSeals()
	if err != nil {
		record(err) // ok: consumed by a call
	}
}

func directType() {
	resilience.Audit() // want `Audit's error discarded`
}

func recovered() error {
	return resilience.Recover(func() error { return nil }) // ok
}

func unwatched() {
	resilience.Workers() // ok: no error result
}

// mint returns a watched error type from outside the resilience package.
func mint() *resilience.CorruptionError { return nil }

func mintDrop() {
	mint() // want `mint's error discarded`
}

func sealMismatchDrop() {
	resilience.VerifySeal() // want `VerifySeal's error discarded`
}

func sealMismatchBlank() {
	_ = resilience.VerifySeal() // want `VerifySeal's error assigned to _`
}

// mintSeal returns the seal-mismatch type from outside resilience.
func mintSeal() *resilience.ErrSealMismatch { return nil }

func mintSealChecked() bool {
	err := mintSeal() // want `nil-checked but never consumed`
	return err != nil
}

func sealMismatchPropagated() error {
	if err := resilience.VerifySeal(); err != nil {
		return err // ok: consumed by return
	}
	return nil
}

func epochFenceDrop() {
	cluster.CheckEpoch() // want `CheckEpoch's error discarded`
}

func epochFenceBlank() {
	_ = cluster.CheckEpoch() // want `CheckEpoch's error assigned to _`
}

func epochFenceChecked() bool {
	err := cluster.CheckEpoch() // want `nil-checked but never consumed`
	return err != nil
}

func versionDrop() {
	go cluster.Negotiate() // want `discarded by go statement`
}

// mintFence returns the fence type from outside the cluster package.
func mintFence() *cluster.ErrEpochFenced { return nil }

func mintFenceDrop() {
	mintFence() // want `mintFence's error discarded`
}

func epochFencePropagated() error {
	if err := cluster.Negotiate(); err != nil {
		return err // ok: consumed by return
	}
	return nil
}

func clusterUnwatched() {
	cluster.Workers() // ok: no error result, and cluster is not watched wholesale
}

func pageCorruptDrop() {
	pager.PageIn() // want `PageIn's error discarded`
}

func pageCorruptBlank() {
	_ = pager.PageIn() // want `PageIn's error assigned to _`
}

func pageCorruptChecked() bool {
	err := pager.PageIn() // want `nil-checked but never consumed`
	return err != nil
}

func spillSpaceDrop() {
	go pager.Reserve() // want `discarded by go statement`
}

func spillSpaceDefer() {
	defer pager.Reserve() // want `discarded by defer`
}

// mintPageErr returns the page-corruption type from outside the pager
// package.
func mintPageErr() *pager.ErrPageCorrupt { return nil }

func mintPageErrDrop() {
	mintPageErr() // want `mintPageErr's error discarded`
}

func pageCorruptPropagated() error {
	if err := pager.PageIn(); err != nil {
		return err // ok: consumed by return
	}
	return nil
}

func pagerUnwatched() {
	pager.Resident() // ok: no error result, and pager is not watched wholesale
}

// Directive discipline: the watch list is discovered from
// //npdplint:watch annotations on the type declarations, so a typed
// error without the directive is not watched no matter how watched it
// looks, and a newly annotated type is watched with no analyzer change.

func advisoryDrop() {
	cluster.Advise() // ok: *ErrAdvisory carries no directive, so dropping it is legal
}

func advisoryBlank() {
	_ = cluster.Advise() // ok: unwatched type
}

func shadowDrop() {
	pager.Shadow() // want `Shadow's error discarded`
}

func shadowBlank() {
	_ = pager.Shadow() // want `Shadow's error assigned to _`
}
