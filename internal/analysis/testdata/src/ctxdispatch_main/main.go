// Command ctxdispatch_main exercises the main-package exemption: a
// binary entry point is where a root context is legitimately minted.
package main

import "context"

func main() {
	ctx := context.Background() // ok: main packages are exempt
	_ = ctx
}
