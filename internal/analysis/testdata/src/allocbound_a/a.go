// Package allocbound_a exercises the allocbound analyzer: allocation
// sizes lifted from wire/disk bytes must be bounded before make().
package allocbound_a

import (
	"bytes"
	"encoding/binary"
)

// unboundedMake is the PR 7 alloc-bomb shape: a count decoded straight
// off the wire sizes an allocation with no plausibility check.
func unboundedMake(p []byte) []uint64 {
	n := int(binary.LittleEndian.Uint32(p))
	return make([]uint64, n) // want `allocation sized by n with no preceding bound check`
}

// boundedMake is the sanctioned decodeTaskMsg shape: the count is
// compared against what the payload can actually hold before allocating.
func boundedMake(p []byte) []uint64 {
	n := int(binary.LittleEndian.Uint32(p))
	if n > (len(p)-4)/8 {
		return nil
	}
	return make([]uint64, n) // ok: bounded above
}

// inlineDecode feeds the raw decode into make directly — no variable,
// no check, still a bomb.
func inlineDecode(p []byte) []byte {
	return make([]byte, binary.LittleEndian.Uint16(p)) // want `allocation sized by a raw binary decode with no preceding bound check`
}

type spillHeader struct {
	Magic   uint32
	NBlocks uint32
}

// check is the header's own plausibility validator.
func (h *spillHeader) check(limit int) bool { return int(h.NBlocks) <= limit }

// binaryReadUnbounded: binary.Read fills the header with raw disk
// bytes; sizing from it before any validation is the bomb.
func binaryReadUnbounded(r *bytes.Reader) []byte {
	var hdr spillHeader
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil
	}
	return make([]byte, hdr.NBlocks) // want `allocation sized by hdr with no preceding bound check`
}

// binaryReadValidated: the named validator (check*/valid*/verify*/
// audit* prefix) vouches for every value it receives.
func binaryReadValidated(r *bytes.Reader, limit int) []byte {
	var hdr spillHeader
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil
	}
	if !hdr.check(limit) {
		return nil
	}
	return make([]byte, hdr.NBlocks) // ok: validated by the header's check method
}

// propagated taint: arithmetic on an unbounded count is still the
// count.
func propagated(p []byte) []byte {
	n := int(binary.LittleEndian.Uint32(p))
	total := n * 16
	return make([]byte, total) // want `allocation sized by total with no preceding bound check`
}

// comparisonBounds: any relational or equality comparison mentioning the
// value counts as the bound (the == magic-check idiom).
func comparisonBounds(p []byte) []byte {
	n := int(binary.LittleEndian.Uint32(p))
	if n != 64 {
		return nil
	}
	return make([]byte, n) // ok: equality-pinned
}

// cleanRebind: overwriting the tainted variable with a clean value
// clears it.
func cleanRebind(p []byte) []byte {
	n := int(binary.LittleEndian.Uint32(p))
	n = len(p)
	return make([]byte, n) // ok: rebound from len(p)
}

// sliceCapSink: a full-slice-expression capacity is the same sink as a
// make size.
func sliceCapSink(p []byte, buf []byte) []byte {
	n := int(binary.LittleEndian.Uint32(p))
	return buf[0:2:n] // want `slice capacity from n with no preceding bound check`
}

// suppressed shows the justified-nolint escape hatch: the finding is
// real but the author vouches for the caller's framing guarantee.
func suppressed(p []byte) []byte {
	n := int(binary.LittleEndian.Uint32(p))
	return make([]byte, n) //nolint:npdplint(allocbound) caller framed p from a length-prefixed read already bounded at 1 MiB
}
