package allocbound_a

import "encoding/binary"

// Test files are exempt: fixtures and fuzzers allocate from raw bytes
// on purpose.
func unboundedInTest(p []byte) []byte {
	return make([]byte, binary.LittleEndian.Uint32(p)) // ok: _test.go
}
