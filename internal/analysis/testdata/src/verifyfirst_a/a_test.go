package verifyfirst_a

// Test files are exempt: fixtures construct unsealed records on
// purpose.
func unsealedInTest(wb wireBlock, dst []byte) {
	copy(dst, wb.Raw) // ok: _test.go
}
