// Package verifyfirst_a exercises the verifyfirst analyzer: sealed
// payloads may not flow before their CRC check, and epoch frames may
// not feed generation/install logic before the fence.
package verifyfirst_a

import "hash/crc32"

// wireBlock is a sealed record: a uint32 CRC field paired with a []byte
// payload.
type wireBlock struct {
	Bi, Bj int
	CRC    uint32
	Raw    []byte
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// rawCRC names the digest, so calls to it count as CRC computation.
func rawCRC(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// sumRaw is an assembly stub: no body, nothing to analyze, must not
// crash the pass.
func sumRaw(p []byte) uint32

// useBeforeCheck flows the payload into state before the digest runs.
func useBeforeCheck(wb wireBlock, dst []byte) {
	copy(dst, wb.Raw) // want `wb.Raw read before its CRC seal is verified`
	if rawCRC(wb.Raw) != wb.CRC {
		return
	}
}

// digestFirst is the sanctioned executeDispatch shape: digest, compare,
// then trust.
func digestFirst(wb wireBlock, dst []byte) bool {
	if rawCRC(wb.Raw) != wb.CRC {
		return false
	}
	copy(dst, wb.Raw) // ok: after the seal check
	return true
}

// installRaw never checks at all: hostile bytes straight into state.
func installRaw(wb wireBlock, table map[int][]byte) {
	table[wb.Bi] = wb.Raw // want `wb.Raw read before its CRC seal is verified`
}

// sizedBeforeCheck: len/cap are sizing, not trust — always allowed.
func sizedBeforeCheck(wb wireBlock) bool {
	if len(wb.Raw) == 0 {
		return false
	}
	return rawCRC(wb.Raw) == wb.CRC
}

// decodeInto writes the payload field; assignment targets are how the
// record is built, not a read.
func decodeInto(wb *wireBlock, p []byte) {
	wb.Raw = p
	wb.CRC = rawCRC(p)
}

// encodeBlock is exempt by name: serialization writes the seal, it does
// not trust it.
func encodeBlock(wb wireBlock, buf []byte) []byte {
	buf = append(buf, wb.Raw...)
	return buf
}

// suppressed: the justified escape hatch when the seal was verified at
// an earlier layer by construction.
func suppressed(wb wireBlock, table map[int][]byte) {
	table[wb.Bi] = wb.Raw //nolint:npdplint(verifyfirst) decode layer re-digested every block before this record could exist
}

// taskMsg is an epoch-carrying frame: Epoch alongside Gen/Blocks state.
type taskMsg struct {
	Epoch  uint32
	Gen    uint64
	Blocks uint32
}

// installBeforeFence reads generation state before the fence — exactly
// the deposed-leader write the fence exists to reject.
func installBeforeFence(tm taskMsg, cur uint32) uint64 {
	g := tm.Gen // want `tm.Gen read before the frame's epoch fence`
	if tm.Epoch < cur {
		return 0
	}
	return g
}

// blocksBeforeFence: Blocks is install state too.
func blocksBeforeFence(tm taskMsg, cur uint32) uint32 {
	n := tm.Blocks // want `tm.Blocks read before the frame's epoch fence`
	if tm.Epoch == cur {
		return n
	}
	return 0
}

// fencedInstall is the sanctioned order: fence, then trust.
func fencedInstall(tm taskMsg, cur uint32) uint64 {
	if tm.Epoch < cur {
		return 0
	}
	return tm.Gen // ok: after the fence
}

// preFenced never fences: its caller vetted the frame (the
// executeDispatch contract), so its reads are exempt.
func preFenced(tm taskMsg) uint64 {
	return tm.Gen // ok: unfenced function, pre-fenced by the caller
}
