// Package resilience is a fixture stand-in for the real resilience
// package: the same watched error types and result shapes, no behavior.
// The errdrop analyzer matches packages by import-path suffix, so this
// bare "resilience" path exercises the same rules as
// cellnpdp/internal/resilience.
package resilience

import "errors"

// CorruptionError is the fixture twin of the seal-audit error.
//
//npdplint:watch
type CorruptionError struct{ Block int }

func (e *CorruptionError) Error() string { return "corruption" }

// PanicError is the fixture twin of the recovered-panic error.
//
//npdplint:watch
type PanicError struct{ TaskID int }

func (e *PanicError) Error() string { return "panic" }

// WriteSeals seals blocks; the error is the only corruption record.
func WriteSeals() error { return errors.New("seal") }

// Audit returns corruption evidence directly.
func Audit() *CorruptionError { return nil }

// Recover runs f, converting panics into PanicError.
func Recover(f func() error) error { return f() }

// Checkpoint encodes a snapshot.
func Checkpoint(data []byte) (int, error) { return len(data), nil }

// Workers reports a count; no error result, so it is not watched.
func Workers() int { return 1 }

// ErrSealMismatch is the fixture twin of the boundary-block seal error.
//
//npdplint:watch
type ErrSealMismatch struct{ Bi, Bj int }

func (e *ErrSealMismatch) Error() string { return "seal mismatch" }

// VerifySeal returns transit-corruption evidence directly.
func VerifySeal() *ErrSealMismatch { return nil }
