// Package atomicfield_a exercises the atomicfield analyzer: plain reads
// and writes of words published through sync/atomic, copies of
// atomic-typed values, and the sanctioned exceptions.
package atomicfield_a

import "sync/atomic"

type counter struct {
	pending int64
	name    string
	word    atomic.Int64
}

func (c *counter) dec() int64 {
	return atomic.AddInt64(&c.pending, -1) // ok: the atomic access itself
}

func (c *counter) badRead() int64 {
	return c.pending // want `plain access of pending`
}

func (c *counter) badWrite() {
	c.pending = 0 // want `plain access of pending`
}

func (c *counter) title() string {
	return c.name // ok: never accessed atomically
}

func fresh() *counter {
	return &counter{pending: 0} // ok: composite-literal initialization
}

var sealWord uint32

func seal() {
	atomic.StoreUint32(&sealWord, 1)
}

func init() {
	sealWord = 0 // ok: init runs before publication
}

func badPeek() uint32 {
	return sealWord // want `plain access of sealWord`
}

func scopedWrong() uint32 {
	//nolint:npdplint(hotpath) scoped to the wrong analyzer on purpose
	return sealWord // want `plain access of sealWord`
}

func justified() uint32 {
	//nolint:npdplint(atomicfield) crash-dump path runs single-threaded after workers join
	return sealWord
}

func (c *counter) load() int64 {
	return c.word.Load() // ok: method call is the atomic access
}

func copyOut(c *counter) int64 {
	var w atomic.Int64
	w = c.word // want `plain write to atomic-typed w` `plain copy of atomic-typed c\.word`
	return w.Load()
}

func sink(v atomic.Int64) int64 { return v.Load() }

func badPass(c *counter) int64 {
	return sink(c.word) // want `atomic-typed c\.word passed by value`
}

func badReturn(c *counter) atomic.Int64 {
	return c.word // want `atomic-typed c\.word returned by value`
}

func sumBad(ws []atomic.Int64) int64 {
	var s int64
	for _, w := range ws { // want `ranging copies atomic-typed elements of ws`
		s += w.Load()
	}
	return s
}

func sumGood(ws []atomic.Int64) int64 {
	var s int64
	for i := range ws {
		s += ws[i].Load() // ok: indexing reaches the element, Load reads it
	}
	return s
}
