// Package gospawn_a exercises the gospawn analyzer: every goroutine
// spawned outside tests must be tied to a lifecycle that provably ends
// it.
package gospawn_a

import (
	"context"
	"net"
	"sync"
	"time"
)

// untied is the canonical leak: nothing ends this loop.
func untied() {
	go func() { // want `goroutine has no lifecycle`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// ctxTied: the body observes a context.
func ctxTied(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// wgTied: a drain barrier observes the exit.
func wgTied(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// chanTied: completion signalling over a channel.
func chanTied(done chan struct{}) {
	go func() {
		done <- struct{}{}
	}()
}

// selectTied: a select is always channel-driven.
func selectTied(a, b chan int) {
	go func() {
		select {
		case <-a:
		case <-b:
		}
	}()
}

// rangeTied: ranging a channel ends when the producer closes it.
func rangeTied(in chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

// closeTied: the spawn owns the close side of the handshake.
func closeTied(done chan struct{}) {
	go func() {
		time.Sleep(time.Millisecond)
		close(done)
	}()
}

// deadlineTied: blocking I/O under a deadline regime cannot outlive it.
func deadlineTied(conn net.Conn) {
	go func() {
		buf := [64]byte{}
		conn.SetReadDeadline(time.Now().Add(time.Second))
		conn.Read(buf[:])
	}()
}

// acceptTied: closing the listener is the accept-loop's teardown.
func acceptTied(l net.Listener) {
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
}

// loop ranges its input channel: a named same-package spawn target with
// a lifecycle of its own.
func loop(in chan int) {
	for v := range in {
		_ = v
	}
}

// namedTied resolves the callee body in-package.
func namedTied(in chan int) {
	go loop(in)
}

// spin has no lifecycle marker at all.
func spin() {
	for {
	}
}

// namedUntied: the resolved body proves the leak.
func namedUntied() {
	go spin() // want `goroutine has no lifecycle`
}

// varTied: an opaque func value spawned with a context argument — the
// lifecycle travels in the arguments.
func varTied(fn func(context.Context), ctx context.Context) {
	go fn(ctx)
}

// varUntied: an opaque func value with nothing to end it.
func varUntied(fn func()) {
	go fn() // want `goroutine has no lifecycle`
}

// litVarTied: a local variable bound to exactly one function literal
// resolves to that literal's body.
func litVarTied(conns chan net.Conn) {
	handshake := func(c net.Conn) {
		c.SetDeadline(time.Now().Add(time.Second))
	}
	for c := range conns {
		go handshake(c)
	}
}

// litVarUntied: the single bound literal proves the leak.
func litVarUntied() {
	spinner := func() {
		for {
		}
	}
	go spinner() // want `goroutine has no lifecycle`
}

// litVarAmbiguous: two literals bound to one variable stay unresolved,
// so the bare-args rule applies.
func litVarAmbiguous(flip bool) {
	fn := func() {}
	if flip {
		fn = func() {
			for {
			}
		}
	}
	go fn() // want `goroutine has no lifecycle`
}

// litVarIndirect: the lifecycle lives one call level down, in the post
// closure the spawned loop reports through.
func litVarIndirect(events chan int) {
	post := func(v int) {
		events <- v
	}
	tail := func() {
		for i := 0; i < 10; i++ {
			post(i)
		}
	}
	go tail()
}

// cancelSpawn: spawning a context.CancelFunc is itself a lifecycle
// action — the call tears a context down and returns.
func cancelSpawn(ctx context.Context) {
	_, cancel := context.WithCancel(ctx)
	go cancel()
}

// genericWorker exercises the generic-method resolution: the call site
// binds the instantiated method object, the declaration index holds the
// generic one, and Origin joins them.
type genericWorker[E any] struct {
	out chan E
}

func (w *genericWorker[E]) drain() {
	for v := range w.out {
		_ = v
	}
}

func (w *genericWorker[E]) spinForever() {
	for {
	}
}

func spawnGeneric(w *genericWorker[int]) {
	go w.drain()
	go w.spinForever() // want `goroutine has no lifecycle`
}

// suppressed: the justified escape hatch for genuinely bounded
// fire-and-forget work.
func suppressed() {
	go spin() //nolint:npdplint(gospawn) bounded chaos helper, reaped at process exit
}
