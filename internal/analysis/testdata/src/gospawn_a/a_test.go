package gospawn_a

// Test files are exempt: a test goroutine's lifetime is the test's.
func untiedInTest() {
	go func() { // ok: _test.go
		for {
		}
	}()
}
