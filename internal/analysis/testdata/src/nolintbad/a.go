// Package nolintbad exercises the suppression discipline: bare
// directives and unknown analyzer names are findings of their own.
// Checked by TestNolintDiscipline rather than want comments, because a
// trailing comment would read as the directive's justification.
package nolintbad

func f() int {
	//nolint:npdplint
	return 1
}

func g() int {
	//nolint:npdplint(nosuch) the analyzer name is a typo
	return 2
}
