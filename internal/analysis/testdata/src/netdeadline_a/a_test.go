package netdeadline_a

import "net"

// Test files are exempt: harness conns are loopback pipes the test
// tears down.
func unarmedInTest(conn net.Conn) {
	var buf [1]byte
	conn.Read(buf[:]) // ok: _test.go
}
