// Package netdeadline_a exercises the netdeadline analyzer: blocking
// I/O on a raw net.Conn must run under a deadline regime, tracked per
// conn and per direction, with function literals scoped separately.
package netdeadline_a

import (
	"bufio"
	"io"
	"net"
	"time"
)

// unarmedRead is the canonical park-forever bug.
func unarmedRead(conn net.Conn) {
	var buf [64]byte
	conn.Read(buf[:]) // want `conn.Read with no deadline armed`
}

// armedRead is the minimal sanctioned form.
func armedRead(conn net.Conn) {
	var buf [64]byte
	conn.SetReadDeadline(time.Now().Add(time.Second))
	conn.Read(buf[:]) // ok: armed above
}

// setDeadlineArmsBoth: SetDeadline covers both directions.
func setDeadlineArmsBoth(conn net.Conn) {
	var buf [64]byte
	conn.SetDeadline(time.Now().Add(time.Second))
	conn.Read(buf[:])
	conn.Write(buf[:])
}

// directionMatters: a read arm does not license writes.
func directionMatters(conn net.Conn) {
	var buf [64]byte
	conn.SetReadDeadline(time.Now().Add(time.Second))
	conn.Read(buf[:])
	conn.Write(buf[:]) // want `conn.Write with no deadline armed`
}

// perConn: arming src says nothing about dst (the relay-pump shape).
func perConn(src, dst net.Conn) {
	var buf [4096]byte
	src.SetReadDeadline(time.Now().Add(time.Second))
	n, _ := src.Read(buf[:])
	dst.Write(buf[:n]) // want `dst.Write with no deadline armed`
}

// litScoped: each function literal is its own deadline scope — the
// spawned reader cannot borrow the arm its parent set up.
func litScoped(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	go func() {
		var buf [64]byte
		conn.Read(buf[:]) // want `conn.Read with no deadline armed`
	}()
}

// sessionReader is the sanctioned rolling-progress wrapper: re-arm
// before every read, so a stream making progress never times out and a
// dead peer is detected within one window.
type sessionReader struct {
	conn   net.Conn
	window time.Duration
}

func (r *sessionReader) Read(p []byte) (int, error) {
	r.conn.SetReadDeadline(time.Now().Add(r.window))
	return r.conn.Read(p) // ok: rolling-progress
}

// readFrame is a deadline-blind helper: an io.Reader gives it no way to
// bound the call.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return hdr[:], nil
}

// blindDowngradeUnarmed hands the raw conn to the blind helper.
func blindDowngradeUnarmed(conn net.Conn) {
	readFrame(conn) // want `conn handed to a deadline-blind reader with no deadline armed`
}

// blindDowngradeArmed is fine: the single framed read is bounded by the
// arm.
func blindDowngradeArmed(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	readFrame(conn) // ok: armed above
}

// stdlibBlind: io.ReadFull's io.Reader parameter is just as blind.
func stdlibBlind(conn net.Conn) {
	var buf [16]byte
	io.ReadFull(conn, buf[:]) // want `conn handed to a deadline-blind reader with no deadline armed`
}

// handoff passes the conn to a net.Conn parameter: the callee owns the
// regime and is analyzed on its own.
func serveConn(c net.Conn) {
	c.SetDeadline(time.Now().Add(time.Second))
	var buf [1]byte
	c.Read(buf[:])
}

func handoff(conn net.Conn) {
	serveConn(conn) // ok: net.Conn parameter keeps the deadline surface
}

// buffering: bufio.NewReader over the raw conn buffers bytes that
// escape every later deadline (the PR 7 frame-desync shape) — always a
// finding. Buffer above the deadline-arming wrapper instead. Writers
// flush under the caller's per-send arming and are allowed.
func bufferedRaw(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(time.Second))
	br := bufio.NewReader(conn) // want `bufio.NewReader over a raw net.Conn`
	br.ReadByte()
}

func bufferedWrapped(conn net.Conn, lease time.Duration) {
	sr := &sessionReader{conn: conn, window: lease}
	br := bufio.NewReader(sr) // ok: the wrapper re-arms per read
	br.ReadByte()
	bw := bufio.NewWriter(conn) // ok: writes flush under per-send arming
	bw.Flush()
}

// suppressed: the justified escape hatch for a conn whose regime lives
// elsewhere by construction.
func suppressed(conn net.Conn) {
	var buf [1]byte
	conn.Read(buf[:]) //nolint:npdplint(netdeadline) loopback self-pipe drained by the test harness
}
