// Package hotpath_a exercises the hotpath analyzer: the closed
// annotated call universe and the allocation/dispatch/scheduler bans.
package hotpath_a

// step is the sanctioned inner kernel.
//
//npdp:hotpath
func step(c, a, b []float32) {
	for i := range c {
		if v := a[i] + b[i]; v < c[i] {
			c[i] = v
		}
	}
}

// panel composes annotated kernels: the sanctioned internal edge.
//
//npdp:hotpath
func panel(c, a, b []float32) {
	step(c, a, b)
	if len(c) > 0 {
		copy(a, b) // ok: allowlisted builtin
	}
}

// gstep is a generic kernel; calls through instantiation must resolve
// to the annotated origin.
//
//npdp:hotpath
func gstep[E ~float32 | ~float64](c, a, b []E) {
	for i := range c {
		if v := a[i] + b[i]; v < c[i] {
			c[i] = v
		}
	}
}

//npdp:hotpath
func gpanel(c, a, b []float64) {
	gstep(c, a, b)
}

// helper is deliberately unannotated.
func helper() {}

//npdp:hotpath
func badCall(c, a, b []float32) {
	helper() // want `calls non-hotpath function`
	step(c, a, b)
}

//npdp:hotpath
func badMake(n int) []float32 {
	return make([]float32, n) // want `make allocates`
}

//npdp:hotpath
func badAppend(xs []float32) []float32 {
	return append(xs, 1) // want `append allocates`
}

//npdp:hotpath
func badDefer() {
	defer step(nil, nil, nil) // want `defer allocates a frame record`
}

//npdp:hotpath
func badGo() {
	go step(nil, nil, nil) // want `go statement spawns a goroutine`
}

type adder interface{ add(float32) }

//npdp:hotpath
func badIface(a adder) {
	a.add(1) // want `interface dispatch through a`
}

//npdp:hotpath
func badConv(x float32) any {
	return any(x) // want `conversion to interface type`
}

//npdp:hotpath
func badClosure(n int) func() int {
	return func() int { return n } // want `closure literal allocates`
}

//npdp:hotpath
func badChan(ch chan int) {
	ch <- 1 // want `channel send`
	<-ch    // want `channel receive`
}

type point struct{ x, y float32 }

//npdp:hotpath
func badLit() int {
	m := map[int]int{1: 2} // want `map literal allocates`
	s := []int{1, 2}       // want `slice literal allocates`
	return m[1] + s[0]
}

//npdp:hotpath
func badAddr() *point {
	return &point{x: 1} // want `&composite literal escapes`
}

//npdp:hotpath
func badConcat(a, b string) string {
	return a + b // want `non-constant string concatenation allocates`
}

//npdp:hotpath
func goodStruct() point {
	return point{x: 1, y: 2} // ok: value literal stays on the stack
}

//npdp:hotpath
func badIndirect(f func()) {
	f() // want `indirect call through f`
}

// unannotated helpers may do anything.
func freeFunc() []int {
	return append(make([]int, 0, 4), 1)
}

// asmStub models an assembly kernel: body-less and //go:noescape — a
// sanctioned leaf of the call universe.
//
//go:noescape
func asmStub(c, a *float32, t int)

//npdp:hotpath
func goodAsmCall(c, a *float32, t int) {
	asmStub(c, a, t) // ok: body-less noescape stub
}

// fakeStub has the pragma but also a body, so the exemption does not
// apply (the real compiler would reject this combination too).
//
//go:noescape
func fakeStub() { helper() }

//npdp:hotpath
func badFakeStub() {
	fakeStub() // want `calls non-hotpath function`
}
