// Package pager is a fixture stand-in for the real pager package: the
// same watched error types and result shapes, no behavior. The errdrop
// analyzer matches packages by import-path suffix, so this bare "pager"
// path exercises the same rules as cellnpdp/internal/pager.
package pager

// ErrPageCorrupt is the fixture twin of the page-in digest mismatch —
// the only record that a spilled block's bytes came back wrong.
//
//npdplint:watch
type ErrPageCorrupt struct {
	Bi, Bj    int
	Pristine  bool
	Want, Got uint32
}

func (e *ErrPageCorrupt) Error() string { return "page corrupt" }

// ErrSpillSpace is the fixture twin of the hard residency-wall error.
//
//npdplint:watch
type ErrSpillSpace struct{ Resident, Limit int }

func (e *ErrSpillSpace) Error() string { return "spill space" }

// PageIn returns corruption evidence directly.
func PageIn() *ErrPageCorrupt { return nil }

// Reserve returns residency-wall evidence directly.
func Reserve() *ErrSpillSpace { return nil }

// Resident reports a count; no error result, so it is not watched even
// though it is declared here (only resilience is watched wholesale).
func Resident() int { return 0 }

// ErrShadowTorn is a later-added watched type: annotating the
// declaration is the entire registration step, so errdrop watches it
// with no analyzer change.
//
//npdplint:watch
type ErrShadowTorn struct{ Page int }

func (e *ErrShadowTorn) Error() string { return "shadow torn" }

// Shadow returns torn-shadow evidence directly.
func Shadow() *ErrShadowTorn { return nil }
