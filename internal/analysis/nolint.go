package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Suppression discipline: a finding may be silenced only by a
//
//	//nolint:npdplint <justification>
//	//nolint:npdplint(analyzer,analyzer) <justification>
//
// comment on the finding's line or the line immediately above it. The
// justification is mandatory — a bare //nolint:npdplint is itself a
// finding, so silent suppressions cannot accumulate. The parenthesized
// form scopes the suppression to named analyzers; the bare form covers
// the whole suite.

var nolintRe = regexp.MustCompile(`^//nolint:npdplint(?:\(([^)]*)\))?(.*)`)

// nolintDirective is one parsed suppression comment.
type nolintDirective struct {
	pos       token.Position
	analyzers map[string]bool // nil means all analyzers
	reason    string
}

// collectNolint parses every suppression directive in the files.
func collectNolint(fset *token.FileSet, files []*ast.File) []nolintDirective {
	var out []nolintDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := nolintRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				d := nolintDirective{
					pos:    fset.Position(c.Pos()),
					reason: strings.TrimSpace(m[2]),
				}
				if m[1] != "" {
					d.analyzers = make(map[string]bool)
					for _, name := range strings.Split(m[1], ",") {
						d.analyzers[strings.TrimSpace(name)] = true
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applyNolint filters diags through the directives: a diagnostic is
// suppressed when a directive in the same file covers its analyzer on
// the same line or the line above. Directives missing a justification
// are converted into findings of their own, as are directives naming
// analyzers that do not exist (a typo would otherwise silently suppress
// nothing while looking intentional).
func applyNolint(diags []Diagnostic, directives []nolintDirective) []Diagnostic {
	var out []Diagnostic
	for _, d := range directives {
		if d.reason == "" {
			out = append(out, Diagnostic{
				Analyzer: "nolint",
				Pos:      d.pos,
				Message:  "//nolint:npdplint requires a justification after the directive",
			})
		}
		for name := range d.analyzers {
			if ByName(name) == nil {
				out = append(out, Diagnostic{
					Analyzer: "nolint",
					Pos:      d.pos,
					Message:  fmt.Sprintf("//nolint:npdplint names unknown analyzer %q", name),
				})
			}
		}
	}
	for _, diag := range diags {
		suppressed := false
		for _, d := range directives {
			if d.reason == "" {
				continue // an unjustified directive suppresses nothing
			}
			if d.pos.Filename != diag.Pos.Filename {
				continue
			}
			if d.pos.Line != diag.Pos.Line && d.pos.Line != diag.Pos.Line-1 {
				continue
			}
			if d.analyzers != nil && !d.analyzers[diag.Analyzer] {
				continue
			}
			suppressed = true
			break
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	return out
}
