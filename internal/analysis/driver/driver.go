// Package driver loads Go packages for the npdplint analyzers without
// golang.org/x/tools: package metadata and compiled export data come
// from `go list -export`, source is parsed with go/parser, and types
// are checked with go/types against the gc export data of every import.
// The result is the same (Fset, Files, Pkg, TypesInfo) quadruple the
// upstream go/analysis driver would hand each analyzer.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"cellnpdp/internal/analysis"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Run applies the analyzers to the package and returns its findings,
// nolint-filtered and position-sorted.
func (p *Package) Run(analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	return analysis.RunAnalyzers(p.Fset, p.Files, p.Pkg, p.Info, analyzers)
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// goList invokes `go list` with args and decodes the JSON stream.
func goList(args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&out)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportLookup resolves import paths to compiled export data files,
// fetching them lazily through `go list -deps -export` and caching the
// whole dependency closure of each request.
type exportLookup struct {
	files map[string]string // import path → export data file
}

func (l *exportLookup) fetch(path string) error {
	entries, err := goList("-deps", "-export", "-json=ImportPath,Export", path)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.Export != "" {
			l.files[e.ImportPath] = e.Export
		}
	}
	return nil
}

// lookup is the go/importer callback: open the export data for path.
func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.files[path]
	if !ok {
		if err := l.fetch(path); err != nil {
			return nil, err
		}
		if f, ok = l.files[path]; !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(f)
}

// newInfo allocates the full TypesInfo the analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Load resolves the patterns with the go tool and returns every matched
// package parsed and type-checked (non-test files only). Packages that
// fail to load abort the whole call: analyzers must never run on
// partial type information, where absent objects would silently skip
// checks.
func Load(patterns ...string) ([]*Package, error) {
	targets, err := goList(append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	// One -deps -export pass warms the export cache for every import the
	// targets can reach (and compiles anything stale).
	lk := &exportLookup{files: make(map[string]string)}
	if err := lk.fetch(patterns[0]); err != nil {
		return nil, err
	}
	for _, p := range patterns[1:] {
		if err := lk.fetch(p); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lk.lookup)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", filepath.Join(t.Dir, name), err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Pkg:        tp,
			Info:       info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// fixtureLoader type-checks analysistest fixture trees: an import
// resolves to srcRoot/<path> when that directory exists (fixture
// packages are named by bare paths like "resilience"), and to real
// export data otherwise (stdlib imports inside fixtures).
type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	cache   map[string]*types.Package
	gc      types.Importer
}

// Import implements types.Importer for fixture trees.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if fi, err := os.Stat(filepath.Join(l.srcRoot, path)); err == nil && fi.IsDir() {
		p, err := l.loadSource(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	p, err := l.gc.Import(path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = p
	return p, nil
}

// loadSource parses and type-checks the fixture package at
// srcRoot/path, including files that would be test files in a real
// package (fixtures exercise the analyzers' test-file exemptions).
func (l *fixtureLoader) loadSource(path string) (*Package, error) {
	dir := filepath.Join(l.srcRoot, path)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture package %s: no Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing fixture %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tp, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	l.cache[path] = tp
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Pkg:        tp,
		Info:       info,
	}, nil
}

// LoadFixture loads the fixture package srcRoot/<importPath> (the
// analysistest GOPATH-style layout: testdata/src/<importPath>).
func LoadFixture(srcRoot, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	lk := &exportLookup{files: make(map[string]string)}
	l := &fixtureLoader{
		srcRoot: srcRoot,
		fset:    fset,
		cache:   make(map[string]*types.Package),
		gc:      importer.ForCompiler(fset, "gc", lk.lookup),
	}
	return l.loadSource(importPath)
}
