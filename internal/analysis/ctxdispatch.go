package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxDispatch enforces the cancellation contract PR 2 threaded through
// every engine: cancellation is checked at task-dispatch granularity,
// and contexts always flow down from the caller.
//
// Three rules:
//
//  1. context.Background() and context.TODO() are banned outside main
//     packages and _test.go files. The one sanctioned exception is the
//     compatibility-wrapper idiom, where a function F passes a fresh
//     Background directly to its own Ctx twin (Solve → SolveCtx,
//     RunPool → RunPoolCtx): the wrapper *is* the documented
//     "no-cancellation" entry point. Anything else fabricates an
//     uncancellable context mid-stack and needs a justification.
//
//  2. An exported function whose name ends in "Ctx" and takes a
//     context.Context must actually use it — check ctx.Err()/ctx.Done()
//     or forward it to a callee. A ...Ctx engine that ignores its
//     context silently reneges on the dispatch-granularity promise.
//
//  3. A loop annotated //npdp:dispatch (the task-dispatch loops of the
//     pool workers and serial engines) must contain a per-iteration
//     cancellation point: a ctx.Err()/ctx.Done() call or a context
//     forwarded into the loop body. The annotation must sit on the
//     line directly above (or on) the for/range statement.
var CtxDispatch = &Analyzer{
	Name: "ctxdispatch",
	Doc:  "Ctx engines must honor their context; Background/TODO banned outside main and tests; //npdp:dispatch loops must check cancellation per iteration",
	Run:  runCtxDispatch,
}

// dispatchMarker annotates task-dispatch loops.
const dispatchMarker = "npdp:dispatch"

func runCtxDispatch(pass *Pass) error {
	info := pass.TypesInfo
	parents := buildParents(pass.Files)
	isMain := pass.Pkg.Name() == "main"

	for _, f := range pass.Files {
		// Rule 1: Background/TODO bans.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(info, call)
			if obj == nil || !isPkgPath(obj, "context") {
				return true
			}
			name := obj.Name()
			if name != "Background" && name != "TODO" {
				return true
			}
			if isMain || inTestFile(pass.Fset, call.Pos()) {
				return true
			}
			if isCtxTwinWrapper(info, parents, call) {
				return true
			}
			pass.Reportf(call.Pos(), "context.%s() outside main/tests fabricates an uncancellable context; thread the caller's context (or delegate to your Ctx twin)", name)
			return true
		})

		// Rules 2 and 3.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFuncUsesContext(pass, fd)
		}
		checkDispatchLoops(pass, f)
	}
	return nil
}

// isCtxTwinWrapper reports whether the Background/TODO call is an
// argument of a direct call to the enclosing function's own Ctx twin
// (enclosing F, callee named F+"Ctx").
func isCtxTwinWrapper(info *types.Info, parents parentMap, call *ast.CallExpr) bool {
	outer, ok := parents.parentSkipParens(call).(*ast.CallExpr)
	if !ok {
		return false
	}
	arg := false
	for _, a := range outer.Args {
		if unparen(a) == call {
			arg = true
			break
		}
	}
	if !arg {
		return false
	}
	fd := parents.enclosingFunc(call)
	if fd == nil {
		return false
	}
	var calleeName string
	switch fun := unparen(outer.Fun).(type) {
	case *ast.Ident:
		calleeName = fun.Name
	case *ast.SelectorExpr:
		calleeName = fun.Sel.Name
	case *ast.IndexExpr: // generic instantiation SolveCtx[float32](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			calleeName = id.Name
		}
	default:
		return false
	}
	return calleeName == fd.Name.Name+"Ctx"
}

// checkCtxFuncUsesContext implements rule 2.
func checkCtxFuncUsesContext(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || !strings.HasSuffix(fd.Name.Name, "Ctx") {
		return
	}
	if inTestFile(pass.Fset, fd.Pos()) {
		return
	}
	info := pass.TypesInfo
	var ctxParams []*ast.Ident
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(), "%s takes an unnamed context.Context it can never use", fd.Name.Name)
			return
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				pass.Reportf(name.Pos(), "%s discards its context.Context parameter", fd.Name.Name)
				return
			}
			ctxParams = append(ctxParams, name)
		}
	}
	if len(ctxParams) == 0 {
		return
	}
	used := false
	for _, name := range ctxParams {
		obj := info.Defs[name]
		if obj == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				used = true
				return false
			}
			return !used
		})
	}
	if !used {
		pass.Reportf(fd.Pos(), "%s never uses its context: check ctx.Err()/ctx.Done() at dispatch granularity or forward it", fd.Name.Name)
	}
}

// checkDispatchLoops implements rule 3.
func checkDispatchLoops(pass *Pass, f *ast.File) {
	// Collect annotation lines in this file.
	marks := make(map[int]token.Pos) // line → comment position
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if isDirective(c.Text, dispatchMarker) {
				marks[pass.Fset.Position(c.Pos()).Line] = c.Pos()
			}
		}
	}
	if len(marks) == 0 {
		return
	}
	claimed := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		line := pass.Fset.Position(n.Pos()).Line
		markLine := -1
		if _, ok := marks[line]; ok {
			markLine = line
		} else if _, ok := marks[line-1]; ok {
			markLine = line - 1
		}
		if markLine < 0 {
			return true
		}
		claimed[markLine] = true
		if !loopChecksContext(pass.TypesInfo, body) {
			pass.Reportf(n.Pos(), "//npdp:dispatch loop has no per-iteration cancellation point: call ctx.Err()/ctx.Done() or forward the context inside the loop body")
		}
		return true
	})
	for line, pos := range marks {
		if !claimed[line] {
			pass.Reportf(pos, "//npdp:dispatch annotation is not attached to a for/range statement (it must sit directly above the loop)")
		}
	}
}

// loopChecksContext reports whether the loop body contains a
// cancellation point: ctx.Err()/ctx.Done()/ctx.Deadline() on a
// context-typed value, or a context-typed value passed to any call.
func loopChecksContext(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Err", "Done", "Deadline":
				if tv, ok := info.Types[sel.X]; ok && isContextType(tv.Type) {
					found = true
					return false
				}
			}
		}
		for _, a := range call.Args {
			if tv, ok := info.Types[a]; ok && isContextType(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
