package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath guards the Go analogue of the paper's Table I register
// kernel: functions annotated //npdp:hotpath (the stage-1 panel kernels
// and the 4×4 CB step) form a closed, allocation-free call universe.
// Inside an annotated function the analyzer rejects everything that
// would put an allocation, a dynamic dispatch, or scheduler work on the
// per-element path:
//
//   - make/new/append, map and slice literals, &composite literals,
//     non-constant string concatenation, closures (FuncLit);
//   - defer, go, select, channel operations;
//   - conversions to interface types and method calls through
//     interfaces;
//   - calls to any function that is not itself //npdp:hotpath-annotated
//     (len/cap/copy/min/max and panic are exempt).
//
// Body-less //go:noescape declarations — assembly kernel stubs like
// panelVecF32 — are legal leaves of the call universe: they have no Go
// body to allocate or dispatch from, and the noescape pragma pins the
// property the analyzer exists to protect (arguments stay off the
// heap). A //go:noescape declaration WITH a body is still rejected the
// usual way; the exemption is only for pure stubs.
//
// This is the syntactic half of the guarantee; the compiler-output half
// (escape analysis and bounds-check elimination on the exact shapes the
// engines instantiate) is enforced by the codegen gate
// (scripts/codegen_gate.sh), which diffs -gcflags='-m
// -d=ssa/check_bce/debug=1' output against a golden baseline.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//npdp:hotpath functions must not allocate, defer, dispatch through interfaces, or call non-hotpath functions",
	Run:  runHotPath,
}

// hotpathMarker annotates hot-loop kernels in a function's doc comment.
const hotpathMarker = "npdp:hotpath"

// noescapeMarker is the compiler pragma on assembly stub declarations.
const noescapeMarker = "go:noescape"

// hotpathBuiltins are builtins that never allocate.
var hotpathBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "min": true, "max": true,
	"real": true, "imag": true,
	// panic is terminal: boxing its argument is off the hot loop by
	// definition, and kernels validate inputs by panicking early.
	"panic": true,
}

func runHotPath(pass *Pass) error {
	info := pass.TypesInfo

	// Collect the annotated set first: calls between annotated functions
	// are the sanctioned internal edges (PanelMinPlus → panelStats).
	annotated := make(map[types.Object]bool)
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if docHasDirective(fd.Doc, hotpathMarker) {
				if obj := info.Defs[fd.Name]; obj != nil {
					annotated[obj] = true
				}
				decls = append(decls, fd)
				continue
			}
			// Assembly stubs: body-less //go:noescape declarations are
			// sanctioned leaves (see the analyzer doc above).
			if fd.Body == nil && docHasDirective(fd.Doc, noescapeMarker) {
				if obj := info.Defs[fd.Name]; obj != nil {
					annotated[obj] = true
				}
			}
		}
	}

	for _, fd := range decls {
		if fd.Body == nil {
			continue
		}
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				pass.Reportf(n.Pos(), "hotpath %s: defer allocates a frame record and delays the epilogue", name)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "hotpath %s: go statement spawns a goroutine on the hot path", name)
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "hotpath %s: select blocks on the scheduler", name)
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "hotpath %s: channel send on the hot path", name)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "hotpath %s: channel receive on the hot path", name)
				}
				if n.Op == token.AND {
					if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
						pass.Reportf(n.Pos(), "hotpath %s: &composite literal escapes to the heap", name)
					}
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isChan := types.Unalias(tv.Type).Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "hotpath %s: ranging over a channel blocks on the scheduler", name)
					}
				}
			case *ast.FuncLit:
				pass.Reportf(n.Pos(), "hotpath %s: closure literal allocates", name)
				return false // don't descend: the closure body is off-path
			case *ast.CompositeLit:
				checkHotpathComposite(pass, info, name, n)
			case *ast.BinaryExpr:
				if n.Op == token.ADD {
					if tv, ok := info.Types[n]; ok && isStringType(tv.Type) && tv.Value == nil {
						pass.Reportf(n.Pos(), "hotpath %s: non-constant string concatenation allocates", name)
					}
				}
			case *ast.CallExpr:
				checkHotpathCall(pass, info, annotated, name, n)
			}
			return true
		})
	}
	return nil
}

// checkHotpathComposite rejects literal kinds that allocate on the heap
// or hash on construction; plain struct/array value literals stay legal
// (they live in registers or on the stack).
func checkHotpathComposite(pass *Pass, info *types.Info, name string, cl *ast.CompositeLit) {
	tv, ok := info.Types[cl]
	if !ok {
		return
	}
	switch types.Unalias(tv.Type).Underlying().(type) {
	case *types.Map:
		pass.Reportf(cl.Pos(), "hotpath %s: map literal allocates", name)
	case *types.Slice:
		pass.Reportf(cl.Pos(), "hotpath %s: slice literal allocates", name)
	}
}

// checkHotpathCall classifies one call inside an annotated function.
func checkHotpathCall(pass *Pass, info *types.Info, annotated map[types.Object]bool, name string, call *ast.CallExpr) {
	// Conversions: free between concrete types, an allocation when the
	// target is an interface.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) {
			pass.Reportf(call.Pos(), "hotpath %s: conversion to interface type %s allocates", name, tv.Type)
		}
		return
	}
	// Interface method dispatch.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv().Underlying()) {
				pass.Reportf(call.Pos(), "hotpath %s: interface dispatch through %s", name, describeExpr(sel.X))
				return
			}
		}
	}
	obj := calleeObject(info, call)
	switch obj := obj.(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make", "new", "append":
			pass.Reportf(call.Pos(), "hotpath %s: %s allocates", name, obj.Name())
		default:
			if !hotpathBuiltins[obj.Name()] {
				pass.Reportf(call.Pos(), "hotpath %s: builtin %s is not hot-path safe", name, obj.Name())
			}
		}
	case *types.Func:
		if !annotated[obj.Origin()] {
			pass.Reportf(call.Pos(), "hotpath %s: calls non-hotpath function %s (annotate it //npdp:hotpath or hoist the call)", name, obj.FullName())
		}
	case *types.Var:
		pass.Reportf(call.Pos(), "hotpath %s: indirect call through %s defeats inlining", name, obj.Name())
	case nil:
		pass.Reportf(call.Pos(), "hotpath %s: cannot resolve callee statically", name)
	}
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
