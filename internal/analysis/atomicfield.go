package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AtomicField enforces the engines' publication protocol: a struct
// field (or package-level variable) that is ever accessed through
// sync/atomic — either by passing its address to the atomic functions
// or by being declared as an atomic.Int64-style typed value — must
// never be read or written plainly. One plain load of an
// atomically-published dependence counter or seal word turns the
// scheduler's release/acquire notification edge (Section IV-B) into a
// data race the race detector only catches when the interleaving
// happens to fire; this check makes the discipline structural.
//
// Allowed plain uses: the address-of step inside an atomic call itself,
// method calls on atomic-typed values (that is the atomic access),
// indexing/ranging a slice of atomic values to reach an element,
// composite-literal initialization, and `init` functions (pre-publication
// setup). Everything else needs a //nolint:npdplint(atomicfield) with a
// justification.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicField,
}

// atomicFuncs are the sync/atomic package-level functions whose first
// argument is the address of the shared word.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicField(pass *Pass) error {
	info := pass.TypesInfo
	parents := buildParents(pass.Files)

	// Phase 1: collect the atomic word set — fields and package-level
	// variables whose address feeds a sync/atomic call anywhere in the
	// package.
	oldStyle := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			obj := calleeObject(info, call)
			if obj == nil || !isPkgPath(obj, "sync/atomic") || !atomicFuncs[obj.Name()] {
				return true
			}
			if target := addressedWord(info, call.Args[0]); target != nil {
				oldStyle[target] = true
			}
			return true
		})
	}

	// Phase 2: flag plain accesses of those words, and plain copies or
	// overwrites of atomic-typed fields/variables.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := info.Uses[n]
				if obj == nil || !oldStyle[obj] {
					return true
				}
				if plainAccessAllowed(info, parents, n) {
					return true
				}
				pass.Reportf(n.Pos(), "plain access of %s, which is accessed via sync/atomic elsewhere; use the atomic API", obj.Name())
			case *ast.AssignStmt:
				checkAtomicAssign(pass, info, n)
			case *ast.RangeStmt:
				checkAtomicRange(pass, info, n)
			case *ast.SelectorExpr, *ast.IndexExpr:
				checkAtomicValueUse(pass, info, parents, n.(ast.Expr))
			}
			return true
		})
	}
	return nil
}

// addressedWord resolves &x.f / &arr[i] / &v in an atomic call's first
// argument to the field or package-level variable object being shared.
func addressedWord(info *types.Info, arg ast.Expr) types.Object {
	un, ok := unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return nil
	}
	expr := unparen(un.X)
	if idx, ok := expr.(*ast.IndexExpr); ok {
		expr = unparen(idx.X)
	}
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.Ident:
		obj := info.Uses[e]
		if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Parent() == v.Pkg().Scope() {
			return obj // package-level variable
		}
	}
	return nil
}

// plainAccessAllowed reports contexts where touching an atomic word
// plainly is legitimate: inside the atomic call's own &x argument,
// composite-literal initialization, or an init function.
func plainAccessAllowed(info *types.Info, parents parentMap, id *ast.Ident) bool {
	var n ast.Node = id
	if sel, ok := parents.parentSkipParens(id).(*ast.SelectorExpr); ok && sel.Sel == id {
		n = sel
	}
	for cur := n; cur != nil; cur = parents[cur] {
		switch p := parents[cur].(type) {
		case *ast.UnaryExpr:
			if p.Op.String() != "&" {
				continue
			}
			if call, ok := parents.parentSkipParens(p).(*ast.CallExpr); ok {
				obj := calleeObject(info, call)
				if obj != nil && isPkgPath(obj, "sync/atomic") {
					return true
				}
			}
		case *ast.KeyValueExpr:
			if p.Key == cur {
				return true // composite-literal field init
			}
		case *ast.FuncDecl:
			if p.Recv == nil && p.Name.Name == "init" {
				return true
			}
		}
	}
	return false
}

// checkAtomicAssign flags assignments whose LHS or RHS moves an
// atomic-typed value as plain data: overwriting a published atomic word
// or copying it out both bypass the release/acquire edge.
func checkAtomicAssign(pass *Pass, info *types.Info, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		if t := exprType(info, lhs); t != nil && isAtomicType(t) {
			pass.Reportf(lhs.Pos(), "plain write to atomic-typed %s; use its Store method", describeExpr(lhs))
		}
	}
	for _, rhs := range as.Rhs {
		if t := exprType(info, rhs); t != nil && isAtomicType(t) && !isAllowedAtomicRHS(rhs) {
			pass.Reportf(rhs.Pos(), "plain copy of atomic-typed %s; use its Load method", describeExpr(rhs))
		}
	}
}

// isAllowedAtomicRHS permits constructing a fresh atomic value (zero
// composite literal) — initialization, not a copy of a published word.
func isAllowedAtomicRHS(e ast.Expr) bool {
	cl, ok := unparen(e).(*ast.CompositeLit)
	return ok && len(cl.Elts) == 0
}

// checkAtomicRange flags `for _, v := range slice` over atomic-typed
// elements: the copied element is a plain load of a published word.
func checkAtomicRange(pass *Pass, info *types.Info, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	if id, ok := rs.Value.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if t := exprType(info, rs.X); t != nil && atomicElem(t) != nil {
		pass.Reportf(rs.Value.Pos(), "ranging copies atomic-typed elements of %s; index and use Load instead", describeExpr(rs.X))
	}
}

// checkAtomicValueUse flags atomic-typed field/element values used as
// plain data (passed, returned, compared) rather than through their
// methods or address.
func checkAtomicValueUse(pass *Pass, info *types.Info, parents parentMap, e ast.Expr) {
	t := exprType(info, e)
	if t == nil || !isAtomicType(t) {
		return
	}
	switch p := parents.parentSkipParens(e).(type) {
	case *ast.SelectorExpr:
		return // receiver of a method call (x.f.Load()) — the atomic access itself
	case *ast.UnaryExpr:
		if p.Op.String() == "&" {
			return // taking the address to call methods through
		}
	case *ast.AssignStmt, *ast.RangeStmt:
		return // reported by the assignment/range checks above
	case *ast.CallExpr:
		// Argument position: copies the word into the callee.
		for _, a := range p.Args {
			if unparen(a) == e {
				pass.Reportf(e.Pos(), "atomic-typed %s passed by value; pass its address or Load it", describeExpr(e))
				return
			}
		}
		return
	case *ast.ReturnStmt:
		pass.Reportf(e.Pos(), "atomic-typed %s returned by value; return its address or Load it", describeExpr(e))
	case *ast.ValueSpec:
		for _, v := range p.Values {
			if unparen(v) == e {
				pass.Reportf(e.Pos(), "atomic-typed %s copied into a variable; use its Load method", describeExpr(e))
				return
			}
		}
	case *ast.BinaryExpr:
		pass.Reportf(e.Pos(), "atomic-typed %s compared as plain data; Load it first", describeExpr(e))
	}
}

// exprType returns the static type of e, nil if unknown.
func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// describeExpr renders a short name for diagnostics.
func describeExpr(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return describeExpr(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return describeExpr(e.X) + "[...]"
	default:
		return fmt.Sprintf("%T", e)
	}
}
