package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NetDeadline enforces the PR 7 liveness fix as a structural rule:
// blocking I/O on a raw net.Conn must run under a deadline regime. A
// read with no deadline turns a silently dead peer into a goroutine
// parked forever; PR 7's heartbeat bug went further — a *partial* frame
// read under a naive per-frame timer desynced the stream — so the
// repo's sanctioned pattern is the rolling-progress deadline
// (sessionReader: re-arm SetReadDeadline before every Read), which this
// analyzer recognizes naturally.
//
// Within each function scope (function literals are scoped separately —
// a spawned reader cannot borrow the deadline its parent armed for a
// different conn), the analyzer flags:
//
//   - conn.Read / conn.Write with no lexically-earlier arming of that
//     conn's SetReadDeadline / SetWriteDeadline (SetDeadline arms both);
//   - passing a net.Conn to a deadline-blind io.Reader/io.Writer
//     parameter (readFrame, writeFrame, io.ReadFull) with no earlier
//     arming — downgrading the conn to a plain stream strips the callee
//     of any way to bound the call. Handing the conn to a net.Conn
//     parameter is fine: the callee owns the regime and is analyzed on
//     its own.
//   - bufio.NewReader over a raw conn, always: buffered reads escape
//     every deadline the caller arms later (the PR 7 frame-desync
//     shape); buffer above a deadline-arming wrapper instead.
//     bufio.NewWriter is allowed — writes flush under the caller's
//     per-send arming.
//
// Arming is tracked per conn expression (src vs dst in a relay are
// distinct regimes) and per direction.
var NetDeadline = &Analyzer{
	Name: "netdeadline",
	Doc:  "net.Conn reads/writes must run under a SetReadDeadline/SetWriteDeadline regime (rolling-progress recognized)",
	Run:  runNetDeadline,
}

func runNetDeadline(pass *Pass) error {
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Each function literal is its own deadline scope; collect every
		// scope root and analyze its body with nested literals excluded.
		var scopes []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scopes = append(scopes, n)
				}
			case *ast.FuncLit:
				scopes = append(scopes, n)
			}
			return true
		})
		for _, s := range scopes {
			checkDeadlineScope(pass, s)
		}
	}
	return nil
}

// connKey renders the conn expression for per-conn arming: "conn",
// "sess.conn", "r.conn". Distinct expressions are distinct regimes.
func connKey(e ast.Expr) string { return describeExpr(e) }

type deadlineArm struct {
	pos   token.Pos
	key   string
	read  bool
	write bool
}

func checkDeadlineScope(pass *Pass, scope ast.Node) {
	info := pass.TypesInfo
	var body *ast.BlockStmt
	switch s := scope.(type) {
	case *ast.FuncDecl:
		body = s.Body
	case *ast.FuncLit:
		body = s.Body
	}

	// Pass 1: collect arming events in this scope.
	var arms []deadlineArm
	inspectScope(scope, body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !isNetConnType(exprType(info, sel.X)) {
			return
		}
		switch sel.Sel.Name {
		case "SetDeadline":
			arms = append(arms, deadlineArm{call.Pos(), connKey(sel.X), true, true})
		case "SetReadDeadline":
			arms = append(arms, deadlineArm{call.Pos(), connKey(sel.X), true, false})
		case "SetWriteDeadline":
			arms = append(arms, deadlineArm{call.Pos(), connKey(sel.X), false, true})
		}
	})
	sort.Slice(arms, func(i, j int) bool { return arms[i].pos < arms[j].pos })

	armed := func(key string, pos token.Pos, write bool) bool {
		for _, a := range arms {
			if a.pos >= pos {
				return false
			}
			if a.key != key {
				continue
			}
			if (write && a.write) || (!write && a.read) {
				return true
			}
		}
		return false
	}

	// Pass 2: flag unarmed blocking I/O.
	inspectScope(scope, body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		// Direct conn.Read / conn.Write.
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && isNetConnType(exprType(info, sel.X)) {
			switch sel.Sel.Name {
			case "Read":
				if !armed(connKey(sel.X), call.Pos(), false) {
					pass.Reportf(call.Pos(),
						"%s.Read with no deadline armed: a dead peer parks this goroutine forever; arm SetReadDeadline before each read (rolling-progress)", connKey(sel.X))
				}
			case "Write":
				if !armed(connKey(sel.X), call.Pos(), true) {
					pass.Reportf(call.Pos(),
						"%s.Write with no deadline armed: a stalled peer blocks this path forever; arm SetWriteDeadline first", connKey(sel.X))
				}
			}
			return
		}
		checkConnArgs(pass, info, call, armed)
	})
}

// checkConnArgs flags net.Conn values downgraded to deadline-blind
// stream parameters, and bufio.NewReader over a raw conn.
func checkConnArgs(pass *Pass, info *types.Info, call *ast.CallExpr, armed func(string, token.Pos, bool) bool) {
	obj := calleeObject(info, call)
	if obj == nil {
		// A func-typed variable still has a signature to check.
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}

	// bufio.NewReader(conn): buffered bytes outlive every later deadline.
	if isPkgPath(obj, "bufio") && (obj.Name() == "NewReader" || obj.Name() == "NewReaderSize") {
		if len(call.Args) > 0 && isNetConnType(exprType(info, call.Args[0])) {
			pass.Reportf(call.Args[0].Pos(),
				"bufio.NewReader over a raw net.Conn: buffered reads escape the deadline regime (the PR 7 frame-desync shape); wrap the conn in a deadline-arming reader first")
		}
		return
	}
	if isPkgPath(obj, "bufio") {
		return // NewWriter flushes under the caller's per-send arming
	}

	params := sig.Params()
	for i, arg := range call.Args {
		e := unparen(arg)
		if _, isSel := e.(*ast.SelectorExpr); !isSel {
			if _, isIdent := e.(*ast.Ident); !isIdent {
				continue // only direct conn values, not composites
			}
		}
		if !isNetConnType(exprType(info, e)) {
			continue
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isDeadlineBlindReaderWriter(pt) {
			continue
		}
		// Reader-shaped params need a read arm; writer-shaped a write arm;
		// ReadWriter either direction armed is not enough — require both
		// halves it exposes.
		iface := types.Unalias(pt).Underlying().(*types.Interface)
		needRead, needWrite := false, false
		for m := 0; m < iface.NumMethods(); m++ {
			switch iface.Method(m).Name() {
			case "Read":
				needRead = true
			case "Write":
				needWrite = true
			}
		}
		key := connKey(e)
		if needRead && !armed(key, call.Pos(), false) {
			pass.Reportf(arg.Pos(),
				"%s handed to a deadline-blind reader with no deadline armed: the callee cannot bound the read; arm SetReadDeadline first or pass a deadline-arming wrapper", key)
		} else if needWrite && !armed(key, call.Pos(), true) {
			pass.Reportf(arg.Pos(),
				"%s handed to a deadline-blind writer with no deadline armed: the callee cannot bound the write; arm SetWriteDeadline first", key)
		}
	}
}

// inspectScope walks body, skipping nested function literals: each
// literal is its own deadline scope.
func inspectScope(root ast.Node, body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != root {
			return false
		}
		fn(n)
		return true
	})
}
