package analysis

import (
	"go/token"
	"go/types"
	"os"
	"strings"
	"sync"
)

// The errdrop watch list used to be a hand-maintained map in this
// package — which meant a new typed error in cluster or pager silently
// escaped the analyzer until someone remembered the list. The list is
// now discovered from source: declaring
//
//	//npdplint:watch
//	type ErrPageCorrupt struct { ... }
//
// (the directive anywhere in the doc comment) is what makes a type
// watched. The declaration site travels with the type, so the analyzer
// follows it through gc export data: a type's object position points
// into its declaring file, and the directive is read from the lines
// above the declaration. Works identically for source-loaded fixture
// packages and for real packages seen only through their export data.
const watchMarker = "npdplint:watch"

// watchCache memoizes per-object decisions and per-file line splits:
// one package's analysis asks about the same handful of error types at
// every call site.
var watchCache = struct {
	sync.Mutex
	decided map[types.Object]bool
	files   map[string][]string
}{
	decided: make(map[types.Object]bool),
	files:   make(map[string][]string),
}

// typeHasWatchDirective reports whether the declaration of obj is
// annotated //npdplint:watch in its doc comment.
func typeHasWatchDirective(fset *token.FileSet, obj types.Object) bool {
	if obj == nil {
		return false
	}
	watchCache.Lock()
	defer watchCache.Unlock()
	if v, ok := watchCache.decided[obj]; ok {
		return v
	}
	v := readWatchDirective(fset, obj)
	watchCache.decided[obj] = v
	return v
}

func readWatchDirective(fset *token.FileSet, obj types.Object) bool {
	pos := fset.Position(obj.Pos())
	if !pos.IsValid() || pos.Filename == "" {
		return false
	}
	lines, ok := watchCache.files[pos.Filename]
	if !ok {
		data, err := os.ReadFile(pos.Filename)
		if err != nil {
			watchCache.files[pos.Filename] = nil
			return false
		}
		lines = strings.Split(string(data), "\n")
		watchCache.files[pos.Filename] = lines
	}
	if pos.Line-1 >= len(lines) {
		return false
	}
	// Scan the contiguous comment block above the declaration line.
	for i := pos.Line - 2; i >= 0; i-- {
		text := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(text, "//") {
			return false
		}
		if isDirective(text, watchMarker) {
			return true
		}
	}
	return false
}
