package analysis_test

import (
	"go/types"
	"strings"
	"testing"

	"cellnpdp/internal/analysis"
	"cellnpdp/internal/analysis/analysistest"
	"cellnpdp/internal/analysis/driver"
)

func one(a *analysis.Analyzer) []*analysis.Analyzer { return []*analysis.Analyzer{a} }

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(analysis.AtomicField), "atomicfield_a")
}

func TestCtxDispatch(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(analysis.CtxDispatch), "ctxdispatch_a")
}

func TestCtxDispatchMainExempt(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src", one(analysis.CtxDispatch), "ctxdispatch_main")
	if len(diags) != 0 {
		t.Errorf("main package should be exempt, got %d findings", len(diags))
	}
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(analysis.HotPath), "hotpath_a")
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(analysis.ErrDrop), "errdrop_a")
}

// TestNolintDiscipline checks the directive-hygiene findings directly:
// a want comment on the directive's line would itself read as a
// justification, so these fixtures cannot use the harness.
func TestNolintDiscipline(t *testing.T) {
	pkg, err := driver.LoadFixture("testdata/src", "nolintbad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := pkg.Run(analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		if d.Analyzer != "nolint" {
			t.Errorf("unexpected non-nolint finding: %+v", d)
			continue
		}
		got = append(got, d.Message)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 nolint findings, got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0], "requires a justification") && !strings.Contains(got[1], "requires a justification") {
		t.Errorf("missing bare-directive finding in %v", got)
	}
	found := false
	for _, m := range got {
		if strings.Contains(m, `unknown analyzer "nosuch"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing unknown-analyzer finding in %v", got)
	}
}

// TestAllRegistry pins the suite roster: cmd/npdplint -c and the nolint
// scoping both resolve analyzers by these names.
func TestAllRegistry(t *testing.T) {
	want := []string{
		"atomicfield", "ctxdispatch", "hotpath", "errdrop",
		"allocbound", "gospawn", "netdeadline", "verifyfirst",
	}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("want %d analyzers, got %d", len(want), len(all))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("All()[%d] = %q, want %q", i, all[i].Name, name)
		}
		if analysis.ByName(name) != all[i] {
			t.Errorf("ByName(%q) does not resolve to All()[%d]", name, i)
		}
	}
	if analysis.ByName("nosuch") != nil {
		t.Error("ByName should return nil for unknown names")
	}
}

func TestAllocBound(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(analysis.AllocBound), "allocbound_a")
}

func TestGoSpawn(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(analysis.GoSpawn), "gospawn_a")
}

func TestNetDeadline(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(analysis.NetDeadline), "netdeadline_a")
}

func TestVerifyFirst(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(analysis.VerifyFirst), "verifyfirst_a")
}

// TestSeededRegression is the positive direction of the ci.sh lint
// gate: re-introducing the PR 7 nblocks alloc bomb or deleting the
// session read deadline must make the suite report (and so npdplint
// exit non-zero). The seed package mirrors the real decodeTaskMsg and
// runSession shapes with the guard and the arming deleted.
func TestSeededRegression(t *testing.T) {
	pkg, err := driver.LoadFixture("testdata/src", "regression_seed")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := pkg.Run(analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := make(map[string]int)
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["allocbound"] == 0 {
		t.Errorf("re-seeded nblocks bomb not caught by allocbound; findings: %+v", diags)
	}
	if byAnalyzer["netdeadline"] < 2 {
		t.Errorf("deleted deadline + bufio-over-conn expected >= 2 netdeadline findings, got %d: %+v",
			byAnalyzer["netdeadline"], diags)
	}
	if len(diags) == 0 {
		t.Fatal("seeded regression produced no findings: the ci.sh gate would pass a re-introduced bomb")
	}
}

// TestLiveTreeClean is the negative direction of the ci.sh lint gate:
// the real tree must be clean under all eight analyzers, through the
// same go list -export / gc-importer path npdplint itself uses. This is
// also the cross-package watch-directive test for source-loaded
// packages: cluster, pager, and resilience carry //npdplint:watch
// types and import each other's consumers.
func TestLiveTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	pkgs, err := driver.Load("cellnpdp/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		diags, err := pkg.Run(analysis.All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s:%d: [%s] %s", pkg.ImportPath, d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
}

// TestWatchAcrossExportData proves the directive survives the gc
// export-data boundary: a package that only sees cluster through its
// compiled export data must still resolve //npdplint:watch on
// ErrEpochFenced, because the type's object position points back into
// the declaring source file.
func TestWatchAcrossExportData(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	pkgs, err := driver.Load("cellnpdp/cmd/cellnpdp")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	pkg := pkgs[0]
	var clusterPkg *types.Package
	for _, imp := range pkg.Pkg.Imports() {
		if imp.Path() == "cellnpdp/internal/cluster" {
			clusterPkg = imp
		}
	}
	if clusterPkg == nil {
		t.Fatal("cmd/cellnpdp does not import internal/cluster")
	}
	for name, want := range map[string]bool{
		"ErrEpochFenced":     true,
		"ErrProtocolVersion": true,
		"Options":            false,
	} {
		obj := clusterPkg.Scope().Lookup(name)
		if obj == nil {
			t.Fatalf("cluster.%s not found in export data", name)
		}
		if got := analysis.IsWatchedErrTypeForTest(pkg.Fset, obj.Type()); got != want {
			t.Errorf("watch(%s) through export data = %v, want %v", name, got, want)
		}
	}
}
