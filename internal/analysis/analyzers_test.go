package analysis_test

import (
	"strings"
	"testing"

	"cellnpdp/internal/analysis"
	"cellnpdp/internal/analysis/analysistest"
	"cellnpdp/internal/analysis/driver"
)

func one(a *analysis.Analyzer) []*analysis.Analyzer { return []*analysis.Analyzer{a} }

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(analysis.AtomicField), "atomicfield_a")
}

func TestCtxDispatch(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(analysis.CtxDispatch), "ctxdispatch_a")
}

func TestCtxDispatchMainExempt(t *testing.T) {
	diags := analysistest.Run(t, "testdata/src", one(analysis.CtxDispatch), "ctxdispatch_main")
	if len(diags) != 0 {
		t.Errorf("main package should be exempt, got %d findings", len(diags))
	}
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(analysis.HotPath), "hotpath_a")
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata/src", one(analysis.ErrDrop), "errdrop_a")
}

// TestNolintDiscipline checks the directive-hygiene findings directly:
// a want comment on the directive's line would itself read as a
// justification, so these fixtures cannot use the harness.
func TestNolintDiscipline(t *testing.T) {
	pkg, err := driver.LoadFixture("testdata/src", "nolintbad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := pkg.Run(analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		if d.Analyzer != "nolint" {
			t.Errorf("unexpected non-nolint finding: %+v", d)
			continue
		}
		got = append(got, d.Message)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 nolint findings, got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0], "requires a justification") && !strings.Contains(got[1], "requires a justification") {
		t.Errorf("missing bare-directive finding in %v", got)
	}
	found := false
	for _, m := range got {
		if strings.Contains(m, `unknown analyzer "nosuch"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing unknown-analyzer finding in %v", got)
	}
}

// TestAllRegistry pins the suite roster: cmd/npdplint -c and the nolint
// scoping both resolve analyzers by these names.
func TestAllRegistry(t *testing.T) {
	want := []string{"atomicfield", "ctxdispatch", "hotpath", "errdrop"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("want %d analyzers, got %d", len(want), len(all))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("All()[%d] = %q, want %q", i, all[i].Name, name)
		}
		if analysis.ByName(name) != all[i] {
			t.Errorf("ByName(%q) does not resolve to All()[%d]", name, i)
		}
	}
	if analysis.ByName("nosuch") != nil {
		t.Error("ByName should return nil for unknown names")
	}
}
