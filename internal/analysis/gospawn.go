package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoSpawn enforces the goroutine-lifecycle discipline the coordinator's
// writer fleet, the pager's prefetchers, and the serve drain all follow:
// a goroutine spawned outside tests must be tied to something that ends
// it. At a million-user scale an untied goroutine is a slow leak the
// race detector never sees; every spawn in this tree is bounded by one
// of the recognized regimes:
//
//   - a context: the body (or the same-package function it runs)
//     mentions a context.Context value — ctx-aware loops, DialContext;
//   - a sync.WaitGroup: the body calls Add/Done/Wait, so a drain
//     barrier observes its exit;
//   - a channel: the body sends, receives, selects, closes, or ranges
//     over a channel — done/poison/completion signalling;
//   - a conn deadline: the body arms SetReadDeadline/SetWriteDeadline/
//     SetDeadline, so its blocking I/O cannot outlive the regime;
//   - a listener: the body calls Accept — closing the listener is the
//     accept-loop's documented teardown.
//
// A spawn with none of these is a finding. When the go statement runs a
// named same-package function (generic methods resolve through their
// Origin) or a local variable bound to exactly one function literal,
// that body is inspected; spawning a context.CancelFunc is a lifecycle
// action in itself; for external callees the arguments must carry the
// lifecycle (a context, channel, or WaitGroup argument).
var GoSpawn = &Analyzer{
	Name: "gospawn",
	Doc:  "go statements outside tests must be tied to a lifecycle (ctx, WaitGroup, channel, deadline, or listener)",
	Run:  runGoSpawn,
}

func runGoSpawn(pass *Pass) error {
	info := pass.TypesInfo

	// Index same-package function bodies so `go co.writeLoop(sess)`
	// resolves to the loop that ranges the session's out channel.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	// Index function literals bound to local variables so
	// `handshake := func(c net.Conn) { ... }; go handshake(c)` resolves
	// to the literal's body. A variable assigned more than one literal
	// is ambiguous and stays unresolved.
	varLits := make(map[types.Object]*ast.FuncLit)
	bind := func(id *ast.Ident, lit *ast.FuncLit) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if prev, ok := varLits[obj]; ok && prev != lit {
			varLits[obj] = nil
			return
		}
		varLits[obj] = lit
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if lit, ok := unparen(rhs).(*ast.FuncLit); ok {
						if id, ok := unparen(n.Lhs[i]).(*ast.Ident); ok {
							bind(id, lit)
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, v := range n.Values {
					if lit, ok := unparen(v).(*ast.FuncLit); ok {
						bind(n.Names[i], lit)
					}
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if inTestFile(pass.Fset, gs.Pos()) {
				return false
			}
			if goStmtTied(info, decls, varLits, gs) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine has no lifecycle: tie it to a context, WaitGroup, channel, conn deadline, or listener so it provably exits")
			return true
		})
	}
	return nil
}

// goStmtTied reports whether the spawned work is bound to a recognized
// lifecycle.
func goStmtTied(info *types.Info, decls map[types.Object]*ast.FuncDecl, varLits map[types.Object]*ast.FuncLit, gs *ast.GoStmt) bool {
	seen := make(map[*ast.BlockStmt]bool)
	// Function-literal spawn: inspect the literal body.
	if lit, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return bodyHasLifecycle(info, decls, varLits, lit.Body, seen)
	}
	// Spawning a cancel func is itself a lifecycle action: the call
	// tears a context down and returns.
	if isCancelFuncType(exprType(info, gs.Call.Fun)) {
		return true
	}
	// Named spawn declared in this package: inspect the callee body.
	// Origin maps an instantiated generic method (the object the call
	// site resolves) back to the declaration the decls index holds.
	if obj := calleeObject(info, gs.Call); obj != nil {
		if fn, ok := obj.(*types.Func); ok {
			obj = fn.Origin()
		}
		if fd, ok := decls[obj]; ok {
			if bodyHasLifecycle(info, decls, varLits, fd.Body, seen) {
				return true
			}
		} else if lit := varLits[obj]; lit != nil {
			// A local func variable bound to exactly one literal.
			if bodyHasLifecycle(info, decls, varLits, lit.Body, seen) {
				return true
			}
		} else {
			// External or unresolvable body: the lifecycle must travel in
			// the arguments.
			for _, arg := range gs.Call.Args {
				t := exprType(info, arg)
				if isContextType(t) || isChanType(t) || isWaitGroupType(t) {
					return true
				}
			}
		}
	}
	return false
}

// lifecycleDepth bounds how many call levels bodyHasLifecycle follows:
// a session loop reporting through one local post() closure is depth 2;
// anything deeper is structure the analyzer should not guess at.
const lifecycleDepth = 3

// bodyHasLifecycle scans a spawned body (including nested literals —
// a watcher the goroutine itself starts still witnesses the regime) for
// any of the recognized lifecycle markers. Calls to same-package
// functions and to locals bound to a single literal are followed up to
// lifecycleDepth bodies: a tail loop whose exit signalling lives in a
// post() closure is still tied.
func bodyHasLifecycle(info *types.Info, decls map[types.Object]*ast.FuncDecl, varLits map[types.Object]*ast.FuncLit, body *ast.BlockStmt, seen map[*ast.BlockStmt]bool) bool {
	if body == nil || seen[body] {
		return false
	}
	seen[body] = true
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			tied = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				tied = true
			}
		case *ast.RangeStmt:
			if isChanType(exprType(info, n.X)) {
				tied = true
			}
		case *ast.CallExpr:
			if callIsLifecycle(info, n) {
				tied = true
				break
			}
			if len(seen) >= lifecycleDepth {
				break
			}
			if obj := calleeObject(info, n); obj != nil {
				if fn, ok := obj.(*types.Func); ok {
					obj = fn.Origin()
				}
				if fd, ok := decls[obj]; ok {
					tied = bodyHasLifecycle(info, decls, varLits, fd.Body, seen)
				} else if lit := varLits[obj]; lit != nil {
					tied = bodyHasLifecycle(info, decls, varLits, lit.Body, seen)
				}
			}
		case *ast.Ident:
			if isContextType(exprType(info, n)) {
				tied = true
			}
		case *ast.SelectorExpr:
			if isContextType(exprType(info, n)) {
				tied = true
			}
		}
		return !tied
	})
	return tied
}

// callIsLifecycle matches the call forms that witness a lifecycle:
// closing a channel, WaitGroup methods, deadline arming, and Accept.
func callIsLifecycle(info *types.Info, call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "close" && len(call.Args) == 1 {
			if obj, ok := info.Uses[fun].(*types.Builtin); ok && obj.Name() == "close" {
				return true
			}
		}
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Done", "Add", "Wait":
			if isWaitGroupType(exprType(info, fun.X)) {
				return true
			}
		case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
			return true
		case "Accept":
			return true
		}
	}
	return false
}
