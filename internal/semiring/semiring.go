// Package semiring defines the algebraic structures NPDP recurrences run
// over. The Zuker-style recurrence of the paper is the tropical (min-plus)
// semiring: ⊕ = min, ⊗ = +. Keeping the algebra explicit lets the same
// blocking machinery serve the matrix-parenthesization and optimal-BST
// applications, which use weighted variants of the same recurrence.
package semiring

// Elem constrains the element types supported by the optimized engines.
// The paper evaluates single precision (4 lanes per 128-bit register) and
// double precision (2 lanes).
type Elem interface {
	~float32 | ~float64
}

// Inf returns the additive identity of the min-plus semiring (the "no
// solution yet" value) for element type E. It is a large finite value
// rather than +Inf so that modeled arithmetic (x+Inf) cannot generate NaN
// through Inf-Inf in user-supplied weight hooks; it behaves as infinity
// for every problem size the engines accept.
func Inf[E Elem]() E {
	return E(1e30)
}

// MinPlus is the tropical semiring used by the paper's kernel:
// Combine(a,b) ⊕-accumulates a ⊗ b = a + b under min.
type MinPlus[E Elem] struct{}

// Zero returns the ⊕ identity (infinity).
func (MinPlus[E]) Zero() E { return Inf[E]() }

// One returns the ⊗ identity (0).
func (MinPlus[E]) One() E { return 0 }

// Add is ⊕ (min).
func (MinPlus[E]) Add(a, b E) E {
	if b < a {
		return b
	}
	return a
}

// Mul is ⊗ (+).
func (MinPlus[E]) Mul(a, b E) E { return a + b }

// Min returns the smaller of a and b. It is the scalar form of the
// compare+select instruction pair of the SPE kernel.
func Min[E Elem](a, b E) E {
	if b < a {
		return b
	}
	return a
}

// MinIdx returns the smaller of a and b along with which argument won
// (0 for a, 1 for b). Tracebacks use it to recover argmin decisions.
func MinIdx[E Elem](a, b E) (E, int) {
	if b < a {
		return b, 1
	}
	return a, 0
}
