package semiring

import (
	"testing"
	"testing/quick"
)

func TestMinPlusLaws(t *testing.T) {
	// Floating-point + is not associative, so only the laws the engines
	// actually rely on are required exactly: ⊕ (min) is commutative and
	// associative, and ⊗ (one addition) distributes over ⊕ because
	// adding a constant is monotone. These hold bit-exactly, which is
	// what makes every engine's output bit-identical.
	s := MinPlus[float64]{}
	if err := quick.Check(func(a, b, c float64) bool {
		comm := s.Add(a, b) == s.Add(b, a)
		assoc := s.Add(s.Add(a, b), c) == s.Add(a, s.Add(b, c))
		dist := s.Mul(a, s.Add(b, c)) == s.Add(s.Mul(a, b), s.Mul(a, c))
		return comm && assoc && dist
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMinPlusIdentities(t *testing.T) {
	s := MinPlus[float32]{}
	for _, v := range []float32{0, 1, -5, 1e6} {
		if s.Add(v, s.Zero()) != v {
			t.Errorf("Zero is not ⊕-identity for %v", v)
		}
		if s.Mul(v, s.One()) != v {
			t.Errorf("One is not ⊗-identity for %v", v)
		}
	}
}

func TestInfBehavesAsInfinity(t *testing.T) {
	// Inf + Inf must not overflow float32, and Inf must dominate any
	// realistic value under min.
	inf32 := Inf[float32]()
	sum := inf32 + inf32
	if sum < inf32 {
		t.Errorf("Inf+Inf overflowed: %v", sum)
	}
	if Min[float32](inf32, 1e20) != 1e20 {
		t.Error("finite value did not beat Inf")
	}
	if Min(Inf[float64](), 1.0) != 1.0 {
		t.Error("f64 Inf not dominated")
	}
}

func TestMin(t *testing.T) {
	if Min(3.0, 2.0) != 2.0 || Min(2.0, 3.0) != 2.0 || Min(2.0, 2.0) != 2.0 {
		t.Error("Min wrong")
	}
}

func TestMinIdx(t *testing.T) {
	if v, i := MinIdx(3.0, 2.0); v != 2.0 || i != 1 {
		t.Errorf("MinIdx(3,2) = %v,%d", v, i)
	}
	if v, i := MinIdx(2.0, 3.0); v != 2.0 || i != 0 {
		t.Errorf("MinIdx(2,3) = %v,%d", v, i)
	}
	// Ties keep the first argument (stable).
	if _, i := MinIdx(5.0, 5.0); i != 0 {
		t.Error("MinIdx tie not stable")
	}
}
