package perfmodel

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file extends the Section V model from "which block size" to
// "which kernel": the engines now have several bit-identical stage-1
// implementations (scalar CB-step reference, register-blocked Go panel,
// AVX2/NEON vector panel, and the Four-Russians lattice kernel), and
// the same measured-constants-into-closed-form discipline the paper
// uses for N₂ picks between them. Per-kernel ns/cell is calibrated once
// per machine (scripts/kernel_calibration.txt, regenerated like the
// codegen baseline), and PickKernel evaluates the calibrated costs for
// a concrete workload shape.

// Kernel identifies one stage-1 implementation.
type Kernel int

// The stage-1 kernels, in escalation order.
const (
	// KernelAuto lets PickKernel decide (the options zero value).
	KernelAuto Kernel = iota
	// KernelScalar is the 4×4 CB-step reference (kernel.MulMinPlus).
	KernelScalar
	// KernelPanel is the register-blocked pure-Go panel.
	KernelPanel
	// KernelVector is the AVX2/NEON assembly panel (float32 only).
	KernelVector
	// KernelFourRussians is the two-vector lattice kernel
	// (internal/fourrussians; integer 0/1-difference DPs only).
	KernelFourRussians
)

// String names the kernel as it appears in calibration files and bench
// rows.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelScalar:
		return "scalar"
	case KernelPanel:
		return "panel"
	case KernelVector:
		return "vector"
	case KernelFourRussians:
		return "fourrussians"
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

// ParseKernel inverts String.
func ParseKernel(s string) (Kernel, error) {
	for k := KernelAuto; k <= KernelFourRussians; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("perfmodel: unknown kernel %q", s)
}

// Shape describes one stage-1 workload for kernel selection.
type Shape struct {
	// Block is the memory-block side t (the paper's N₂); stage-1 runs
	// 4×t panel products over t×t blocks.
	Block int
	// N is the total problem size (DP points) — the Four-Russians
	// decision is asymptotic, so it needs n, not just t.
	N int
	// Float32 reports single-precision elements; the assembly vector
	// kernels exist only for float32.
	Float32 bool
	// Lattice reports a 0/1-difference integer DP (Nussinov max-pairs):
	// the only workload where Four-Russians is sound.
	Lattice bool
}

// Calibration holds a machine's measured per-kernel costs.
type Calibration struct {
	// Arch is the GOARCH the numbers were measured on.
	Arch string
	// ISA is the vector ISA in use ("avx2", "neon", "none").
	ISA string
	// NsPerCell maps kernel → block side → measured ns per relaxed
	// cell. Missing entries fall back to the kernel's worst measured
	// block (or defaults).
	NsPerCell map[Kernel]map[int]float64
	// FourRussiansCrossover is the smallest n at which the
	// Four-Russians solve beat the serial Nussinov reference; 0 means
	// it never won in calibration.
	FourRussiansCrossover int
}

// defaultCalibration is a conservative built-in table (measured on the
// reference amd64 dev machine; see scripts/kernel_calibration.txt for
// the regenerated per-machine numbers). Values are ns/cell of the
// stage-1 panel product.
func defaultCalibration(arch, isa string) *Calibration {
	c := &Calibration{
		Arch: arch,
		ISA:  isa,
		NsPerCell: map[Kernel]map[int]float64{
			KernelScalar: {32: 1.6},
			KernelPanel:  {32: 0.65},
		},
		FourRussiansCrossover: 768,
	}
	if isa != "none" {
		c.NsPerCell[KernelVector] = map[int]float64{32: 0.06}
	}
	return c
}

// nsPerCell returns the calibrated cost of k at block side t, falling
// back to the nearest measured block.
func (c *Calibration) nsPerCell(k Kernel, t int) (float64, bool) {
	m := c.NsPerCell[k]
	if len(m) == 0 {
		return 0, false
	}
	if v, ok := m[t]; ok {
		return v, true
	}
	// Nearest block side wins; ties prefer the smaller (pessimistic for
	// vector kernels, whose advantage grows with t).
	bestD := -1
	var bestV float64
	for b, v := range m {
		d := b - t
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			bestD, bestV = d, v
		}
	}
	return bestV, true
}

var (
	calMu     sync.RWMutex
	activeCal *Calibration
	pickCount atomic.Int64
)

// SetActiveCalibration installs a measured calibration (normally loaded
// from scripts/kernel_calibration.txt at process start) and returns a
// restore func for tests. Passing nil reverts to the built-in defaults.
func SetActiveCalibration(c *Calibration) (restore func()) {
	calMu.Lock()
	prev := activeCal
	activeCal = c
	calMu.Unlock()
	return func() {
		calMu.Lock()
		activeCal = prev
		calMu.Unlock()
	}
}

// ActiveCalibration returns the installed calibration, or the built-in
// defaults for the given arch/ISA when none is installed.
func ActiveCalibration(arch, isa string) *Calibration {
	calMu.RLock()
	c := activeCal
	calMu.RUnlock()
	if c != nil {
		return c
	}
	return defaultCalibration(arch, isa)
}

// PickCount returns the number of PickKernel calls since process start.
// The engines hoist selection to once per solve; the regression test
// asserts this counter grows by exactly one per solve, not per block.
func PickCount() int64 { return pickCount.Load() }

// PickKernel selects the stage-1 kernel for a workload the way
// Section V picks block sizes: evaluate the calibrated cost of every
// sound kernel and take the cheapest.
//
//   - Lattice shapes beyond the measured Four-Russians crossover take
//     the O(n³/log n) kernel — its win is asymptotic, not per-cell.
//   - float32 shapes take the vector panel when the ISA is present and
//     calibration agrees it is cheapest (it always is where supported).
//   - Everything else takes the Go panel; KernelScalar survives only
//     as an explicit override (ablations, NoPanelKernel).
func PickKernel(shape Shape, arch, isa string) Kernel {
	pickCount.Add(1)
	cal := ActiveCalibration(arch, isa)
	if shape.Lattice {
		if cx := cal.FourRussiansCrossover; cx > 0 && shape.N >= cx {
			return KernelFourRussians
		}
		return KernelScalar // lattice DPs have no float panel form
	}
	best, bestCost := KernelPanel, 0.0
	if v, ok := cal.nsPerCell(KernelPanel, shape.Block); ok {
		bestCost = v
	}
	if shape.Float32 && isa != "none" && shape.Block%4 == 0 {
		if v, ok := cal.nsPerCell(KernelVector, shape.Block); ok && (bestCost == 0 || v < bestCost) {
			best = KernelVector
		}
	}
	return best
}

// FormatCalibration renders a calibration as the persisted file body —
// the same normalized-text discipline as the codegen baseline.
func FormatCalibration(c *Calibration) string {
	var b strings.Builder
	b.WriteString("# stage-1 kernel calibration: measured ns/cell per kernel × block side,\n")
	b.WriteString("# plus the Four-Russians crossover n. Regenerate with:\n")
	b.WriteString("#   go run ./cmd/benchtables -calibrate scripts/kernel_calibration.txt\n")
	fmt.Fprintf(&b, "[%s/%s]\n", c.Arch, c.ISA)
	fmt.Fprintf(&b, "fourrussians-crossover\t%d\n", c.FourRussiansCrossover)
	type row struct {
		k Kernel
		t int
		v float64
	}
	var rows []row
	for k, m := range c.NsPerCell {
		for t, v := range m {
			rows = append(rows, row{k, t, v})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].k != rows[j].k {
			return rows[i].k < rows[j].k
		}
		return rows[i].t < rows[j].t
	})
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%d\t%.4f\n", r.k, r.t, r.v)
	}
	return b.String()
}

// LoadCalibrationFile installs the section of the persisted calibration
// file matching arch/isa (with the usual arch-only fallback). A missing
// file or a file with no matching section leaves the built-in defaults
// active and is not an error; a malformed file is. Returns whether a
// section was installed.
func LoadCalibrationFile(path, arch, isa string) (bool, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	c, err := ParseCalibration(string(body), arch, isa)
	if err != nil {
		return false, fmt.Errorf("%s: %v", path, err)
	}
	if c == nil {
		return false, nil
	}
	SetActiveCalibration(c)
	return true, nil
}

// ParseCalibration reads a calibration file body. Only the section
// matching arch/isa is returned; with no exact match the first section
// of the same arch is taken, and with no match at all (nil, nil) — the
// caller falls back to defaults.
func ParseCalibration(s, arch, isa string) (*Calibration, error) {
	var (
		cur      *Calibration
		match    *Calibration
		archOnly *Calibration
	)
	for i, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]") {
			sec := strings.TrimSuffix(strings.TrimPrefix(line, "["), "]")
			a, i2, ok := strings.Cut(sec, "/")
			if !ok {
				return nil, fmt.Errorf("calibration line %d: bad section %q", i+1, line)
			}
			cur = &Calibration{Arch: a, ISA: i2, NsPerCell: make(map[Kernel]map[int]float64)}
			if a == arch && i2 == isa && match == nil {
				match = cur
			}
			if a == arch && archOnly == nil {
				archOnly = cur
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("calibration line %d: data before any [arch/isa] section", i+1)
		}
		parts := strings.Split(line, "\t")
		if len(parts) == 2 && parts[0] == "fourrussians-crossover" {
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("calibration line %d: bad crossover %q", i+1, parts[1])
			}
			cur.FourRussiansCrossover = n
			continue
		}
		if len(parts) != 3 {
			return nil, fmt.Errorf("calibration line %d: want 'kernel\\tblock\\tns', got %q", i+1, line)
		}
		k, err := ParseKernel(parts[0])
		if err != nil {
			return nil, fmt.Errorf("calibration line %d: %v", i+1, err)
		}
		t, err := strconv.Atoi(parts[1])
		if err != nil || t <= 0 {
			return nil, fmt.Errorf("calibration line %d: bad block %q", i+1, parts[1])
		}
		v, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("calibration line %d: bad ns/cell %q", i+1, parts[2])
		}
		if cur.NsPerCell[k] == nil {
			cur.NsPerCell[k] = make(map[int]float64)
		}
		cur.NsPerCell[k][t] = v
	}
	if match != nil {
		return match, nil
	}
	return archOnly, nil
}
