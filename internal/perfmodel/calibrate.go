package perfmodel

import (
	"math/rand"
	"runtime"
	"time"

	"cellnpdp/internal/fourrussians"
	"cellnpdp/internal/kernel"
)

// Calibrate measures this machine's per-kernel stage-1 costs — the
// empirical constants the Section V model needs before PickKernel can
// rank kernels the way the paper ranks block sizes. It times the scalar
// CB-step reference, the pure-Go panel (vector dispatch forced off) and
// the vector panel (where the ISA exists) over the given block sides,
// and probes the Four-Russians crossover against the serial Nussinov
// reference. Runs take a few hundred milliseconds; the result is meant
// to be persisted (FormatCalibration → scripts/kernel_calibration.txt)
// and reloaded, not measured per process.
func Calibrate(blocks []int) *Calibration {
	if len(blocks) == 0 {
		blocks = []int{16, 32, 64}
	}
	cal := &Calibration{
		Arch:      runtime.GOARCH,
		ISA:       kernel.VectorISA(),
		NsPerCell: make(map[Kernel]map[int]float64),
	}
	put := func(k Kernel, t int, ns float64) {
		if cal.NsPerCell[k] == nil {
			cal.NsPerCell[k] = make(map[int]float64)
		}
		cal.NsPerCell[k][t] = ns
	}
	for _, t := range blocks {
		if t < 4 || t%4 != 0 {
			continue
		}
		c, a, b := randF32(t, 1), randF32(t, 2), randF32(t, 3)
		put(KernelScalar, t, timeNsPerCell(t, func() { kernel.MulMinPlus(c, a, b, t) }))
		func() {
			defer kernel.SetVectorEnabled(false)()
			put(KernelPanel, t, timeNsPerCell(t, func() { kernel.PanelMinPlusF32(c, a, b, t) }))
		}()
		if kernel.VectorEnabled() {
			put(KernelVector, t, timeNsPerCell(t, func() { kernel.PanelMinPlusF32(c, a, b, t) }))
		}
	}
	cal.FourRussiansCrossover = fourRussiansCrossover()
	return cal
}

// timeNsPerCell times fn (one t×t panel product = t³ relaxed cells)
// with enough repetitions to swamp timer granularity.
func timeNsPerCell(t int, fn func()) float64 {
	fn() // warm caches and page in
	cells := float64(t) * float64(t) * float64(t)
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		el := time.Since(start)
		if el >= 2*time.Millisecond || reps >= 1<<20 {
			return float64(el.Nanoseconds()) / (cells * float64(reps))
		}
		reps *= 2
	}
}

// fourRussiansCrossover finds the smallest probed n where the
// two-vector solve beats the serial reference; 0 when it never wins.
// The probe set brackets the typical crossover (measured ≈ 600 on the
// reference machine) without making calibration slow.
func fourRussiansCrossover() int {
	for _, n := range []int{256, 512, 768, 1024} {
		pair := calPair(n)
		t0 := time.Now()
		if _, err := fourrussians.SolveSerial(n, pair, 1); err != nil {
			return 0
		}
		serial := time.Since(t0)
		t1 := time.Now()
		if _, err := fourrussians.Solve(n, pair, fourrussians.Options{MinSpan: 1}); err != nil {
			return 0
		}
		if time.Since(t1) < serial {
			return n
		}
	}
	return 0
}

// calPair is a deterministic random RNA pairing predicate.
func calPair(n int) fourrussians.PairFunc {
	rng := rand.New(rand.NewSource(int64(n)))
	seq := make([]byte, n)
	for i := range seq {
		seq[i] = "ACGU"[rng.Intn(4)]
	}
	return fourrussians.RNAPair(seq)
}

// randF32 builds a deterministic t×t block of small positive values.
func randF32(t int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, t*t)
	for i := range out {
		out[i] = rng.Float32() * 8
	}
	return out
}
