// Package perfmodel implements the Section V performance model: closed
// forms for the DMA-bound time T_M and the compute-bound time T_C of
// CellNPDP, the bandwidth constraint under which the SPEs stay busy, and
// the processor-utilization accounting of Sections VI-A.4 and VI-B.4.
// The model's headline property — utilization independent of the problem
// size — falls out of T_M and T_C sharing the N₁³ factor.
package perfmodel

import (
	"fmt"
	"math"
)

// Params are the model inputs, named as in Section V.
type Params struct {
	ProblemSize float64 // N₁: DP points
	LocalStore  float64 // L_S: local store bytes available for data
	ElemBytes   float64 // S: bytes per element (4 or 8)
	Bandwidth   float64 // B: aggregate memory bandwidth, bytes/s
	Clock       float64 // f: core clock, Hz
	Cores       float64 // C_N: number of SPEs/cores
	CBSide      float64 // N₃: computing-block side (4)
	CBCycles    float64 // C_C: cycles per computing-block step (54 SP)
}

// QS20SP returns the paper's single-precision QS20 instantiation for a
// given problem size and SPE count.
func QS20SP(n, cores int) Params {
	return Params{
		ProblemSize: float64(n),
		LocalStore:  float64(208 * 1024), // 256 KB minus code/stack
		ElemBytes:   4,
		Bandwidth:   2 * 25.6e9,
		Clock:       3.2e9,
		Cores:       float64(cores),
		CBSide:      4,
		CBCycles:    54,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	vals := map[string]float64{
		"ProblemSize": p.ProblemSize, "LocalStore": p.LocalStore,
		"ElemBytes": p.ElemBytes, "Bandwidth": p.Bandwidth,
		"Clock": p.Clock, "Cores": p.Cores, "CBSide": p.CBSide, "CBCycles": p.CBCycles,
	}
	for name, v := range vals {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("perfmodel: %s must be positive and finite, got %g", name, v)
		}
	}
	return nil
}

// BlockSide returns N₂ = √(L_S / 6S), the largest memory-block side under
// the six-buffer rule (Section III).
func (p Params) BlockSide() float64 {
	return math.Sqrt(p.LocalStore / (6 * p.ElemBytes))
}

// FetchedBytes returns the total bytes DMAed into local stores: block
// (i,j) re-fetches its 2(j−i) dependence blocks, summing to ≈ N₁³S/(3N₂)
// (write-back is a single pass and is neglected, as in the paper).
func (p Params) FetchedBytes() float64 {
	n1 := p.ProblemSize
	return n1 * n1 * n1 * p.ElemBytes / (3 * p.BlockSide())
}

// MemoryTime returns T_M = N₁³S / (3·N₂·B).
func (p Params) MemoryTime() float64 {
	return p.FetchedBytes() / p.Bandwidth
}

// CBStepCount returns the number of computing-block steps,
// ≈ N₁³ / (6·N₃³).
func (p Params) CBStepCount() float64 {
	n1 := p.ProblemSize
	n3 := p.CBSide
	return n1 * n1 * n1 / (6 * n3 * n3 * n3)
}

// ComputeTime returns T_C = CBStepCount·C_C / (f·C_N).
func (p Params) ComputeTime() float64 {
	return p.CBStepCount() * p.CBCycles / (p.Clock * p.Cores)
}

// Time returns T_All = max(T_M, T_C): with double buffering, DMA and
// compute overlap and the slower side dominates.
func (p Params) Time() float64 {
	return math.Max(p.MemoryTime(), p.ComputeTime())
}

// ComputeBound reports whether the SPEs, not the memory system, limit the
// run (T_C ≥ T_M).
func (p Params) ComputeBound() bool { return p.ComputeTime() >= p.MemoryTime() }

// MinBandwidth returns the smallest aggregate bandwidth under which the
// configuration stays compute-bound: B ≥ 2√6·S^{3/2}·N₃³·f·C_N / (√L_S·C_C).
func (p Params) MinBandwidth() float64 {
	n3 := p.CBSide
	return 2 * math.Sqrt(6) * math.Pow(p.ElemBytes, 1.5) * n3 * n3 * n3 *
		p.Clock * p.Cores / (math.Sqrt(p.LocalStore) * p.CBCycles)
}

// Utilization returns the modeled processor utilization
// U = U_C · T_C / T_All, where uC is the utilization achieved while
// computing one computing block with two others (the kernel's useful
// 32-bit operations per peak operations).
func (p Params) Utilization(uC float64) float64 {
	return uC * p.ComputeTime() / p.Time()
}

// KernelUtilizationSP returns U_C for the single-precision kernel: one
// computing-block step performs 64 useful min-plus relaxations, each a
// 2-op (add + min) update on 32-bit data, against a peak of 8 32-bit
// operations per cycle (two pipelines × 4 lanes) over CBCycles cycles.
func (p Params) KernelUtilizationSP() float64 {
	const usefulOps = 64 * 2
	peak := 8 * p.CBCycles
	return usefulOps / peak
}

// BlockSweepPoint is one row of the Section VI-D analytic sweep.
type BlockSweepPoint struct {
	LocalStore   float64 // modeled local-store budget (bytes, six-buffer rule)
	BlockSide    float64 // N₂
	MemoryTime   float64
	ComputeTime  float64
	ComputeBound bool
}

// SweepLocalStore evaluates the model across local-store budgets — the
// analytic companion to Figure 13 and Section VI-D: shrinking the local
// store shrinks N₂, inflating T_M ∝ 1/√L_S until the configuration turns
// memory-bound.
func (p Params) SweepLocalStore(budgets []float64) []BlockSweepPoint {
	out := make([]BlockSweepPoint, 0, len(budgets))
	for _, ls := range budgets {
		q := p
		q.LocalStore = ls
		out = append(out, BlockSweepPoint{
			LocalStore:   ls,
			BlockSide:    q.BlockSide(),
			MemoryTime:   q.MemoryTime(),
			ComputeTime:  q.ComputeTime(),
			ComputeBound: q.ComputeBound(),
		})
	}
	return out
}

// CriticalLocalStore returns the local-store budget below which the
// configuration turns memory-bound (T_M = T_C): L_S* = 6S·(N₁³S/(3B·T_C))².
func (p Params) CriticalLocalStore() float64 {
	n1 := p.ProblemSize
	n2Star := n1 * n1 * n1 * p.ElemBytes / (3 * p.Bandwidth * p.ComputeTime())
	return 6 * p.ElemBytes * n2Star * n2Star
}
