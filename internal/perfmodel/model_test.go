package perfmodel

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := QS20SP(4096, 16).Validate(); err != nil {
		t.Error(err)
	}
	bad := QS20SP(4096, 16)
	bad.Clock = 0
	if bad.Validate() == nil {
		t.Error("zero clock accepted")
	}
	bad = QS20SP(4096, 16)
	bad.Bandwidth = math.Inf(1)
	if bad.Validate() == nil {
		t.Error("infinite bandwidth accepted")
	}
}

func TestBlockSideMatchesSixBufferRule(t *testing.T) {
	p := QS20SP(4096, 16)
	n2 := p.BlockSide()
	// 6 blocks of side N₂ must exactly fill the local store.
	if got := 6 * n2 * n2 * p.ElemBytes; math.Abs(got-p.LocalStore) > 1e-6 {
		t.Errorf("6·N₂²·S = %g, want L_S = %g", got, p.LocalStore)
	}
}

func TestUtilizationIndependentOfProblemSize(t *testing.T) {
	// The paper's Section V claim: T_C/T_M has no N₁ dependence, so the
	// utilization at any uC is the same for every problem size.
	uAt := func(n int) float64 { return QS20SP(n, 16).Utilization(0.5) }
	base := uAt(1024)
	for _, n := range []int{2048, 4096, 16384, 65536} {
		if u := uAt(n); math.Abs(u-base) > 1e-12 {
			t.Errorf("utilization at n=%d is %g, differs from %g", n, u, base)
		}
	}
}

func TestQS20IsComputeBound(t *testing.T) {
	// With 32 KB-scale blocks and 51.2 GB/s, the paper's configuration is
	// compute-bound — that is why its utilization exceeds 60%.
	p := QS20SP(8192, 16)
	if !p.ComputeBound() {
		t.Errorf("QS20 SP modeled memory-bound: T_M=%g T_C=%g", p.MemoryTime(), p.ComputeTime())
	}
	if p.Time() != p.ComputeTime() {
		t.Error("Time() should equal the dominant side")
	}
}

func TestMinBandwidthIsThreshold(t *testing.T) {
	p := QS20SP(4096, 16)
	p.Bandwidth = p.MinBandwidth()
	if r := p.MemoryTime() / p.ComputeTime(); math.Abs(r-1) > 1e-9 {
		t.Errorf("at MinBandwidth, T_M/T_C = %g, want 1", r)
	}
	p.Bandwidth *= 0.5
	if p.ComputeBound() {
		t.Error("below MinBandwidth should be memory-bound")
	}
}

func TestComputeTimeScalesInverselyWithCores(t *testing.T) {
	one := QS20SP(4096, 1).ComputeTime()
	sixteen := QS20SP(4096, 16).ComputeTime()
	if math.Abs(one/sixteen-16) > 1e-9 {
		t.Errorf("T_C(1)/T_C(16) = %g, want 16", one/sixteen)
	}
}

func TestModelNearPaperTable2(t *testing.T) {
	// Table II: CellNPDP, 16 SPEs, single precision, n=4096 → 0.22 s.
	// The model must land within 2× (it ignores scalar boundary work and
	// scheduling overhead).
	got := QS20SP(4096, 16).Time()
	if got < 0.11 || got > 0.44 {
		t.Errorf("modeled n=4096 time = %g s, paper measured 0.22 s", got)
	}
}

func TestSmallerLocalStoreNeedsMoreBandwidth(t *testing.T) {
	// Section VI-D's effect: shrinking the local store shrinks blocks and
	// raises the bandwidth needed to stay compute-bound.
	big := QS20SP(4096, 16)
	small := big
	small.LocalStore = big.LocalStore / 4
	if small.MinBandwidth() <= big.MinBandwidth() {
		t.Error("smaller local store did not raise the bandwidth requirement")
	}
	if small.MemoryTime() <= big.MemoryTime() {
		t.Error("smaller local store did not raise T_M")
	}
}

func TestKernelUtilizationSP(t *testing.T) {
	p := QS20SP(4096, 16)
	u := p.KernelUtilizationSP()
	// 128 useful ops over 54 cycles × 8 ops/cycle ≈ 0.296; with T_C
	// dominating, overall utilization ≈ U_C. The paper quotes >60% by
	// counting all executed SIMD lanes as useful; both accountings are
	// reported by the harness.
	if u <= 0.2 || u >= 0.5 {
		t.Errorf("kernel utilization = %g, want ≈ 0.3", u)
	}
}

func TestFetchedBytesGrowsWithProblemCubed(t *testing.T) {
	a := QS20SP(1024, 16).FetchedBytes()
	b := QS20SP(2048, 16).FetchedBytes()
	if math.Abs(b/a-8) > 1e-9 {
		t.Errorf("fetched bytes ratio = %g, want 8 for 2× problem size", b/a)
	}
}

func TestSweepLocalStoreMonotone(t *testing.T) {
	p := QS20SP(4096, 16)
	pts := p.SweepLocalStore([]float64{208 * 1024, 96 * 1024, 48 * 1024, 24 * 1024, 6 * 1024})
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MemoryTime <= pts[i-1].MemoryTime {
			t.Errorf("T_M not increasing as the local store shrinks: %+v", pts[i])
		}
		if pts[i].ComputeTime != pts[0].ComputeTime {
			t.Errorf("T_C should not depend on the local store")
		}
	}
}

func TestCriticalLocalStore(t *testing.T) {
	p := QS20SP(4096, 16)
	crit := p.CriticalLocalStore()
	if crit <= 0 {
		t.Fatalf("critical budget = %g", crit)
	}
	// At the critical budget, T_M = T_C; below it, memory-bound.
	q := p
	q.LocalStore = crit
	if r := q.MemoryTime() / q.ComputeTime(); math.Abs(r-1) > 1e-9 {
		t.Errorf("at critical budget T_M/T_C = %g, want 1", r)
	}
	q.LocalStore = crit / 2
	if q.ComputeBound() {
		t.Error("below critical budget should be memory-bound")
	}
	// The QS20's actual budget sits far above critical — the paper's
	// headroom claim.
	if crit >= 208*1024 {
		t.Errorf("critical budget %g should be well below the QS20's 208 KB", crit)
	}
}
