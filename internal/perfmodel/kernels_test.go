package perfmodel

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestKernelStringRoundTrip(t *testing.T) {
	for k := KernelAuto; k <= KernelFourRussians; k++ {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, err %v", k, got, err)
		}
	}
	if _, err := ParseKernel("warp"); err == nil {
		t.Fatal("ParseKernel must reject unknown names")
	}
}

func TestPickKernelLattice(t *testing.T) {
	defer SetActiveCalibration(&Calibration{
		Arch: "amd64", ISA: "avx2",
		NsPerCell:             map[Kernel]map[int]float64{KernelPanel: {32: 0.6}},
		FourRussiansCrossover: 512,
	})()
	if k := PickKernel(Shape{N: 1024, Lattice: true}, "amd64", "avx2"); k != KernelFourRussians {
		t.Fatalf("large lattice shape picked %v, want fourrussians", k)
	}
	if k := PickKernel(Shape{N: 128, Lattice: true}, "amd64", "avx2"); k != KernelScalar {
		t.Fatalf("small lattice shape picked %v, want scalar", k)
	}
}

func TestPickKernelVector(t *testing.T) {
	defer SetActiveCalibration(&Calibration{
		Arch: "amd64", ISA: "avx2",
		NsPerCell: map[Kernel]map[int]float64{
			KernelPanel:  {32: 0.6},
			KernelVector: {32: 0.06},
		},
	})()
	if k := PickKernel(Shape{Block: 32, N: 2048, Float32: true}, "amd64", "avx2"); k != KernelVector {
		t.Fatalf("f32 shape on avx2 picked %v, want vector", k)
	}
	// No ISA: the vector kernel is not a candidate.
	if k := PickKernel(Shape{Block: 32, N: 2048, Float32: true}, "riscv64", "none"); k != KernelPanel {
		t.Fatalf("f32 shape without ISA picked %v, want panel", k)
	}
	// float64: no assembly form exists.
	if k := PickKernel(Shape{Block: 32, N: 2048}, "amd64", "avx2"); k != KernelPanel {
		t.Fatalf("f64 shape picked %v, want panel", k)
	}
}

func TestPickCountAdvances(t *testing.T) {
	before := PickCount()
	PickKernel(Shape{Block: 32, N: 256, Float32: true}, "amd64", "avx2")
	if PickCount() != before+1 {
		t.Fatalf("PickCount %d → %d, want +1", before, PickCount())
	}
}

func TestCalibrationFormatParseRoundTrip(t *testing.T) {
	in := &Calibration{
		Arch: "arm64", ISA: "neon",
		NsPerCell: map[Kernel]map[int]float64{
			KernelScalar: {16: 2.5, 32: 1.9},
			KernelPanel:  {32: 0.7},
			KernelVector: {32: 0.09},
		},
		FourRussiansCrossover: 640,
	}
	body := FormatCalibration(in)
	out, err := ParseCalibration(body, "arm64", "neon")
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || out.Arch != "arm64" || out.ISA != "neon" || out.FourRussiansCrossover != 640 {
		t.Fatalf("parsed %+v", out)
	}
	for k, m := range in.NsPerCell {
		for b, v := range m {
			if out.NsPerCell[k][b] != v {
				t.Fatalf("%v/%d: %g != %g", k, b, out.NsPerCell[k][b], v)
			}
		}
	}
	// Arch-only fallback: asking for a missing ISA on a present arch.
	if c, err := ParseCalibration(body, "arm64", "none"); err != nil || c == nil {
		t.Fatalf("arch-only fallback: %v %v", c, err)
	}
	// No match at all → nil, nil (caller falls back to defaults).
	if c, err := ParseCalibration(body, "amd64", "avx2"); err != nil || c != nil {
		t.Fatalf("no-match: %v %v", c, err)
	}
}

func TestLoadCalibrationFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cal.txt")
	body := FormatCalibration(&Calibration{
		Arch: "amd64", ISA: "avx2",
		NsPerCell:             map[Kernel]map[int]float64{KernelPanel: {32: 0.5}},
		FourRussiansCrossover: 512,
	})
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	defer SetActiveCalibration(nil)()
	ok, err := LoadCalibrationFile(path, "amd64", "avx2")
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if c := ActiveCalibration("amd64", "avx2"); c.FourRussiansCrossover != 512 {
		t.Fatalf("installed calibration not active: %+v", c)
	}
	// Missing file and no matching section are silent no-ops.
	if ok, err := LoadCalibrationFile(filepath.Join(dir, "absent.txt"), "amd64", "avx2"); err != nil || ok {
		t.Fatalf("missing file: ok=%v err=%v", ok, err)
	}
	if ok, err := LoadCalibrationFile(path, "riscv64", "none"); err != nil || ok {
		t.Fatalf("no section: ok=%v err=%v", ok, err)
	}
	// Malformed body is an error.
	if err := os.WriteFile(path, []byte("garbage line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCalibrationFile(path, "amd64", "avx2"); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestParseCalibrationRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"scalar\t32\t1.0\n",                         // data before any section
		"[amd64]\n",                                 // malformed section
		"[amd64/avx2]\nwarp\t32\t1.0\n",             // unknown kernel
		"[amd64/avx2]\nscalar\t0\t1.0\n",            // bad block
		"[amd64/avx2]\nscalar\t32\t-1\n",            // bad ns
		"[amd64/avx2]\nscalar\t32\n",                // wrong arity
		"[amd64/avx2]\nfourrussians-crossover\tx\n", // bad crossover
	} {
		if _, err := ParseCalibration(bad, "amd64", "avx2"); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestNsPerCellNearestBlock(t *testing.T) {
	c := &Calibration{NsPerCell: map[Kernel]map[int]float64{
		KernelPanel: {16: 1.0, 64: 0.5},
	}}
	if v, ok := c.nsPerCell(KernelPanel, 64); !ok || v != 0.5 {
		t.Fatalf("exact: %v %v", v, ok)
	}
	if v, ok := c.nsPerCell(KernelPanel, 24); !ok || v != 1.0 {
		t.Fatalf("nearest(24): %v %v, want 16's 1.0", v, ok)
	}
	if _, ok := c.nsPerCell(KernelVector, 32); ok {
		t.Fatal("missing kernel must report !ok")
	}
}

func TestCalibrateProducesRows(t *testing.T) {
	if testing.Short() {
		t.Skip("timing loops")
	}
	cal := Calibrate([]int{16, 32})
	if len(cal.NsPerCell[KernelScalar]) != 2 || len(cal.NsPerCell[KernelPanel]) != 2 {
		t.Fatalf("missing rows: %+v", cal.NsPerCell)
	}
	for k, m := range cal.NsPerCell {
		for b, v := range m {
			if v <= 0 {
				t.Fatalf("%v/%d: non-positive ns/cell %g", k, b, v)
			}
		}
	}
	body := FormatCalibration(cal)
	if !strings.Contains(body, "[") {
		t.Fatalf("format lost the section header:\n%s", body)
	}
	back, err := ParseCalibration(body, cal.Arch, cal.ISA)
	if err != nil || back == nil {
		t.Fatalf("self round trip: %v %v", back, err)
	}
}
