// Package sched implements the paper's tier-2 parallel procedure
// (Section IV-B): the task dependence graph over scheduling blocks with
// the simplified two-predecessor rule, the ready queue, and two
// executors — a real goroutine worker pool (wall-clock runs on the host
// CPU) and a deterministic virtual-time discrete-event executor (modeled
// runs on the simulated Cell processor).
package sched

import (
	"fmt"
	"sort"
)

// Task is a node of the dependence graph: one scheduling block, a square
// of memory blocks. Bi/Bj are the scheduling-block coordinates; the
// memory-block ranges are [RowLo, RowHi) × [ColLo, ColHi) in tile
// coordinates.
type Task struct {
	ID     int
	Bi, Bj int
	RowLo  int
	RowHi  int
	ColLo  int
	ColHi  int
	Deps   []int // predecessor task IDs (at most 2: nearest left, nearest below)
	Succs  []int // successor task IDs
}

// Graph is the task dependence graph of Figure 7: scheduling blocks of
// the upper block triangle, each depending on at most the nearest task on
// its left and the nearest below it. A task is scheduled only after being
// notified by every predecessor.
type Graph struct {
	Tiles      int // memory blocks per side (m)
	SchedSide  int // memory blocks per scheduling-block side (g)
	SchedTiles int // scheduling blocks per side (ceil(m/g))
	Tasks      []Task
	ids        map[[2]int]int
}

// NewGraph builds the dependence graph for m×m upper-triangle memory
// blocks grouped into scheduling blocks of side g memory blocks. g = 1
// degenerates to one task per memory block.
func NewGraph(m, g int) (*Graph, error) {
	if m <= 0 {
		return nil, fmt.Errorf("sched: tile count must be positive, got %d", m)
	}
	if g <= 0 {
		return nil, fmt.Errorf("sched: scheduling-block side must be positive, got %d", g)
	}
	ms := (m + g - 1) / g
	gr := &Graph{Tiles: m, SchedSide: g, SchedTiles: ms, ids: make(map[[2]int]int)}
	for bi := 0; bi < ms; bi++ {
		for bj := bi; bj < ms; bj++ {
			t := Task{
				ID:    len(gr.Tasks),
				Bi:    bi,
				Bj:    bj,
				RowLo: bi * g,
				RowHi: min(bi*g+g, m),
				ColLo: bj * g,
				ColHi: min(bj*g+g, m),
			}
			gr.ids[[2]int{bi, bj}] = t.ID
			gr.Tasks = append(gr.Tasks, t)
		}
	}
	// Simplified dependences: nearest task on the left and nearest below.
	// Diagonal scheduling blocks have neither and are ready immediately.
	for i := range gr.Tasks {
		t := &gr.Tasks[i]
		if left, ok := gr.ids[[2]int{t.Bi, t.Bj - 1}]; ok && t.Bj-1 >= t.Bi {
			t.Deps = append(t.Deps, left)
			gr.Tasks[left].Succs = append(gr.Tasks[left].Succs, t.ID)
		}
		if below, ok := gr.ids[[2]int{t.Bi + 1, t.Bj}]; ok && t.Bi+1 <= t.Bj {
			t.Deps = append(t.Deps, below)
			gr.Tasks[below].Succs = append(gr.Tasks[below].Succs, t.ID)
		}
	}
	gr.sortSuccsByCriticalPath()
	return gr, nil
}

// sortSuccsByCriticalPath orders every task's successor list for
// critical-path-first dispatch: nearest the diagonal (smallest Bj-Bi)
// first, ties by id. RunPool notifies successors in list order, so when
// one completion frees several tasks the heads of the longest remaining
// dependence chains enter the ready queue first. Called by the graph
// constructors; hand-built graphs without this ordering still execute
// correctly, just without the dispatch priority.
func (g *Graph) sortSuccsByCriticalPath() {
	for i := range g.Tasks {
		succs := g.Tasks[i].Succs
		sort.Slice(succs, func(x, y int) bool {
			dx := g.Tasks[succs[x]].Bj - g.Tasks[succs[x]].Bi
			dy := g.Tasks[succs[y]].Bj - g.Tasks[succs[y]].Bi
			if dx != dy {
				return dx < dy
			}
			return succs[x] < succs[y]
		})
	}
}

// TaskID returns the task id of scheduling block (bi, bj).
func (g *Graph) TaskID(bi, bj int) (int, bool) {
	id, ok := g.ids[[2]int{bi, bj}]
	return id, ok
}

// Roots returns the IDs of tasks with no predecessors (the diagonal
// scheduling blocks).
func (g *Graph) Roots() []int {
	var out []int
	for _, t := range g.Tasks {
		if len(t.Deps) == 0 {
			out = append(out, t.ID)
		}
	}
	return out
}

// Cone returns the transitive successor closure of the seed tasks,
// seeds included, as a sorted, deduplicated ID list. This is the
// poisoned set of a corrupted block: a memory block's data flows only
// into tasks reachable through the simplified left/below edges (the
// consumers of block (a,b) form the corner rectangle i ≤ a, j ≥ b,
// which is exactly this closure), so recomputing the cone after
// restoring the seeds' blocks heals the table without a full restart.
func (g *Graph) Cone(seeds []int) []int {
	in := make([]bool, len(g.Tasks))
	var queue []int
	for _, id := range seeds {
		if id >= 0 && id < len(g.Tasks) && !in[id] {
			in[id] = true
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, s := range g.Tasks[id].Succs {
			if !in[s] {
				in[s] = true
				queue = append(queue, s)
			}
		}
	}
	var out []int
	for id, ok := range in {
		if ok {
			out = append(out, id)
		}
	}
	return out
}

// CheckCoverage verifies that the scheduling blocks partition the upper
// block triangle exactly: every memory block (i, j), i ≤ j, belongs to
// exactly one task's rectangle intersected with the triangle.
func (g *Graph) CheckCoverage() error {
	seen := make(map[[2]int]int)
	for _, t := range g.Tasks {
		for i := t.RowLo; i < t.RowHi; i++ {
			for j := max(t.ColLo, i); j < t.ColHi; j++ {
				key := [2]int{i, j}
				if prev, dup := seen[key]; dup {
					return fmt.Errorf("sched: memory block (%d,%d) covered by tasks %d and %d", i, j, prev, t.ID)
				}
				seen[key] = t.ID
			}
		}
	}
	want := g.Tiles * (g.Tiles + 1) / 2
	if len(seen) != want {
		return fmt.Errorf("sched: covered %d memory blocks, want %d", len(seen), want)
	}
	return nil
}

// MemoryBlockOrder returns the order in which a task's memory blocks must
// be computed inside the SPE procedure: "the memory blocks on the left
// side and closer to the bottom are computed earlier" (Section IV-B) —
// columns ascending, rows descending, skipping the lower triangle.
func (t Task) MemoryBlockOrder() [][2]int {
	var out [][2]int
	for j := t.ColLo; j < t.ColHi; j++ {
		for i := t.RowHi - 1; i >= t.RowLo; i-- {
			if i <= j {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// NewFullGraph builds the unsimplified dependence graph: every task
// depends on *all* tasks to its left in its block row and below it in its
// block column, not just the nearest two. Functionally equivalent to
// NewGraph (the simplified edges cover the rest transitively); it exists
// as the ablation baseline for the paper's Section IV-B simplification —
// edge count and notification traffic grow from O(m²) to O(m³).
func NewFullGraph(m, g int) (*Graph, error) {
	gr, err := NewGraph(m, g)
	if err != nil {
		return nil, err
	}
	// Rebuild edges from scratch with the full sets.
	for i := range gr.Tasks {
		gr.Tasks[i].Deps = nil
		gr.Tasks[i].Succs = nil
	}
	addDep := func(t *Task, bi, bj int) {
		if id, ok := gr.ids[[2]int{bi, bj}]; ok && bj >= bi {
			t.Deps = append(t.Deps, id)
			gr.Tasks[id].Succs = append(gr.Tasks[id].Succs, t.ID)
		}
	}
	for i := range gr.Tasks {
		t := &gr.Tasks[i]
		for bj := t.Bi; bj < t.Bj; bj++ {
			addDep(t, t.Bi, bj)
		}
		for bi := t.Bi + 1; bi <= t.Bj; bi++ {
			addDep(t, bi, t.Bj)
		}
	}
	gr.sortSuccsByCriticalPath()
	return gr, nil
}

// EdgeCount returns the number of dependence edges in the graph.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, t := range g.Tasks {
		n += len(t.Deps)
	}
	return n
}
