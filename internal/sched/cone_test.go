package sched

import (
	"sort"
	"testing"
)

// TestConeIsCornerRectangle pins Cone's geometric claim: the transitive
// successor closure of block (a,b) in the simplified graph is exactly
// the corner rectangle {(i,j): i ≤ a, j ≥ b} — the full consumer set of
// the block's data, so healing the cone heals every poisoned task.
func TestConeIsCornerRectangle(t *testing.T) {
	g, err := NewGraph(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range g.Tasks {
		got := g.Cone([]int{task.ID})
		var want []int
		for _, u := range g.Tasks {
			if u.Bi <= task.Bi && u.Bj >= task.Bj {
				want = append(want, u.ID)
			}
		}
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("cone of (%d,%d): %d tasks, want %d", task.Bi, task.Bj, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cone of (%d,%d) = %v, want %v", task.Bi, task.Bj, got, want)
			}
		}
	}
}

// TestConeMultiSeedAndEdgeCases covers seed union, dedup, out-of-range
// seeds, the empty cone, and sortedness.
func TestConeMultiSeedAndEdgeCases(t *testing.T) {
	g, err := NewGraph(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Cone(nil); len(got) != 0 {
		t.Fatalf("empty seed cone = %v", got)
	}
	if got := g.Cone([]int{-1, len(g.Tasks), 1 << 20}); len(got) != 0 {
		t.Fatalf("out-of-range seeds produced %v", got)
	}
	a, _ := g.TaskID(2, 2)
	b, _ := g.TaskID(4, 4)
	union := g.Cone([]int{a, b, a, b})
	seen := map[int]bool{}
	for _, id := range union {
		if seen[id] {
			t.Fatalf("duplicate id %d in cone", id)
		}
		seen[id] = true
	}
	if !sort.IntsAreSorted(union) {
		t.Fatalf("cone not sorted: %v", union)
	}
	// Union must equal the merged single-seed cones.
	merged := map[int]bool{}
	for _, id := range g.Cone([]int{a}) {
		merged[id] = true
	}
	for _, id := range g.Cone([]int{b}) {
		merged[id] = true
	}
	if len(merged) != len(union) {
		t.Fatalf("union cone %d tasks, merged singles %d", len(union), len(merged))
	}
	for _, id := range union {
		if !merged[id] {
			t.Fatalf("union cone has %d, singles don't", id)
		}
	}
	// The top-corner task (0, m-1) is in every cone: everything flows
	// into the final answer block.
	top, _ := g.TaskID(0, g.SchedTiles-1)
	for _, task := range g.Tasks {
		found := false
		for _, id := range g.Cone([]int{task.ID}) {
			if id == top {
				found = true
			}
		}
		if !found {
			t.Fatalf("cone of task %d misses the answer block", task.ID)
		}
	}
}
