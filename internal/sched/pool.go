package sched

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// RunPool executes the graph on `workers` concurrent goroutines,
// mirroring Figure 8: a ready queue of tasks (the PPE procedure's queue);
// workers (the SPE procedures) fetch ready tasks, execute them, and
// report completion, which notifies successors; a task enters the ready
// queue once every predecessor has notified it.
//
// The completion path is lock-free: each task carries an atomic
// dependence counter, the last predecessor to decrement it enqueues the
// task, and a shared atomic countdown closes the queue after the final
// completion. No mutex is taken anywhere on the hot path, so completion
// throughput scales with workers instead of serializing behind one lock
// (RunPoolLocked keeps the mutex-guarded variant as the ablation
// baseline).
//
// Dispatch is critical-path-first: root tasks (the diagonal scheduling
// blocks) enqueue ahead of everything else, and the graph constructors
// pre-sort each successor list so that when a completion frees several
// tasks at once the ones nearest the diagonal — the heads of the longest
// remaining dependence chains — enqueue first.
//
// exec runs the task body; it receives the worker index (0-based) and the
// task. The first error reported by any exec cancels the run: the failed
// task notifies no successors (so nothing downstream of it ever
// executes), idle workers wake and exit immediately, and busy workers
// stop dequeuing after their current task. RunPool returns that first
// error.
func RunPool(g *Graph, workers int, exec func(worker int, t Task) error) error {
	if workers <= 0 {
		return fmt.Errorf("sched: worker count must be positive, got %d", workers)
	}
	if err := checkReachable(g); err != nil {
		return err
	}
	n := len(g.Tasks)
	// Real tasks enqueue exactly once and cancellation adds at most one
	// sentinel per worker, so sends never block.
	ready := make(chan int, n+workers)

	pending := make([]atomic.Int32, n) // remaining notifications per task
	var remaining atomic.Int64
	remaining.Store(int64(n))

	var roots []int
	for i := range g.Tasks {
		pending[i].Store(int32(len(g.Tasks[i].Deps)))
		if len(g.Tasks[i].Deps) == 0 {
			roots = append(roots, i)
		}
	}
	// Diagonal scheduling blocks ahead of any off-diagonal roots (the
	// standard graphs only root at the diagonal, where this is a no-op).
	sort.Slice(roots, func(x, y int) bool {
		dx := g.Tasks[roots[x]].Bj - g.Tasks[roots[x]].Bi
		dy := g.Tasks[roots[y]].Bj - g.Tasks[roots[y]].Bi
		if dx != dy {
			return dx < dy
		}
		return roots[x] < roots[y]
	})
	for _, id := range roots {
		ready <- id
	}

	var cancelled atomic.Bool
	var failOnce sync.Once
	var firstErr error
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			cancelled.Store(true)
			for i := 0; i < workers; i++ {
				ready <- poison // wake idle workers; busy ones see `cancelled`
			}
		})
	}

	finish := func(id int) {
		// Succs is pre-sorted critical-path-first by the constructors.
		for _, s := range g.Tasks[id].Succs {
			if pending[s].Add(-1) == 0 {
				ready <- s
			}
		}
		if remaining.Add(-1) == 0 {
			// Only reachable when every task completed, so no finish (nor
			// fail: its task never completes) can still send.
			close(ready)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for id := range ready {
				if id == poison || cancelled.Load() {
					return
				}
				if err := exec(worker, g.Tasks[id]); err != nil {
					fail(err)
					return
				}
				finish(id)
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// poison is the sentinel fail injects into the ready queue, one per
// worker, so goroutines blocked on an empty queue wake and exit.
const poison = -1

// checkReachable verifies every task can become ready (no dependence
// cycles) with one linear Kahn pass. The concurrent executor relies on
// this: it closes the ready queue only after all n completions, so an
// unreachable task would otherwise hang the pool instead of erroring.
func checkReachable(g *Graph) error {
	n := len(g.Tasks)
	deg := make([]int32, n)
	queue := make([]int, 0, n)
	for i := range g.Tasks {
		deg[i] = int32(len(g.Tasks[i].Deps))
		if deg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, s := range g.Tasks[id].Succs {
			if deg[s]--; deg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("sched: %d tasks never became ready (dependence cycle?)", n-seen)
	}
	return nil
}

// RunPoolLocked is the seed scheduler kept as the ablation baseline for
// RunPool's lock-free completion path: every completion takes one global
// mutex to decrement successor counters, and after an error the graph is
// still fully drained through no-op executions. Benchmarked against
// RunPool by BenchmarkAblationLockfree; engines select it via their
// ablation options.
func RunPoolLocked(g *Graph, workers int, exec func(worker int, t Task) error) error {
	if workers <= 0 {
		return fmt.Errorf("sched: worker count must be positive, got %d", workers)
	}
	n := len(g.Tasks)
	ready := make(chan int, n)

	var mu sync.Mutex
	pending := make([]int, n) // remaining notifications per task
	remaining := n
	var firstErr error

	for i, t := range g.Tasks {
		pending[i] = len(t.Deps)
		if pending[i] == 0 {
			ready <- i
		}
	}

	complete := func(id int) {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range g.Tasks[id].Succs {
			pending[s]--
			if pending[s] == 0 {
				ready <- s
			}
		}
		remaining--
		if remaining == 0 {
			close(ready)
		}
	}

	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for id := range ready {
				mu.Lock()
				errored := firstErr != nil
				mu.Unlock()
				if !errored {
					if err := exec(worker, g.Tasks[id]); err != nil {
						fail(err)
					}
				}
				complete(id)
			}
		}(w)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	if remaining != 0 {
		return fmt.Errorf("sched: %d tasks never became ready (dependence cycle?)", remaining)
	}
	return nil
}
