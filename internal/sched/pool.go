package sched

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cellnpdp/internal/resilience"
)

// PoolRunOptions carries the fault-tolerance extensions of RunPoolCtx.
// The zero value reproduces plain RunPool behavior.
type PoolRunOptions struct {
	// Completed marks tasks (by ID) that finished in an earlier run and
	// must not re-execute: they are pre-notified — their successors'
	// dependence counters start already decremented — so a resumed solve
	// runs only the remaining tasks. May be nil.
	Completed []bool
	// OnTaskDone, when non-nil, is called after each successful task
	// execution, before its successors are notified. It runs on worker
	// goroutines, possibly concurrently; the checkpointer behind it
	// serializes with its own mutex. A panic inside it fails the run
	// like a task panic.
	OnTaskDone func(t Task)
}

// RunPool executes the graph on `workers` concurrent goroutines,
// mirroring Figure 8: a ready queue of tasks (the PPE procedure's queue);
// workers (the SPE procedures) fetch ready tasks, execute them, and
// report completion, which notifies successors; a task enters the ready
// queue once every predecessor has notified it. See RunPoolCtx for the
// cancellable, fault-isolated variant this wraps.
func RunPool(g *Graph, workers int, exec func(worker int, t Task) error) error {
	return RunPoolCtx(context.Background(), g, workers, PoolRunOptions{}, exec)
}

// RunPoolCtx is the fault-tolerant pool executor.
//
// The completion path is lock-free: each task carries an atomic
// dependence counter, the last predecessor to decrement it enqueues the
// task, and a shared atomic countdown closes the queue after the final
// completion. No mutex is taken anywhere on the hot path, so completion
// throughput scales with workers instead of serializing behind one lock
// (RunPoolLocked keeps the mutex-guarded variant as the ablation
// baseline).
//
// Dispatch is critical-path-first: root tasks (the diagonal scheduling
// blocks) enqueue ahead of everything else, and the graph constructors
// pre-sort each successor list so that when a completion frees several
// tasks at once the ones nearest the diagonal — the heads of the longest
// remaining dependence chains — enqueue first.
//
// exec runs the task body; it receives the worker index (0-based) and the
// task. Failure semantics:
//
//   - A panic inside exec (or OnTaskDone) is converted to a
//     *resilience.PanicError carrying the task identity and worker; it
//     never crosses the worker goroutine as a panic, so one broken task
//     cannot kill the process or deadlock the pool.
//   - Any task failure cancels the run: the failed task notifies no
//     successors (nothing downstream of it ever executes), idle workers
//     wake via poison sentinels and exit, and busy workers stop dequeuing
//     after their current task.
//   - When several tasks fail concurrently, the reported error is
//     deterministic: the failure with the smallest task ID wins, not
//     whichever worker reached the error slot first.
//   - Context cancellation (checked at task-dispatch granularity, plus a
//     watcher that wakes blocked workers through the same poison path)
//     drains the pool promptly and returns ctx.Err() — unless a task had
//     already failed, in which case that task's error is reported.
//
// RunPoolCtx returns nil only when every non-pre-completed task executed
// successfully.
func RunPoolCtx(ctx context.Context, g *Graph, workers int, opts PoolRunOptions, exec func(worker int, t Task) error) error {
	if workers <= 0 {
		return fmt.Errorf("sched: worker count must be positive, got %d", workers)
	}
	if err := checkReachable(g); err != nil {
		return err
	}
	n := len(g.Tasks)
	if opts.Completed != nil && len(opts.Completed) != n {
		return fmt.Errorf("sched: completion bitmap has %d entries for %d tasks", len(opts.Completed), n)
	}
	done := func(id int) bool { return opts.Completed != nil && opts.Completed[id] }

	// Real tasks enqueue exactly once and cancellation adds at most one
	// sentinel per worker, so sends never block.
	ready := make(chan int, n+workers)

	pending := make([]atomic.Int32, n) // remaining notifications per task
	var remaining atomic.Int64

	for i := range g.Tasks {
		pending[i].Store(int32(len(g.Tasks[i].Deps)))
		if !done(i) {
			remaining.Add(1)
		}
	}
	// Pre-notify from completed tasks: their successors start with those
	// dependences already satisfied, exactly as if the task had just
	// finished (a resumed run therefore only executes the remainder).
	for i := range g.Tasks {
		if done(i) {
			for _, s := range g.Tasks[i].Succs {
				pending[s].Add(-1)
			}
		}
	}
	if remaining.Load() == 0 {
		return nil // everything was already complete
	}

	var roots []int
	for i := range g.Tasks {
		if pending[i].Load() == 0 && !done(i) {
			roots = append(roots, i)
		}
	}
	// Diagonal scheduling blocks ahead of any off-diagonal roots (the
	// standard graphs only root at the diagonal, where this is a no-op).
	sort.Slice(roots, func(x, y int) bool {
		dx := g.Tasks[roots[x]].Bj - g.Tasks[roots[x]].Bi
		dy := g.Tasks[roots[y]].Bj - g.Tasks[roots[y]].Bi
		if dx != dy {
			return dx < dy
		}
		return roots[x] < roots[y]
	})
	for _, id := range roots {
		ready <- id
	}

	// Both termination paths — full completion and cancellation — wake
	// the workers through the same once-guarded poison drain (one
	// sentinel per worker), so a context firing after the last task
	// completes can never send on torn-down state.
	var cancelled atomic.Bool
	var poisonOnce sync.Once
	drain := func() {
		poisonOnce.Do(func() {
			for i := 0; i < workers; i++ {
				ready <- poison // wake idle workers; busy ones see `cancelled`
			}
		})
	}
	cancelRun := func() {
		cancelled.Store(true)
		drain()
	}

	// Error slots: task failures are kept by smallest task ID so the
	// reported error does not depend on which worker loses the race;
	// a context error is reported only when no task failed.
	var errMu sync.Mutex
	var taskErr error
	taskErrID := -1
	var ctxErr error
	failTask := func(id int, err error) {
		errMu.Lock()
		if taskErr == nil || id < taskErrID {
			taskErr, taskErrID = err, id
		}
		errMu.Unlock()
		cancelRun()
	}
	failCtx := func(err error) {
		errMu.Lock()
		if ctxErr == nil {
			ctxErr = err
		}
		errMu.Unlock()
		cancelRun()
	}

	// The watcher wakes workers blocked on an empty ready queue when the
	// context fires; stop tears it down once the pool drains.
	stop := make(chan struct{})
	defer close(stop)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				failCtx(ctx.Err())
			case <-stop:
			}
		}()
	}

	finish := func(id int) {
		// Succs is pre-sorted critical-path-first by the constructors.
		for _, s := range g.Tasks[id].Succs {
			if pending[s].Add(-1) == 0 && !done(s) {
				ready <- s
			}
		}
		if remaining.Add(-1) == 0 {
			// Every task completed: wake the workers so they exit.
			drain()
		}
	}

	// runTask executes one task body (and the completion hook) with panic
	// isolation, attaching task identity to converted panics.
	runTask := func(worker, id int) error {
		err := resilience.Recover(func() error { return exec(worker, g.Tasks[id]) })
		if err == nil && opts.OnTaskDone != nil {
			err = resilience.Recover(func() error { opts.OnTaskDone(g.Tasks[id]); return nil })
		}
		if pe, ok := err.(*resilience.PanicError); ok {
			pe.TaskID, pe.Bi, pe.Bj, pe.Worker = id, g.Tasks[id].Bi, g.Tasks[id].Bj, worker
		}
		return err
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			//npdp:dispatch
			for id := range ready {
				if id == poison || cancelled.Load() {
					return
				}
				// Dispatch-granularity context check: an expired deadline
				// stops the very next task even before the watcher fires.
				if err := ctx.Err(); err != nil {
					failCtx(err)
					return
				}
				if err := runTask(worker, id); err != nil {
					failTask(id, err)
					return
				}
				finish(id)
			}
		}(w)
	}
	wg.Wait()

	if taskErr != nil {
		return taskErr
	}
	return ctxErr
}

// poison is the sentinel fail injects into the ready queue, one per
// worker, so goroutines blocked on an empty queue wake and exit.
const poison = -1

// checkReachable verifies every task can become ready (no dependence
// cycles) with one linear Kahn pass. The concurrent executor relies on
// this: it closes the ready queue only after all n completions, so an
// unreachable task would otherwise hang the pool instead of erroring.
func checkReachable(g *Graph) error {
	n := len(g.Tasks)
	deg := make([]int32, n)
	queue := make([]int, 0, n)
	for i := range g.Tasks {
		deg[i] = int32(len(g.Tasks[i].Deps))
		if deg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, s := range g.Tasks[id].Succs {
			if deg[s]--; deg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("sched: %d tasks never became ready (dependence cycle?)", n-seen)
	}
	return nil
}

// RunPoolLocked is the seed scheduler kept as the ablation baseline for
// RunPool's lock-free completion path: every completion takes one global
// mutex to decrement successor counters, and after an error the graph is
// still fully drained through no-op executions. Benchmarked against
// RunPool by BenchmarkAblationLockfree; engines select it via their
// ablation options.
func RunPoolLocked(g *Graph, workers int, exec func(worker int, t Task) error) error {
	if workers <= 0 {
		return fmt.Errorf("sched: worker count must be positive, got %d", workers)
	}
	n := len(g.Tasks)
	ready := make(chan int, n)

	var mu sync.Mutex
	pending := make([]int, n) // remaining notifications per task
	remaining := n
	var firstErr error

	for i, t := range g.Tasks {
		pending[i] = len(t.Deps)
		if pending[i] == 0 {
			ready <- i
		}
	}

	complete := func(id int) {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range g.Tasks[id].Succs {
			pending[s]--
			if pending[s] == 0 {
				ready <- s
			}
		}
		remaining--
		if remaining == 0 {
			close(ready)
		}
	}

	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for id := range ready {
				mu.Lock()
				errored := firstErr != nil
				mu.Unlock()
				if !errored {
					if err := exec(worker, g.Tasks[id]); err != nil {
						fail(err)
					}
				}
				complete(id)
			}
		}(w)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	if remaining != 0 {
		return fmt.Errorf("sched: %d tasks never became ready (dependence cycle?)", remaining)
	}
	return nil
}
