package sched

import (
	"fmt"
	"sync"
)

// RunPool executes the graph on `workers` concurrent goroutines,
// mirroring Figure 8: a dispatcher (the PPE procedure) keeps a queue of
// ready tasks; workers (the SPE procedures) fetch ready tasks, execute
// them, and report completion, which notifies successors; a task enters
// the ready queue once every predecessor has notified it.
//
// exec runs the task body; it receives the worker index (0-based) and the
// task. RunPool returns the first error reported by any exec; remaining
// tasks are still drained so no goroutine leaks.
func RunPool(g *Graph, workers int, exec func(worker int, t Task) error) error {
	if workers <= 0 {
		return fmt.Errorf("sched: worker count must be positive, got %d", workers)
	}
	n := len(g.Tasks)
	ready := make(chan int, n)

	var mu sync.Mutex
	pending := make([]int, n) // remaining notifications per task
	remaining := n
	var firstErr error

	for i, t := range g.Tasks {
		pending[i] = len(t.Deps)
		if pending[i] == 0 {
			ready <- i
		}
	}

	complete := func(id int) {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range g.Tasks[id].Succs {
			pending[s]--
			if pending[s] == 0 {
				ready <- s
			}
		}
		remaining--
		if remaining == 0 {
			close(ready)
		}
	}

	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for id := range ready {
				mu.Lock()
				errored := firstErr != nil
				mu.Unlock()
				if !errored {
					if err := exec(worker, g.Tasks[id]); err != nil {
						fail(err)
					}
				}
				complete(id)
			}
		}(w)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	if remaining != 0 {
		return fmt.Errorf("sched: %d tasks never became ready (dependence cycle?)", remaining)
	}
	return nil
}
