package sched

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestGraphShape(t *testing.T) {
	g, err := NewGraph(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 15 {
		t.Fatalf("task count = %d, want 15", len(g.Tasks))
	}
	// Diagonal tasks are roots; every off-diagonal task has exactly 2 deps.
	roots := g.Roots()
	if len(roots) != 5 {
		t.Fatalf("roots = %d, want 5 (the diagonal blocks)", len(roots))
	}
	for _, task := range g.Tasks {
		if task.Bi == task.Bj {
			if len(task.Deps) != 0 {
				t.Errorf("diagonal task (%d,%d) has deps %v", task.Bi, task.Bj, task.Deps)
			}
		} else if len(task.Deps) != 2 {
			t.Errorf("task (%d,%d) has %d deps, want 2 (nearest left + below)", task.Bi, task.Bj, len(task.Deps))
		}
	}
	// Spot-check Figure 7's rule for one block.
	id, _ := g.TaskID(1, 3)
	left, _ := g.TaskID(1, 2)
	below, _ := g.TaskID(2, 3)
	deps := g.Tasks[id].Deps
	if !(deps[0] == left && deps[1] == below) && !(deps[0] == below && deps[1] == left) {
		t.Errorf("deps of (1,3) = %v, want {left (1,2)=%d, below (2,3)=%d}", deps, left, below)
	}
}

func TestGraphCoverage(t *testing.T) {
	for m := 1; m <= 12; m++ {
		for g := 1; g <= 4; g++ {
			gr, err := NewGraph(m, g)
			if err != nil {
				t.Fatal(err)
			}
			if err := gr.CheckCoverage(); err != nil {
				t.Errorf("m=%d g=%d: %v", m, g, err)
			}
		}
	}
}

func TestGraphRejectsBadArgs(t *testing.T) {
	if _, err := NewGraph(0, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewGraph(4, 0); err == nil {
		t.Error("g=0 accepted")
	}
}

func TestMemoryBlockOrderRespectsDeps(t *testing.T) {
	// Within a task, MB (i,j) must come after (i,j-1) and (i+1,j) when
	// those belong to the same task.
	g, _ := NewGraph(10, 3)
	for _, task := range g.Tasks {
		order := task.MemoryBlockOrder()
		pos := map[[2]int]int{}
		for k, mb := range order {
			pos[mb] = k
		}
		for mb, k := range pos {
			if p, in := pos[[2]int{mb[0], mb[1] - 1}]; in && p > k {
				t.Fatalf("task (%d,%d): MB %v before its left neighbor", task.Bi, task.Bj, mb)
			}
			if p, in := pos[[2]int{mb[0] + 1, mb[1]}]; in && p > k {
				t.Fatalf("task (%d,%d): MB %v before its below neighbor", task.Bi, task.Bj, mb)
			}
		}
	}
}

// execOrderLegal verifies the fundamental schedule invariant: when a task
// runs, every memory block it depends on (entire rows to the left and
// columns below, not just the simplified 2-dep edges) has been computed.
func execOrderLegal(m, g, workers int) error {
	gr, err := NewGraph(m, g)
	if err != nil {
		return err
	}
	var mu sync.Mutex
	done := map[[2]int]bool{}
	return RunPool(gr, workers, func(_ int, task Task) error {
		mu.Lock()
		defer mu.Unlock()
		for _, mb := range task.MemoryBlockOrder() {
			i, j := mb[0], mb[1]
			// MB(i,j) reads row blocks MB(i,k) for k in [i, j) and column
			// blocks MB(k,j) for k in (i, j] — including both diagonals.
			for k := i; k < j; k++ {
				if !done[[2]int{i, k}] {
					return fmt.Errorf("MB(%d,%d) ran before its row dependence MB(%d,%d)", i, j, i, k)
				}
			}
			for k := i + 1; k <= j; k++ {
				if !done[[2]int{k, j}] {
					return fmt.Errorf("MB(%d,%d) ran before its column dependence MB(%d,%d)", i, j, k, j)
				}
			}
			done[[2]int{i, j}] = true
		}
		return nil
	})
}

func TestSimplifiedGraphIsSufficient(t *testing.T) {
	// The paper's claim: the 2-dep graph transitively covers the full
	// dependence set. Check on many shapes with real concurrency.
	for _, m := range []int{1, 2, 3, 5, 8, 13} {
		for _, g := range []int{1, 2, 3} {
			for _, w := range []int{1, 3, 8} {
				if err := execOrderLegal(m, g, w); err != nil {
					t.Errorf("m=%d g=%d w=%d: %v", m, g, w, err)
				}
			}
		}
	}
}

func TestSimplifiedGraphSufficientQuick(t *testing.T) {
	if err := quick.Check(func(m8, g4, w8 uint8) bool {
		m := 1 + int(m8)%15
		g := 1 + int(g4)%4
		w := 1 + int(w8)%8
		return execOrderLegal(m, g, w) == nil
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRunPoolExecutesEachTaskOnce(t *testing.T) {
	g, _ := NewGraph(9, 2)
	var mu sync.Mutex
	count := map[int]int{}
	err := RunPool(g, 4, func(_ int, task Task) error {
		mu.Lock()
		count[task.ID]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(count) != len(g.Tasks) {
		t.Fatalf("executed %d distinct tasks, want %d", len(count), len(g.Tasks))
	}
	for id, c := range count {
		if c != 1 {
			t.Errorf("task %d executed %d times", id, c)
		}
	}
}

func TestRunPoolPropagatesError(t *testing.T) {
	g, _ := NewGraph(6, 1)
	boom := errors.New("boom")
	err := RunPool(g, 3, func(_ int, task Task) error {
		if task.Bi == 1 && task.Bj == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestRunPoolRejectsBadWorkers(t *testing.T) {
	g, _ := NewGraph(3, 1)
	if err := RunPool(g, 0, func(int, Task) error { return nil }); err == nil {
		t.Error("0 workers accepted")
	}
}

func TestRunDESDeterministic(t *testing.T) {
	g, _ := NewGraph(8, 2)
	run := func() (float64, []int) {
		var order []int
		res, err := RunDES(g, 4, 1e-6, func(w int, task Task, start float64) (float64, error) {
			order = append(order, task.ID)
			return start + float64(len(task.MemoryBlockOrder()))*1e-3, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan, order
	}
	m1, o1 := run()
	m2, o2 := run()
	if m1 != m2 {
		t.Errorf("makespan not deterministic: %g vs %g", m1, m2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("execution order not deterministic at %d", i)
		}
	}
}

func TestRunDESRespectsDeps(t *testing.T) {
	g, _ := NewGraph(7, 1)
	finish := make(map[int]float64)
	_, err := RunDES(g, 3, 0, func(w int, task Task, start float64) (float64, error) {
		for _, d := range task.Deps {
			if f, ok := finish[d]; !ok || f > start {
				return 0, fmt.Errorf("task %d started at %g before dep %d finished at %g", task.ID, start, d, f)
			}
		}
		end := start + 1e-3
		finish[task.ID] = end
		return end, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunDESScalesWithWorkers(t *testing.T) {
	g, _ := NewGraph(16, 1)
	cost := func(w int, task Task, start float64) (float64, error) {
		return start + 1e-3, nil
	}
	r1, err := RunDES(g, 1, 0, cost)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunDES(g, 8, 0, cost)
	if err != nil {
		t.Fatal(err)
	}
	if r8.Makespan >= r1.Makespan {
		t.Errorf("8 workers (%g) not faster than 1 (%g)", r8.Makespan, r1.Makespan)
	}
	if r1.Executed != len(g.Tasks) || r8.Executed != len(g.Tasks) {
		t.Error("not all tasks executed")
	}
}

func TestRunDESErrors(t *testing.T) {
	g, _ := NewGraph(3, 1)
	if _, err := RunDES(g, 0, 0, nil); err == nil {
		t.Error("0 workers accepted")
	}
	boom := errors.New("boom")
	if _, err := RunDES(g, 2, 0, func(int, Task, float64) (float64, error) {
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Errorf("exec error not propagated: %v", err)
	}
	if _, err := RunDES(g, 2, 0, func(w int, task Task, start float64) (float64, error) {
		return start - 1, nil
	}); err == nil {
		t.Error("time-travel task accepted")
	}
}

func TestFullGraphEquivalentButDenser(t *testing.T) {
	simple, err := NewGraph(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewFullGraph(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.EdgeCount() <= simple.EdgeCount() {
		t.Errorf("full graph edges %d not denser than simplified %d", full.EdgeCount(), simple.EdgeCount())
	}
	// Same execution legality under the full graph.
	var mu sync.Mutex
	done := map[int]bool{}
	err = RunPool(full, 4, func(_ int, task Task) error {
		mu.Lock()
		defer mu.Unlock()
		for _, d := range task.Deps {
			if !done[d] {
				return fmt.Errorf("task %d ran before dep %d", task.ID, d)
			}
		}
		done[task.ID] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != len(full.Tasks) {
		t.Errorf("executed %d of %d", len(done), len(full.Tasks))
	}
	// Diagonal scheduling blocks remain the only roots.
	if len(full.Roots()) != len(simple.Roots()) {
		t.Errorf("roots differ: %d vs %d", len(full.Roots()), len(simple.Roots()))
	}
}
