package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunPoolStress floods the lock-free pool with many tiny tasks on an
// oversubscribed worker set and asserts exact completion counts plus a
// valid dependence order: every predecessor's completion must be visible
// before a successor starts. Run with -race (scripts/bench.sh wires it
// into the verify path).
func TestRunPoolStress(t *testing.T) {
	g, err := NewGraph(63, 1) // 2016 tasks
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0) * 4
	execs := make([]atomic.Int32, len(g.Tasks))
	done := make([]atomic.Bool, len(g.Tasks))
	err = RunPool(g, workers, func(_ int, task Task) error {
		for _, d := range task.Deps {
			if !done[d].Load() {
				return fmt.Errorf("task %d started before dep %d completed", task.ID, d)
			}
		}
		execs[task.ID].Add(1)
		done[task.ID].Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := range execs {
		if c := execs[id].Load(); c != 1 {
			t.Fatalf("task %d executed %d times, want exactly 1", id, c)
		}
	}
}

// TestRunPoolErrorStopsSuccessors asserts the cancellation contract: once
// a task fails, no task downstream of it (transitively) ever executes,
// because the failed task notifies no successors.
func TestRunPoolErrorStopsSuccessors(t *testing.T) {
	g, err := NewGraph(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	failID, ok := g.TaskID(2, 5)
	if !ok {
		t.Fatal("no task (2,5)")
	}
	// All transitive successors of the failed task.
	downstream := map[int]bool{}
	stack := []int{failID}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Tasks[id].Succs {
			if !downstream[s] {
				downstream[s] = true
				stack = append(stack, s)
			}
		}
	}
	if len(downstream) == 0 {
		t.Fatal("picked a task with no successors; test proves nothing")
	}

	boom := errors.New("boom")
	var mu sync.Mutex
	executed := map[int]bool{}
	err = RunPool(g, 4, func(_ int, task Task) error {
		mu.Lock()
		executed[task.ID] = true
		mu.Unlock()
		if task.ID == failID {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	for id := range executed {
		if downstream[id] {
			t.Errorf("task %d executed despite being downstream of failed task %d", id, failID)
		}
	}
}

// TestRunPoolSingleWorkerStopsAfterError pins the prompt-stop behavior
// deterministically: with one worker, the first failure must be the last
// exec — the seed scheduler instead drained all remaining tasks through
// the loop.
func TestRunPoolSingleWorkerStopsAfterError(t *testing.T) {
	g, err := NewGraph(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	execs := 0
	err = RunPool(g, 1, func(_ int, task Task) error {
		execs++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if execs != 1 {
		t.Fatalf("worker executed %d tasks after the failure, want exec count 1", execs)
	}
}

// TestRunPoolDetectsCycle hands the pool a hand-built cyclic graph; it
// must error up front instead of hanging the workers.
func TestRunPoolDetectsCycle(t *testing.T) {
	g := &Graph{Tasks: []Task{
		{ID: 0, Deps: []int{1}, Succs: []int{1}},
		{ID: 1, Deps: []int{0}, Succs: []int{0}},
	}}
	err := RunPool(g, 2, func(int, Task) error { return nil })
	if err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

// TestRunPoolLockedStillCorrect keeps the ablation baseline honest: the
// mutex-guarded pool must execute every task exactly once in dependence
// order, like the lock-free one.
func TestRunPoolLockedStillCorrect(t *testing.T) {
	g, err := NewGraph(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := map[int]int{}
	done := map[int]bool{}
	err = RunPoolLocked(g, 4, func(_ int, task Task) error {
		mu.Lock()
		defer mu.Unlock()
		for _, d := range task.Deps {
			if !done[d] {
				return fmt.Errorf("task %d before dep %d", task.ID, d)
			}
		}
		count[task.ID]++
		done[task.ID] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(count) != len(g.Tasks) {
		t.Fatalf("executed %d distinct tasks, want %d", len(count), len(g.Tasks))
	}
	for id, c := range count {
		if c != 1 {
			t.Errorf("task %d executed %d times", id, c)
		}
	}
	if err := RunPoolLocked(g, 0, func(int, Task) error { return nil }); err == nil {
		t.Error("0 workers accepted by locked pool")
	}
}

// TestSuccsSortedByCriticalPath pins the dispatch priority baked into the
// graph constructors: every successor list is ordered nearest-diagonal
// first, so completions release the heads of the longest remaining
// dependence chains before shallower work.
func TestSuccsSortedByCriticalPath(t *testing.T) {
	for name, build := range map[string]func(int, int) (*Graph, error){
		"simplified": NewGraph, "full": NewFullGraph,
	} {
		g, err := build(8, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range g.Tasks {
			prev := -1
			for _, s := range task.Succs {
				d := g.Tasks[s].Bj - g.Tasks[s].Bi
				if d < prev {
					t.Fatalf("%s: task (%d,%d) succs %v not in critical-path order", name, task.Bi, task.Bj, task.Succs)
				}
				prev = d
			}
		}
	}
}
