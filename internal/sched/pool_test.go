package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellnpdp/internal/resilience"
)

// TestRunPoolStress floods the lock-free pool with many tiny tasks on an
// oversubscribed worker set and asserts exact completion counts plus a
// valid dependence order: every predecessor's completion must be visible
// before a successor starts. Run with -race (scripts/bench.sh wires it
// into the verify path).
func TestRunPoolStress(t *testing.T) {
	g, err := NewGraph(63, 1) // 2016 tasks
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0) * 4
	execs := make([]atomic.Int32, len(g.Tasks))
	done := make([]atomic.Bool, len(g.Tasks))
	err = RunPool(g, workers, func(_ int, task Task) error {
		for _, d := range task.Deps {
			if !done[d].Load() {
				return fmt.Errorf("task %d started before dep %d completed", task.ID, d)
			}
		}
		execs[task.ID].Add(1)
		done[task.ID].Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := range execs {
		if c := execs[id].Load(); c != 1 {
			t.Fatalf("task %d executed %d times, want exactly 1", id, c)
		}
	}
}

// TestRunPoolErrorStopsSuccessors asserts the cancellation contract: once
// a task fails, no task downstream of it (transitively) ever executes,
// because the failed task notifies no successors.
func TestRunPoolErrorStopsSuccessors(t *testing.T) {
	g, err := NewGraph(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	failID, ok := g.TaskID(2, 5)
	if !ok {
		t.Fatal("no task (2,5)")
	}
	// All transitive successors of the failed task.
	downstream := map[int]bool{}
	stack := []int{failID}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Tasks[id].Succs {
			if !downstream[s] {
				downstream[s] = true
				stack = append(stack, s)
			}
		}
	}
	if len(downstream) == 0 {
		t.Fatal("picked a task with no successors; test proves nothing")
	}

	boom := errors.New("boom")
	var mu sync.Mutex
	executed := map[int]bool{}
	err = RunPool(g, 4, func(_ int, task Task) error {
		mu.Lock()
		executed[task.ID] = true
		mu.Unlock()
		if task.ID == failID {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	for id := range executed {
		if downstream[id] {
			t.Errorf("task %d executed despite being downstream of failed task %d", id, failID)
		}
	}
}

// TestRunPoolSingleWorkerStopsAfterError pins the prompt-stop behavior
// deterministically: with one worker, the first failure must be the last
// exec — the seed scheduler instead drained all remaining tasks through
// the loop.
func TestRunPoolSingleWorkerStopsAfterError(t *testing.T) {
	g, err := NewGraph(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	execs := 0
	err = RunPool(g, 1, func(_ int, task Task) error {
		execs++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if execs != 1 {
		t.Fatalf("worker executed %d tasks after the failure, want exec count 1", execs)
	}
}

// TestRunPoolDetectsCycle hands the pool a hand-built cyclic graph; it
// must error up front instead of hanging the workers.
func TestRunPoolDetectsCycle(t *testing.T) {
	g := &Graph{Tasks: []Task{
		{ID: 0, Deps: []int{1}, Succs: []int{1}},
		{ID: 1, Deps: []int{0}, Succs: []int{0}},
	}}
	err := RunPool(g, 2, func(int, Task) error { return nil })
	if err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

// TestRunPoolLockedStillCorrect keeps the ablation baseline honest: the
// mutex-guarded pool must execute every task exactly once in dependence
// order, like the lock-free one.
func TestRunPoolLockedStillCorrect(t *testing.T) {
	g, err := NewGraph(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	count := map[int]int{}
	done := map[int]bool{}
	err = RunPoolLocked(g, 4, func(_ int, task Task) error {
		mu.Lock()
		defer mu.Unlock()
		for _, d := range task.Deps {
			if !done[d] {
				return fmt.Errorf("task %d before dep %d", task.ID, d)
			}
		}
		count[task.ID]++
		done[task.ID] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(count) != len(g.Tasks) {
		t.Fatalf("executed %d distinct tasks, want %d", len(count), len(g.Tasks))
	}
	for id, c := range count {
		if c != 1 {
			t.Errorf("task %d executed %d times", id, c)
		}
	}
	if err := RunPoolLocked(g, 0, func(int, Task) error { return nil }); err == nil {
		t.Error("0 workers accepted by locked pool")
	}
}

// TestSuccsSortedByCriticalPath pins the dispatch priority baked into the
// graph constructors: every successor list is ordered nearest-diagonal
// first, so completions release the heads of the longest remaining
// dependence chains before shallower work.
func TestSuccsSortedByCriticalPath(t *testing.T) {
	for name, build := range map[string]func(int, int) (*Graph, error){
		"simplified": NewGraph, "full": NewFullGraph,
	} {
		g, err := build(8, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range g.Tasks {
			prev := -1
			for _, s := range task.Succs {
				d := g.Tasks[s].Bj - g.Tasks[s].Bi
				if d < prev {
					t.Fatalf("%s: task (%d,%d) succs %v not in critical-path order", name, task.Bi, task.Bj, task.Succs)
				}
				prev = d
			}
		}
	}
}

// TestRunPoolDeterministicFirstError gates several concurrently-failing
// root tasks behind a barrier so they all start before any of them
// reports, then asserts the pool reports the failure with the smallest
// task ID — not whichever worker reached the error slot first.
func TestRunPoolDeterministicFirstError(t *testing.T) {
	g, err := NewGraph(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	roots := g.Roots() // the 8 diagonal tasks, all ready at once
	if len(roots) != 8 {
		t.Fatalf("%d roots, want 8", len(roots))
	}
	failing := map[int]bool{}
	lowest := -1
	for _, id := range roots {
		if b := g.Tasks[id].Bi; b == 2 || b == 5 || b == 7 {
			failing[id] = true
			if lowest == -1 || id < lowest {
				lowest = id
			}
		}
	}
	for trial := 0; trial < 20; trial++ {
		var barrier sync.WaitGroup
		barrier.Add(len(roots))
		err := RunPool(g, len(roots), func(_ int, task Task) error {
			barrier.Done()
			barrier.Wait() // every root is mid-execution before anyone fails
			if failing[task.ID] {
				return fmt.Errorf("fail-task-%d", task.ID)
			}
			return nil
		})
		want := fmt.Sprintf("fail-task-%d", lowest)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("trial %d: reported %v, want the smallest-ID failure %q", trial, err, want)
		}
	}
}

// TestRunPoolPanicIsolated asserts a panicking task neither kills the
// process nor deadlocks the pool: it surfaces as a PanicError carrying
// the task identity, and nothing downstream of it executes.
func TestRunPoolPanicIsolated(t *testing.T) {
	g, err := NewGraph(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	failID, ok := g.TaskID(1, 4)
	if !ok {
		t.Fatal("no task (1,4)")
	}
	var mu sync.Mutex
	executed := map[int]bool{}
	err = RunPool(g, 4, func(_ int, task Task) error {
		mu.Lock()
		executed[task.ID] = true
		mu.Unlock()
		if task.ID == failID {
			panic("synthetic kernel bug")
		}
		return nil
	})
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic surfaced as %T: %v", err, err)
	}
	if pe.TaskID != failID || pe.Bi != 1 || pe.Bj != 4 {
		t.Fatalf("panic identity %+v, want task %d at (1,4)", pe, failID)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
	for _, s := range g.Tasks[failID].Succs {
		if executed[s] {
			t.Errorf("task %d executed downstream of the panicked task", s)
		}
	}
}

// TestRunPoolCtxCancel cancels mid-solve and asserts the pool drains
// promptly, reports the context error, and stops dispatching new tasks.
func TestRunPoolCtxCancel(t *testing.T) {
	g, err := NewGraph(24, 1) // 300 tasks
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int32
	errc := make(chan error, 1)
	go func() {
		errc <- RunPoolCtx(ctx, g, 4, PoolRunOptions{}, func(_ int, task Task) error {
			if executed.Add(1) == 10 {
				cancel()
			}
			return nil
		})
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled pool did not drain")
	}
	if n := executed.Load(); int(n) >= len(g.Tasks) {
		t.Fatalf("all %d tasks executed despite cancellation", n)
	}
}

// TestRunPoolCtxDeadline asserts an already-expired deadline stops the
// pool at dispatch granularity: workers blocked on the queue wake via
// the poison path and the run reports DeadlineExceeded.
func TestRunPoolCtxDeadline(t *testing.T) {
	g, err := NewGraph(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var executed atomic.Int32
	err = RunPoolCtx(ctx, g, 4, PoolRunOptions{}, func(int, Task) error {
		executed.Add(1)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v", err)
	}
	if n := executed.Load(); int(n) >= len(g.Tasks) {
		t.Fatalf("expired run still executed all %d tasks", n)
	}
}

// TestRunPoolResumeCompleted pre-notifies a dependence-closed set of
// completed tasks and asserts the pool executes exactly the complement,
// once each, in valid order relative to the pre-completed work.
func TestRunPoolResumeCompleted(t *testing.T) {
	g, err := NewGraph(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal + first superdiagonal: dependence-closed under the
	// two-predecessor rule (their deps are diagonal tasks).
	completed := make([]bool, len(g.Tasks))
	nDone := 0
	for i, task := range g.Tasks {
		if task.Bj-task.Bi <= 1 {
			completed[i] = true
			nDone++
		}
	}
	var mu sync.Mutex
	count := map[int]int{}
	err = RunPoolCtx(context.Background(), g, 4, PoolRunOptions{Completed: completed}, func(_ int, task Task) error {
		mu.Lock()
		defer mu.Unlock()
		for _, d := range task.Deps {
			if !completed[d] && count[d] == 0 {
				return fmt.Errorf("task %d ran before live dep %d", task.ID, d)
			}
		}
		count[task.ID]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(count) != len(g.Tasks)-nDone {
		t.Fatalf("executed %d tasks, want %d", len(count), len(g.Tasks)-nDone)
	}
	for id, c := range count {
		if completed[id] {
			t.Errorf("pre-completed task %d re-executed", id)
		}
		if c != 1 {
			t.Errorf("task %d executed %d times", id, c)
		}
	}
	// A fully-completed bitmap is a no-op success.
	all := make([]bool, len(g.Tasks))
	for i := range all {
		all[i] = true
	}
	err = RunPoolCtx(context.Background(), g, 4, PoolRunOptions{Completed: all}, func(int, Task) error {
		t.Error("exec called on fully-completed graph")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A wrong-sized bitmap is rejected up front.
	err = RunPoolCtx(context.Background(), g, 4, PoolRunOptions{Completed: make([]bool, 3)}, func(int, Task) error { return nil })
	if err == nil {
		t.Fatal("wrong-sized completion bitmap accepted")
	}
}

// TestRunPoolOnTaskDone asserts the completion hook fires exactly once
// per executed task before the run returns, and that a panic inside the
// hook fails the run with the task attached instead of crashing.
func TestRunPoolOnTaskDone(t *testing.T) {
	g, err := NewGraph(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	notified := map[int]int{}
	err = RunPoolCtx(context.Background(), g, 3, PoolRunOptions{
		OnTaskDone: func(task Task) {
			mu.Lock()
			notified[task.ID]++
			mu.Unlock()
		},
	}, func(int, Task) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(notified) != len(g.Tasks) {
		t.Fatalf("hook fired for %d tasks, want %d", len(notified), len(g.Tasks))
	}
	for id, c := range notified {
		if c != 1 {
			t.Errorf("hook fired %d times for task %d", c, id)
		}
	}
	err = RunPoolCtx(context.Background(), g, 3, PoolRunOptions{
		OnTaskDone: func(Task) { panic("checkpoint writer bug") },
	}, func(int, Task) error { return nil })
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("hook panic surfaced as %v", err)
	}
}
