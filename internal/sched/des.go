package sched

import (
	"container/heap"
	"fmt"
)

// Exec is a task body under the discrete-event executor. It runs when the
// task is dispatched to a virtual worker: it both performs the real
// computation and returns the task's virtual finish time, given the
// worker index and the virtual start time (seconds).
type Exec func(worker int, t Task, start float64) (end float64, err error)

// DESResult reports a virtual-time execution.
type DESResult struct {
	Makespan   float64   // virtual seconds until the last task finishes
	WorkerBusy []float64 // per-worker busy virtual seconds
	Executed   int
}

// workerHeap orders workers by availability time.
type workerHeap struct {
	avail []float64
	idx   []int
}

func (h workerHeap) Len() int { return len(h.idx) }
func (h workerHeap) Less(i, j int) bool {
	if h.avail[h.idx[i]] != h.avail[h.idx[j]] {
		return h.avail[h.idx[i]] < h.avail[h.idx[j]]
	}
	return h.idx[i] < h.idx[j]
}
func (h workerHeap) Swap(i, j int)       { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *workerHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *workerHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// readyItem is one entry of the ready set.
type readyItem struct {
	id    int
	ready float64
	prio  float64 // urgency; larger = more urgent
}

// RunDES executes the graph deterministically in virtual time on
// `workers` virtual SPEs. Dispatch policy: the earliest-available worker
// takes, among the tasks already ready at that moment, the one with the
// highest critical-path urgency (in the block-triangular DAG the longest
// and most expensive chains run toward the final top-right block, so
// urgency = remaining hops toward it; plain FIFO starves the critical
// column and costs ~20% of the 16-SPE speedup at moderate block counts).
// If nothing is ready yet, the worker waits for the earliest-ready task.
// Each dispatch also pays dispatchOverhead, the PPE's per-task scheduling
// cost that scheduling blocks exist to amortize (Section IV-B). Task
// bodies run exactly once in a deterministic order, so functional results
// are reproducible.
func RunDES(g *Graph, workers int, dispatchOverhead float64, exec Exec) (DESResult, error) {
	prio := make([]float64, len(g.Tasks))
	for i, t := range g.Tasks {
		prio[i] = float64(t.Bi + (g.SchedTiles - 1 - t.Bj))
	}
	return RunDESWithPriority(g, workers, dispatchOverhead, prio, exec)
}

// RunDESWithPriority is RunDES with caller-supplied urgencies, indexed by
// task ID (higher runs first). Engines that can estimate task costs pass
// longest-remaining-cost-path priorities, which brings list scheduling
// within a few percent of the work/critical-path bound; the default
// hop-count heuristic loses ~20% on coarse-task graphs.
func RunDESWithPriority(g *Graph, workers int, dispatchOverhead float64, priority []float64, exec Exec) (DESResult, error) {
	if workers <= 0 {
		return DESResult{}, fmt.Errorf("sched: worker count must be positive, got %d", workers)
	}
	n := len(g.Tasks)
	if len(priority) != n {
		return DESResult{}, fmt.Errorf("sched: priority slice has %d entries for %d tasks", len(priority), n)
	}
	pending := make([]int, n)
	readyAt := make([]float64, n)
	prio := func(t Task) float64 { return priority[t.ID] }
	var ready []readyItem
	for i, t := range g.Tasks {
		pending[i] = len(t.Deps)
		if pending[i] == 0 {
			ready = append(ready, readyItem{id: i, ready: 0, prio: prio(t)})
		}
	}
	wh := &workerHeap{avail: make([]float64, workers)}
	for w := 0; w < workers; w++ {
		heap.Push(wh, w)
	}
	res := DESResult{WorkerBusy: make([]float64, workers)}
	// better reports whether a beats b for dispatch at worker time T.
	better := func(a, b readyItem, T float64) bool {
		aNow, bNow := a.ready <= T, b.ready <= T
		if aNow != bNow {
			return aNow // anything already ready beats waiting
		}
		if !aNow {
			// Neither ready yet: take the earliest-ready.
			if a.ready != b.ready {
				return a.ready < b.ready
			}
		}
		if a.prio != b.prio {
			return a.prio > b.prio
		}
		if a.ready != b.ready {
			return a.ready < b.ready
		}
		return a.id < b.id
	}
	for len(ready) > 0 {
		w := heap.Pop(wh).(int)
		T := wh.avail[w]
		best := 0
		for i := 1; i < len(ready); i++ {
			if better(ready[i], ready[best], T) {
				best = i
			}
		}
		it := ready[best]
		ready[best] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]

		start := it.ready
		if T > start {
			start = T
		}
		start += dispatchOverhead
		end, err := exec(w, g.Tasks[it.id], start)
		if err != nil {
			return res, err
		}
		if end < start {
			return res, fmt.Errorf("sched: task %d finished at %g before its start %g", it.id, end, start)
		}
		wh.avail[w] = end
		res.WorkerBusy[w] += end - start
		heap.Push(wh, w)
		if end > res.Makespan {
			res.Makespan = end
		}
		res.Executed++
		for _, s := range g.Tasks[it.id].Succs {
			if end > readyAt[s] {
				readyAt[s] = end
			}
			pending[s]--
			if pending[s] == 0 {
				ready = append(ready, readyItem{id: s, ready: readyAt[s], prio: prio(g.Tasks[s])})
			}
		}
	}
	if res.Executed != n {
		return res, fmt.Errorf("sched: executed %d of %d tasks (dependence cycle?)", res.Executed, n)
	}
	return res, nil
}
