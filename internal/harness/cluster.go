package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"cellnpdp/internal/cluster"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/stats"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

// The cluster experiment and BENCH_PR7.json characterize the sharded
// coordinator/worker solve (internal/cluster) against the single-process
// parallel engine: loopback-TCP overhead across worker counts, the DMA
// analogue traffic (boundary blocks streamed), and the recovery cost of
// a worker killed mid-wavefront. Every row's table is verified
// bit-identical to SolveSerial — distribution must never change a bit.

// clusterRun is one measured loopback cluster solve.
type clusterRun struct {
	secs     float64 // wall time of the whole solve
	recovery float64 // kill-to-completion seconds (0 when no kill)
	stats    cluster.Stats
}

// runLoopback solves the standard instance on an in-process loopback
// cluster: the coordinator in this goroutine, workers as goroutines on
// real TCP connections. killAfter > 0 hard-kills one worker (connection
// slammed shut, the SIGKILL analogue) once that many tasks completed.
// The result is verified bit-identical to the serial reference before
// returning.
func runLoopback(ctx context.Context, cfg Config, n, workers, killAfter int,
	inject *resilience.Injector, ref *tri.RowMajor[float32]) (clusterRun, error) {
	tile := paperTile(npdp.Single)
	tbl := tri.ToTiled(cfg.chainF32(n), tile)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return clusterRun{}, err
	}
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	var run clusterRun
	var killTime time.Time
	var killOnce sync.Once
	cancels := make([]context.CancelFunc, workers)
	opts := cluster.Options{
		Shards:         workers,
		Heal:           inject != nil,
		HeartbeatEvery: 50 * time.Millisecond,
		Stats:          &run.stats,
	}
	if killAfter > 0 {
		opts.OnTaskDone = func(completed int, _ sched.Task) {
			if completed >= killAfter {
				killOnce.Do(func() {
					killTime = time.Now()
					go cancels[0]()
				})
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wctx, cancel := context.WithCancel(runCtx)
		cancels[w] = cancel
		defer cancel()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			err := cluster.RunWorker(wctx, ln.Addr().String(), cluster.WorkerOptions{
				Name: fmt.Sprintf("w%d", w), Inject: inject,
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintf(cfg.out(), "cluster harness: worker w%d: %v\n", w, err)
			}
		}(w)
	}
	run.secs = timeIt(func() { err = cluster.Coordinate(runCtx, ln, tbl, opts) })
	// OnTaskDone runs on Coordinate's own event loop — this goroutine —
	// so killTime is settled (and race-free) once Coordinate returns.
	if !killTime.IsZero() {
		run.recovery = time.Since(killTime).Seconds()
	}
	cancelRun()
	wg.Wait()
	if err != nil {
		return clusterRun{}, err
	}
	if i, j, a, b, diff := tri.FirstDiff[float32](ref, tbl); diff {
		return clusterRun{}, fmt.Errorf("cluster solve diverged at (%d,%d): %v vs %v", i, j, a, b)
	}
	return run, nil
}

// Cluster is the experiment entry point (see ClusterCtx).
func Cluster(cfg Config) (*stats.Table, error) {
	return ClusterCtx(context.Background(), cfg)
}

// ClusterCtx renders the distributed-solve characterization table:
// single-process baseline, loopback worker sweep, a worker kill
// mid-wavefront, and seeded silent corruption healed by the poisoned
// cone — each verified bit-identical to the serial engine.
func ClusterCtx(ctx context.Context, cfg Config) (*stats.Table, error) {
	n := 600
	if sizes := cfg.measuredSizes(); sizes[len(sizes)-1] < n {
		n = sizes[len(sizes)-1]
	}
	ref := cfg.chainF32(n)
	npdp.SolveSerial(ref)

	t := stats.NewTable(
		fmt.Sprintf("Distributed cluster — sharded coordinator/worker solve over loopback TCP (n=%d)", n),
		"configuration", "workers", "wall ms", "deaths", "redisp", "mismatch", "heal", "blocks", "verified")

	// Single-process baseline: the parallel engine the cluster competes
	// against when the network is free.
	base := cfg.chainF32(n)
	tb := tri.ToTiled(base, paperTile(npdp.Single))
	var baseErr error
	baseSecs := timeIt(func() {
		_, baseErr = npdp.SolveParallel(tb, npdp.ParallelOptions{Workers: cfg.workers()})
	})
	if baseErr != nil {
		return nil, baseErr
	}
	if i, j, a, b, diff := tri.FirstDiff[float32](ref, tb); diff {
		return nil, fmt.Errorf("baseline diverged at (%d,%d): %v vs %v", i, j, a, b)
	}
	t.AddRow("single process", fmt.Sprint(cfg.workers()), fmt.Sprintf("%.2f", baseSecs*1e3),
		"-", "-", "-", "-", "0", "yes")

	for _, w := range []int{1, 2, 4} {
		run, err := runLoopback(ctx, cfg, n, w, 0, nil, ref)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("cluster, %d worker(s)", w), fmt.Sprint(w),
			fmt.Sprintf("%.2f", run.secs*1e3), "0", "0", "0", "0",
			fmt.Sprint(run.stats.BlocksStreamed), "yes")
	}

	// One worker of three hard-killed a third of the way in.
	kill, err := runLoopback(ctx, cfg, n, 3, maxInt(2, clusterTasks(n)/3), nil, ref)
	if err != nil {
		return nil, err
	}
	t.AddRow("cluster, 1 of 3 killed", "3",
		fmt.Sprintf("%.2f", kill.secs*1e3),
		fmt.Sprint(kill.stats.WorkerDeaths), fmt.Sprint(kill.stats.Redispatched),
		"0", "0", fmt.Sprint(kill.stats.BlocksStreamed), "yes")

	// Seeded silent corruption on every worker, healed by cone recompute.
	inject := &resilience.Injector{Rate: 0.1, Seed: cfg.Seed + 7,
		Kinds: []resilience.FaultKind{resilience.FaultCorrupt}}
	healed, err := runLoopback(ctx, cfg, n, 2, 0, inject, ref)
	if err != nil {
		return nil, err
	}
	t.AddRow("cluster, 10% corruption healed", "2",
		fmt.Sprintf("%.2f", healed.secs*1e3), "0", "0",
		fmt.Sprint(healed.stats.SealMismatches), fmt.Sprint(healed.stats.HealRounds),
		fmt.Sprint(healed.stats.BlocksStreamed), "yes")
	return t, nil
}

// clusterTasks is the g=1 task count of the standard instance at size n.
func clusterTasks(n int) int {
	tile := paperTile(npdp.Single)
	m := (n + tile - 1) / tile
	return m * (m + 1) / 2
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ClusterBenchRow is one measured cluster configuration in BENCH_PR7.json.
type ClusterBenchRow struct {
	Name           string  `json:"name"`
	N              int     `json:"n"`
	Workers        int     `json:"workers"`
	WallSeconds    float64 `json:"wall_seconds"`
	BlocksStreamed int     `json:"blocks_streamed"`
	BytesStreamed  int64   `json:"bytes_streamed"`
	Verified       bool    `json:"verified"`
}

// ClusterRecovery is the kill-recovery measurement in BENCH_PR7.json.
type ClusterRecovery struct {
	N               int     `json:"n"`
	Workers         int     `json:"workers"`
	KillAfterTasks  int     `json:"kill_after_tasks"`
	WorkerDeaths    int     `json:"worker_deaths"`
	Redispatched    int     `json:"redispatched"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	TotalSeconds    float64 `json:"total_seconds"`
	Verified        bool    `json:"verified"`
}

// ClusterBenchReport is the BENCH_PR7.json document: the loopback
// cluster against the single-process engine, plus recovery-after-kill.
type ClusterBenchReport struct {
	Schema     string            `json:"schema"`
	Generated  string            `json:"generated"`
	GoVersion  string            `json:"go_version"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Tile       int               `json:"tile"`
	Precision  string            `json:"precision"`
	Rows       []ClusterBenchRow `json:"rows"`
	Recovery   ClusterRecovery   `json:"recovery"`
}

// WriteClusterBenchJSON is the no-cancellation entry point (see
// WriteClusterBenchJSONCtx).
func WriteClusterBenchJSON(cfg Config, path string) error {
	return WriteClusterBenchJSONCtx(context.Background(), cfg, path)
}

// WriteClusterBenchJSONCtx measures the single-process engine and the
// loopback cluster at 1/2/4 workers on the acceptance-scale instance,
// runs the kill-recovery scenario, and writes BENCH_PR7.json.
func WriteClusterBenchJSONCtx(ctx context.Context, cfg Config, path string) error {
	n := 1024
	if cfg.Full {
		n = 2048
	}
	if sizes := cfg.Sizes; len(sizes) > 0 && sizes[len(sizes)-1] < n {
		n = sizes[len(sizes)-1]
	}
	rep := ClusterBenchReport{
		Schema:     "cellnpdp-cluster-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Tile:       paperTile(npdp.Single),
		Precision:  "single",
	}
	ref := workload.Chain[float32](n, cfg.Seed+int64(n))
	npdp.SolveSerial(ref)

	tb := tri.ToTiled(cfg.chainF32(n), paperTile(npdp.Single))
	var solveErr error
	secs := timeIt(func() {
		_, solveErr = npdp.SolveParallel(tb, npdp.ParallelOptions{Workers: cfg.workers()})
	})
	if solveErr != nil {
		return solveErr
	}
	_, _, _, _, diff := tri.FirstDiff[float32](ref, tb)
	rep.Rows = append(rep.Rows, ClusterBenchRow{
		Name: "single-process", N: n, Workers: cfg.workers(),
		WallSeconds: secs, Verified: !diff,
	})
	fmt.Fprintf(cfg.out(), "cluster bench single-process n=%-5d %8.3fs\n", n, secs)

	for _, w := range []int{1, 2, 4} {
		run, err := runLoopback(ctx, cfg, n, w, 0, nil, ref)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, ClusterBenchRow{
			Name: "loopback-cluster", N: n, Workers: w,
			WallSeconds:    run.secs,
			BlocksStreamed: run.stats.BlocksStreamed,
			BytesStreamed:  run.stats.BytesStreamed,
			Verified:       true, // runLoopback fails on any diff
		})
		fmt.Fprintf(cfg.out(), "cluster bench loopback w=%d n=%-5d %8.3fs  %6d blocks  %9d bytes\n",
			w, n, run.secs, run.stats.BlocksStreamed, run.stats.BytesStreamed)
	}

	killAfter := maxInt(2, clusterTasks(n)/3)
	kill, err := runLoopback(ctx, cfg, n, 3, killAfter, nil, ref)
	if err != nil {
		return err
	}
	rep.Recovery = ClusterRecovery{
		N: n, Workers: 3, KillAfterTasks: killAfter,
		WorkerDeaths:    kill.stats.WorkerDeaths,
		Redispatched:    kill.stats.Redispatched,
		RecoverySeconds: kill.recovery,
		TotalSeconds:    kill.secs,
		Verified:        true,
	}
	fmt.Fprintf(cfg.out(), "cluster bench kill-recovery w=3 n=%-5d kill@%d  deaths=%d redispatched=%d recovery=%.3fs total=%.3fs\n",
		n, killAfter, kill.stats.WorkerDeaths, kill.stats.Redispatched, kill.recovery, kill.secs)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
