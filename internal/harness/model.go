package harness

import (
	"fmt"

	"cellnpdp/internal/npdp"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/stats"
)

// ModelReport prints the Section V analytic model: T_M, T_C, the
// dominant side, the size-independence of utilization, and the bandwidth
// constraint.
func ModelReport(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Section V — analytic performance model (QS20, single precision, 16 SPEs)",
		"n", "T_M (memory)", "T_C (compute)", "bound", "utilization @ kernel U_C", "DES model")
	for _, n := range paperSizes() {
		p := perfmodel.QS20SP(n, 16)
		if err := p.Validate(); err != nil {
			return nil, err
		}
		bound := "memory"
		if p.ComputeBound() {
			bound = "compute"
		}
		des, err := modelCell(n, npdp.Single, cellOpts(npdp.Single, 16))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n),
			stats.Seconds(p.MemoryTime()),
			stats.Seconds(p.ComputeTime()),
			bound,
			stats.Percent(p.Utilization(p.KernelUtilizationSP())),
			stats.Seconds(des.Seconds))
	}
	p := perfmodel.QS20SP(4096, 16)
	t.AddNote("utilization is identical across sizes — the paper's Section V claim (T_M and T_C share the N₁³ factor)")
	t.AddNote("minimum aggregate bandwidth to stay compute-bound: %.1f GB/s (QS20 provides %.1f GB/s)",
		p.MinBandwidth()/1e9, p.Bandwidth/1e9)
	t.AddNote("critical local-store budget (T_M = T_C) at n=4096: %.1f KB — the QS20's 208 KB sits far above it (Section VI-D headroom)",
		p.CriticalLocalStore()/1024)
	for _, pt := range p.SweepLocalStore([]float64{208 * 1024, 96 * 1024, 48 * 1024, 24 * 1024, 3 * 1024}) {
		bound := "compute"
		if !pt.ComputeBound {
			bound = "memory"
		}
		t.AddNote("  L_S %4.0f KB → N₂ %3.0f, T_M %s, %s-bound",
			pt.LocalStore/1024, pt.BlockSide, stats.Seconds(pt.MemoryTime), bound)
	}
	return t, nil
}

// UtilizationReport reproduces the Sections VI-A.4/VI-B.4 accounting:
// useful 32-bit operations per cycle on the modeled blade against the
// 128-op/cycle peak.
func UtilizationReport(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Processor utilization — modeled QS20, single precision",
		"n", "SPEs", "SIMD instrs", "32-bit ops/cycle", "utilization", "parallel efficiency")
	for _, n := range []int{4096, 8192} {
		for _, spes := range []int{8, 16} {
			res, err := modelCell(n, npdp.Single, cellOpts(npdp.Single, spes))
			if err != nil {
				return nil, err
			}
			// Each computing-block step executes 80 SIMD instructions of 4
			// lanes; scalar boundary relaxations are counted at one op each.
			instrs := res.Stats.CBSteps * 80
			ops := float64(instrs*4 + res.Stats.ScalarRelax*2)
			cycles := res.Seconds * 3.2e9
			opsPerCycle := ops / cycles
			peak := float64(spes * 8) // dual-issue × 4 lanes per SPE
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", spes),
				fmt.Sprintf("%d", instrs),
				fmt.Sprintf("%.1f", opsPerCycle),
				stats.Percent(opsPerCycle/peak),
				stats.Percent(res.ParallelEfficiency()))
		}
	}
	t.AddNote("paper: 80 scalar ops/cycle of a 128 peak = 62.5%% on 16 SPEs (Section VI-A.4); the TanNPDP comparison implies <4%% for the prior art")
	return t, nil
}
