package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"cellnpdp/internal/npdp"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/stats"
	"cellnpdp/internal/tri"
)

// Resilience characterizes the fault-tolerance layer on the parallel
// engine: wall-time overhead of surviving injected transient faults via
// retry at increasing rates, plus one kill-and-resume cycle through the
// checkpoint codec. Every row is verified bit-identical against the
// serial reference before it is reported.
func Resilience(cfg Config) (*stats.Table, error) {
	// Largest configured measured size, capped so the rate sweep stays
	// cheap even in full mode (fault-tolerance overhead is size-stable).
	n := 600
	if sizes := cfg.measuredSizes(); sizes[len(sizes)-1] < n {
		n = sizes[len(sizes)-1]
	}
	tile := paperTile(npdp.Single)
	ref := cfg.chainF32(n)
	npdp.SolveSerial(ref)

	solve := func(opts npdp.ParallelOptions) (float64, error) {
		src := cfg.chainF32(n)
		tt := tri.ToTiled(src, tile)
		var err error
		secs := timeIt(func() { _, err = npdp.SolveParallel(tt, opts) })
		if err != nil {
			return 0, err
		}
		tri.Copy[float32](tri.Table[float32](src), tt)
		if i, j, a, b, diff := tri.FirstDiff[float32](ref, src); diff {
			return 0, fmt.Errorf("faulted solve diverged at (%d,%d): %v vs %v", i, j, a, b)
		}
		return secs, nil
	}

	t := stats.NewTable(fmt.Sprintf("Resilience — injected transient faults survived by per-task retry (n=%d)", n),
		"Fault rate", "Retries", "Wall (ms)", "Overhead", "Verified")
	clean, err := solve(npdp.ParallelOptions{Workers: cfg.workers(), SchedSide: 1})
	if err != nil {
		return nil, err
	}
	t.AddRow("0", "-", fmt.Sprintf("%.2f", clean*1e3), "1.00x", "yes")
	for _, rate := range []float64{0.02, 0.05, 0.10} {
		secs, err := solve(npdp.ParallelOptions{
			Workers: cfg.workers(), SchedSide: 1,
			Retry:  resilience.RetryPolicy{MaxRetries: 5},
			Inject: &resilience.Injector{Rate: rate, Seed: cfg.Seed + 11},
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f%%", rate*100), "5",
			fmt.Sprintf("%.2f", secs*1e3), fmt.Sprintf("%.2fx", secs/clean), "yes")
	}

	// Kill-and-resume through the checkpoint codec: unretried faults kill
	// the run, a second run resumes the survivors and must still match.
	dir, err := os.MkdirTemp("", "cellnpdp-resilience")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ck := filepath.Join(dir, "solve.npck")
	killedSrc := cfg.chainF32(n)
	killed := tri.ToTiled(killedSrc, tile)
	if _, err := npdp.SolveParallel(killed, npdp.ParallelOptions{
		Workers: cfg.workers(), SchedSide: 1,
		Inject:         &resilience.Injector{Rate: 0.4, Seed: cfg.Seed + 11},
		CheckpointPath: ck, CheckpointEvery: 1,
	}); err == nil {
		return nil, fmt.Errorf("kill run survived rate-0.4 unretried faults")
	}
	snap, err := resilience.LoadCheckpointFile[float32](ck)
	if err != nil {
		return nil, err
	}
	resumedSrc := cfg.chainF32(n)
	resumed := tri.ToTiled(resumedSrc, tile)
	if err := snap.Apply(resumed); err != nil {
		return nil, err
	}
	secs, err := func() (float64, error) {
		var err error
		s := timeIt(func() {
			_, err = npdp.SolveParallel(resumed, npdp.ParallelOptions{
				Workers: cfg.workers(), SchedSide: 1, Completed: snap.Done,
			})
		})
		return s, err
	}()
	if err != nil {
		return nil, err
	}
	tri.Copy[float32](tri.Table[float32](resumedSrc), resumed)
	if i, j, a, b, diff := tri.FirstDiff[float32](ref, resumedSrc); diff {
		return nil, fmt.Errorf("resumed solve diverged at (%d,%d): %v vs %v", i, j, a, b)
	}
	t.AddRow("kill+resume", "0", fmt.Sprintf("%.2f", secs*1e3), "-",
		fmt.Sprintf("yes (%d/%d tasks restored)", snap.DoneCount(), len(snap.Done)))
	t.AddNote("Faults are deterministic per seed; retried memory-block recomputation is idempotent, so every surviving row is bit-identical to the serial reference.")
	return t, nil
}
