// Package harness regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment is one function returning a
// stats.Table whose rows mirror what the paper reports; RunAll prints
// them all. Two scales are supported: the default scaled mode measures
// real executions at sizes that complete in seconds, and full mode
// additionally models the paper's own sizes (4096–16384) through the
// calibrated simulators, where functional execution would take hours.
package harness

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/pipeline"
	"cellnpdp/internal/stats"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

// Config selects experiment scale and output.
type Config struct {
	// Full additionally runs the paper-size modeled experiments.
	Full bool
	// Out receives the rendered tables; defaults to os.Stdout.
	Out io.Writer
	// Workers is the CPU worker count for measured runs; defaults to
	// min(GOMAXPROCS, 8), the paper's core count.
	Workers int
	// Seed drives all workload generation.
	Seed int64
	// Sizes overrides the measured problem sizes (tests use tiny ones).
	Sizes []int
}

func (c Config) out() io.Writer {
	if c.Out != nil {
		return c.Out
	}
	return os.Stdout
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// measuredSizes are the scaled problem sizes real executions run at.
func (c Config) measuredSizes() []int {
	if len(c.Sizes) > 0 {
		return c.Sizes
	}
	if c.Full {
		return []int{512, 1024, 2048, 4096}
	}
	return []int{512, 1024, 2048}
}

// paperSizes are Table II/III's problem sizes, used by modeled runs.
func paperSizes() []int { return []int{4096, 8192, 16384} }

// Modeled per-step kernel costs, computed once from the pipeline model.
var (
	cbCyclesSP = pipeline.CBStepCyclesSP()
	cbCyclesDP = pipeline.CBStepCyclesDP()
)

// cellOpts builds CellNPDP options for a precision and SPE count.
func cellOpts(prec npdp.Precision, workers int) npdp.CellOptions {
	cycles := cbCyclesSP
	if prec == npdp.Double {
		cycles = cbCyclesDP
	}
	return npdp.CellOptions{
		Workers:           workers,
		SchedSide:         1,
		UseSIMD:           true,
		DoubleBuffer:      true,
		CBStepCycles:      cycles,
		ScalarRelaxCycles: npdp.ScalarRelaxCyclesFor(prec),
	}
}

// paperTile returns the 32 KB memory-block tile for a precision.
func paperTile(prec npdp.Precision) int {
	t, err := npdp.DefaultTile(32*1024, prec)
	if err != nil {
		panic(err)
	}
	return t
}

// timeIt measures wall-clock seconds of f.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// modelCell runs the timing-only CellNPDP model on a fresh QS20.
func modelCell(n int, prec npdp.Precision, opts npdp.CellOptions) (npdp.CellResult, error) {
	mach, err := cellsim.NewMachine(cellsim.QS20())
	if err != nil {
		return npdp.CellResult{}, err
	}
	return npdp.ModelCell(n, paperTile(prec), prec, mach, opts)
}

// chainF32 builds the standard instance at size n.
func (c Config) chainF32(n int) *tri.RowMajor[float32] {
	return workload.Chain[float32](n, c.Seed+int64(n))
}

func (c Config) chainF64(n int) *tri.RowMajor[float64] {
	return workload.Chain[float64](n, c.Seed+int64(n))
}

// Experiment pairs a name with its generator, for RunAll and the CLI.
type Experiment struct {
	Name string
	Desc string
	Run  func(Config) (*stats.Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "SIMD instruction mix of one computing-block step", Table1},
		{"table1-dp", "double-precision computing-block step characterization", Table1DP},
		{"table2", "QS20 Cell blade times, modeled at paper sizes", Table2},
		{"table2-verify", "functional vs modeled CellNPDP at measured sizes", Table2Verify},
		{"table3", "8-core CPU platform times, measured", Table3},
		{"fig9a", "DMA traffic on the Cell: original vs NDL", Fig9a},
		{"fig9b", "memory traffic on the CPU: original vs NDL", Fig9b},
		{"fig10a", "SP speedup breakdown on the Cell", Fig10a},
		{"fig10b", "SP speedup breakdown on the CPU", Fig10b},
		{"fig11a", "DP speedup breakdown on the Cell", Fig11a},
		{"fig11b", "DP speedup breakdown on the CPU", Fig11b},
		{"fig12a", "CellNPDP vs TanNPDP on the CPU, SP", Fig12a},
		{"fig12b", "CellNPDP vs TanNPDP on the CPU, DP", Fig12b},
		{"fig13", "memory-block size × SPE count sweep", Fig13},
		{"ablations", "design choices toggled in isolation", Ablations},
		{"resilience", "fault injection, retry overhead and kill+resume", Resilience},
		{"selfheal", "silent-corruption detection and poisoned-cone healing", SelfHeal},
		{"serve", "serving layer under overload: admission, shedding, integrity", ServeLoad},
		{"cluster", "sharded coordinator/worker solve: loopback scaling, kill recovery, cone healing", Cluster},
		{"failover", "coordinator HA: warm-standby takeover of a killed primary, epoch-fenced", Failover},
		{"outofcore", "block pager: resident-budget sweep vs the I/O lower bound, verified", OutOfCore},
		{"model", "Section V analytic model report", ModelReport},
		{"utilization", "processor utilization accounting", UtilizationReport},
	}
}

// RunAll executes every experiment and prints its table.
func RunAll(cfg Config) error {
	for _, e := range All() {
		t, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("harness: %s: %w", e.Name, err)
		}
		if _, err := fmt.Fprintf(cfg.out(), "%s\n", t); err != nil {
			return err
		}
	}
	return nil
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
