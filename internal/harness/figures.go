package harness

import (
	"fmt"

	"cellnpdp/internal/baseline"
	"cellnpdp/internal/cachesim"
	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/stats"
	"cellnpdp/internal/tri"
)

// Fig9a regenerates Figure 9(a): data transferred between the Cell
// processor and main memory, original algorithm vs the new data layout.
func Fig9a(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Figure 9(a) — Cell ⇄ memory traffic, single precision",
		"n", "original (per-element DMA)", "tiled row-major (per-row DMA)", "NDL (block DMA)", "reduction")
	for _, n := range paperSizes() {
		orig, err := npdp.ModelOriginalSPE(n, npdp.Single, cellsim.QS20(), npdp.DefaultScalarRelaxCycles)
		if err != nil {
			return nil, err
		}
		rowOpts := cellOpts(npdp.Single, 16)
		rowOpts.RowMajorDMA = true
		rowTiled, err := modelCell(n, npdp.Single, rowOpts)
		if err != nil {
			return nil, err
		}
		ndl, err := modelCell(n, npdp.Single, cellOpts(npdp.Single, 16))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n),
			stats.Bytes(orig.DMA.TotalBytes()),
			fmt.Sprintf("%s / %d cmds", stats.Bytes(rowTiled.DMA.TotalBytes()), rowTiled.DMA.GetCommands),
			fmt.Sprintf("%s / %d cmds", stats.Bytes(ndl.DMA.TotalBytes()), ndl.DMA.GetCommands),
			stats.Ratio(float64(orig.DMA.TotalBytes())/float64(ndl.DMA.TotalBytes())))
	}
	t.AddNote("the original re-reads the row stream and fetches every column operand individually; the prior tiling moves block bytes but needs one DMA command per scattered row; NDL moves each memory block whole")
	return t, nil
}

// Fig9b regenerates Figure 9(b): main-memory traffic on the CPU platform
// (64-byte cache lines) for the original layout, the prior tiling on the
// row-major layout, and the new data layout.
func Fig9b(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Figure 9(b) — CPU ⇄ memory traffic (64 B lines, caches scaled 128× with the problem), single precision",
		"n", "original", "tiled row-major", "tiled NDL", "original/NDL")
	sizes := []int{256, 512}
	if cfg.Full {
		sizes = append(sizes, 768)
	}
	for _, n := range sizes {
		run := func(trace func(*cachesim.Hierarchy, int, int, int)) (int64, error) {
			h, err := cachesim.ScaledNehalem()
			if err != nil {
				return 0, err
			}
			trace(h, n, 16, 4)
			return h.MemBytes(), nil
		}
		orig, err := run(cachesim.TraceOriginal4)
		if err != nil {
			return nil, err
		}
		row, err := run(cachesim.TraceTiledRowMajor)
		if err != nil {
			return nil, err
		}
		ndl, err := run(cachesim.TraceTiled)
		if err != nil {
			return nil, err
		}
		ratio := "inf"
		if ndl > 0 {
			ratio = stats.Ratio(float64(orig) / float64(ndl))
		}
		t.AddRow(fmt.Sprintf("%d", n), stats.Bytes(orig), stats.Bytes(row), stats.Bytes(ndl), ratio)
	}
	t.AddNote("trace-driven simulation is O(n³), so scaled sizes run against 128×-scaled caches (LLC 64 KB): n=512 vs 64 KB ≈ paper's n=4096 vs 8 MiB")
	t.AddNote("tile 16 keeps the trace cost manageable; larger tiles only widen NDL's advantage")
	return t, nil
}

// breakdownCell produces the Cell-side speedup breakdown of Figures 10(a)
// and 11(a): original on one SPE → +NDL → +SPE procedure → +parallel.
func breakdownCell(cfg Config, prec npdp.Precision, title string, paperNote string) (*stats.Table, error) {
	t := stats.NewTable(title,
		"n", "NDL vs original", "+SPE procedure", "+parallel (16 SPEs)", "total")
	for _, n := range paperSizes() {
		orig, err := npdp.ModelOriginalSPE(n, prec, cellsim.QS20(), npdp.ScalarRelaxCyclesFor(prec))
		if err != nil {
			return nil, err
		}
		ndlOpts := cellOpts(prec, 1)
		ndlOpts.UseSIMD = false
		ndl, err := modelCell(n, prec, ndlOpts)
		if err != nil {
			return nil, err
		}
		spep, err := modelCell(n, prec, cellOpts(prec, 1))
		if err != nil {
			return nil, err
		}
		parp, err := modelCell(n, prec, cellOpts(prec, 16))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n),
			stats.Ratio(orig.Seconds/ndl.Seconds),
			stats.Ratio(ndl.Seconds/spep.Seconds),
			stats.Ratio(spep.Seconds/parp.Seconds),
			stats.Ratio(orig.Seconds/parp.Seconds))
	}
	t.AddNote("%s", paperNote)
	return t, nil
}

// Fig10a regenerates Figure 10(a): the single-precision speedup breakdown
// on the Cell blade.
func Fig10a(cfg Config) (*stats.Table, error) {
	return breakdownCell(cfg, npdp.Single,
		"Figure 10(a) — speedup breakdown on the Cell blade, single precision",
		"paper averages: NDL 31.6x, SPE procedure a further 28x, 16 SPEs a further 15.7x")
}

// Fig11a regenerates Figure 11(a): the double-precision breakdown on the
// Cell blade, where the 13-cycle DPFP latency and 6-cycle stall shrink
// the SPE-procedure gain.
func Fig11a(cfg Config) (*stats.Table, error) {
	return breakdownCell(cfg, npdp.Double,
		"Figure 11(a) — speedup breakdown on the Cell blade, double precision",
		"the SPE-procedure gain shrinks vs Figure 10(a): 2-wide SIMD, 13-cycle DPFP latency, 6-cycle stalls (Section VI-A.5)")
}

// breakdownCPU produces the CPU-side breakdown of Figures 10(b)/11(b),
// measured: original → tiled NDL (scalar) → + computing-block kernel →
// + parallel workers.
func breakdownCPU[E interface{ ~float32 | ~float64 }](cfg Config, build func(int) *tri.RowMajor[E], tile int, title, paperNote string) (*stats.Table, error) {
	t := stats.NewTable(title,
		"n", "original (s)", "NDL scalar", "+CB kernel", fmt.Sprintf("+parallel (%d)", cfg.workers()), "total speedup")
	for _, n := range cfg.measuredSizes() {
		src := build(n)
		ser := src.Clone()
		tSerial := timeIt(func() { npdp.SolveSerial(ser) })

		ttScalar := tri.ToTiled(src, tile)
		var err error
		tNDL := timeIt(func() { _, err = npdp.SolveTiledScalar(ttScalar) })
		if err != nil {
			return nil, err
		}
		ttKernel := tri.ToTiled(src, tile)
		tKern := timeIt(func() { _, err = npdp.SolveTiled(ttKernel) })
		if err != nil {
			return nil, err
		}
		ttPar := tri.ToTiled(src, tile)
		tPar := timeIt(func() {
			_, err = npdp.SolveParallel(ttPar, npdp.ParallelOptions{Workers: cfg.workers(), SchedSide: 1})
		})
		if err != nil {
			return nil, err
		}
		for name, tbl := range map[string]*tri.Tiled[E]{"NDL": ttScalar, "kernel": ttKernel, "parallel": ttPar} {
			if !tri.Equal[E](ser, tri.ToRowMajor(tbl)) {
				return nil, fmt.Errorf("breakdown: %s engine differs from serial at n=%d", name, n)
			}
		}
		t.AddRow(fmt.Sprintf("%d", n),
			stats.Seconds(tSerial),
			stats.Ratio(tSerial/tNDL),
			stats.Ratio(tNDL/tKern),
			stats.Ratio(tKern/tPar),
			stats.Ratio(tSerial/tPar))
	}
	t.AddNote("%s", paperNote)
	return t, nil
}

// Fig10b regenerates Figure 10(b): the measured single-precision
// breakdown on the host CPU.
func Fig10b(cfg Config) (*stats.Table, error) {
	return breakdownCPU(cfg, cfg.chainF32, paperTile(npdp.Single),
		"Figure 10(b) — speedup breakdown on the host CPU, single precision (measured)",
		"paper averages on Nehalem: NDL 7.14x, SPE procedure 5.28x (SSE), 8 cores 7.22x; Go's CB-kernel bar reflects ILP/locality only — no SIMD intrinsics")
}

// Fig11b regenerates Figure 11(b): the measured double-precision CPU
// breakdown.
func Fig11b(cfg Config) (*stats.Table, error) {
	return breakdownCPU(cfg, cfg.chainF64, paperTile(npdp.Double),
		"Figure 11(b) — speedup breakdown on the host CPU, double precision (measured)",
		"paper: DP narrows the kernel bar on the CPU far less than on the Cell because Nehalem's DP units are fully pipelined")
}

// fig12 measures CellNPDP against the TanNPDP-style baseline.
func fig12[E interface{ ~float32 | ~float64 }](cfg Config, build func(int) *tri.RowMajor[E], tile int, title, paperNote string) (*stats.Table, error) {
	t := stats.NewTable(title, "n", "TanNPDP (s)", "CellNPDP (s)", "speedup")
	for _, n := range cfg.measuredSizes() {
		src := build(n)
		tan := src.Clone()
		var err error
		tTan := timeIt(func() {
			_, err = baseline.Solve(tan, baseline.Options{Workers: cfg.workers(), Tile: tile})
		})
		if err != nil {
			return nil, err
		}
		tt := tri.ToTiled(src, tile)
		tCell := timeIt(func() {
			_, err = npdp.SolveParallel(tt, npdp.ParallelOptions{Workers: cfg.workers(), SchedSide: 1})
		})
		if err != nil {
			return nil, err
		}
		if !tri.Equal[E](tan, tri.ToRowMajor(tt)) {
			return nil, fmt.Errorf("fig12: engines disagree at n=%d", n)
		}
		t.AddRow(fmt.Sprintf("%d", n), stats.Seconds(tTan), stats.Seconds(tCell), stats.Ratio(tTan/tCell))
	}
	t.AddNote("%s", paperNote)
	return t, nil
}

// Fig12a regenerates Figure 12(a): execution time vs the state-of-the-art
// fully optimized algorithm, single precision.
func Fig12a(cfg Config) (*stats.Table, error) {
	return fig12(cfg, cfg.chainF32, paperTile(npdp.Single),
		"Figure 12(a) — CellNPDP vs TanNPDP on the host CPU, single precision (measured)",
		"paper average 44x with SSE; the Go gap isolates layout + computing-block structure + scheduling")
}

// Fig12b regenerates Figure 12(b): the double-precision comparison.
func Fig12b(cfg Config) (*stats.Table, error) {
	return fig12(cfg, cfg.chainF64, paperTile(npdp.Double),
		"Figure 12(b) — CellNPDP vs TanNPDP on the host CPU, double precision (measured)",
		"paper average 28x")
}

// Fig13 regenerates Figure 13: CellNPDP performance at n=4096 single
// precision across memory-block sizes and SPE counts, normalized to the
// 32 KB / one-SPE baseline (larger is faster).
func Fig13(cfg Config) (*stats.Table, error) {
	speCounts := []int{1, 2, 4, 8, 16}
	t := stats.NewTable("Figure 13 — memory-block size × SPEs, n=4096 single precision (speedup over 32 KB / 1 SPE)",
		"block size", "1 SPE", "2 SPEs", "4 SPEs", "8 SPEs", "16 SPEs")
	base := 0.0
	for _, kb := range []int{32, 16, 8, 4} {
		tile, err := npdp.DefaultTile(kb*1024, npdp.Single)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d KB (tile %d)", kb, tile)}
		for _, spes := range speCounts {
			mach, err := cellsim.NewMachine(cellsim.QS20())
			if err != nil {
				return nil, err
			}
			res, err := npdp.ModelCell(4096, tile, npdp.Single, mach, cellOpts(npdp.Single, spes))
			if err != nil {
				return nil, err
			}
			if base == 0 {
				base = res.Seconds // 32 KB, 1 SPE
			}
			row = append(row, stats.Ratio(base/res.Seconds))
		}
		t.AddRow(row...)
	}
	t.AddNote("smaller blocks shrink DMA transfers (lower efficiency) and increase re-fetch volume (∝ 1/√blockBytes), reproducing Figure 13's decay")
	return t, nil
}
