package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cellnpdp/internal/cachesim"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/pager"
	"cellnpdp/internal/stats"
	"cellnpdp/internal/tri"
)

// The outofcore experiment and BENCH_PR9.json characterize the
// crash-consistent block pager (internal/pager): how much disk traffic
// a solve does as the resident-set budget shrinks below the table
// footprint, how far that traffic sits above the De Stefani/Gupta I/O
// lower bound (cachesim.IOLowerBound), and how fast a restart resumes
// from the committed spill index after the solve is killed mid-spill.
// Every run is verified bit-identical to SolveSerial.

// ooTileSide matches the failover experiment's tile: small enough that
// modest instances produce hundreds of blocks to page.
const ooTileSide = 24

// ooWorkers is the paged-solve worker count; the minimum viable frame
// budget is workers*3+2 (see the engine's pinning discipline).
const ooWorkers = 4

// ooBlocks is the block count of the out-of-core instance at size n.
func ooBlocks(n int) int {
	m := (n + ooTileSide - 1) / ooTileSide
	return m * (m + 1) / 2
}

// ooFrameBytes is one spill slot: tile² float32 cells + CRC trailer.
func ooFrameBytes() int64 { return int64(ooTileSide)*int64(ooTileSide)*4 + 4 }

// ooRun is one measured paged solve at a fixed resident budget.
type ooRun struct {
	budget int64 // resident budget in bytes
	frames int
	secs   float64
	stats  pager.Stats
	bound  int64 // De Stefani/Gupta I/O lower bound at this budget
}

// runOutOfCore solves the standard instance through the pager with the
// given frame budget and verifies the materialized table bit-identical
// to the serial reference.
func runOutOfCore(ctx context.Context, cfg Config, n, frames int, ref *tri.RowMajor[float32]) (ooRun, error) {
	dir, err := os.MkdirTemp("", "cellnpdp-ooc-")
	if err != nil {
		return ooRun{}, err
	}
	defer os.RemoveAll(dir)

	src := tri.ToTiled(cfg.chainF32(n), ooTileSide)
	p, err := pager.Create(filepath.Join(dir, "solve.npsp"), src, pager.Options{Frames: frames})
	if err != nil {
		return ooRun{}, err
	}
	defer p.Close()

	run := ooRun{budget: int64(frames) * ooFrameBytes(), frames: frames}
	run.secs = timeIt(func() {
		_, err = npdp.SolvePagedCtx(ctx, p, npdp.PagedOptions{Workers: ooWorkers})
	})
	if err != nil {
		return ooRun{}, err
	}
	run.stats = p.Stats()
	run.bound = cachesim.IOLowerBound(n, 4, run.budget)

	got := tri.NewTiled[float32](n, ooTileSide)
	if err := p.Materialize(got); err != nil {
		return ooRun{}, err
	}
	if i, j, a, b, diff := tri.FirstDiff[float32](ref, got); diff {
		return ooRun{}, fmt.Errorf("paged solve (frames=%d) diverged at (%d,%d): %v vs %v", frames, i, j, a, b)
	}
	return run, nil
}

// ooSweepFrames returns the resident-set sweep: the full block count
// (everything fits; the pager never spills) down through 1/4 and 1/8
// of it, floored at the engine's minimum working set.
func ooSweepFrames(n int) []int {
	nb := ooBlocks(n)
	min := ooWorkers*3 + 2
	sweep := []int{nb}
	for _, div := range []int{4, 8} {
		f := nb / div
		if f < min {
			f = min
		}
		if f != sweep[len(sweep)-1] {
			sweep = append(sweep, f)
		}
	}
	return sweep
}

// OutOfCore is the experiment entry point (see OutOfCoreCtx).
func OutOfCore(cfg Config) (*stats.Table, error) {
	return OutOfCoreCtx(context.Background(), cfg)
}

// OutOfCoreCtx renders the out-of-core characterization table: the
// resident-set budget swept below the table footprint, achieved disk
// traffic against the De Stefani/Gupta I/O lower bound, and
// bit-identity with the serial engine at every point.
func OutOfCoreCtx(ctx context.Context, cfg Config) (*stats.Table, error) {
	// The sweep needs enough blocks that an eighth of them still clears
	// the engine's minimum working set, so n has its own floor.
	n := 600
	ref := cfg.chainF32(n)
	npdp.SolveSerial(ref)

	t := stats.NewTable(
		fmt.Sprintf("Out-of-core paging — resident budget vs disk traffic (n=%d, tile=%d, %d blocks)",
			n, ooTileSide, ooBlocks(n)),
		"resident frames", "budget KiB", "spilled KiB", "fetched KiB", "traffic KiB", "bound KiB", "ratio", "wall ms", "verified")

	for _, frames := range ooSweepFrames(n) {
		run, err := runOutOfCore(ctx, cfg, n, frames, ref)
		if err != nil {
			return nil, err
		}
		ratio := "—"
		if run.bound > 0 {
			ratio = fmt.Sprintf("%.2f", float64(run.stats.DiskBytes())/float64(run.bound))
		}
		t.AddRow(fmt.Sprint(frames), fmt.Sprintf("%.0f", float64(run.budget)/1024),
			fmt.Sprintf("%.0f", float64(run.stats.SpilledBytes)/1024),
			fmt.Sprintf("%.0f", float64(run.stats.FetchedBytes)/1024),
			fmt.Sprintf("%.0f", float64(run.stats.DiskBytes())/1024),
			fmt.Sprintf("%.0f", float64(run.bound)/1024),
			ratio, fmt.Sprintf("%.2f", run.secs*1e3), "yes")
	}
	return t, nil
}

// OutOfCorePoint is one resident-budget sweep measurement in
// BENCH_PR9.json.
type OutOfCorePoint struct {
	Frames       int     `json:"frames"`
	BudgetBytes  int64   `json:"budget_bytes"`
	SpilledBytes int64   `json:"spilled_bytes"`
	FetchedBytes int64   `json:"fetched_bytes"`
	DiskBytes    int64   `json:"disk_bytes"`
	LowerBound   int64   `json:"io_lower_bound_bytes"`
	BoundRatio   float64 `json:"bound_ratio"` // disk_bytes / io_lower_bound_bytes, 0 if in-core
	ResidentPeak int64   `json:"resident_peak"`
	Seconds      float64 `json:"seconds"`
	Verified     bool    `json:"verified"`
}

// OutOfCoreBench is the BENCH_PR9.json document: the resident-set
// sweep plus the measured kill-mid-spill recovery.
type OutOfCoreBench struct {
	Schema     string `json:"schema"`
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	N          int    `json:"n"`
	Tile       int    `json:"tile"`
	Blocks     int    `json:"blocks"`
	Workers    int    `json:"workers"`
	TableBytes int64  `json:"table_bytes"`

	Sweep []OutOfCorePoint `json:"sweep"`

	// The kill-recovery scenario: the paged solve is interrupted once
	// KilledAfterSpills blocks have hit the spill file, the pager is
	// abandoned without a clean Close (only the periodically committed
	// index survives, exactly the SIGKILL contract), and a fresh pager
	// resumes from that index.
	KilledAfterSpills   int     `json:"killed_after_spills"`
	ResumedTasks        int     `json:"resumed_tasks"`
	KillRecoverySeconds float64 `json:"kill_recovery_seconds"`
	KillVerified        bool    `json:"kill_verified"`
}

// WriteOutOfCoreBenchJSON is the no-cancellation entry point (see
// WriteOutOfCoreBenchJSONCtx).
func WriteOutOfCoreBenchJSON(cfg Config, path string) error {
	return WriteOutOfCoreBenchJSONCtx(context.Background(), cfg, path)
}

// WriteOutOfCoreBenchJSONCtx measures the resident-set sweep and the
// kill-mid-spill recovery on the acceptance-scale instance and writes
// BENCH_PR9.json.
func WriteOutOfCoreBenchJSONCtx(ctx context.Context, cfg Config, path string) error {
	n := 1024
	if cfg.Full {
		n = 2048
	}
	// cfg.Sizes can shrink the instance for tests, but never below the
	// sweep's own floor (see OutOfCoreCtx).
	if sizes := cfg.Sizes; len(sizes) > 0 && sizes[len(sizes)-1] < n {
		n = maxInt(600, sizes[len(sizes)-1])
	}
	ref := cfg.chainF32(n)
	npdp.SolveSerial(ref)

	rep := OutOfCoreBench{
		Schema:     "cellnpdp-outofcore-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		N:          n,
		Tile:       ooTileSide,
		Blocks:     ooBlocks(n),
		Workers:    ooWorkers,
		TableBytes: int64(n) * int64(n+1) / 2 * 4,
	}
	for _, frames := range ooSweepFrames(n) {
		run, err := runOutOfCore(ctx, cfg, n, frames, ref)
		if err != nil {
			return err
		}
		pt := OutOfCorePoint{
			Frames:       frames,
			BudgetBytes:  run.budget,
			SpilledBytes: run.stats.SpilledBytes,
			FetchedBytes: run.stats.FetchedBytes,
			DiskBytes:    run.stats.DiskBytes(),
			LowerBound:   run.bound,
			ResidentPeak: run.stats.ResidentPeak,
			Seconds:      run.secs,
			Verified:     true, // runOutOfCore fails on any diff
		}
		if run.bound > 0 {
			pt.BoundRatio = float64(run.stats.DiskBytes()) / float64(run.bound)
		}
		fmt.Fprintf(cfg.out(), "outofcore bench n=%-5d frames=%-4d traffic=%dB bound=%dB wall=%.3fs\n",
			n, frames, run.stats.DiskBytes(), run.bound, run.secs)
		rep.Sweep = append(rep.Sweep, pt)
	}

	if err := runKillRecovery(ctx, cfg, n, &rep, ref); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out(), "outofcore bench kill@%d spills resumed=%d recovery=%.3fs\n",
		rep.KilledAfterSpills, rep.ResumedTasks, rep.KillRecoverySeconds)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// runKillRecovery interrupts a paged solve once a quarter of the blocks
// have spilled, abandons the pager without Close (the SIGKILL contract:
// only the periodically committed index survives), and measures a fresh
// pager's resume from that index to a verified complete solve.
func runKillRecovery(ctx context.Context, cfg Config, n int, rep *OutOfCoreBench, ref *tri.RowMajor[float32]) error {
	dir, err := os.MkdirTemp("", "cellnpdp-ooc-kill-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	spill := filepath.Join(dir, "solve.npsp")

	frames := maxInt(ooWorkers*3+2, ooBlocks(n)/8)
	popts := pager.Options{Frames: frames, CommitEvery: 4}
	src := tri.ToTiled(cfg.chainF32(n), ooTileSide)
	crashed, err := pager.Create(spill, src, popts)
	if err != nil {
		return err
	}
	// NOT closed: a clean Close would flush and commit everything, which
	// is precisely what a SIGKILL denies the process.

	rep.KilledAfterSpills = maxInt(8, ooBlocks(n)/4)
	killCtx, kill := context.WithCancel(ctx)
	defer kill()
	watcher := make(chan struct{})
	go func() {
		defer close(watcher)
		for {
			if crashed.Stats().SpilledBlocks >= int64(rep.KilledAfterSpills) {
				kill()
				return
			}
			select {
			case <-killCtx.Done():
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()
	_, serr := npdp.SolvePagedCtx(killCtx, crashed, npdp.PagedOptions{Workers: ooWorkers})
	<-watcher
	if serr == nil {
		return fmt.Errorf("outofcore: solve finished before the kill fired (spilled=%d of %d blocks); nothing was measured",
			crashed.Stats().SpilledBlocks, ooBlocks(n))
	}
	if !errors.Is(serr, context.Canceled) {
		return fmt.Errorf("outofcore: interrupted solve failed for the wrong reason: %w", serr)
	}

	resumed, err := pager.Open[float32](spill, pager.Options{Frames: frames})
	if err != nil {
		return err
	}
	defer resumed.Close()
	m := resumed.Blocks()
	for bi := 0; bi < m; bi++ {
		for bj := bi; bj < m; bj++ {
			if resumed.IsFinal(bi, bj) {
				rep.ResumedTasks++
			}
		}
	}
	rep.KillRecoverySeconds = timeIt(func() {
		_, err = npdp.SolvePagedCtx(ctx, resumed, npdp.PagedOptions{Workers: ooWorkers, Resume: true})
	})
	if err != nil {
		return err
	}
	got := tri.NewTiled[float32](n, ooTileSide)
	if err := resumed.Materialize(got); err != nil {
		return err
	}
	if i, j, a, b, diff := tri.FirstDiff[float32](ref, got); diff {
		return fmt.Errorf("resumed solve diverged at (%d,%d): %v vs %v", i, j, a, b)
	}
	rep.KillVerified = true
	return nil
}
