package harness

import (
	"fmt"

	"cellnpdp/internal/baseline"
	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/kernel"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/pipeline"
	"cellnpdp/internal/simd"
	"cellnpdp/internal/stats"
	"cellnpdp/internal/tri"
)

// Table1DP characterizes the double-precision computing-block step the
// way Table I does for single precision: a 4×4 block of doubles spans two
// registers per row, and DPFP instructions stall both pipelines.
func Table1DP(cfg Config) (*stats.Table, error) {
	var counts simd.Counts
	block := make([]float64, 4*4)
	kernel.CountedStepF64(block, block, block, 4, &counts)
	isa := pipeline.DoublePrecision()
	t := stats.NewTable("Table I (double-precision counterpart) — instructions of one computing-block step",
		"Instruction", "Execution number", "Latency (cycles)", "Pipeline type", "stalls both pipes")
	for _, op := range simd.Ops {
		spec := isa.Spec[op]
		t.AddRow(op.String(),
			fmt.Sprintf("%d", counts.Get(op)),
			fmt.Sprintf("%d", spec.Latency),
			fmt.Sprintf("%d", int(spec.Pipe)),
			fmt.Sprintf("%v", spec.StallBoth))
	}
	t.AddNote("total %d instructions; program-order steady state %.0f cycles (vs %.0f idealized list-scheduled; SP needs only %.0f)",
		counts.Total(), pipeline.CBStepCyclesDP(), pipeline.CBStepCyclesDPScheduled(), cbCyclesSP)
	return t, nil
}

// Ablations quantifies the design choices DESIGN.md calls out, each
// toggled in isolation at n=2048 single precision.
func Ablations(cfg Config) (*stats.Table, error) {
	const n = 2048
	t := stats.NewTable("Ablations — each design choice toggled in isolation (n=2048, single precision)",
		"design choice", "with", "without", "effect")

	// 1. New data layout vs row-major tiling at equal tile (measured).
	src := cfg.chainF32(n)
	ndlTile := paperTile(npdp.Single)
	tt := tri.ToTiled(src, ndlTile)
	var err error
	tNDL := timeIt(func() { _, err = npdp.SolveTiledScalar(tt) })
	if err != nil {
		return nil, err
	}
	rm := src.Clone()
	tRow := timeIt(func() {
		_, err = baseline.Solve(rm, baseline.Options{Workers: 1, Tile: ndlTile})
	})
	if err != nil {
		return nil, err
	}
	if !tri.Equal[float32](rm, tri.ToRowMajor(tt)) {
		return nil, fmt.Errorf("ablation: layouts disagree")
	}
	t.AddRow("block-sequential layout (measured, scalar, 1 core)",
		stats.Seconds(tNDL), stats.Seconds(tRow), stats.Ratio(tRow/tNDL))

	// 2. Computing-block kernel vs scalar loops (measured).
	t2a := tri.ToTiled(src, ndlTile)
	tKern := timeIt(func() { _, err = npdp.SolveTiled(t2a) })
	if err != nil {
		return nil, err
	}
	t.AddRow("4x4 computing-block kernel (measured, 1 core)",
		stats.Seconds(tKern), stats.Seconds(tNDL), stats.Ratio(tNDL/tKern))

	// 3. Software pipelining in the SPE kernel (modeled cycles).
	t.AddRow("software pipelining (modeled cycles/CB step)",
		fmt.Sprintf("%.0f", cbCyclesSP),
		fmt.Sprintf("%.0f", pipeline.CBStepCyclesSPNaive()),
		stats.Ratio(pipeline.CBStepCyclesSPNaive()/cbCyclesSP))

	// 4. Double buffering (modeled).
	on, err := modelCell(n, npdp.Single, cellOpts(npdp.Single, 16))
	if err != nil {
		return nil, err
	}
	offOpts := cellOpts(npdp.Single, 16)
	offOpts.DoubleBuffer = false
	off, err := modelCell(n, npdp.Single, offOpts)
	if err != nil {
		return nil, err
	}
	t.AddRow("double-buffered DMA prefetch (modeled, 16 SPEs)",
		stats.Seconds(on.Seconds), stats.Seconds(off.Seconds), stats.Ratio(off.Seconds/on.Seconds))

	// 5. Scheduling blocks under heavy dispatch cost (modeled).
	heavy := cellOpts(npdp.Single, 16)
	heavyG := cellOpts(npdp.Single, 16)
	heavyG.SchedSide = 4
	mach, err := heavyMachine()
	if err != nil {
		return nil, err
	}
	a, err := npdp.ModelCell(n, 16, npdp.Single, mach, heavy)
	if err != nil {
		return nil, err
	}
	b, err := npdp.ModelCell(n, 16, npdp.Single, mach, heavyG)
	if err != nil {
		return nil, err
	}
	t.AddRow("scheduling blocks g=4 @200µs dispatch (modeled)",
		stats.Seconds(b.Seconds), stats.Seconds(a.Seconds), stats.Ratio(a.Seconds/b.Seconds))

	// 6. Simplified 2-edge dependence graph vs full edges (measured).
	t6a := tri.ToTiled(src, 32)
	tSimple := timeIt(func() {
		_, err = npdp.SolveParallel(t6a, npdp.ParallelOptions{Workers: cfg.workers()})
	})
	if err != nil {
		return nil, err
	}
	t6b := tri.ToTiled(src, 32)
	tFull := timeIt(func() {
		_, err = npdp.SolveParallel(t6b, npdp.ParallelOptions{Workers: cfg.workers(), FullDeps: true})
	})
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("simplified 2-dep graph (measured, %d cores)", cfg.workers()),
		stats.Seconds(tSimple), stats.Seconds(tFull), stats.Ratio(tFull/tSimple))

	// 7. Task queue vs the prior work's barrier-synchronized wavefront.
	t7 := tri.ToTiled(src, 32)
	tWave := timeIt(func() {
		_, err = npdp.SolveWavefrontBarrier(t7, cfg.workers())
	})
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("task queue vs barrier wavefront (measured, %d cores)", cfg.workers()),
		stats.Seconds(tSimple), stats.Seconds(tWave), stats.Ratio(tWave/tSimple))

	// 8. Register-blocked panel stage-1 kernel vs 4×4 CB steps (measured).
	t8a := tri.ToTiled(src, ndlTile)
	tPanel := timeIt(func() {
		_, err = npdp.SolveParallel(t8a, npdp.ParallelOptions{Workers: 1})
	})
	if err != nil {
		return nil, err
	}
	t8b := tri.ToTiled(src, ndlTile)
	tCBStep := timeIt(func() {
		_, err = npdp.SolveParallel(t8b, npdp.ParallelOptions{Workers: 1, NoPanelKernel: true})
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("register-blocked panel stage-1 kernel (measured, 1 core)",
		stats.Seconds(tPanel), stats.Seconds(tCBStep), stats.Ratio(tCBStep/tPanel))

	// 9. Lock-free task completion vs the mutex-guarded pool (measured,
	// small tiles so dispatch overhead is visible next to kernel time).
	t9a := tri.ToTiled(src, 16)
	tLockfree := timeIt(func() {
		_, err = npdp.SolveParallel(t9a, npdp.ParallelOptions{Workers: cfg.workers()})
	})
	if err != nil {
		return nil, err
	}
	t9b := tri.ToTiled(src, 16)
	tMutex := timeIt(func() {
		_, err = npdp.SolveParallel(t9b, npdp.ParallelOptions{Workers: cfg.workers(), MutexPool: true})
	})
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("lock-free task completion (measured, %d cores, tile 16)", cfg.workers()),
		stats.Seconds(tLockfree), stats.Seconds(tMutex), stats.Ratio(tMutex/tLockfree))
	t.AddNote("'effect' is without/with — how much the design choice buys; values < 1.0x mean the simplification costs a little and buys scheduling-state size instead")
	return t, nil
}

// heavyMachine is a QS20 with an exaggerated per-task dispatch cost, to
// make the scheduling-block ablation visible at modest sizes.
func heavyMachine() (*cellsim.Machine, error) {
	cfg := cellsim.QS20()
	cfg.DispatchOverhead = 200e-6
	return cellsim.NewMachine(cfg)
}
