package harness

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cellnpdp/internal/npdp"
)

// fastCfg keeps measured experiments tiny for tests.
func fastCfg() Config {
	return Config{Workers: 2, Seed: 1, Sizes: []int{96, 180}}
}

func TestTable1(t *testing.T) {
	tbl, err := Table1(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"Load", "12", "Shuffle", "16", "Store", "54 cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	tbl, err := Table2(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("Table2 has %d rows, want 6", len(tbl.Rows))
	}
	out := tbl.String()
	for _, want := range []string{"original, one PPE", "original, one SPE", "CellNPDP, 16 SPEs", "single", "double"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestTable2Verify(t *testing.T) {
	tbl, err := Table2Verify(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tbl.String(), "false") {
		t.Errorf("cross-check reported a mismatch:\n%s", tbl)
	}
}

func TestFig9a(t *testing.T) {
	tbl, err := Fig9a(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("Fig9a rows = %d", len(tbl.Rows))
	}
}

func TestFig10aShape(t *testing.T) {
	tbl, err := Fig10a(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("Fig10a rows = %d", len(tbl.Rows))
	}
}

func TestFig11aShape(t *testing.T) {
	if _, err := Fig11a(fastCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestFig13Shape(t *testing.T) {
	tbl, err := Fig13(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("Fig13 rows = %d, want 4 block sizes", len(tbl.Rows))
	}
	// The 32 KB / 1 SPE cell is the baseline: exactly 1.0x.
	if tbl.Rows[0][1] != "1.0x" {
		t.Errorf("baseline cell = %q, want 1.0x", tbl.Rows[0][1])
	}
}

func TestModelReport(t *testing.T) {
	tbl, err := ModelReport(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "compute") {
		t.Errorf("QS20 SP should be compute-bound:\n%s", tbl)
	}
}

func TestUtilizationReport(t *testing.T) {
	if _, err := UtilizationReport(fastCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestLookupAndAll(t *testing.T) {
	if len(All()) < 14 {
		t.Errorf("only %d experiments registered", len(All()))
	}
	if _, ok := Lookup("table1"); !ok {
		t.Error("table1 not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus name found")
	}
	names := map[string]bool{}
	for _, e := range All() {
		if names[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		names[e.Name] = true
		if e.Desc == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.workers() < 1 || c.workers() > 8 {
		t.Errorf("default workers = %d", c.workers())
	}
	if c.out() == nil {
		t.Error("default out nil")
	}
	if len(c.measuredSizes()) == 0 {
		t.Error("no measured sizes")
	}
	full := Config{Full: true}
	if len(full.measuredSizes()) <= len(c.measuredSizes()) {
		t.Error("full mode should add sizes")
	}
}

func TestPaperTile(t *testing.T) {
	if paperTile(npdp.Single) != 88 || paperTile(npdp.Double) != 64 {
		t.Errorf("paper tiles = %d/%d, want 88/64", paperTile(npdp.Single), paperTile(npdp.Double))
	}
}

func TestFig10aBreakdownDirections(t *testing.T) {
	// Every stage of the Cell breakdown must be a genuine speedup (>1x).
	tbl, err := Fig10a(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		for col := 1; col < len(row); col++ {
			if strings.HasPrefix(row[col], "0.") {
				t.Errorf("stage %d at n=%s is a slowdown: %s", col, row[0], row[col])
			}
		}
	}
}

// TestRunAllSmoke exercises the full pipeline once on a tiny config; the
// measured experiments shrink via Workers and the small default sizes.
func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run in -short mode")
	}
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	if err := RunAll(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Table II", "Table III", "Figure 9(a)", "Figure 9(b)",
		"Figure 10(a)", "Figure 10(b)", "Figure 11(a)", "Figure 11(b)",
		"Figure 12(a)", "Figure 12(b)", "Figure 13", "Section V", "utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestTable1DP(t *testing.T) {
	tbl, err := Table1DP(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"24", "32", "13", "true", "144"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1DP missing %q:\n%s", want, out)
		}
	}
}

func TestAblationsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("measured ablations in -short mode")
	}
	tbl, err := Ablations(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("ablations rows = %d, want 9 (7 seed + panel kernel + lock-free pool)", len(tbl.Rows))
	}
	// The modeled rows must show genuine benefits.
	for _, row := range tbl.Rows {
		if strings.Contains(row[0], "software pipelining") && !strings.HasPrefix(row[3], "3.9") {
			t.Errorf("software pipelining effect = %s, want 3.9x", row[3])
		}
	}
}

// TestServeLoadExperiment is the serving-layer acceptance scenario: the
// experiment itself asserts that 16 concurrent requests against a
// two-solve budget produce only 200/429/503, that every 200 passed the
// CRC + residual integrity checks with a consistent checksum, and that
// no goroutine leaked; the test only needs it to pass and report shape.
func TestServeLoadExperiment(t *testing.T) {
	tbl, err := ServeLoad(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("ServeLoad rows = %d, want 200/429/503/goroutines", len(tbl.Rows))
	}
	for i, want := range []string{"200", "429", "503", "goroutines"} {
		if tbl.Rows[i][0] != want {
			t.Fatalf("row %d = %q, want %q", i, tbl.Rows[i][0], want)
		}
	}
}

// TestSelfHealExperiment runs the corruption-recovery characterization:
// the experiment self-verifies every healed row bit-identical against the
// serial reference and asserts the single-corruption cone is a strict
// subset of the task graph, so the test only needs shape and outcomes.
func TestSelfHealExperiment(t *testing.T) {
	tbl, err := SelfHeal(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("SelfHeal rows = %d, want clean + single + 5%% + detect-only", len(tbl.Rows))
	}
	single := tbl.Rows[1]
	if single[1] != "1" || single[2] != "1" || !strings.Contains(single[3], "/") {
		t.Fatalf("single-corruption row malformed: %v", single)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[len(last)-1] != "error surfaced" {
		t.Fatalf("detect-only row must surface an error: %v", last)
	}
}

// TestResilienceExperiment runs the fault-tolerance characterization:
// every row self-verifies against the serial reference, so the test only
// needs the table shape and the resume row's restored-task note.
func TestResilienceExperiment(t *testing.T) {
	tbl, err := Resilience(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("Resilience rows = %d, want clean + 3 rates + resume", len(tbl.Rows))
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "kill+resume" || !strings.Contains(last[len(last)-1], "restored") {
		t.Fatalf("resume row malformed: %v", last)
	}
}

func TestClusterExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback cluster runs in -short mode")
	}
	tbl, err := Cluster(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"single process", "cluster, 1 worker(s)",
		"cluster, 1 of 3 killed", "corruption healed"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "no") {
		t.Fatalf("a cluster row failed verification:\n%s", out)
	}
}

func TestFailoverExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback failover cluster runs in -short mode")
	}
	// fastCfg's tiny Sizes are ignored: the experiment pins its own
	// 600-point instance so the replication-keyed kill always lands.
	tbl, err := Failover(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"primary killed, 2 workers", "primary killed, 3 workers"} {
		if !strings.Contains(out, want) {
			t.Errorf("failover table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "no") {
		t.Fatalf("a failover row failed verification:\n%s", out)
	}
	for _, row := range tbl.Rows {
		if row[4] != "2" {
			t.Fatalf("takeover epoch = %s, want 2:\n%s", row[4], out)
		}
	}
}

func TestWriteFailoverBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback failover cluster runs in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_PR8.json")
	cfg := fastCfg()
	cfg.Sizes = []int{96, 600}
	cfg.Out = io.Discard
	if err := WriteFailoverBenchJSON(cfg, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep FailoverBench
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "cellnpdp-failover-bench/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if !rep.Verified || rep.Epoch != 2 || rep.ReplicatedTasks < rep.KillAfterTasks ||
		rep.ResumedTasks <= 0 || rep.RecoverySeconds <= 0 || rep.TotalSeconds <= 0 {
		t.Fatalf("failover bench implausible: %+v", rep)
	}
}

func TestWriteClusterBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback cluster runs in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_PR7.json")
	cfg := fastCfg()
	cfg.Out = io.Discard
	if err := WriteClusterBenchJSON(cfg, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep ClusterBenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "cellnpdp-cluster-bench/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("got %d rows, want single-process + 3 cluster rows", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if !row.Verified || row.WallSeconds <= 0 {
			t.Fatalf("row %+v not verified or unmeasured", row)
		}
	}
	if rep.Recovery.WorkerDeaths < 1 {
		t.Fatalf("recovery scenario observed no death: %+v", rep.Recovery)
	}
	if !rep.Recovery.Verified || rep.Recovery.RecoverySeconds <= 0 {
		t.Fatalf("recovery not verified or unmeasured: %+v", rep.Recovery)
	}
}

func TestOutOfCoreExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("paged solve sweep runs in -short mode")
	}
	// fastCfg's tiny Sizes are ignored: the experiment pins its own
	// 600-point instance so the sweep's smallest budget still spills.
	tbl, err := OutOfCore(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "Out-of-core paging") {
		t.Fatalf("unexpected table title:\n%s", out)
	}
	if len(tbl.Rows) < 2 {
		t.Fatalf("sweep produced %d rows, want the in-core point plus spilling points", len(tbl.Rows))
	}
	// The smallest budget must actually have gone out of core.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[2] == "0" {
		t.Fatalf("smallest budget spilled nothing:\n%s", out)
	}
	if strings.Contains(out, "no") {
		t.Fatalf("an out-of-core row failed verification:\n%s", out)
	}
}

func TestWriteOutOfCoreBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("paged solve sweep runs in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_PR9.json")
	cfg := fastCfg()
	cfg.Sizes = []int{96, 600}
	cfg.Out = io.Discard
	if err := WriteOutOfCoreBenchJSON(cfg, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep OutOfCoreBench
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "cellnpdp-outofcore-bench/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Sweep) < 2 {
		t.Fatalf("sweep has %d points: %+v", len(rep.Sweep), rep)
	}
	smallest := rep.Sweep[len(rep.Sweep)-1]
	if !smallest.Verified || smallest.SpilledBytes <= 0 || smallest.LowerBound <= 0 || smallest.BoundRatio < 1 {
		t.Fatalf("smallest-budget point implausible: %+v", smallest)
	}
	if !rep.KillVerified || rep.ResumedTasks <= 0 || rep.KillRecoverySeconds <= 0 {
		t.Fatalf("kill recovery implausible: resumed=%d recovery=%.3fs verified=%v",
			rep.ResumedTasks, rep.KillRecoverySeconds, rep.KillVerified)
	}
}
