package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"cellnpdp/internal/cluster"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/stats"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

// The failover experiment and BENCH_PR8.json characterize coordinator
// high availability (internal/cluster's warm standby): how much of the
// wavefront the replication stream had shipped when the primary was
// killed, how long the lease + takeover + resumed solve took from the
// kill to the final block, and that the epoch fence held (the result is
// verified bit-identical to SolveSerial in every run).

// failoverTile is deliberately smaller than the paper tile so the
// standard instance yields enough tasks for a kill keyed on replicated
// progress to land genuinely mid-wavefront.
const failoverTileSide = 24

// failoverRun is one measured primary-death takeover.
type failoverRun struct {
	secs      float64 // standby wall time: tailing + lease + takeover solve
	recovery  float64 // primary-kill-to-completion seconds
	killAfter int     // replicated-task threshold that triggered the kill
	stats     cluster.Stats
	sstats    cluster.StandbyStats
}

// failoverTasks is the g=1 task count of the failover instance at size n.
func failoverTasks(n int) int {
	m := (n + failoverTileSide - 1) / failoverTileSide
	return m * (m + 1) / 2
}

// runFailover solves the standard instance on an in-process loopback
// cluster with a warm standby, kills the primary (the Die seam, the
// in-process SIGKILL) once killAfter tasks have been REPLICATED, and
// measures the standby's recovery. The takeover result is verified
// bit-identical to the serial reference before returning.
func runFailover(ctx context.Context, cfg Config, n, workers int, ref *tri.RowMajor[float32]) (failoverRun, error) {
	priTbl := tri.ToTiled(cfg.chainF32(n), failoverTileSide)
	sbTbl := tri.ToTiled(cfg.chainF32(n), failoverTileSide)

	priLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return failoverRun{}, err
	}
	sbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		priLn.Close()
		return failoverRun{}, err
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	run := failoverRun{killAfter: maxInt(3, failoverTasks(n)/4)}
	die := make(chan struct{})
	var dieOnce sync.Once
	var killTime time.Time
	sbOpts := cluster.StandbyOptions{
		Options: cluster.Options{
			Stats: &run.stats,
		},
		LeaseAfter: 500 * time.Millisecond,
		OnDelta: func(done int) {
			// Keyed on REPLICATED progress, so the takeover provably
			// resumes from shipped state, never from zero.
			if done >= run.killAfter {
				dieOnce.Do(func() {
					killTime = time.Now()
					close(die)
				})
			}
		},
		StandbyStats: &run.sstats,
	}

	var priStats cluster.Stats
	priOpts := cluster.Options{
		Shards:         workers,
		HeartbeatEvery: 10 * time.Millisecond, // replication batches flush fast
		ReplicaAddr:    sbLn.Addr().String(),
		Die:            die,
		Stats:          &priStats,
	}

	priErr := make(chan error, 1)
	go func() { priErr <- cluster.Coordinate(runCtx, priLn, priTbl, priOpts) }()

	addrs := priLn.Addr().String() + "," + sbLn.Addr().String()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			err := cluster.RunWorker(runCtx, addrs, cluster.WorkerOptions{
				Name:          fmt.Sprintf("w%d", w),
				MaxReconnects: 500,
				Reconnect: resilience.RetryPolicy{
					BaseDelay: 5 * time.Millisecond,
					MaxDelay:  50 * time.Millisecond,
					Jitter:    true,
				},
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintf(cfg.out(), "failover harness: worker w%d: %v\n", w, err)
			}
		}(w)
	}

	run.secs = timeIt(func() { err = cluster.RunStandby(runCtx, sbLn, sbTbl, sbOpts) })
	// OnDelta runs on RunStandby's own event loop — this goroutine — so
	// killTime is settled (and race-free) once RunStandby returns.
	if !killTime.IsZero() {
		run.recovery = time.Since(killTime).Seconds()
	}
	cancelRun()
	wg.Wait()
	if err != nil {
		return failoverRun{}, err
	}
	if perr := <-priErr; !errors.Is(perr, cluster.ErrDied) {
		return failoverRun{}, fmt.Errorf("killed primary returned %v, want ErrDied", perr)
	}
	if !run.sstats.TookOver {
		return failoverRun{}, fmt.Errorf("primary finished before the kill fired (replicated=%d of %d); nothing was measured",
			run.sstats.ReplicatedTasks, failoverTasks(n))
	}
	if i, j, a, b, diff := tri.FirstDiff[float32](ref, sbTbl); diff {
		return failoverRun{}, fmt.Errorf("takeover solve diverged at (%d,%d): %v vs %v", i, j, a, b)
	}
	return run, nil
}

// Failover is the experiment entry point (see FailoverCtx).
func Failover(cfg Config) (*stats.Table, error) {
	return FailoverCtx(context.Background(), cfg)
}

// FailoverCtx renders the coordinator-HA characterization table: the
// primary killed mid-wavefront at two replication depths, the standby's
// takeover epoch, how much state it resumed from, and the kill-to-done
// recovery time — each run verified bit-identical to the serial engine.
func FailoverCtx(ctx context.Context, cfg Config) (*stats.Table, error) {
	// The kill is keyed on replicated progress, so the instance needs
	// enough wavefront runway that the primary cannot finish before the
	// replication stream ships killAfter tasks — smoke configs with tiny
	// Sizes must not shrink it, so n is the experiment's own floor.
	n := 600
	ref := cfg.chainF32(n)
	npdp.SolveSerial(ref)

	t := stats.NewTable(
		fmt.Sprintf("Coordinator failover — warm standby resumes a killed primary (n=%d, tile=%d, %d tasks)",
			n, failoverTileSide, failoverTasks(n)),
		"configuration", "workers", "replicated", "resumed", "epoch", "fenced", "recovery ms", "wall ms", "verified")

	for _, workers := range []int{2, 3} {
		run, err := runFailover(ctx, cfg, n, workers, ref)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("primary killed, %d workers", workers), fmt.Sprint(workers),
			fmt.Sprint(run.sstats.ReplicatedTasks), fmt.Sprint(run.stats.Resumed),
			fmt.Sprint(run.stats.Epoch), fmt.Sprint(run.stats.FencedWrites),
			fmt.Sprintf("%.2f", run.recovery*1e3), fmt.Sprintf("%.2f", run.secs*1e3), "yes")
	}
	return t, nil
}

// FailoverBench is the BENCH_PR8.json document: the measured
// coordinator-death takeover on the acceptance-scale instance.
type FailoverBench struct {
	Schema          string  `json:"schema"`
	Generated       string  `json:"generated"`
	GoVersion       string  `json:"go_version"`
	GOARCH          string  `json:"goarch"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	N               int     `json:"n"`
	Tile            int     `json:"tile"`
	Tasks           int     `json:"tasks"`
	Workers         int     `json:"workers"`
	KillAfterTasks  int     `json:"kill_after_tasks"`
	ReplicatedTasks int     `json:"replicated_tasks"`
	ResumedTasks    int     `json:"resumed_tasks"`
	Epoch           uint32  `json:"epoch"`
	FencedWrites    int     `json:"fenced_writes"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	TotalSeconds    float64 `json:"total_seconds"`
	Verified        bool    `json:"verified"`
}

// WriteFailoverBenchJSON is the no-cancellation entry point (see
// WriteFailoverBenchJSONCtx).
func WriteFailoverBenchJSON(cfg Config, path string) error {
	return WriteFailoverBenchJSONCtx(context.Background(), cfg, path)
}

// WriteFailoverBenchJSONCtx runs the coordinator-kill takeover on the
// acceptance-scale instance and writes BENCH_PR8.json: how deep into
// the wavefront the kill landed, what the standby resumed from, and the
// kill-to-completion recovery time.
func WriteFailoverBenchJSONCtx(ctx context.Context, cfg Config, path string) error {
	n := 1024
	if cfg.Full {
		n = 2048
	}
	// cfg.Sizes can shrink the instance for tests, but never below the
	// 600-point runway the replication-keyed kill needs (see FailoverCtx).
	if sizes := cfg.Sizes; len(sizes) > 0 && sizes[len(sizes)-1] < n {
		n = maxInt(600, sizes[len(sizes)-1])
	}
	ref := workload.Chain[float32](n, cfg.Seed+int64(n))
	npdp.SolveSerial(ref)

	const workers = 3
	run, err := runFailover(ctx, cfg, n, workers, ref)
	if err != nil {
		return err
	}
	rep := FailoverBench{
		Schema:          "cellnpdp-failover-bench/v1",
		Generated:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOARCH:          runtime.GOARCH,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		N:               n,
		Tile:            failoverTileSide,
		Tasks:           failoverTasks(n),
		Workers:         workers,
		KillAfterTasks:  run.killAfter,
		ReplicatedTasks: run.sstats.ReplicatedTasks,
		ResumedTasks:    run.stats.Resumed,
		Epoch:           run.stats.Epoch,
		FencedWrites:    run.stats.FencedWrites,
		RecoverySeconds: run.recovery,
		TotalSeconds:    run.secs,
		Verified:        true, // runFailover fails on any diff
	}
	fmt.Fprintf(cfg.out(), "failover bench n=%-5d kill@%d replicated=%d resumed=%d epoch=%d recovery=%.3fs total=%.3fs\n",
		n, run.killAfter, run.sstats.ReplicatedTasks, run.stats.Resumed, run.stats.Epoch,
		run.recovery, run.secs)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
