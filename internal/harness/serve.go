package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"cellnpdp"
	"cellnpdp/internal/serve"
	"cellnpdp/internal/stats"
)

// ServeLoad characterizes the serving layer under overload: a server
// whose memory budget admits at most two concurrent solves receives 16
// concurrent requests (four of them with hopeless deadlines). Every
// outcome must be 200, 429 or 503 — never a hang, a 500, or a corrupt
// result — every 200 must carry a passing CRC + residual integrity
// report with a checksum identical across requests (same seed), and the
// run must not leak a single goroutine.
func ServeLoad(cfg Config) (*stats.Table, error) {
	n := cfg.measuredSizes()[len(cfg.measuredSizes())-1]
	if n > 1024 {
		n = 1024
	}
	const (
		requests = 16
		shedReqs = 4
		queueLen = 4
	)
	est, err := cellnpdp.EstimateSolve[float32](n, cellnpdp.Options{Workers: cfg.workers()})
	if err != nil {
		return nil, err
	}
	// Budget: two solves fit, a third does not.
	budget := 2*est.FootprintBytes + est.FootprintBytes/2
	// Calibrate the predictor so the model says ~2ms per solve: the
	// shed requests' 1ms deadlines are hopeless, the default 30s is not.
	predictFactor := 0.002 / est.PredictedSeconds

	before := runtime.NumGoroutine()
	srv := serve.New(serve.Config{
		Workers:       cfg.workers(),
		BudgetBytes:   budget,
		QueueDepth:    queueLen,
		PredictFactor: predictFactor,
	})
	ts := httptest.NewServer(srv.Handler())
	client := &http.Client{Transport: &http.Transport{}}

	type reply struct {
		status int
		body   serve.SolveResponse
		err    error
	}
	replies := make([]reply, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := serve.SolveRequest{N: n, Engine: "auto", Seed: cfg.Seed}
			if i < shedReqs {
				req.DeadlineMS = 1
			}
			body, err := json.Marshal(req)
			if err != nil {
				replies[i].err = err
				return
			}
			resp, err := client.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				replies[i].err = err
				return
			}
			defer resp.Body.Close()
			replies[i].status = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				replies[i].err = json.NewDecoder(resp.Body).Decode(&replies[i].body)
			}
		}(i)
	}
	wg.Wait()
	srv.Drain()
	srv.Wait()
	ts.Close()
	client.CloseIdleConnections()

	outcomes := map[int]int{}
	checksum := ""
	for i, r := range replies {
		if r.err != nil {
			return nil, fmt.Errorf("request %d: %v", i, r.err)
		}
		outcomes[r.status]++
		switch r.status {
		case http.StatusOK:
			ir := r.body.Integrity
			if !ir.CRCOK || !ir.ResidualOK || ir.CellsSampled <= 0 || ir.CRC32C == "" {
				return nil, fmt.Errorf("request %d: 200 with failing integrity report %+v", i, ir)
			}
			if checksum == "" {
				checksum = ir.CRC32C
			} else if ir.CRC32C != checksum {
				return nil, fmt.Errorf("request %d: checksum %s differs from %s on the same instance", i, ir.CRC32C, checksum)
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			return nil, fmt.Errorf("request %d: outcome %d, want only 200/429/503", i, r.status)
		}
	}
	if outcomes[200] == 0 {
		return nil, fmt.Errorf("no request succeeded under load: %v", outcomes)
	}
	if outcomes[503] < shedReqs {
		return nil, fmt.Errorf("only %d sheds for %d hopeless deadlines: %v", outcomes[503], shedReqs, outcomes)
	}

	// Zero goroutine leaks: the admission queue, gate waiters and HTTP
	// plumbing must all unwind once the server is drained and closed.
	after := runtime.NumGoroutine()
	for settle := time.Now().Add(5 * time.Second); after > before && time.Now().Before(settle); {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		return nil, fmt.Errorf("goroutine leak: %d before load, %d after drain", before, after)
	}

	t := stats.NewTable(
		fmt.Sprintf("Serving layer under overload — 16 concurrent requests, budget for 2 solves (n=%d)", n),
		"Outcome", "Count", "Meaning")
	t.AddRow("200", fmt.Sprintf("%d", outcomes[200]), "solved; CRC32C + residual spot-check passed")
	t.AddRow("429", fmt.Sprintf("%d", outcomes[429]), "rejected: admission queue full (Retry-After sent)")
	t.AddRow("503", fmt.Sprintf("%d", outcomes[503]), "shed: deadline below model-predicted solve time")
	t.AddRow("goroutines", fmt.Sprintf("%d -> %d", before, after), "no leaks after drain")
	t.AddNote("Budget %d bytes (solve footprint %d), queue depth %d; every 200 carried checksum %s.",
		budget, est.FootprintBytes, queueLen, checksum)
	return t, nil
}
