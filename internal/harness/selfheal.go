package harness

import (
	"errors"
	"fmt"

	"cellnpdp/internal/npdp"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/stats"
	"cellnpdp/internal/tri"
)

// SelfHeal characterizes the block-sealing layer on the parallel engine:
// silent bit flips injected into completed memory blocks are detected by
// the CRC32C seal audit and repaired by recomputing only the poisoned
// cone. Rows cover a single isolated corruption (showing the cone is a
// strict subset of the task graph), a sustained 5% corruption rate, and
// the detect-only mode where healing is disabled and the solve must fail
// loudly instead of returning silently wrong bytes. Every healed row is
// verified bit-identical against the serial reference.
func SelfHeal(cfg Config) (*stats.Table, error) {
	// Same sizing policy as Resilience: corruption-recovery overhead is
	// size-stable, so stay at a few hundred points even in full mode.
	n := 600
	if sizes := cfg.measuredSizes(); sizes[len(sizes)-1] < n {
		n = sizes[len(sizes)-1]
	}
	tile := paperTile(npdp.Single)
	ref := cfg.chainF32(n)
	npdp.SolveSerial(ref)

	totalTasks := 0
	// solve runs one sealed parallel solve and verifies it bit-identical.
	solve := func(rate float64, seed int64, heal bool) (secs float64, hs resilience.HealStats, err error) {
		src := cfg.chainF32(n)
		tt := tri.ToTiled(src, tile)
		m := tt.Blocks()
		totalTasks = m * (m + 1) / 2
		opts := npdp.ParallelOptions{
			Workers: cfg.workers(), SchedSide: 1,
			Seal: true, Heal: heal, HealStats: &hs,
		}
		if rate > 0 {
			opts.Inject = &resilience.Injector{
				Rate: rate, Seed: seed,
				Kinds: []resilience.FaultKind{resilience.FaultCorrupt},
			}
		}
		secs = timeIt(func() { _, err = npdp.SolveParallel(tt, opts) })
		if err != nil {
			return 0, hs, err
		}
		tri.Copy[float32](tri.Table[float32](src), tt)
		if i, j, a, b, diff := tri.FirstDiff[float32](ref, src); diff {
			return 0, hs, fmt.Errorf("healed solve diverged at (%d,%d): %v vs %v", i, j, a, b)
		}
		return secs, hs, nil
	}

	t := stats.NewTable(fmt.Sprintf("Self-healing — silent corruption detected by block seals and repaired by cone recompute (n=%d)", n),
		"Scenario", "Corrupt", "Rounds", "Recomputed", "Wall (ms)", "Verified")

	clean, hs, err := solve(0, 0, true)
	if err != nil {
		return nil, err
	}
	if hs.CorruptBlocks != 0 {
		return nil, fmt.Errorf("clean sealed solve reported %d corrupt blocks", hs.CorruptBlocks)
	}
	t.AddRow("sealed, no faults", "0", "0", "-", fmt.Sprintf("%.2f", clean*1e3), "yes")

	// Single isolated corruption: search seeds deterministically for a run
	// where exactly one block corrupts and one heal round repairs it, the
	// cleanest demonstration that healing recomputes a strict subset of
	// the task graph rather than restarting the solve.
	single := false
	for seed := int64(1); seed <= 1000; seed++ {
		secs, hs, err := solve(0.01, seed, true)
		if err != nil {
			return nil, err
		}
		if hs.CorruptBlocks != 1 || hs.HealRounds != 1 || hs.CheckpointFallback {
			continue
		}
		if hs.RecomputedTasks >= totalTasks {
			return nil, fmt.Errorf("single-corruption heal recomputed %d of %d tasks — cone is not a strict subset",
				hs.RecomputedTasks, totalTasks)
		}
		t.AddRow("1 corruption, healed", "1", "1",
			fmt.Sprintf("%d/%d tasks", hs.RecomputedTasks, totalTasks),
			fmt.Sprintf("%.2f", secs*1e3), "yes")
		single = true
		break
	}
	if !single {
		return nil, errors.New("no seed in 1..1000 produced a single isolated corruption")
	}

	// Sustained 5% corruption rate: heal rounds iterate until the audit
	// comes back clean; the result must still be bit-identical. At tiny
	// test sizes the task graph is small enough that a given seed may
	// inject nothing, so search deterministically for one that does.
	rateSeed := int64(-1)
	for seed := cfg.Seed + 13; seed < cfg.Seed+13+1000; seed++ {
		secs, hs, err := solve(0.05, seed, true)
		if err != nil {
			return nil, err
		}
		if hs.CorruptBlocks == 0 {
			continue
		}
		t.AddRow("5% rate, healed", fmt.Sprint(hs.CorruptBlocks), fmt.Sprint(hs.HealRounds),
			fmt.Sprintf("%d/%d tasks", hs.RecomputedTasks, totalTasks),
			fmt.Sprintf("%.2f", secs*1e3), "yes")
		rateSeed = seed
		break
	}
	if rateSeed < 0 {
		return nil, errors.New("no seed produced corruption at rate 0.05")
	}

	// Detect-only: sealing without healing must surface the corruption as
	// an error — never a silently wrong table.
	_, _, err = solve(0.05, rateSeed, false)
	var ce *resilience.CorruptionError
	if !errors.As(err, &ce) {
		return nil, fmt.Errorf("detect-only run: want *resilience.CorruptionError, got %v", err)
	}
	t.AddRow("5% rate, heal off", fmt.Sprint(len(ce.Blocks)), "0", "-", "-", "error surfaced")

	t.AddNote("Corruption is a deterministic bit flip per (seed, task, attempt) applied after the block's seal CRC is computed; the audit therefore always detects it, and healing resets exactly the corrupted block plus its transitive consumers.")
	return t, nil
}
