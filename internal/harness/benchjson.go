package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"cellnpdp/internal/npdp"
	"cellnpdp/internal/tri"
)

// The BENCH_* trajectory: WriteBenchJSON measures the parallel CPU engine
// the way `go test -bench -benchmem` would (testing.Benchmark underneath,
// ns/op + allocs/op + bytes/op) across a workers sweep and the PR's
// ablation axes, and emits a machine-readable JSON file (BENCH_PR1.json
// for this PR) so successive PRs can diff engine throughput.
//
// Engine configurations measured:
//
//	seed      mutex-guarded scheduler + 4×4 CB-step stage 1 (the PR-0 engine)
//	lockfree  lock-free scheduler, CB-step stage 1 (scheduler win in isolation)
//	panel     mutex-guarded scheduler, panel stage 1 (kernel win in isolation)
//	pr1       lock-free scheduler + panel stage 1 (the shipping engine)

// BenchRow is one measured engine configuration.
type BenchRow struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchReport is the top-level BENCH_*.json document.
type BenchReport struct {
	Schema        string             `json:"schema"`
	Generated     string             `json:"generated"`
	GoVersion     string             `json:"go_version"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	Tile          int                `json:"tile"`
	Precision     string             `json:"precision"`
	Rows          []BenchRow         `json:"rows"`
	SpeedupVsSeed map[string]float64 `json:"speedup_vs_seed"`
}

type benchEngine struct {
	name string
	opts npdp.ParallelOptions
}

func benchEngines(workers int) []benchEngine {
	return []benchEngine{
		{"seed", npdp.ParallelOptions{Workers: workers, MutexPool: true, NoPanelKernel: true}},
		{"lockfree", npdp.ParallelOptions{Workers: workers, NoPanelKernel: true}},
		{"panel", npdp.ParallelOptions{Workers: workers, MutexPool: true}},
		{"pr1", npdp.ParallelOptions{Workers: workers}},
	}
}

// WriteBenchJSON runs the sweep and writes the report to path.
//
// The full workers sweep {1,2,4,8} runs the seed and pr1 engines at
// n=2048 single precision (the acceptance size); the two isolation
// configurations and the n=1024 sanity size run at 8 workers only, to
// keep the total wall time in minutes.
func WriteBenchJSON(cfg Config, path string) error {
	tile := paperTile(npdp.Single)
	rep := BenchReport{
		Schema:        "cellnpdp-bench/v1",
		Generated:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Tile:          tile,
		Precision:     "single",
		SpeedupVsSeed: map[string]float64{},
	}

	type cell struct {
		n, workers int
		engines    []string
	}
	var plan []cell
	for _, w := range []int{1, 2, 4, 8} {
		plan = append(plan, cell{2048, w, []string{"seed", "pr1"}})
	}
	plan = append(plan,
		cell{2048, 8, []string{"lockfree", "panel"}},
		cell{1024, 8, []string{"seed", "pr1"}},
	)

	seedNs := map[string]float64{}
	for _, c := range plan {
		src := cfg.chainF32(c.n)
		for _, eng := range benchEngines(c.workers) {
			keep := false
			for _, want := range c.engines {
				keep = keep || eng.name == want
			}
			if !keep {
				continue
			}
			var runErr error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					tt := tri.ToTiled(src, tile)
					b.StartTimer()
					if _, err := npdp.SolveParallel(tt, eng.opts); err != nil {
						runErr = err
						return
					}
				}
			})
			if runErr != nil {
				return fmt.Errorf("bench %s n=%d w=%d: %w", eng.name, c.n, c.workers, runErr)
			}
			row := BenchRow{
				Name:        eng.name,
				N:           c.n,
				Workers:     c.workers,
				Iterations:  res.N,
				NsPerOp:     float64(res.NsPerOp()),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			}
			rep.Rows = append(rep.Rows, row)
			key := fmt.Sprintf("n%d_w%d", c.n, c.workers)
			if eng.name == "seed" {
				seedNs[key] = row.NsPerOp
			}
			fmt.Fprintf(cfg.out(), "bench %-8s n=%-5d workers=%d  %12.0f ns/op  %5d allocs/op\n",
				eng.name, c.n, c.workers, row.NsPerOp, row.AllocsPerOp)
		}
	}
	for _, row := range rep.Rows {
		key := fmt.Sprintf("n%d_w%d", row.N, row.Workers)
		if base, ok := seedNs[key]; ok && row.Name != "seed" && row.NsPerOp > 0 {
			rep.SpeedupVsSeed[key+"_"+row.Name] = base / row.NsPerOp
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
