package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"cellnpdp/internal/kernel"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/zuker"
)

// The BENCH_* trajectory: WriteBenchJSON measures the parallel CPU engine
// the way `go test -bench -benchmem` would (testing.Benchmark underneath,
// ns/op + allocs/op + bytes/op) across a workers sweep and the PR's
// ablation axes, and emits a machine-readable JSON file (BENCH_PR_N.json
// per PR; see scripts/bench.sh) so successive PRs can diff engine
// throughput.
//
// Engine configurations measured:
//
//	seed      mutex-guarded scheduler + 4×4 CB-step stage 1 (the PR-0 engine)
//	lockfree  lock-free scheduler, CB-step stage 1 (scheduler win in isolation)
//	panel     mutex-guarded scheduler, panel stage 1 (kernel win in isolation)
//	pr1       lock-free scheduler + panel stage 1 (the PR-1 shipping engine)
//
// Schema v2 adds the per-kernel stage-1 sweep (kernel_rows): each
// selectable kernel — scalar CB-step, pure-Go panel, vector assembly —
// pinned for a full solve over n ∈ {512, 1024, 2048, 4096}, plus the
// Four-Russians lattice kernel against the serial Nussinov reference,
// with the acceptance ratios in stage1_speedup.

// BenchRow is one measured engine configuration.
type BenchRow struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// KernelRow is one measured stage-1 kernel configuration: a full solve
// with the stage-1 kernel pinned (scalar CB-step, pure-Go panel, vector
// assembly), or the Nussinov lattice solve (Four-Russians vs serial).
// CellsPerSec is derived from the n³/6 stage-1 relaxation count.
type KernelRow struct {
	Kernel      string  `json:"kernel"`
	N           int     `json:"n"`
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// BenchReport is the top-level BENCH_*.json document.
type BenchReport struct {
	Schema        string             `json:"schema"`
	Generated     string             `json:"generated"`
	GoVersion     string             `json:"go_version"`
	GOARCH        string             `json:"goarch"`
	VectorISA     string             `json:"vector_isa"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	Tile          int                `json:"tile"`
	Precision     string             `json:"precision"`
	Rows          []BenchRow         `json:"rows"`
	KernelRows    []KernelRow        `json:"kernel_rows"`
	SpeedupVsSeed map[string]float64 `json:"speedup_vs_seed"`
	Stage1Speedup map[string]float64 `json:"stage1_speedup"`
}

type benchEngine struct {
	name string
	opts npdp.ParallelOptions
}

func benchEngines(workers int) []benchEngine {
	return []benchEngine{
		{"seed", npdp.ParallelOptions{Workers: workers, MutexPool: true, NoPanelKernel: true}},
		{"lockfree", npdp.ParallelOptions{Workers: workers, NoPanelKernel: true}},
		{"panel", npdp.ParallelOptions{Workers: workers, MutexPool: true}},
		{"pr1", npdp.ParallelOptions{Workers: workers}},
	}
}

// WriteBenchJSON runs the sweep and writes the report to path.
//
// The full workers sweep {1,2,4,8} runs the seed and pr1 engines at
// n=2048 single precision (the acceptance size); the two isolation
// configurations and the n=1024 sanity size run at 8 workers only, to
// keep the total wall time in minutes.
func WriteBenchJSON(cfg Config, path string) error {
	tile := paperTile(npdp.Single)
	rep := BenchReport{
		Schema:        "cellnpdp-bench/v2",
		Generated:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOARCH:        runtime.GOARCH,
		VectorISA:     kernel.VectorISA(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Tile:          tile,
		Precision:     "single",
		SpeedupVsSeed: map[string]float64{},
	}

	type cell struct {
		n, workers int
		engines    []string
	}
	var plan []cell
	for _, w := range []int{1, 2, 4, 8} {
		plan = append(plan, cell{2048, w, []string{"seed", "pr1"}})
	}
	plan = append(plan,
		cell{2048, 8, []string{"lockfree", "panel"}},
		cell{1024, 8, []string{"seed", "pr1"}},
	)

	seedNs := map[string]float64{}
	for _, c := range plan {
		src := cfg.chainF32(c.n)
		for _, eng := range benchEngines(c.workers) {
			keep := false
			for _, want := range c.engines {
				keep = keep || eng.name == want
			}
			if !keep {
				continue
			}
			var runErr error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					tt := tri.ToTiled(src, tile)
					b.StartTimer()
					if _, err := npdp.SolveParallel(tt, eng.opts); err != nil {
						runErr = err
						return
					}
				}
			})
			if runErr != nil {
				return fmt.Errorf("bench %s n=%d w=%d: %w", eng.name, c.n, c.workers, runErr)
			}
			row := BenchRow{
				Name:        eng.name,
				N:           c.n,
				Workers:     c.workers,
				Iterations:  res.N,
				NsPerOp:     float64(res.NsPerOp()),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			}
			rep.Rows = append(rep.Rows, row)
			key := fmt.Sprintf("n%d_w%d", c.n, c.workers)
			if eng.name == "seed" {
				seedNs[key] = row.NsPerOp
			}
			fmt.Fprintf(cfg.out(), "bench %-8s n=%-5d workers=%d  %12.0f ns/op  %5d allocs/op\n",
				eng.name, c.n, c.workers, row.NsPerOp, row.AllocsPerOp)
		}
	}
	for _, row := range rep.Rows {
		key := fmt.Sprintf("n%d_w%d", row.N, row.Workers)
		if base, ok := seedNs[key]; ok && row.Name != "seed" && row.NsPerOp > 0 {
			rep.SpeedupVsSeed[key+"_"+row.Name] = base / row.NsPerOp
		}
	}

	if err := kernelSweep(cfg, &rep); err != nil {
		return err
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// kernelSweep appends the per-kernel stage-1 rows: each min-plus kernel
// pinned via ParallelOptions.Stage1 over the size sweep, plus the
// Four-Russians lattice kernel against its serial reference. The
// stage1_speedup map distills the acceptance ratios (vector vs scalar
// and panel, Four-Russians vs serial, per n).
func kernelSweep(cfg Config, rep *BenchReport) error {
	rep.Stage1Speedup = map[string]float64{}
	workers := cfg.workers()
	sizes := []int{512, 1024, 2048, 4096}
	tile := paperTile(npdp.Single)

	sels := []perfmodel.Kernel{perfmodel.KernelScalar, perfmodel.KernelPanel}
	if kernel.VectorEnabled() {
		sels = append(sels, perfmodel.KernelVector)
	}
	nsFor := map[string]float64{}
	record := func(name string, n int, res testing.BenchmarkResult) {
		row := KernelRow{
			Kernel:      name,
			N:           n,
			Workers:     workers,
			Iterations:  res.N,
			NsPerOp:     float64(res.NsPerOp()),
			CellsPerSec: float64(n) * float64(n) * float64(n) / 6 / (float64(res.NsPerOp()) * 1e-9),
		}
		rep.KernelRows = append(rep.KernelRows, row)
		nsFor[fmt.Sprintf("n%d_%s", n, name)] = row.NsPerOp
		fmt.Fprintf(cfg.out(), "kernel %-14s n=%-5d %14.0f ns/op  %10.3g cells/s\n", name, n, row.NsPerOp, row.CellsPerSec)
	}

	for _, n := range sizes {
		src := cfg.chainF32(n)
		for _, sel := range sels {
			var runErr error
			opts := npdp.ParallelOptions{Workers: workers, Stage1: sel}
			// KernelVector pins the same panel entry points as KernelPanel;
			// the vector row times the assembly dispatch, the panel row
			// forces the pure-Go body process-wide for its measurement.
			restore := func() {}
			if sel == perfmodel.KernelPanel && kernel.VectorEnabled() {
				restore = kernel.SetVectorEnabled(false)
			}
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					tt := tri.ToTiled(src, tile)
					b.StartTimer()
					if _, err := npdp.SolveParallel(tt, opts); err != nil {
						runErr = err
						return
					}
				}
			})
			restore()
			if runErr != nil {
				return fmt.Errorf("kernel bench %v n=%d: %w", sel, n, runErr)
			}
			record(sel.String(), n, res)
		}

		// The lattice pair: Four-Russians vs the serial Nussinov reference
		// on a deterministic random sequence of the same n.
		seq := benchSeq(n)
		for _, fr := range []bool{false, true} {
			name := "nussinov-serial"
			if fr {
				name = "fourrussians"
			}
			var runErr error
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := zuker.MaxPairs(seq, 1, fr); err != nil {
						runErr = err
						return
					}
				}
			})
			if runErr != nil {
				return fmt.Errorf("kernel bench %s n=%d: %w", name, n, runErr)
			}
			record(name, n, res)
		}

		key := func(name string) float64 { return nsFor[fmt.Sprintf("n%d_%s", n, name)] }
		if v := key("vector"); v > 0 {
			rep.Stage1Speedup[fmt.Sprintf("n%d_vector_vs_scalar", n)] = key("scalar") / v
			rep.Stage1Speedup[fmt.Sprintf("n%d_vector_vs_panel", n)] = key("panel") / v
		}
		if v := key("fourrussians"); v > 0 {
			rep.Stage1Speedup[fmt.Sprintf("n%d_fourrussians_vs_serial", n)] = key("nussinov-serial") / v
		}
	}
	return nil
}

// benchSeq is the deterministic random RNA sequence the lattice rows use.
func benchSeq(n int) zuker.Seq {
	rng := rand.New(rand.NewSource(int64(n) * 17))
	seq := make(zuker.Seq, n)
	for i := range seq {
		seq[i] = zuker.Base("ACGU"[rng.Intn(4)])
	}
	return seq
}
