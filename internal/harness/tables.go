package harness

import (
	"fmt"
	"math"

	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/kernel"
	"cellnpdp/internal/npdp"
	"cellnpdp/internal/pipeline"
	"cellnpdp/internal/simd"
	"cellnpdp/internal/stats"
	"cellnpdp/internal/tri"
)

// Table1 regenerates Table I: the instruction mix, latencies and pipeline
// types of one single-precision computing-block step, measured by running
// the counted kernel and cross-checked against the pipeline program.
func Table1(cfg Config) (*stats.Table, error) {
	var counts simd.Counts
	block := make([]float32, 4*4)
	kernel.CountedStepF32(block, block, block, 4, &counts)
	prog := pipeline.BuildCBStepSP()
	progMix := prog.Mix()
	isa := pipeline.SinglePrecision()

	t := stats.NewTable("Table I — SIMD instructions of one computing-block step (single precision)",
		"Instruction", "Execution number", "Latency (cycles)", "Pipeline type")
	paper := map[simd.Op]int64{
		simd.OpLoad: 12, simd.OpShuffle: 16, simd.OpAdd: 16,
		simd.OpCmp: 16, simd.OpSel: 16, simd.OpStore: 4,
	}
	for _, op := range simd.Ops {
		if counts.Get(op) != paper[op] || progMix.Get(op) != paper[op] {
			return nil, fmt.Errorf("instruction mix for %v is %d/%d, paper says %d",
				op, counts.Get(op), progMix.Get(op), paper[op])
		}
		spec := isa.Spec[op]
		t.AddRow(op.String(),
			fmt.Sprintf("%d", counts.Get(op)),
			fmt.Sprintf("%d", spec.Latency),
			fmt.Sprintf("%d", int(spec.Pipe)))
	}
	t.AddNote("total %d instructions; software-pipelined steady state %.0f cycles (paper: 80 instructions, 54 cycles)",
		counts.Total(), cbCyclesSP)
	t.AddNote("in program order with no software pipelining: %.0f cycles", pipeline.CBStepCyclesSPNaive())
	return t, nil
}

// table2Paper holds the published Table II values (seconds).
var table2Paper = map[npdp.Precision]map[string][3]float64{
	npdp.Single: {
		"PPE":  {715, 21961, 187945},
		"SPE":  {3061, 24588, 198432},
		"Cell": {0.22, 1.77, 13.90},
	},
	npdp.Double: {
		"PPE":  {1015, 27821, 241759},
		"SPE":  {5096, 40752, 327276},
		"Cell": {4.41, 34.54, 389.15},
	},
}

// Table2 regenerates Table II on the modeled QS20 at the paper's problem
// sizes: the original algorithm on one PPE and one SPE, and CellNPDP on
// 16 SPEs, at both precisions.
func Table2(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Table II — IBM QS20 Cell blade, modeled (seconds)",
		"Precision", "Configuration", "n=4096", "n=8192", "n=16384", "paper", "ratio range")
	qs20 := cellsim.QS20()
	for _, prec := range []npdp.Precision{npdp.Single, npdp.Double} {
		rows := []struct {
			name string
			run  func(n int) (float64, error)
		}{
			{"original, one PPE", func(n int) (float64, error) {
				return npdp.ModelOriginalPPE(n, prec, npdp.DefaultPPEModel())
			}},
			{"original, one SPE", func(n int) (float64, error) {
				r, err := npdp.ModelOriginalSPE(n, prec, qs20, npdp.DefaultScalarRelaxCycles)
				return r.Seconds, err
			}},
			{"CellNPDP, 16 SPEs", func(n int) (float64, error) {
				r, err := modelCell(n, prec, cellOpts(prec, 16))
				return r.Seconds, err
			}},
		}
		keys := []string{"PPE", "SPE", "Cell"}
		for ri, row := range rows {
			var cells [3]string
			loRatio, hiRatio := math.Inf(1), math.Inf(-1)
			for si, n := range paperSizes() {
				sec, err := row.run(n)
				if err != nil {
					return nil, err
				}
				cells[si] = stats.Seconds(sec)
				ratio := sec / table2Paper[prec][keys[ri]][si]
				loRatio = math.Min(loRatio, ratio)
				hiRatio = math.Max(hiRatio, ratio)
			}
			paperVals := table2Paper[prec][keys[ri]]
			t.AddRow(prec.String(), row.name, cells[0], cells[1], cells[2],
				fmt.Sprintf("%.4g/%.4g/%.4g", paperVals[0], paperVals[1], paperVals[2]),
				fmt.Sprintf("%.2f–%.2f", loRatio, hiRatio))
		}
	}
	t.AddNote("ratio range = modeled/paper across the three sizes; absolute seconds come from the calibrated simulator, shapes are the claim")
	return t, nil
}

// Table2Verify cross-checks the model against functional execution: at
// measured sizes, SolveCell (which really computes the DP through local
// stores and DMA) must report exactly the modeled time.
func Table2Verify(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("Table II cross-check — functional CellNPDP vs timing-only model",
		"n", "functional (modeled s)", "timing-only (s)", "equal", "DP table matches serial")
	for _, n := range []int{256, 512} {
		src := cfg.chainF32(n)
		ref := src.Clone()
		npdp.SolveSerial(ref)
		tile := 16
		tt := tri.ToTiled(src, tile)
		machF, err := cellsim.NewMachine(cellsim.QS20())
		if err != nil {
			return nil, err
		}
		opts := cellOpts(npdp.Single, 16)
		fun, err := npdp.SolveCell(tt, machF, opts)
		if err != nil {
			return nil, err
		}
		machM, err := cellsim.NewMachine(cellsim.QS20())
		if err != nil {
			return nil, err
		}
		mod, err := npdp.ModelCell(n, tile, npdp.Single, machM, opts)
		if err != nil {
			return nil, err
		}
		equal := fun.Seconds == mod.Seconds && fun.DMA == mod.DMA
		matches := tri.Equal[float32](ref, tri.ToRowMajor(tt))
		t.AddRow(fmt.Sprintf("%d", n), stats.Seconds(fun.Seconds), stats.Seconds(mod.Seconds),
			fmt.Sprintf("%v", equal), fmt.Sprintf("%v", matches))
		if !equal || !matches {
			return nil, fmt.Errorf("cross-check failed at n=%d", n)
		}
	}
	return t, nil
}

// table3Paper holds the published Table III values for reference notes.
var table3Paper = map[npdp.Precision][2][3]float64{
	npdp.Single: {{108.01, 1041.1, 11021}, {0.43, 3.25, 25.56}},
	npdp.Double: {{119.79, 1234.3, 13624}, {0.8159, 6.185, 48.170}},
}

// Table3 regenerates Table III's comparison on the host CPU: the original
// algorithm vs the CellNPDP-structured parallel engine, measured wall
// clock at the configured sizes.
func Table3(cfg Config) (*stats.Table, error) {
	t := stats.NewTable(fmt.Sprintf("Table III — host CPU platform, measured (%d workers)", cfg.workers()),
		"Precision", "n", "original (s)", "CellNPDP (s)", "speedup")
	for _, n := range cfg.measuredSizes() {
		src32 := cfg.chainF32(n)
		ser := src32.Clone()
		tSerial := timeIt(func() { npdp.SolveSerial(ser) })
		tt := tri.ToTiled(src32, paperTile(npdp.Single))
		var err error
		tPar := timeIt(func() {
			_, err = npdp.SolveParallel(tt, npdp.ParallelOptions{Workers: cfg.workers(), SchedSide: 1})
		})
		if err != nil {
			return nil, err
		}
		if !tri.Equal[float32](ser, tri.ToRowMajor(tt)) {
			return nil, fmt.Errorf("table3: parallel result differs from serial at n=%d", n)
		}
		t.AddRow("single", fmt.Sprintf("%d", n), stats.Seconds(tSerial), stats.Seconds(tPar), stats.Ratio(tSerial/tPar))

		src64 := cfg.chainF64(n)
		ser64 := src64.Clone()
		tSerial64 := timeIt(func() { npdp.SolveSerial(ser64) })
		tt64 := tri.ToTiled(src64, paperTile(npdp.Double))
		tPar64 := timeIt(func() {
			_, err = npdp.SolveParallel(tt64, npdp.ParallelOptions{Workers: cfg.workers(), SchedSide: 1})
		})
		if err != nil {
			return nil, err
		}
		if !tri.Equal[float64](ser64, tri.ToRowMajor(tt64)) {
			return nil, fmt.Errorf("table3: parallel f64 result differs from serial at n=%d", n)
		}
		t.AddRow("double", fmt.Sprintf("%d", n), stats.Seconds(tSerial64), stats.Seconds(tPar64), stats.Ratio(tSerial64/tPar64))
	}
	p := table3Paper
	t.AddNote("paper (4096/8192/16384): SP original %.4g/%.4g/%.4g s vs CellNPDP %.4g/%.4g/%.4g s; DP %.4g/%.4g/%.4g vs %.4g/%.4g/%.4g",
		p[npdp.Single][0][0], p[npdp.Single][0][1], p[npdp.Single][0][2],
		p[npdp.Single][1][0], p[npdp.Single][1][1], p[npdp.Single][1][2],
		p[npdp.Double][0][0], p[npdp.Double][0][1], p[npdp.Double][0][2],
		p[npdp.Double][1][0], p[npdp.Double][1][1], p[npdp.Double][1][2])
	t.AddNote("the paper's 250x+ CPU speedups include SSE vectorization; pure Go has no SIMD intrinsics (see DESIGN.md), so the measured gap reflects layout+tiling+parallelism only")
	return t, nil
}
