package resilience

import (
	"fmt"
	"strings"
	"time"
)

// FaultKind classifies what an Injector does to one task attempt.
type FaultKind int

// The injectable faults.
const (
	FaultNone    FaultKind = iota
	FaultError             // return a transient error (retryable)
	FaultPanic             // panic inside the task body
	FaultDelay             // sleep before computing (slow-worker model)
	FaultCorrupt           // silently flip a bit in a completed block
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultPanic:
		return "panic"
	case FaultDelay:
		return "delay"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// ParseFaultKinds parses a comma-separated fault-kind list (the CLI's
// -faultkinds syntax), e.g. "error,panic,delay,corrupt". Empty input
// returns nil — the Injector's {FaultError} default. FaultNone is not
// selectable: clean attempts come from the rate, not the kind set.
func ParseFaultKinds(s string) ([]FaultKind, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var kinds []FaultKind
	for _, part := range strings.Split(s, ",") {
		switch name := strings.TrimSpace(part); name {
		case "error":
			kinds = append(kinds, FaultError)
		case "panic":
			kinds = append(kinds, FaultPanic)
		case "delay":
			kinds = append(kinds, FaultDelay)
		case "corrupt":
			kinds = append(kinds, FaultCorrupt)
		default:
			return nil, fmt.Errorf("unknown fault kind %q (want error, panic, delay, or corrupt)", name)
		}
	}
	return kinds, nil
}

// Injector deterministically injects faults into task execution: whether
// attempt a of task t faults, and how, is a pure function of (Seed, t, a),
// so a run with a given seed always fails the same tasks in the same way
// regardless of worker interleaving — the property the scheduler and
// engine fault suites depend on.
//
// Because the decision includes the attempt number, an injected FaultError
// is genuinely transient: a retry of the same task re-rolls and succeeds
// with probability 1-Rate per attempt, exercising the backoff path end to
// end.
type Injector struct {
	// Rate is the per-attempt fault probability in [0, 1].
	Rate float64
	// Seed drives the deterministic per-(task, attempt) decision.
	Seed int64
	// Kinds is the set of faults to draw from; empty means
	// {FaultError} — the retryable default.
	Kinds []FaultKind
	// Delay is the sleep length of a FaultDelay; 0 means 1ms.
	Delay time.Duration
	// Sleep is the sleeper FaultDelay uses; nil means time.Sleep.
	Sleep func(time.Duration)
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll returns the mixed 64-bit draw for (task, attempt).
func (inj *Injector) roll(task, attempt int) uint64 {
	h := splitmix64(uint64(inj.Seed))
	h = splitmix64(h ^ uint64(task)*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(attempt)*0xd1b54a32d192ed03)
	return h
}

// Plan returns the fault injected into attempt `attempt` (0-based) of
// task `task`, FaultNone when the attempt runs clean. Deterministic.
func (inj *Injector) Plan(task, attempt int) FaultKind {
	if inj == nil || inj.Rate <= 0 {
		return FaultNone
	}
	h := inj.roll(task, attempt)
	// Top 53 bits → uniform [0,1).
	u := float64(h>>11) / (1 << 53)
	if u >= inj.Rate {
		return FaultNone
	}
	kinds := inj.Kinds
	if len(kinds) == 0 {
		kinds = []FaultKind{FaultError}
	}
	return kinds[splitmix64(h)%uint64(len(kinds))]
}

// CorruptDraw returns the deterministic 64-bit draw a FaultCorrupt plan
// uses to pick which cell and bit of the task's block to flip (fed to
// CorruptBit). Mixed independently of roll's fault/no-fault draw so the
// flip location does not correlate with the fault decision.
func (inj *Injector) CorruptDraw(task, attempt int) uint64 {
	return splitmix64(inj.roll(task, attempt) ^ 0xc2b2ae3d27d4eb4f)
}

// Apply executes the planned fault for (task, attempt): returns a
// transient error, panics, sleeps, or does nothing. Engines call it at
// the top of the task body so a faulted attempt never touches the table.
// FaultCorrupt is a no-op here by design: it is a *silent* post-success
// fault, applied by the engines after the task's blocks complete (Plan
// + CorruptDraw), never an error at the top of the body.
func (inj *Injector) Apply(task, attempt int) error {
	switch inj.Plan(task, attempt) {
	case FaultError:
		return Transient(fmt.Errorf("injected fault: task %d attempt %d", task, attempt))
	case FaultPanic:
		panic(fmt.Sprintf("injected panic: task %d attempt %d", task, attempt))
	case FaultDelay:
		d := inj.Delay
		if d <= 0 {
			d = time.Millisecond
		}
		if inj.Sleep != nil {
			inj.Sleep(d)
		} else {
			time.Sleep(d)
		}
	}
	return nil
}
