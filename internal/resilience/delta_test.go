package resilience

import (
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"cellnpdp/internal/tableio"
)

// deltaRaw encodes cells in the canonical element encoding, as the
// coordinator ships them.
func deltaRaw(cells []float32) []byte {
	raw := make([]byte, 4*len(cells))
	for i, v := range cells {
		tableio.PutElem(raw[i*4:(i+1)*4], v)
	}
	return raw
}

// testDelta builds a representative DeltaTaskDone with two sealed blocks.
func testDelta(t *testing.T) Delta {
	t.Helper()
	mk := func(seed float32, n int) DeltaBlock {
		cells := make([]float32, n)
		for i := range cells {
			cells[i] = seed + float32(i)
		}
		raw := deltaRaw(cells)
		return DeltaBlock{CRC: BlockCRC(cells), Raw: raw}
	}
	b0 := mk(1.5, 9)
	b0.Bi, b0.Bj = 0, 2
	b1 := mk(-3.25, 9)
	b1.Bi, b1.Bj = 1, 1
	return Delta{
		Kind:   DeltaTaskDone,
		Epoch:  7,
		TaskID: 42,
		Gen:    3,
		Blocks: []DeltaBlock{b0, b1},
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    Delta
	}{
		{"done", testDelta(t)},
		{"reset", Delta{Kind: DeltaTaskReset, Epoch: 2, TaskID: 5, Gen: 9,
			Blocks: []DeltaBlock{{Bi: 0, Bj: 1}, {Bi: 3, Bj: 3}}}},
		{"syncbegin", Delta{Kind: DeltaSyncBegin, Epoch: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeDelta(tc.d.Encode())
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != tc.d.Kind || got.Epoch != tc.d.Epoch ||
				got.TaskID != tc.d.TaskID || got.Gen != tc.d.Gen {
				t.Fatalf("header round-trip: got %+v, want %+v", got, tc.d)
			}
			if len(got.Blocks) != len(tc.d.Blocks) {
				t.Fatalf("got %d blocks, want %d", len(got.Blocks), len(tc.d.Blocks))
			}
			for i, b := range got.Blocks {
				w := tc.d.Blocks[i]
				if b.Bi != w.Bi || b.Bj != w.Bj || b.CRC != w.CRC {
					t.Fatalf("block %d: got (%d,%d) crc %08x, want (%d,%d) crc %08x",
						i, b.Bi, b.Bj, b.CRC, w.Bi, w.Bj, w.CRC)
				}
				if string(b.Raw) != string(w.Raw) {
					t.Fatalf("block %d cells differ", i)
				}
			}
		})
	}
}

// TestDeltaResetBlocksCarryNoCells pins the reset wire contract: block
// coordinates only, zero bytes of cells, and a zero CRC (the CRC32C of
// the empty string) that still verifies under the seal re-digest.
func TestDeltaResetBlocksCarryNoCells(t *testing.T) {
	d := Delta{Kind: DeltaTaskReset, Epoch: 1, TaskID: 0,
		Blocks: []DeltaBlock{{Bi: 2, Bj: 4}}}
	enc := d.Encode()
	if want := deltaHeaderLen + 16 + 4; len(enc) != want {
		t.Fatalf("reset record is %d bytes, want %d", len(enc), want)
	}
	got, err := DecodeDelta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if b := got.Blocks[0]; b.CRC != 0 || len(b.Raw) != 0 {
		t.Fatalf("reset block carries crc %08x, %d raw bytes; want 0, 0", b.CRC, len(b.Raw))
	}
}

func TestDeltaRejectsBitFlips(t *testing.T) {
	enc := testDelta(t).Encode()
	// Flip one bit at every position: the trailer must catch each.
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x10
		if _, err := DecodeDelta(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded cleanly", i)
		}
	}
}

func TestDeltaRejectsTruncation(t *testing.T) {
	enc := testDelta(t).Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeDelta(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", cut, len(enc))
		}
	}
	if _, err := DecodeDelta(append(append([]byte(nil), enc...), 0xAA)); err == nil {
		t.Fatal("trailing garbage decoded cleanly")
	}
}

// reseal recomputes a mutated record's trailer so the mutation reaches
// the structural validators instead of dying at the CRC.
func reseal(p []byte) []byte {
	body := p[:len(p)-4]
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...),
		crc32.Checksum(body, sealCastagnoli))
}

// TestDeltaRejectsBlockCountBomb patches nblocks to a huge value (with a
// recomputed trailer, so the CRC passes) and checks the count is bounded
// by payload capacity before any allocation happens.
func TestDeltaRejectsBlockCountBomb(t *testing.T) {
	enc := testDelta(t).Encode()
	mut := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(mut[19:], 1<<30)
	_, err := DecodeDelta(reseal(mut))
	if err == nil || !strings.Contains(err.Error(), "claims") {
		t.Fatalf("nblocks bomb: got %v, want block-count bound error", err)
	}
}

// TestDeltaRejectsStructuralLies covers resealed mutations of each
// validated field: magic, version, kind, a per-block seal, and a block
// byte count that overruns the payload.
func TestDeltaRejectsStructuralLies(t *testing.T) {
	enc := testDelta(t).Encode()
	mutate := func(f func(p []byte)) error {
		mut := append([]byte(nil), enc...)
		f(mut)
		_, err := DecodeDelta(reseal(mut))
		return err
	}
	for _, tc := range []struct {
		name, want string
		f          func(p []byte)
	}{
		{"magic", "magic", func(p []byte) { p[0] = 'X' }},
		{"version", "version", func(p []byte) { binary.LittleEndian.PutUint16(p[4:], 99) }},
		{"kind", "kind", func(p []byte) { p[6] = 0 }},
		{"kind-high", "kind", func(p []byte) { p[6] = 200 }},
		{"block-seal", "seal mismatch", func(p []byte) {
			// Corrupt the first block's sealed CRC field only.
			binary.LittleEndian.PutUint32(p[deltaHeaderLen+8:], 0xDEADBEEF)
		}},
		{"block-overrun", "truncated", func(p []byte) {
			// First block claims more cell bytes than the record holds.
			binary.LittleEndian.PutUint32(p[deltaHeaderLen+12:], 1<<20)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := mutate(tc.f)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestCheckpointFold exercises the standby-side fold surface: building
// an empty checkpoint, installing and dropping blocks, marking and
// clearing tasks, and a full reset.
func TestCheckpointFold(t *testing.T) {
	meta := Meta{N: 20, Tile: 8, SchedSide: 1, Tasks: 6, ElemBytes: 4}
	ck, err := NewCheckpoint[float32](meta)
	if err != nil {
		t.Fatal(err)
	}
	raw := deltaRaw(make([]float32, 64)) // 8×8 tile
	if err := ck.PutBlock(0, 2, raw); err != nil {
		t.Fatal(err)
	}
	if err := ck.MarkDone(3); err != nil {
		t.Fatal(err)
	}
	if !ck.HasBlock(0, 2) || ck.DoneCount() != 1 {
		t.Fatalf("fold state: hasBlock=%v done=%d", ck.HasBlock(0, 2), ck.DoneCount())
	}

	// Reverting a task (DeltaTaskReset) forgets both records.
	ck.ClearDone(3)
	ck.DropBlock(0, 2)
	if ck.HasBlock(0, 2) || ck.DoneCount() != 0 {
		t.Fatalf("after reset fold: hasBlock=%v done=%d", ck.HasBlock(0, 2), ck.DoneCount())
	}

	// Bounds and byte-count validation.
	if err := ck.PutBlock(2, 1, raw); err == nil {
		t.Fatal("lower-triangle block accepted")
	}
	if err := ck.PutBlock(0, 3, raw); err == nil {
		t.Fatal("out-of-lattice block accepted")
	}
	if err := ck.PutBlock(0, 0, raw[:8]); err == nil {
		t.Fatal("short block accepted")
	}
	if err := ck.MarkDone(6); err == nil {
		t.Fatal("out-of-graph task accepted")
	}

	// Reset clears everything (DeltaSyncBegin).
	if err := ck.PutBlock(1, 1, raw); err != nil {
		t.Fatal(err)
	}
	if err := ck.MarkDone(0); err != nil {
		t.Fatal(err)
	}
	ck.Reset()
	if ck.HasBlock(1, 1) || ck.DoneCount() != 0 {
		t.Fatalf("after Reset: hasBlock=%v done=%d", ck.HasBlock(1, 1), ck.DoneCount())
	}

	// Geometry mismatches are refused at construction.
	if _, err := NewCheckpoint[float64](meta); err == nil {
		t.Fatal("element-width mismatch accepted")
	}
	if _, err := NewCheckpoint[float32](Meta{N: 20, Tile: 8, SchedSide: 1, Tasks: 5, ElemBytes: 4}); err == nil {
		t.Fatal("inconsistent task count accepted")
	}
}
