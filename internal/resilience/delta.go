package resilience

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tableio"
)

// Checkpoint deltas are the replication unit of coordinator failover:
// instead of shipping whole NPCK snapshots, a primary streams one
// self-checking record per completion-log entry — "task T at generation
// G completed; here are its sealed blocks" — and a standby folds each
// into an in-memory Checkpoint. The record format mirrors the cluster
// task message (same per-block CRC32C seals over the canonical cell
// encoding, so one digest is both the transport check and the block
// seal) with a delta header and a whole-record trailer on top.
//
// Delta record layout (all little-endian):
//
//	magic    [4]byte "NPKD"
//	version  uint16  (currently 1)
//	kind     uint8   DeltaTaskDone | DeltaTaskReset | DeltaSyncBegin
//	epoch    uint32  leader epoch the record was produced under
//	task     uint32  scheduler task ID
//	gen      uint32  dispatch generation at completion
//	nblocks  uint32
//	blocks   nblocks × { bi uint32, bj uint32, crc uint32,
//	                     nbytes uint32, cells }
//	crc      uint32  CRC32C of every preceding byte
//
// DeltaTaskDone carries the task's own blocks at their installed final
// bytes. DeltaTaskReset (a heal or pristine restart un-did the task)
// carries block coordinates only — nbytes 0, crc 0 (the CRC32C of zero
// bytes) — telling the replica to forget them. DeltaSyncBegin resets
// the replica's state entirely; a (re)connecting stream opens with it
// followed by a DeltaTaskDone per completed task, so replication is
// idempotent across stream loss.

// DeltaMagic identifies a checkpoint delta record.
const DeltaMagic = "NPKD"

// DeltaVersion is the current delta format version.
const DeltaVersion uint16 = 1

// DeltaKind says what a delta does to the replica's checkpoint.
type DeltaKind uint8

const (
	// DeltaTaskDone marks a task complete and installs its final blocks.
	DeltaTaskDone DeltaKind = iota + 1
	// DeltaTaskReset un-marks a task and drops its blocks (heal/restart).
	DeltaTaskReset
	// DeltaSyncBegin clears all replicated state; a full resync follows.
	DeltaSyncBegin
)

// deltaHeaderLen is the fixed byte count before the block list.
const deltaHeaderLen = 4 + 2 + 1 + 4 + 4 + 4 + 4

// DeltaBlock is one memory block in a delta record: coordinates, the
// CRC32C seal of Raw, and the cells in canonical element encoding (Raw
// empty for reset records).
type DeltaBlock struct {
	Bi, Bj int
	CRC    uint32
	Raw    []byte
}

// Delta is one replicated completion-log record.
type Delta struct {
	Kind   DeltaKind
	Epoch  uint32
	TaskID int
	Gen    uint32
	Blocks []DeltaBlock
}

// Encode serializes the record with its trailing CRC32C.
func (d Delta) Encode() []byte {
	size := deltaHeaderLen + 4
	for _, b := range d.Blocks {
		size += 16 + len(b.Raw)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, DeltaMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, DeltaVersion)
	buf = append(buf, byte(d.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, d.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.TaskID))
	buf = binary.LittleEndian.AppendUint32(buf, d.Gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.Blocks)))
	for _, b := range d.Blocks {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Bi))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Bj))
		buf = binary.LittleEndian.AppendUint32(buf, b.CRC)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Raw)))
		buf = append(buf, b.Raw...)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, sealCastagnoli))
}

// DecodeDelta parses and fully validates one record: magic, version,
// kind, the untrusted block count bounded by payload capacity before
// allocation, every per-block seal re-digested, and the trailing CRC.
func DecodeDelta(p []byte) (Delta, error) {
	if len(p) < deltaHeaderLen+4 {
		return Delta{}, fmt.Errorf("resilience: delta record truncated")
	}
	body, tail := p[:len(p)-4], p[len(p)-4:]
	if got, want := crc32.Checksum(body, sealCastagnoli), binary.LittleEndian.Uint32(tail); got != want {
		return Delta{}, fmt.Errorf("resilience: delta checksum mismatch: got %08x, want %08x", got, want)
	}
	if string(body[:4]) != DeltaMagic {
		return Delta{}, fmt.Errorf("resilience: bad delta magic %q", body[:4])
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != DeltaVersion {
		return Delta{}, fmt.Errorf("resilience: unsupported delta version %d", v)
	}
	d := Delta{
		Kind:   DeltaKind(body[6]),
		Epoch:  binary.LittleEndian.Uint32(body[7:]),
		TaskID: int(binary.LittleEndian.Uint32(body[11:])),
		Gen:    binary.LittleEndian.Uint32(body[15:]),
	}
	switch d.Kind {
	case DeltaTaskDone, DeltaTaskReset, DeltaSyncBegin:
	default:
		return Delta{}, fmt.Errorf("resilience: unknown delta kind %d", d.Kind)
	}
	nblocks := int(binary.LittleEndian.Uint32(body[19:]))
	if nblocks > (len(body)-deltaHeaderLen)/16 {
		return Delta{}, fmt.Errorf("resilience: delta claims %d blocks, payload holds at most %d",
			nblocks, (len(body)-deltaHeaderLen)/16)
	}
	off := deltaHeaderLen
	d.Blocks = make([]DeltaBlock, 0, nblocks)
	for b := 0; b < nblocks; b++ {
		if len(body)-off < 16 {
			return Delta{}, fmt.Errorf("resilience: delta block header %d truncated", b)
		}
		db := DeltaBlock{
			Bi:  int(binary.LittleEndian.Uint32(body[off:])),
			Bj:  int(binary.LittleEndian.Uint32(body[off+4:])),
			CRC: binary.LittleEndian.Uint32(body[off+8:]),
		}
		nbytes := int(binary.LittleEndian.Uint32(body[off+12:]))
		off += 16
		if len(body)-off < nbytes {
			return Delta{}, fmt.Errorf("resilience: delta block %d cells truncated", b)
		}
		db.Raw = body[off : off+nbytes]
		off += nbytes
		// Re-digest the per-block seal: the trailer already proved the
		// record arrived intact, this proves the sender sealed the same
		// bytes it shipped (the invariant a takeover's audit relies on).
		if got := crc32.Checksum(db.Raw, sealCastagnoli); got != db.CRC {
			return Delta{}, fmt.Errorf("resilience: delta block (%d,%d) seal mismatch: got %08x, want %08x",
				db.Bi, db.Bj, got, db.CRC)
		}
		d.Blocks = append(d.Blocks, db)
	}
	if off != len(body) {
		return Delta{}, fmt.Errorf("resilience: %d trailing bytes after delta record", len(body)-off)
	}
	return d, nil
}

// NewCheckpoint builds an empty in-memory checkpoint a replica folds
// deltas into — the warm-standby's shadow of the primary's progress.
func NewCheckpoint[E semiring.Elem](meta Meta) (*Checkpoint[E], error) {
	if err := meta.checkMeta(); err != nil {
		return nil, err
	}
	var e E
	if got, want := meta.ElemBytes, tableio.ElemWidth(e); got != want {
		return nil, fmt.Errorf("resilience: meta holds %d-byte elements, requested type has %d", got, want)
	}
	return &Checkpoint[E]{
		Meta:   meta,
		Done:   make([]bool, meta.Tasks),
		blocks: make(map[[2]int][]E),
	}, nil
}

// MarkDone records a task complete.
func (c *Checkpoint[E]) MarkDone(task int) error {
	if task < 0 || task >= len(c.Done) {
		return fmt.Errorf("resilience: task %d outside the %d-task graph", task, len(c.Done))
	}
	c.Done[task] = true
	return nil
}

// ClearDone un-records a task (a heal or restart reverted it).
func (c *Checkpoint[E]) ClearDone(task int) {
	if task >= 0 && task < len(c.Done) {
		c.Done[task] = false
	}
}

// PutBlock decodes raw wire cells into the checkpoint's copy of memory
// block (bi, bj), validating triangle bounds and the exact byte count.
func (c *Checkpoint[E]) PutBlock(bi, bj int, raw []byte) error {
	mblocks := c.Meta.blocksPerSide()
	if bi < 0 || bj < bi || bj >= mblocks {
		return fmt.Errorf("resilience: block (%d,%d) outside the upper triangle of %d tiles", bi, bj, mblocks)
	}
	var e E
	width := tableio.ElemWidth(e)
	cells := c.Meta.Tile * c.Meta.Tile
	if len(raw) != width*cells {
		return fmt.Errorf("resilience: block (%d,%d) carries %d bytes, want %d", bi, bj, len(raw), width*cells)
	}
	data := make([]E, cells)
	for i := range data {
		data[i] = tableio.GetElem[E](raw[i*width : (i+1)*width])
	}
	c.blocks[[2]int{bi, bj}] = data
	return nil
}

// DropBlock forgets the checkpoint's copy of memory block (bi, bj).
func (c *Checkpoint[E]) DropBlock(bi, bj int) {
	delete(c.blocks, [2]int{bi, bj})
}

// Reset clears every completed task and saved block (DeltaSyncBegin).
func (c *Checkpoint[E]) Reset() {
	for i := range c.Done {
		c.Done[i] = false
	}
	c.blocks = make(map[[2]int][]E)
}
