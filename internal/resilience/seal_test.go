package resilience

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"
)

// TestBlockCRCMatchesByteStream pins the seal digest to the serialized
// byte stream: equal cells digest equal, any changed cell digests
// different, and float32/float64 widths digest independently.
func TestBlockCRCMatchesByteStream(t *testing.T) {
	cells := []float32{1, 2.5, -3, 1e30}
	a := BlockCRC(cells)
	if b := BlockCRC(append([]float32(nil), cells...)); b != a {
		t.Fatalf("equal blocks digest %08x vs %08x", a, b)
	}
	cells[2] = -3.0000002
	if b := BlockCRC(cells); b == a {
		t.Fatal("changed cell kept the same CRC")
	}
	if BlockCRC([]float64{1, 2.5}) == BlockCRC([]float32{1, 2.5}) {
		t.Fatal("float32 and float64 blocks digest identically")
	}
}

// TestCorruptBitAlwaysDetectable asserts the silent-fault model's core
// property: every CorruptBit flip, for any draw, changes the block's
// CRC — an injected corruption can never slip past a seal audit.
func TestCorruptBitAlwaysDetectable(t *testing.T) {
	for draw := uint64(0); draw < 2000; draw += 37 {
		cells := []float32{0, 1, 2, 3, 4, 5, 6, 7}
		before := BlockCRC(cells)
		cell, bit := CorruptBit(cells, draw)
		if cell < 0 || cell >= len(cells) || bit < 0 || bit >= 32 {
			t.Fatalf("draw %d flipped out-of-range (cell %d, bit %d)", draw, cell, bit)
		}
		if BlockCRC(cells) == before {
			t.Fatalf("draw %d flip (cell %d, bit %d) is CRC-invisible", draw, cell, bit)
		}
	}
	// Empty blocks must be a safe no-op, not a panic.
	if c, b := CorruptBit([]float32{}, 99); c != 0 || b != 0 {
		t.Fatalf("empty block corrupt = (%d,%d)", c, b)
	}
}

// TestSealTableLifecycle covers seal, verify, unseal and the count.
func TestSealTableLifecycle(t *testing.T) {
	st := NewSealTable(4)
	if st.Len() != 4 || st.SealedCount() != 0 {
		t.Fatalf("fresh table: len=%d sealed=%d", st.Len(), st.SealedCount())
	}
	if _, ok := st.Sealed(2); ok {
		t.Fatal("unsealed block reports sealed")
	}
	// An unsealed block verifies trivially — nothing to check yet.
	if !st.Verify(2, func() uint32 { return 123 }) {
		t.Fatal("unsealed block failed Verify")
	}
	st.Seal(2, 0xdeadbeef)
	if crc, ok := st.Sealed(2); !ok || crc != 0xdeadbeef {
		t.Fatalf("Sealed(2) = (%08x, %v)", crc, ok)
	}
	if st.SealedCount() != 1 {
		t.Fatalf("sealed count = %d", st.SealedCount())
	}
	if !st.Verify(2, func() uint32 { return 0xdeadbeef }) {
		t.Fatal("matching CRC failed Verify")
	}
	if st.Verify(2, func() uint32 { return 0xdeadbeee }) {
		t.Fatal("mismatched CRC passed Verify")
	}
	// CRC zero must still read as sealed: the flag bit, not the value,
	// carries sealed-ness.
	st.Seal(0, 0)
	if crc, ok := st.Sealed(0); !ok || crc != 0 {
		t.Fatalf("zero-CRC seal = (%08x, %v)", crc, ok)
	}
	st.Unseal(2)
	if _, ok := st.Sealed(2); ok || st.SealedCount() != 1 {
		t.Fatal("Unseal left the seal live")
	}
}

// TestSealCodecRoundTrip writes a seal set and reads back an identical
// one.
func TestSealCodecRoundTrip(t *testing.T) {
	st := NewSealTable(10)
	st.Seal(0, 0)
	st.Seal(3, 0xcafebabe)
	st.Seal(9, 42)
	var buf bytes.Buffer
	if err := st.WriteSeals(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeals(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 || got.SealedCount() != 3 {
		t.Fatalf("round trip: len=%d sealed=%d", got.Len(), got.SealedCount())
	}
	for id := 0; id < 10; id++ {
		wc, wok := st.Sealed(id)
		gc, gok := got.Sealed(id)
		if wc != gc || wok != gok {
			t.Fatalf("block %d: wrote (%08x,%v), read (%08x,%v)", id, wc, wok, gc, gok)
		}
	}
}

// TestSealCodecRejectsCorruption asserts the canonical-encoding claim
// directly: truncation, any bit flip, and record reordering all fail to
// decode.
func TestSealCodecRejectsCorruption(t *testing.T) {
	st := NewSealTable(8)
	st.Seal(1, 0x11111111)
	st.Seal(4, 0x44444444)
	var buf bytes.Buffer
	if err := st.WriteSeals(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	for cut := 0; cut < len(enc); cut++ {
		if _, err := ReadSeals(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded", cut, len(enc))
		}
	}
	for i := 0; i < len(enc)*8; i++ {
		flipped := append([]byte(nil), enc...)
		flipped[i/8] ^= 1 << (i % 8)
		if _, err := ReadSeals(bytes.NewReader(flipped)); err == nil {
			t.Fatalf("bit flip at %d decoded", i)
		}
	}
	// Swap the two 8-byte records and re-stamp the trailing CRC so only
	// the ordering check can reject it.
	reordered := append([]byte(nil), enc...)
	recs := reordered[14 : len(reordered)-4]
	for i := 0; i < 8; i++ {
		recs[i], recs[8+i] = recs[8+i], recs[i]
	}
	restamp(reordered)
	if _, err := ReadSeals(bytes.NewReader(reordered)); err == nil ||
		!strings.Contains(err.Error(), "out of order") {
		t.Fatalf("reordered records: err = %v, want ordering rejection", err)
	}
}

// TestSealCodecRejectsBadHeaders covers the header validations that run
// before any allocation: magic, version, implausible sizes.
func TestSealCodecRejectsBadHeaders(t *testing.T) {
	st := NewSealTable(3)
	st.Seal(1, 7)
	var buf bytes.Buffer
	if err := st.WriteSeals(&buf); err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func(b []byte)) {
		b := append([]byte(nil), buf.Bytes()...)
		f(b)
		restamp(b)
		if _, err := ReadSeals(bytes.NewReader(b)); err == nil {
			t.Errorf("%s decoded", name)
		}
	}
	mutate("bad magic", func(b []byte) { b[0] = 'X' })
	mutate("bad version", func(b []byte) { b[4] = 99 })
	mutate("implausible block count", func(b []byte) { b[6], b[7], b[8], b[9] = 0xff, 0xff, 0xff, 0xff })
	mutate("sealed > blocks", func(b []byte) { b[10] = 200 })
	mutate("record id beyond slots", func(b []byte) { b[14] = 5 })
}

// restamp recomputes the trailing IEEE CRC of a mutated seal encoding so
// tests can prove a structural check (not the checksum) rejects it.
func restamp(b []byte) {
	body := b[:len(b)-4]
	crc := crc32.ChecksumIEEE(body)
	b[len(b)-4] = byte(crc)
	b[len(b)-3] = byte(crc >> 8)
	b[len(b)-2] = byte(crc >> 16)
	b[len(b)-1] = byte(crc >> 24)
}

// TestErrSealMismatchTyped pins the typed seal-mismatch error: it carries
// block identity and both digests, and surfaces through errors.As from a
// wrapped chain the way a cluster coordinator consumes it.
func TestErrSealMismatchTyped(t *testing.T) {
	base := &ErrSealMismatch{Bi: 2, Bj: 5, BlockID: 17, TaskID: 4, Want: 0xdeadbeef, Got: 0x12345678}
	wrapped := fmt.Errorf("installing boundary block: %w", base)
	var sm *ErrSealMismatch
	if !errors.As(wrapped, &sm) {
		t.Fatal("errors.As failed to recover *ErrSealMismatch")
	}
	if sm.Bi != 2 || sm.Bj != 5 || sm.BlockID != 17 || sm.TaskID != 4 {
		t.Fatalf("identity fields lost: %+v", sm)
	}
	msg := sm.Error()
	for _, want := range []string{"(2,5)", "deadbeef", "12345678"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q, missing %q", msg, want)
		}
	}
}
