package resilience

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestRetryPolicyBackoff pins the exponential schedule: base doubling per
// retry, capped at MaxDelay, zero without a base.
func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{MaxRetries: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 50, 50}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	if got := (RetryPolicy{}).Backoff(3); got != 0 {
		t.Errorf("zero policy backoff = %v, want 0", got)
	}
}

// TestRetryDoTransient asserts transient failures are retried through the
// injectable sleeper with the right delays, and that success stops the
// loop.
func TestRetryDoTransient(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		MaxRetries: 3,
		BaseDelay:  time.Millisecond,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	attempts, err := p.Do(func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt %d delivered as %d", calls, attempt)
		}
		calls++
		if attempt < 2 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("Do = (%d, %v), want (3, nil)", attempts, err)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("sleeps %v, want [1ms 2ms]", slept)
	}
}

// TestRetryDoPermanent asserts non-transient errors fail immediately and
// exhausted budgets surface the last transient error.
func TestRetryDoPermanent(t *testing.T) {
	perm := errors.New("broken")
	p := RetryPolicy{MaxRetries: 5, Sleep: func(time.Duration) {}}
	attempts, err := p.Do(func(int) error { return perm })
	if !errors.Is(err, perm) || attempts != 1 {
		t.Fatalf("permanent error: attempts=%d err=%v", attempts, err)
	}
	flaky := Transient(errors.New("always flaky"))
	attempts, err = p.Do(func(int) error { return flaky })
	if !errors.Is(err, flaky) || attempts != 6 {
		t.Fatalf("exhausted budget: attempts=%d err=%v", attempts, err)
	}
	if !IsTransient(err) {
		t.Fatal("exhausted error lost its transient mark")
	}
}

// TestRecoverConvertsPanic asserts panics become PanicErrors with the
// stack attached and are never treated as transient.
func TestRecoverConvertsPanic(t *testing.T) {
	p := RetryPolicy{MaxRetries: 4, Sleep: func(time.Duration) {}}
	attempts, err := p.Do(func(int) error { panic("kaboom") })
	if attempts != 1 {
		t.Fatalf("panicking task attempted %d times, want 1 (no retry)", attempts)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a PanicError", err)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("panic value %v / stack %d bytes", pe.Value, len(pe.Stack))
	}
	if IsTransient(err) {
		t.Fatal("panic marked transient")
	}
}

// TestTaskErrorIdentity asserts the wrapper keeps the cause reachable and
// names the task.
func TestTaskErrorIdentity(t *testing.T) {
	cause := errors.New("root cause")
	te := &TaskError{TaskID: 7, Bi: 1, Bj: 3, Worker: 2, Attempts: 4, Err: cause}
	if !errors.Is(te, cause) {
		t.Fatal("cause not unwrapped")
	}
	msg := te.Error()
	for _, want := range []string{"task 7", "1,3", "worker 2", "4 attempts"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

// TestInjectorDeterministic asserts the fault plan is a pure function of
// (seed, task, attempt) and respects the rate at both extremes.
func TestInjectorDeterministic(t *testing.T) {
	inj := &Injector{Rate: 0.3, Seed: 42, Kinds: []FaultKind{FaultError, FaultPanic, FaultDelay}}
	for task := 0; task < 50; task++ {
		for attempt := 0; attempt < 3; attempt++ {
			a := inj.Plan(task, attempt)
			b := inj.Plan(task, attempt)
			if a != b {
				t.Fatalf("Plan(%d,%d) unstable: %v vs %v", task, attempt, a, b)
			}
		}
	}
	always := &Injector{Rate: 1, Seed: 1}
	never := &Injector{Rate: 0, Seed: 1}
	for task := 0; task < 20; task++ {
		if always.Plan(task, 0) == FaultNone {
			t.Fatalf("rate 1 skipped task %d", task)
		}
		if never.Plan(task, 0) != FaultNone {
			t.Fatalf("rate 0 faulted task %d", task)
		}
	}
	var nilInj *Injector
	if nilInj.Plan(3, 0) != FaultNone {
		t.Fatal("nil injector faulted")
	}
}

// TestInjectorRate asserts the empirical fault rate lands near the
// configured probability over many tasks.
func TestInjectorRate(t *testing.T) {
	inj := &Injector{Rate: 0.05, Seed: 7}
	faults := 0
	const trials = 20000
	for task := 0; task < trials; task++ {
		if inj.Plan(task, 0) != FaultNone {
			faults++
		}
	}
	got := float64(faults) / trials
	if got < 0.03 || got > 0.07 {
		t.Fatalf("empirical rate %.4f far from 0.05", got)
	}
}

// TestInjectorApply asserts each kind acts as declared: transient error,
// panic, and a delay through the injectable sleeper.
func TestInjectorApply(t *testing.T) {
	errInj := &Injector{Rate: 1, Seed: 3, Kinds: []FaultKind{FaultError}}
	if err := errInj.Apply(5, 0); !IsTransient(err) {
		t.Fatalf("injected error not transient: %v", err)
	}
	var slept time.Duration
	delayInj := &Injector{Rate: 1, Seed: 3, Kinds: []FaultKind{FaultDelay},
		Delay: 5 * time.Millisecond, Sleep: func(d time.Duration) { slept += d }}
	if err := delayInj.Apply(5, 0); err != nil || slept != 5*time.Millisecond {
		t.Fatalf("delay fault: err=%v slept=%v", err, slept)
	}
	panicInj := &Injector{Rate: 1, Seed: 3, Kinds: []FaultKind{FaultPanic}}
	err := Recover(func() error { return panicInj.Apply(5, 0) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected panic surfaced as %v", err)
	}
	if !strings.Contains(fmt.Sprint(pe.Value), "task 5") {
		t.Fatalf("panic value %v missing task identity", pe.Value)
	}
}

// TestBackoffDefaultCeiling asserts the implicit DefaultMaxDelay cap: a
// policy that never set MaxDelay cannot grow its schedule past 2s, even
// after enough doublings to overflow a time.Duration.
func TestBackoffDefaultCeiling(t *testing.T) {
	p := RetryPolicy{MaxRetries: 100, BaseDelay: 10 * time.Millisecond}
	if got := p.Backoff(3); got != 40*time.Millisecond {
		t.Errorf("Backoff(3) = %v, want 40ms (below the ceiling)", got)
	}
	for _, retry := range []int{9, 10, 20, 64, 100} {
		if got := p.Backoff(retry); got != DefaultMaxDelay {
			t.Errorf("Backoff(%d) = %v, want the %v default ceiling", retry, got, DefaultMaxDelay)
		}
	}
	// An explicit MaxDelay still wins.
	p.MaxDelay = 80 * time.Millisecond
	if got := p.Backoff(10); got != 80*time.Millisecond {
		t.Errorf("Backoff(10) = %v, want the explicit 80ms ceiling", got)
	}
}

// TestBackoffFullJitterDeterministic injects a fixed Rand sequence and
// pins the jittered schedule exactly: full jitter draws uniformly from
// (0, d] as d' = (1-r)·d.
func TestBackoffFullJitterDeterministic(t *testing.T) {
	seq := []float64{0, 0.5, 0.75}
	i := 0
	p := RetryPolicy{
		MaxRetries: 3,
		BaseDelay:  100 * time.Millisecond,
		MaxDelay:   200 * time.Millisecond,
		Jitter:     true,
		Rand:       func() float64 { v := seq[i]; i++; return v },
	}
	want := []time.Duration{
		100 * time.Millisecond, // r=0: full delay survives (upper bound inclusive)
		100 * time.Millisecond, // r=0.5 of the doubled 200ms
		50 * time.Millisecond,  // r=0.75 of the capped 200ms
	}
	for retry, w := range want {
		if got := p.Backoff(retry + 1); got != w {
			t.Errorf("jittered Backoff(%d) = %v, want %v", retry+1, got, w)
		}
	}
}

// TestBackoffJitterBounds asserts every jittered draw stays in (0, d]:
// never zero (a hot retry loop), never above the capped delay.
func TestBackoffJitterBounds(t *testing.T) {
	p := RetryPolicy{MaxRetries: 8, BaseDelay: time.Millisecond, MaxDelay: 64 * time.Millisecond, Jitter: true}
	for retry := 1; retry <= 8; retry++ {
		unjittered := RetryPolicy{BaseDelay: p.BaseDelay, MaxDelay: p.MaxDelay}.Backoff(retry)
		for trial := 0; trial < 100; trial++ {
			got := p.Backoff(retry)
			if got <= 0 || got > unjittered {
				t.Fatalf("jittered Backoff(%d) = %v, out of (0, %v]", retry, got, unjittered)
			}
		}
	}
}

// TestRetryDoJitteredSleepsDeterministic runs the full Do loop with both
// the sleeper and the jitter source injected: the recorded schedule is
// exactly reproducible, so fault-injection soaks with jitter on stay
// deterministic.
func TestRetryDoJitteredSleepsDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var slept []time.Duration
		seq := []float64{0.25, 0.5, 0.875}
		i := 0
		p := RetryPolicy{
			MaxRetries: 3,
			BaseDelay:  8 * time.Millisecond,
			Jitter:     true,
			Rand:       func() float64 { v := seq[i]; i++; return v },
			Sleep:      func(d time.Duration) { slept = append(slept, d) },
		}
		if _, err := p.Do(func(int) error { return Transient(errors.New("flaky")) }); err == nil {
			t.Fatal("exhausted retries reported success")
		}
		return slept
	}
	first := run()
	want := []time.Duration{6 * time.Millisecond, 8 * time.Millisecond, 4 * time.Millisecond}
	if len(first) != len(want) {
		t.Fatalf("slept %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (schedule %v)", i, first[i], want[i], first)
		}
	}
	second := run()
	for i := range first {
		if second[i] != first[i] {
			t.Fatalf("jittered schedule not reproducible: %v vs %v", first, second)
		}
	}
}
