package resilience

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync/atomic"

	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tableio"
)

// Block sealing is the algorithm-based fault-tolerance layer (Huang &
// Abraham's ABFT tradition) at the paper's natural recovery granularity:
// the memory block, the unit one DMA transfer moves and one task
// computes (Section IV-A). When a task finishes a block, the block's
// bytes are digested into a CRC32C seal; because a sealed block is
// immutable for the rest of the solve, any later seal mismatch proves a
// silent fault (bad RAM, a stray write) corrupted it after completion.
// The engines then recompute only the corrupted block's dependent cone
// instead of restarting, Charm++/Cilk-style task replay on the NPDP
// dependence graph.

// sealCastagnoli is the CRC32C table block seals use — the same
// hardware-accelerated polynomial the serving layer digests with.
var sealCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// BlockCRC digests a memory block's cells into the CRC32C seal value:
// each cell serialized little-endian at its element width, exactly the
// byte stream the tableio and checkpoint codecs use.
func BlockCRC[E semiring.Elem](cells []E) uint32 {
	h := crc32.New(sealCastagnoli)
	var e E
	width := tableio.ElemWidth(e)
	buf := make([]byte, 8)
	for _, v := range cells {
		tableio.PutElem(buf, v)
		h.Write(buf[:width])
	}
	return h.Sum32()
}

// CorruptBit flips one bit of one cell, both chosen deterministically
// from draw — the silent-fault model of FaultCorrupt. It returns the
// flipped cell index and bit position. Any single-bit flip changes the
// block's CRC32C, so an injected corruption is always detectable by a
// seal audit.
func CorruptBit[E semiring.Elem](cells []E, draw uint64) (cell, bit int) {
	if len(cells) == 0 {
		return 0, 0
	}
	var e E
	width := tableio.ElemWidth(e)
	cell = int(draw % uint64(len(cells)))
	bit = int((draw >> 32) % uint64(width*8))
	buf := make([]byte, 8)
	tableio.PutElem(buf, cells[cell])
	buf[bit/8] ^= 1 << (bit % 8)
	cells[cell] = tableio.GetElem[E](buf[:width])
	return cell, bit
}

// sealedBit marks a SealTable entry as holding a live seal; the low 32
// bits are the CRC32C. A zero entry is unsealed.
const sealedBit = uint64(1) << 63

// SealTable is the lock-free per-block seal store: one atomic word per
// memory block (dense block ID), holding a sealed flag plus the block's
// CRC32C. Each block is sealed exactly once per completion by the one
// task that computed it, so plain atomic stores suffice; the atomic also
// carries the happens-before an auditor needs — a task's block writes
// precede its Seal (release), an auditor's Sealed load (acquire)
// precedes its block reads, so audits never race with computation.
type SealTable struct {
	seals []atomic.Uint64
}

// NewSealTable allocates a table for n blocks, all unsealed.
func NewSealTable(n int) *SealTable {
	if n < 0 {
		panic(fmt.Sprintf("resilience: negative seal-table size %d", n))
	}
	return &SealTable{seals: make([]atomic.Uint64, n)}
}

// Len returns the number of block slots.
func (s *SealTable) Len() int { return len(s.seals) }

// Seal records crc as block id's seal.
func (s *SealTable) Seal(id int, crc uint32) {
	s.seals[id].Store(sealedBit | uint64(crc))
}

// Unseal clears block id's seal — the un-complete step of a heal round,
// before the block is restored and its task re-dispatched.
func (s *SealTable) Unseal(id int) {
	s.seals[id].Store(0)
}

// Sealed returns block id's recorded CRC and whether it is sealed.
func (s *SealTable) Sealed(id int) (crc uint32, ok bool) {
	v := s.seals[id].Load()
	return uint32(v), v&sealedBit != 0
}

// SealedCount returns how many blocks currently hold seals.
func (s *SealTable) SealedCount() int {
	n := 0
	for i := range s.seals {
		if s.seals[i].Load()&sealedBit != 0 {
			n++
		}
	}
	return n
}

// Verify re-digests cells and compares against block id's seal. An
// unsealed block verifies trivially (there is nothing to check yet).
func (s *SealTable) Verify(id int, cells func() uint32) bool {
	want, ok := s.Sealed(id)
	if !ok {
		return true
	}
	return cells() == want
}

// Seal-record serialization ("NPSL"), so seals can travel beside a
// checkpoint and be fuzzed adversarially:
//
//	magic   [4]byte "NPSL"
//	version uint16 (currently 1)
//	blocks  uint32 total block slots
//	sealed  uint32 number of records
//	records sealed × { id uint32, crc uint32 }, ids strictly ascending
//	crc     uint32 CRC-32 (IEEE) of every preceding byte
//
// The strictly-ascending id requirement makes the encoding canonical:
// truncated, bit-flipped, or record-reordered input fails the trailing
// checksum or the ordering check — it never decodes to a different
// seal set that would then verify.

// SealMagic identifies the seal-record format.
const SealMagic = "NPSL"

// SealVersion is the current seal-record format version.
const SealVersion uint16 = 1

// maxSealBlocks bounds the block count a reader will believe, matching
// the checkpoint reader's triangle bound so a hostile header cannot
// force a huge allocation before the checksum rejects it.
const maxSealBlocks = maxCheckpointBlocks * (maxCheckpointBlocks + 1) / 2

// WriteSeals serializes the table's sealed records.
func (s *SealTable) WriteSeals(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	var ids []int
	for i := range s.seals {
		if s.seals[i].Load()&sealedBit != 0 {
			ids = append(ids, i)
		}
	}
	sort.Ints(ids)
	var magic [4]byte
	copy(magic[:], SealMagic)
	for _, v := range []any{magic, SealVersion, uint32(len(s.seals)), uint32(len(ids))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("resilience: writing seal header: %w", err)
		}
	}
	for _, id := range ids {
		c, _ := s.Sealed(id)
		if err := binary.Write(bw, binary.LittleEndian, [2]uint32{uint32(id), c}); err != nil {
			return fmt.Errorf("resilience: writing seal record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("resilience: writing seal checksum: %w", err)
	}
	return nil
}

// ReadSeals decodes and fully validates a seal-record stream: magic,
// version, plausible sizes, strictly ascending in-range ids, and the
// trailing CRC. Corrupt, truncated, or reordered input returns an error.
func ReadSeals(r io.Reader) (*SealTable, error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReader(r)
	tr := io.TeeReader(br, crc)
	var hdr struct {
		Magic   [4]byte
		Version uint16
		Blocks  uint32
		Sealed  uint32
	}
	if err := binary.Read(tr, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("resilience: reading seal header: %w", err)
	}
	if string(hdr.Magic[:]) != SealMagic {
		return nil, fmt.Errorf("resilience: bad seal magic %q", hdr.Magic)
	}
	if hdr.Version != SealVersion {
		return nil, fmt.Errorf("resilience: unsupported seal version %d", hdr.Version)
	}
	if hdr.Blocks > maxSealBlocks {
		return nil, fmt.Errorf("resilience: implausible seal-table size %d", hdr.Blocks)
	}
	if hdr.Sealed > hdr.Blocks {
		return nil, fmt.Errorf("resilience: %d seal records exceed %d block slots", hdr.Sealed, hdr.Blocks)
	}
	st := NewSealTable(int(hdr.Blocks))
	prev := -1
	for i := 0; i < int(hdr.Sealed); i++ {
		var rec [2]uint32
		if err := binary.Read(tr, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("resilience: reading seal record %d: %w", i, err)
		}
		id := int(rec[0])
		if id >= int(hdr.Blocks) {
			return nil, fmt.Errorf("resilience: seal record for block %d beyond %d slots", id, hdr.Blocks)
		}
		if id <= prev {
			return nil, fmt.Errorf("resilience: seal records out of order (%d after %d)", id, prev)
		}
		prev = id
		st.Seal(id, rec[1])
	}
	sum := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("resilience: reading seal checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != sum {
		return nil, fmt.Errorf("resilience: seal checksum mismatch: file %08x, computed %08x", got, sum)
	}
	return st, nil
}

// ErrSealMismatch reports that one memory block's bytes do not digest to
// the CRC32C seal that travelled with (or was recorded for) them. It is
// the single-block, typed form of a seal-audit failure: a cluster
// coordinator receiving a boundary block can use it to distinguish
// transport/memory corruption (the carried seal does not match the
// carried bytes) from a stale-version boundary block (generation
// mismatch, which is not an error at all). Like CorruptionError it is
// never transient — re-reading the same bytes cannot fix them; recovery
// is a resend or the poisoned-cone heal path.
//
//npdplint:watch
type ErrSealMismatch struct {
	// Bi, Bj are the memory block's tile coordinates.
	Bi, Bj int
	// BlockID is the dense memory-block ID (tri.Tiled.BlockID order);
	// -1 when the reporter only knows coordinates.
	BlockID int
	// TaskID is the scheduler task that produced the block; -1 unknown.
	TaskID int
	// Want is the expected CRC32C (the seal); Got is the re-digest of
	// the bytes actually observed.
	Want, Got uint32
}

// Error names the block and both digests.
func (e *ErrSealMismatch) Error() string {
	return fmt.Sprintf("block seal mismatch: memory block (%d,%d) expected CRC32C %08x, got %08x",
		e.Bi, e.Bj, e.Want, e.Got)
}

// CorruptionError reports memory blocks whose seals failed an audit —
// the blocks' bytes changed after their tasks completed. It is never
// transient: retrying the discovering task cannot fix another block's
// bytes; recovery is the heal path (restore + recompute the cone).
//
//npdplint:watch
type CorruptionError struct {
	// Blocks are the corrupted memory blocks' tile coordinates.
	Blocks [][2]int
	// TaskIDs are the scheduler tasks that computed them.
	TaskIDs []int
	// Healed reports how many heal rounds were spent before giving up
	// (0 when healing was disabled).
	Healed int
}

// Error names the corrupted blocks and the recovery attempts made.
func (e *CorruptionError) Error() string {
	suffix := ""
	if e.Healed > 0 {
		suffix = fmt.Sprintf(" after %d heal rounds", e.Healed)
	}
	if len(e.Blocks) == 1 {
		return fmt.Sprintf("block seal audit: memory block (%d,%d) corrupted after completion%s",
			e.Blocks[0][0], e.Blocks[0][1], suffix)
	}
	return fmt.Sprintf("block seal audit: %d memory blocks corrupted after completion (first (%d,%d))%s",
		len(e.Blocks), e.Blocks[0][0], e.Blocks[0][1], suffix)
}

// HealStats counts the self-healing layer's work during one solve;
// engines fill it through ParallelOptions.HealStats / CellOptions.
type HealStats struct {
	// Audits is the number of seal-audit passes run (online + post-solve).
	Audits int
	// CorruptBlocks is the total seal mismatches detected.
	CorruptBlocks int
	// HealRounds is the number of poisoned-cone recompute rounds run.
	HealRounds int
	// RecomputedTasks is the total tasks re-dispatched across all rounds.
	RecomputedTasks int
	// CheckpointFallback reports that heal attempts were exhausted and
	// the solve fell back to reloading the on-disk checkpoint.
	CheckpointFallback bool
}
