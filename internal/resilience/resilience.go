// Package resilience is the fault-tolerant execution layer shared by the
// NPDP engines: typed task failures (panics converted to errors with the
// task's identity attached), a bounded exponential-backoff retry policy
// with an injectable sleeper, a deterministic seeded fault injector for
// tests and soak runs, and a versioned, checksummed checkpoint codec
// that snapshots completed memory blocks of a tiled table plus the
// scheduler's task-completion bitmap.
//
// The paper's tier-2 design makes all of this cheap: each memory block
// is computed entirely by one task, every relaxation is a monotone
// idempotent min, and the dependence graph is the ≤2-predecessor
// simplification of Section IV-B — so a task can be retried in place, a
// completed block is immutable for the rest of the solve, and a resumed
// run only needs the completion bitmap to pre-notify the graph.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"time"
)

// PanicError is a worker panic converted to an error, carrying the
// identity of the task that panicked so failures are attributable even
// when the panic came from deep inside a kernel.
//
//npdplint:watch
type PanicError struct {
	// TaskID is the scheduler task that panicked.
	TaskID int
	// Bi, Bj are the task's scheduling-block coordinates.
	Bi, Bj int
	// Worker is the worker index that executed the task.
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error describes the panic with its task identity.
func (e *PanicError) Error() string {
	return fmt.Sprintf("task %d (scheduling block %d,%d) panicked on worker %d: %v",
		e.TaskID, e.Bi, e.Bj, e.Worker, e.Value)
}

// TaskError wraps an exec-level failure with the identity of the task it
// occurred on. Retry exhaustion and fault reports surface through it.
type TaskError struct {
	TaskID   int
	Bi, Bj   int
	Worker   int
	Attempts int // executions performed, including the failing one
	Err      error
}

// Error describes the failure with its task identity.
func (e *TaskError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("task %d (scheduling block %d,%d) failed on worker %d after %d attempts: %v",
			e.TaskID, e.Bi, e.Bj, e.Worker, e.Attempts, e.Err)
	}
	return fmt.Sprintf("task %d (scheduling block %d,%d) failed on worker %d: %v",
		e.TaskID, e.Bi, e.Bj, e.Worker, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// transientError marks a failure as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient marks err as a transient failure: retry policies re-execute
// the task instead of failing the solve. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// Transient. Panics converted by Recover are never transient: a panic
// means the task body itself is broken, not the environment.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// DefaultMaxDelay is the backoff ceiling applied when a policy leaves
// MaxDelay zero. An explicit ceiling everywhere means a storm of
// injected or environmental delays can inflate a retry schedule to at
// most this bound per retry, never to unbounded multi-minute sleeps.
const DefaultMaxDelay = 2 * time.Second

// RetryPolicy bounds per-task re-execution of transient failures with
// exponential backoff. The zero value performs no retries (one attempt,
// no sleeping), so engines that never configure it behave exactly as
// before.
type RetryPolicy struct {
	// MaxRetries is the number of re-executions allowed after the first
	// attempt; 0 disables retry.
	MaxRetries int
	// BaseDelay is the backoff before the first retry; it doubles each
	// further retry. 0 means no sleeping (still bounded by MaxRetries).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; 0 means DefaultMaxDelay.
	// The ceiling is always enforced: no schedule sleeps longer than
	// this per retry.
	MaxDelay time.Duration
	// Jitter enables full jitter: each backoff is drawn uniformly from
	// (0, d] where d is the capped exponential delay, decorrelating the
	// retry storms of tasks that failed together.
	Jitter bool
	// Rand is the uniform [0,1) source full jitter draws from; nil means
	// math/rand's shared source. Tests inject a deterministic sequence
	// so jittered schedules are assertable.
	Rand func() float64
	// Sleep is the sleeper used between attempts; nil means time.Sleep.
	// Tests inject a recording fake so backoff is assertable without
	// real waiting.
	Sleep func(time.Duration)
}

// maxDelay returns the effective ceiling.
func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return DefaultMaxDelay
}

// Backoff returns the delay before retry number `retry` (1-based):
// BaseDelay doubled retry-1 times, capped at the ceiling (MaxDelay, or
// DefaultMaxDelay when unset). With Jitter the capped delay d becomes a
// uniform draw from (0, d] — "full jitter" — so concurrent retriers
// spread out instead of thundering back together.
func (p RetryPolicy) Backoff(retry int) time.Duration {
	if p.BaseDelay <= 0 || retry <= 0 {
		return 0
	}
	ceiling := p.maxDelay()
	d := p.BaseDelay
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= ceiling || d <= 0 { // d <= 0 catches duration overflow
			d = ceiling
			break
		}
	}
	if d > ceiling {
		d = ceiling
	}
	if p.Jitter {
		r := rand.Float64
		if p.Rand != nil {
			r = p.Rand
		}
		// (0, d]: never a zero sleep, never above the capped delay.
		d = time.Duration((1 - r()) * float64(d))
		if d <= 0 {
			d = 1
		}
	}
	return d
}

// sleep waits for d through the injectable sleeper.
func (p RetryPolicy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Recover runs fn, converting a panic into a *PanicError with the stack
// captured. Task identity fields are zero; the scheduler or engine that
// knows the task fills them in.
func Recover(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: captureStack()}
		}
	}()
	return fn()
}

// captureStack snapshots the current goroutine's stack.
func captureStack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// Do runs fn (which receives the 0-based attempt number) until it
// succeeds, returns a non-transient error, or exhausts the retry budget.
// It returns fn's last error and the number of attempts performed.
// Panics inside fn are converted to *PanicError (never retried) with the
// stack attached; the caller fills in task identity.
func (p RetryPolicy) Do(fn func(attempt int) error) (attempts int, err error) {
	for attempt := 0; ; attempt++ {
		err = Recover(func() error { return fn(attempt) })
		attempts = attempt + 1
		if err == nil || !IsTransient(err) || attempt >= p.MaxRetries {
			return attempts, err
		}
		p.sleep(p.Backoff(attempt + 1))
	}
}
