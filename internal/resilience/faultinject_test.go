package resilience

import (
	"reflect"
	"testing"
)

// TestPlanStableUnderKindSetChanges asserts the fault/no-fault decision
// is independent of the kind set: the same (seed, task, attempt) faults
// under every kind set or under none. A run debugged with
// -faultkinds=error therefore fails the exact same attempts when rerun
// with -faultkinds=corrupt — only what the fault does changes.
func TestPlanStableUnderKindSetChanges(t *testing.T) {
	kindSets := [][]FaultKind{
		nil,
		{FaultError},
		{FaultCorrupt},
		{FaultPanic, FaultDelay},
		{FaultError, FaultPanic, FaultDelay, FaultCorrupt},
	}
	for task := 0; task < 300; task++ {
		for attempt := 0; attempt < 3; attempt++ {
			faulted := -1
			for si, kinds := range kindSets {
				inj := &Injector{Rate: 0.2, Seed: 99, Kinds: kinds}
				got := inj.Plan(task, attempt) != FaultNone
				if faulted == -1 {
					if got {
						faulted = 1
					} else {
						faulted = 0
					}
					continue
				}
				if got != (faulted == 1) {
					t.Fatalf("(task %d, attempt %d): kind set %d flipped the fault decision", task, attempt, si)
				}
			}
		}
	}
}

// TestPlanKindDistribution cross-checks the kind draw: over many faulted
// attempts each configured kind appears at roughly its fair share, and
// never a kind outside the set.
func TestPlanKindDistribution(t *testing.T) {
	kinds := []FaultKind{FaultError, FaultPanic, FaultDelay, FaultCorrupt}
	inj := &Injector{Rate: 1, Seed: 5, Kinds: kinds}
	counts := map[FaultKind]int{}
	const trials = 40000
	for task := 0; task < trials; task++ {
		k := inj.Plan(task, 0)
		if k == FaultNone {
			t.Fatalf("rate 1 ran task %d clean", task)
		}
		counts[k]++
	}
	for k := range counts {
		found := false
		for _, want := range kinds {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("drew kind %v outside the configured set", k)
		}
	}
	for _, k := range kinds {
		share := float64(counts[k]) / trials
		if share < 0.22 || share > 0.28 {
			t.Errorf("kind %v share %.4f far from 0.25", k, share)
		}
	}
}

// TestCorruptDrawDeterministicAndDecorrelated pins the flip-location
// draw: pure in (seed, task, attempt), different across attempts (so a
// healed re-execution that corrupts again flips elsewhere), and spread
// over its range rather than clustering.
func TestCorruptDrawDeterministicAndDecorrelated(t *testing.T) {
	inj := &Injector{Rate: 1, Seed: 17, Kinds: []FaultKind{FaultCorrupt}}
	seen := map[uint64]bool{}
	for task := 0; task < 100; task++ {
		for attempt := 0; attempt < 4; attempt++ {
			a := inj.CorruptDraw(task, attempt)
			if b := inj.CorruptDraw(task, attempt); b != a {
				t.Fatalf("CorruptDraw(%d,%d) unstable", task, attempt)
			}
			if seen[a] {
				t.Fatalf("CorruptDraw(%d,%d) collides with an earlier draw", task, attempt)
			}
			seen[a] = true
		}
	}
}

// TestParseFaultKinds covers the CLI syntax end to end.
func TestParseFaultKinds(t *testing.T) {
	cases := []struct {
		in   string
		want []FaultKind
	}{
		{"", nil},
		{"  ", nil},
		{"error", []FaultKind{FaultError}},
		{"corrupt", []FaultKind{FaultCorrupt}},
		{"error,panic,delay,corrupt", []FaultKind{FaultError, FaultPanic, FaultDelay, FaultCorrupt}},
		{" delay , error ", []FaultKind{FaultDelay, FaultError}},
	}
	for _, c := range cases {
		got, err := ParseFaultKinds(c.in)
		if err != nil || !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseFaultKinds(%q) = (%v, %v), want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"none", "corupt", "error,", "error,,panic", "ERROR"} {
		if _, err := ParseFaultKinds(bad); err == nil {
			t.Errorf("ParseFaultKinds(%q) accepted", bad)
		}
	}
}

// TestFaultKindString names every kind, including the new corrupt one.
func TestFaultKindString(t *testing.T) {
	want := map[FaultKind]string{
		FaultNone: "none", FaultError: "error", FaultPanic: "panic",
		FaultDelay: "delay", FaultCorrupt: "corrupt", FaultKind(99): "fault(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
