package resilience

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tableio"
	"cellnpdp/internal/tri"
)

// Checkpoint file layout (all little-endian):
//
//	magic    [4]byte "NPCK"
//	version  uint16  (currently 1)
//	elem     uint16  element width in bytes (4 or 8, matching tableio)
//	n        uint64  logical problem size
//	tile     uint32  memory-block side in cells
//	sched    uint32  scheduling-block side in memory blocks (g)
//	tasks    uint32  scheduler task count
//	nblocks  uint32  number of saved memory blocks
//	bitmap   ceil(tasks/8) bytes — completed-task bitmap, LSB-first
//	blocks   nblocks × { bi uint32, bj uint32, tile² elements }
//	crc      uint32  CRC-32 (IEEE) of every preceding byte
//
// The format is self-describing (saved blocks carry their coordinates)
// so the reader needs no knowledge of the dependence graph, and the
// trailing checksum means a truncated or bit-flipped snapshot is
// rejected instead of silently resuming wrong state.

// CheckpointMagic identifies the snapshot format.
const CheckpointMagic = "NPCK"

// CheckpointVersion is the current snapshot format version.
const CheckpointVersion uint16 = 1

// maxCheckpointN bounds the problem size a reader will believe, matching
// tableio's plausibility limit. maxCheckpointTile and maxCheckpointBlocks
// bound the tile side and blocks per side so a hostile header cannot make
// the reader allocate unbounded memory before the checksum rejects it.
const (
	maxCheckpointN      = 1 << 24
	maxCheckpointTile   = 1 << 12
	maxCheckpointBlocks = 1 << 12
)

// Meta identifies the solve a checkpoint belongs to. A snapshot only
// resumes a run with identical geometry.
type Meta struct {
	N         int // logical problem size
	Tile      int // memory-block side in cells
	SchedSide int // scheduling-block side in memory blocks
	Tasks     int // scheduler task count
	ElemBytes int // element width (4 or 8)
}

// checkMeta validates internal consistency: sizes plausible, and the
// task count matching the block/scheduling geometry.
func (m Meta) checkMeta() error {
	if m.N <= 0 || m.N > maxCheckpointN {
		return fmt.Errorf("resilience: implausible problem size %d", m.N)
	}
	// The tile may exceed n (one padded block) but must stay plausible;
	// the cap also bounds the per-block allocation a reader performs
	// before it can detect truncation.
	if m.Tile <= 0 || m.Tile > maxCheckpointTile {
		return fmt.Errorf("resilience: implausible tile side %d", m.Tile)
	}
	if m.SchedSide <= 0 {
		return fmt.Errorf("resilience: implausible scheduling side %d", m.SchedSide)
	}
	if m.ElemBytes != 4 && m.ElemBytes != 8 {
		return fmt.Errorf("resilience: element width %d not 4 or 8", m.ElemBytes)
	}
	mblocks := (m.N + m.Tile - 1) / m.Tile
	if mblocks > maxCheckpointBlocks {
		return fmt.Errorf("resilience: implausible block count %d per side", mblocks)
	}
	ms := (mblocks + m.SchedSide - 1) / m.SchedSide
	if want := ms * (ms + 1) / 2; m.Tasks != want {
		return fmt.Errorf("resilience: %d tasks inconsistent with %d scheduling blocks per side (want %d)", m.Tasks, ms, want)
	}
	return nil
}

// blocksPerSide returns the memory-block count per side.
func (m Meta) blocksPerSide() int { return (m.N + m.Tile - 1) / m.Tile }

// Checkpoint is a decoded snapshot: the completion bitmap plus the saved
// memory blocks of every completed task.
type Checkpoint[E semiring.Elem] struct {
	Meta Meta
	// Done is the completed-task bitmap, indexed by scheduler task ID.
	Done []bool
	// blocks maps (bi, bj) to the saved cells of that memory block.
	blocks map[[2]int][]E
}

// DoneCount returns the number of completed tasks recorded.
func (c *Checkpoint[E]) DoneCount() int {
	n := 0
	for _, d := range c.Done {
		if d {
			n++
		}
	}
	return n
}

// HasBlock reports whether the snapshot carries memory block (bi, bj).
func (c *Checkpoint[E]) HasBlock(bi, bj int) bool {
	_, ok := c.blocks[[2]int{bi, bj}]
	return ok
}

// Block returns the saved cells of memory block (bi, bj), if the
// snapshot carries it. The slice is the checkpoint's own storage — the
// caller copies, never mutates.
func (c *Checkpoint[E]) Block(bi, bj int) ([]E, bool) {
	cells, ok := c.blocks[[2]int{bi, bj}]
	return cells, ok
}

// Matches verifies the snapshot belongs to a solve with this geometry.
func (c *Checkpoint[E]) Matches(n, tile, schedSide int) error {
	var e E
	if got, want := c.Meta.ElemBytes, tableio.ElemWidth(e); got != want {
		return fmt.Errorf("resilience: checkpoint holds %d-byte elements, solve uses %d", got, want)
	}
	if c.Meta.N != n || c.Meta.Tile != tile || c.Meta.SchedSide != schedSide {
		return fmt.Errorf("resilience: checkpoint geometry n=%d tile=%d sched=%d does not match solve n=%d tile=%d sched=%d",
			c.Meta.N, c.Meta.Tile, c.Meta.SchedSide, n, tile, schedSide)
	}
	return nil
}

// Apply copies every saved memory block into t, which must have the
// snapshot's geometry. Uncompleted blocks are untouched.
func (c *Checkpoint[E]) Apply(t *tri.Tiled[E]) error {
	if t.Len() != c.Meta.N || t.Tile() != c.Meta.Tile {
		return fmt.Errorf("resilience: cannot apply checkpoint (n=%d tile=%d) to table (n=%d tile=%d)",
			c.Meta.N, c.Meta.Tile, t.Len(), t.Tile())
	}
	for key, cells := range c.blocks {
		copy(t.Block(key[0], key[1]), cells)
	}
	return nil
}

// WriteCheckpoint serializes a snapshot: the completion bitmap `done`
// (indexed by task ID) and the listed memory blocks read from t. The
// caller guarantees the listed blocks are final (their tasks completed);
// the codec does not interpret the dependence graph.
func WriteCheckpoint[E semiring.Elem](w io.Writer, meta Meta, done []bool, t *tri.Tiled[E], blocks [][2]int) error {
	if err := meta.checkMeta(); err != nil {
		return err
	}
	if len(done) != meta.Tasks {
		return fmt.Errorf("resilience: bitmap has %d entries for %d tasks", len(done), meta.Tasks)
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	var magic [4]byte
	copy(magic[:], CheckpointMagic)
	for _, v := range []any{magic, CheckpointVersion, uint16(meta.ElemBytes), uint64(meta.N),
		uint32(meta.Tile), uint32(meta.SchedSide), uint32(meta.Tasks), uint32(len(blocks))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("resilience: writing header: %w", err)
		}
	}
	bitmap := make([]byte, (meta.Tasks+7)/8)
	for id, d := range done {
		if d {
			bitmap[id/8] |= 1 << (id % 8)
		}
	}
	if _, err := bw.Write(bitmap); err != nil {
		return fmt.Errorf("resilience: writing bitmap: %w", err)
	}
	var e E
	width := tableio.ElemWidth(e)
	buf := make([]byte, 8)
	for _, b := range blocks {
		if err := binary.Write(bw, binary.LittleEndian, [2]uint32{uint32(b[0]), uint32(b[1])}); err != nil {
			return fmt.Errorf("resilience: writing block header: %w", err)
		}
		for _, v := range t.Block(b[0], b[1]) {
			tableio.PutElem(buf, v)
			if _, err := bw.Write(buf[:width]); err != nil {
				return fmt.Errorf("resilience: writing block (%d,%d): %w", b[0], b[1], err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The checksum itself goes only to w (it cannot cover itself).
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("resilience: writing checksum: %w", err)
	}
	return nil
}

// ReadCheckpoint decodes and fully validates a snapshot: magic, version,
// element width, geometry consistency, block coordinates, and the
// trailing CRC. Corrupt or truncated input returns an error — never a
// panic, never a silently wrong checkpoint.
func ReadCheckpoint[E semiring.Elem](r io.Reader) (*Checkpoint[E], error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReader(r)
	tr := io.TeeReader(br, crc)

	var hdr struct {
		Magic   [4]byte
		Version uint16
		Elem    uint16
		N       uint64
		Tile    uint32
		Sched   uint32
		Tasks   uint32
		NBlocks uint32
	}
	if err := binary.Read(tr, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("resilience: reading checkpoint header: %w", err)
	}
	if string(hdr.Magic[:]) != CheckpointMagic {
		return nil, fmt.Errorf("resilience: bad checkpoint magic %q", hdr.Magic)
	}
	if hdr.Version != CheckpointVersion {
		return nil, fmt.Errorf("resilience: unsupported checkpoint version %d", hdr.Version)
	}
	meta := Meta{
		N:         int(hdr.N),
		Tile:      int(hdr.Tile),
		SchedSide: int(hdr.Sched),
		Tasks:     int(hdr.Tasks),
		ElemBytes: int(hdr.Elem),
	}
	if hdr.N > maxCheckpointN {
		return nil, fmt.Errorf("resilience: implausible problem size %d", hdr.N)
	}
	if err := meta.checkMeta(); err != nil {
		return nil, err
	}
	var e E
	if got, want := meta.ElemBytes, tableio.ElemWidth(e); got != want {
		return nil, fmt.Errorf("resilience: checkpoint holds %d-byte elements, requested type has %d", got, want)
	}
	mblocks := meta.blocksPerSide()
	if int(hdr.NBlocks) > mblocks*(mblocks+1)/2 {
		return nil, fmt.Errorf("resilience: %d saved blocks exceed the %d-block triangle", hdr.NBlocks, mblocks*(mblocks+1)/2)
	}

	bitmap := make([]byte, (meta.Tasks+7)/8)
	if _, err := io.ReadFull(tr, bitmap); err != nil {
		return nil, fmt.Errorf("resilience: reading bitmap: %w", err)
	}
	ck := &Checkpoint[E]{
		Meta:   meta,
		Done:   make([]bool, meta.Tasks),
		blocks: make(map[[2]int][]E, hdr.NBlocks),
	}
	for id := range ck.Done {
		ck.Done[id] = bitmap[id/8]&(1<<(id%8)) != 0
	}

	width := meta.ElemBytes
	cells := meta.Tile * meta.Tile
	buf := make([]byte, 8)
	for b := 0; b < int(hdr.NBlocks); b++ {
		var coord [2]uint32
		if err := binary.Read(tr, binary.LittleEndian, &coord); err != nil {
			return nil, fmt.Errorf("resilience: reading block %d header: %w", b, err)
		}
		bi, bj := int(coord[0]), int(coord[1])
		if bi < 0 || bj < bi || bj >= mblocks {
			return nil, fmt.Errorf("resilience: block (%d,%d) outside the upper triangle of %d tiles", bi, bj, mblocks)
		}
		key := [2]int{bi, bj}
		if _, dup := ck.blocks[key]; dup {
			return nil, fmt.Errorf("resilience: duplicate saved block (%d,%d)", bi, bj)
		}
		data := make([]E, cells)
		for c := 0; c < cells; c++ {
			if _, err := io.ReadFull(tr, buf[:width]); err != nil {
				return nil, fmt.Errorf("resilience: reading block (%d,%d): %w", bi, bj, err)
			}
			data[c] = tableio.GetElem[E](buf)
		}
		ck.blocks[key] = data
	}
	sum := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("resilience: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != sum {
		return nil, fmt.Errorf("resilience: checksum mismatch: file %08x, computed %08x", got, sum)
	}
	return ck, nil
}

// SaveCheckpointFile atomically writes a snapshot to path: it serializes
// into a temporary file in the same directory and renames it over the
// target, so a crash mid-write never leaves a torn checkpoint where a
// resume would find it. The temp name carries the writer's pid
// (`<base>.tmp-p<pid>-*`) so RemoveStaleTemps in another process sharing
// the checkpoint dir — a cluster coordinator and a resuming single-process
// run, say — can tell an in-flight peer temp from an orphan.
func SaveCheckpointFile[E semiring.Elem](path string, meta Meta, done []bool, t *tri.Tiled[E], blocks [][2]int) error {
	tmp, err := CreateOwnedTemp(path)
	if err != nil {
		return fmt.Errorf("resilience: creating checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := WriteCheckpoint(tmp, meta, done, t, blocks); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("resilience: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resilience: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("resilience: publishing checkpoint: %w", err)
	}
	return nil
}

// ErrNoCheckpoint reports that a resume path names no checkpoint file.
// Callers match it with errors.Is to distinguish "nothing to resume"
// from a corrupt or unreadable snapshot.
var ErrNoCheckpoint = errors.New("resilience: no checkpoint file")

// LoadCheckpointFile reads and validates a snapshot from path. A missing
// file returns ErrNoCheckpoint (wrapped with the path).
func LoadCheckpointFile[E semiring.Elem](path string) (*Checkpoint[E], error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNoCheckpoint, path)
		}
		return nil, fmt.Errorf("resilience: opening checkpoint: %w", err)
	}
	defer f.Close()
	return ReadCheckpoint[E](f)
}

// tempPrefix is the owner-tagged infix CreateOwnedTemp appends to the
// target's base name: `.tmp-p<pid>-` followed by os.CreateTemp's random
// suffix. The pid is the ownership claim RemoveStaleTemps consults.
func tempPrefix(pid int) string { return fmt.Sprintf(".tmp-p%d-", pid) }

// CreateOwnedTemp creates a pid-tagged temporary file next to path, named
// `<base>.tmp-p<pid>-<random>` — the naming contract every atomic
// temp+rename writer in the repo shares (checkpoint snapshots, the
// pager's spill data file and spill index), so one RemoveStaleTemps sweep
// over the target path reclaims any of their crash orphans while leaving
// a live peer's in-flight write alone. The caller writes, syncs, and
// renames the file over path (or removes it on failure).
func CreateOwnedTemp(path string) (*os.File, error) {
	return os.CreateTemp(filepath.Dir(path), filepath.Base(path)+tempPrefix(os.Getpid())+"*")
}

// tempOwner extracts the owner pid from a checkpoint temp file name given
// the `<base>.tmp` stem, or ok=false for legacy un-tagged temps
// (`<base>.tmp<random>` from older writers) which carry no claim.
func tempOwner(name, stem string) (pid int, ok bool) {
	rest, found := strings.CutPrefix(name, stem+"-p")
	if !found {
		return 0, false
	}
	digits, _, found := strings.Cut(rest, "-")
	if !found || digits == "" {
		return 0, false
	}
	pid, err := strconv.Atoi(digits)
	if err != nil || pid <= 0 {
		return 0, false
	}
	return pid, true
}

// pidAlive reports whether a process with the given pid exists right now.
// Signal 0 performs the existence check without delivering anything; EPERM
// means the pid exists but belongs to another user, which still counts as
// alive — when in doubt a sweep must not delete a peer's in-flight temp.
func pidAlive(pid int) bool {
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false // process is certainly gone (non-Unix semantics)
	}
	err = proc.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}

// RemoveStaleTemps deletes leftover temporary files of the target at
// path — the `<base>.tmp*` files CreateOwnedTemp-based writers (the
// checkpoint snapshotter, the pager's spill data file and spill index)
// produce before their atomic rename. A crash — or a SIGKILL mid-spill —
// between creating the temp and renaming it orphans one; resume and
// pager open call this so crashed runs do not accumulate file-size-worth
// of dead bytes next to the live target. It returns how many files were
// removed.
//
// The sweep is safe under multiple processes sharing a directory: temps
// are owner-tagged with the writer's pid, and a temp whose owner is a
// live process other than the caller is a peer's in-flight write and is
// left alone. Own temps, temps of dead pids, and legacy un-tagged temps
// are removed. Only `.tmp` siblings of this target are ever touched, so
// unrelated files (and the target itself) are never at risk.
func RemoveStaleTemps(path string) (int, error) {
	stem := filepath.Base(path) + ".tmp"
	matches, err := filepath.Glob(filepath.Join(filepath.Dir(path), stem+"*"))
	if err != nil {
		return 0, fmt.Errorf("resilience: scanning for stale checkpoint temps: %w", err)
	}
	self := os.Getpid()
	removed := 0
	for _, m := range matches {
		if pid, ok := tempOwner(filepath.Base(m), stem); ok && pid != self && pidAlive(pid) {
			continue // a live peer's in-flight write
		}
		if err := os.Remove(m); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue // a concurrent writer's rename already consumed it
			}
			return removed, fmt.Errorf("resilience: removing stale checkpoint temp: %w", err)
		}
		removed++
	}
	return removed, nil
}
