package resilience

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"cellnpdp/internal/tri"
)

// testSnapshot builds a small table with two completed tasks' blocks.
func testSnapshot(t *testing.T) (Meta, []bool, *tri.Tiled[float32], [][2]int) {
	t.Helper()
	const n, tile = 20, 8 // 3 blocks per side → 6 tasks at schedSide 1
	tt := tri.NewTiled[float32](n, tile)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			tt.Set(i, j, float32(i*100+j))
		}
	}
	meta := Meta{N: n, Tile: tile, SchedSide: 1, Tasks: 6, ElemBytes: 4}
	done := []bool{true, false, false, true, false, false}
	blocks := [][2]int{{0, 0}, {1, 1}}
	return meta, done, tt, blocks
}

// TestCheckpointRoundTrip writes a snapshot and reads it back, checking
// metadata, bitmap, and block contents survive exactly.
func TestCheckpointRoundTrip(t *testing.T) {
	meta, done, tt, blocks := testSnapshot(t)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, meta, done, tt, blocks); err != nil {
		t.Fatal(err)
	}
	ck, err := ReadCheckpoint[float32](bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Meta != meta {
		t.Fatalf("meta %+v, want %+v", ck.Meta, meta)
	}
	if ck.DoneCount() != 2 || !ck.Done[0] || !ck.Done[3] {
		t.Fatalf("bitmap %v, want tasks 0 and 3 done", ck.Done)
	}
	if !ck.HasBlock(0, 0) || !ck.HasBlock(1, 1) || ck.HasBlock(0, 1) {
		t.Fatal("saved block set wrong")
	}
	// Apply into a fresh (infinity-filled) table: saved blocks restored,
	// others untouched.
	fresh := tri.NewTiled[float32](meta.N, meta.Tile)
	if err := ck.Apply(fresh); err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		want := tt.Block(b[0], b[1])
		got := fresh.Block(b[0], b[1])
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("block (%d,%d) cell %d: %v vs %v", b[0], b[1], k, got[k], want[k])
			}
		}
	}
	if err := ck.Matches(meta.N, meta.Tile, meta.SchedSide); err != nil {
		t.Fatal(err)
	}
	if err := ck.Matches(meta.N, meta.Tile, 2); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

// TestCheckpointRejectsCorruption flips every byte position in turn; the
// reader must reject each corrupted snapshot (checksum or validation)
// and must never confuse one for the original.
func TestCheckpointRejectsCorruption(t *testing.T) {
	meta, done, tt, blocks := testSnapshot(t)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, meta, done, tt, blocks); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for pos := 0; pos < len(data); pos++ {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0xff
		if _, err := ReadCheckpoint[float32](bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d accepted", pos)
		}
	}
	// Every truncation must also be rejected.
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := ReadCheckpoint[float32](bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

// TestCheckpointWrongElemWidth asserts a float64 reader rejects a float32
// snapshot rather than misinterpreting it.
func TestCheckpointWrongElemWidth(t *testing.T) {
	meta, done, tt, blocks := testSnapshot(t)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, meta, done, tt, blocks); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint[float64](bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("element-width mismatch accepted")
	}
}

// TestCheckpointFileAtomic saves to a file and loads it back; the temp
// file must not linger.
func TestCheckpointFileAtomic(t *testing.T) {
	meta, done, tt, blocks := testSnapshot(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "solve.ckpt")
	if err := SaveCheckpointFile(path, meta, done, tt, blocks); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpointFile[float32](path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.DoneCount() != 2 {
		t.Fatalf("loaded %d done tasks, want 2", ck.DoneCount())
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("temp files left behind: %v", left)
	}
	// Overwriting with a newer snapshot must succeed (rename over).
	if err := SaveCheckpointFile(path, meta, done, tt, blocks); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointMetaValidation rejects inconsistent geometry up front.
func TestCheckpointMetaValidation(t *testing.T) {
	meta, done, tt, blocks := testSnapshot(t)
	bad := meta
	bad.Tasks = 5 // inconsistent with 3 blocks/side at schedSide 1
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, bad, done[:5], tt, blocks); err == nil {
		t.Fatal("inconsistent task count accepted by writer")
	}
	if err := WriteCheckpoint(&buf, meta, done[:3], tt, blocks); err == nil {
		t.Fatal("short bitmap accepted by writer")
	}
}

// TestLoadCheckpointMissingFileTyped asserts a missing -resume file is
// the typed ErrNoCheckpoint (with the path in the message), so callers
// can distinguish "nothing to resume" from a corrupt snapshot.
func TestLoadCheckpointMissingFileTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.npck")
	_, err := LoadCheckpointFile[float32](path)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing file error = %v, want ErrNoCheckpoint", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error %q does not name the path", err)
	}
	// A present-but-corrupt file must NOT be ErrNoCheckpoint.
	bad := filepath.Join(t.TempDir(), "bad.npck")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpointFile[float32](bad); err == nil || errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("corrupt file error = %v, want a non-ErrNoCheckpoint failure", err)
	}
}

// TestRemoveStaleTemps asserts crash-orphaned `.tmp` siblings of a
// checkpoint are swept while the live checkpoint and unrelated files
// survive.
func TestRemoveStaleTemps(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "solve.npck")
	meta, done, tt, blocks := testSnapshot(t)
	if err := SaveCheckpointFile(ck, meta, done, tt, blocks); err != nil {
		t.Fatal(err)
	}
	// Orphans as os.CreateTemp(dir, base+".tmp*") leaves them, plus
	// bystanders that must not be touched.
	for _, name := range []string{"solve.npck.tmp123", "solve.npck.tmp999"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	other := filepath.Join(dir, "other.npck.tmp1")
	if err := os.WriteFile(other, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := RemoveStaleTemps(ck)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed %d temps, want 2", removed)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("live checkpoint removed: %v", err)
	}
	if _, err := os.Stat(other); err != nil {
		t.Fatalf("unrelated temp removed: %v", err)
	}
	if _, err := LoadCheckpointFile[float32](ck); err != nil {
		t.Fatalf("checkpoint unreadable after sweep: %v", err)
	}
	// Idempotent: a second sweep finds nothing.
	if removed, err := RemoveStaleTemps(ck); err != nil || removed != 0 {
		t.Fatalf("second sweep = (%d, %v), want (0, nil)", removed, err)
	}
}

// TestTempOwnerParsing pins the owner-tag grammar: only a well-formed
// `.tmp-p<pid>-<random>` name carries a claim; everything else is legacy.
func TestTempOwnerParsing(t *testing.T) {
	const stem = "solve.npck.tmp"
	cases := []struct {
		name string
		pid  int
		ok   bool
	}{
		{"solve.npck.tmp-p1234-567", 1234, true},
		{"solve.npck.tmp-p1-x", 1, true},
		{"solve.npck.tmp123", 0, false},     // legacy, no tag
		{"solve.npck.tmp-p-5", 0, false},    // empty pid
		{"solve.npck.tmp-pabc-5", 0, false}, // non-numeric pid
		{"solve.npck.tmp-p99", 0, false},    // no closing dash
		{"solve.npck.tmp-p0-x", 0, false},   // pid must be positive
	}
	for _, c := range cases {
		pid, ok := tempOwner(c.name, stem)
		if pid != c.pid || ok != c.ok {
			t.Errorf("tempOwner(%q) = (%d, %v), want (%d, %v)", c.name, pid, ok, c.pid, c.ok)
		}
	}
}

// TestSaveCheckpointTempsCarryPid asserts the writer's temps are tagged
// with its own pid, so a peer's sweep can recognize them as in-flight.
func TestSaveCheckpointTempsCarryPid(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "solve.npck")
	meta, done, tt, blocks := testSnapshot(t)
	if err := SaveCheckpointFile(ck, meta, done, tt, blocks); err != nil {
		t.Fatal(err)
	}
	// The rename consumed the temp; re-create one with the same prefix
	// the writer uses and verify it parses back to our pid.
	name := filepath.Base(ck) + tempPrefix(os.Getpid()) + "12345"
	pid, ok := tempOwner(name, filepath.Base(ck)+".tmp")
	if !ok || pid != os.Getpid() {
		t.Fatalf("writer temp name %q parses to (%d, %v), want own pid %d", name, pid, ok, os.Getpid())
	}
}

// TestRemoveStaleTempsSparesLivePeers is the two-processes-one-dir
// scenario: a sweep must remove its own temps, dead owners' temps, and
// legacy un-tagged temps — but never a live peer's in-flight temp.
// Pid 1 stands in for the live peer (always running, never ours); a
// spawned-and-reaped subprocess provides a genuinely dead pid.
func TestRemoveStaleTempsSparesLivePeers(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "solve.npck")
	base := filepath.Base(ck)

	deadPid := reapedPid(t)
	write := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	own := write(base + tempPrefix(os.Getpid()) + "aaa")
	dead := write(base + tempPrefix(deadPid) + "bbb")
	legacy := write(base + ".tmp777")
	peer := write(base + tempPrefix(1) + "ccc")

	removed, err := RemoveStaleTemps(ck)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("removed %d temps, want 3 (own + dead + legacy)", removed)
	}
	for _, gone := range []string{own, dead, legacy} {
		if _, err := os.Stat(gone); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s should have been swept (stat err %v)", filepath.Base(gone), err)
		}
	}
	if _, err := os.Stat(peer); err != nil {
		t.Fatalf("live peer's in-flight temp was deleted: %v", err)
	}
	if !pidAlive(os.Getpid()) {
		t.Fatal("pidAlive(self) = false")
	}
	if pidAlive(deadPid) {
		t.Fatalf("pidAlive(%d) = true for a reaped subprocess", deadPid)
	}
}

// reapedPid spawns a trivial subprocess, waits for it, and returns its
// now-dead pid.
func reapedPid(t *testing.T) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	if err := cmd.Run(); err != nil {
		t.Skipf("cannot spawn subprocess for dead-pid fixture: %v", err)
	}
	return cmd.Process.Pid
}
