package pager

import (
	"fmt"
	"strings"
	"sync/atomic"
	"syscall"
)

// DiskFaultKind classifies what the disk-fault injector does to one
// spill-file I/O operation.
type DiskFaultKind int

// The injectable disk faults. Write operations can draw EIO, Torn, or
// ENOSPC; read operations can draw EIO or Flip — kinds outside an
// operation's domain are skipped for that operation.
const (
	DiskFaultNone   DiskFaultKind = iota
	DiskFaultEIO                  // the syscall fails with EIO
	DiskFaultTorn                 // a write persists only a prefix yet reports success
	DiskFaultFlip                 // a read silently returns one flipped bit
	DiskFaultENOSPC               // a write fails with ENOSPC
)

// String names the disk-fault kind.
func (k DiskFaultKind) String() string {
	switch k {
	case DiskFaultNone:
		return "none"
	case DiskFaultEIO:
		return "eio"
	case DiskFaultTorn:
		return "torn"
	case DiskFaultFlip:
		return "flip"
	case DiskFaultENOSPC:
		return "enospc"
	}
	return fmt.Sprintf("diskfault(%d)", int(k))
}

// ParseDiskFaultKinds parses a comma-separated disk-fault list (the
// CLI's -disk-faultkinds syntax), e.g. "eio,torn,flip,enospc". Empty
// input returns nil — the injector's all-kinds default.
func ParseDiskFaultKinds(s string) ([]DiskFaultKind, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var kinds []DiskFaultKind
	for _, part := range strings.Split(s, ",") {
		switch name := strings.TrimSpace(part); name {
		case "eio":
			kinds = append(kinds, DiskFaultEIO)
		case "torn":
			kinds = append(kinds, DiskFaultTorn)
		case "flip":
			kinds = append(kinds, DiskFaultFlip)
		case "enospc":
			kinds = append(kinds, DiskFaultENOSPC)
		default:
			return nil, fmt.Errorf("unknown disk fault kind %q (want eio, torn, flip, or enospc)", name)
		}
	}
	return kinds, nil
}

// DiskFaults deterministically injects faults into the pager's spill
// I/O: whether the i-th physical operation faults, and how, is a pure
// function of (Seed, i). Operation numbering is a process-global
// sequence over the pager's reads and writes, so a run with a given
// seed and a serial engine faults the same operations every time; under
// a concurrent engine the op→block mapping can shift with scheduling,
// but the fault *schedule* — which op indices fault, and how — is still
// fixed, which is what the chaos smokes assert on.
type DiskFaults struct {
	// Rate is the per-operation fault probability in [0, 1].
	Rate float64
	// Seed drives the deterministic per-operation decision.
	Seed int64
	// Kinds is the set of faults to draw from; empty means all four.
	Kinds []DiskFaultKind

	ops atomic.Uint64
}

// splitmix64 is the SplitMix64 finalizer — the same mixing the
// resilience injector uses, so seeds behave alike across fault domains.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns the mixed 64-bit draw for operation op.
func (f *DiskFaults) draw(op uint64) uint64 {
	h := splitmix64(uint64(f.Seed))
	return splitmix64(h ^ op*0x9e3779b97f4a7c15)
}

// plan advances the operation counter and returns the fault for this
// operation, restricted to the kinds in domain. A drawn kind outside the
// domain downgrades to DiskFaultNone (the op count still advances, so
// read and write schedules stay aligned with the global sequence).
func (f *DiskFaults) plan(domain []DiskFaultKind) DiskFaultKind {
	if f == nil || f.Rate <= 0 {
		return DiskFaultNone
	}
	h := f.draw(f.ops.Add(1) - 1)
	u := float64(h>>11) / (1 << 53)
	if u >= f.Rate {
		return DiskFaultNone
	}
	kinds := f.Kinds
	if len(kinds) == 0 {
		kinds = []DiskFaultKind{DiskFaultEIO, DiskFaultTorn, DiskFaultFlip, DiskFaultENOSPC}
	}
	k := kinds[splitmix64(h)%uint64(len(kinds))]
	for _, d := range domain {
		if k == d {
			return k
		}
	}
	return DiskFaultNone
}

// bitDraw returns the deterministic draw a DiskFaultFlip uses to pick
// the flipped bit, decorrelated from the fault decision itself.
func (f *DiskFaults) bitDraw() uint64 {
	return splitmix64(f.draw(f.ops.Load()) ^ 0xc2b2ae3d27d4eb4f)
}

var (
	writeFaultDomain = []DiskFaultKind{DiskFaultEIO, DiskFaultTorn, DiskFaultENOSPC}
	readFaultDomain  = []DiskFaultKind{DiskFaultEIO, DiskFaultFlip}
)

// writeAt performs one injected slot write: EIO and ENOSPC fail the
// syscall, Torn persists only the first half of buf and reports full
// success (the torn-write model — the CRC trailer lands in the missing
// suffix, so the next page-in detects it).
func (f *DiskFaults) writeAt(file interface {
	WriteAt([]byte, int64) (int, error)
}, buf []byte, off int64) (DiskFaultKind, error) {
	switch k := f.plan(writeFaultDomain); k {
	case DiskFaultEIO:
		return k, fmt.Errorf("pager: injected write fault: %w", syscall.EIO)
	case DiskFaultENOSPC:
		return k, fmt.Errorf("pager: injected write fault: %w", syscall.ENOSPC)
	case DiskFaultTorn:
		if _, err := file.WriteAt(buf[:len(buf)/2], off); err != nil {
			return k, err
		}
		return k, nil
	}
	_, err := file.WriteAt(buf, off)
	return DiskFaultNone, err
}

// readAt performs one injected slot read: EIO fails the syscall, Flip
// silently flips one bit of the returned buffer (the bit-rot model — the
// CRC check downstream is the only thing that can catch it).
func (f *DiskFaults) readAt(file interface {
	ReadAt([]byte, int64) (int, error)
}, buf []byte, off int64) (DiskFaultKind, error) {
	k := f.plan(readFaultDomain)
	if k == DiskFaultEIO {
		return k, fmt.Errorf("pager: injected read fault: %w", syscall.EIO)
	}
	if _, err := file.ReadAt(buf, off); err != nil {
		return DiskFaultNone, err
	}
	if k == DiskFaultFlip && len(buf) > 0 {
		bit := f.bitDraw() % uint64(len(buf)*8)
		buf[bit/8] ^= 1 << (bit % 8)
	}
	return k, nil
}
