package pager

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"cellnpdp/internal/resilience"
)

// Spill data file ("NPSP", all little-endian) — the on-disk home of
// every memory block, in two fixed versions per block so a reader can
// always fall back to known-good bytes:
//
//	magic    [4]byte "NPSP"
//	version  uint16  (currently 1)
//	elem     uint16  element width in bytes (4 or 8, matching tableio)
//	n        uint64  logical problem size
//	tile     uint32  memory-block side in cells
//	nblocks  uint32  dense upper-triangle block count m(m+1)/2
//	hcrc     uint32  CRC-32 (IEEE) of the 24 header bytes above
//	slots    2·nblocks × { tile² elements, crc uint32 (CRC32C) }
//
// Slot (region, id) lives at header + (region·nblocks + id)·slotBytes:
// region 0 holds the block's pristine version (input values, written
// once at Create) and region 1 its final version (sealed task output,
// written when a completed block is evicted). Every slot carries its
// own resilience.BlockCRC trailer — the same CRC32C the in-memory seal
// layer and the cluster wire frames use — so a torn write or bit rot is
// always detectable at page-in. The final region is allocated sparse:
// a slot there is meaningful only once the spill index commits its
// record, and the index is only committed after the data file syncs.
//
// Spill index ("NPSX", `<path>.idx`) — the commit record deciding which
// final slots a restart may trust:
//
//	magic    [4]byte "NPSX"
//	version  uint16  (currently 1)
//	elem     uint16
//	n        uint64
//	tile     uint32
//	nblocks  uint32
//	nfinal   uint32  number of records
//	records  nfinal × { id uint32, crc uint32 }, ids strictly ascending
//	crc      uint32  CRC-32 (IEEE) of every preceding byte
//
// Like the NPSL seal stream, the strictly-ascending id requirement makes
// the encoding canonical: truncated, bit-flipped, or reordered input
// fails the checksum or the ordering check, never decodes to a different
// final set. The index is published with the atomic temp+rename
// discipline (pid-tagged temps, resilience.CreateOwnedTemp), so a
// SIGKILL mid-spill leaves either the previous committed index or the
// new one — a final slot whose record never committed is simply
// recomputed after restart.

// SpillMagic and IndexMagic identify the two spill formats.
const (
	SpillMagic = "NPSP"
	IndexMagic = "NPSX"
)

// SpillVersion is the current version of both spill formats.
const SpillVersion uint16 = 1

// Plausibility bounds, matching the checkpoint reader's limits: a
// hostile header cannot make a reader allocate unbounded memory before
// a checksum can reject it.
const (
	maxSpillN    = 1 << 24
	maxSpillTile = 1 << 12
	maxSpillSide = 1 << 12
)

// spillHeaderSize is the fixed NPSP prologue length (24 header bytes +
// 4-byte header CRC).
const spillHeaderSize = 28

// spillGeom is the geometry both spill files carry and must agree on.
type spillGeom struct {
	N       int // logical problem size
	Tile    int // memory-block side in cells
	Elem    int // element width (4 or 8)
	NBlocks int // dense upper-triangle block count
}

// check validates internal consistency and plausibility.
func (g spillGeom) check() error {
	if g.N <= 0 || g.N > maxSpillN {
		return fmt.Errorf("pager: implausible problem size %d", g.N)
	}
	if g.Tile <= 0 || g.Tile > maxSpillTile {
		return fmt.Errorf("pager: implausible tile side %d", g.Tile)
	}
	if g.Elem != 4 && g.Elem != 8 {
		return fmt.Errorf("pager: element width %d not 4 or 8", g.Elem)
	}
	m := (g.N + g.Tile - 1) / g.Tile
	if m > maxSpillSide {
		return fmt.Errorf("pager: implausible block count %d per side", m)
	}
	if want := m * (m + 1) / 2; g.NBlocks != want {
		return fmt.Errorf("pager: %d blocks inconsistent with n=%d tile=%d (want %d)", g.NBlocks, g.N, g.Tile, want)
	}
	return nil
}

// slotBytes is one slot's on-disk length: the block payload plus its
// CRC32C trailer.
func (g spillGeom) slotBytes() int64 {
	return int64(g.Tile)*int64(g.Tile)*int64(g.Elem) + 4
}

// slotOff locates slot (region, id) in the data file.
func (g spillGeom) slotOff(region, id int) int64 {
	return spillHeaderSize + (int64(region)*int64(g.NBlocks)+int64(id))*g.slotBytes()
}

// fileSize is the data file's full (sparse) length.
func (g spillGeom) fileSize() int64 {
	return spillHeaderSize + 2*int64(g.NBlocks)*g.slotBytes()
}

// SpillFileSize predicts the (sparse) on-disk size of a spill data file
// for an n-point problem with the given tile side and element width —
// the admission-control figure EstimateSolve reports before a paged
// solve runs.
func SpillFileSize(n, tile, elemBytes int) int64 {
	m := (n + tile - 1) / tile
	g := spillGeom{N: n, Tile: tile, Elem: elemBytes, NBlocks: m * (m + 1) / 2}
	return g.fileSize()
}

// encodeSpillHeader serializes the NPSP prologue.
func encodeSpillHeader(g spillGeom) []byte {
	buf := make([]byte, spillHeaderSize)
	copy(buf, SpillMagic)
	binary.LittleEndian.PutUint16(buf[4:], SpillVersion)
	binary.LittleEndian.PutUint16(buf[6:], uint16(g.Elem))
	binary.LittleEndian.PutUint64(buf[8:], uint64(g.N))
	binary.LittleEndian.PutUint32(buf[16:], uint32(g.Tile))
	binary.LittleEndian.PutUint32(buf[20:], uint32(g.NBlocks))
	binary.LittleEndian.PutUint32(buf[24:], crc32.ChecksumIEEE(buf[:24]))
	return buf
}

// decodeSpillHeader reads and fully validates the NPSP prologue.
func decodeSpillHeader(r io.ReaderAt) (spillGeom, error) {
	buf := make([]byte, spillHeaderSize)
	if _, err := r.ReadAt(buf, 0); err != nil {
		return spillGeom{}, fmt.Errorf("pager: reading spill header: %w", err)
	}
	if string(buf[:4]) != SpillMagic {
		return spillGeom{}, fmt.Errorf("pager: bad spill magic %q", buf[:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != SpillVersion {
		return spillGeom{}, fmt.Errorf("pager: unsupported spill version %d", v)
	}
	if got, want := binary.LittleEndian.Uint32(buf[24:]), crc32.ChecksumIEEE(buf[:24]); got != want {
		return spillGeom{}, fmt.Errorf("pager: spill header checksum mismatch: file %08x, computed %08x", got, want)
	}
	g := spillGeom{
		N:       int(binary.LittleEndian.Uint64(buf[8:])),
		Tile:    int(binary.LittleEndian.Uint32(buf[16:])),
		Elem:    int(binary.LittleEndian.Uint16(buf[6:])),
		NBlocks: int(binary.LittleEndian.Uint32(buf[20:])),
	}
	if binary.LittleEndian.Uint64(buf[8:]) > maxSpillN {
		return spillGeom{}, fmt.Errorf("pager: implausible problem size %d", binary.LittleEndian.Uint64(buf[8:]))
	}
	if err := g.check(); err != nil {
		return spillGeom{}, err
	}
	return g, nil
}

// indexRecord is one committed final block: its dense id and final CRC.
type indexRecord struct {
	ID  int
	CRC uint32
}

// writeIndex serializes the NPSX stream; records must be id-ascending
// (writers sort, readers enforce).
func writeIndex(w io.Writer, g spillGeom, records []indexRecord) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	var magic [4]byte
	copy(magic[:], IndexMagic)
	for _, v := range []any{magic, SpillVersion, uint16(g.Elem), uint64(g.N),
		uint32(g.Tile), uint32(g.NBlocks), uint32(len(records))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("pager: writing index header: %w", err)
		}
	}
	for _, rec := range records {
		if err := binary.Write(bw, binary.LittleEndian, [2]uint32{uint32(rec.ID), rec.CRC}); err != nil {
			return fmt.Errorf("pager: writing index record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("pager: writing index checksum: %w", err)
	}
	return nil
}

// readIndex decodes and fully validates an NPSX stream: magic, version,
// geometry plausibility, record count within the triangle, strictly
// ascending in-range ids, and the trailing CRC. Corrupt, truncated, or
// reordered input returns an error — the restart then trusts nothing
// and recomputes, never resumes bad state.
func readIndex(r io.Reader) (spillGeom, []indexRecord, error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReader(r)
	tr := io.TeeReader(br, crc)
	var hdr struct {
		Magic   [4]byte
		Version uint16
		Elem    uint16
		N       uint64
		Tile    uint32
		NBlocks uint32
		NFinal  uint32
	}
	if err := binary.Read(tr, binary.LittleEndian, &hdr); err != nil {
		return spillGeom{}, nil, fmt.Errorf("pager: reading index header: %w", err)
	}
	if string(hdr.Magic[:]) != IndexMagic {
		return spillGeom{}, nil, fmt.Errorf("pager: bad index magic %q", hdr.Magic)
	}
	if hdr.Version != SpillVersion {
		return spillGeom{}, nil, fmt.Errorf("pager: unsupported index version %d", hdr.Version)
	}
	if hdr.N > maxSpillN {
		return spillGeom{}, nil, fmt.Errorf("pager: implausible problem size %d", hdr.N)
	}
	g := spillGeom{N: int(hdr.N), Tile: int(hdr.Tile), Elem: int(hdr.Elem), NBlocks: int(hdr.NBlocks)}
	if err := g.check(); err != nil {
		return spillGeom{}, nil, err
	}
	// The record-count bound is what defuses a hostile allocation bomb:
	// nfinal beyond the triangle is rejected before any allocation
	// proportional to it.
	if int(hdr.NFinal) > g.NBlocks {
		return spillGeom{}, nil, fmt.Errorf("pager: %d index records exceed the %d-block triangle", hdr.NFinal, g.NBlocks)
	}
	records := make([]indexRecord, 0, hdr.NFinal)
	prev := -1
	for i := 0; i < int(hdr.NFinal); i++ {
		var rec [2]uint32
		if err := binary.Read(tr, binary.LittleEndian, &rec); err != nil {
			return spillGeom{}, nil, fmt.Errorf("pager: reading index record %d: %w", i, err)
		}
		id := int(rec[0])
		if id >= g.NBlocks {
			return spillGeom{}, nil, fmt.Errorf("pager: index record for block %d beyond %d blocks", id, g.NBlocks)
		}
		if id <= prev {
			return spillGeom{}, nil, fmt.Errorf("pager: index records out of order (%d after %d)", id, prev)
		}
		prev = id
		records = append(records, indexRecord{ID: id, CRC: rec[1]})
	}
	sum := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return spillGeom{}, nil, fmt.Errorf("pager: reading index checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != sum {
		return spillGeom{}, nil, fmt.Errorf("pager: index checksum mismatch: file %08x, computed %08x", got, sum)
	}
	return g, records, nil
}

// commitIndex atomically publishes the index: pid-tagged temp in the
// same directory, fsync, rename. The caller has already fsynced the
// data file, so a committed record never points at an unsynced slot.
func commitIndex(path string, g spillGeom, records []indexRecord) error {
	tmp, err := resilience.CreateOwnedTemp(path)
	if err != nil {
		return fmt.Errorf("pager: creating index temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := writeIndex(tmp, g, records); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("pager: syncing index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("pager: closing index: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("pager: publishing index: %w", err)
	}
	return nil
}

// loadIndex reads the committed index at path. A missing file is a
// clean "no finals committed" state, not an error (the first commit may
// never have happened before a crash).
func loadIndex(path string) (spillGeom, []indexRecord, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return spillGeom{}, nil, false, nil
		}
		return spillGeom{}, nil, false, fmt.Errorf("pager: opening index: %w", err)
	}
	defer f.Close()
	g, records, err := readIndex(f)
	if err != nil {
		return spillGeom{}, nil, false, err
	}
	return g, records, true, nil
}
