package pager

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cellnpdp/internal/resilience"
	"cellnpdp/internal/tri"
)

// testTable builds a small tiled table with distinct, deterministic cell
// values (not the Inf initial state, so content checks are meaningful).
func testTable(n, tile int) *tri.Tiled[float32] {
	t := tri.NewTiled[float32](n, tile)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			t.Set(i, j, float32(i*1000+j))
		}
	}
	return t
}

func newTestPager(t *testing.T, src *tri.Tiled[float32], opts Options) *Pager[float32] {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.npsp")
	p, err := Create(path, src, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPagerAcquireReturnsPristineContent(t *testing.T) {
	src := testTable(40, 8) // 5 tiles per side, 15 blocks
	p := newTestPager(t, src, Options{Frames: 4})
	m := src.Blocks()
	for bi := 0; bi < m; bi++ {
		for bj := bi; bj < m; bj++ {
			cells, err := p.Acquire(bi, bj)
			if err != nil {
				t.Fatalf("Acquire(%d,%d): %v", bi, bj, err)
			}
			if want := src.Block(bi, bj); !equalCells(cells, want) {
				t.Fatalf("block (%d,%d) content mismatch after page-in", bi, bj)
			}
			p.Release(bi, bj)
		}
	}
	if st := p.Stats(); st.PristineReads != int64(p.NBlocks()) {
		t.Errorf("PristineReads = %d, want %d", st.PristineReads, p.NBlocks())
	}
}

func TestPagerEvictionBoundsResidentSet(t *testing.T) {
	src := testTable(40, 8)
	p := newTestPager(t, src, Options{Frames: 4})
	m := src.Blocks()
	for bi := 0; bi < m; bi++ {
		for bj := bi; bj < m; bj++ {
			if _, err := p.Acquire(bi, bj); err != nil {
				t.Fatalf("Acquire(%d,%d): %v", bi, bj, err)
			}
			p.Release(bi, bj)
		}
	}
	if got := p.Resident(); got > 4 {
		t.Errorf("resident = %d frames, budget 4", got)
	}
	if st := p.Stats(); st.Evictions == 0 {
		t.Error("no evictions despite touching 15 blocks through 4 frames")
	}
}

func TestPagerSpillAndRefetchFinalBlock(t *testing.T) {
	src := testTable(40, 8)
	p := newTestPager(t, src, Options{Frames: 4})
	// Complete block (0,0) with mutated content, then force it out.
	cells, err := p.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		cells[i] = float32(i) * 2
	}
	want := append([]float32(nil), cells...)
	if err := p.Complete(0, 0); err != nil {
		t.Fatal(err)
	}
	p.Release(0, 0)
	flushFrames(t, p, [2]int{0, 0})
	got, err := p.Acquire(0, 0)
	if err != nil {
		t.Fatalf("re-acquire after spill: %v", err)
	}
	if !equalCells(got, want) {
		t.Fatal("final block content changed across spill + fetch")
	}
	st := p.Stats()
	if st.SpilledBlocks == 0 || st.FetchedBlocks == 0 {
		t.Errorf("expected spill + fetch traffic, got %+v", st)
	}
}

// flushFrames evicts every unpinned frame by acquiring other blocks
// until the listed blocks are gone from the resident set.
func flushFrames(t *testing.T, p *Pager[float32], evict ...[2]int) {
	t.Helper()
	m := p.Blocks()
	for bi := 0; bi < m; bi++ {
		for bj := bi; bj < m; bj++ {
			skip := false
			for _, b := range evict {
				if b == [2]int{bi, bj} {
					skip = true
				}
			}
			if skip {
				continue
			}
			if _, err := p.Acquire(bi, bj); err != nil {
				t.Fatalf("flush acquire (%d,%d): %v", bi, bj, err)
			}
			p.Release(bi, bj)
		}
	}
}

func TestPagerTornWriteDetectedAndDemotable(t *testing.T) {
	src := testTable(40, 8)
	// Every write torn: the spill silently persists half a slot.
	p := newTestPager(t, src, Options{
		Frames: 4,
		Faults: &DiskFaults{Rate: 1, Kinds: []DiskFaultKind{DiskFaultTorn}},
	})
	cells, err := p.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		cells[i] = 7
	}
	if err := p.Complete(0, 0); err != nil {
		t.Fatal(err)
	}
	p.Release(0, 0)
	flushFrames(t, p, [2]int{0, 0})
	_, err = p.Acquire(0, 0)
	var pe *ErrPageCorrupt
	if !errors.As(err, &pe) {
		t.Fatalf("torn final slot paged in without *ErrPageCorrupt: err=%v", err)
	}
	if pe.Pristine {
		t.Fatalf("corruption attributed to the pristine version: %v", pe)
	}
	if pe.Bi != 0 || pe.Bj != 0 {
		t.Fatalf("corrupt block misattributed: %v", pe)
	}
	// The heal primitive: demote to pristine, re-acquire, get input bytes.
	p.Demote(0, 0)
	got, err := p.Acquire(0, 0)
	if err != nil {
		t.Fatalf("acquire after demote: %v", err)
	}
	if !equalCells(got, src.Block(0, 0)) {
		t.Fatal("demoted block did not revert to pristine content")
	}
	st := p.Stats()
	if st.FaultedPages == 0 {
		t.Error("no faulted pages counted for a torn write")
	}
	if st.PageHeals == 0 {
		t.Error("demoting the corrupt block did not count as a page heal")
	}
}

func TestPagerENOSPCDegradesToResident(t *testing.T) {
	src := testTable(40, 8)
	p := newTestPager(t, src, Options{
		Frames: 4,
		Faults: &DiskFaults{Rate: 1, Kinds: []DiskFaultKind{DiskFaultENOSPC}},
	})
	// Complete every block; spills all fail, so finals must stay resident
	// and the set grows past the budget instead of losing data.
	m := src.Blocks()
	for bi := 0; bi < m; bi++ {
		for bj := bi; bj < m; bj++ {
			if _, err := p.Acquire(bi, bj); err != nil {
				t.Fatalf("Acquire(%d,%d): %v", bi, bj, err)
			}
			if err := p.Complete(bi, bj); err != nil {
				t.Fatal(err)
			}
			p.Release(bi, bj)
		}
	}
	st := p.Stats()
	if st.ENOSPCDegradations == 0 {
		t.Fatal("ENOSPC never recorded")
	}
	if got := p.Resident(); got != p.NBlocks() {
		t.Errorf("resident = %d, want all %d blocks held in memory", got, p.NBlocks())
	}
	if st.SpilledBlocks != 0 {
		t.Errorf("blocks reported spilled under total ENOSPC: %d", st.SpilledBlocks)
	}
	// Everything still materializes from the in-memory frames.
	out := tri.NewTiled[float32](src.Len(), src.Tile())
	if err := p.Materialize(out); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
}

func TestPagerHardLimitReturnsErrSpillSpace(t *testing.T) {
	src := testTable(40, 8)
	p := newTestPager(t, src, Options{
		Frames:     2,
		HardFrames: 4,
		Faults:     &DiskFaults{Rate: 1, Kinds: []DiskFaultKind{DiskFaultENOSPC}},
	})
	m := src.Blocks()
	var spaceErr error
	for bi := 0; bi < m && spaceErr == nil; bi++ {
		for bj := bi; bj < m && spaceErr == nil; bj++ {
			_, err := p.Acquire(bi, bj)
			if err != nil {
				spaceErr = err
				break
			}
			if err := p.Complete(bi, bj); err != nil {
				t.Fatal(err)
			}
			p.Release(bi, bj)
		}
	}
	var se *ErrSpillSpace
	if !errors.As(spaceErr, &se) {
		t.Fatalf("hard ceiling under ENOSPC did not surface *ErrSpillSpace: %v", spaceErr)
	}
	if se.Limit != 4 {
		t.Errorf("ErrSpillSpace.Limit = %d, want 4", se.Limit)
	}
}

func TestPagerCommitAndReopenRecoversFinals(t *testing.T) {
	src := testTable(40, 8)
	path := filepath.Join(t.TempDir(), "t.npsp")
	p, err := Create(path, src, Options{Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Finalize (0,0) and (0,1) with known content, spill, commit.
	var want [2][]float32
	for i, b := range [][2]int{{0, 0}, {0, 1}} {
		cells, err := p.Acquire(b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		for k := range cells {
			cells[k] = float32(i*100 + k)
		}
		want[i] = append([]float32(nil), cells...)
		if err := p.Complete(b[0], b[1]); err != nil {
			t.Fatal(err)
		}
		p.Release(b[0], b[1])
	}
	flushFrames(t, p, [2]int{0, 0}, [2]int{0, 1})
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// Simulate a SIGKILL: no Close, no final commit — reopen cold.
	p2, err := Open[float32](path, Options{Frames: 4})
	if err != nil {
		t.Fatalf("Open after simulated kill: %v", err)
	}
	defer p2.Close()
	for i, b := range [][2]int{{0, 0}, {0, 1}} {
		if !p2.IsFinal(b[0], b[1]) {
			t.Fatalf("committed final block (%d,%d) not recovered", b[0], b[1])
		}
		got, err := p2.Acquire(b[0], b[1])
		if err != nil {
			t.Fatalf("acquire recovered block: %v", err)
		}
		if !equalCells(got, want[i]) {
			t.Fatalf("recovered block (%d,%d) content mismatch", b[0], b[1])
		}
		p2.Release(b[0], b[1])
	}
	// A block never committed resumes from pristine.
	if p2.IsFinal(2, 3) {
		t.Error("uncommitted block recovered as final")
	}
	p.Close()
}

func TestPagerOpenRejectsUncommittedTornFinal(t *testing.T) {
	// A final slot written but never index-committed must be invisible
	// after restart: the block resumes from pristine even though region 1
	// holds (possibly torn) bytes.
	src := testTable(40, 8)
	path := filepath.Join(t.TempDir(), "t.npsp")
	p, err := Create(path, src, Options{Frames: 4, CommitEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := p.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		cells[i] = 9
	}
	if err := p.Complete(0, 0); err != nil {
		t.Fatal(err)
	}
	p.Release(0, 0)
	flushFrames(t, p, [2]int{0, 0}) // spills the final slot, but no commit
	p2, err := Open[float32](path, Options{Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.IsFinal(0, 0) {
		t.Fatal("final slot trusted without a committed index record")
	}
	got, err := p2.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !equalCells(got, src.Block(0, 0)) {
		t.Fatal("uncommitted block did not resume from pristine")
	}
	p.Close()
}

func TestPagerStaleTempsSweptAtOpen(t *testing.T) {
	src := testTable(40, 8)
	dir := t.TempDir()
	path := filepath.Join(dir, "t.npsp")
	p, err := Create(path, src, Options{Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	// Orphan a dead-pid temp beside both spill files — what a SIGKILL
	// mid-create or mid-commit leaves behind.
	for _, orphan := range []string{"t.npsp.tmp-p999999-x", "t.npsp.idx.tmp-p999999-x"} {
		if err := os.WriteFile(filepath.Join(dir, orphan), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p2, err := Open[float32](path, Options{Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	p2.Close()
	leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("stale spill temps survived Open: %v", leftovers)
	}
}

func TestPagerMaterializeMatchesSource(t *testing.T) {
	src := testTable(40, 8)
	p := newTestPager(t, src, Options{Frames: 4})
	out := tri.NewTiled[float32](40, 8)
	if err := p.Materialize(out); err != nil {
		t.Fatal(err)
	}
	if !equalCells(out.Cells(), src.Cells()) {
		t.Fatal("materialized table differs from source")
	}
}

func TestPagerOpenRejectsWrongElemWidth(t *testing.T) {
	src := testTable(40, 8)
	path := filepath.Join(t.TempDir(), "t.npsp")
	p, err := Create(path, src, Options{Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := Open[float64](path, Options{Frames: 4}); err == nil {
		t.Fatal("float64 open of a float32 spill file succeeded")
	}
}

func equalCells(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validIndexBytes builds a canonical NPSX stream for the fuzz and
// adversarial suites.
func validIndexBytes(t testing.TB) []byte {
	t.Helper()
	g := spillGeom{N: 40, Tile: 8, Elem: 4, NBlocks: 15}
	var buf bytes.Buffer
	if err := writeIndex(&buf, g, []indexRecord{{ID: 1, CRC: 0xdead}, {ID: 4, CRC: 0xbeef}, {ID: 9, CRC: 0x1234}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIndexRejectsEveryBitFlipAndTruncation(t *testing.T) {
	valid := validIndexBytes(t)
	if _, _, err := readIndex(bytes.NewReader(valid)); err != nil {
		t.Fatalf("canonical index rejected: %v", err)
	}
	// Bit flips at every byte: a single flip must never decode to a
	// different valid index (the CRC or a structural check catches it).
	for i := range valid {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), valid...)
			mut[i] ^= 1 << bit
			if _, _, err := readIndex(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded successfully", i, bit)
			}
		}
	}
	// Truncation at every cut.
	for cut := 0; cut < len(valid); cut++ {
		if _, _, err := readIndex(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
	}
}

func TestIndexRejectsRecordCountBomb(t *testing.T) {
	// A hostile nfinal far beyond the triangle must be rejected before
	// any proportional allocation, not after.
	valid := validIndexBytes(t)
	bomb := append([]byte(nil), valid...)
	// nfinal lives at offset 4+2+2+8+4+4 = 24.
	bomb[24], bomb[25], bomb[26], bomb[27] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := readIndex(bytes.NewReader(bomb)); err == nil {
		t.Fatal("record-count bomb decoded successfully")
	}
}

func TestIndexRejectsReorderedRecords(t *testing.T) {
	g := spillGeom{N: 40, Tile: 8, Elem: 4, NBlocks: 15}
	var buf bytes.Buffer
	// writeIndex trusts the caller's order; hand it a descending pair and
	// fix the CRC by re-writing manually through the same encoder — the
	// reader must still reject on the ordering check.
	if err := writeIndex(&buf, g, []indexRecord{{ID: 4, CRC: 1}, {ID: 1, CRC: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readIndex(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("out-of-order records decoded successfully")
	}
}

// FuzzSpillRoundTrip drives the index reader with arbitrary bytes — the
// adversarial surface a restart trusts — and cross-checks the round
// trip: anything that decodes must re-encode to an identical canonical
// stream, and nothing may panic or over-allocate (the record-count
// bound is load-bearing here).
func FuzzSpillRoundTrip(f *testing.F) {
	f.Add(validIndexBytes(f))
	g := spillGeom{N: 16, Tile: 8, Elem: 4, NBlocks: 3}
	var empty bytes.Buffer
	if err := writeIndex(&empty, g, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte("NPSX"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		geom, records, err := readIndex(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it never panics
		}
		var out bytes.Buffer
		if err := writeIndex(&out, geom, records); err != nil {
			t.Fatalf("decoded index failed to re-encode: %v", err)
		}
		reGeom, reRecords, err := readIndex(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded index rejected: %v", err)
		}
		if reGeom != geom || len(reRecords) != len(records) {
			t.Fatalf("round trip drifted: %+v/%d vs %+v/%d", geom, len(records), reGeom, len(reRecords))
		}
		for i := range records {
			if records[i] != reRecords[i] {
				t.Fatalf("record %d drifted: %+v vs %+v", i, records[i], reRecords[i])
			}
		}
	})
}

func TestRemoveStaleTempsSweepsSpillTemps(t *testing.T) {
	// The satellite contract: the shared sweep covers spill-style stems
	// (data file and index), not just checkpoint temps.
	dir := t.TempDir()
	spill := filepath.Join(dir, "solve.npsp")
	own, err := resilience.CreateOwnedTemp(spill)
	if err != nil {
		t.Fatal(err)
	}
	own.Close()
	dead := filepath.Join(dir, "solve.npsp.tmp-p999999-y")
	if err := os.WriteFile(dead, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	unrelated := filepath.Join(dir, "other.npsp")
	if err := os.WriteFile(unrelated, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := resilience.RemoveStaleTemps(spill)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("removed %d temps, want 2 (own + dead pid)", removed)
	}
	if _, err := os.Stat(unrelated); err != nil {
		t.Errorf("unrelated sibling removed: %v", err)
	}
}
