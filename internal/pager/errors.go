package pager

import "fmt"

// ErrPageCorrupt reports that a block paged in from the spill file does
// not digest to the CRC32C seal recorded for it — a torn write, a bit
// flip at rest, or a read fault the retry could not clear. It is the
// disk-domain twin of *resilience.ErrSealMismatch and is never
// transient: re-reading the same bytes cannot fix them. Recovery depends
// on which version was hit: a corrupt final block is re-derivable (the
// engine demotes the block's dependence cone to pristine and recomputes
// it — sched.Graph.Cone, exactly the in-memory heal discipline), while a
// corrupt pristine block has no earlier version to fall back to and
// fails the solve.
//
//npdplint:watch
type ErrPageCorrupt struct {
	// Bi, Bj are the memory block's tile coordinates.
	Bi, Bj int
	// Pristine reports the corrupt slot was the block's pristine version
	// (unrecoverable) rather than its spilled final version (healable).
	Pristine bool
	// Want is the expected CRC32C; Got is the re-digest of the bytes
	// actually read back.
	Want, Got uint32
	// Err carries the underlying read error when the fault was an I/O
	// failure rather than a digest mismatch.
	Err error
}

// Error names the block, the version hit, and both digests.
func (e *ErrPageCorrupt) Error() string {
	version := "final"
	if e.Pristine {
		version = "pristine"
	}
	if e.Err != nil {
		return fmt.Sprintf("pager: page-in of %s block (%d,%d) failed: %v", version, e.Bi, e.Bj, e.Err)
	}
	return fmt.Sprintf("pager: %s block (%d,%d) corrupt on page-in: expected CRC32C %08x, got %08x",
		version, e.Bi, e.Bj, e.Want, e.Got)
}

// Unwrap exposes the underlying I/O error for errors.Is chains.
func (e *ErrPageCorrupt) Unwrap() error { return e.Err }

// ErrSpillSpace reports that the pager could neither spill (the disk is
// full or failing — every eviction path errored) nor keep growing the
// resident set (the hard in-memory ceiling is reached). It is the typed
// end of the ENOSPC degradation ladder: spill → shrink the working set →
// run fully in memory if the ceiling allows → this failure.
//
//npdplint:watch
type ErrSpillSpace struct {
	// Resident is the resident frame count at failure; Limit is the hard
	// frame ceiling that stopped further growth.
	Resident, Limit int
	// Err is the spill failure that forced residency growth (ENOSPC,
	// EIO), when one was observed.
	Err error
}

// Error names the ceiling and the spill failure behind it.
func (e *ErrSpillSpace) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("pager: cannot spill (%v) and resident set %d reached the hard limit of %d frames", e.Err, e.Resident, e.Limit)
	}
	return fmt.Sprintf("pager: resident set %d reached the hard limit of %d frames with every frame pinned", e.Resident, e.Limit)
}

// Unwrap exposes the spill failure for errors.Is chains.
func (e *ErrSpillSpace) Unwrap() error { return e.Err }
