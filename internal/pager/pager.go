// Package pager is the crash-consistent out-of-core layer: it spills
// cold NDL memory blocks to a CRC-sealed, dual-version spill file so a
// solve streams through a bounded resident set instead of holding the
// whole table — the paper's SPE local-store discipline (a small fast
// memory fed by whole-block transfers, Section IV-A) projected onto the
// RAM/disk boundary. The NDL layout is what makes this work: every
// memory block is contiguous, immutable once its task completes, and
// moves in one large transfer.
//
// Robustness contract: every slot carries the block's CRC32C
// (resilience.BlockCRC — the same digest the in-memory seal layer and
// the cluster wire frames use), the spill index that decides which
// final slots a restart may trust is committed with the atomic
// temp+rename discipline (data fsync ordered first), and every page-in
// re-verifies the digest. Torn writes, bit rot, and EIO therefore
// surface as typed *ErrPageCorrupt for the engine's poisoned-cone heal;
// ENOSPC degrades to a growing in-memory working set; a SIGKILL
// mid-spill leaves a committed index a restart resumes from
// bit-identically.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"syscall"

	"cellnpdp/internal/resilience"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tableio"
	"cellnpdp/internal/tri"
)

// Stats counts the pager's work during one solve. Byte counts cover
// slot payloads plus their CRC trailers — the actual disk traffic the
// cachesim I/O lower bound is compared against.
type Stats struct {
	// SpilledBlocks/SpilledBytes count final-block writes to the spill
	// file (evictions of completed blocks).
	SpilledBlocks, SpilledBytes int64
	// FetchedBlocks/FetchedBytes count final-block page-ins.
	FetchedBlocks, FetchedBytes int64
	// PristineReads/PristineBytes count pristine-version page-ins (cold
	// first touches and post-heal refetches).
	PristineReads, PristineBytes int64
	// Evictions counts frames reclaimed (spilled or dropped clean).
	Evictions int64
	// FaultedPages counts failed page-in attempts: injected or real read
	// errors plus digest mismatches (torn writes, bit rot).
	FaultedPages int64
	// PageHeals counts recoveries from those faults: read retries that
	// verified, plus corrupt final blocks demoted back to pristine for
	// cone recompute.
	PageHeals int64
	// ENOSPCDegradations counts spill writes abandoned for lack of disk
	// space; after the first the pager stops spilling and degrades to a
	// growing in-memory working set.
	ENOSPCDegradations int64
	// SpillErrors counts non-ENOSPC spill-write failures (EIO); the
	// block stays resident and the eviction is retried later.
	SpillErrors int64
	// Commits counts index publications (temp+rename renames).
	Commits int64
	// ResidentPeak is the maximum resident frame count observed;
	// OverBudget counts frames allocated past the configured budget
	// because every in-budget frame was pinned or unspillable.
	ResidentPeak, OverBudget int64
}

// Health is the /healthz view of the counters, keyed the way the serve
// layer exports them.
func (s Stats) Health() map[string]any {
	return map[string]any{
		"spilled_blocks":      s.SpilledBlocks,
		"spilled_bytes":       s.SpilledBytes,
		"fetched_blocks":      s.FetchedBlocks,
		"fetched_bytes":       s.FetchedBytes,
		"pristine_reads":      s.PristineReads,
		"faulted_pages":       s.FaultedPages,
		"page_heals":          s.PageHeals,
		"enospc_degradations": s.ENOSPCDegradations,
		"evictions":           s.Evictions,
		"commits":             s.Commits,
		"resident_peak":       s.ResidentPeak,
		"over_budget":         s.OverBudget,
	}
}

// DiskBytes is the total spill traffic in both directions — the
// achieved figure reported against the cachesim I/O lower bound.
func (s Stats) DiskBytes() int64 {
	return s.SpilledBytes + s.FetchedBytes + s.PristineBytes
}

// Options configures a Pager.
type Options struct {
	// Frames is the resident-set budget in frames (one frame = one
	// tile×tile block). The budget is soft: when every in-budget frame
	// is pinned or unspillable the pager allocates past it (counted in
	// Stats.OverBudget) rather than deadlock. Values below the floor of
	// 4 are clamped.
	Frames int
	// HardFrames, when positive, is the absolute resident ceiling: if
	// degradation (pins, ENOSPC no-spill mode) would grow the resident
	// set past it, the pager fails with *ErrSpillSpace instead. 0 means
	// unlimited (degrade all the way to fully in-memory).
	HardFrames int
	// CommitEvery is the index-commit period in spilled blocks; 0 means
	// 16. Commit() and Close() always publish regardless.
	CommitEvery int
	// Faults, when non-nil, is the deterministic disk-fault injector.
	Faults *DiskFaults
	// Logf, when non-nil, receives operational messages (degradations,
	// retried faults). Nil is silent; counters still record everything.
	Logf func(format string, args ...any)
}

// Pager pages one triangular table's memory blocks between a bounded
// in-RAM frame set and the dual-version spill file. All methods are
// safe for concurrent use.
//
// Block life cycle: a block faults in from its pristine slot, is pinned
// (Acquire) while a task reads or computes it, and becomes final
// (Complete) when its computing task finishes — final blocks are
// immutable, which is what makes spill-once-on-eviction sound. Eviction
// takes the least-recently-used unpinned frame: clean blocks drop
// (pristine is already on disk), final blocks spill to their final slot
// first. Pinning is the dependence-cone guard: the engine pins a task's
// stage-1 operands before dispatch, so the wavefront's working set can
// never be evicted under it.
type Pager[E semiring.Elem] struct {
	mu sync.Mutex

	f        *os.File
	path     string
	idxPath  string
	geom     spillGeom
	m        int // blocks per side
	opts     Options
	frames   map[int]*frameOf[E]
	final    []bool
	spilled  []bool
	crc      []uint32
	corrupt  map[int]bool
	noSpill  bool // sticky ENOSPC degradation: stop spilling, grow resident
	tick     uint64
	sinceCmt int
	closed   bool
	stats    Stats
	prefetch chan struct{} // limits in-flight async prefetches (double buffer)

	// lastSpillErr is the most recent spill failure, carried into an
	// *ErrSpillSpace if degradation later hits the hard ceiling.
	lastSpillErr error
}

// frameOf is one resident block's frame.
type frameOf[E semiring.Elem] struct {
	cells   []E
	pins    int
	lastUse uint64
}

const (
	minFrames          = 4
	defaultCommitEvery = 16
	prefetchSlots      = 2 // the cellsim double-buffer depth
	pageInRetries      = 1 // re-reads before declaring a page corrupt
	regionPristine     = 0
	regionFinal        = 1
)

// Create builds a fresh spill file at path from the source table and
// returns a pager over it: the header and every block's pristine slot
// are written through a pid-tagged temp and atomically renamed into
// place (a crash mid-create leaves only a sweepable temp, never a
// half-valid spill file), then an empty index is committed beside it at
// `<path>.idx`. Stale temps of crashed predecessors are swept first.
// The source table is not retained — callers drop it so the solve's
// footprint is the frame budget, not the table.
func Create[E semiring.Elem](path string, src *tri.Tiled[E], opts Options) (*Pager[E], error) {
	var e E
	g := spillGeom{
		N:       src.Len(),
		Tile:    src.Tile(),
		Elem:    tableio.ElemWidth(e),
		NBlocks: src.Blocks() * (src.Blocks() + 1) / 2,
	}
	if err := g.check(); err != nil {
		return nil, err
	}
	idxPath := path + ".idx"
	for _, target := range []string{path, idxPath} {
		if _, err := resilience.RemoveStaleTemps(target); err != nil {
			return nil, err
		}
	}
	tmp, err := resilience.CreateOwnedTemp(path)
	if err != nil {
		return nil, fmt.Errorf("pager: creating spill temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := writePristineRegion(tmp, g, src); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return nil, fmt.Errorf("pager: syncing spill file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return nil, fmt.Errorf("pager: closing spill file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return nil, fmt.Errorf("pager: publishing spill file: %w", err)
	}
	if err := commitIndex(idxPath, g, nil); err != nil {
		return nil, err
	}
	return newPager[E](path, idxPath, g, nil, opts)
}

// writePristineRegion lays out the full (sparse) file and writes every
// block's pristine slot with its CRC trailer. Create-time writes bypass
// the fault injector: the injector models the solve's spill traffic,
// and a faulted create would just fail the rename-protected setup.
func writePristineRegion[E semiring.Elem](f *os.File, g spillGeom, src *tri.Tiled[E]) error {
	if err := f.Truncate(g.fileSize()); err != nil {
		return fmt.Errorf("pager: sizing spill file: %w", err)
	}
	if _, err := f.WriteAt(encodeSpillHeader(g), 0); err != nil {
		return fmt.Errorf("pager: writing spill header: %w", err)
	}
	m := src.Blocks()
	buf := make([]byte, g.slotBytes())
	for bi := 0; bi < m; bi++ {
		for bj := bi; bj < m; bj++ {
			id := src.BlockID(bi, bj)
			encodeSlot(src.Block(bi, bj), buf, g.Elem)
			if _, err := f.WriteAt(buf, g.slotOff(regionPristine, id)); err != nil {
				return fmt.Errorf("pager: writing pristine block (%d,%d): %w", bi, bj, err)
			}
		}
	}
	return nil
}

// Open resumes a pager over an existing spill file: the data header is
// validated (magic, version, element width, geometry plausibility,
// header CRC, file size), stale temps are swept, and the committed
// index — if one exists — decides which final slots are trusted. Blocks
// the index does not cover resume from pristine and are recomputed;
// their final slots may hold torn bytes from the crashed run, which is
// fine because nothing ever reads an uncommitted final slot.
func Open[E semiring.Elem](path string, opts Options) (*Pager[E], error) {
	idxPath := path + ".idx"
	for _, target := range []string{path, idxPath} {
		if _, err := resilience.RemoveStaleTemps(target); err != nil {
			return nil, err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pager: opening spill file: %w", err)
	}
	g, err := decodeSpillHeader(f)
	if closeErr := f.Close(); err == nil && closeErr != nil {
		err = fmt.Errorf("pager: closing spill file: %w", closeErr)
	}
	if err != nil {
		return nil, err
	}
	var e E
	if got, want := g.Elem, tableio.ElemWidth(e); got != want {
		return nil, fmt.Errorf("pager: spill file holds %d-byte elements, requested type has %d", got, want)
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("pager: sizing spill file: %w", err)
	}
	if st.Size() != g.fileSize() {
		return nil, fmt.Errorf("pager: spill file is %d bytes, geometry requires %d", st.Size(), g.fileSize())
	}
	ig, records, haveIdx, err := loadIndex(idxPath)
	if err != nil {
		return nil, err
	}
	if haveIdx && ig != g {
		return nil, fmt.Errorf("pager: index geometry n=%d tile=%d does not match spill file n=%d tile=%d",
			ig.N, ig.Tile, g.N, g.Tile)
	}
	return newPager[E](path, idxPath, g, records, opts)
}

// newPager opens the data file read-write and builds the runtime state.
func newPager[E semiring.Elem](path, idxPath string, g spillGeom, records []indexRecord, opts Options) (*Pager[E], error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("pager: opening spill file: %w", err)
	}
	if opts.Frames < minFrames {
		opts.Frames = minFrames
	}
	if opts.CommitEvery <= 0 {
		opts.CommitEvery = defaultCommitEvery
	}
	p := &Pager[E]{
		f:        f,
		path:     path,
		idxPath:  idxPath,
		geom:     g,
		m:        (g.N + g.Tile - 1) / g.Tile,
		opts:     opts,
		frames:   make(map[int]*frameOf[E]),
		final:    make([]bool, g.NBlocks),
		spilled:  make([]bool, g.NBlocks),
		crc:      make([]uint32, g.NBlocks),
		corrupt:  make(map[int]bool),
		prefetch: make(chan struct{}, prefetchSlots),
	}
	for _, rec := range records {
		p.final[rec.ID] = true
		p.spilled[rec.ID] = true
		p.crc[rec.ID] = rec.CRC
	}
	return p, nil
}

// Len returns the logical problem size; Tile the block side in cells;
// Blocks the tiles per side; NBlocks the dense block count.
func (p *Pager[E]) Len() int     { return p.geom.N }
func (p *Pager[E]) Tile() int    { return p.geom.Tile }
func (p *Pager[E]) Blocks() int  { return p.m }
func (p *Pager[E]) NBlocks() int { return p.geom.NBlocks }

// Path returns the spill data file path; IndexPath the index beside it.
func (p *Pager[E]) Path() string      { return p.path }
func (p *Pager[E]) IndexPath() string { return p.idxPath }

// blockID maps tile coordinates to the dense upper-triangle index —
// the same row-major-over-the-triangle order tri.Tiled.BlockID uses.
func (p *Pager[E]) blockID(bi, bj int) int {
	if bi < 0 || bj < bi || bj >= p.m {
		panic(fmt.Sprintf("pager: block (%d,%d) outside upper triangle of %d tiles", bi, bj, p.m))
	}
	return bi*p.m - bi*(bi-1)/2 + (bj - bi)
}

// Acquire faults block (bi, bj) into a resident frame, pins it, and
// returns its cells. The caller must Release exactly once per Acquire.
// A final block that fails its digest check (after one retry) is
// reported as *ErrPageCorrupt for the engine's cone heal; a pristine
// block that fails has no earlier version and is unrecoverable.
func (p *Pager[E]) Acquire(bi, bj int) ([]E, error) {
	id := p.blockID(bi, bj)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("pager: acquire on closed pager")
	}
	if fr, ok := p.frames[id]; ok {
		fr.pins++
		p.tick++
		fr.lastUse = p.tick
		return fr.cells, nil
	}
	cells, err := p.readBlockLocked(id, bi, bj)
	if err != nil {
		return nil, err
	}
	fr, err := p.installLocked(id, cells)
	if err != nil {
		return nil, err
	}
	fr.pins++
	return fr.cells, nil
}

// Release unpins block (bi, bj), making its frame evictable again once
// the pin count reaches zero.
func (p *Pager[E]) Release(bi, bj int) {
	id := p.blockID(bi, bj)
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr, ok := p.frames[id]; ok && fr.pins > 0 {
		fr.pins--
	}
}

// Complete marks block (bi, bj) final: its computing task finished, the
// content is immutable from here on, and its CRC32C becomes the block's
// seal — the digest every later spill, page-in, and index record is
// checked against. The block must be resident and pinned (the engine
// calls Complete before releasing the block it just computed).
func (p *Pager[E]) Complete(bi, bj int) error {
	id := p.blockID(bi, bj)
	p.mu.Lock()
	defer p.mu.Unlock()
	fr, ok := p.frames[id]
	if !ok || fr.pins == 0 {
		return fmt.Errorf("pager: Complete(%d,%d) on a block that is not resident and pinned", bi, bj)
	}
	p.final[id] = true
	p.spilled[id] = false
	p.crc[id] = resilience.BlockCRC(fr.cells)
	return nil
}

// IsFinal reports whether block (bi, bj) holds its final content —
// either computed this run or recovered from the committed index.
func (p *Pager[E]) IsFinal(bi, bj int) bool {
	id := p.blockID(bi, bj)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.final[id]
}

// Demote reverts block (bi, bj) to its pristine version: the frame is
// dropped and the final mark cleared, so the next Acquire re-reads the
// pristine slot. This is the heal primitive — the engine demotes a
// corrupt block's whole dependence cone (sched.Graph.Cone) and re-runs
// those tasks, exactly the in-memory poisoned-cone discipline. Demoting
// the block that faulted counts as a page heal.
func (p *Pager[E]) Demote(bi, bj int) {
	id := p.blockID(bi, bj)
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.frames, id)
	p.final[id] = false
	p.spilled[id] = false
	p.crc[id] = 0
	if p.corrupt[id] {
		delete(p.corrupt, id)
		p.stats.PageHeals++
	}
}

// Prefetch starts an asynchronous page-in of block (bi, bj) without
// pinning it — the disk half of the cellsim double-buffer discipline
// (compute block k while block k+1 streams in). At most two prefetches
// are in flight; extras and already-resident blocks are no-ops. A
// prefetch that faults is silently dropped: the eventual Acquire
// re-reads synchronously and surfaces the typed error.
func (p *Pager[E]) Prefetch(bi, bj int) {
	select {
	case p.prefetch <- struct{}{}:
	default:
		return // both buffers busy; the Acquire will fault it in
	}
	go func() {
		defer func() { <-p.prefetch }()
		id := p.blockID(bi, bj)
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.closed {
			return
		}
		if _, ok := p.frames[id]; ok {
			return
		}
		cells, err := p.readBlockLocked(id, bi, bj)
		if err != nil {
			return // Acquire retries and reports
		}
		// Ignoring the install error is safe for the same reason: a
		// hard-limit failure will recur at Acquire time, typed.
		if _, err := p.installLocked(id, cells); err != nil && p.opts.Logf != nil {
			p.opts.Logf("pager: prefetch of block (%d,%d) dropped: %v", bi, bj, err)
		}
	}()
}

// installLocked places cells into a frame for id, evicting to stay
// within the budget. Caller holds p.mu.
func (p *Pager[E]) installLocked(id int, cells []E) (*frameOf[E], error) {
	if err := p.makeRoomLocked(); err != nil {
		return nil, err
	}
	if len(p.frames) >= p.opts.Frames {
		p.stats.OverBudget++
	}
	p.tick++
	fr := &frameOf[E]{cells: cells, lastUse: p.tick}
	p.frames[id] = fr
	if n := int64(len(p.frames)); n > p.stats.ResidentPeak {
		p.stats.ResidentPeak = n
	}
	return fr, nil
}

// makeRoomLocked evicts least-recently-used unpinned frames until the
// resident count is under budget. When nothing is evictable (all
// pinned, or final blocks that cannot spill in no-spill mode) the
// resident set grows past the budget — the graceful-degradation tier —
// unless the hard ceiling says otherwise. Caller holds p.mu.
func (p *Pager[E]) makeRoomLocked() error {
	for len(p.frames) >= p.opts.Frames {
		victim := -1
		var oldest uint64
		for id, fr := range p.frames {
			if fr.pins > 0 {
				continue
			}
			if p.final[id] && !p.spilled[id] && p.noSpill {
				continue // unspillable under ENOSPC degradation
			}
			if victim < 0 || fr.lastUse < oldest {
				victim, oldest = id, fr.lastUse
			}
		}
		if victim < 0 {
			break // nothing evictable: degrade by growing the resident set
		}
		if !p.evictLocked(victim) {
			break // spill failed; the block must stay resident
		}
	}
	if p.opts.HardFrames > 0 && len(p.frames) >= p.opts.HardFrames {
		return &ErrSpillSpace{Resident: len(p.frames), Limit: p.opts.HardFrames, Err: p.lastSpillErr}
	}
	return nil
}

// evictLocked reclaims one frame, spilling a final block's content to
// its final slot first. Returns false when the block could not be
// evicted (its spill failed) — the caller then stops evicting and lets
// the resident set grow. Caller holds p.mu.
func (p *Pager[E]) evictLocked(id int) bool {
	fr := p.frames[id]
	if p.final[id] && !p.spilled[id] {
		if p.noSpill || !p.spillLocked(id, fr.cells) {
			return false
		}
	}
	delete(p.frames, id)
	p.stats.Evictions++
	return true
}

// spillLocked writes block id's final slot (payload + CRC trailer) and
// marks it spilled. ENOSPC flips the sticky no-spill degradation; EIO
// leaves the block resident for a later retry. Caller holds p.mu.
func (p *Pager[E]) spillLocked(id int, cells []E) bool {
	buf := make([]byte, p.geom.slotBytes())
	encodeSlot(cells, buf, p.geom.Elem)
	var err error
	if p.opts.Faults != nil {
		_, err = p.opts.Faults.writeAt(p.f, buf, p.geom.slotOff(regionFinal, id))
	} else {
		_, err = p.f.WriteAt(buf, p.geom.slotOff(regionFinal, id))
	}
	if err != nil {
		p.lastSpillErr = err
		if isNoSpace(err) {
			p.noSpill = true
			p.stats.ENOSPCDegradations++
			if p.opts.Logf != nil {
				p.opts.Logf("pager: spill of block %d failed (%v); degrading to in-memory working set", id, err)
			}
		} else {
			p.stats.SpillErrors++
			if p.opts.Logf != nil {
				p.opts.Logf("pager: spill of block %d failed (%v); keeping it resident", id, err)
			}
		}
		return false
	}
	p.spilled[id] = true
	p.stats.SpilledBlocks++
	p.stats.SpilledBytes += int64(len(buf))
	if p.sinceCmt++; p.sinceCmt >= p.opts.CommitEvery {
		p.sinceCmt = 0
		if err := p.commitLocked(); err != nil && p.opts.Logf != nil {
			// A failed periodic commit is not fatal mid-solve: the
			// previous committed index stays valid, only resume coverage
			// shrinks. Close() surfaces a final commit failure.
			p.opts.Logf("pager: periodic index commit failed: %v", err)
		}
	}
	return true
}

// readBlockLocked reads block id's authoritative version from disk —
// the final slot when one is trusted, the pristine slot otherwise —
// verifying the CRC trailer (and, for final blocks, the recorded seal)
// with one retry. Caller holds p.mu.
func (p *Pager[E]) readBlockLocked(id, bi, bj int) ([]E, error) {
	region, want := regionPristine, uint32(0)
	sealed := false
	if p.final[id] && p.spilled[id] {
		region, want, sealed = regionFinal, p.crc[id], true
	}
	buf := make([]byte, p.geom.slotBytes())
	off := p.geom.slotOff(region, id)
	var lastErr error
	for attempt := 0; attempt <= pageInRetries; attempt++ {
		var err error
		if p.opts.Faults != nil {
			_, err = p.opts.Faults.readAt(p.f, buf, off)
		} else {
			_, err = p.f.ReadAt(buf, off)
		}
		if err != nil {
			p.stats.FaultedPages++
			lastErr = err
			continue
		}
		cells, got, ok := decodeSlot[E](buf, p.geom)
		if ok && (!sealed || got == want) {
			if attempt > 0 {
				p.stats.PageHeals++ // a retry recovered the page
			}
			p.countReadLocked(region, len(buf))
			return cells, nil
		}
		p.stats.FaultedPages++
		lastErr = &ErrPageCorrupt{Bi: bi, Bj: bj, Pristine: region == regionPristine, Want: want, Got: got}
		if !sealed {
			// The pristine trailer is self-describing; report it.
			lastErr.(*ErrPageCorrupt).Want = trailerCRC(buf)
		}
	}
	if pe, ok := lastErr.(*ErrPageCorrupt); ok {
		p.corrupt[id] = true
		return nil, pe
	}
	p.corrupt[id] = true
	return nil, &ErrPageCorrupt{Bi: bi, Bj: bj, Pristine: region == regionPristine, Err: lastErr}
}

// countReadLocked attributes one successful page-in to its region.
func (p *Pager[E]) countReadLocked(region, nbytes int) {
	if region == regionFinal {
		p.stats.FetchedBlocks++
		p.stats.FetchedBytes += int64(nbytes)
	} else {
		p.stats.PristineReads++
		p.stats.PristineBytes += int64(nbytes)
	}
}

// Commit fsyncs the data file and atomically publishes the index of
// every spilled final block — the durability point a restart resumes
// from. The data sync is ordered before the index rename, so a
// committed record never trusts unsynced bytes.
func (p *Pager[E]) Commit() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.commitLocked()
}

// commitLocked is Commit's body; caller holds p.mu.
func (p *Pager[E]) commitLocked() error {
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("pager: syncing spill file: %w", err)
	}
	var records []indexRecord
	for id := 0; id < p.geom.NBlocks; id++ {
		if p.final[id] && p.spilled[id] {
			records = append(records, indexRecord{ID: id, CRC: p.crc[id]})
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].ID < records[j].ID })
	if err := commitIndex(p.idxPath, p.geom, records); err != nil {
		return err
	}
	p.stats.Commits++
	return nil
}

// Materialize copies every block's current content — resident frames
// first, otherwise the authoritative disk version — into dst, which
// must have the pager's geometry. It is how a finished solve's table
// leaves the pager.
func (p *Pager[E]) Materialize(dst *tri.Tiled[E]) error {
	if dst.Len() != p.geom.N || dst.Tile() != p.geom.Tile {
		return fmt.Errorf("pager: cannot materialize (n=%d tile=%d) into table (n=%d tile=%d)",
			p.geom.N, p.geom.Tile, dst.Len(), dst.Tile())
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for bi := 0; bi < p.m; bi++ {
		for bj := bi; bj < p.m; bj++ {
			id := p.blockID(bi, bj)
			if fr, ok := p.frames[id]; ok {
				copy(dst.Block(bi, bj), fr.cells)
				continue
			}
			cells, err := p.readBlockLocked(id, bi, bj)
			if err != nil {
				return err
			}
			copy(dst.Block(bi, bj), cells)
		}
	}
	return nil
}

// Resident returns the current resident frame count.
func (p *Pager[E]) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Stats returns a snapshot of the counters.
func (p *Pager[E]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close flushes resident final blocks to their spill slots, commits the
// index one last time, and closes the spill file. The files stay on
// disk — they are the resume state; callers that do not want resume
// delete them. Flush failures (a disk in ENOSPC degradation) are not
// errors: those blocks simply resume from pristine, which is correct,
// just slower.
func (p *Pager[E]) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	for id, fr := range p.frames {
		if p.noSpill {
			break
		}
		if p.final[id] && !p.spilled[id] && fr.pins == 0 {
			p.spillLocked(id, fr.cells)
		}
	}
	err := p.commitLocked()
	if closeErr := p.f.Close(); err == nil && closeErr != nil {
		err = fmt.Errorf("pager: closing spill file: %w", closeErr)
	}
	return err
}

// Remove deletes the spill data file and index — the cleanup for solves
// that do not keep resume state. Call after Close.
func (p *Pager[E]) Remove() error {
	var first error
	for _, path := range []string{p.path, p.idxPath} {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}

// encodeSlot serializes cells little-endian at their element width and
// appends the CRC32C trailer.
func encodeSlot[E semiring.Elem](cells []E, buf []byte, width int) {
	for i, v := range cells {
		tableio.PutElem(buf[i*width:], v)
	}
	payload := len(cells) * width
	putTrailer(buf[payload:], resilience.BlockCRC(cells))
}

// decodeSlot deserializes a slot and verifies its trailer; got is the
// content digest regardless of match.
func decodeSlot[E semiring.Elem](buf []byte, g spillGeom) (cells []E, got uint32, ok bool) {
	n := g.Tile * g.Tile
	cells = make([]E, n)
	for i := 0; i < n; i++ {
		cells[i] = tableio.GetElem[E](buf[i*g.Elem:])
	}
	got = resilience.BlockCRC(cells)
	return cells, got, got == trailerCRC(buf)
}

// trailerCRC reads a slot's 4-byte CRC32C trailer; putTrailer writes it.
func trailerCRC(slot []byte) uint32 {
	return binary.LittleEndian.Uint32(slot[len(slot)-4:])
}

func putTrailer(trailer []byte, crc uint32) {
	binary.LittleEndian.PutUint32(trailer, crc)
}

// isNoSpace reports whether a spill failure is a disk-space exhaustion
// (ENOSPC or EDQUOT) — the fault that flips the sticky in-memory
// degradation, as opposed to an EIO worth retrying later.
func isNoSpace(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}
