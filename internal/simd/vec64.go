package simd

import "math"

// F64x2 is a 128-bit register holding two double-precision lanes. The SPU
// executes two 64-bit operations per instruction (Section II-C), which is
// the first of the three reasons Section VI-A.5 gives for the much lower
// double-precision performance.
type F64x2 [2]float64

// Mask2 is the result of a two-lane compare: all-ones or all-zeros bit
// patterns per 64-bit lane, consumed bitwise by SelF64.
type Mask2 [2]uint64

// LoadF64 emulates a quadword load of two consecutive doubles.
func LoadF64(src []float64) F64x2 {
	_ = src[1]
	return F64x2{src[0], src[1]}
}

// StoreF64 emulates a quadword store of v to dst[0..1].
func StoreF64(dst []float64, v F64x2) {
	_ = dst[1]
	dst[0], dst[1] = v[0], v[1]
}

// SplatF64 replicates lane `lane` of v across both lanes.
func SplatF64(v F64x2, lane int) F64x2 {
	x := v[lane]
	return F64x2{x, x}
}

// AddF64 emulates the two-lane floating add.
func AddF64(a, b F64x2) F64x2 {
	return F64x2{a[0] + b[0], a[1] + b[1]}
}

// CmpGtF64 marks the lanes where a > b with all-ones patterns.
func CmpGtF64(a, b F64x2) Mask2 {
	var m Mask2
	for l := 0; l < 2; l++ {
		if a[l] > b[l] {
			m[l] = 0xFFFFFFFFFFFFFFFF
		}
	}
	return m
}

// SelF64 emulates selb on 64-bit lanes: (a &^ m) | (b & m) bitwise.
func SelF64(a, b F64x2, m Mask2) F64x2 {
	var r F64x2
	for l := 0; l < 2; l++ {
		bits := (math.Float64bits(a[l]) &^ m[l]) | (math.Float64bits(b[l]) & m[l])
		r[l] = math.Float64frombits(bits)
	}
	return r
}

// MinF64 is the fused cmp+sel idiom.
func MinF64(a, b F64x2) F64x2 {
	r := a
	for l := 0; l < 2; l++ {
		if b[l] < r[l] {
			r[l] = b[l]
		}
	}
	return r
}
