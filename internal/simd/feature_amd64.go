//go:build amd64

package simd

// AVX2 detection per the Intel SDM: the OS must have enabled XMM+YMM
// state saving (CPUID.1:ECX.OSXSAVE, then XCR0 bits 1 and 2 via XGETBV)
// before CPUID.(EAX=7,ECX=0):EBX.AVX2 means the instructions are safe to
// execute. GOAMD64=v1 binaries still run the detection — the kernels are
// hand assembly, not compiler-generated, so the microarchitecture level
// the Go compiler targets is irrelevant to them.

const vectorISAName = "avx2"

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv executes XGETBV with ECX=0 (reads XCR0).
func xgetbv() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return
	}
	xcr0, _ := xgetbv()
	const xmmYmm = 0x6 // XCR0[1] (SSE state) and XCR0[2] (AVX state)
	if xcr0&xmmYmm != xmmYmm {
		return
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	hasVector = ebx7&avx2 != 0
}
