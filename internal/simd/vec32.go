package simd

import "math"

// F32x4 is a 128-bit register holding four single-precision lanes.
type F32x4 [4]float32

// Mask4 is the result of a four-lane compare, represented exactly as the
// SPU produces it: each lane is all-ones (0xFFFFFFFF) where the predicate
// held and all-zeros where it did not. Select consumes it bitwise, like
// the selb instruction.
type Mask4 [4]uint32

// LoadF32 emulates a quadword load of four consecutive floats starting at
// src[0]. It panics (like a misaligned SPU access traps) if src is
// shorter than four lanes.
func LoadF32(src []float32) F32x4 {
	_ = src[3]
	return F32x4{src[0], src[1], src[2], src[3]}
}

// StoreF32 emulates a quadword store of v to dst[0..3].
func StoreF32(dst []float32, v F32x4) {
	_ = dst[3]
	dst[0], dst[1], dst[2], dst[3] = v[0], v[1], v[2], v[3]
}

// SplatF32 emulates the shuffle that replicates lane `lane` of v across
// all four lanes — the paper's step 4, V4 = shuffle(V3, mask).
func SplatF32(v F32x4, lane int) F32x4 {
	x := v[lane]
	return F32x4{x, x, x, x}
}

// AddF32 emulates the four-lane floating add.
func AddF32(a, b F32x4) F32x4 {
	return F32x4{a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]}
}

// CmpGtF32 emulates fcgt, the four-lane compare-greater-than: lanes where
// a > b become 0xFFFFFFFF, others 0. The SPU has no minimum instruction;
// the kernel pairs this with SelF32 to pick minima (Section IV-A).
func CmpGtF32(a, b F32x4) Mask4 {
	var m Mask4
	for l := 0; l < 4; l++ {
		if a[l] > b[l] {
			m[l] = 0xFFFFFFFF
		}
	}
	return m
}

// SelF32 emulates selb, the bitwise select: result = (a &^ m) | (b & m)
// per lane, operating on the raw bit patterns.
func SelF32(a, b F32x4, m Mask4) F32x4 {
	var r F32x4
	for l := 0; l < 4; l++ {
		bits := (math.Float32bits(a[l]) &^ m[l]) | (math.Float32bits(b[l]) & m[l])
		r[l] = math.Float32frombits(bits)
	}
	return r
}

// MinF32 is the cmp+sel idiom fused, for reference implementations that
// do not track per-instruction counts.
func MinF32(a, b F32x4) F32x4 {
	r := a
	for l := 0; l < 4; l++ {
		if b[l] < r[l] {
			r[l] = b[l]
		}
	}
	return r
}
