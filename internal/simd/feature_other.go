//go:build !amd64 && !arm64

package simd

// No hand-written vector kernels exist for this GOARCH; the dispatchers
// always take the pure-Go fallback.

const vectorISAName = "none"
