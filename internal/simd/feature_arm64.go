//go:build arm64

package simd

// Advanced SIMD (NEON) is a mandatory part of the AArch64 base profile
// Go targets, so there is nothing to probe: every arm64 host the binary
// can run on has the 4-lane single-precision datapath the NEON kernels
// use. The forced-fallback switch in feature.go still applies.

const vectorISAName = "neon"

func init() {
	hasVector = true
}
