package simd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mathFloat32bits(f float32) uint32 { return math.Float32bits(f) }

func TestLoadStoreF32(t *testing.T) {
	src := []float32{1, 2, 3, 4, 5}
	v := LoadF32(src)
	dst := make([]float32, 4)
	StoreF32(dst, v)
	for i := 0; i < 4; i++ {
		if dst[i] != src[i] {
			t.Fatalf("lane %d: %v != %v", i, dst[i], src[i])
		}
	}
}

func TestLoadF32PanicsShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LoadF32 accepted a 3-lane slice")
		}
	}()
	LoadF32([]float32{1, 2, 3})
}

func TestSplatF32(t *testing.T) {
	v := F32x4{10, 20, 30, 40}
	for lane := 0; lane < 4; lane++ {
		s := SplatF32(v, lane)
		for i := 0; i < 4; i++ {
			if s[i] != v[lane] {
				t.Errorf("SplatF32 lane %d broadcast wrong: %v", lane, s)
			}
		}
	}
}

func TestCmpSelIsMin(t *testing.T) {
	// The paper's cmp+sel idiom must compute the lane-wise minimum.
	if err := quick.Check(func(a, b [4]float32) bool {
		va, vb := F32x4(a), F32x4(b)
		m := CmpGtF32(va, vb)
		sel := SelF32(va, vb, m)
		min := MinF32(va, vb)
		return sel == min
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestAddF32(t *testing.T) {
	got := AddF32(F32x4{1, 2, 3, 4}, F32x4{10, 20, 30, 40})
	if got != (F32x4{11, 22, 33, 44}) {
		t.Errorf("AddF32 = %v", got)
	}
}

func TestF64Ops(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		a := F64x2{rng.Float64(), rng.Float64()}
		b := F64x2{rng.Float64(), rng.Float64()}
		if got := SelF64(a, b, CmpGtF64(a, b)); got != MinF64(a, b) {
			t.Fatalf("cmp+sel != min for %v, %v", a, b)
		}
		sum := AddF64(a, b)
		if sum[0] != a[0]+b[0] || sum[1] != a[1]+b[1] {
			t.Fatalf("AddF64 wrong")
		}
	}
	v := F64x2{7, 9}
	if SplatF64(v, 0) != (F64x2{7, 7}) || SplatF64(v, 1) != (F64x2{9, 9}) {
		t.Error("SplatF64 broadcast wrong")
	}
	dst := make([]float64, 2)
	StoreF64(dst, LoadF64([]float64{3, 4}))
	if dst[0] != 3 || dst[1] != 4 {
		t.Error("F64 load/store round trip failed")
	}
}

func TestCounts(t *testing.T) {
	var c Counts
	c.Add(OpLoad, 12)
	c.Add(OpAdd, 16)
	c.Add(OpAdd, 4)
	if c.Get(OpLoad) != 12 || c.Get(OpAdd) != 20 {
		t.Errorf("Get wrong: %+v", c)
	}
	if c.Total() != 32 {
		t.Errorf("Total = %d", c.Total())
	}
	var d Counts
	d.Add(OpSel, 5)
	c.Merge(&d)
	if c.Get(OpSel) != 5 || c.Total() != 37 {
		t.Errorf("Merge wrong: %+v", c)
	}
	c.Reset()
	if c.Total() != 0 {
		t.Error("Reset did not zero")
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		OpLoad: "Load", OpStore: "Store", OpShuffle: "Shuffle",
		OpAdd: "Add", OpCmp: "Cmp", OpSel: "Sel",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if Op(99).String() != "Op(?)" {
		t.Error("unknown op String")
	}
}

func TestMaskBitPatterns(t *testing.T) {
	m := CmpGtF32(F32x4{2, 1, 5, 0}, F32x4{1, 2, 5, -1})
	want := Mask4{0xFFFFFFFF, 0, 0, 0xFFFFFFFF}
	if m != want {
		t.Errorf("CmpGtF32 mask = %x, want %x", m, want)
	}
	m64 := CmpGtF64(F64x2{1, 0}, F64x2{0, 1})
	if m64 != (Mask2{0xFFFFFFFFFFFFFFFF, 0}) {
		t.Errorf("CmpGtF64 mask = %x", m64)
	}
}

func TestSelIsBitwise(t *testing.T) {
	// A partial mask (never produced by compares, but selb is bitwise)
	// must merge bit patterns, proving the emulation is not a branch.
	a := F32x4{1, 1, 1, 1}
	b := F32x4{2, 2, 2, 2}
	m := Mask4{0xFFFF0000, 0, 0xFFFFFFFF, 0}
	r := SelF32(a, b, m)
	if r[2] != 2 || r[3] != 1 {
		t.Errorf("full/zero lanes wrong: %v", r)
	}
	// Lane 0 mixes the high half of 2.0f with the low half of 1.0f.
	wantBits := (mathFloat32bits(1) &^ 0xFFFF0000) | (mathFloat32bits(2) & 0xFFFF0000)
	if mathFloat32bits(r[0]) != wantBits {
		t.Errorf("bitwise merge wrong: %08x vs %08x", mathFloat32bits(r[0]), wantBits)
	}
}
