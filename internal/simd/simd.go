// Package simd emulates the 128-bit SPE vector operations the paper's
// kernel is written in (Section IV-A): load, store, shuffle (splat), add,
// compare and select. A register holds four single-precision or two
// double-precision lanes, exactly as on the SPU.
//
// Go has no SIMD intrinsics, so each operation executes as scalar code;
// what the package preserves is the *structure* of the kernel — the exact
// instruction sequence, operand shapes and instruction counts of Table I —
// so the pipeline model (internal/pipeline) and the instruction-mix
// experiments run against the same program the paper describes.
package simd

// Op identifies an emulated SPE instruction kind. The six kinds are the
// ones Table I characterizes for the computing-block kernel.
type Op int

// The emulated instruction kinds.
const (
	OpLoad Op = iota
	OpStore
	OpShuffle
	OpAdd
	OpCmp
	OpSel
	numOps
)

// String returns the Table I name of the instruction kind.
func (o Op) String() string {
	switch o {
	case OpLoad:
		return "Load"
	case OpStore:
		return "Store"
	case OpShuffle:
		return "Shuffle"
	case OpAdd:
		return "Add"
	case OpCmp:
		return "Cmp"
	case OpSel:
		return "Sel"
	}
	return "Op(?)"
}

// NumOps is the number of distinct instruction kinds.
const NumOps = int(numOps)

// Ops lists all instruction kinds in Table I order.
var Ops = [NumOps]Op{OpLoad, OpShuffle, OpAdd, OpCmp, OpSel, OpStore}

// Counts tallies executed instructions per kind. The counted kernel
// variants increment it; Table I is regenerated from these tallies.
type Counts struct {
	N [NumOps]int64
}

// Add increments the tally for op by k.
func (c *Counts) Add(op Op, k int64) { c.N[op] += k }

// Get returns the tally for op.
func (c *Counts) Get(op Op) int64 { return c.N[op] }

// Total returns the total instruction count.
func (c *Counts) Total() int64 {
	var t int64
	for _, v := range c.N {
		t += v
	}
	return t
}

// Merge adds other's tallies into c.
func (c *Counts) Merge(other *Counts) {
	for i := range c.N {
		c.N[i] += other.N[i]
	}
}

// Reset zeroes all tallies.
func (c *Counts) Reset() { c.N = [NumOps]int64{} }
