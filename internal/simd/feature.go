package simd

import (
	"os"
	"sync/atomic"
)

// Runtime CPU-feature detection for the real vector kernels
// (internal/kernel's GOARCH-specific assembly). The emulated Table I
// instruction stream elsewhere in this package models the paper's SPU;
// this file answers the narrower question the dispatchers need at run
// time: does the host actually have the 8-lane (AVX2) or 4-lane (NEON)
// min-plus datapath the assembly targets?
//
// Detection runs once at package init. Tests and operators can force the
// pure-Go fallback two ways: the CELLNPDP_FORCE_SCALAR environment
// variable (read at init, so it covers whole-process runs like the CI
// race suite) and SetForceFallback (scoped, for tests that exercise both
// paths in one process).

// ForceScalarEnv is the environment variable that, when set to a
// non-empty value other than "0", disables the vector kernels for the
// whole process.
const ForceScalarEnv = "CELLNPDP_FORCE_SCALAR"

// hasVector reports the raw detection result for this GOARCH (set by the
// per-arch init in feature_*.go). It never changes after init.
var hasVector bool

// forced is 1 when the fallback is forced (env or SetForceFallback).
var forced atomic.Int32

func init() {
	if v := os.Getenv(ForceScalarEnv); v != "" && v != "0" {
		forced.Store(1)
	}
}

// VectorAvailable reports whether the GOARCH-specific vector kernels may
// be used: the hardware supports them and the fallback is not forced.
func VectorAvailable() bool {
	return hasVector && forced.Load() == 0
}

// VectorISA names the vector instruction set the kernels would use:
// "avx2", "neon", or "none" (unsupported hardware or forced fallback).
func VectorISA() string {
	if !VectorAvailable() {
		return "none"
	}
	return vectorISAName
}

// SetForceFallback forces (or un-forces) the pure-Go fallback and
// returns a restore function. Tests use it to drive both paths:
//
//	defer simd.SetForceFallback(true)()
//
// It layers on top of the environment variable: restoring never
// un-forces an env-forced process.
func SetForceFallback(force bool) (restore func()) {
	prev := forced.Load()
	if force {
		forced.Store(1)
	} else if os.Getenv(ForceScalarEnv) == "" || os.Getenv(ForceScalarEnv) == "0" {
		forced.Store(0)
	}
	return func() { forced.Store(prev) }
}
