// Package apps implements the other NPDP applications the paper's
// introduction names alongside the Zuker algorithm: the optimal matrix
// parenthesization problem and the optimal binary search tree. Both have
// weighted recurrences (the combine cost depends on the split point), so
// they run on a generic block-wavefront engine built over the same
// Section IV-B task-queue model as the min-plus engines.
package apps

import (
	"fmt"

	"cellnpdp/internal/sched"
)

// Wavefront runs compute(i, j) for every upper-triangle cell (i < j ≤ n-1)
// of an n-point table, in parallel over blocks of side tile using the
// simplified two-dependence task graph. When compute(i, j) runs, every
// cell (i, k) with k < j and (k, j) with k > i has completed — exactly
// the NPDP dependence set — so recurrences may read those freely.
func Wavefront(n, tile, workers int, compute func(i, j int)) error {
	if n <= 0 {
		return fmt.Errorf("apps: size must be positive, got %d", n)
	}
	if tile <= 0 {
		return fmt.Errorf("apps: tile must be positive, got %d", tile)
	}
	if workers <= 0 {
		return fmt.Errorf("apps: workers must be positive, got %d", workers)
	}
	blocks := (n + tile - 1) / tile
	graph, err := sched.NewGraph(blocks, 1)
	if err != nil {
		return err
	}
	return sched.RunPool(graph, workers, func(_ int, task sched.Task) error {
		rowLo, colLo := task.RowLo*tile, task.ColLo*tile
		rowHi, colHi := rowLo+tile, colLo+tile
		if rowHi > n {
			rowHi = n
		}
		if colHi > n {
			colHi = n
		}
		// Columns ascending, rows descending: within the block, (i, k)
		// and (k, j) neighbors are finished before (i, j).
		for j := colLo; j < colHi; j++ {
			iTop := j - 1
			if iTop >= rowHi {
				iTop = rowHi - 1
			}
			for i := iTop; i >= rowLo; i-- {
				compute(i, j)
			}
		}
		return nil
	})
}
