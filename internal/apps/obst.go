package apps

import "fmt"

// OBSTResult is an optimal binary search tree.
type OBSTResult struct {
	Probs []float64
	Cost  float64 // expected comparisons under the access distribution
	root  [][]int // root[i][j]: optimal root key index for keys [i, j)
}

// OptimalBST builds the optimal binary search tree over keys 0..m-1 with
// access probabilities probs (they need not sum to 1; weights work too).
// The recurrence over half-open key ranges [i, j) is the weighted NPDP
//
//	e[i][j] = min_{i≤r<j} e[i][r] + e[r+1][j] + w(i,j),  w(i,j) = Σ probs[i..j-1]
//
// run on the block-wavefront engine.
func OptimalBST(probs []float64, workers, tile int) (*OBSTResult, error) {
	m := len(probs)
	if m == 0 {
		return nil, fmt.Errorf("apps: need at least one key")
	}
	for i, p := range probs {
		if p < 0 {
			return nil, fmt.Errorf("apps: probability %d is negative (%g)", i, p)
		}
	}
	if tile <= 0 {
		tile = 32
	}
	n := m + 1 // boundary points
	// prefix[i] = Σ probs[0..i-1], so w(i,j) = prefix[j] - prefix[i].
	prefix := make([]float64, n)
	for i, p := range probs {
		prefix[i+1] = prefix[i] + p
	}
	e := make([][]float64, n)
	root := make([][]int, n)
	for i := range e {
		e[i] = make([]float64, n)
		root[i] = make([]int, n)
	}
	err := Wavefront(n, tile, workers, func(i, j int) {
		// Keys [i, j), at least one key since j > i.
		w := prefix[j] - prefix[i]
		best := -1.0
		bestR := -1
		for r := i; r < j; r++ {
			c := e[i][r] + e[r+1][j] + w
			if bestR < 0 || c < best {
				best, bestR = c, r
			}
		}
		e[i][j] = best
		root[i][j] = bestR
	})
	if err != nil {
		return nil, err
	}
	return &OBSTResult{Probs: probs, Cost: e[0][m], root: root}, nil
}

// Root returns the optimal root key for the key range [i, j).
func (r *OBSTResult) Root(i, j int) int { return r.root[i][j] }

// Depths returns each key's depth (root = 1) in the optimal tree; the
// expected cost equals Σ probs[k]·depth[k].
func (r *OBSTResult) Depths() []int {
	d := make([]int, len(r.Probs))
	var walk func(i, j, depth int)
	walk = func(i, j, depth int) {
		if i >= j {
			return
		}
		k := r.root[i][j]
		d[k] = depth
		walk(i, k, depth+1)
		walk(k+1, j, depth+1)
	}
	walk(0, len(r.Probs), 1)
	return d
}
