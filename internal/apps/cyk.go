package apps

import (
	"fmt"
	"math"
)

// CYK parsing is the grammar-shaped member of the NPDP family: the
// Viterbi (max-probability) parse of a weighted context-free grammar in
// Chomsky normal form fills the same triangular table with the same
// nonuniform dependences — score[i][j][A] over spans [i, j) combines
// score[i][k][B] and score[k][j][C] across every split k — and
// parallelizes on the same block wavefront.

// Grammar is a weighted CNF grammar. Symbols are small integers;
// terminals are bytes.
type Grammar struct {
	Symbols int // nonterminal count; symbol 0 is the start symbol
	// Binary rules A -> B C with weight (log-probability, ≤ 0).
	Binary []BinaryRule
	// Lexical rules A -> t with weight.
	Lexical []LexicalRule
}

// BinaryRule is A -> B C.
type BinaryRule struct {
	A, B, C int
	W       float64
}

// LexicalRule is A -> terminal.
type LexicalRule struct {
	A int
	T byte
	W float64
}

// Validate checks symbol ranges.
func (g *Grammar) Validate() error {
	if g.Symbols <= 0 {
		return fmt.Errorf("apps: grammar needs at least one symbol")
	}
	for _, r := range g.Binary {
		if r.A < 0 || r.A >= g.Symbols || r.B < 0 || r.B >= g.Symbols || r.C < 0 || r.C >= g.Symbols {
			return fmt.Errorf("apps: binary rule %v out of range", r)
		}
	}
	for _, r := range g.Lexical {
		if r.A < 0 || r.A >= g.Symbols {
			return fmt.Errorf("apps: lexical rule %v out of range", r)
		}
	}
	if len(g.Lexical) == 0 {
		return fmt.Errorf("apps: grammar has no lexical rules")
	}
	return nil
}

// ParseResult is a Viterbi parse.
type ParseResult struct {
	// LogProb is the max log-probability of deriving the input from the
	// start symbol; -Inf when the input is not in the language.
	LogProb float64
	// Recognized reports whether any derivation exists.
	Recognized bool
}

// CYKParse runs weighted CYK over the input with `workers` goroutines on
// the block wavefront. The table is indexed over the n+1 span boundaries,
// so cell (i, j) holds the scores of span [i, j).
func CYKParse(g *Grammar, input []byte, workers, tile int) (*ParseResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(input)
	if n == 0 {
		return nil, fmt.Errorf("apps: empty input")
	}
	if tile <= 0 {
		tile = 16
	}
	neg := math.Inf(-1)
	// score[i][j][A]; allocate the upper triangle of an (n+1)-point table.
	score := make([][][]float64, n+1)
	for i := range score {
		score[i] = make([][]float64, n+1)
		for j := i; j <= n; j++ {
			row := make([]float64, g.Symbols)
			for a := range row {
				row[a] = neg
			}
			score[i][j] = row
		}
	}
	// Lexical layer: spans of length 1.
	for i := 0; i < n; i++ {
		for _, r := range g.Lexical {
			if r.T == input[i] && r.W > score[i][i+1][r.A] {
				score[i][i+1][r.A] = r.W
			}
		}
	}
	// Binary layer on the wavefront: cell (i, j) of the (n+1)-boundary
	// triangle combines all splits — exactly the NPDP dependence set.
	err := Wavefront(n+1, tile, max(workers, 1), func(i, j int) {
		if j-i < 2 {
			return // lexical spans are seeded above
		}
		cell := score[i][j]
		for k := i + 1; k < j; k++ {
			left, right := score[i][k], score[k][j]
			for _, r := range g.Binary {
				if lb, rc := left[r.B], right[r.C]; lb != neg && rc != neg {
					if s := lb + rc + r.W; s > cell[r.A] {
						cell[r.A] = s
					}
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	lp := score[0][n][0]
	return &ParseResult{LogProb: lp, Recognized: !math.IsInf(lp, -1)}, nil
}

// BalancedParens returns the CNF grammar of balanced parentheses:
//
//	S -> S S | ( S ) | ()
//
// in CNF: S -> S S | L R' | L R ; R' -> S R ; L -> '(' ; R -> ')'.
// Weights make longer derivations cheaper to verify Viterbi maximization.
func BalancedParens() *Grammar {
	const (
		S = iota
		Rp
		L
		R
	)
	return &Grammar{
		Symbols: 4,
		Binary: []BinaryRule{
			{A: S, B: S, C: S, W: -1},
			{A: S, B: L, C: Rp, W: -1},
			{A: S, B: L, C: R, W: -1},
			{A: Rp, B: S, C: R, W: 0},
		},
		Lexical: []LexicalRule{
			{A: L, T: '(', W: 0},
			{A: R, T: ')', W: 0},
		},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
