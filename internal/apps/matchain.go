package apps

import (
	"fmt"
	"strings"
)

// MatChainResult is an optimal matrix-chain parenthesization.
type MatChainResult struct {
	Dims  []int
	Cost  int64   // minimal scalar multiplications
	split [][]int // split[i][j]: the k realizing the optimum for chain [i, j)
}

// MatrixChain solves the optimal matrix parenthesization problem for a
// chain of len(dims)-1 matrices, where matrix t has shape
// dims[t] × dims[t+1]. The recurrence is the weighted NPDP
//
//	c[i][j] = min_{i<k<j} c[i][k] + c[k][j] + dims[i]·dims[k]·dims[j]
//
// over the n = len(dims) boundary points, run on the block-wavefront
// engine with `workers` goroutines.
func MatrixChain(dims []int, workers, tile int) (*MatChainResult, error) {
	n := len(dims)
	if n < 2 {
		return nil, fmt.Errorf("apps: need at least one matrix (2 dims), got %d dims", n)
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("apps: dimension %d is %d, must be positive", i, d)
		}
	}
	if tile <= 0 {
		tile = 32
	}
	cost := make([][]int64, n)
	split := make([][]int, n)
	for i := range cost {
		cost[i] = make([]int64, n)
		split[i] = make([]int, n)
	}
	err := Wavefront(n, tile, workers, func(i, j int) {
		if j == i+1 {
			return // single matrix: zero cost
		}
		best := int64(-1)
		bestK := -1
		for k := i + 1; k < j; k++ {
			c := cost[i][k] + cost[k][j] + int64(dims[i])*int64(dims[k])*int64(dims[j])
			if best < 0 || c < best {
				best, bestK = c, k
			}
		}
		cost[i][j] = best
		split[i][j] = bestK
	})
	if err != nil {
		return nil, err
	}
	return &MatChainResult{Dims: dims, Cost: cost[0][n-1], split: split}, nil
}

// Paren renders the optimal parenthesization, naming matrices A0, A1, …
func (r *MatChainResult) Paren() string {
	var b strings.Builder
	r.render(&b, 0, len(r.Dims)-1)
	return b.String()
}

func (r *MatChainResult) render(b *strings.Builder, i, j int) {
	if j == i+1 {
		fmt.Fprintf(b, "A%d", i)
		return
	}
	k := r.split[i][j]
	b.WriteByte('(')
	r.render(b, i, k)
	b.WriteByte(' ')
	r.render(b, k, j)
	b.WriteByte(')')
}
