package apps

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// bruteChain enumerates every parenthesization of chain [i, j).
func bruteChain(dims []int, i, j int) int64 {
	if j == i+1 {
		return 0
	}
	best := int64(-1)
	for k := i + 1; k < j; k++ {
		c := bruteChain(dims, i, k) + bruteChain(dims, k, j) + int64(dims[i])*int64(dims[k])*int64(dims[j])
		if best < 0 || c < best {
			best = c
		}
	}
	return best
}

func TestMatrixChainKnown(t *testing.T) {
	// CLRS example: dims 30,35,15,5,10,20,25 → 15125 multiplications.
	r, err := MatrixChain([]int{30, 35, 15, 5, 10, 20, 25}, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 15125 {
		t.Errorf("cost = %d, want 15125", r.Cost)
	}
	if got := r.Paren(); got != "((A0 (A1 A2)) ((A3 A4) A5))" {
		t.Errorf("parenthesization %q", got)
	}
}

func TestMatrixChainMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(8)
		dims := make([]int, m+1)
		for i := range dims {
			dims[i] = 1 + rng.Intn(40)
		}
		r, err := MatrixChain(dims, 1+rng.Intn(4), 4)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteChain(dims, 0, m); r.Cost != want {
			t.Errorf("dims %v: cost %d, want %d", dims, r.Cost, want)
		}
	}
}

func TestMatrixChainParenConsistent(t *testing.T) {
	// The rendered parenthesization must mention every matrix once and
	// balance its parentheses.
	r, err := MatrixChain([]int{4, 7, 3, 9, 2, 8, 5, 6}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Paren()
	if strings.Count(p, "(") != strings.Count(p, ")") {
		t.Errorf("unbalanced: %q", p)
	}
	for i := 0; i < 7; i++ {
		if strings.Count(p, "A"+string(rune('0'+i))) != 1 {
			t.Errorf("matrix A%d not exactly once in %q", i, p)
		}
	}
}

func TestMatrixChainSingleMatrix(t *testing.T) {
	r, err := MatrixChain([]int{3, 5}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 || r.Paren() != "A0" {
		t.Errorf("single matrix: cost=%d paren=%q", r.Cost, r.Paren())
	}
}

func TestMatrixChainRejects(t *testing.T) {
	if _, err := MatrixChain([]int{5}, 2, 8); err == nil {
		t.Error("too few dims accepted")
	}
	if _, err := MatrixChain([]int{5, 0, 3}, 2, 8); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := MatrixChain([]int{5, 3}, 0, 8); err == nil {
		t.Error("zero workers accepted")
	}
}

// bruteBST enumerates every BST over keys [i, j).
func bruteBST(prefix []float64, i, j int) float64 {
	if i >= j {
		return 0
	}
	w := prefix[j] - prefix[i]
	best := math.Inf(1)
	for r := i; r < j; r++ {
		if c := bruteBST(prefix, i, r) + bruteBST(prefix, r+1, j) + w; c < best {
			best = c
		}
	}
	return best
}

func TestOBSTMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.Intn(9)
		probs := make([]float64, m)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		r, err := OptimalBST(probs, 1+rng.Intn(4), 4)
		if err != nil {
			t.Fatal(err)
		}
		prefix := make([]float64, m+1)
		for i, p := range probs {
			prefix[i+1] = prefix[i] + p
		}
		want := bruteBST(prefix, 0, m)
		if math.Abs(r.Cost-want) > 1e-9 {
			t.Errorf("probs %v: cost %g, want %g", probs, r.Cost, want)
		}
	}
}

func TestOBSTDepthIdentity(t *testing.T) {
	// Expected cost must equal Σ p[k]·depth[k] of the reconstructed tree.
	probs := []float64{0.15, 0.10, 0.05, 0.10, 0.20, 0.40}
	r, err := OptimalBST(probs, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	depths := r.Depths()
	var sum float64
	for k, p := range probs {
		if depths[k] < 1 {
			t.Fatalf("key %d missing from tree", k)
		}
		sum += p * float64(depths[k])
	}
	if math.Abs(sum-r.Cost) > 1e-9 {
		t.Errorf("Σ p·depth = %g, cost = %g", sum, r.Cost)
	}
}

func TestOBSTSkewedPrefersHotRoot(t *testing.T) {
	// With one overwhelmingly hot key, it must be the root.
	probs := []float64{0.01, 0.01, 0.9, 0.01, 0.01}
	r, err := OptimalBST(probs, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Root(0, 5) != 2 {
		t.Errorf("root = %d, want the hot key 2", r.Root(0, 5))
	}
	if r.Depths()[2] != 1 {
		t.Error("hot key not at depth 1")
	}
}

func TestOBSTRejects(t *testing.T) {
	if _, err := OptimalBST(nil, 2, 4); err == nil {
		t.Error("empty keys accepted")
	}
	if _, err := OptimalBST([]float64{0.5, -0.1}, 2, 4); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestWavefrontCoversTriangleOnce(t *testing.T) {
	for _, n := range []int{1, 2, 5, 17, 40} {
		for _, tile := range []int{1, 4, 7, 16} {
			var mu sync.Mutex
			seen := map[[2]int]int{}
			err := Wavefront(n, tile, 4, func(i, j int) {
				mu.Lock()
				seen[[2]int{i, j}]++
				mu.Unlock()
			})
			if err != nil {
				t.Fatal(err)
			}
			want := n * (n - 1) / 2
			if len(seen) != want {
				t.Fatalf("n=%d tile=%d: %d cells, want %d", n, tile, len(seen), want)
			}
			for c, k := range seen {
				if k != 1 || c[0] >= c[1] {
					t.Fatalf("cell %v computed %d times", c, k)
				}
			}
		}
	}
}

func TestWavefrontRejects(t *testing.T) {
	noop := func(int, int) {}
	if err := Wavefront(0, 4, 2, noop); err == nil {
		t.Error("n=0 accepted")
	}
	if err := Wavefront(8, 0, 2, noop); err == nil {
		t.Error("tile=0 accepted")
	}
	if err := Wavefront(8, 4, 0, noop); err == nil {
		t.Error("workers=0 accepted")
	}
}
