package apps

import (
	"fmt"
	"math"
)

// Point is a 2D vertex.
type Point struct{ X, Y float64 }

// TriangulationResult is a minimum-weight triangulation of a convex
// polygon, the geometric member of the NPDP family (same recurrence as
// matrix parenthesization with a triangle-perimeter weight).
type TriangulationResult struct {
	Vertices []Point
	Weight   float64 // total perimeter of the chosen triangles
	split    [][]int
}

// MinWeightTriangulation triangulates the convex polygon given by its
// vertices in order, minimizing the summed triangle perimeters:
//
//	w[i][j] = min_{i<k<j} w[i][k] + w[k][j] + perim(v_i, v_k, v_j)
//
// run on the block-wavefront engine.
func MinWeightTriangulation(vertices []Point, workers, tile int) (*TriangulationResult, error) {
	n := len(vertices)
	if n < 3 {
		return nil, fmt.Errorf("apps: a polygon needs at least 3 vertices, got %d", n)
	}
	if tile <= 0 {
		tile = 32
	}
	w := make([][]float64, n)
	split := make([][]int, n)
	for i := range w {
		w[i] = make([]float64, n)
		split[i] = make([]int, n)
	}
	dist := func(a, b Point) float64 {
		return math.Hypot(a.X-b.X, a.Y-b.Y)
	}
	err := Wavefront(n, tile, max(workers, 1), func(i, j int) {
		if j-i < 2 {
			return // an edge is not a triangle
		}
		best := math.Inf(1)
		bestK := -1
		for k := i + 1; k < j; k++ {
			p := dist(vertices[i], vertices[k]) + dist(vertices[k], vertices[j]) + dist(vertices[i], vertices[j])
			if c := w[i][k] + w[k][j] + p; c < best {
				best, bestK = c, k
			}
		}
		w[i][j] = best
		split[i][j] = bestK
	})
	if err != nil {
		return nil, err
	}
	return &TriangulationResult{Vertices: vertices, Weight: w[0][n-1], split: split}, nil
}

// Triangles lists the chosen triangles as vertex-index triples.
func (r *TriangulationResult) Triangles() [][3]int {
	var out [][3]int
	var walk func(i, j int)
	walk = func(i, j int) {
		if j-i < 2 {
			return
		}
		k := r.split[i][j]
		out = append(out, [3]int{i, k, j})
		walk(i, k)
		walk(k, j)
	}
	walk(0, len(r.Vertices)-1)
	return out
}
