package apps

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestCYKRecognizesBalancedParens(t *testing.T) {
	g := BalancedParens()
	good := []string{"()", "()()", "(())", "(()())", "((()))()", strings.Repeat("()", 30)}
	for _, s := range good {
		r, err := CYKParse(g, []byte(s), 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Recognized {
			t.Errorf("%q not recognized", s)
		}
	}
	bad := []string{"(", ")", ")(", "(()", "())", "()(", "((", "x"}
	for _, s := range bad {
		r, err := CYKParse(g, []byte(s), 4, 8)
		if err != nil {
			t.Fatal(err)
		}
		if r.Recognized {
			t.Errorf("%q wrongly recognized", s)
		}
	}
}

// bruteCYK is an independent serial reference.
func bruteCYK(g *Grammar, input []byte) float64 {
	n := len(input)
	neg := math.Inf(-1)
	score := map[[3]int]float64{}
	get := func(i, j, a int) float64 {
		if v, ok := score[[3]int{i, j, a}]; ok {
			return v
		}
		return neg
	}
	for i := 0; i < n; i++ {
		for _, r := range g.Lexical {
			if r.T == input[i] && r.W > get(i, i+1, r.A) {
				score[[3]int{i, i + 1, r.A}] = r.W
			}
		}
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			j := i + span
			for k := i + 1; k < j; k++ {
				for _, r := range g.Binary {
					lb, rc := get(i, k, r.B), get(k, j, r.C)
					if lb != neg && rc != neg {
						if s := lb + rc + r.W; s > get(i, j, r.A) {
							score[[3]int{i, j, r.A}] = s
						}
					}
				}
			}
		}
	}
	return get(0, n, 0)
}

func TestCYKMatchesBruteForce(t *testing.T) {
	g := BalancedParens()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(12)
		b := make([]byte, m)
		for i := range b {
			if rng.Intn(2) == 0 {
				b[i] = '('
			} else {
				b[i] = ')'
			}
		}
		got, err := CYKParse(g, b, 1+rng.Intn(4), 4)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteCYK(g, b)
		both := got.LogProb == want ||
			(math.IsInf(got.LogProb, -1) && math.IsInf(want, -1))
		if !both {
			t.Errorf("%q: parallel %g vs brute %g", b, got.LogProb, want)
		}
	}
}

func TestCYKViterbiWeight(t *testing.T) {
	// "()()" derives via S->SS from two S->LR: weight -1 + (-1) + (-1) = -3.
	g := BalancedParens()
	r, err := CYKParse(g, []byte("()()"), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.LogProb != -3 {
		t.Errorf("log-prob = %g, want -3", r.LogProb)
	}
}

func TestCYKRejectsBad(t *testing.T) {
	g := BalancedParens()
	if _, err := CYKParse(g, nil, 2, 4); err == nil {
		t.Error("empty input accepted")
	}
	bad := &Grammar{Symbols: 1, Binary: []BinaryRule{{A: 0, B: 5, C: 0}}}
	if bad.Validate() == nil {
		t.Error("out-of-range rule accepted")
	}
	empty := &Grammar{Symbols: 1}
	if empty.Validate() == nil {
		t.Error("grammar without lexical rules accepted")
	}
}

func TestTriangulationSquare(t *testing.T) {
	// Unit square: both diagonals are equivalent by symmetry; total
	// weight = two triangles, each with perimeter 2 + √2.
	sq := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	r, err := MinWeightTriangulation(sq, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (2 + math.Sqrt2)
	if math.Abs(r.Weight-want) > 1e-9 {
		t.Errorf("weight = %g, want %g", r.Weight, want)
	}
	tris := r.Triangles()
	if len(tris) != 2 {
		t.Errorf("triangles = %v", tris)
	}
}

// bruteTriangulation enumerates every triangulation.
func bruteTriangulation(v []Point, i, j int) float64 {
	if j-i < 2 {
		return 0
	}
	best := math.Inf(1)
	for k := i + 1; k < j; k++ {
		p := math.Hypot(v[i].X-v[k].X, v[i].Y-v[k].Y) +
			math.Hypot(v[k].X-v[j].X, v[k].Y-v[j].Y) +
			math.Hypot(v[i].X-v[j].X, v[i].Y-v[j].Y)
		if c := bruteTriangulation(v, i, k) + bruteTriangulation(v, k, j) + p; c < best {
			best = c
		}
	}
	return best
}

func TestTriangulationMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m := 3 + rng.Intn(8)
		// Random convex polygon: sorted angles on a wobbly circle.
		v := make([]Point, m)
		for i := range v {
			ang := 2 * math.Pi * float64(i) / float64(m)
			rad := 1 + 0.3*rng.Float64()
			v[i] = Point{rad * math.Cos(ang), rad * math.Sin(ang)}
		}
		r, err := MinWeightTriangulation(v, 1+rng.Intn(3), 4)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteTriangulation(v, 0, m-1)
		if math.Abs(r.Weight-want) > 1e-9 {
			t.Errorf("trial %d: weight %g vs brute %g", trial, r.Weight, want)
		}
		if got := len(r.Triangles()); got != m-2 {
			t.Errorf("trial %d: %d triangles, want %d", trial, got, m-2)
		}
	}
}

func TestTriangulationRejectsBad(t *testing.T) {
	if _, err := MinWeightTriangulation([]Point{{0, 0}, {1, 1}}, 2, 4); err == nil {
		t.Error("degenerate polygon accepted")
	}
}
