package pipeline

import (
	"strings"
	"testing"

	"cellnpdp/internal/simd"
)

func TestScheduleListVerifies(t *testing.T) {
	for _, iters := range []int{1, 2, 4} {
		p := BuildCBStepsSP(iters)
		s := ScheduleList(p, SinglePrecision())
		if err := s.Verify(); err != nil {
			t.Fatalf("SP iters=%d: %v", iters, err)
		}
		dp := BuildCBStepsDP(iters)
		sd := ScheduleList(dp, DoublePrecision())
		if err := sd.Verify(); err != nil {
			t.Fatalf("DP iters=%d: %v", iters, err)
		}
	}
}

func TestScheduleInOrderVerifies(t *testing.T) {
	s := ScheduleInOrder(BuildCBStepSP(), SinglePrecision())
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	sd := ScheduleInOrder(BuildCBStepDP(), DoublePrecision())
	if err := sd.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleMatchesSimulators(t *testing.T) {
	p := BuildCBStepSP()
	isa := SinglePrecision()
	if got, want := ScheduleInOrder(p, isa).Result.Cycles, SimulateInOrder(p, isa).Cycles; got != want {
		t.Errorf("in-order schedule result %d != simulator %d", got, want)
	}
	if got, want := ScheduleList(p, isa).Result.Cycles, ListSchedule(p, isa).Cycles; got != want {
		t.Errorf("list schedule result %d != simulator %d", got, want)
	}
}

func TestScheduleIssueCyclesConsistent(t *testing.T) {
	// The recorded issue cycles must reproduce the simulator's makespan:
	// last issue + its latency == Cycles.
	p := BuildCBStepSP()
	isa := SinglePrecision()
	s := ScheduleList(p, isa)
	end := 0
	for idx, c := range s.IssueAt {
		if e := c + isa.Spec[p[idx].Op].Latency; e > end {
			end = e
		}
	}
	if end != s.Result.Cycles {
		t.Errorf("issue cycles imply makespan %d, simulator says %d", end, s.Result.Cycles)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	p := BuildCBStepSP()
	isa := SinglePrecision()
	s := ScheduleList(p, isa)
	// Force two instructions of the same pipe into one cycle.
	bad := *s
	bad.IssueAt = append([]int(nil), s.IssueAt...)
	// Find two pipe-0 instructions and collide them.
	var p0 []int
	for idx, in := range p {
		if isa.Spec[in.Op].Pipe == Pipe0 {
			p0 = append(p0, idx)
		}
	}
	bad.IssueAt[p0[1]] = bad.IssueAt[p0[0]]
	if bad.Verify() == nil {
		t.Error("pipe collision not caught")
	}
	// Force a use-before-ready.
	bad2 := *s
	bad2.IssueAt = append([]int(nil), s.IssueAt...)
	// The first shuffle depends on a load; issue it at cycle 0.
	for idx, in := range p {
		if in.Op == simd.OpShuffle {
			bad2.IssueAt[idx] = 0
			break
		}
	}
	if bad2.Verify() == nil {
		t.Error("use-before-ready not caught")
	}
}

func TestTimelineRendering(t *testing.T) {
	s := ScheduleList(BuildCBStepSP(), SinglePrecision())
	out := s.Timeline()
	if !strings.Contains(out, "pipe0") || !strings.Contains(out, "pipe1") {
		t.Fatalf("timeline missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline has %d lines", len(lines))
	}
	// 48 arithmetic letters on pipe0, 32 memory/permute letters on pipe1.
	p0 := lines[1]
	count := strings.Count(p0, "A") + strings.Count(p0, "C") + strings.Count(p0, "E")
	if count != 48 {
		t.Errorf("pipe0 shows %d instructions, want 48", count)
	}
	p1 := lines[2]
	count1 := strings.Count(p1, "L") + strings.Count(p1, "S") + strings.Count(p1, "H")
	if count1 != 32 {
		t.Errorf("pipe1 shows %d instructions, want 32", count1)
	}
}
