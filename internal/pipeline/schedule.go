package pipeline

import (
	"fmt"
	"sort"
	"strings"

	"cellnpdp/internal/simd"
)

// Schedule is a fully resolved issue plan for a program: which cycle each
// instruction issues on, and on which pipeline. It supports verification
// against the machine constraints and a textual timeline rendering — the
// view Section IV-A reasons about when it interleaves the kernel's 16
// steps by hand.
type Schedule struct {
	Program Program
	ISA     ISA
	IssueAt []int // per instruction
	Result  Result
}

// ScheduleInOrder resolves the program in program order.
func ScheduleInOrder(p Program, isa ISA) *Schedule {
	s := &Schedule{Program: p, ISA: isa, IssueAt: make([]int, len(p))}
	ready := make([]int, p.MaxReg())
	pipeFree := [2]int{0, 0}
	last := 0
	for idx, in := range p {
		spec := isa.Spec[in.Op]
		c := last
		if f := pipeFree[spec.Pipe]; f > c {
			c = f
		}
		for _, src := range in.Src {
			if src != NoReg && ready[src] > c {
				c = ready[src]
			}
		}
		s.IssueAt[idx] = c
		last = c
		if spec.StallBoth {
			pipeFree[Pipe0] = c + spec.Gap
			pipeFree[Pipe1] = c + spec.Gap
		}
		pipeFree[spec.Pipe] = c + spec.Gap
		if in.Dst != NoReg {
			ready[in.Dst] = c + spec.Latency
		}
	}
	s.Result = SimulateInOrder(p, isa)
	return s
}

// ScheduleList resolves the program with the greedy list scheduler and
// records each instruction's issue cycle.
func ScheduleList(p Program, isa ISA) *Schedule {
	s := &Schedule{Program: p, ISA: isa, IssueAt: make([]int, len(p))}
	n := len(p)
	deps := p.deps()
	succs := make([][]int, n)
	indeg := make([]int, n)
	for i, ds := range deps {
		indeg[i] = len(ds)
		for _, d := range ds {
			succs[d] = append(succs[d], i)
		}
	}
	prio := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		lat := isa.Spec[p[i].Op].Latency
		best := lat
		for _, sc := range succs[i] {
			if v := lat + prio[sc]; v > best {
				best = v
			}
		}
		prio[i] = best
	}
	earliest := make([]int, n)
	var readyList []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			readyList = append(readyList, i)
		}
	}
	pipeFree := [2]int{0, 0}
	scheduled := 0
	cycle := 0
	for scheduled < n {
		for pipe := Pipe0; pipe <= Pipe1; pipe++ {
			if pipeFree[pipe] > cycle {
				continue
			}
			best, bestPos := -1, -1
			for pos, idx := range readyList {
				if isa.Spec[p[idx].Op].Pipe != pipe || earliest[idx] > cycle {
					continue
				}
				if best == -1 || prio[idx] > prio[best] {
					best, bestPos = idx, pos
				}
			}
			if best == -1 {
				continue
			}
			readyList = append(readyList[:bestPos], readyList[bestPos+1:]...)
			spec := isa.Spec[p[best].Op]
			if spec.StallBoth {
				pipeFree[Pipe0] = cycle + spec.Gap
				pipeFree[Pipe1] = cycle + spec.Gap
			}
			pipeFree[pipe] = cycle + spec.Gap
			s.IssueAt[best] = cycle
			for _, sc := range succs[best] {
				if e := cycle + spec.Latency; e > earliest[sc] {
					earliest[sc] = e
				}
				indeg[sc]--
				if indeg[sc] == 0 {
					readyList = append(readyList, sc)
				}
			}
			scheduled++
		}
		cycle++
	}
	s.Result = ListSchedule(p, isa)
	return s
}

// Verify checks the schedule against every machine constraint: true
// dependences wait for producer latency, at most one instruction per
// pipeline per cycle, per-pipeline issue gaps, and whole-machine stalls
// after StallBoth instructions.
func (s *Schedule) Verify() error {
	type slot struct{ cycle, pipe int }
	occupied := map[slot]int{}
	producedAt := map[int]int{} // register -> availability cycle
	// Register renaming is assumed: track last producer wins in order of
	// issue cycle, so sort instruction indices by issue.
	order := make([]int, len(s.Program))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return s.IssueAt[order[a]] < s.IssueAt[order[b]] })

	lastOnPipe := map[int]int{} // pipe -> earliest next issue
	globalFree := 0
	for _, idx := range order {
		in := s.Program[idx]
		spec := s.ISA.Spec[in.Op]
		c := s.IssueAt[idx]
		pipe := int(spec.Pipe)
		if prev, dup := occupied[slot{c, pipe}]; dup {
			return fmt.Errorf("pipeline: instructions %d and %d both issue on pipe %d at cycle %d", prev, idx, pipe, c)
		}
		occupied[slot{c, pipe}] = idx
		if c < lastOnPipe[pipe] {
			return fmt.Errorf("pipeline: instruction %d violates the pipe-%d issue gap at cycle %d", idx, pipe, c)
		}
		if c < globalFree {
			return fmt.Errorf("pipeline: instruction %d issues at %d inside a machine stall window (free at %d)", idx, c, globalFree)
		}
		for _, src := range in.Src {
			if src == NoReg {
				continue
			}
			if avail, ok := producedAt[src]; ok && c < avail {
				return fmt.Errorf("pipeline: instruction %d reads r%d at cycle %d before it is ready at %d", idx, src, c, avail)
			}
		}
		lastOnPipe[pipe] = c + spec.Gap
		if spec.StallBoth {
			globalFree = c + spec.Gap
		}
		if in.Dst != NoReg {
			producedAt[in.Dst] = c + spec.Latency
		}
	}
	return nil
}

// Timeline renders the schedule as a two-row cycle chart, one row per
// pipeline, one column per cycle, with each instruction shown by the
// first letter of its class (L/S/H/A/C/E for load/store/shuffle/add/
// cmp/sel) and '.' for idle cycles.
func (s *Schedule) Timeline() string {
	letter := map[simd.Op]byte{
		simd.OpLoad: 'L', simd.OpStore: 'S', simd.OpShuffle: 'H',
		simd.OpAdd: 'A', simd.OpCmp: 'C', simd.OpSel: 'E',
	}
	end := 0
	for _, c := range s.IssueAt {
		if c+1 > end {
			end = c + 1
		}
	}
	rows := [2][]byte{make([]byte, end), make([]byte, end)}
	for p := 0; p < 2; p++ {
		for i := range rows[p] {
			rows[p][i] = '.'
		}
	}
	for idx, in := range s.Program {
		rows[s.ISA.Spec[in.Op].Pipe][s.IssueAt[idx]] = letter[in.Op]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cycles 0..%d (%s)\n", end-1, s.ISA.Name)
	fmt.Fprintf(&b, "pipe0 %s\n", rows[0])
	fmt.Fprintf(&b, "pipe1 %s\n", rows[1])
	return b.String()
}
