package pipeline

import "cellnpdp/internal/simd"

// regAlloc hands out fresh virtual register ids; the evaluators assume
// full renaming (the SPE's 128 registers cover the kernel's live set, as
// Section IV-A's register-blocking argument requires).
type regAlloc int

func (r *regAlloc) next() int {
	v := int(*r)
	*r++
	return v
}

// BuildCBStepSP builds the paper's 80-instruction single-precision
// computing-block step (Section IV-A): with A, B and C buffered in
// registers, C = min(C, splat(A[r][k]) + B[k]) over the 16 (row, k)
// pairs. Instruction mix: 12 loads, 16 shuffles, 16 adds, 16 compares,
// 16 selects, 4 stores — exactly Table I.
func BuildCBStepSP() Program {
	var r regAlloc
	return appendCBStepSP(nil, &r)
}

func appendCBStepSP(p Program, r *regAlloc) Program {
	var a, b, c [4]int
	for i := 0; i < 4; i++ {
		a[i] = r.next()
		p = append(p, Instr{Op: simd.OpLoad, Dst: a[i], Src: [3]int{NoReg, NoReg, NoReg}})
	}
	for i := 0; i < 4; i++ {
		b[i] = r.next()
		p = append(p, Instr{Op: simd.OpLoad, Dst: b[i], Src: [3]int{NoReg, NoReg, NoReg}})
	}
	for i := 0; i < 4; i++ {
		c[i] = r.next()
		p = append(p, Instr{Op: simd.OpLoad, Dst: c[i], Src: [3]int{NoReg, NoReg, NoReg}})
	}
	for row := 0; row < 4; row++ {
		for k := 0; k < 4; k++ {
			t := r.next()
			p = append(p, Instr{Op: simd.OpShuffle, Dst: t, Src: [3]int{a[row], NoReg, NoReg}})
			u := r.next()
			p = append(p, Instr{Op: simd.OpAdd, Dst: u, Src: [3]int{t, b[k], NoReg}})
			m := r.next()
			p = append(p, Instr{Op: simd.OpCmp, Dst: m, Src: [3]int{c[row], u, NoReg}})
			cNew := r.next()
			p = append(p, Instr{Op: simd.OpSel, Dst: cNew, Src: [3]int{c[row], u, m}})
			c[row] = cNew
		}
	}
	for row := 0; row < 4; row++ {
		p = append(p, Instr{Op: simd.OpStore, Dst: NoReg, Src: [3]int{c[row], NoReg, NoReg}})
	}
	return p
}

// BuildCBStepsSP builds iters independent single-precision computing-block
// steps back to back, the unrolled form the software-pipelining estimate
// schedules.
func BuildCBStepsSP(iters int) Program {
	var r regAlloc
	var p Program
	for i := 0; i < iters; i++ {
		p = appendCBStepSP(p, &r)
	}
	return p
}

// BuildCBStepDP builds the double-precision computing-block step. A 4×4
// block of doubles needs two 128-bit registers per row, so the step costs
// 24 loads, 16 shuffles, 32 adds, 32 compares, 32 selects and 8 stores
// (144 instructions) — and the DPFP adds and compares carry the 13-cycle
// latency and 6-cycle stall that Section VI-A.5 blames for the DP slowdown.
func BuildCBStepDP() Program {
	var r regAlloc
	return appendCBStepDP(nil, &r)
}

func appendCBStepDP(p Program, r *regAlloc) Program {
	var a, b, c [4][2]int
	load := func(dst *[4][2]int) {
		for i := 0; i < 4; i++ {
			for h := 0; h < 2; h++ {
				dst[i][h] = r.next()
				p = append(p, Instr{Op: simd.OpLoad, Dst: dst[i][h], Src: [3]int{NoReg, NoReg, NoReg}})
			}
		}
	}
	load(&a)
	load(&b)
	load(&c)
	for row := 0; row < 4; row++ {
		for k := 0; k < 4; k++ {
			// One shuffle splats A[row][k] (lane k%2 of half k/2) for both halves.
			t := r.next()
			p = append(p, Instr{Op: simd.OpShuffle, Dst: t, Src: [3]int{a[row][k/2], NoReg, NoReg}})
			for h := 0; h < 2; h++ {
				u := r.next()
				p = append(p, Instr{Op: simd.OpAdd, Dst: u, Src: [3]int{t, b[k][h], NoReg}})
				m := r.next()
				p = append(p, Instr{Op: simd.OpCmp, Dst: m, Src: [3]int{c[row][h], u, NoReg}})
				cNew := r.next()
				p = append(p, Instr{Op: simd.OpSel, Dst: cNew, Src: [3]int{c[row][h], u, m}})
				c[row][h] = cNew
			}
		}
	}
	for row := 0; row < 4; row++ {
		for h := 0; h < 2; h++ {
			p = append(p, Instr{Op: simd.OpStore, Dst: NoReg, Src: [3]int{c[row][h], NoReg, NoReg}})
		}
	}
	return p
}

// BuildCBStepsDP builds iters independent double-precision steps.
func BuildCBStepsDP(iters int) Program {
	var r regAlloc
	var p Program
	for i := 0; i < iters; i++ {
		p = appendCBStepDP(p, &r)
	}
	return p
}

// CBStepCyclesSP returns the modeled steady-state cycles of one software-
// pipelined single-precision computing-block step. The paper reports 54.
func CBStepCyclesSP() float64 {
	return SteadyStateCycles(BuildCBStepsSP, 4, 12, SinglePrecision())
}

// CBStepCyclesDP returns the modeled steady-state cycles of one double-
// precision computing-block step in program order. Unlike the SP kernel,
// the DP step is modeled without software pipelining: each DPFP
// instruction stalls both issue pipelines for six cycles, so reordering
// recovers little, and the step's doubled register demand (two 128-bit
// registers per row of each operand) leaves no room to overlap
// iterations. This matches the paper's measured DP times (Table II);
// CBStepCyclesDPScheduled gives the idealized software-pipelined cost.
func CBStepCyclesDP() float64 {
	c4 := SimulateInOrder(BuildCBStepsDP(4), DoublePrecision()).Cycles
	c12 := SimulateInOrder(BuildCBStepsDP(12), DoublePrecision()).Cycles
	return float64(c12-c4) / 8
}

// CBStepCyclesDPScheduled returns the double-precision step cost under
// idealized list scheduling (unbounded registers), for the ablation
// comparison against CBStepCyclesDP.
func CBStepCyclesDPScheduled() float64 {
	return SteadyStateCycles(BuildCBStepsDP, 4, 12, DoublePrecision())
}

// CBStepCyclesSPNaive returns the cycles of one SP step issued in program
// order with no software pipelining — the ablation baseline for the
// 10-cycle pipe-0 startup latency discussion in Section IV-A.
func CBStepCyclesSPNaive() float64 {
	return float64(SimulateInOrder(BuildCBStepSP(), SinglePrecision()).Cycles)
}
