// Package pipeline models the SPE's two in-order issue pipelines
// (Section II-C and Table I): pipeline 0 executes arithmetic (add,
// compare, select), pipeline 1 executes memory and permute instructions
// (load, store, shuffle). Two instructions dual-issue only when their
// pipeline types differ. Each instruction class has a result latency;
// double-precision arithmetic additionally stalls its pipeline for six
// cycles (Section VI-A.5).
//
// The package provides two evaluators over the same instruction programs:
// an in-order issue simulator (what a naive instruction ordering costs)
// and a greedy list scheduler that models the paper's hand software
// pipelining (Section IV-A: hiding the 10-cycle pipe-0 startup latency and
// mixing the 16 steps, reaching 54 cycles for the 80-instruction
// computing-block step).
package pipeline

import (
	"fmt"

	"cellnpdp/internal/simd"
)

// Pipe identifies one of the SPE's two issue pipelines.
type Pipe int

// The SPE pipelines: Pipe0 is the arithmetic (even) pipeline, Pipe1 the
// load/store/permute (odd) pipeline.
const (
	Pipe0 Pipe = 0
	Pipe1 Pipe = 1
)

// Spec describes the timing of one instruction class.
type Spec struct {
	Latency int  // cycles from issue to result availability
	Pipe    Pipe // which pipeline executes the class
	Gap     int  // min issue-cycle distance to the next instruction on the same pipe (1 = fully pipelined)
	// StallBoth marks classes (the DPFP instructions) whose issue stalls
	// BOTH pipelines for Gap-1 cycles: the SPU issues nothing at all in a
	// double-precision instruction's stall shadow.
	StallBoth bool
}

// ISA is a complete timing table for the six instruction classes.
type ISA struct {
	Name string
	Spec [simd.NumOps]Spec
}

// SinglePrecision returns the Table I timings: Load 6/p1, Shuffle 4/p1,
// Add 6/p0, Compare 2/p0, Select 2/p0, Store 6/p1, all fully pipelined.
func SinglePrecision() ISA {
	var isa ISA
	isa.Name = "single"
	isa.Spec[simd.OpLoad] = Spec{Latency: 6, Pipe: Pipe1, Gap: 1}
	isa.Spec[simd.OpStore] = Spec{Latency: 6, Pipe: Pipe1, Gap: 1}
	isa.Spec[simd.OpShuffle] = Spec{Latency: 4, Pipe: Pipe1, Gap: 1}
	isa.Spec[simd.OpAdd] = Spec{Latency: 6, Pipe: Pipe0, Gap: 1}
	isa.Spec[simd.OpCmp] = Spec{Latency: 2, Pipe: Pipe0, Gap: 1}
	isa.Spec[simd.OpSel] = Spec{Latency: 2, Pipe: Pipe0, Gap: 1}
	return isa
}

// DoublePrecision returns the double-precision timings per Section
// VI-A.5: DPFP arithmetic (add, compare) has 13-cycle latency and incurs
// a 6-cycle stall before the next instruction can issue on the same
// pipeline (Gap = 7). Select is a bitwise operation and memory/permute
// timing is unchanged.
func DoublePrecision() ISA {
	isa := SinglePrecision()
	isa.Name = "double"
	isa.Spec[simd.OpAdd] = Spec{Latency: 13, Pipe: Pipe0, Gap: 7, StallBoth: true}
	isa.Spec[simd.OpCmp] = Spec{Latency: 13, Pipe: Pipe0, Gap: 7, StallBoth: true}
	return isa
}

// Validate checks that the table is self-consistent.
func (isa ISA) Validate() error {
	for i, s := range isa.Spec {
		if s.Latency <= 0 {
			return fmt.Errorf("pipeline: ISA %q: op %v has non-positive latency %d", isa.Name, simd.Op(i), s.Latency)
		}
		if s.Gap <= 0 {
			return fmt.Errorf("pipeline: ISA %q: op %v has non-positive gap %d", isa.Name, simd.Op(i), s.Gap)
		}
		if s.Pipe != Pipe0 && s.Pipe != Pipe1 {
			return fmt.Errorf("pipeline: ISA %q: op %v has invalid pipe %d", isa.Name, simd.Op(i), s.Pipe)
		}
	}
	return nil
}
