package pipeline

import (
	"fmt"

	"cellnpdp/internal/simd"
)

// NoReg marks an unused register operand slot.
const NoReg = -1

// Instr is one instruction of a straight-line kernel program. Operands
// are virtual register ids; the evaluators assume renaming (the SPE has
// 128 registers, enough to rename the whole computing-block kernel), so
// only true (read-after-write) dependences order instructions.
type Instr struct {
	Op  simd.Op
	Dst int    // destination register, NoReg for stores
	Src [3]int // source registers, NoReg for unused slots
}

// Program is a straight-line sequence of instructions.
type Program []Instr

// Mix tallies the program's instructions per class, the quantity Table I
// reports in its "execution number" column.
func (p Program) Mix() simd.Counts {
	var c simd.Counts
	for _, in := range p {
		c.Add(in.Op, 1)
	}
	return c
}

// MaxReg returns one past the highest register id used.
func (p Program) MaxReg() int {
	max := 0
	for _, in := range p {
		if in.Dst+1 > max {
			max = in.Dst + 1
		}
		for _, s := range in.Src {
			if s+1 > max {
				max = s + 1
			}
		}
	}
	return max
}

// Validate checks structural sanity: every source register is written by
// an earlier instruction or is a declared live-in.
func (p Program) Validate(liveIn []int) error {
	written := make(map[int]bool, len(p))
	for _, r := range liveIn {
		written[r] = true
	}
	for idx, in := range p {
		for _, s := range in.Src {
			if s == NoReg {
				continue
			}
			if !written[s] {
				return fmt.Errorf("pipeline: instr %d (%v) reads register r%d before any write", idx, in.Op, s)
			}
		}
		if in.Dst != NoReg {
			written[in.Dst] = true
		}
	}
	return nil
}

// deps returns, for each instruction, the indices of the instructions
// producing its source operands (true dependences only). liveIn registers
// have no producer.
func (p Program) deps() [][]int {
	producer := make(map[int]int) // register -> instr index of last write so far
	out := make([][]int, len(p))
	for idx, in := range p {
		var d []int
		for _, s := range in.Src {
			if s == NoReg {
				continue
			}
			if pi, ok := producer[s]; ok {
				d = append(d, pi)
			}
		}
		out[idx] = d
		if in.Dst != NoReg {
			producer[in.Dst] = idx
		}
	}
	return out
}
