package pipeline

import (
	"testing"

	"cellnpdp/internal/simd"
)

func TestISAsValidate(t *testing.T) {
	if err := SinglePrecision().Validate(); err != nil {
		t.Error(err)
	}
	if err := DoublePrecision().Validate(); err != nil {
		t.Error(err)
	}
	bad := SinglePrecision()
	bad.Spec[simd.OpAdd].Latency = 0
	if bad.Validate() == nil {
		t.Error("zero latency accepted")
	}
	bad = SinglePrecision()
	bad.Spec[simd.OpAdd].Gap = 0
	if bad.Validate() == nil {
		t.Error("zero gap accepted")
	}
	bad = SinglePrecision()
	bad.Spec[simd.OpAdd].Pipe = 7
	if bad.Validate() == nil {
		t.Error("invalid pipe accepted")
	}
}

func TestTableILatencies(t *testing.T) {
	isa := SinglePrecision()
	want := map[simd.Op]Spec{
		simd.OpLoad:    {Latency: 6, Pipe: Pipe1, Gap: 1},
		simd.OpShuffle: {Latency: 4, Pipe: Pipe1, Gap: 1},
		simd.OpAdd:     {Latency: 6, Pipe: Pipe0, Gap: 1},
		simd.OpCmp:     {Latency: 2, Pipe: Pipe0, Gap: 1},
		simd.OpSel:     {Latency: 2, Pipe: Pipe0, Gap: 1},
		simd.OpStore:   {Latency: 6, Pipe: Pipe1, Gap: 1},
	}
	for op, w := range want {
		if isa.Spec[op] != w {
			t.Errorf("%v spec = %+v, want Table I %+v", op, isa.Spec[op], w)
		}
	}
}

func TestCBStepProgramMix(t *testing.T) {
	p := BuildCBStepSP()
	if len(p) != 80 {
		t.Fatalf("SP CB step has %d instructions, want 80", len(p))
	}
	mix := p.Mix()
	want := map[simd.Op]int64{
		simd.OpLoad: 12, simd.OpShuffle: 16, simd.OpAdd: 16,
		simd.OpCmp: 16, simd.OpSel: 16, simd.OpStore: 4,
	}
	for op, w := range want {
		if mix.Get(op) != w {
			t.Errorf("%v = %d, want %d", op, mix.Get(op), w)
		}
	}
	if err := p.Validate(nil); err != nil {
		t.Errorf("SP program invalid: %v", err)
	}
	dp := BuildCBStepDP()
	if len(dp) != 144 {
		t.Errorf("DP CB step has %d instructions, want 144", len(dp))
	}
	if err := dp.Validate(nil); err != nil {
		t.Errorf("DP program invalid: %v", err)
	}
}

func TestPipeInstructionSplit(t *testing.T) {
	// 48 arithmetic instructions on pipe 0, 32 memory/permute on pipe 1
	// (Section IV-A's pipeline-type imbalance discussion).
	res := ListSchedule(BuildCBStepSP(), SinglePrecision())
	if res.Pipe0Issued != 48 || res.Pipe1Issued != 32 {
		t.Errorf("pipe split = %d/%d, want 48/32", res.Pipe0Issued, res.Pipe1Issued)
	}
	if res.Issued != 80 {
		t.Errorf("issued %d, want 80", res.Issued)
	}
}

func TestSoftwarePipelinedCBStepIs54Cycles(t *testing.T) {
	// The paper's headline kernel number: "it takes only 54 cycles to
	// execute the 80 SIMD instructions" (Section IV-A).
	got := CBStepCyclesSP()
	if got != 54 {
		t.Errorf("software-pipelined SP CB step = %g cycles, paper reports 54", got)
	}
}

func TestDPStepMuchSlowerThanSP(t *testing.T) {
	sp, dp := CBStepCyclesSP(), CBStepCyclesDP()
	if dp < 5*sp {
		t.Errorf("DP step %g cycles vs SP %g: expected ≥5× from 13-cycle latency + 6-cycle stall", dp, sp)
	}
}

func TestInOrderSlowerThanScheduled(t *testing.T) {
	p := BuildCBStepSP()
	isa := SinglePrecision()
	inOrder := SimulateInOrder(p, isa).Cycles
	listed := ListSchedule(p, isa).Cycles
	if listed > inOrder {
		t.Errorf("list schedule (%d) worse than program order (%d)", listed, inOrder)
	}
	if inOrder < 80/2 {
		t.Errorf("in-order %d cycles below the dual-issue floor", inOrder)
	}
}

func TestListScheduleResourceBound(t *testing.T) {
	// Makespan can never beat the busiest pipeline's instruction count.
	p := BuildCBStepsSP(8)
	res := ListSchedule(p, SinglePrecision())
	if res.Cycles < res.Pipe0Issued {
		t.Errorf("makespan %d below pipe-0 resource bound %d", res.Cycles, res.Pipe0Issued)
	}
}

func TestDPGapEnforced(t *testing.T) {
	// Two dependent DP adds: issue distance must respect latency, and two
	// independent DP adds on pipe 0 must respect the 7-cycle gap.
	isa := DoublePrecision()
	dep := Program{
		{Op: simd.OpLoad, Dst: 0, Src: [3]int{NoReg, NoReg, NoReg}},
		{Op: simd.OpAdd, Dst: 1, Src: [3]int{0, 0, NoReg}},
		{Op: simd.OpAdd, Dst: 2, Src: [3]int{1, 1, NoReg}},
	}
	res := SimulateInOrder(dep, isa)
	// load at 0 (lat 6), add1 at 6 (lat 13) -> done 19, add2 at 19 -> done 32.
	if res.Cycles != 32 {
		t.Errorf("dependent DP chain = %d cycles, want 32", res.Cycles)
	}
	indep := Program{
		{Op: simd.OpAdd, Dst: 0, Src: [3]int{NoReg, NoReg, NoReg}},
		{Op: simd.OpAdd, Dst: 1, Src: [3]int{NoReg, NoReg, NoReg}},
	}
	res = SimulateInOrder(indep, isa)
	// add at 0, gap 7 -> second at 7, done 20.
	if res.Cycles != 20 {
		t.Errorf("independent DP adds = %d cycles, want 20", res.Cycles)
	}
}

func TestDualIssueHappens(t *testing.T) {
	// An add (pipe 0) and an independent load (pipe 1) dual-issue.
	p := Program{
		{Op: simd.OpAdd, Dst: 0, Src: [3]int{NoReg, NoReg, NoReg}},
		{Op: simd.OpLoad, Dst: 1, Src: [3]int{NoReg, NoReg, NoReg}},
	}
	res := SimulateInOrder(p, SinglePrecision())
	if res.DualIssued != 1 {
		t.Errorf("dual-issued cycles = %d, want 1", res.DualIssued)
	}
	if res.Cycles != 6 {
		t.Errorf("cycles = %d, want 6", res.Cycles)
	}
}

func TestValidateCatchesUseBeforeDef(t *testing.T) {
	p := Program{{Op: simd.OpAdd, Dst: 1, Src: [3]int{0, NoReg, NoReg}}}
	if p.Validate(nil) == nil {
		t.Error("use-before-def not caught")
	}
	if err := p.Validate([]int{0}); err != nil {
		t.Errorf("live-in not honored: %v", err)
	}
}

func TestSteadyStateMonotone(t *testing.T) {
	// More unrolling can only help or hold steady, never hurt per-iteration cost.
	isa := SinglePrecision()
	c2 := SteadyStateCycles(BuildCBStepsSP, 1, 2, isa)
	c8 := SteadyStateCycles(BuildCBStepsSP, 4, 12, isa)
	if c8 > c2+1e-9 {
		t.Errorf("steady state worsened with unrolling: %g vs %g", c8, c2)
	}
}

func TestIPC(t *testing.T) {
	res := ListSchedule(BuildCBStepsSP(8), SinglePrecision())
	ipc := res.IPC()
	if ipc <= 1 || ipc > 2 {
		t.Errorf("IPC = %g, want in (1, 2] for the dual-issue SP kernel", ipc)
	}
	var zero Result
	if zero.IPC() != 0 {
		t.Error("IPC of empty result should be 0")
	}
}
