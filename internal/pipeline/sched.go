package pipeline

import "cellnpdp/internal/simd"

// Result summarizes one timing evaluation of a program.
type Result struct {
	Cycles      int // makespan: cycle after the last result is available
	Issued      int // instructions issued
	DualIssued  int // cycles in which both pipelines issued
	Pipe0Issued int // instructions issued on pipeline 0
	Pipe1Issued int // instructions issued on pipeline 1
	Mix         simd.Counts
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Issued) / float64(r.Cycles)
}

// SimulateInOrder runs the program through the dual-issue in-order
// pipeline model in exactly the given order. An instruction issues when
// (a) all earlier instructions have issued, (b) its operands' producing
// latencies have elapsed, and (c) its pipeline is free (the previous
// instruction on that pipeline issued at least Gap cycles earlier). Two
// consecutive instructions dual-issue in one cycle only when they target
// different pipelines — the fetch-group type restriction Section IV-A
// works around with software pipelining.
func SimulateInOrder(p Program, isa ISA) Result {
	ready := make([]int, p.MaxReg()) // cycle at which each register's value is available
	pipeFree := [2]int{0, 0}
	issueAt := make([]int, len(p))
	last := 0 // issue cycle of the previous instruction (in-order constraint)
	var res Result
	perCycle := map[int]int{}
	for idx, in := range p {
		spec := isa.Spec[in.Op]
		c := last
		if f := pipeFree[spec.Pipe]; f > c {
			c = f
		}
		for _, s := range in.Src {
			if s != NoReg && ready[s] > c {
				c = ready[s]
			}
		}
		issueAt[idx] = c
		last = c
		if spec.StallBoth {
			// DPFP issue freezes the whole machine for the stall window.
			pipeFree[Pipe0] = c + spec.Gap
			pipeFree[Pipe1] = c + spec.Gap
		}
		pipeFree[spec.Pipe] = c + spec.Gap
		if in.Dst != NoReg {
			ready[in.Dst] = c + spec.Latency
		}
		if end := c + spec.Latency; end > res.Cycles {
			res.Cycles = end
		}
		perCycle[c]++
		if spec.Pipe == Pipe0 {
			res.Pipe0Issued++
		} else {
			res.Pipe1Issued++
		}
		res.Issued++
	}
	for _, k := range perCycle {
		if k >= 2 {
			res.DualIssued++
		}
	}
	res.Mix = p.Mix()
	return res
}

// ListSchedule reorders the program greedily (critical-path-first list
// scheduling over the true-dependence DAG) and returns the resulting
// timing. This models the paper's software pipelining: the scheduler is
// free to interleave the 16 independent steps of the computing-block
// kernel to hide instruction latency, subject to dual-issue and the
// per-pipeline gap constraints.
func ListSchedule(p Program, isa ISA) Result {
	n := len(p)
	deps := p.deps()
	succs := make([][]int, n)
	indeg := make([]int, n)
	for i, ds := range deps {
		indeg[i] = len(ds)
		for _, d := range ds {
			succs[d] = append(succs[d], i)
		}
	}
	// Priority: longest latency-weighted path to any sink.
	prio := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		lat := isa.Spec[p[i].Op].Latency
		best := lat
		for _, s := range succs[i] {
			if v := lat + prio[s]; v > best {
				best = v
			}
		}
		prio[i] = best
	}

	earliest := make([]int, n) // data-ready cycle once indeg hits 0
	readyList := []int{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			readyList = append(readyList, i)
		}
	}
	pipeFree := [2]int{0, 0}
	scheduled := 0
	cycle := 0
	var res Result
	for scheduled < n {
		issuedThisCycle := 0
		for pipe := Pipe0; pipe <= Pipe1; pipe++ {
			if pipeFree[pipe] > cycle {
				continue
			}
			// Pick the ready instruction for this pipe with the highest priority.
			best, bestPos := -1, -1
			for pos, idx := range readyList {
				if isa.Spec[p[idx].Op].Pipe != pipe || earliest[idx] > cycle {
					continue
				}
				if best == -1 || prio[idx] > prio[best] {
					best, bestPos = idx, pos
				}
			}
			if best == -1 {
				continue
			}
			readyList = append(readyList[:bestPos], readyList[bestPos+1:]...)
			spec := isa.Spec[p[best].Op]
			if spec.StallBoth {
				pipeFree[Pipe0] = cycle + spec.Gap
				pipeFree[Pipe1] = cycle + spec.Gap
			}
			pipeFree[pipe] = cycle + spec.Gap
			done := cycle + spec.Latency
			if done > res.Cycles {
				res.Cycles = done
			}
			for _, s := range succs[best] {
				if e := done; e > earliest[s] {
					earliest[s] = e
				}
				indeg[s]--
				if indeg[s] == 0 {
					readyList = append(readyList, s)
				}
			}
			if pipe == Pipe0 {
				res.Pipe0Issued++
			} else {
				res.Pipe1Issued++
			}
			res.Issued++
			scheduled++
			issuedThisCycle++
		}
		if issuedThisCycle == 2 {
			res.DualIssued++
		}
		cycle++
	}
	res.Mix = p.Mix()
	return res
}

// SteadyStateCycles estimates the software-pipelined per-iteration cost
// of a kernel: it list-schedules lo and hi back-to-back independent
// iterations of the program produced by build and returns the marginal
// cost per iteration, (C(hi) - C(lo)) / (hi - lo). This removes pipeline
// fill/drain from the estimate, matching how the paper accounts the
// 54-cycle steady-state cost of a computing-block step.
func SteadyStateCycles(build func(iters int) Program, lo, hi int, isa ISA) float64 {
	cl := ListSchedule(build(lo), isa).Cycles
	ch := ListSchedule(build(hi), isa).Cycles
	return float64(ch-cl) / float64(hi-lo)
}
