package npdp

import (
	"fmt"
	"strings"

	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// Choices records, for every cell the recurrence improved, the split
// point k that realized its final value — the information a traceback
// needs to reconstruct an optimal derivation (a parenthesization tree, a
// secondary structure, a BST shape). Cells whose initial value was never
// beaten keep NoSplit: they are leaves of the derivation.
type Choices struct {
	n     int
	split []int32
}

// NoSplit marks a cell whose optimal value is its initial value.
const NoSplit = int32(-1)

// NewChoices allocates a choice table for an n-point problem.
func NewChoices(n int) *Choices {
	c := &Choices{n: n, split: make([]int32, tri.CellCount(n))}
	for i := range c.split {
		c.split[i] = NoSplit
	}
	return c
}

// idx maps (i, j) to the dense upper-triangle index.
func (c *Choices) idx(i, j int) int { return i*(2*c.n-i+1)/2 + (j - i) }

// Split returns the winning k of cell (i, j), or NoSplit.
func (c *Choices) Split(i, j int) int32 { return c.split[c.idx(i, j)] }

// set records the winning k.
func (c *Choices) set(i, j int, k int32) { c.split[c.idx(i, j)] = k }

// SolveSerialChoices runs the Figure 1 recurrence recording argmin splits.
// The DP values are bit-identical to SolveSerial (same evaluation order,
// same float operations); only the bookkeeping differs.
func SolveSerialChoices[E semiring.Elem](m *tri.RowMajor[E]) *Choices {
	n := m.Len()
	ch := NewChoices(n)
	for j := 0; j < n; j++ {
		for i := j - 1; i >= 0; i-- {
			v := m.At(i, j)
			best := NoSplit
			for k := i; k < j; k++ {
				if w := m.At(i, k) + m.At(k, j); w < v {
					v = w
					best = int32(k)
				}
			}
			m.Set(i, j, v)
			ch.set(i, j, best)
		}
	}
	return ch
}

// Derivation is a binary derivation tree for one cell: either a leaf
// (the cell's initial value was optimal) or a split at K into [I,K] and
// [K,J].
type Derivation struct {
	I, J        int
	K           int32
	Left, Right *Derivation
}

// Leaf reports whether this node keeps its initial value.
func (d *Derivation) Leaf() bool { return d.K == NoSplit }

// Tree reconstructs the derivation of cell (i, j) from recorded choices.
func (c *Choices) Tree(i, j int) (*Derivation, error) {
	if err := tri.CheckCell(c.n, i, j); err != nil {
		return nil, err
	}
	return c.tree(i, j, 0)
}

func (c *Choices) tree(i, j, depth int) (*Derivation, error) {
	if depth > c.n {
		return nil, fmt.Errorf("npdp: derivation of (%d,%d) exceeds depth %d (cyclic choices?)", i, j, c.n)
	}
	d := &Derivation{I: i, J: j, K: NoSplit}
	if i == j {
		return d, nil
	}
	k := c.Split(i, j)
	if k == NoSplit {
		return d, nil
	}
	if int(k) < i || int(k) >= j {
		return nil, fmt.Errorf("npdp: split %d outside [%d,%d)", k, i, j)
	}
	d.K = k
	var err error
	if d.Left, err = c.tree(i, int(k), depth+1); err != nil {
		return nil, err
	}
	if d.Right, err = c.tree(int(k), j, depth+1); err != nil {
		return nil, err
	}
	return d, nil
}

// String renders the derivation with parentheses: leaves as "[i,j]",
// splits as "(left right)".
func (d *Derivation) String() string {
	var b strings.Builder
	d.render(&b)
	return b.String()
}

func (d *Derivation) render(b *strings.Builder) {
	if d.Leaf() {
		fmt.Fprintf(b, "[%d,%d]", d.I, d.J)
		return
	}
	b.WriteByte('(')
	d.Left.render(b)
	b.WriteByte(' ')
	d.Right.render(b)
	b.WriteByte(')')
}

// Value recomputes the derivation's value from an *unsolved* copy of the
// instance: leaves contribute their initial value, splits add their
// children. Used to verify that a traceback really derives the DP's
// optimum.
func Value[E semiring.Elem](d *Derivation, init *tri.RowMajor[E]) E {
	if d.Leaf() {
		return init.At(d.I, d.J)
	}
	return Value(d.Left, init) + Value(d.Right, init)
}
