package npdp

import (
	"math"
	"testing"

	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

func TestOriginalSPEMatchesSerial(t *testing.T) {
	mach, _ := cellsim.NewMachine(cellsim.QS20())
	for _, n := range []int{4, 16, 48, 100} {
		src := workload.Chain[float32](n, int64(n))
		ref := solveRef(src)
		got := src.Clone()
		res, err := SolveOriginalSPE(got, mach, DefaultScalarRelaxCycles)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !tri.Equal[float32](ref, got) {
			t.Fatalf("n=%d: original-on-SPE differs from serial", n)
		}
		if res.Relax != int64(n)*(int64(n)*int64(n)-1)/6 {
			t.Errorf("n=%d: relax = %d", n, res.Relax)
		}
	}
}

func TestModelOriginalSPEMatchesFunctional(t *testing.T) {
	// The closed-form accounting must match the functional simulation
	// exactly: same commands, same bytes, same modeled seconds.
	cfg := cellsim.QS20()
	for _, n := range []int{8, 33, 96} {
		mach, _ := cellsim.NewMachine(cfg)
		src := workload.Chain[float32](n, 7)
		fun, err := SolveOriginalSPE(src, mach, DefaultScalarRelaxCycles)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := ModelOriginalSPE(n, Single, cfg, DefaultScalarRelaxCycles)
		if err != nil {
			t.Fatal(err)
		}
		if fun.DMA != mod.DMA {
			t.Errorf("n=%d: DMA stats differ: functional %+v vs model %+v", n, fun.DMA, mod.DMA)
		}
		if math.Abs(fun.Seconds-mod.Seconds) > 1e-9*math.Max(fun.Seconds, 1) {
			t.Errorf("n=%d: seconds differ: functional %g vs model %g", n, fun.Seconds, mod.Seconds)
		}
		if fun.Relax != mod.Relax {
			t.Errorf("n=%d: relax differ: %d vs %d", n, fun.Relax, mod.Relax)
		}
	}
}

func TestOriginalSPEDominatedByDMALatency(t *testing.T) {
	// The baseline's defining property: per-element column DMAs make the
	// run latency-bound, ≥ relax × DMALatency.
	cfg := cellsim.QS20()
	res, err := ModelOriginalSPE(512, Single, cfg, DefaultScalarRelaxCycles)
	if err != nil {
		t.Fatal(err)
	}
	floor := float64(res.Relax) * cfg.DMALatency
	if res.Seconds < floor {
		t.Errorf("seconds %g below the DMA-latency floor %g", res.Seconds, floor)
	}
}

func TestModelOriginalSPENearPaperTable2(t *testing.T) {
	// Table II: original algorithm, one SPE, single precision,
	// n=4096 → 3061 s. The model must land within 2×.
	res, err := ModelOriginalSPE(4096, Single, cellsim.QS20(), DefaultScalarRelaxCycles)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds < 3061/2 || res.Seconds > 3061*2 {
		t.Errorf("modeled original-on-SPE at n=4096 = %.0f s, paper measured 3061 s", res.Seconds)
	}
}

func TestModelOriginalPPENearPaperTable2(t *testing.T) {
	// Table II: original algorithm, one PPE, single precision,
	// n=4096 → 715 s. Within 2×.
	got, err := ModelOriginalPPE(4096, Single, DefaultPPEModel())
	if err != nil {
		t.Fatal(err)
	}
	if got < 715/2.0 || got > 715*2.0 {
		t.Errorf("modeled original-on-PPE at n=4096 = %.0f s, paper measured 715 s", got)
	}
}

func TestModelOriginalPPESuperlinearCliff(t *testing.T) {
	// Table II's PPE row jumps superlinearly from 715 s (n=4096) to
	// 21961 s (n=8192) — a ~30× step for a 2× size. The model reproduces
	// the cliff through the page-table working set outgrowing the L2.
	m := DefaultPPEModel()
	a, err := ModelOriginalPPE(4096, Single, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ModelOriginalPPE(8192, Single, m)
	if err != nil {
		t.Fatal(err)
	}
	if r := b / a; r < 12 {
		t.Errorf("PPE 8192/4096 time ratio = %g, want superlinear (>12; paper shows ≈30)", r)
	}
	c, err := ModelOriginalPPE(16384, Single, m)
	if err != nil {
		t.Fatal(err)
	}
	if r := c / b; math.Abs(r-8) > 1 {
		t.Errorf("PPE 16384/8192 ratio = %g, want ≈8 past the cliff (paper shows 8.6)", r)
	}
}

func TestOriginalModelsRejectBadArgs(t *testing.T) {
	cfg := cellsim.QS20()
	if _, err := ModelOriginalSPE(0, Single, cfg, 27); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ModelOriginalSPE(16, Single, cfg, 0); err == nil {
		t.Error("zero relax cycles accepted")
	}
	if _, err := ModelOriginalPPE(0, Single, DefaultPPEModel()); err == nil {
		t.Error("n=0 accepted by PPE model")
	}
	bad := DefaultPPEModel()
	bad.ClockHz = 0
	if _, err := ModelOriginalPPE(64, Single, bad); err == nil {
		t.Error("zero clock accepted by PPE model")
	}
	mach, _ := cellsim.NewMachine(cfg)
	src := workload.Chain[float32](8, 1)
	if _, err := SolveOriginalSPE(src, mach, -1); err == nil {
		t.Error("negative relax cycles accepted")
	}
}
