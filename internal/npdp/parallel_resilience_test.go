package npdp

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"cellnpdp/internal/resilience"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

// TestParallelFaultMixFivePercent drives the acceptance contract for the
// fault-injection suite: with panic/error/delay faults injected at a 5%
// task rate, every solve either completes with a bit-identical table
// (transient faults absorbed by retry) or fails fast with an error that
// identifies the faulting task (a panic is never retried) — and in both
// cases the pool winds down without leaking goroutines.
func TestParallelFaultMixFivePercent(t *testing.T) {
	const n = 300
	baseline := runtime.NumGoroutine()
	for seed := int64(1); seed <= 8; seed++ {
		src := workload.Chain[float32](n, 99)
		ref := solveRef(src)
		tt := tri.ToTiled(src, 32)
		_, err := SolveParallel(tt, ParallelOptions{
			Workers: 4, SchedSide: 1,
			Retry: resilience.RetryPolicy{MaxRetries: 3},
			Inject: &resilience.Injector{
				Rate: 0.05, Seed: seed,
				Kinds: []resilience.FaultKind{
					resilience.FaultError, resilience.FaultPanic, resilience.FaultDelay,
				},
				Delay: 100 * time.Microsecond,
			},
		})
		if err == nil {
			got := tri.ToRowMajor(tt)
			if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
				t.Fatalf("seed %d: survived faults but diverged at (%d,%d): %v vs %v", seed, i, j, av, bv)
			}
			continue
		}
		var te *resilience.TaskError
		if !errors.As(err, &te) {
			t.Fatalf("seed %d: failure lacks task identity: %v", seed, err)
		}
		var pe *resilience.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("seed %d: only panics are unretryable at 3 retries, got %v", seed, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
