package npdp

import (
	"cellnpdp/internal/kernel"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// ComputeTask runs the two-stage block procedure over every memory block
// of one scheduling task, in the dependence-safe MemoryBlockOrder
// (columns ascending, rows descending — Section IV-A's intra-task
// order). It is the unit of work a cluster worker executes for one
// dispatch: given a table holding the task's operand blocks (its row,
// column and diagonal neighbours) at their final values, the produced
// blocks are bit-identical to the same task computed by the
// single-process engines, because it is the same code path they call.
func ComputeTask[E semiring.Elem](t *tri.Tiled[E], task sched.Task, mul Stage1Func[E]) kernel.Stats {
	var st kernel.Stats
	for _, mb := range task.MemoryBlockOrder() {
		st.Add(computeMemoryBlock(t, mb[0], mb[1], mul))
	}
	return st
}
