package npdp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"unsafe"

	"cellnpdp/internal/kernel"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// ParallelOptions configures SolveParallel.
type ParallelOptions struct {
	// Workers is the number of concurrent goroutine workers — the host-CPU
	// counterpart of the paper's SPE count (16 on the QS20) and core count
	// (8 in Table III / Figure 10(b)). Required > 0.
	Workers int
	// SchedSide is the scheduling-block side in memory blocks (the paper's
	// g); 0 means 1 (one task per memory block). Negative values are
	// rejected.
	SchedSide int
	// FullDeps uses the unsimplified dependence graph (every left/below
	// task) instead of the paper's two-edge simplification — the
	// Section IV-B ablation.
	FullDeps bool
	// MutexPool routes scheduling through the mutex-guarded seed pool
	// (sched.RunPoolLocked) instead of the lock-free one — the
	// BenchmarkAblationLockfree baseline.
	MutexPool bool
	// NoPanelKernel computes stage 1 with the 4×4-step MulMinPlus
	// reference instead of the register-blocked panel kernel — the
	// BenchmarkAblationPanel baseline.
	NoPanelKernel bool
	// Stage1 overrides stage-1 kernel selection. The zero value
	// (perfmodel.KernelAuto) consults the Section V calibration via
	// perfmodel.PickKernel once per solve; explicit KernelScalar /
	// KernelPanel / KernelVector pin a kernel for ablations.
	// KernelFourRussians is rejected (lattice DPs go through
	// zuker.MaxPairs, not the min-plus engines). Ignored under
	// NoPanelKernel, which predates this knob and implies KernelScalar.
	Stage1 perfmodel.Kernel
	// Retry governs per-task retries of transient failures. Retrying a
	// memory-block task in place is safe because every relaxation is an
	// idempotent monotone min toward the same fixed point: the block's
	// dependences are final before the task starts, so recomputing over a
	// partially-updated block converges to bit-identical values. The zero
	// value never retries. Ignored under MutexPool.
	Retry resilience.RetryPolicy
	// Inject, when non-nil, is the deterministic fault-injection harness:
	// each (task, attempt) pair is independently faulted per its plan.
	// Ignored under MutexPool.
	Inject *resilience.Injector
	// Completed marks scheduler tasks (by ID, for the graph this solve
	// builds) already finished by an earlier run; the pool pre-notifies
	// them so only the remainder executes. The caller must have restored
	// those tasks' memory blocks into the table (resilience.Checkpoint
	// does both). Ignored under MutexPool.
	Completed []bool
	// CheckpointPath, when non-empty, enables periodic snapshots: after
	// every CheckpointEvery task completions (default 16) the completion
	// bitmap and all completed tasks' memory blocks are atomically written
	// to this file, and a final snapshot is written when the solve fails
	// part-way. Ignored under MutexPool.
	CheckpointPath string
	// CheckpointEvery is the snapshot period in completed tasks; 0 means
	// 16.
	CheckpointEvery int
	// Seal enables block sealing: every completed memory block is
	// digested into a lock-free CRC32C seal table and re-verified by a
	// post-solve audit (plus the online audit when AuditEvery > 0), so a
	// silent corruption is always detected, never returned as a wrong
	// answer. Costs one pristine table snapshot (2× table memory) while
	// the solve runs. Implied by Heal or AuditEvery > 0; ignored under
	// MutexPool.
	Seal bool
	// Heal enables poisoned-cone recovery on seal mismatch: the
	// corrupted block's task and its transitive successor cone are
	// restored from the pristine snapshot and re-dispatched, bounded by
	// HealAttempts rounds, then one pristine-restart fallback, then
	// *resilience.CorruptionError. Without Heal a detected corruption
	// errors immediately.
	Heal bool
	// HealAttempts bounds heal rounds; 0 means DefaultHealAttempts.
	HealAttempts int
	// AuditEvery runs the online seal audit every AuditEvery task
	// executions (0 disables it; the post-solve audit always runs when
	// sealing is on).
	AuditEvery int
	// HealStats, when non-nil, receives the sealing layer's counters.
	HealStats *resilience.HealStats
}

// computeMemoryBlock runs the two-stage SPE procedure for memory block
// (bi, bj) directly on the shared tiled table, with stage 1 on the
// solve's selected kernel (resolved once by ResolveStage1; the per-block
// loop only ever calls through mul). All dependence blocks are finished
// before this runs (guaranteed by the task graph), so concurrent tasks
// only ever read them.
func computeMemoryBlock[E semiring.Elem](t *tri.Tiled[E], bi, bj int, mul Stage1Func[E]) kernel.Stats {
	ts := t.Tile()
	if bi == bj {
		return kernel.Stage2Diag(t.Block(bj, bj), ts)
	}
	var st kernel.Stats
	d := t.Block(bi, bj)
	for k := bi + 1; k < bj; k++ {
		st.Add(mul(d, t.Block(bi, k), t.Block(k, bj), ts))
	}
	st.Add(kernel.Stage2OffDiag(d, t.Block(bi, bi), t.Block(bj, bj), ts))
	return st
}

// computeMemoryBlockCBStep is computeMemoryBlock with stage 1 on the 4×4
// CB-step reference kernel — the pre-panel seed hot path, kept for the
// panel ablation.
func computeMemoryBlockCBStep[E semiring.Elem](t *tri.Tiled[E], bi, bj int) kernel.Stats {
	ts := t.Tile()
	if bi == bj {
		return kernel.Stage2Diag(t.Block(bj, bj), ts)
	}
	var st kernel.Stats
	d := t.Block(bi, bj)
	for k := bi + 1; k < bj; k++ {
		st.Add(kernel.MulMinPlus(d, t.Block(bi, k), t.Block(k, bj), ts))
	}
	st.Add(kernel.Stage2OffDiag(d, t.Block(bi, bi), t.Block(bj, bj), ts))
	return st
}

// paddedStats is one worker's kernel.Stats padded out to two cache lines
// so neighboring workers' accumulators never share a line (128 bytes also
// clears the adjacent-line prefetcher's pairing).
type paddedStats struct {
	kernel.Stats
	_ [128 - unsafe.Sizeof(kernel.Stats{})]byte
}

// SolveParallel runs the tier-2 parallel procedure (Section IV-B) on real
// goroutine workers: the lock-free task-queue model over scheduling
// blocks with the simplified two-dependence graph, each worker computing
// the memory blocks of its tasks with the two-stage SPE procedure
// (stage 1 on the register-blocked panel kernel). This is the engine
// behind the paper's CPU-platform numbers (Tables III, Figures
// 9(b)–12(b)); on the Cell itself the cellsim-backed SolveCell adds the
// local-store and DMA modeling.
func SolveParallel[E semiring.Elem](t *tri.Tiled[E], opts ParallelOptions) (kernel.Stats, error) {
	return SolveParallelCtx(context.Background(), t, opts)
}

// parallelCheckpointer serializes snapshot state behind one mutex: the
// mutex both orders concurrent OnTaskDone calls and establishes the
// happens-before that makes reading completed tasks' blocks race-free
// (each worker's block writes precede its OnTaskDone, which precedes any
// later snapshot under the same lock). Completed blocks are final, so a
// snapshot only ever reads immutable table regions.
type parallelCheckpointer[E semiring.Elem] struct {
	mu    sync.Mutex
	path  string
	every int
	meta  resilience.Meta
	graph *sched.Graph
	t     *tri.Tiled[E]
	done  []bool
	since int
	err   error // first snapshot failure; surfaced after the run
}

func (c *parallelCheckpointer[E]) taskDone(task sched.Task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[task.ID] = true
	if c.since++; c.since >= c.every {
		c.since = 0
		c.save()
	}
}

// save writes a snapshot of every completed task's memory blocks; the
// caller holds c.mu. After the first failure snapshots stop (the stored
// error is surfaced when the solve returns).
func (c *parallelCheckpointer[E]) save() {
	if c.err != nil {
		return
	}
	var blocks [][2]int
	for id, d := range c.done {
		if d {
			blocks = append(blocks, c.graph.Tasks[id].MemoryBlockOrder()...)
		}
	}
	if err := resilience.SaveCheckpointFile(c.path, c.meta, c.done, c.t, blocks); err != nil {
		c.err = err
	}
}

// reset marks tasks incomplete again after a heal round restored their
// blocks (nil ids resets everything), so later snapshots never record a
// reverted task as done.
func (c *parallelCheckpointer[E]) reset(ids []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ids == nil {
		for i := range c.done {
			c.done[i] = false
		}
		return
	}
	for _, id := range ids {
		c.done[id] = false
	}
}

// final writes a last snapshot when the solve failed part-way (so resume
// never depends on the periodic boundary) and reports any snapshot error.
func (c *parallelCheckpointer[E]) final(solved bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !solved {
		c.save()
	}
	return c.err
}

// SolveParallelCtx is SolveParallel with the fault-tolerance layer wired
// in: context cancellation at task-dispatch granularity, per-task retry
// of transient failures, deterministic fault injection, checkpoint
// snapshots, and resume from a completion bitmap. Task failures surface
// as *resilience.TaskError carrying the task identity and attempt count.
// The MutexPool ablation bypasses all of it (plain locked pool).
func SolveParallelCtx[E semiring.Elem](ctx context.Context, t *tri.Tiled[E], opts ParallelOptions) (kernel.Stats, error) {
	if err := kernel.CheckTile(t.Tile()); err != nil {
		return kernel.Stats{}, err
	}
	if opts.Workers <= 0 {
		return kernel.Stats{}, fmt.Errorf("npdp: Workers must be positive, got %d", opts.Workers)
	}
	if opts.SchedSide < 0 {
		return kernel.Stats{}, fmt.Errorf("npdp: SchedSide must be non-negative, got %d", opts.SchedSide)
	}
	g := opts.SchedSide
	if g == 0 {
		g = 1
	}
	newGraph := sched.NewGraph
	if opts.FullDeps {
		newGraph = sched.NewFullGraph
	}
	graph, err := newGraph(t.Blocks(), g)
	if err != nil {
		return kernel.Stats{}, err
	}
	// Stage-1 kernel selection is hoisted here — once per solve, never
	// inside the per-block dispatch loops.
	compute := computeMemoryBlockCBStep[E]
	if !opts.NoPanelKernel {
		mul, err := ResolveStage1[E](opts.Stage1, t)
		if err != nil {
			return kernel.Stats{}, err
		}
		compute = func(t *tri.Tiled[E], bi, bj int) kernel.Stats {
			return computeMemoryBlock(t, bi, bj, mul)
		}
	}
	perWorker := make([]paddedStats, opts.Workers)

	if opts.MutexPool {
		// Ablation baseline: the mutex-guarded seed pool, without the
		// fault-tolerance plumbing.
		err = sched.RunPoolLocked(graph, opts.Workers, func(worker int, task sched.Task) error {
			for _, mb := range task.MemoryBlockOrder() {
				perWorker[worker].Stats.Add(compute(t, mb[0], mb[1]))
			}
			return nil
		})
		var st kernel.Stats
		for i := range perWorker {
			st.Add(perWorker[i].Stats)
		}
		return st, err
	}

	var h *healer[E]
	if opts.Seal || opts.Heal || opts.AuditEvery > 0 {
		h = newHealer(graph, t, opts.Inject, opts.AuditEvery, opts.HealStats, opts.Completed)
	}

	poolOpts := sched.PoolRunOptions{Completed: opts.Completed}
	var ck *parallelCheckpointer[E]
	if opts.CheckpointPath != "" {
		every := opts.CheckpointEvery
		if every <= 0 {
			every = 16
		}
		done := make([]bool, len(graph.Tasks))
		copy(done, opts.Completed)
		var e E
		ck = &parallelCheckpointer[E]{
			path:  opts.CheckpointPath,
			every: every,
			meta: resilience.Meta{
				N: t.Len(), Tile: t.Tile(), SchedSide: g,
				Tasks: len(graph.Tasks), ElemBytes: elemBytes(e),
			},
			graph: graph,
			t:     t,
			done:  done,
		}
		poolOpts.OnTaskDone = ck.taskDone
	}
	if h != nil {
		prev := poolOpts.OnTaskDone
		poolOpts.OnTaskDone = func(task sched.Task) {
			if prev != nil {
				prev(task)
			}
			h.taskDone(task)
		}
	}

	// attemptBase offsets injector attempt numbers per heal round so a
	// recomputed task re-rolls fresh fault plans instead of replaying the
	// round that corrupted it. Written only between runs; each run's
	// worker goroutines are created after the write.
	attemptBase := 0
	exec := func(worker int, task sched.Task) error {
		if h != nil {
			if aerr := h.maybeAudit(); aerr != nil {
				return aerr
			}
		}
		// Stats accumulate locally and merge only on success, so a
		// retried attempt never double-counts work.
		var local kernel.Stats
		sealAttempt := attemptBase
		attempts, err := opts.Retry.Do(func(attempt int) error {
			local = kernel.Stats{}
			sealAttempt = attemptBase + attempt
			if err := opts.Inject.Apply(task.ID, attemptBase+attempt); err != nil {
				return err
			}
			for _, mb := range task.MemoryBlockOrder() {
				local.Add(compute(t, mb[0], mb[1]))
			}
			return nil
		})
		if err != nil {
			return &resilience.TaskError{
				TaskID: task.ID, Bi: task.Bi, Bj: task.Bj,
				Worker: worker, Attempts: attempts, Err: err,
			}
		}
		if h != nil {
			h.sealTask(task, sealAttempt)
		}
		perWorker[worker].Stats.Add(local)
		return nil
	}

	retrySlots := opts.Retry.MaxRetries + 1
	runOnce := func(completed []bool, runIdx int) error {
		attemptBase = runIdx * retrySlots
		po := poolOpts
		po.Completed = completed
		return sched.RunPoolCtx(ctx, graph, opts.Workers, po, exec)
	}

	if h == nil {
		err = runOnce(opts.Completed, 0)
	} else {
		// The escalation ladder: detect (audit) → heal (poisoned-cone
		// recompute, bounded rounds) → pristine-restart fallback → typed
		// CorruptionError. The post-run audit always runs, so a solve
		// with sealing on can fail silently corrupted but never return
		// silently wrong.
		healAttempts := 0
		if opts.Heal {
			healAttempts = opts.HealAttempts
			if healAttempts <= 0 {
				healAttempts = DefaultHealAttempts
			}
		}
		completed := opts.Completed
		rounds, fellBack := 0, false
		for runIdx := 0; ; runIdx++ {
			err = runOnce(completed, runIdx)
			var cerr *resilience.CorruptionError
			if err != nil && !errors.As(err, &cerr) {
				break // non-corruption failure: surface as before
			}
			bad := h.audit()
			if len(bad) == 0 {
				// Either clean, or an online audit aborted the run but
				// the damage is gone (cannot happen for sealed blocks,
				// which are immutable; kept for safety).
				break
			}
			h.stats.CorruptBlocks += len(bad)
			if rounds < healAttempts {
				rounds++
				cone := h.heal(bad)
				if ck != nil {
					ck.reset(cone)
				}
				completed = h.completedBitmap()
				err = nil
				continue
			}
			if opts.Heal && !fellBack {
				fellBack = true
				h.restoreAll()
				if ck != nil {
					ck.reset(nil)
				}
				completed = nil
				err = nil
				continue
			}
			err = h.corruption(bad, rounds)
			break
		}
	}
	var st kernel.Stats
	for i := range perWorker {
		st.Add(perWorker[i].Stats)
	}
	if ck != nil {
		if ckErr := ck.final(err == nil); ckErr != nil && err == nil {
			err = fmt.Errorf("npdp: solve succeeded but checkpointing failed: %w", ckErr)
		}
	}
	return st, err
}
