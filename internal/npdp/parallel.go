package npdp

import (
	"fmt"

	"cellnpdp/internal/kernel"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// ParallelOptions configures SolveParallel.
type ParallelOptions struct {
	Workers   int // concurrent workers (the paper's SPE count / CPU cores); required > 0
	SchedSide int // memory blocks per scheduling-block side; 0 means 1 (one task per memory block)
	// FullDeps uses the unsimplified dependence graph (every left/below
	// task) instead of the paper's two-edge simplification — the
	// Section IV-B ablation.
	FullDeps bool
}

// computeMemoryBlock runs the two-stage SPE procedure for memory block
// (bi, bj) directly on the shared tiled table. All dependence blocks are
// finished before this runs (guaranteed by the task graph), so concurrent
// tasks only ever read them.
func computeMemoryBlock[E semiring.Elem](t *tri.Tiled[E], bi, bj int) kernel.Stats {
	ts := t.Tile()
	if bi == bj {
		return kernel.Stage2Diag(t.Block(bj, bj), ts)
	}
	var st kernel.Stats
	d := t.Block(bi, bj)
	for k := bi + 1; k < bj; k++ {
		st.Add(kernel.MulMinPlus(d, t.Block(bi, k), t.Block(k, bj), ts))
	}
	st.Add(kernel.Stage2OffDiag(d, t.Block(bi, bi), t.Block(bj, bj), ts))
	return st
}

// SolveParallel runs the tier-2 parallel procedure (Section IV-B) on real
// goroutine workers: the task-queue model over scheduling blocks with the
// simplified two-dependence graph, each worker computing the memory
// blocks of its tasks with the two-stage SPE procedure. This is the
// engine behind the paper's CPU-platform numbers (Tables III, Figures
// 9(b)–12(b)); on the Cell itself the cellsim-backed SolveCell adds the
// local-store and DMA modeling.
func SolveParallel[E semiring.Elem](t *tri.Tiled[E], opts ParallelOptions) (kernel.Stats, error) {
	if err := kernel.CheckTile(t.Tile()); err != nil {
		return kernel.Stats{}, err
	}
	if opts.Workers <= 0 {
		return kernel.Stats{}, fmt.Errorf("npdp: Workers must be positive, got %d", opts.Workers)
	}
	g := opts.SchedSide
	if g == 0 {
		g = 1
	}
	newGraph := sched.NewGraph
	if opts.FullDeps {
		newGraph = sched.NewFullGraph
	}
	graph, err := newGraph(t.Blocks(), g)
	if err != nil {
		return kernel.Stats{}, err
	}
	perWorker := make([]kernel.Stats, opts.Workers)
	err = sched.RunPool(graph, opts.Workers, func(worker int, task sched.Task) error {
		for _, mb := range task.MemoryBlockOrder() {
			perWorker[worker].Add(computeMemoryBlock(t, mb[0], mb[1]))
		}
		return nil
	})
	var st kernel.Stats
	for _, s := range perWorker {
		st.Add(s)
	}
	return st, err
}
