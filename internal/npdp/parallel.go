package npdp

import (
	"fmt"
	"unsafe"

	"cellnpdp/internal/kernel"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// ParallelOptions configures SolveParallel.
type ParallelOptions struct {
	// Workers is the number of concurrent goroutine workers — the host-CPU
	// counterpart of the paper's SPE count (16 on the QS20) and core count
	// (8 in Table III / Figure 10(b)). Required > 0.
	Workers int
	// SchedSide is the scheduling-block side in memory blocks (the paper's
	// g); 0 means 1 (one task per memory block). Negative values are
	// rejected.
	SchedSide int
	// FullDeps uses the unsimplified dependence graph (every left/below
	// task) instead of the paper's two-edge simplification — the
	// Section IV-B ablation.
	FullDeps bool
	// MutexPool routes scheduling through the mutex-guarded seed pool
	// (sched.RunPoolLocked) instead of the lock-free one — the
	// BenchmarkAblationLockfree baseline.
	MutexPool bool
	// NoPanelKernel computes stage 1 with the 4×4-step MulMinPlus
	// reference instead of the register-blocked panel kernel — the
	// BenchmarkAblationPanel baseline.
	NoPanelKernel bool
}

// mulStage1 dispatches one stage-1 block product to the fastest kernel
// for the element type: the non-generic float32 panel for
// single-precision tables, the generic panel otherwise. Both are
// bit-identical to kernel.MulMinPlus.
func mulStage1[E semiring.Elem](c, a, b []E, t int) kernel.Stats {
	if cf, ok := any(c).([]float32); ok {
		return kernel.PanelMinPlusF32(cf, any(a).([]float32), any(b).([]float32), t)
	}
	return kernel.PanelMinPlus(c, a, b, t)
}

// computeMemoryBlock runs the two-stage SPE procedure for memory block
// (bi, bj) directly on the shared tiled table, with stage 1 on the panel
// kernel. All dependence blocks are finished before this runs (guaranteed
// by the task graph), so concurrent tasks only ever read them.
func computeMemoryBlock[E semiring.Elem](t *tri.Tiled[E], bi, bj int) kernel.Stats {
	ts := t.Tile()
	if bi == bj {
		return kernel.Stage2Diag(t.Block(bj, bj), ts)
	}
	var st kernel.Stats
	d := t.Block(bi, bj)
	for k := bi + 1; k < bj; k++ {
		st.Add(mulStage1(d, t.Block(bi, k), t.Block(k, bj), ts))
	}
	st.Add(kernel.Stage2OffDiag(d, t.Block(bi, bi), t.Block(bj, bj), ts))
	return st
}

// computeMemoryBlockCBStep is computeMemoryBlock with stage 1 on the 4×4
// CB-step reference kernel — the pre-panel seed hot path, kept for the
// panel ablation.
func computeMemoryBlockCBStep[E semiring.Elem](t *tri.Tiled[E], bi, bj int) kernel.Stats {
	ts := t.Tile()
	if bi == bj {
		return kernel.Stage2Diag(t.Block(bj, bj), ts)
	}
	var st kernel.Stats
	d := t.Block(bi, bj)
	for k := bi + 1; k < bj; k++ {
		st.Add(kernel.MulMinPlus(d, t.Block(bi, k), t.Block(k, bj), ts))
	}
	st.Add(kernel.Stage2OffDiag(d, t.Block(bi, bi), t.Block(bj, bj), ts))
	return st
}

// paddedStats is one worker's kernel.Stats padded out to two cache lines
// so neighboring workers' accumulators never share a line (128 bytes also
// clears the adjacent-line prefetcher's pairing).
type paddedStats struct {
	kernel.Stats
	_ [128 - unsafe.Sizeof(kernel.Stats{})]byte
}

// SolveParallel runs the tier-2 parallel procedure (Section IV-B) on real
// goroutine workers: the lock-free task-queue model over scheduling
// blocks with the simplified two-dependence graph, each worker computing
// the memory blocks of its tasks with the two-stage SPE procedure
// (stage 1 on the register-blocked panel kernel). This is the engine
// behind the paper's CPU-platform numbers (Tables III, Figures
// 9(b)–12(b)); on the Cell itself the cellsim-backed SolveCell adds the
// local-store and DMA modeling.
func SolveParallel[E semiring.Elem](t *tri.Tiled[E], opts ParallelOptions) (kernel.Stats, error) {
	if err := kernel.CheckTile(t.Tile()); err != nil {
		return kernel.Stats{}, err
	}
	if opts.Workers <= 0 {
		return kernel.Stats{}, fmt.Errorf("npdp: Workers must be positive, got %d", opts.Workers)
	}
	if opts.SchedSide < 0 {
		return kernel.Stats{}, fmt.Errorf("npdp: SchedSide must be non-negative, got %d", opts.SchedSide)
	}
	g := opts.SchedSide
	if g == 0 {
		g = 1
	}
	newGraph := sched.NewGraph
	if opts.FullDeps {
		newGraph = sched.NewFullGraph
	}
	graph, err := newGraph(t.Blocks(), g)
	if err != nil {
		return kernel.Stats{}, err
	}
	run := sched.RunPool
	if opts.MutexPool {
		run = sched.RunPoolLocked
	}
	compute := computeMemoryBlock[E]
	if opts.NoPanelKernel {
		compute = computeMemoryBlockCBStep[E]
	}
	perWorker := make([]paddedStats, opts.Workers)
	err = run(graph, opts.Workers, func(worker int, task sched.Task) error {
		for _, mb := range task.MemoryBlockOrder() {
			perWorker[worker].Stats.Add(compute(t, mb[0], mb[1]))
		}
		return nil
	})
	var st kernel.Stats
	for i := range perWorker {
		st.Add(perWorker[i].Stats)
	}
	return st, err
}
