package npdp

import (
	"context"
	"fmt"
	"sync"

	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/kernel"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// SolveCellConcurrent executes Figure 8's control flow literally, with
// real concurrency: one PPE goroutine manages the task queue and notifies
// dependents; one goroutine per SPE loops "fetch a ready task, compute
// its memory blocks, report completion"; and every control word crosses a
// cellsim.Mailbox, as on the hardware. Completions from all SPEs funnel
// into one queue, modeling the PPE's mailbox-interrupt path.
//
// This mode validates the distributed protocol (no shared ready-queue
// state between workers, only mailbox messages); the DES-based SolveCell
// is the one that models time. Results are bit-identical to every other
// engine.
//
// Cancellation is checked between completions: when ctx fires, the PPE
// stops dispatching, closes every SPE's inbound mailbox (the hardware
// shutdown signal), waits for in-flight tasks to finish, and returns
// ctx.Err(). The table is left partially solved.
func SolveCellConcurrent[E semiring.Elem](ctx context.Context, t *tri.Tiled[E], workers int) (kernel.Stats, error) {
	if err := kernel.CheckTile(t.Tile()); err != nil {
		return kernel.Stats{}, err
	}
	if workers <= 0 {
		return kernel.Stats{}, fmt.Errorf("npdp: workers must be positive, got %d", workers)
	}
	graph, err := sched.NewGraph(t.Blocks(), 1)
	if err != nil {
		return kernel.Stats{}, err
	}
	mul, err := ResolveStage1[E](perfmodel.KernelAuto, t)
	if err != nil {
		return kernel.Stats{}, err
	}
	n := len(graph.Tasks)
	if n > 1<<31-1 {
		return kernel.Stats{}, fmt.Errorf("npdp: %d tasks exceed the 32-bit mailbox word", n)
	}

	// One mailbox per SPE; completions share one outbound queue (create
	// via a common channel by wiring each mailbox's out to a forwarder).
	boxes := make([]*cellsim.Mailbox, workers)
	complete := make(chan [2]uint32, workers) // (spe, task)
	for w := range boxes {
		if boxes[w], err = cellsim.NewMailbox(cellsim.HardwareInboundDepth, 1); err != nil {
			return kernel.Stats{}, err
		}
	}

	perWorker := make([]kernel.Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(spe int) {
			defer wg.Done()
			// SPEprocedure, Figure 8 steps 6–13.
			for {
				taskID, ok := boxes[spe].ReadInbound()
				if !ok {
					return
				}
				task := graph.Tasks[taskID]
				for _, mb := range task.MemoryBlockOrder() {
					perWorker[spe].Add(computeMemoryBlock(t, mb[0], mb[1], mul))
				}
				boxes[spe].WriteOutbound(taskID)
				complete <- [2]uint32{uint32(spe), taskID}
			}
		}(w)
	}

	// PPEprocedure, Figure 8 steps 1–5.
	pending := make([]int, n)
	var ready []uint32
	for i, task := range graph.Tasks {
		pending[i] = len(task.Deps)
		if pending[i] == 0 {
			ready = append(ready, uint32(i))
		}
	}
	idle := make([]int, 0, workers)
	for w := 0; w < workers; w++ {
		idle = append(idle, w)
	}
	remaining := n
	dispatch := func() {
		for len(ready) > 0 && len(idle) > 0 {
			taskID := ready[0]
			ready = ready[1:]
			spe := idle[len(idle)-1]
			idle = idle[:len(idle)-1]
			boxes[spe].Send(taskID)
		}
	}
	dispatch()
	var ctxErr error
	for remaining > 0 {
		var done [2]uint32
		select {
		case done = <-complete:
		case <-ctx.Done():
			// Stop dispatching; in-flight tasks drain below. The complete
			// channel is buffered one slot per SPE, so abandoned
			// completions never block a worker.
			ctxErr = ctx.Err()
		}
		if ctxErr != nil {
			break
		}
		spe, taskID := int(done[0]), done[1]
		// Drain the SPE's outbound word (the interrupt already carried it).
		<-boxes[spe].Outbound()
		remaining--
		idle = append(idle, spe)
		for _, s := range graph.Tasks[taskID].Succs {
			pending[s]--
			if pending[s] == 0 {
				ready = append(ready, uint32(s))
			}
		}
		dispatch()
	}
	for _, b := range boxes {
		b.CloseInbound()
	}
	wg.Wait()
	if ctxErr != nil {
		return kernel.Stats{}, ctxErr
	}

	var st kernel.Stats
	for _, s := range perWorker {
		st.Add(s)
	}
	return st, nil
}
