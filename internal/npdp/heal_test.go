package npdp

import (
	"errors"
	"testing"

	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

// corruptInjector injects silent bit flips at rate with the given seed.
func corruptInjector(rate float64, seed int64) *resilience.Injector {
	return &resilience.Injector{
		Rate: rate, Seed: seed,
		Kinds: []resilience.FaultKind{resilience.FaultCorrupt},
	}
}

// TestParallelHealFivePercentBitIdentical is the tentpole acceptance
// test: FaultCorrupt at a 5% task rate on n=1024 with healing enabled
// must converge to a table bit-identical to the serial solve, and the
// run must actually have healed something.
func TestParallelHealFivePercentBitIdentical(t *testing.T) {
	const n = 1024
	src := workload.Chain[float32](n, 7)
	ref := solveRef(src)
	tt := tri.ToTiled(src, 64)
	var hs resilience.HealStats
	if _, err := SolveParallel(tt, ParallelOptions{
		Workers: 4, SchedSide: 1,
		Heal: true, HealStats: &hs,
		Inject: corruptInjector(0.05, 21),
	}); err != nil {
		t.Fatalf("healed solve failed: %v", err)
	}
	if hs.CorruptBlocks == 0 || hs.HealRounds == 0 {
		t.Fatalf("rate-0.05 run healed nothing: %+v", hs)
	}
	if hs.Audits == 0 {
		t.Fatalf("no audit ran: %+v", hs)
	}
	got := tri.ToRowMajor(tt)
	if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
		t.Fatalf("healed table diverged at (%d,%d): serial=%v healed=%v (stats %+v)", i, j, av, bv, hs)
	}
}

// TestParallelDetectOnlyFailsLoudly asserts the no-heal contract: with
// sealing on but healing off, injected corruption surfaces as a
// *resilience.CorruptionError naming the bad blocks — never a silently
// wrong table, and never a nil error.
func TestParallelDetectOnlyFailsLoudly(t *testing.T) {
	const n = 400
	src := workload.Chain[float32](n, 7)
	tt := tri.ToTiled(src, 64)
	var hs resilience.HealStats
	_, err := SolveParallel(tt, ParallelOptions{
		Workers: 4, SchedSide: 1,
		Seal: true, HealStats: &hs,
		Inject: corruptInjector(0.3, 21),
	})
	var ce *resilience.CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("want *resilience.CorruptionError, got %v", err)
	}
	if len(ce.Blocks) == 0 || len(ce.TaskIDs) != len(ce.Blocks) || ce.Healed != 0 {
		t.Fatalf("malformed corruption error: %+v", ce)
	}
	if hs.CorruptBlocks != len(ce.Blocks) {
		t.Fatalf("stats count %d vs error's %d blocks", hs.CorruptBlocks, len(ce.Blocks))
	}
}

// TestParallelHealRecomputesOnlyTheCone finds a single-corruption run and
// asserts the repair touched a strict subset of the task graph — the
// poisoned cone, not a restart.
func TestParallelHealRecomputesOnlyTheCone(t *testing.T) {
	const n = 600
	src := workload.Chain[float32](n, 7)
	ref := solveRef(src)
	for seed := int64(1); seed <= 300; seed++ {
		src := workload.Chain[float32](n, 7)
		tt := tri.ToTiled(src, 64)
		m := tt.Blocks()
		total := m * (m + 1) / 2
		var hs resilience.HealStats
		if _, err := SolveParallel(tt, ParallelOptions{
			Workers: 4, SchedSide: 1,
			Heal: true, HealStats: &hs,
			Inject: corruptInjector(0.02, seed),
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if hs.CorruptBlocks != 1 || hs.HealRounds != 1 || hs.CheckpointFallback {
			continue
		}
		if hs.RecomputedTasks >= total {
			t.Fatalf("seed %d: single corruption recomputed %d of %d tasks", seed, hs.RecomputedTasks, total)
		}
		got := tri.ToRowMajor(tt)
		if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
			t.Fatalf("seed %d: diverged at (%d,%d): %v vs %v", seed, i, j, av, bv)
		}
		return
	}
	t.Fatal("no seed in 1..300 produced a single isolated corruption")
}

// TestParallelSealCleanRunNoOverheadEvents asserts a sealed solve with no
// injector audits clean: no corruption, no heal rounds, bit-identical.
func TestParallelSealCleanRunNoOverheadEvents(t *testing.T) {
	const n = 300
	src := workload.Chain[float32](n, 7)
	ref := solveRef(src)
	tt := tri.ToTiled(src, 32)
	var hs resilience.HealStats
	if _, err := SolveParallel(tt, ParallelOptions{
		Workers: 4, SchedSide: 1,
		Heal: true, AuditEvery: 5, HealStats: &hs,
	}); err != nil {
		t.Fatal(err)
	}
	if hs.CorruptBlocks != 0 || hs.HealRounds != 0 || hs.RecomputedTasks != 0 {
		t.Fatalf("clean run reported heal work: %+v", hs)
	}
	if hs.Audits == 0 {
		t.Fatal("online auditing never ran")
	}
	got := tri.ToRowMajor(tt)
	if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
		t.Fatalf("diverged at (%d,%d): %v vs %v", i, j, av, bv)
	}
}

// TestParallelHealWithRetryAndErrors mixes silent corruption with
// retryable transient errors: the retry layer absorbs the errors, the
// seal layer the corruption, and the result is still bit-identical.
func TestParallelHealWithRetryAndErrors(t *testing.T) {
	const n = 500
	src := workload.Chain[float32](n, 7)
	ref := solveRef(src)
	tt := tri.ToTiled(src, 64)
	var hs resilience.HealStats
	if _, err := SolveParallel(tt, ParallelOptions{
		Workers: 4, SchedSide: 1,
		Retry: resilience.RetryPolicy{MaxRetries: 5},
		Heal:  true, HealStats: &hs,
		Inject: &resilience.Injector{
			Rate: 0.1, Seed: 3,
			Kinds: []resilience.FaultKind{resilience.FaultError, resilience.FaultCorrupt},
		},
	}); err != nil {
		t.Fatalf("mixed-fault healed solve failed: %v", err)
	}
	got := tri.ToRowMajor(tt)
	if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
		t.Fatalf("diverged at (%d,%d): %v vs %v (stats %+v)", i, j, av, bv, hs)
	}
}

// TestCellHealMatchesSerial drives the cell engine's functional path
// under silent corruption with healing on: the DES completes, the heal
// loop repairs in wavefront order, and the table matches serial exactly.
func TestCellHealMatchesSerial(t *testing.T) {
	mach, err := cellsim.NewMachine(cellsim.QS20())
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{0.05, 0.2} {
		const n = 200
		src := workload.Chain[float32](n, int64(n))
		ref := solveRef(src)
		tt := tri.ToTiled(src, 16)
		opts := cellOpts(4)
		opts.Inject = corruptInjector(rate, 9)
		opts.Heal = true
		var hs resilience.HealStats
		opts.HealStats = &hs
		res, err := SolveCell(tt, mach, opts)
		if err != nil {
			t.Fatalf("rate %g: %v", rate, err)
		}
		if hs.CorruptBlocks == 0 {
			t.Fatalf("rate %g injected nothing", rate)
		}
		got := tri.ToRowMajor(tt)
		if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
			t.Fatalf("rate %g: diverged at (%d,%d): %v vs %v", rate, i, j, av, bv)
		}
		if res.Seconds <= 0 {
			t.Errorf("rate %g: non-positive modeled time", rate)
		}
	}
}

// TestCellDetectOnlyFailsLoudly asserts the cell engine's no-heal
// contract mirrors the parallel one.
func TestCellDetectOnlyFailsLoudly(t *testing.T) {
	mach, err := cellsim.NewMachine(cellsim.QS20())
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	src := workload.Chain[float32](n, int64(n))
	tt := tri.ToTiled(src, 16)
	opts := cellOpts(4)
	opts.Inject = corruptInjector(0.2, 9)
	opts.Seal = true
	_, err = SolveCell(tt, mach, opts)
	var ce *resilience.CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("want *resilience.CorruptionError, got %v", err)
	}
}
