package npdp

import (
	"sync"
	"sync/atomic"

	"cellnpdp/internal/resilience"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// DefaultHealAttempts bounds poisoned-cone recompute rounds when healing
// is enabled without an explicit budget. Each round re-rolls the fault
// injector at a fresh attempt base, so under sustained injection the
// corrupt set shrinks roughly geometrically; a generous bound lets rates
// like 5% converge while still guaranteeing termination.
const DefaultHealAttempts = 32

// healer is the self-healing layer shared by the parallel and cell
// engines: it seals every completed memory block with a CRC32C digest,
// audits seals online and post-solve, and when a seal mismatches
// restores the poisoned cone (the corrupted block's task plus its
// transitive successors) from a pristine snapshot so the engine can
// recompute just that cone.
//
// The corruption model deliberately matches a silent hardware fault: the
// injected bit flip happens after a task's blocks are computed and
// CRC'd but before the seals are stored, so the flipped block itself is
// detectable (content ≠ seal) while every task that later consumed it
// seals its own garbage consistently — which is exactly why recovery
// must recompute the whole cone, not just the flipped block.
//
// Memory-ordering note for the concurrent (parallel-pool) engine: a
// task's block writes and bit flip all precede its Seal stores (atomic
// release); an auditor's Sealed load (acquire) precedes its block reads;
// unsealed blocks are never read by an audit. Audits therefore only ever
// read immutable bytes and the layer is race-free under the detector.
type healer[E semiring.Elem] struct {
	graph *sched.Graph
	t     *tri.Tiled[E]
	// pristine is the table snapshot at healer creation (initial values
	// plus any checkpoint-restored blocks) — the known-good state cone
	// tasks are reset to before recomputation. Relaxations are monotone
	// mins, so a recompute cannot undo a downward (value-shrinking)
	// corruption in place; restoring first is what makes healed results
	// bit-identical. Costs one extra table copy while sealing is on.
	pristine   *tri.Tiled[E]
	seals      *resilience.SealTable
	inject     *resilience.Injector
	stats      *resilience.HealStats
	auditEvery int
	blockTask  []int // dense memory-block ID → computing task ID
	done       []atomic.Bool
	execs      atomic.Int64
	auditMu    sync.Mutex
}

// newHealer snapshots the table and seals any blocks already restored by
// a resume (completed tasks), so audits cover resumed state too.
func newHealer[E semiring.Elem](graph *sched.Graph, t *tri.Tiled[E], inject *resilience.Injector,
	auditEvery int, stats *resilience.HealStats, completed []bool) *healer[E] {
	if stats == nil {
		stats = &resilience.HealStats{}
	}
	m := t.Blocks()
	h := &healer[E]{
		graph:      graph,
		t:          t,
		pristine:   t.Clone(),
		seals:      resilience.NewSealTable(m * (m + 1) / 2),
		inject:     inject,
		stats:      stats,
		auditEvery: auditEvery,
		blockTask:  make([]int, m*(m+1)/2),
		done:       make([]atomic.Bool, len(graph.Tasks)),
	}
	for _, task := range graph.Tasks {
		for _, mb := range task.MemoryBlockOrder() {
			h.blockTask[t.BlockID(mb[0], mb[1])] = task.ID
		}
	}
	for id := range completed {
		if completed[id] {
			h.done[id].Store(true)
			for _, mb := range graph.Tasks[id].MemoryBlockOrder() {
				h.seals.Seal(t.BlockID(mb[0], mb[1]), resilience.BlockCRC(t.Block(mb[0], mb[1])))
			}
		}
	}
	return h
}

// taskDone records a task completion (composed into the pool's
// OnTaskDone); the completion bitmap drives heal-round re-dispatch.
func (h *healer[E]) taskDone(task sched.Task) { h.done[task.ID].Store(true) }

// sealTask digests and seals every memory block of a completed task,
// injecting the planned FaultCorrupt flip between the digest and the
// seal store so injected corruption is silent to the computation but
// visible to the next audit.
func (h *healer[E]) sealTask(task sched.Task, attempt int) {
	mbs := task.MemoryBlockOrder()
	crcs := make([]uint32, len(mbs))
	for i, mb := range mbs {
		crcs[i] = resilience.BlockCRC(h.t.Block(mb[0], mb[1]))
	}
	if h.inject != nil && h.inject.Plan(task.ID, attempt) == resilience.FaultCorrupt {
		draw := h.inject.CorruptDraw(task.ID, attempt)
		mb := mbs[int((draw>>48)%uint64(len(mbs)))]
		resilience.CorruptBit(h.t.Block(mb[0], mb[1]), draw)
	}
	for i, mb := range mbs {
		h.seals.Seal(h.t.BlockID(mb[0], mb[1]), crcs[i])
	}
}

// maybeAudit is the online auditor piggybacked on task dispatch: every
// auditEvery-th task execution re-verifies all seals, surfacing a
// *resilience.CorruptionError as the task's failure so the pool aborts
// the run and the heal loop takes over mid-solve.
func (h *healer[E]) maybeAudit() error {
	if h.auditEvery <= 0 {
		return nil
	}
	if h.execs.Add(1)%int64(h.auditEvery) != 0 {
		return nil
	}
	if bad := h.audit(); len(bad) > 0 {
		return h.corruption(bad, 0)
	}
	return nil
}

// audit re-digests every sealed block and returns the tile coordinates
// of those whose content no longer matches the seal.
func (h *healer[E]) audit() [][2]int {
	h.auditMu.Lock()
	defer h.auditMu.Unlock()
	h.stats.Audits++
	var bad [][2]int
	m := h.t.Blocks()
	for bi := 0; bi < m; bi++ {
		for bj := bi; bj < m; bj++ {
			id := h.t.BlockID(bi, bj)
			if want, ok := h.seals.Sealed(id); ok && resilience.BlockCRC(h.t.Block(bi, bj)) != want {
				bad = append(bad, [2]int{bi, bj})
			}
		}
	}
	return bad
}

// corruption builds the typed error for a set of corrupted blocks.
func (h *healer[E]) corruption(bad [][2]int, healed int) *resilience.CorruptionError {
	ce := &resilience.CorruptionError{Blocks: bad, Healed: healed}
	seen := make(map[int]bool)
	for _, b := range bad {
		id := h.blockTask[h.t.BlockID(b[0], b[1])]
		if !seen[id] {
			seen[id] = true
			ce.TaskIDs = append(ce.TaskIDs, id)
		}
	}
	return ce
}

// heal prepares one poisoned-cone recompute round: every task in the
// transitive successor cone of the corrupted blocks has its memory
// blocks restored from the pristine snapshot, its seals cleared, and its
// completion bit reset. The returned cone IDs are the tasks the engine
// must re-dispatch.
func (h *healer[E]) heal(bad [][2]int) []int {
	seen := make(map[int]bool)
	var seeds []int
	for _, b := range bad {
		id := h.blockTask[h.t.BlockID(b[0], b[1])]
		if !seen[id] {
			seen[id] = true
			seeds = append(seeds, id)
		}
	}
	cone := h.graph.Cone(seeds)
	for _, id := range cone {
		for _, mb := range h.graph.Tasks[id].MemoryBlockOrder() {
			copy(h.t.Block(mb[0], mb[1]), h.pristine.Block(mb[0], mb[1]))
			h.seals.Unseal(h.t.BlockID(mb[0], mb[1]))
		}
		h.done[id].Store(false)
	}
	h.stats.HealRounds++
	h.stats.RecomputedTasks += len(cone)
	return cone
}

// restoreAll is the last escalation tier before erroring out: the whole
// table reverts to the pristine snapshot (the in-memory level-0
// checkpoint — the on-disk one cannot serve here, since its periodic
// snapshots may already contain the silently corrupted bytes) and the
// engine recomputes from scratch once more.
func (h *healer[E]) restoreAll() {
	copy(h.t.Cells(), h.pristine.Cells())
	for id := 0; id < h.seals.Len(); id++ {
		h.seals.Unseal(id)
	}
	for i := range h.done {
		h.done[i].Store(false)
	}
	h.stats.CheckpointFallback = true
	h.stats.RecomputedTasks += len(h.graph.Tasks)
}

// completedBitmap snapshots the completion state for the next run's
// pre-notification (only tasks outside the healed cone stay done).
func (h *healer[E]) completedBitmap() []bool {
	out := make([]bool, len(h.done))
	for i := range h.done {
		out[i] = h.done[i].Load()
	}
	return out
}
