package npdp

import (
	"context"
	"fmt"
	"sort"

	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/kernel"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/resilience"
	"cellnpdp/internal/sched"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/trace"
	"cellnpdp/internal/tri"
)

// CellOptions configures a CellNPDP run on the simulated Cell processor.
type CellOptions struct {
	// Workers is the number of SPEs used (≤ the machine's SPE count).
	Workers int
	// SchedSide is the scheduling-block side in memory blocks (≥ 1).
	SchedSide int
	// UseSIMD selects the SPE procedure's SIMD computing-block kernel;
	// false models the new-data-layout-only ablation, where every
	// relaxation runs as scalar SPU code (Figure 10(a)'s NDL bar).
	UseSIMD bool
	// DoubleBuffer overlaps stage-1 prefetch DMA with computation; false
	// is the ablation that waits for each transfer before computing.
	DoubleBuffer bool
	// CBStepCycles is the modeled cycles of one software-pipelined
	// computing-block step (pipeline.CBStepCyclesSP/DP; the paper's 54
	// for single precision).
	CBStepCycles float64
	// ScalarRelaxCycles is the modeled cycles of one scalar relaxation
	// on an SPU (latency-bound scalar code on a SIMD core).
	ScalarRelaxCycles float64
	// CallOverheadCycles is the per-kernel-call control cost on the SPU
	// (loop prologue, DMA issue, tag-status reads, software-pipeline
	// ramp). Smaller memory blocks mean more calls for the same work —
	// part of Section VI-D's small-block penalty. 0 uses the default.
	CallOverheadCycles float64
	// Stage1 overrides the functional stage-1 kernel, as in
	// ParallelOptions.Stage1. The modeled cycle accounting is unchanged
	// — the SPE's Table I kernel is what the simulator times — so this
	// only affects host-side wall time of functional runs. Timing-only
	// runs (ModelCell) ignore it.
	Stage1 perfmodel.Kernel
	// RowMajorDMA models the prior works' tiling on the row-major
	// layout (Figure 4): a block's rows are scattered in memory, so each
	// block fetch issues one DMA command per row instead of one for the
	// whole block — "we have to use a number of DMA commands to prefetch
	// each row" (Section III). The ablation behind the NDL contribution.
	RowMajorDMA bool
	// Trace, when non-nil, records per-SPE compute/wait/task intervals
	// for Gantt rendering (internal/trace).
	Trace *trace.Log
	// Inject is the deterministic fault injector. The cell engine honors
	// only FaultCorrupt plans (silent post-completion bit flips in main
	// memory); error/panic/delay model host-side concerns the serial
	// discrete-event dispatcher has no analogue for. Timing-only runs
	// (ModelCell) ignore it — there is no data to corrupt.
	Inject *resilience.Injector
	// Seal enables block sealing with a post-solve audit, so silent
	// corruption is detected rather than returned. Implied by Heal.
	// Functional runs only.
	Seal bool
	// Heal enables poisoned-cone recovery: cone tasks are restored from
	// the pristine snapshot and recomputed serially with the same
	// kernels, outside the DES — the modeled time and DMA statistics
	// deliberately exclude recovery work, which on real hardware would
	// run at PPE convenience after the timed solve.
	Heal bool
	// HealAttempts bounds heal rounds; 0 means DefaultHealAttempts.
	HealAttempts int
	// HealStats, when non-nil, receives the sealing layer's counters.
	HealStats *resilience.HealStats
}

// DefaultCallOverheadCycles is the modeled per-kernel-call control cost.
const DefaultCallOverheadCycles = 1000

// DefaultScalarRelaxCycles is the modeled cost of one scalar
// d[i][j] = min(d[i][j], d[i][k]+d[k][j]) on an SPU: the dependent
// load→add→compare→select→store chain is latency-bound on scalar data
// (quadword loads plus element rotates), about 27 cycles.
const DefaultScalarRelaxCycles = 27

// DefaultScalarRelaxCyclesDP is the double-precision scalar relaxation
// cost: the chain additionally carries a 13-cycle DPFP add and compare,
// each stalling both pipelines for 6 cycles (Section VI-A.5).
const DefaultScalarRelaxCyclesDP = 55

// ScalarRelaxCyclesFor returns the default scalar relaxation cost for a
// precision.
func ScalarRelaxCyclesFor(p Precision) float64 {
	if p == Double {
		return DefaultScalarRelaxCyclesDP
	}
	return DefaultScalarRelaxCycles
}

// Validate checks the options against a machine.
func (o CellOptions) Validate(m *cellsim.Machine) error {
	if o.Workers <= 0 || o.Workers > len(m.SPEs) {
		return fmt.Errorf("npdp: Workers = %d outside [1, %d]", o.Workers, len(m.SPEs))
	}
	if o.SchedSide <= 0 {
		return fmt.Errorf("npdp: SchedSide must be positive, got %d", o.SchedSide)
	}
	if o.CBStepCycles <= 0 {
		return fmt.Errorf("npdp: CBStepCycles must be positive, got %g", o.CBStepCycles)
	}
	if o.ScalarRelaxCycles <= 0 {
		return fmt.Errorf("npdp: ScalarRelaxCycles must be positive, got %g", o.ScalarRelaxCycles)
	}
	if o.CallOverheadCycles < 0 {
		return fmt.Errorf("npdp: CallOverheadCycles must be non-negative, got %g", o.CallOverheadCycles)
	}
	return nil
}

// callOverhead returns the per-call control cost, defaulted.
func (o CellOptions) callOverhead() float64 {
	if o.CallOverheadCycles > 0 {
		return o.CallOverheadCycles
	}
	return DefaultCallOverheadCycles
}

// CellResult reports a CellNPDP run.
type CellResult struct {
	Seconds float64      // modeled wall time on the simulated machine
	Stats   kernel.Stats // kernel work performed
	DMA     cellsim.DMAStats
	Busy    []float64 // per-SPE busy virtual seconds
}

// ParallelEfficiency returns Σ busy / (workers × makespan).
func (r CellResult) ParallelEfficiency() float64 {
	if r.Seconds == 0 || len(r.Busy) == 0 {
		return 0
	}
	var sum float64
	for _, b := range r.Busy {
		sum += b
	}
	return sum / (float64(len(r.Busy)) * r.Seconds)
}

// computeCycles converts kernel work into modeled SPU cycles under the
// selected compute mode.
func (o CellOptions) computeCycles(st kernel.Stats) float64 {
	if o.UseSIMD {
		return float64(st.CBSteps)*o.CBStepCycles + float64(st.ScalarRelax)*o.ScalarRelaxCycles
	}
	return float64(st.Relaxations()) * o.ScalarRelaxCycles
}

// cellEngine carries one run's shared state. data is nil in timing-only
// runs (paper-scale modeling), in which case kernels are skipped and the
// analytic work counts stand in.
type cellEngine[E semiring.Elem] struct {
	ctx       context.Context
	data      *tri.Tiled[E]
	tile      int
	blocks    int
	elemBytes int
	machine   *cellsim.Machine
	opts      CellOptions
	stats     kernel.Stats
	heal      *healer[E]       // nil unless sealing is on and data is present
	workerBuf []*speBuffers[E] // per-worker buffer sets, allocated on first task
	// mul is the functional stage-1 kernel, resolved once per solve by
	// SolveCellCtx — hoisted out of computeMB's //npdp:dispatch loop so
	// selection never runs per middle tile. nil in timing-only runs.
	mul Stage1Func[E]
}

func (e *cellEngine[E]) blockBytes() int { return e.tile * e.tile * e.elemBytes }

// speBuffers is the Section III six-buffer layout: the block being
// computed, two double-buffered pairs of dependence blocks, and a spare
// that lets the L/R prefetch for stage 2 start while the last stage-1
// pair is still in use.
type speBuffers[E semiring.Elem] struct {
	d    *cellsim.Buffer[E]
	a, b [2]*cellsim.Buffer[E]
	aux  *cellsim.Buffer[E]
}

func (e *cellEngine[E]) allocBuffers(spe *cellsim.SPE) (*speBuffers[E], error) {
	n := e.tile * e.tile
	bufs := &speBuffers[E]{}
	var err error
	alloc := func() *cellsim.Buffer[E] {
		if err != nil {
			return nil
		}
		var b *cellsim.Buffer[E]
		b, err = cellsim.Alloc[E](spe, n, e.elemBytes)
		return b
	}
	bufs.d = alloc()
	bufs.a[0], bufs.b[0] = alloc(), alloc()
	bufs.a[1], bufs.b[1] = alloc(), alloc()
	bufs.aux = alloc()
	if err != nil {
		bufs.free()
		return nil, fmt.Errorf("npdp: tile %d does not fit the six-buffer local-store layout: %w", e.tile, err)
	}
	return bufs, nil
}

func (b *speBuffers[E]) free() {
	for _, buf := range []*cellsim.Buffer[E]{b.d, b.a[0], b.b[0], b.a[1], b.b[1], b.aux} {
		if buf != nil {
			buf.Free()
		}
	}
}

// DMA tag groups used by the SPE procedure.
const (
	tagD    = 0 // the block being computed
	tagPair = 1 // stage-1 dependence pairs: tagPair+0 and tagPair+1
	tagLR   = 3 // the two diagonal blocks for stage 2
	tagPut  = 4 // write-back
)

// blockHome returns the memory channel block (bi, bj) is homed on: the
// table is interleaved block-wise across the chips' memories, so with two
// chips roughly half of every SPE's fetches are remote.
func (e *cellEngine[E]) blockHome(bi, bj int) int {
	channels := e.machine.Config.MemChannels
	if channels <= 1 {
		return 0
	}
	// Dense block id without needing the data layout.
	id := bi*(2*e.blocks-bi+1)/2 + (bj - bi)
	return id % channels
}

// getBlock issues the DMA fetching memory block (bi, bj) into buf (or a
// timing-only transfer when the engine has no data). Under RowMajorDMA
// the same bytes arrive as one command per scattered row.
func (e *cellEngine[E]) getBlock(spe *cellsim.SPE, buf *cellsim.Buffer[E], bi, bj, tag int) error {
	if e.opts.RowMajorDMA {
		spe.GetTimedScattered(e.blockBytes(), e.tile, tag, e.blockHome(bi, bj))
		if e.data != nil {
			// Functional copy still moves the whole block (values are
			// identical; only the command accounting differs).
			copy(buf.Data, e.data.Block(bi, bj))
		}
		return nil
	}
	if e.data == nil {
		spe.GetTimedHomed(e.blockBytes(), tag, e.blockHome(bi, bj))
		return nil
	}
	return buf.GetHomed(e.data.Block(bi, bj), tag, e.blockHome(bi, bj))
}

// putBlock issues the write-back DMA of the computed block.
func (e *cellEngine[E]) putBlock(spe *cellsim.SPE, buf *cellsim.Buffer[E], bi, bj, tag int) error {
	if e.data == nil {
		spe.PutTimedHomed(e.blockBytes(), tag, e.blockHome(bi, bj))
		return nil
	}
	return buf.PutHomed(e.data.Block(bi, bj), tag, e.blockHome(bi, bj))
}

// wait advances the SPE past a tag group's completion, recording any
// stall as a DMA-wait interval.
func (e *cellEngine[E]) wait(spe *cellsim.SPE, tag int) {
	before := spe.Clock
	spe.WaitTag(tag)
	e.opts.Trace.Add(spe.ID, trace.KindDMAWait, before, spe.Clock, "tag")
}

// advance moves the SPE's clock by a computation, recording the interval.
func (e *cellEngine[E]) advance(spe *cellsim.SPE, cycles float64, label string) {
	before := spe.Clock
	spe.AdvanceCycles(cycles)
	e.opts.Trace.Add(spe.ID, trace.KindCompute, before, spe.Clock, label)
}

// computeMB runs the two-stage SPE procedure (Figure 8 steps 8–12) for
// memory block (bi, bj) on the given SPE, advancing its virtual clock by
// the modeled compute cycles and booking all DMA traffic.
func (e *cellEngine[E]) computeMB(spe *cellsim.SPE, bufs *speBuffers[E], bi, bj int) error {
	t := e.tile
	// The D buffer is reused across this task's memory blocks; the next
	// fetch into it must wait for the previous write-back to finish.
	e.wait(spe, tagPut)
	if bi == bj {
		if err := e.getBlock(spe, bufs.d, bj, bj, tagD); err != nil {
			return err
		}
		e.wait(spe, tagD)
		st := kernel.StatsStage2Diag(t)
		if e.data != nil {
			got := kernel.Stage2Diag(bufs.d.Data, t)
			if got != st {
				return fmt.Errorf("npdp: diagonal block stats mismatch: %+v vs analytic %+v", got, st)
			}
		}
		e.stats.Add(st)
		e.advance(spe, e.opts.computeCycles(st)+e.opts.callOverhead(), "diag")
		return e.putBlock(spe, bufs.d, bj, bj, tagPut)
	}

	mid := bj - bi - 1 // middle tiles feeding stage 1
	if err := e.getBlock(spe, bufs.d, bi, bj, tagD); err != nil {
		return err
	}
	// Prefetch the first stage-1 pair (or, if there is none, L and R).
	if mid > 0 {
		if err := e.getBlock(spe, bufs.a[0], bi, bi+1, tagPair); err != nil {
			return err
		}
		if err := e.getBlock(spe, bufs.b[0], bi+1, bj, tagPair); err != nil {
			return err
		}
	} else {
		if err := e.getBlock(spe, bufs.a[0], bi, bi, tagLR); err != nil {
			return err
		}
		if err := e.getBlock(spe, bufs.b[0], bj, bj, tagLR); err != nil {
			return err
		}
	}
	e.wait(spe, tagD)

	lr := 0 // buffer pair that will hold L and R for stage 2
	//npdp:dispatch
	for idx := 0; idx < mid; idx++ {
		// Long off-diagonal blocks run one stage-1 product per middle
		// tile; checking between double-buffer phases bounds the
		// cancellation latency by one product instead of a whole block.
		if err := e.ctx.Err(); err != nil {
			return err
		}
		cur := idx % 2
		nxt := 1 - cur
		e.wait(spe, tagPair+cur)
		// Prefetch the next pair — or L and R — into the other buffers.
		if idx+1 < mid {
			k := bi + idx + 2
			if err := e.getBlock(spe, bufs.a[nxt], bi, k, tagPair+nxt); err != nil {
				return err
			}
			if err := e.getBlock(spe, bufs.b[nxt], k, bj, tagPair+nxt); err != nil {
				return err
			}
		} else {
			lr = nxt
			if err := e.getBlock(spe, bufs.a[nxt], bi, bi, tagLR); err != nil {
				return err
			}
			if err := e.getBlock(spe, bufs.b[nxt], bj, bj, tagLR); err != nil {
				return err
			}
		}
		if !e.opts.DoubleBuffer {
			// Ablation: serialize the prefetch with the computation.
			e.wait(spe, tagPair+nxt)
			e.wait(spe, tagLR)
		}
		st := kernel.StatsMulMinPlus(t)
		if e.data != nil {
			// Values via the selected kernel (bit-identical to
			// MulMinPlus); cycle accounting stays the analytic Table I
			// figure above — the simulator models the SPE, not the host.
			e.mul(bufs.d.Data, bufs.a[cur].Data, bufs.b[cur].Data, t)
		}
		e.stats.Add(st)
		e.advance(spe, e.opts.computeCycles(st)+e.opts.callOverhead(), "mul")
	}

	e.wait(spe, tagLR)
	st := kernel.StatsStage2OffDiag(t)
	if e.data != nil {
		kernel.Stage2OffDiag(bufs.d.Data, bufs.a[lr].Data, bufs.b[lr].Data, t)
	}
	e.stats.Add(st)
	e.advance(spe, e.opts.computeCycles(st)+e.opts.callOverhead(), "stage2")
	return e.putBlock(spe, bufs.d, bi, bj, tagPut)
}

// run executes the full CellNPDP algorithm (Figure 8): the PPE procedure
// is the discrete-event dispatcher over the simplified task graph, the
// SPE procedure is computeMB over each task's memory blocks.
func (e *cellEngine[E]) run() (CellResult, error) {
	graph, err := sched.NewGraph(e.blocks, e.opts.SchedSide)
	if err != nil {
		return CellResult{}, err
	}
	if (e.opts.Seal || e.opts.Heal) && e.data != nil {
		e.heal = newHealer(graph, e.data, e.opts.Inject, 0, e.opts.HealStats, nil)
	}
	// Cost-aware urgencies: a task's priority is the most expensive
	// remaining dependence chain hanging off it (estimated from the
	// analytic kernel counts). List scheduling with these stays within a
	// few percent of the work bound; hop-count priorities lose ~20% when
	// tasks are few and uneven.
	taskCost := make([]float64, len(graph.Tasks))
	for i, task := range graph.Tasks {
		var cycles float64
		for _, mb := range task.MemoryBlockOrder() {
			cycles += e.opts.computeCycles(kernel.StatsMemoryBlock(e.tile, mb[0], mb[1]))
		}
		taskCost[i] = cycles / e.machine.Config.ClockHz
	}
	prio := make([]float64, len(graph.Tasks))
	var remaining func(id int) float64
	remaining = func(id int) float64 {
		if prio[id] > 0 {
			return prio[id]
		}
		best := 0.0
		for _, s := range graph.Tasks[id].Succs {
			if v := remaining(s); v > best {
				best = v
			}
		}
		prio[id] = taskCost[id] + best
		return prio[id]
	}
	for i := range graph.Tasks {
		remaining(i)
	}

	e.workerBuf = make([]*speBuffers[E], e.opts.Workers)
	des, err := sched.RunDESWithPriority(graph, e.opts.Workers, e.machine.Config.DispatchOverhead, prio,
		func(worker int, task sched.Task, start float64) (float64, error) {
			// Cancellation at task-dispatch granularity, mirroring the
			// goroutine pool: the DES stops issuing tasks mid-solve.
			if err := e.ctx.Err(); err != nil {
				return 0, err
			}
			spe := e.machine.SPEs[worker]
			if start < spe.Clock {
				return 0, fmt.Errorf("npdp: SPE %d dispatched at %g before its clock %g", worker, start, spe.Clock)
			}
			spe.Clock = start
			bufs := e.workerBuf[worker]
			if bufs == nil {
				var err error
				bufs, err = e.allocBuffers(spe)
				if err != nil {
					return 0, err
				}
				e.workerBuf[worker] = bufs
			}
			for _, mb := range task.MemoryBlockOrder() {
				if err := e.computeMB(spe, bufs, mb[0], mb[1]); err != nil {
					return 0, err
				}
			}
			before := spe.Clock
			spe.WaitAll()
			if e.heal != nil {
				// Write-backs drained: digest, apply any planned silent
				// flip, and seal. The DES runs on one goroutine, so the
				// ordering needs no synchronization here.
				e.heal.taskDone(task)
				e.heal.sealTask(task, 0)
			}
			e.opts.Trace.Add(spe.ID, trace.KindDMAWait, before, spe.Clock, "drain")
			e.opts.Trace.Add(spe.ID, trace.KindTask, start, spe.Clock,
				fmt.Sprintf("(%d,%d)-(%d,%d)", task.RowLo, task.ColLo, task.RowHi-1, task.ColHi-1))
			return spe.Clock, nil
		})
	for _, bufs := range e.workerBuf {
		if bufs != nil {
			bufs.free()
		}
	}
	if err != nil {
		return CellResult{}, err
	}
	if e.heal != nil {
		if herr := e.healLoop(graph); herr != nil {
			return CellResult{}, herr
		}
	}
	return CellResult{
		Seconds: des.Makespan,
		Stats:   e.stats,
		DMA:     e.machine.Stats,
		Busy:    des.WorkerBusy,
	}, nil
}

// healLoop is the cell engine's post-solve escalation ladder: audit →
// poisoned-cone recompute (bounded rounds) → pristine-restart fallback →
// *resilience.CorruptionError. Recovery is functional and serial —
// tasks recompute in wavefront order (Bj−Bi ascending, so every
// dependence is strictly earlier) with the same MulMinPlus/Stage2
// kernels the SPE procedure ran, so a healed table is bit-identical to
// a clean solve. The recompute work counts into Stats but not into the
// modeled Seconds or DMA traffic.
func (e *cellEngine[E]) healLoop(graph *sched.Graph) error {
	h := e.heal
	healAttempts := 0
	if e.opts.Heal {
		healAttempts = e.opts.HealAttempts
		if healAttempts <= 0 {
			healAttempts = DefaultHealAttempts
		}
	}
	rounds, fellBack := 0, false
	// runIdx starts at 1: the DES run sealed at attempt 0, so each
	// recompute round re-rolls fresh fault plans.
	for runIdx := 1; ; runIdx++ {
		bad := h.audit()
		if len(bad) == 0 {
			return nil
		}
		h.stats.CorruptBlocks += len(bad)
		var ids []int
		switch {
		case rounds < healAttempts:
			rounds++
			ids = h.heal(bad)
		case e.opts.Heal && !fellBack:
			fellBack = true
			h.restoreAll()
			ids = make([]int, len(graph.Tasks))
			for i := range ids {
				ids[i] = i
			}
		default:
			return h.corruption(bad, rounds)
		}
		sort.Slice(ids, func(x, y int) bool {
			dx := graph.Tasks[ids[x]].Bj - graph.Tasks[ids[x]].Bi
			dy := graph.Tasks[ids[y]].Bj - graph.Tasks[ids[y]].Bi
			if dx != dy {
				return dx < dy
			}
			return ids[x] < ids[y]
		})
		for _, id := range ids {
			task := graph.Tasks[id]
			for _, mb := range task.MemoryBlockOrder() {
				e.stats.Add(computeMemoryBlockCBStep(e.data, mb[0], mb[1]))
			}
			h.taskDone(task)
			h.sealTask(task, runIdx)
		}
	}
}

// SolveCell runs CellNPDP functionally on the simulated Cell: the DP
// table is computed in place (bit-identical to SolveSerial) while the
// simulator produces the modeled QS20 time and DMA statistics. The
// machine is reset first; it must not be shared with concurrent runs.
func SolveCell[E semiring.Elem](t *tri.Tiled[E], m *cellsim.Machine, opts CellOptions) (CellResult, error) {
	return SolveCellCtx(context.Background(), t, m, opts)
}

// SolveCellCtx is SolveCell with cancellation checked each time the
// discrete-event dispatcher issues a task to an SPE.
func SolveCellCtx[E semiring.Elem](ctx context.Context, t *tri.Tiled[E], m *cellsim.Machine, opts CellOptions) (CellResult, error) {
	if err := kernel.CheckTile(t.Tile()); err != nil {
		return CellResult{}, err
	}
	if err := opts.Validate(m); err != nil {
		return CellResult{}, err
	}
	m.Reset()
	// Stage-1 kernel selection is hoisted here — once per solve, never
	// inside computeMB's per-middle-tile dispatch loop.
	mul, err := ResolveStage1[E](opts.Stage1, t)
	if err != nil {
		return CellResult{}, err
	}
	var e E
	eng := &cellEngine[E]{
		ctx:       ctx,
		data:      t,
		tile:      t.Tile(),
		blocks:    t.Blocks(),
		elemBytes: elemBytes(e),
		machine:   m,
		opts:      opts,
		mul:       mul,
	}
	return eng.run()
}

// ModelCell runs CellNPDP in timing-only mode for an n-point problem:
// the same task graph, DMA schedule and cycle accounting as SolveCell,
// but no data is allocated or computed, so paper-scale sizes (Table II's
// n = 16384) model in milliseconds.
func ModelCell(n, tile int, prec Precision, m *cellsim.Machine, opts CellOptions) (CellResult, error) {
	if err := tri.CheckSize(n); err != nil {
		return CellResult{}, err
	}
	if err := kernel.CheckTile(tile); err != nil {
		return CellResult{}, err
	}
	if err := opts.Validate(m); err != nil {
		return CellResult{}, err
	}
	m.Reset()
	eng := &cellEngine[float32]{
		//nolint:npdplint(ctxdispatch) timing-only mode has no cancellation points; ModelCell deliberately has no Ctx twin
		ctx:       context.Background(),
		data:      nil,
		tile:      tile,
		blocks:    (n + tile - 1) / tile,
		elemBytes: prec.ElemBytes(),
		machine:   m,
		opts:      opts,
	}
	return eng.run()
}

// elemBytes returns the byte width of a semiring element.
func elemBytes(e any) int {
	switch e.(type) {
	case float64:
		return 8
	default:
		return 4
	}
}
