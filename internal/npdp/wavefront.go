package npdp

import (
	"fmt"
	"sync"

	"cellnpdp/internal/kernel"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// SolveWavefrontBarrier is the prior work's parallelization strategy
// (Tan et al. [25]: "a parallel algorithm which performs NPDP step by
// step; in each step, a block of data … is computed by all cores in
// parallel"): memory blocks are grouped into anti-diagonal waves —
// wave w holds every block (i, j) with j−i = w, all mutually independent
// once waves 0..w−1 are done — and a barrier separates consecutive waves.
//
// Compared to the paper's task-queue procedure (SolveParallel), the
// barrier forfeits the overlap between a wave's stragglers and the next
// wave's ready blocks; the ablation benches quantify the cost. Results
// are bit-identical to every other engine.
func SolveWavefrontBarrier[E semiring.Elem](t *tri.Tiled[E], workers int) (kernel.Stats, error) {
	if err := kernel.CheckTile(t.Tile()); err != nil {
		return kernel.Stats{}, err
	}
	if workers <= 0 {
		return kernel.Stats{}, fmt.Errorf("npdp: workers must be positive, got %d", workers)
	}
	m := t.Blocks()
	mul, err := ResolveStage1[E](perfmodel.KernelAuto, t)
	if err != nil {
		return kernel.Stats{}, err
	}
	perWorker := make([]kernel.Stats, workers)
	for wave := 0; wave < m; wave++ {
		// Blocks (i, i+wave) for i = 0..m-1-wave, strided across workers.
		count := m - wave
		var wg sync.WaitGroup
		for w := 0; w < workers && w < count; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for idx := worker; idx < count; idx += workers {
					perWorker[worker].Add(computeMemoryBlock(t, idx, idx+wave, mul))
				}
			}(w)
		}
		wg.Wait() // the barrier the task queue removes
	}
	var st kernel.Stats
	for _, s := range perWorker {
		st.Add(s)
	}
	return st, nil
}
