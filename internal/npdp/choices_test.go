package npdp

import (
	"strings"
	"testing"

	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

func TestChoicesValuesMatchPlainSolve(t *testing.T) {
	for _, n := range []int{4, 20, 77, 150} {
		src := workload.Chain[float32](n, int64(n))
		plain := src.Clone()
		SolveSerial(plain)
		withCh := src.Clone()
		SolveSerialChoices(withCh)
		if !tri.Equal[float32](plain, withCh) {
			t.Fatalf("n=%d: choice-tracking changed DP values", n)
		}
	}
}

func TestDerivationValueEqualsOptimum(t *testing.T) {
	// The reconstructed derivation, re-evaluated on the unsolved
	// instance, must reproduce the DP's optimal value for every cell.
	for _, seed := range []int64{1, 2, 3} {
		const n = 60
		init := workload.Dense[float32](n, seed)
		solved := init.Clone()
		ch := SolveSerialChoices(solved)
		for j := 0; j < n; j++ {
			for i := 0; i <= j; i++ {
				d, err := ch.Tree(i, j)
				if err != nil {
					t.Fatal(err)
				}
				// Value re-associates the same additions the DP performed
				// along the winning derivation, in the same order
				// (left-to-right down the tree matches d[i][k]+d[k][j]).
				if got := Value(d, init); got != solved.At(i, j) {
					t.Fatalf("seed %d cell (%d,%d): derivation value %v != optimum %v",
						seed, i, j, got, solved.At(i, j))
				}
			}
		}
	}
}

func TestDerivationStructure(t *testing.T) {
	const n = 30
	init := workload.Chain[float32](n, 5)
	solved := init.Clone()
	ch := SolveSerialChoices(solved)
	d, err := ch.Tree(0, n-1)
	if err != nil {
		t.Fatal(err)
	}
	// With only adjacent spans initialized, the derivation must
	// decompose the full range into exactly n-1 adjacent leaves.
	var leaves [][2]int
	var walk func(*Derivation)
	walk = func(x *Derivation) {
		if x.Leaf() {
			leaves = append(leaves, [2]int{x.I, x.J})
			return
		}
		walk(x.Left)
		walk(x.Right)
	}
	walk(d)
	if len(leaves) != n-1 {
		t.Fatalf("derivation has %d leaves, want %d", len(leaves), n-1)
	}
	for idx, lf := range leaves {
		if lf[0] != idx || lf[1] != idx+1 {
			t.Fatalf("leaf %d = %v, want [%d,%d]", idx, lf, idx, idx+1)
		}
	}
	s := d.String()
	if !strings.HasPrefix(s, "(") || strings.Count(s, "[") != n-1 {
		t.Errorf("rendering malformed: %s", s)
	}
}

func TestChoicesLeafForUnimproved(t *testing.T) {
	src := workload.Dense[float32](10, 9)
	// Make one cell so cheap nothing can beat it.
	src.Set(2, 7, -1000)
	ch := SolveSerialChoices(src)
	if ch.Split(2, 7) != NoSplit {
		t.Error("unbeatable initial value still got a split")
	}
	d, err := ch.Tree(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Leaf() {
		t.Error("tree of unimproved cell is not a leaf")
	}
}

func TestChoicesTreeRejectsBadCell(t *testing.T) {
	ch := NewChoices(8)
	if _, err := ch.Tree(5, 3); err == nil {
		t.Error("lower-triangle cell accepted")
	}
	if _, err := ch.Tree(0, 8); err == nil {
		t.Error("out-of-range cell accepted")
	}
}

func TestGenericSemiringMatchesSpecialized(t *testing.T) {
	const n = 50
	src := workload.Dense[float32](n, 4)
	gen := src.Clone()
	SolveSerialSemiring[float32](gen, MinPlusSemiring[float32]{})
	spec := src.Clone()
	SolveSerial(spec)
	if !tri.Equal[float32](gen, spec) {
		t.Error("generic min-plus differs from specialized solver")
	}
}

func TestMaxPlusFindsLongestDerivation(t *testing.T) {
	// With max-plus, composing more spans can only help when all values
	// are positive: the optimum of [0,n-1] must use every point.
	const n = 12
	m := tri.NewRowMajor[float32](n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 0)
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 1) // every span available at cost 1
		}
	}
	SolveSerialSemiring[float32](tri.Table[float32](m), MaxPlus[float32]{})
	// Longest derivation: n-1 adjacent spans of value 1 each.
	if got := m.At(0, n-1); got != float32(n-1) {
		t.Errorf("max-plus optimum = %v, want %v", got, n-1)
	}
}

func TestMinMaxBottleneck(t *testing.T) {
	// Bottleneck: the best composition minimizes the largest component.
	const n = 5
	m := tri.NewRowMajor[float32](n)
	inf := semiring.Inf[float32]()
	for i := 0; i < n; i++ {
		m.Set(i, i, 0)
		for j := i + 1; j < n; j++ {
			m.Set(i, j, inf)
		}
	}
	// Direct [0,4] costs 10; the route through adjacent spans has max 3.
	m.Set(0, 4, 10)
	m.Set(0, 1, 3)
	m.Set(1, 2, 1)
	m.Set(2, 3, 2)
	m.Set(3, 4, 1)
	SolveSerialSemiring[float32](tri.Table[float32](m), MinMax[float32]{})
	if got := m.At(0, 4); got != 3 {
		t.Errorf("bottleneck = %v, want 3", got)
	}
}
