// Package npdp implements the paper's NPDP engines end to end:
//
//   - SolveSerial: the original Figure 1 algorithm on the row-major
//     triangular layout — the reference every other engine must match
//     bit for bit.
//   - SolveTiled: the serial tiled algorithm of Figure 4(b) on the new
//     data layout, using the two-stage memory-block procedure.
//   - SolveParallel (parallel.go): the tier-2 parallel procedure run on
//     real goroutine workers with the task-queue model of Section IV-B.
//   - SolveCell (cell.go): the full CellNPDP algorithm of Figure 8
//     executed on the simulated Cell processor (internal/cellsim),
//     producing modeled QS20 time plus DMA and instruction statistics.
package npdp

import (
	"context"
	"fmt"

	"cellnpdp/internal/kernel"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// SolveSerial runs the original NPDP flowchart (Figure 1) in place:
//
//	for j = 0..n-1
//	  for i = j-1..0
//	    for k = i..j-1
//	      d[i][j] = min(d[i][j], d[i][k] + d[k][j])
//
// It returns the number of scalar relaxations, n(n²-1)/6... exactly the
// count of executed innermost iterations.
func SolveSerial[E semiring.Elem](m *tri.RowMajor[E]) int64 {
	relax, _ := SolveSerialCtx(context.Background(), m)
	return relax
}

// SolveSerialCtx is SolveSerial with cancellation checked once per table
// column — the serial engine's analogue of the parallel pool's
// task-dispatch granularity. On cancellation it returns ctx.Err() with
// the relaxations performed so far; the table is left partially solved.
func SolveSerialCtx[E semiring.Elem](ctx context.Context, m *tri.RowMajor[E]) (int64, error) {
	n := m.Len()
	var relax int64
	//npdp:dispatch
	for j := 0; j < n; j++ {
		if err := ctx.Err(); err != nil {
			return relax, err
		}
		for i := j - 1; i >= 0; i-- {
			v := m.At(i, j)
			for k := i; k < j; k++ {
				if w := m.At(i, k) + m.At(k, j); w < v {
					v = w
				}
			}
			m.Set(i, j, v)
			relax += int64(j - i)
		}
	}
	return relax, nil
}

// SolveTiled runs the tiled flowchart (Figure 4(b)) serially on the new
// data layout, in place: memory blocks in column order, each computed
// with stage 1 (middle-tile min-plus products, no inner dependences) and
// stage 2 (inner dependences via computing blocks). The tile side must be
// a positive multiple of kernel.CB.
func SolveTiled[E semiring.Elem](t *tri.Tiled[E]) (kernel.Stats, error) {
	return SolveTiledCtx(context.Background(), t)
}

// SolveTiledCtx is SolveTiled with cancellation checked once per memory
// block — the same granularity the parallel pool checks at task
// dispatch. On cancellation the table is left partially solved.
func SolveTiledCtx[E semiring.Elem](ctx context.Context, t *tri.Tiled[E]) (kernel.Stats, error) {
	if err := kernel.CheckTile(t.Tile()); err != nil {
		return kernel.Stats{}, err
	}
	var st kernel.Stats
	m := t.Blocks()
	ts := t.Tile()
	for bj := 0; bj < m; bj++ {
		//npdp:dispatch
		for bi := bj; bi >= 0; bi-- {
			if err := ctx.Err(); err != nil {
				return st, err
			}
			if bi == bj {
				st.Add(kernel.Stage2Diag(t.Block(bj, bj), ts))
				continue
			}
			d := t.Block(bi, bj)
			for k := bi + 1; k < bj; k++ {
				st.Add(kernel.MulMinPlus(d, t.Block(bi, k), t.Block(k, bj), ts))
			}
			st.Add(kernel.Stage2OffDiag(d, t.Block(bi, bi), t.Block(bj, bj), ts))
		}
	}
	return st, nil
}

// Precision identifies the element width of a run, following the paper's
// single-/double-precision split.
type Precision int

// The two precisions the paper evaluates.
const (
	Single Precision = iota
	Double
)

// String returns "single" or "double".
func (p Precision) String() string {
	if p == Double {
		return "double"
	}
	return "single"
}

// ElemBytes returns the element size in bytes.
func (p Precision) ElemBytes() int {
	if p == Double {
		return 8
	}
	return 4
}

// DefaultTile returns the paper's tile side for a given memory-block byte
// budget (32 KB in Section VI-A): the largest multiple of kernel.CB whose
// square block fits the budget.
func DefaultTile(blockBytes int, p Precision) (int, error) {
	if blockBytes < p.ElemBytes()*kernel.CB*kernel.CB {
		return 0, fmt.Errorf("npdp: block budget %dB cannot hold even one %d×%d computing block", blockBytes, kernel.CB, kernel.CB)
	}
	side := kernel.CB
	for (side+kernel.CB)*(side+kernel.CB)*p.ElemBytes() <= blockBytes {
		side += kernel.CB
	}
	return side, nil
}
