package npdp

import (
	"fmt"
	"runtime"

	"cellnpdp/internal/kernel"
	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// Stage1Func computes one stage-1 block product C = min(C, A ⊗ B).
type Stage1Func[E semiring.Elem] func(c, a, b []E, t int) kernel.Stats

// ResolveStage1 resolves the stage-1 kernel for one solve. Selection is
// solve-invariant — the table's element type, tile and size never
// change mid-solve — so the engines call this exactly once per solve
// and thread the returned function through the per-block dispatch
// loops — re-resolving inside the //npdp:dispatch stage-1 loop would
// put a type assertion and a model consult on every one of the
// O(blocks³/6) block products. The TestPickKernelHoisted guard pins the
// once-per-solve behavior.
//
// KernelAuto consults the Section V calibration via
// perfmodel.PickKernel. KernelPanel and KernelVector both map to the
// panel entry points, whose internal dispatch engages the assembly
// exactly when the vector ISA is live — forcing the pure-Go body on a
// vector-capable machine is a process-level switch
// (kernel.SetVectorEnabled or CELLNPDP_FORCE_SCALAR=1), not a per-solve
// one. KernelFourRussians is rejected: the lattice kernel is not a
// min-plus block product (use zuker.MaxPairs for that workload).
func ResolveStage1[E semiring.Elem](sel perfmodel.Kernel, t *tri.Tiled[E]) (Stage1Func[E], error) {
	return ResolveStage1Shape[E](sel, t.Tile(), t.Len())
}

// ResolveStage1Shape is ResolveStage1 for engines that know the problem
// shape but do not hold the table in memory — the paged solve resolves
// its kernel from the pager's geometry before any block is resident.
func ResolveStage1Shape[E semiring.Elem](sel perfmodel.Kernel, tile, n int) (Stage1Func[E], error) {
	var e E
	_, isF32 := any(e).(float32)
	if sel == perfmodel.KernelAuto {
		sel = perfmodel.PickKernel(perfmodel.Shape{
			Block:   tile,
			N:       n,
			Float32: isF32,
		}, runtime.GOARCH, kernel.VectorISA())
	}
	switch sel {
	case perfmodel.KernelScalar:
		return func(c, a, b []E, ts int) kernel.Stats {
			return kernel.MulMinPlus(c, a, b, ts)
		}, nil
	case perfmodel.KernelPanel, perfmodel.KernelVector:
		if isF32 {
			return func(c, a, b []E, ts int) kernel.Stats {
				return kernel.PanelMinPlusF32(any(c).([]float32), any(a).([]float32), any(b).([]float32), ts)
			}, nil
		}
		return kernel.PanelMinPlus[E], nil
	case perfmodel.KernelFourRussians:
		return nil, fmt.Errorf("npdp: the Four-Russians kernel solves lattice DPs, not min-plus block products (use zuker.MaxPairs)")
	}
	return nil, fmt.Errorf("npdp: unknown stage-1 kernel %v", sel)
}
