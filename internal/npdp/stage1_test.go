package npdp

import (
	"testing"

	"cellnpdp/internal/perfmodel"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

// TestPickKernelHoisted pins the hoisting contract documented on
// ResolveStage1: one model consult per solve, no matter how many block
// products the solve performs. A regression that moves the selection
// back inside the //npdp:dispatch stage-1 loop makes the count scale
// with O(blocks³) and fails loudly here.
func TestPickKernelHoisted(t *testing.T) {
	src := workload.Chain[float32](256, 99) // 16 blocks of 16 → hundreds of block products
	tt := tri.ToTiled(src, 16)
	before := perfmodel.PickCount()
	if _, err := SolveParallel(tt, ParallelOptions{Workers: 2, SchedSide: 2}); err != nil {
		t.Fatal(err)
	}
	if got := perfmodel.PickCount() - before; got != 1 {
		t.Fatalf("SolveParallel consulted PickKernel %d times, want exactly 1", got)
	}

	// An explicit kernel choice bypasses the model entirely.
	tt2 := tri.ToTiled(src, 16)
	before = perfmodel.PickCount()
	if _, err := SolveParallel(tt2, ParallelOptions{Workers: 2, Stage1: perfmodel.KernelScalar}); err != nil {
		t.Fatal(err)
	}
	if got := perfmodel.PickCount() - before; got != 0 {
		t.Fatalf("explicit Stage1 consulted PickKernel %d times, want 0", got)
	}
}

func TestStage1ExplicitKernelsBitIdentical(t *testing.T) {
	src := workload.Chain[float32](200, 41)
	ref := solveRef(src)
	for _, sel := range []perfmodel.Kernel{perfmodel.KernelScalar, perfmodel.KernelPanel, perfmodel.KernelVector} {
		tt := tri.ToTiled(src, 20)
		if _, err := SolveParallel(tt, ParallelOptions{Workers: 3, Stage1: sel}); err != nil {
			t.Fatalf("Stage1=%v: %v", sel, err)
		}
		got := tri.ToRowMajor(tt)
		if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
			t.Fatalf("Stage1=%v: first diff at (%d,%d): serial=%v got=%v", sel, i, j, av, bv)
		}
	}
}

func TestStage1RejectsFourRussians(t *testing.T) {
	tt := tri.ToTiled(workload.Chain[float32](32, 1), 8)
	if _, err := SolveParallel(tt, ParallelOptions{Workers: 1, Stage1: perfmodel.KernelFourRussians}); err == nil {
		t.Fatal("SolveParallel accepted the Four-Russians kernel for a min-plus solve")
	}
}
