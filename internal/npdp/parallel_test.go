package npdp

import (
	"runtime"
	"testing"

	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

func TestParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{4, 16, 33, 64, 100, 150, 256} {
		for _, workers := range []int{1, 2, 4, 8} {
			for _, g := range []int{1, 2, 3} {
				src := workload.Chain[float32](n, int64(n*31+workers*7+g))
				ref := solveRef(src)
				tt := tri.ToTiled(src, 16)
				if _, err := SolveParallel(tt, ParallelOptions{Workers: workers, SchedSide: g}); err != nil {
					t.Fatalf("SolveParallel(n=%d w=%d g=%d): %v", n, workers, g, err)
				}
				got := tri.ToRowMajor(tt)
				if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
					t.Fatalf("n=%d w=%d g=%d: first diff at (%d,%d): serial=%v parallel=%v", n, workers, g, i, j, av, bv)
				}
			}
		}
	}
}

func TestParallelMatchesSerialF64(t *testing.T) {
	src := workload.Dense[float64](120, 5)
	ref := solveRef(src)
	tt := tri.ToTiled(src, 24)
	if _, err := SolveParallel(tt, ParallelOptions{Workers: runtime.GOMAXPROCS(0), SchedSide: 2}); err != nil {
		t.Fatal(err)
	}
	got := tri.ToRowMajor(tt)
	if !tri.Equal[float64](ref, got) {
		t.Fatal("parallel f64 result differs from serial reference")
	}
}

func TestParallelStatsMatchTiled(t *testing.T) {
	// The parallel engine performs exactly the same kernel work as the
	// serial tiled engine, just distributed; the stats must agree.
	src := workload.Chain[float32](200, 77)
	tt1 := tri.ToTiled(src, 16)
	st1, err := SolveTiled(tt1)
	if err != nil {
		t.Fatal(err)
	}
	tt2 := tri.ToTiled(src, 16)
	st2, err := SolveParallel(tt2, ParallelOptions{Workers: 4, SchedSide: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatalf("stats differ: tiled=%+v parallel=%+v", st1, st2)
	}
}

func TestParallelRejectsBadOptions(t *testing.T) {
	tt := tri.ToTiled(workload.Chain[float32](16, 1), 8)
	if _, err := SolveParallel(tt, ParallelOptions{Workers: 0}); err == nil {
		t.Error("accepted zero workers")
	}
	if _, err := SolveParallel(tt, ParallelOptions{Workers: -2}); err == nil {
		t.Error("accepted negative workers")
	}
	bad := tri.ToTiled(workload.Chain[float32](16, 1), 6)
	if _, err := SolveParallel(bad, ParallelOptions{Workers: 2}); err == nil {
		t.Error("accepted tile side not a multiple of 4")
	}
	if _, err := SolveParallel(tt, ParallelOptions{Workers: 2, SchedSide: -1}); err == nil {
		t.Error("accepted negative SchedSide")
	}
}

// TestParallelAblationConfigsMatchSerial covers the seed-shaped ablation
// paths: the mutex-pool scheduler and the CB-step stage-1 kernel (alone
// and combined) must stay bit-identical to the serial reference and
// report the same stats as the default engine.
func TestParallelAblationConfigsMatchSerial(t *testing.T) {
	src := workload.Chain[float32](180, 9)
	ref := solveRef(src)
	base := tri.ToTiled(src, 16)
	stDefault, err := SolveParallel(base, ParallelOptions{Workers: 4, SchedSide: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []ParallelOptions{
		{Workers: 4, SchedSide: 2, MutexPool: true},
		{Workers: 4, SchedSide: 2, NoPanelKernel: true},
		{Workers: 4, SchedSide: 2, MutexPool: true, NoPanelKernel: true},
	} {
		tt := tri.ToTiled(src, 16)
		st, err := SolveParallel(tt, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !tri.Equal[float32](ref, tri.ToRowMajor(tt)) {
			t.Fatalf("%+v: result differs from serial reference", opts)
		}
		if st != stDefault {
			t.Errorf("%+v: stats %+v != default engine %+v", opts, st, stDefault)
		}
	}
}

// TestParallelF64FastPathRouting makes sure the float64 table takes the
// generic panel (no fast-path mixup) and still matches serial exactly.
func TestParallelF64FastPathRouting(t *testing.T) {
	src := workload.Dense[float64](96, 3)
	ref := solveRef(src)
	tt := tri.ToTiled(src, 16)
	if _, err := SolveParallel(tt, ParallelOptions{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	if !tri.Equal[float64](ref, tri.ToRowMajor(tt)) {
		t.Fatal("f64 panel engine differs from serial reference")
	}
}

func TestParallelFullDepsMatchesSerial(t *testing.T) {
	src := workload.Chain[float32](150, 8)
	ref := solveRef(src)
	tt := tri.ToTiled(src, 16)
	if _, err := SolveParallel(tt, ParallelOptions{Workers: 4, FullDeps: true}); err != nil {
		t.Fatal(err)
	}
	if !tri.Equal[float32](ref, tri.ToRowMajor(tt)) {
		t.Fatal("full-dependence graph run differs from serial")
	}
}

func TestWavefrontBarrierMatchesSerial(t *testing.T) {
	for _, n := range []int{8, 33, 100, 200} {
		for _, workers := range []int{1, 3, 8} {
			src := workload.Chain[float32](n, int64(n+workers))
			ref := solveRef(src)
			tt := tri.ToTiled(src, 16)
			st, err := SolveWavefrontBarrier(tt, workers)
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, workers, err)
			}
			if !tri.Equal[float32](ref, tri.ToRowMajor(tt)) {
				t.Fatalf("n=%d w=%d: wavefront differs from serial", n, workers)
			}
			// Same kernel work as the task-queue engine.
			tt2 := tri.ToTiled(src, 16)
			st2, err := SolveParallel(tt2, ParallelOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if st != st2 {
				t.Errorf("n=%d: wavefront stats %+v != task-queue %+v", n, st, st2)
			}
		}
	}
}

func TestWavefrontBarrierRejectsBad(t *testing.T) {
	tt := tri.ToTiled(workload.Chain[float32](16, 1), 8)
	if _, err := SolveWavefrontBarrier(tt, 0); err != nil {
		// expected
	} else {
		t.Error("0 workers accepted")
	}
	bad := tri.ToTiled(workload.Chain[float32](16, 1), 6)
	if _, err := SolveWavefrontBarrier(bad, 2); err == nil {
		t.Error("bad tile accepted")
	}
}
