package npdp

import (
	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
)

// Semiring abstracts the algebra of the generic reference solver: the
// recurrence becomes d[i][j] = ⊕(d[i][j], ⊗(d[i][k], d[k][j])). The
// optimized engines specialize to min-plus; this generic form documents
// and tests the algebraic requirements (it works for any selection
// semiring, e.g. max-plus for critical paths or min-max for bottleneck
// costs).
type Semiring[E any] interface {
	// Add is ⊕, the selection operation (min, max, …).
	Add(a, b E) E
	// Mul is ⊗, the combination operation (+, max, …).
	Mul(a, b E) E
}

// SolveSerialSemiring runs Figure 1 over an arbitrary semiring on a
// generic table.
func SolveSerialSemiring[E semiring.Elem](t tri.Table[E], s Semiring[E]) {
	n := t.Len()
	for j := 0; j < n; j++ {
		for i := j - 1; i >= 0; i-- {
			v := t.At(i, j)
			for k := i; k < j; k++ {
				v = s.Add(v, s.Mul(t.At(i, k), t.At(k, j)))
			}
			t.Set(i, j, v)
		}
	}
}

// MaxPlus is the dual tropical semiring: longest / most-expensive
// derivations instead of cheapest.
type MaxPlus[E ~float32 | ~float64] struct{}

// Add is max.
func (MaxPlus[E]) Add(a, b E) E {
	if b > a {
		return b
	}
	return a
}

// Mul is +.
func (MaxPlus[E]) Mul(a, b E) E { return a + b }

// MinMax is the bottleneck semiring: the best derivation minimizes its
// worst component.
type MinMax[E ~float32 | ~float64] struct{}

// Add is min.
func (MinMax[E]) Add(a, b E) E {
	if b < a {
		return b
	}
	return a
}

// Mul is max.
func (MinMax[E]) Mul(a, b E) E {
	if b > a {
		return b
	}
	return a
}

// MinPlusSemiring adapts the library's standard algebra to the generic
// interface.
type MinPlusSemiring[E ~float32 | ~float64] struct{}

// Add is min.
func (MinPlusSemiring[E]) Add(a, b E) E {
	if b < a {
		return b
	}
	return a
}

// Mul is +.
func (MinPlusSemiring[E]) Mul(a, b E) E { return a + b }
