package npdp

import (
	"testing"

	"cellnpdp/internal/semiring"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

// solveRef computes the reference answer for an instance without mutating it.
func solveRef[E semiring.Elem](src *tri.RowMajor[E]) *tri.RowMajor[E] {
	ref := src.Clone()
	SolveSerial(ref)
	return ref
}

func checkTiledParity[E semiring.Elem](t *testing.T, src *tri.RowMajor[E], tile int) {
	t.Helper()
	ref := solveRef(src)
	tt := tri.ToTiled(src, tile)
	if _, err := SolveTiled(tt); err != nil {
		t.Fatalf("SolveTiled(tile=%d): %v", tile, err)
	}
	got := tri.ToRowMajor(tt)
	if i, j, av, bv, diff := tri.FirstDiff[E](ref, got); diff {
		t.Fatalf("tile=%d n=%d: first diff at (%d,%d): serial=%v tiled=%v", tile, src.Len(), i, j, av, bv)
	}
}

func TestTiledMatchesSerialF32(t *testing.T) {
	for _, n := range []int{1, 3, 4, 5, 8, 16, 17, 31, 32, 33, 64, 100, 129, 200} {
		for _, tile := range []int{4, 8, 12, 16, 32} {
			src := workload.Chain[float32](n, int64(n*1000+tile))
			checkTiledParity(t, src, tile)
		}
	}
}

func TestTiledMatchesSerialF64(t *testing.T) {
	for _, n := range []int{1, 4, 7, 16, 33, 64, 100, 129} {
		for _, tile := range []int{4, 8, 16, 24} {
			src := workload.Chain[float64](n, int64(n*7+tile))
			checkTiledParity(t, src, tile)
		}
	}
}

func TestTiledMatchesSerialDenseInit(t *testing.T) {
	for _, n := range []int{6, 16, 40, 96, 130} {
		for _, tile := range []int{4, 16, 20} {
			src := workload.Dense[float32](n, int64(n+tile))
			checkTiledParity(t, src, tile)
		}
	}
}

func TestTiledRejectsBadTile(t *testing.T) {
	src := workload.Chain[float32](16, 1)
	for _, tile := range []int{1, 2, 3, 5, 6, 7, 9} {
		tt := tri.ToTiled(src, tile)
		if _, err := SolveTiled(tt); err == nil {
			t.Errorf("SolveTiled accepted tile side %d (not a multiple of 4)", tile)
		}
	}
}

func TestSerialRelaxCount(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 50} {
		src := workload.Chain[float32](n, 9)
		got := SolveSerial(src)
		// sum over j of sum over i<j of (j-i) = n(n^2-1)/6
		want := int64(n) * (int64(n)*int64(n) - 1) / 6
		if got != want {
			t.Errorf("n=%d: relaxations = %d, want n(n²-1)/6 = %d", n, got, want)
		}
	}
}

func TestDefaultTile(t *testing.T) {
	cases := []struct {
		bytes int
		prec  Precision
		want  int
	}{
		{32 * 1024, Single, 88}, // the paper's 32 KB single-precision block
		{32 * 1024, Double, 64},
		{16 * 1024, Single, 64}, // 64²·4B = 16 KB exactly
		{8 * 1024, Single, 44},
		{4 * 1024, Single, 32}, // 32²·4B = 4 KB exactly
		{64, Single, 4},
	}
	for _, c := range cases {
		got, err := DefaultTile(c.bytes, c.prec)
		if err != nil {
			t.Fatalf("DefaultTile(%d, %v): %v", c.bytes, c.prec, err)
		}
		if got != c.want {
			t.Errorf("DefaultTile(%d, %v) = %d, want %d", c.bytes, c.prec, got, c.want)
		}
		if got*got*c.prec.ElemBytes() > c.bytes {
			t.Errorf("DefaultTile(%d, %v) = %d overflows the budget", c.bytes, c.prec, got)
		}
	}
	if _, err := DefaultTile(32, Single); err == nil {
		t.Error("DefaultTile accepted a budget below one computing block")
	}
}

func TestTiledScalarMatchesSerial(t *testing.T) {
	for _, n := range []int{4, 16, 33, 64, 130} {
		for _, tile := range []int{4, 8, 16, 20} {
			src := workload.Chain[float32](n, int64(n*5+tile))
			ref := solveRef(src)
			tt := tri.ToTiled(src, tile)
			relax, err := SolveTiledScalar(tt)
			if err != nil {
				t.Fatalf("SolveTiledScalar(n=%d tile=%d): %v", n, tile, err)
			}
			// The scalar engine performs exactly the blocked engine's
			// relaxations (padding included): the two decompositions cover
			// the same (i,k,j) triples.
			tt2 := tri.ToTiled(src, tile)
			st, err := SolveTiled(tt2)
			if err != nil {
				t.Fatal(err)
			}
			if relax != st.Relaxations() {
				t.Errorf("n=%d tile=%d: scalar relax = %d, blocked = %d", n, tile, relax, st.Relaxations())
			}
			got := tri.ToRowMajor(tt)
			if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
				t.Fatalf("n=%d tile=%d: first diff at (%d,%d): serial=%v tiledscalar=%v", n, tile, i, j, av, bv)
			}
		}
	}
}
