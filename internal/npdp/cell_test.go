package npdp

import (
	"context"
	"errors"
	"testing"

	"cellnpdp/internal/cellsim"
	"cellnpdp/internal/pipeline"
	"cellnpdp/internal/trace"
	"cellnpdp/internal/tri"
	"cellnpdp/internal/workload"
)

func cellOpts(workers int) CellOptions {
	return CellOptions{
		Workers:           workers,
		SchedSide:         1,
		UseSIMD:           true,
		DoubleBuffer:      true,
		CBStepCycles:      pipeline.CBStepCyclesSP(),
		ScalarRelaxCycles: DefaultScalarRelaxCycles,
	}
}

func TestCellMatchesSerial(t *testing.T) {
	mach, err := cellsim.NewMachine(cellsim.QS20())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{8, 16, 33, 64, 100, 200} {
		for _, workers := range []int{1, 4, 16} {
			src := workload.Chain[float32](n, int64(n+workers))
			ref := solveRef(src)
			tt := tri.ToTiled(src, 16)
			res, err := SolveCell(tt, mach, cellOpts(workers))
			if err != nil {
				t.Fatalf("SolveCell(n=%d w=%d): %v", n, workers, err)
			}
			got := tri.ToRowMajor(tt)
			if i, j, av, bv, diff := tri.FirstDiff[float32](ref, got); diff {
				t.Fatalf("n=%d w=%d: first diff at (%d,%d): serial=%v cell=%v", n, workers, i, j, av, bv)
			}
			if res.Seconds <= 0 {
				t.Errorf("n=%d w=%d: non-positive modeled time %g", n, workers, res.Seconds)
			}
		}
	}
}

func TestCellStatsMatchTiled(t *testing.T) {
	mach, _ := cellsim.NewMachine(cellsim.QS20())
	src := workload.Chain[float32](180, 3)
	tt1 := tri.ToTiled(src, 16)
	want, err := SolveTiled(tt1)
	if err != nil {
		t.Fatal(err)
	}
	tt2 := tri.ToTiled(src, 16)
	res, err := SolveCell(tt2, mach, cellOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != want {
		t.Errorf("cell stats %+v differ from tiled stats %+v", res.Stats, want)
	}
}

func TestModelCellMatchesFunctionalTiming(t *testing.T) {
	// Timing-only mode must produce exactly the modeled time of the
	// functional run: same task graph, same DMA schedule, same cycles.
	for _, workers := range []int{1, 5, 16} {
		for _, g := range []int{1, 2} {
			opts := cellOpts(workers)
			opts.SchedSide = g
			machF, _ := cellsim.NewMachine(cellsim.QS20())
			src := workload.Chain[float32](300, 9)
			tt := tri.ToTiled(src, 20)
			fun, err := SolveCell(tt, machF, opts)
			if err != nil {
				t.Fatal(err)
			}
			machM, _ := cellsim.NewMachine(cellsim.QS20())
			mod, err := ModelCell(300, 20, Single, machM, opts)
			if err != nil {
				t.Fatal(err)
			}
			if fun.Seconds != mod.Seconds {
				t.Errorf("w=%d g=%d: functional %g s vs modeled %g s", workers, g, fun.Seconds, mod.Seconds)
			}
			if fun.DMA != mod.DMA {
				t.Errorf("w=%d g=%d: DMA stats differ: %+v vs %+v", workers, g, fun.DMA, mod.DMA)
			}
			if fun.Stats != mod.Stats {
				t.Errorf("w=%d g=%d: kernel stats differ: %+v vs %+v", workers, g, fun.Stats, mod.Stats)
			}
		}
	}
}

func TestCellSpeedupWithSPEs(t *testing.T) {
	// The parallel procedure must scale: 16 SPEs at a reasonably large
	// modeled problem should be at least 10× faster than 1 SPE
	// (the paper reports 15.7×).
	mach, _ := cellsim.NewMachine(cellsim.QS20())
	opts1 := cellOpts(1)
	one, err := ModelCell(4096, 88, Single, mach, opts1)
	if err != nil {
		t.Fatal(err)
	}
	sixteen, err := ModelCell(4096, 88, Single, mach, cellOpts(16))
	if err != nil {
		t.Fatal(err)
	}
	speedup := one.Seconds / sixteen.Seconds
	if speedup < 10 || speedup > 16 {
		t.Errorf("16-SPE speedup = %.2f, want within [10, 16]", speedup)
	}
}

func TestCellLocalStoreOverflowRejected(t *testing.T) {
	// A tile too large for the six-buffer layout must fail cleanly.
	mach, _ := cellsim.NewMachine(cellsim.QS20())
	opts := cellOpts(2)
	if _, err := ModelCell(1024, 128, Single, mach, opts); err == nil {
		t.Error("tile 128 (6×64 KB buffers > 208 KB data region) was accepted")
	}
	// And the functional path too.
	tt := tri.ToTiled(workload.Chain[float32](256, 1), 128)
	if _, err := SolveCell(tt, mach, opts); err == nil {
		t.Error("functional run accepted an oversized tile")
	}
}

func TestCellOptionValidation(t *testing.T) {
	mach, _ := cellsim.NewMachine(cellsim.QS20())
	tt := tri.ToTiled(workload.Chain[float32](64, 1), 16)
	bad := []CellOptions{
		{},
		{Workers: 0, SchedSide: 1, CBStepCycles: 54, ScalarRelaxCycles: 27},
		{Workers: 17, SchedSide: 1, CBStepCycles: 54, ScalarRelaxCycles: 27},
		{Workers: 4, SchedSide: 0, CBStepCycles: 54, ScalarRelaxCycles: 27},
		{Workers: 4, SchedSide: 1, CBStepCycles: 0, ScalarRelaxCycles: 27},
		{Workers: 4, SchedSide: 1, CBStepCycles: 54, ScalarRelaxCycles: -1},
	}
	for i, o := range bad {
		if _, err := SolveCell(tt, mach, o); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
}

func TestCellDoubleBufferHelps(t *testing.T) {
	// With double buffering off, stage-1 transfers serialize with compute,
	// so the modeled time must not be lower.
	mach, _ := cellsim.NewMachine(cellsim.QS20())
	on := cellOpts(8)
	off := cellOpts(8)
	off.DoubleBuffer = false
	a, err := ModelCell(2048, 88, Single, mach, on)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ModelCell(2048, 88, Single, mach, off)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seconds < a.Seconds {
		t.Errorf("double buffering off (%g s) beat on (%g s)", b.Seconds, a.Seconds)
	}
}

func TestCellDMAAccountsAllBlocks(t *testing.T) {
	// Every memory block is written back exactly once: put bytes must be
	// blocks × tile² × 4.
	mach, _ := cellsim.NewMachine(cellsim.QS20())
	res, err := ModelCell(320, 16, Single, mach, cellOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	m := 320 / 16
	wantPut := int64(m*(m+1)/2) * 16 * 16 * 4
	if res.DMA.PutBytes != wantPut {
		t.Errorf("put bytes = %d, want %d", res.DMA.PutBytes, wantPut)
	}
	if res.DMA.GetBytes <= wantPut {
		t.Errorf("get bytes = %d should exceed put bytes %d (dependence blocks are re-fetched)", res.DMA.GetBytes, wantPut)
	}
}

func newTestMachine(t testing.TB) *cellsim.Machine {
	t.Helper()
	m, err := cellsim.NewMachine(cellsim.QS20())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCellSchedulingBlocksReduceDispatch(t *testing.T) {
	// With an exaggerated per-task dispatch cost, grouping memory blocks
	// into scheduling blocks must reduce the modeled time — the reason
	// scheduling blocks exist (Section IV-B).
	cfg := cellsim.QS20()
	cfg.DispatchOverhead = 200e-6
	machA, err := cellsim.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fine := cellOpts(16)
	coarse := cellOpts(16)
	coarse.SchedSide = 4
	a, err := ModelCell(2048, 16, Single, machA, fine)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ModelCell(2048, 16, Single, machA, coarse)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seconds >= a.Seconds {
		t.Errorf("scheduling blocks did not amortize dispatch: g=4 %gs vs g=1 %gs", b.Seconds, a.Seconds)
	}
}

func TestCellSmallBlocksPoorerAt16SPEs(t *testing.T) {
	// Figure 13's claim: at full SPE count, shrinking the memory block
	// degrades performance (more re-fetch volume, more commands, more
	// NUMA link traffic).
	mach := newTestMachine(t)
	t32, err := ModelCell(4096, 88, Single, mach, cellOpts(16)) // 32 KB blocks
	if err != nil {
		t.Fatal(err)
	}
	t4, err := ModelCell(4096, 32, Single, mach, cellOpts(16)) // 4 KB blocks
	if err != nil {
		t.Fatal(err)
	}
	if t4.Seconds <= t32.Seconds*1.2 {
		t.Errorf("4 KB blocks (%gs) not clearly poorer than 32 KB (%gs)", t4.Seconds, t32.Seconds)
	}
	// And strictly more DMA traffic.
	if t4.DMA.GetBytes <= t32.DMA.GetBytes {
		t.Errorf("4 KB blocks fetched %d bytes, 32 KB fetched %d", t4.DMA.GetBytes, t32.DMA.GetBytes)
	}
}

func TestCellDeterministicModeledTime(t *testing.T) {
	mach := newTestMachine(t)
	opts := cellOpts(16)
	a, err := ModelCell(1024, 44, Single, mach, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ModelCell(1024, 44, Single, mach, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds || a.DMA != b.DMA {
		t.Error("modeled runs are not deterministic")
	}
}

func TestCellNDLAblationSlower(t *testing.T) {
	// Figure 10(a): the SIMD SPE procedure must be much faster than the
	// scalar NDL-only configuration at equal layout.
	mach := newTestMachine(t)
	simd, err := ModelCell(2048, 88, Single, mach, cellOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	scalar := cellOpts(1)
	scalar.UseSIMD = false
	ndl, err := ModelCell(2048, 88, Single, mach, scalar)
	if err != nil {
		t.Fatal(err)
	}
	speedup := ndl.Seconds / simd.Seconds
	if speedup < 10 {
		t.Errorf("SPE procedure speedup over scalar = %.1f, want ≥10 (paper: 28x)", speedup)
	}
}

func TestCellTraceRecordsActivity(t *testing.T) {
	mach := newTestMachine(t)
	log := &trace.Log{}
	opts := cellOpts(4)
	opts.Trace = log
	if _, err := ModelCell(320, 16, Single, mach, opts); err != nil {
		t.Fatal(err)
	}
	if len(log.Events) == 0 {
		t.Fatal("no trace events recorded")
	}
	kinds := map[trace.Kind]int{}
	spes := map[int]bool{}
	for _, e := range log.Events {
		kinds[e.Kind]++
		spes[e.SPE] = true
		if e.End < e.Start {
			t.Fatalf("inverted interval: %+v", e)
		}
	}
	if kinds[trace.KindCompute] == 0 || kinds[trace.KindTask] == 0 {
		t.Errorf("missing kinds: %v", kinds)
	}
	if len(spes) != 4 {
		t.Errorf("events on %d SPEs, want 4", len(spes))
	}
	// Rendering works end to end.
	if len(log.Gantt(60)) == 0 || len(log.String()) == 0 {
		t.Error("rendering failed")
	}
	sums := log.Summarize()
	var totalTasks int
	for _, s := range sums {
		totalTasks += s.Tasks
	}
	m := 320 / 16
	if totalTasks != m*(m+1)/2 {
		t.Errorf("task events = %d, want %d", totalTasks, m*(m+1)/2)
	}
}

func TestCellConcurrentMatchesSerial(t *testing.T) {
	for _, n := range []int{8, 64, 150, 256} {
		for _, workers := range []int{1, 4, 16} {
			src := workload.Chain[float32](n, int64(n*3+workers))
			ref := solveRef(src)
			tt := tri.ToTiled(src, 16)
			st, err := SolveCellConcurrent(context.Background(), tt, workers)
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, workers, err)
			}
			if !tri.Equal[float32](ref, tri.ToRowMajor(tt)) {
				t.Fatalf("n=%d w=%d: mailbox-mode result differs from serial", n, workers)
			}
			tt2 := tri.ToTiled(src, 16)
			st2, err := SolveParallel(tt2, ParallelOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if st != st2 {
				t.Errorf("n=%d: mailbox stats %+v != task-queue %+v", n, st, st2)
			}
		}
	}
}

func TestCellConcurrentRejectsBad(t *testing.T) {
	tt := tri.ToTiled(workload.Chain[float32](16, 1), 8)
	if _, err := SolveCellConcurrent(context.Background(), tt, 0); err == nil {
		t.Error("0 workers accepted")
	}
	bad := tri.ToTiled(workload.Chain[float32](16, 1), 6)
	if _, err := SolveCellConcurrent(context.Background(), bad, 2); err == nil {
		t.Error("bad tile accepted")
	}
}

func TestRowMajorDMAAblation(t *testing.T) {
	// The prior tiling's per-row DMA must cost more commands and more
	// modeled time than the NDL's whole-block transfers, and must still
	// compute the right answer functionally.
	mach := newTestMachine(t)
	ndl, err := ModelCell(2048, 88, Single, mach, cellOpts(16))
	if err != nil {
		t.Fatal(err)
	}
	rowOpts := cellOpts(16)
	rowOpts.RowMajorDMA = true
	row, err := ModelCell(2048, 88, Single, mach, rowOpts)
	if err != nil {
		t.Fatal(err)
	}
	if row.DMA.GetCommands <= ndl.DMA.GetCommands*10 {
		t.Errorf("per-row DMA commands %d not ≫ block commands %d", row.DMA.GetCommands, ndl.DMA.GetCommands)
	}
	if row.Seconds <= ndl.Seconds {
		t.Errorf("row-major DMA (%gs) not slower than NDL (%gs)", row.Seconds, ndl.Seconds)
	}
	// Functional correctness under the flag.
	src := workload.Chain[float32](200, 4)
	ref := solveRef(src)
	tt := tri.ToTiled(src, 16)
	fOpts := cellOpts(4)
	fOpts.RowMajorDMA = true
	if _, err := SolveCell(tt, mach, fOpts); err != nil {
		t.Fatal(err)
	}
	if !tri.Equal[float32](ref, tri.ToRowMajor(tt)) {
		t.Fatal("row-major DMA mode changed results")
	}
}

// countdownCtx is a fake context whose Err() flips to Canceled after a
// fixed number of polls. The DES executor is synchronous and
// single-threaded, so this deterministically fires the cancellation at
// an exact poll site — including the checks between double-buffer phases
// inside computeMB — with no goroutines or timing involved.
type countdownCtx struct {
	context.Context
	polls int
	fire  int // Err() returns Canceled from this poll on (0 = never)
}

func (c *countdownCtx) Err() error {
	c.polls++
	if c.fire > 0 && c.polls >= c.fire {
		return context.Canceled
	}
	return nil
}

// TestCellCtxCancelBetweenDoubleBufferPhases sweeps the cancellation
// trigger across every poll site of a SolveCellCtx run. The engine polls
// both at task dispatch and between stage-1 double-buffer products, so
// there must be strictly more polls than tasks, every mid-run
// cancellation must surface context.Canceled, and a cancellation during
// a long block's stage-1 loop must abort without finishing that block.
func TestCellCtxCancelBetweenDoubleBufferPhases(t *testing.T) {
	const n, tile = 96, 8 // 12 blocks per side: off-diagonal mids up to 10
	build := func() *tri.Tiled[float32] {
		return tri.ToTiled(workload.Chain[float32](n, 5), tile)
	}
	// Reference run: count the total polls of a complete solve.
	mach, err := cellsim.NewMachine(cellsim.QS20())
	if err != nil {
		t.Fatal(err)
	}
	probe := &countdownCtx{Context: context.Background()}
	if _, err := SolveCellCtx(probe, build(), mach, cellOpts(4)); err != nil {
		t.Fatal(err)
	}
	blocks := (n + tile - 1) / tile
	tasks := blocks * (blocks + 1) / 2
	if probe.polls <= tasks {
		t.Fatalf("%d polls for %d tasks: the double-buffer loop is not checking between phases", probe.polls, tasks)
	}

	// Sweep the trigger across the whole poll range (step keeps the
	// sweep fast; it still lands inside many different stage-1 loops).
	for fire := 1; fire <= probe.polls; fire += 7 {
		mach, err := cellsim.NewMachine(cellsim.QS20())
		if err != nil {
			t.Fatal(err)
		}
		ctx := &countdownCtx{Context: context.Background(), fire: fire}
		_, err = SolveCellCtx(ctx, build(), mach, cellOpts(4))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("fire=%d: err = %v, want context.Canceled", fire, err)
		}
	}
	// One more poll than the complete run needs: must still succeed.
	mach2, err := cellsim.NewMachine(cellsim.QS20())
	if err != nil {
		t.Fatal(err)
	}
	late := &countdownCtx{Context: context.Background(), fire: probe.polls + 1}
	if _, err := SolveCellCtx(late, build(), mach2, cellOpts(4)); err != nil {
		t.Fatalf("cancellation one poll after completion still failed the solve: %v", err)
	}
}
